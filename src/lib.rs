//! Workspace root crate: re-exports the RHHH reproduction's public crates so
//! the examples and cross-crate integration tests can use one import root.
//!
//! Library users should depend on the individual crates (`hhh-core`,
//! `hhh-hierarchy`, …) directly; this crate only exists to host
//! `examples/` and `tests/` at the workspace root.

pub use hhh_baselines as baselines;
pub use hhh_core as core;
pub use hhh_counters as counters;
pub use hhh_eval as eval;
pub use hhh_hierarchy as hierarchy;
pub use hhh_stats as stats;
pub use hhh_traces as traces;
pub use hhh_vswitch as vswitch;
