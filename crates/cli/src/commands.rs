//! The `generate`, `analyze` and `speed` subcommands.

use std::net::Ipv4Addr;
use std::path::Path;
use std::time::Instant;

use hhh_core::{CounterKind, HeavyHitter, HhhAlgorithm, Rhhh, RhhhConfig, WindowedRhhh};
use hhh_counters::{
    CompactSpaceSaving, CuckooHeavyKeeper, DispatchedEstimator, FrequencyEstimator,
    HeapSpaceSaving, LossyCounting, MisraGries, SpaceSaving,
};
use hhh_eval::AlgoKind;
use hhh_hierarchy::{KeyBits, Lattice};
use hhh_traces::io::{write_trace, TraceReader};
use hhh_traces::{
    parse_ipv4_frame, AttackConfig, FrameBlock, Packet, PcapReader, ScenarioConfig,
    ScenarioGenerator, ScenarioKind, TraceConfig, TraceGenerator,
};
use hhh_vswitch::{Handoff, ShardedMonitor, SpawnOptions, WindowedShardedMonitor, WireBlockView};

use crate::args::Flags;

fn preset(name: &str) -> Result<TraceConfig, String> {
    TraceConfig::presets()
        .into_iter()
        .find(|p| p.name == name)
        .ok_or_else(|| format!("unknown preset `{name}` (try chicago15/16, sanjose13/14)"))
}

fn algo_kind(name: &str, counter: CounterKind) -> Result<AlgoKind, String> {
    Ok(match name {
        "rhhh" => AlgoKind::Rhhh {
            v_scale: 1,
            counter,
        },
        "10-rhhh" => AlgoKind::Rhhh {
            v_scale: 10,
            counter,
        },
        "mst" => AlgoKind::Mst,
        "full-ancestry" => AlgoKind::FullAncestry,
        "partial-ancestry" => AlgoKind::PartialAncestry,
        other => return Err(format!("unknown algorithm `{other}`")),
    })
}

fn counter_kind(flags: &Flags) -> Result<CounterKind, String> {
    flags
        .get("counter")
        .map_or(Ok(CounterKind::default()), CounterKind::parse)
}

/// Frames per [`FrameBlock`] when reading a pcap in block mode: sized like
/// an rx burst ring so each block's validation prepass and lane sweep stay
/// cache-resident.
const PCAP_BLOCK_FRAMES: usize = 8_192;

/// Chunk size for the CLI's batch update paths. Larger chunks give the
/// per-node flush better dedup and cache locality; 64Ki keys ≈ 512 KiB of
/// input is still insignificant next to the counter state.
const BATCH_CHUNK: usize = 65_536;

/// Per-shard hand-off grain for `--shards`: one channel send per this many
/// packets of a shard's sub-stream (an rx-burst-sized batch each worker
/// flushes through `update_batch`).
const SHARD_BATCH: usize = 4_096;

/// Upper bound for `--shards`: each shard is an OS thread plus a full set
/// of counter instances, so a typo like `1e9` must fail cleanly instead of
/// reaching thread spawn.
const MAX_SHARDS: usize = 256;

/// Default pane count G for `--window` when `--panes` is absent: a good
/// coverage/cost point per the `window_accuracy` eval (slop W/4, merge
/// ~4 × per-pane cost, accuracy flat in G).
const DEFAULT_PANES: usize = 4;

/// Upper bound for `--panes`: each pane is a full set of counter
/// instances, and coverage slop shrinks only as 1/G.
const MAX_PANES: usize = 64;

/// Parses the optional `--window W [--panes G]` pair. `None` when
/// `--window` is absent; `--panes` without `--window` is rejected.
fn window_flags(flags: &Flags) -> Result<Option<(u64, usize)>, String> {
    let window = flags.num("window", 0.0)?;
    if window < 0.0 || window.fract() != 0.0 {
        return Err(format!(
            "--window expects a non-negative packet count, got {window}"
        ));
    }
    let panes = flags.num("panes", DEFAULT_PANES as f64)?;
    if !(1.0..=MAX_PANES as f64).contains(&panes) || panes.fract() != 0.0 {
        return Err(format!(
            "--panes expects an integer in 1..={MAX_PANES}, got {panes}"
        ));
    }
    if window == 0.0 {
        if flags.get("panes").is_some() {
            return Err("--panes only applies together with --window".into());
        }
        return Ok(None);
    }
    let (window, panes) = (window as u64, panes as usize);
    if window < panes as u64 {
        return Err(format!(
            "--window {window} is smaller than --panes {panes} (each pane needs a packet)"
        ));
    }
    Ok(Some((window, panes)))
}

/// Parses the optional `--shards N` flag (`None` when absent or `0`).
fn shards_flag(flags: &Flags) -> Result<Option<usize>, String> {
    let n = flags.num("shards", 0.0)?;
    if n < 0.0 || n.fract() != 0.0 {
        return Err(format!("--shards expects a non-negative integer, got {n}"));
    }
    if n > MAX_SHARDS as f64 {
        return Err(format!(
            "--shards {n} is beyond the supported maximum of {MAX_SHARDS} worker threads"
        ));
    }
    Ok(if n == 0.0 { None } else { Some(n as usize) })
}

/// Parses the optional `--handoff ring|channel` flag selecting the
/// sharded batch hand-off (default: the lock-free ring; `channel` keeps
/// the bounded-channel baseline for differential runs).
fn handoff_flag(flags: &Flags) -> Result<Handoff, String> {
    flags.get("handoff").map_or(Ok(Handoff::Ring), str::parse)
}

/// Monomorphizes one expression over the selected [`CounterKind`]: inside
/// `$body`, `$est` is a type alias for the concrete estimator. The single
/// place this crate maps the counter roster to types — the analyze and
/// speed dispatches all expand through it.
macro_rules! with_counter_type {
    ($kind:expr, $est:ident, $body:expr) => {
        match $kind {
            CounterKind::StreamSummary => {
                type $est<K> = SpaceSaving<K>;
                $body
            }
            CounterKind::Compact => {
                type $est<K> = CompactSpaceSaving<K>;
                $body
            }
            CounterKind::Heap => {
                type $est<K> = HeapSpaceSaving<K>;
                $body
            }
            CounterKind::MisraGries => {
                type $est<K> = MisraGries<K>;
                $body
            }
            CounterKind::LossyCounting => {
                type $est<K> = LossyCounting<K>;
                $body
            }
            CounterKind::CuckooHeavyKeeper => {
                type $est<K> = CuckooHeavyKeeper<K>;
                $body
            }
            CounterKind::Dispatch => {
                type $est<K> = DispatchedEstimator<K>;
                $body
            }
        }
    };
}

/// Parses `10.20.0.0/16->8.8.8.8@0.3`.
fn parse_attack(spec: &str) -> Result<AttackConfig, String> {
    let err = || format!("bad attack spec `{spec}` (want subnet/bits->victim@fraction)");
    let (net, rest) = spec.split_once("->").ok_or_else(err)?;
    let (victim, fraction) = rest.split_once('@').ok_or_else(err)?;
    let (addr, bits) = net.split_once('/').ok_or_else(err)?;
    Ok(AttackConfig {
        subnet: addr.parse::<Ipv4Addr>().map_err(|_| err())?.into(),
        subnet_bits: bits.parse().map_err(|_| err())?,
        victim: victim.parse::<Ipv4Addr>().map_err(|_| err())?.into(),
        fraction: fraction.parse().map_err(|_| err())?,
    })
}

/// `rhhh generate` — materialize a trace file.
pub fn generate(argv: &[String]) -> i32 {
    match generate_inner(argv) {
        Ok(()) => 0,
        Err(e) => {
            eprintln!("error: {e}");
            2
        }
    }
}

fn generate_inner(argv: &[String]) -> Result<(), String> {
    let flags = Flags::parse(argv, &[])?;
    let packets = flags.num("packets", 1_000_000.0)? as usize;
    let out = flags.require("out")?;
    let (data, source) = if let Some(name) = flags.get("scenario") {
        if flags.get("preset").is_some() || flags.get("attack").is_some() {
            return Err(
                "--scenario replaces --preset/--attack (scenarios script their own mix)".into(),
            );
        }
        let kind = ScenarioKind::parse(name)?;
        let data = ScenarioGenerator::new(&ScenarioConfig::new(kind)).take_packets(packets);
        (data, kind.name().to_string())
    } else {
        let mut config = preset(flags.get("preset").unwrap_or("chicago16"))?;
        if let Some(spec) = flags.get("attack") {
            config = config.with_attack(parse_attack(spec)?);
        }
        let name = config.name.clone();
        (TraceGenerator::new(&config).take_packets(packets), name)
    };
    // `.pcap` destinations get raw canonical frames — the input the
    // zero-copy `analyze --pcap` plane consumes; anything else gets the
    // compact struct trace format.
    let written = if out.ends_with(".pcap") {
        hhh_traces::write_pcap(Path::new(out), &data)
    } else {
        write_trace(Path::new(out), &data)
    }
    .map_err(|e| format!("writing {out}: {e}"))?;
    println!("wrote {written} packets ({source}) to {out}");
    Ok(())
}

/// `rhhh analyze` — run an algorithm over a trace and print the HHH table.
pub fn analyze(argv: &[String]) -> i32 {
    match analyze_inner(argv) {
        Ok(()) => 0,
        Err(e) => {
            eprintln!("error: {e}");
            2
        }
    }
}

/// Rejects `analyze` invocations naming more than one input source.
fn check_one_source(flags: &Flags) -> Result<(), String> {
    let named: Vec<&str> = ["trace", "pcap", "scenario", "preset"]
        .into_iter()
        .filter(|s| flags.get(s).is_some())
        .collect();
    if named.len() > 1 {
        return Err(format!(
            "pick one input source, got --{}",
            named.join(" and --")
        ));
    }
    Ok(())
}

fn load_packets(flags: &Flags) -> Result<Vec<Packet>, String> {
    if let Some(path) = flags.get("trace") {
        let reader =
            TraceReader::open(Path::new(path)).map_err(|e| format!("opening {path}: {e}"))?;
        return reader
            .collect::<Result<Vec<_>, _>>()
            .map_err(|e| format!("reading {path}: {e}"));
    }
    let packets = flags.num("packets", 1_000_000.0)? as usize;
    if let Some(name) = flags.get("scenario") {
        let kind = ScenarioKind::parse(name)?;
        return Ok(ScenarioGenerator::new(&ScenarioConfig::new(kind)).take_packets(packets));
    }
    let config = preset(flags.get("preset").unwrap_or("chicago16"))?;
    Ok(TraceGenerator::new(&config).take_packets(packets))
}

/// Reads a whole pcap into rx-burst-sized [`FrameBlock`]s. Returns the
/// blocks plus the reader's record count.
fn load_pcap_blocks(path: &str) -> Result<(Vec<FrameBlock>, u64), String> {
    let mut reader =
        PcapReader::open(Path::new(path)).map_err(|e| format!("opening {path}: {e}"))?;
    let mut blocks = Vec::new();
    loop {
        let mut block = FrameBlock::new();
        let n = reader
            .read_block(&mut block, PCAP_BLOCK_FRAMES)
            .map_err(|e| format!("reading {path}: {e}"))?;
        if n == 0 {
            break;
        }
        blocks.push(block);
    }
    Ok((blocks, reader.records()))
}

/// Materializes [`Packet`] structs from raw frame blocks — the fallback
/// when the requested analysis cannot run on the zero-copy wire plane
/// (non-RHHH algorithm, 1D hierarchy, shards, scalar updates).
fn packets_from_blocks(blocks: &[FrameBlock]) -> Vec<Packet> {
    let mut out = Vec::new();
    for block in blocks {
        for (frame, orig) in block.frames() {
            if let Some(p) = parse_ipv4_frame(frame, orig) {
                out.push(p);
            }
        }
    }
    out
}

fn analyze_inner(argv: &[String]) -> Result<(), String> {
    let flags = Flags::parse(argv, &["volume", "batch"])?;
    let theta = flags.num("theta", 0.03)?;
    let epsilon = flags.num("epsilon", 0.005)?;
    let top = flags.num("top", 50.0)? as usize;
    let algo_name = flags.get("algorithm").unwrap_or("rhhh");
    let hierarchy = flags.get("hierarchy").unwrap_or("2d-bytes");
    let volume = flags.switch("volume");
    let batch = flags.switch("batch");
    let counter = counter_kind(&flags)?;
    let shards = shards_flag(&flags)?;
    let handoff = handoff_flag(&flags)?;
    let window = window_flags(&flags)?;
    let filter = flags.get("filter").map(ToString::to_string);
    check_one_source(&flags)?;

    let packets;
    if let Some(path) = flags.get("pcap") {
        if window.is_some() {
            return Err(
                "--pcap streams raw frames; --window needs a materialized trace (use \
                 --trace, --scenario or --preset)"
                    .into(),
            );
        }
        let (blocks, records) = load_pcap_blocks(path)?;
        // The zero-copy wire plane covers exactly the single-instance
        // RHHH batch path over the 2D hierarchy — raw frame bytes feed
        // `update_batch_wire` with no Packet structs in between. Anything
        // else (other algorithms, 1D keys, shards, scalar updates)
        // materializes structs and takes the regular path below.
        if hierarchy == "2d-bytes"
            && matches!(algo_name, "rhhh" | "10-rhhh")
            && batch
            && shards.is_none()
        {
            return run_wire_analysis(
                &blocks,
                records,
                algo_name,
                epsilon,
                theta,
                volume,
                counter,
                top,
                filter.as_deref(),
            );
        }
        packets = packets_from_blocks(&blocks);
        println!(
            "# pcap {path}: {} of {records} records materialized (wire fast path needs \
             2d-bytes + rhhh/10-rhhh + --batch, no --shards)",
            packets.len()
        );
    } else {
        packets = load_packets(&flags)?;
    }

    match hierarchy {
        "2d-bytes" => run_analysis::<u64>(
            &Lattice::ipv4_src_dst_bytes(),
            &packets,
            Packet::key2,
            algo_name,
            epsilon,
            theta,
            volume,
            batch,
            counter,
            shards,
            handoff,
            window,
            top,
            filter.as_deref(),
        ),
        "1d-bytes" => run_analysis::<u32>(
            &Lattice::ipv4_src_bytes(),
            &packets,
            Packet::key1,
            algo_name,
            epsilon,
            theta,
            volume,
            batch,
            counter,
            shards,
            handoff,
            window,
            top,
            filter.as_deref(),
        ),
        "1d-bits" => run_analysis::<u32>(
            &Lattice::ipv4_src_bits(),
            &packets,
            Packet::key1,
            algo_name,
            epsilon,
            theta,
            volume,
            batch,
            counter,
            shards,
            handoff,
            window,
            top,
            filter.as_deref(),
        ),
        other => Err(format!("unknown hierarchy `{other}`")),
    }
}

/// Drives one concrete `Rhhh<K, E>` through the requested update path with
/// the clock running; returns `(output, total, elapsed seconds)`.
fn run_rhhh_timed<K: KeyBits, E: FrequencyEstimator<K>>(
    lattice: &Lattice<K>,
    config: RhhhConfig,
    volume: bool,
    batch: bool,
    weighted: &[(K, u64)],
    keys: &[K],
    theta: f64,
) -> (Vec<HeavyHitter<K>>, u64, f64) {
    let mut algo = Rhhh::<K, E>::new(lattice.clone(), config);
    let start = Instant::now();
    match (volume, batch) {
        (true, true) => {
            for chunk in weighted.chunks(BATCH_CHUNK) {
                algo.update_batch_weighted(chunk);
            }
        }
        (true, false) => {
            for &(k, w) in weighted {
                algo.update_weighted(k, w);
            }
        }
        (false, true) => {
            for chunk in keys.chunks(BATCH_CHUNK) {
                algo.update_batch(chunk);
            }
        }
        (false, false) => unreachable!("guarded by the caller"),
    }
    let elapsed = start.elapsed().as_secs_f64();
    let total = if volume {
        algo.total_weight()
    } else {
        algo.packets()
    };
    (algo.output(theta), total, elapsed)
}

/// Drives the shard-parallel pipeline with the clock running: hash-route
/// every key across `shards` worker threads (each on its own RHHH instance
/// through the batch path), then merge-on-harvest. The elapsed time covers
/// feed, drain and merge — the end-to-end pipeline cost a deployment pays.
fn run_sharded_timed<K: KeyBits, E: FrequencyEstimator<K> + Clone + Sync>(
    lattice: &Lattice<K>,
    config: RhhhConfig,
    shards: usize,
    handoff: Handoff,
    live_query: bool,
    keys: &[K],
    theta: f64,
) -> Result<(Vec<HeavyHitter<K>>, u64, f64), String> {
    let opts = SpawnOptions {
        handoff,
        ..SpawnOptions::default()
    };
    let start = Instant::now();
    let mut mon =
        ShardedMonitor::<K, E>::spawn_with(lattice.clone(), config, shards, SHARD_BATCH, opts)
            .map_err(|e| e.to_string())?;
    for &k in keys {
        mon.update(k);
    }
    let fed = start.elapsed();
    if live_query {
        // Demonstrate the snapshot query plane off the clock: the workers
        // keep running while we merge their latest published snapshots.
        report_live_query(&mut mon, theta);
    }
    let drain = Instant::now();
    let merged = mon.harvest().map_err(|e| e.to_string())?;
    let elapsed = (fed + drain.elapsed()).as_secs_f64();
    let total = merged.packets();
    Ok((merged.output(theta), total, elapsed))
}

/// Publishes fresh snapshots, waits (bounded) for them to land, and
/// prints the live query's answer size, coverage and latency — without
/// joining or stopping the workers.
fn report_live_query<K: KeyBits, E: FrequencyEstimator<K> + Clone + Sync>(
    mon: &mut ShardedMonitor<K, E>,
    theta: f64,
) {
    mon.publish_now();
    let fed = mon.packets();
    let deadline = Instant::now() + std::time::Duration::from_millis(500);
    while mon.query_coverage() < fed && Instant::now() < deadline {
        std::thread::yield_now();
    }
    let start = Instant::now();
    let live = mon.query(theta);
    let ms = start.elapsed().as_secs_f64() * 1e3;
    println!(
        "# live snapshot query: {} HHHs over {}/{} packets in {:.3} ms (workers not joined)",
        live.len(),
        mon.query_coverage(),
        fed,
        ms
    );
}

/// The volume twin of [`run_sharded_timed`]: feeds `(key, weight)` pairs
/// through [`ShardedMonitor::update_weighted`], so `--shards --volume`
/// measures byte-weighted HHHs on the shard-parallel pipeline.
fn run_sharded_weighted_timed<K: KeyBits, E: FrequencyEstimator<K> + Clone + Sync>(
    lattice: &Lattice<K>,
    config: RhhhConfig,
    shards: usize,
    handoff: Handoff,
    weighted: &[(K, u64)],
    theta: f64,
) -> Result<(Vec<HeavyHitter<K>>, u64, f64), String> {
    let opts = SpawnOptions {
        handoff,
        ..SpawnOptions::default()
    };
    let start = Instant::now();
    let mut mon =
        ShardedMonitor::<K, E>::spawn_with(lattice.clone(), config, shards, SHARD_BATCH, opts)
            .map_err(|e| e.to_string())?;
    mon.update_batch_weighted(weighted);
    let merged = mon.harvest().map_err(|e| e.to_string())?;
    let elapsed = start.elapsed().as_secs_f64();
    let total = merged.total_weight();
    Ok((merged.output(theta), total, elapsed))
}

/// Drives a pane-ring sliding window with the clock running: feed every
/// key (scalar or geometric-skip batch per `batch`), then answer the
/// windowed query over the last G completed panes. Streams shorter than
/// one pane fall back to the partial active-pane answer. Returns
/// `(output, covered packets, elapsed seconds)` — `covered` is the window
/// the answer speaks for, the denominator of the printed shares.
fn run_windowed_timed<K: KeyBits, E: FrequencyEstimator<K> + Clone>(
    lattice: &Lattice<K>,
    config: RhhhConfig,
    window: u64,
    panes: usize,
    batch: bool,
    keys: &[K],
    theta: f64,
) -> (Vec<HeavyHitter<K>>, u64, f64) {
    let mut mon = WindowedRhhh::<K, E>::new(lattice.clone(), config, window, panes);
    let start = Instant::now();
    if batch {
        for chunk in keys.chunks(BATCH_CHUNK) {
            mon.update_batch(chunk);
        }
    } else {
        for &k in keys {
            mon.update(k);
        }
    }
    let (output, covered) = match mon.query(theta) {
        Some(out) => (out, mon.covered_packets()),
        None => (mon.query_current(theta), mon.current_fill()),
    };
    let elapsed = start.elapsed().as_secs_f64();
    (output, covered, elapsed)
}

/// The shard-parallel windowed pipeline: hash-route across `shards`
/// pane-ring workers with globally aligned rotations, harvest with one
/// K·G-way merge.
#[allow(clippy::too_many_arguments)]
fn run_windowed_sharded_timed<K: KeyBits, E: FrequencyEstimator<K> + Clone + Sync>(
    lattice: &Lattice<K>,
    config: RhhhConfig,
    window: u64,
    panes: usize,
    shards: usize,
    handoff: Handoff,
    keys: &[K],
    theta: f64,
) -> Result<(Vec<HeavyHitter<K>>, u64, f64), String> {
    let opts = SpawnOptions {
        handoff,
        ..SpawnOptions::default()
    };
    let start = Instant::now();
    let mut mon = WindowedShardedMonitor::<K, E>::spawn_with(
        lattice.clone(),
        config,
        shards,
        SHARD_BATCH,
        window,
        panes,
        opts,
    )
    .map_err(|e| e.to_string())?;
    mon.update_batch(keys);
    let merged = mon.harvest_window().map_err(|e| e.to_string())?;
    let elapsed = start.elapsed().as_secs_f64();
    let covered = merged.packets();
    Ok((merged.output(theta), covered, elapsed))
}

#[allow(clippy::too_many_arguments)]
fn run_analysis<K: KeyBits>(
    lattice: &Lattice<K>,
    packets: &[Packet],
    key_of: impl Fn(&Packet) -> K,
    algo_name: &str,
    epsilon: f64,
    theta: f64,
    volume: bool,
    batch: bool,
    counter: CounterKind,
    shards: Option<usize>,
    handoff: Handoff,
    window: Option<(u64, usize)>,
    top: usize,
    filter: Option<&str>,
) -> Result<(), String> {
    let filter_prefix = filter
        .map(|f| {
            lattice
                .parse_prefix(f)
                .map_err(|e| format!("--filter: {e}"))
        })
        .transpose()?;
    let output: Vec<HeavyHitter<K>>;
    let total: u64;
    let elapsed: f64;

    if volume || batch || shards.is_some() || window.is_some() {
        // Volume weighting, the batch update path, shard parallelism and
        // the pane-ring sliding window are RHHH-side extensions; run the
        // concrete algorithm directly, monomorphized over the selected
        // per-node counter.
        if !algo_name.starts_with("rhhh") && algo_name != "10-rhhh" {
            let flag = if volume {
                "--volume"
            } else if batch {
                "--batch"
            } else if shards.is_some() {
                "--shards"
            } else {
                "--window"
            };
            return Err(format!("{flag} supports rhhh/10-rhhh only"));
        }
        if volume && window.is_some() {
            return Err("--window measures packet-count windows; drop --volume".into());
        }
        let v_scale = if algo_name == "10-rhhh" { 10 } else { 1 };
        let config = RhhhConfig {
            epsilon_a: epsilon,
            epsilon_s: epsilon,
            delta_s: 0.001,
            v_scale,
            updates_per_packet: 1,
            seed: 0xC11,
        };
        // Materialize inputs before starting the clock — for the scalar
        // and batch arms alike — so the printed throughput measures the
        // update path, not key extraction, and the two stay comparable.
        let weighted: Vec<(K, u64)> = if volume {
            packets
                .iter()
                .map(|p| (key_of(p), u64::from(p.wire_len)))
                .collect()
        } else {
            Vec::new()
        };
        let keys: Vec<K> = if volume {
            Vec::new()
        } else {
            packets.iter().map(&key_of).collect()
        };
        (output, total, elapsed) = if let Some((win, panes)) = window {
            if let Some(shards) = shards {
                with_counter_type!(counter, Est, {
                    run_windowed_sharded_timed::<K, Est<K>>(
                        lattice, config, win, panes, shards, handoff, &keys, theta,
                    )?
                })
            } else {
                with_counter_type!(counter, Est, {
                    run_windowed_timed::<K, Est<K>>(
                        lattice, config, win, panes, batch, &keys, theta,
                    )
                })
            }
        } else if let Some(shards) = shards {
            if volume {
                with_counter_type!(counter, Est, {
                    run_sharded_weighted_timed::<K, Est<K>>(
                        lattice, config, shards, handoff, &weighted, theta,
                    )?
                })
            } else {
                with_counter_type!(counter, Est, {
                    run_sharded_timed::<K, Est<K>>(
                        lattice, config, shards, handoff, true, &keys, theta,
                    )?
                })
            }
        } else {
            with_counter_type!(counter, Est, {
                run_rhhh_timed::<K, Est<K>>(lattice, config, volume, batch, &weighted, &keys, theta)
            })
        };
    } else {
        let kind = algo_kind(algo_name, counter)?;
        if counter != CounterKind::default() && !matches!(kind, AlgoKind::Rhhh { .. }) {
            return Err("--counter supports rhhh/10-rhhh only".into());
        }
        let mut algo = kind.build(lattice.clone(), epsilon, 0xC11);
        let keys: Vec<K> = packets.iter().map(&key_of).collect();
        let start = Instant::now();
        for &k in &keys {
            algo.insert(k);
        }
        elapsed = start.elapsed().as_secs_f64();
        total = algo.packets();
        output = algo.query(theta);
    }

    if let Some((win, panes)) = window {
        println!(
            "# sliding window: last {total} packets covered ({panes}-pane ring over W={win}, \
             pane={} packets)",
            win.div_ceil(panes as u64)
        );
    }
    print_report(
        lattice,
        output,
        filter_prefix,
        algo_name,
        packets.len(),
        total,
        elapsed,
        theta,
        epsilon,
        volume,
        top,
    );
    Ok(())
}

/// Filters, sorts and prints the HHH table — shared by the struct-fed and
/// wire-fed analysis paths.
#[allow(clippy::too_many_arguments)]
fn print_report<K: KeyBits>(
    lattice: &Lattice<K>,
    mut output: Vec<HeavyHitter<K>>,
    filter: Option<hhh_hierarchy::Prefix<K>>,
    algo_name: &str,
    stream_len: usize,
    total: u64,
    elapsed: f64,
    theta: f64,
    epsilon: f64,
    volume: bool,
    top: usize,
) {
    if let Some(filter) = filter {
        output.retain(|h| filter.generalizes(&h.prefix, lattice));
    }
    output.sort_by(|a, b| b.freq_upper.total_cmp(&a.freq_upper));
    let unit = if volume { "bytes" } else { "packets" };
    println!(
        "# {} on {} packets ({total} {unit}), theta={theta}, epsilon={epsilon}, {:.2}s ({:.2} Mpps)",
        algo_name,
        stream_len,
        elapsed,
        stream_len as f64 / elapsed / 1e6,
    );
    println!(
        "{:<46} {:>14} {:>14} {:>8}",
        "prefix", "lower", "upper", "share"
    );
    for h in output.iter().take(top) {
        println!(
            "{:<46} {:>14.0} {:>14.0} {:>7.2}%",
            h.prefix.display(lattice),
            h.freq_lower,
            h.freq_upper,
            100.0 * h.freq_upper / total as f64
        );
    }
}

/// The zero-copy pcap analysis: every block resolves to key lanes through
/// [`WireBlockView`] and feeds `update_batch_wire` — no `Packet` structs
/// exist anywhere on the hot path, and the clock covers parse + sketch
/// together (the quantity the `wire_ingest` benchmark gates).
#[allow(clippy::too_many_arguments)]
fn run_wire_analysis(
    blocks: &[FrameBlock],
    records: u64,
    algo_name: &str,
    epsilon: f64,
    theta: f64,
    volume: bool,
    counter: CounterKind,
    top: usize,
    filter: Option<&str>,
) -> Result<(), String> {
    let lattice = Lattice::ipv4_src_dst_bytes();
    let filter_prefix = filter
        .map(|f| {
            lattice
                .parse_prefix(f)
                .map_err(|e| format!("--filter: {e}"))
        })
        .transpose()?;
    let config = RhhhConfig {
        epsilon_a: epsilon,
        epsilon_s: epsilon,
        delta_s: 0.001,
        v_scale: if algo_name == "10-rhhh" { 10 } else { 1 },
        updates_per_packet: 1,
        seed: 0xC11,
    };
    let (output, frames, skipped, total, elapsed) = with_counter_type!(counter, Est, {
        let mut algo = Rhhh::<u64, Est<u64>>::new(lattice.clone(), config);
        let mut frames = 0u64;
        let mut non_ipv4 = 0u64;
        let mut truncated = 0u64;
        let start = Instant::now();
        for block in blocks {
            let view = WireBlockView::new(block);
            if volume {
                view.ingest_weighted(&mut algo);
            } else {
                view.ingest(&mut algo);
            }
            frames += view.len() as u64;
            non_ipv4 += view.skipped_non_ipv4();
            truncated += view.skipped_truncated();
        }
        let elapsed = start.elapsed().as_secs_f64();
        let total = if volume {
            algo.total_weight()
        } else {
            algo.packets()
        };
        (
            algo.output(theta),
            frames,
            (non_ipv4, truncated),
            total,
            elapsed,
        )
    });
    println!(
        "# wire ingest: {frames} IPv4 frames of {records} records sketched from raw bytes \
         ({} non-IPv4, {} truncated skipped)",
        skipped.0, skipped.1
    );
    print_report(
        &lattice,
        output,
        filter_prefix,
        &format!("{algo_name}(wire)"),
        frames as usize,
        total,
        elapsed,
        theta,
        epsilon,
        volume,
        top,
    );
    Ok(())
}

/// `rhhh speed` — quick Mpps comparison of all algorithms.
pub fn speed(argv: &[String]) -> i32 {
    match speed_inner(argv) {
        Ok(()) => 0,
        Err(e) => {
            eprintln!("error: {e}");
            2
        }
    }
}

fn speed_inner(argv: &[String]) -> Result<(), String> {
    let flags = Flags::parse(argv, &["batch"])?;
    let config = preset(flags.get("preset").unwrap_or("chicago16"))?;
    let packets = flags.num("packets", 1_000_000.0)? as usize;
    let epsilon = flags.num("epsilon", 0.001)?;
    let hierarchy = flags.get("hierarchy").unwrap_or("2d-bytes");
    let batch = flags.switch("batch");
    let counter = counter_kind(&flags)?;
    let shards = shards_flag(&flags)?;
    let handoff = handoff_flag(&flags)?;
    let data = TraceGenerator::new(&config).take_packets(packets);

    println!(
        "# {} packets of {}, epsilon={epsilon}",
        packets, config.name
    );
    println!("{:<26} {:>10}", "algorithm", "Mpps");
    match hierarchy {
        "2d-bytes" => {
            let keys: Vec<u64> = data.iter().map(Packet::key2).collect();
            speed_table(
                &Lattice::ipv4_src_dst_bytes(),
                &keys,
                epsilon,
                batch,
                counter,
                shards,
                handoff,
            );
        }
        "1d-bytes" => {
            let keys: Vec<u32> = data.iter().map(Packet::key1).collect();
            speed_table(
                &Lattice::ipv4_src_bytes(),
                &keys,
                epsilon,
                batch,
                counter,
                shards,
                handoff,
            );
        }
        "1d-bits" => {
            let keys: Vec<u32> = data.iter().map(Packet::key1).collect();
            speed_table(
                &Lattice::ipv4_src_bits(),
                &keys,
                epsilon,
                batch,
                counter,
                shards,
                handoff,
            );
        }
        other => return Err(format!("unknown hierarchy `{other}`")),
    }
    Ok(())
}

/// Measures the shard-parallel pipeline end to end (feed + drain + merge),
/// monomorphized over the selected counter kind.
fn measure_sharded_mpps<K: KeyBits>(
    counter: CounterKind,
    lattice: &Lattice<K>,
    keys: &[K],
    epsilon: f64,
    v_scale: u64,
    shards: usize,
    handoff: Handoff,
) -> f64 {
    let config = RhhhConfig {
        epsilon_a: epsilon,
        epsilon_s: epsilon,
        delta_s: 0.001,
        v_scale,
        updates_per_packet: 1,
        seed: 1,
    };
    let (_, total, elapsed) = with_counter_type!(counter, Est, {
        run_sharded_timed::<K, Est<K>>(lattice, config, shards, handoff, false, keys, 1.0)
    })
    .expect("healthy pipeline");
    total as f64 / elapsed / 1e6
}

fn speed_table<K: KeyBits>(
    lattice: &Lattice<K>,
    keys: &[K],
    epsilon: f64,
    batch: bool,
    counter: CounterKind,
    shards: Option<usize>,
    handoff: Handoff,
) {
    let mut kinds = AlgoKind::roster();
    if counter != CounterKind::default() {
        // A non-default counter adds its RHHH rows next to the roster's,
        // so the layouts read side by side.
        kinds.push(AlgoKind::Rhhh {
            v_scale: 1,
            counter,
        });
        kinds.push(AlgoKind::Rhhh {
            v_scale: 10,
            counter,
        });
    }
    for kind in &kinds {
        let mut algo = kind.build(lattice.clone(), epsilon, 1);
        let mpps = hhh_eval::measure_mpps(algo.as_mut(), keys);
        println!("{:<26} {:>10.2}", kind.label(), mpps);
    }
    if batch {
        for kind in &kinds {
            let AlgoKind::Rhhh { .. } = kind else {
                continue;
            };
            let mut algo = kind.build(lattice.clone(), epsilon, 1);
            let mpps = hhh_eval::measure_mpps_batch(algo.as_mut(), keys, BATCH_CHUNK);
            println!("{:<26} {:>10.2}", format!("{}(batch)", kind.label()), mpps);
        }
    }
    if let Some(shards) = shards {
        for kind in &kinds {
            let AlgoKind::Rhhh { v_scale, counter } = kind else {
                continue;
            };
            let mpps =
                measure_sharded_mpps(*counter, lattice, keys, epsilon, *v_scale, shards, handoff);
            let tag = match handoff {
                Handoff::Ring => String::new(),
                Handoff::Channel => ", channel".to_string(),
            };
            println!(
                "{:<26} {:>10.2}",
                format!("{}(x{shards} shards{tag})", kind.label()),
                mpps
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attack_spec_roundtrip() {
        let atk = parse_attack("10.20.0.0/16->8.8.8.8@0.3").expect("parse");
        assert_eq!(atk.subnet, u32::from_be_bytes([10, 20, 0, 0]));
        assert_eq!(atk.subnet_bits, 16);
        assert_eq!(atk.victim, u32::from_be_bytes([8, 8, 8, 8]));
        assert!((atk.fraction - 0.3).abs() < 1e-12);
    }

    #[test]
    fn attack_spec_errors() {
        assert!(parse_attack("nonsense").is_err());
        assert!(parse_attack("10.0.0.0/8->bad@0.5").is_err());
        assert!(parse_attack("10.0.0.0/8->1.2.3.4@x").is_err());
    }

    #[test]
    fn preset_lookup() {
        assert!(preset("chicago16").is_ok());
        assert!(preset("nope").is_err());
    }

    #[test]
    fn algo_lookup() {
        for name in [
            "rhhh",
            "10-rhhh",
            "mst",
            "full-ancestry",
            "partial-ancestry",
        ] {
            assert!(algo_kind(name, CounterKind::default()).is_ok(), "{name}");
        }
        assert!(algo_kind("bogus", CounterKind::default()).is_err());
    }

    #[test]
    fn shards_flag_parses() {
        let f = Flags::parse(&["--shards".to_string(), "4".to_string()], &[]).expect("parse");
        assert_eq!(shards_flag(&f), Ok(Some(4)));
        let none = Flags::parse(&[], &[]).expect("parse");
        assert_eq!(shards_flag(&none), Ok(None));
        let zero = Flags::parse(&["--shards".to_string(), "0".to_string()], &[]).expect("parse");
        assert_eq!(shards_flag(&zero), Ok(None));
        let bad = Flags::parse(&["--shards".to_string(), "2.5".to_string()], &[]).expect("parse");
        assert!(shards_flag(&bad).is_err());
        let neg = Flags::parse(&["--shards".to_string(), "-1".to_string()], &[]).expect("parse");
        assert!(shards_flag(&neg).is_err());
        let huge = Flags::parse(&["--shards".to_string(), "1e9".to_string()], &[]).expect("parse");
        assert!(shards_flag(&huge).is_err(), "absurd shard counts rejected");
    }

    #[test]
    fn sharded_analysis_runs_end_to_end() {
        // A small in-process run through the full --shards path: generate,
        // analyze sharded, find the planted attack in the output table.
        let lat = Lattice::ipv4_src_dst_bytes();
        let config = RhhhConfig {
            epsilon_a: 0.005,
            epsilon_s: 0.02,
            delta_s: 0.05,
            v_scale: 1,
            updates_per_packet: 1,
            seed: 0xC11,
        };
        let trace = preset("chicago16")
            .expect("preset")
            .with_attack(parse_attack("10.20.0.0/16->8.8.8.8@0.3").expect("attack"));
        let keys: Vec<u64> = TraceGenerator::new(&trace)
            .take_packets(200_000)
            .iter()
            .map(Packet::key2)
            .collect();
        let (output, total, elapsed) = run_sharded_timed::<u64, SpaceSaving<u64>>(
            &lat,
            config,
            3,
            Handoff::Ring,
            true,
            &keys,
            0.1,
        )
        .expect("healthy pipeline");
        assert_eq!(total, 200_000);
        assert!(elapsed > 0.0);
        assert!(
            output
                .iter()
                .any(|h| h.prefix.display(&lat).contains("10.20.0.0/16")),
            "sharded analysis must find the planted attack"
        );
    }

    #[test]
    fn sharded_weighted_analysis_runs_end_to_end() {
        // The --shards --volume path: byte-weighted HHHs through the
        // shard-parallel pipeline, weight conserved end to end.
        let lat = Lattice::ipv4_src_dst_bytes();
        let config = RhhhConfig {
            epsilon_a: 0.005,
            epsilon_s: 0.02,
            delta_s: 0.05,
            v_scale: 1,
            updates_per_packet: 1,
            seed: 0xC11,
        };
        // Plant a volume-heavy flow: 10% of packets at 1400 B against a
        // 64 B background — ~70% of bytes, no packet-count dominance.
        let background =
            TraceGenerator::new(&preset("chicago16").expect("preset")).take_packets(200_000);
        let heavy = hhh_hierarchy::pack2(
            u32::from_be_bytes([7, 7, 7, 7]),
            u32::from_be_bytes([8, 8, 8, 8]),
        );
        let weighted: Vec<(u64, u64)> = background
            .iter()
            .enumerate()
            .map(|(i, p)| {
                if i % 10 == 0 {
                    (heavy, 1400)
                } else {
                    (p.key2(), 64)
                }
            })
            .collect();
        let volume: u64 = weighted.iter().map(|&(_, w)| w).sum();
        let (output, total, elapsed) = run_sharded_weighted_timed::<u64, SpaceSaving<u64>>(
            &lat,
            config,
            3,
            Handoff::Channel,
            &weighted,
            0.3,
        )
        .expect("healthy pipeline");
        assert_eq!(total, volume, "sharded volume must be conserved");
        assert!(elapsed > 0.0);
        assert!(
            output
                .iter()
                .any(|h| h.prefix.display(&lat).contains("7.7.7.7/32")),
            "weighted sharded analysis must find the volume-heavy flow"
        );
    }

    #[test]
    fn window_flags_parse() {
        let args = |argv: &[&str]| {
            Flags::parse(
                &argv.iter().map(ToString::to_string).collect::<Vec<_>>(),
                &[],
            )
            .expect("parse")
        };
        assert_eq!(window_flags(&args(&[])), Ok(None));
        assert_eq!(
            window_flags(&args(&["--window", "100000"])),
            Ok(Some((100_000, DEFAULT_PANES)))
        );
        assert_eq!(
            window_flags(&args(&["--window", "100000", "--panes", "8"])),
            Ok(Some((100_000, 8)))
        );
        assert!(window_flags(&args(&["--panes", "8"])).is_err());
        assert!(window_flags(&args(&["--window", "2.5"])).is_err());
        assert!(window_flags(&args(&["--window", "100", "--panes", "0"])).is_err());
        assert!(window_flags(&args(&["--window", "100", "--panes", "1000"])).is_err());
        assert!(window_flags(&args(&["--window", "4", "--panes", "8"])).is_err());
    }

    #[test]
    fn windowed_analysis_covers_the_recent_window_only() {
        // Old attack traffic followed by a clean window: the windowed
        // analysis (batch path, both counter layouts) must answer from the
        // recent window and drop the aged-out attack.
        let lat = Lattice::ipv4_src_dst_bytes();
        let config = RhhhConfig {
            epsilon_a: 0.005,
            epsilon_s: 0.05,
            delta_s: 0.05,
            v_scale: 1,
            updates_per_packet: 1,
            seed: 0xC11,
        };
        let attacked = preset("chicago16")
            .expect("preset")
            .with_attack(parse_attack("10.20.0.0/16->8.8.8.8@0.3").expect("attack"));
        let mut keys: Vec<u64> = TraceGenerator::new(&attacked)
            .take_packets(120_000)
            .iter()
            .map(Packet::key2)
            .collect();
        keys.extend(
            TraceGenerator::new(&preset("chicago16").expect("preset"))
                .take_packets(120_000)
                .iter()
                .map(Packet::key2),
        );
        for batch in [false, true] {
            let (output, covered, _) = run_windowed_timed::<u64, SpaceSaving<u64>>(
                &lat, config, 100_000, 4, batch, &keys, 0.1,
            );
            assert_eq!(covered, 100_000, "4 panes of 25k cover the window");
            assert!(
                !output
                    .iter()
                    .any(|h| h.prefix.display(&lat).contains("10.20.0.0/16")),
                "batch={batch}: attack older than the window must age out"
            );
        }
        // Compact layout, attack inside the window: must be found.
        let attacked_keys: Vec<u64> = TraceGenerator::new(&attacked)
            .take_packets(240_000)
            .iter()
            .map(Packet::key2)
            .collect();
        let (output, covered, _) = run_windowed_timed::<u64, CompactSpaceSaving<u64>>(
            &lat,
            config,
            100_000,
            4,
            true,
            &attacked_keys,
            0.1,
        );
        assert_eq!(covered, 100_000);
        assert!(
            output
                .iter()
                .any(|h| h.prefix.display(&lat).contains("10.20.0.0/16")),
            "attack inside the window must be reported"
        );
    }

    #[test]
    fn windowed_sharded_analysis_runs_end_to_end() {
        let lat = Lattice::ipv4_src_dst_bytes();
        let config = RhhhConfig {
            epsilon_a: 0.005,
            epsilon_s: 0.05,
            delta_s: 0.05,
            v_scale: 1,
            updates_per_packet: 1,
            seed: 0xC11,
        };
        let attacked = preset("chicago16")
            .expect("preset")
            .with_attack(parse_attack("10.20.0.0/16->8.8.8.8@0.3").expect("attack"));
        let keys: Vec<u64> = TraceGenerator::new(&attacked)
            .take_packets(200_000)
            .iter()
            .map(Packet::key2)
            .collect();
        let (output, covered, elapsed) = run_windowed_sharded_timed::<u64, SpaceSaving<u64>>(
            &lat,
            config,
            100_000,
            4,
            3,
            Handoff::Ring,
            &keys,
            0.1,
        )
        .expect("healthy pipeline");
        assert_eq!(covered, 100_000);
        assert!(elapsed > 0.0);
        assert!(
            output
                .iter()
                .any(|h| h.prefix.display(&lat).contains("10.20.0.0/16")),
            "windowed sharded analysis must find the in-window attack"
        );
    }

    fn argv(parts: &[&str]) -> Vec<String> {
        parts.iter().map(ToString::to_string).collect()
    }

    #[test]
    fn analyze_rejects_conflicting_sources() {
        let err = analyze_inner(&argv(&["--pcap", "x.pcap", "--trace", "y.trc"])).unwrap_err();
        assert!(err.contains("one input source"), "{err}");
        let err = analyze_inner(&argv(&["--scenario", "ddos-ramp", "--preset", "chicago16"]))
            .unwrap_err();
        assert!(err.contains("one input source"), "{err}");
    }

    #[test]
    fn pcap_rejects_window() {
        // Validated before the file is touched, so no fixture needed.
        let err =
            analyze_inner(&argv(&["--pcap", "missing.pcap", "--window", "1000"])).unwrap_err();
        assert!(err.contains("--window"), "{err}");
    }

    #[test]
    fn scenario_names_resolve_everywhere() {
        for kind in ScenarioKind::all() {
            assert_eq!(ScenarioKind::parse(kind.name()), Ok(kind));
        }
        let err = analyze_inner(&argv(&["--scenario", "nope"])).unwrap_err();
        assert!(err.contains("nope"), "{err}");
    }

    #[test]
    fn pcap_wire_and_materialized_paths_run_end_to_end() {
        // generate --scenario → .pcap → analyze --pcap through both the
        // zero-copy wire fast path and the struct-materializing fallback.
        let dir = std::env::temp_dir().join(format!("rhhh-cli-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let pcap = dir.join("ramp.pcap");
        let path = pcap.to_str().expect("utf-8 path");
        generate_inner(&argv(&[
            "--scenario",
            "ddos-ramp",
            "--packets",
            "30000",
            "--out",
            path,
        ]))
        .expect("generate pcap");
        // Wire fast path: 2d-bytes + rhhh + --batch, with a filter.
        analyze_inner(&argv(&[
            "--pcap",
            path,
            "--batch",
            "--theta",
            "0.05",
            "--filter",
            "8.8.8.8/32,*",
        ]))
        .expect("wire-plane analyze");
        // Fallback: 1d hierarchy materializes structs from the same blocks.
        analyze_inner(&argv(&[
            "--pcap",
            path,
            "--batch",
            "--hierarchy",
            "1d-bytes",
            "--theta",
            "0.05",
        ]))
        .expect("materialized analyze");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn counter_flag_parses() {
        let f = Flags::parse(
            &["--counter".to_string(), "compact".to_string()],
            &["batch"],
        )
        .expect("parse");
        assert_eq!(counter_kind(&f), Ok(CounterKind::Compact));
        let none = Flags::parse(&[], &[]).expect("parse");
        assert_eq!(counter_kind(&none), Ok(CounterKind::StreamSummary));
        let bad = Flags::parse(&["--counter".to_string(), "nope".to_string()], &[]).expect("parse");
        assert!(counter_kind(&bad).is_err());
    }
}
