//! `rhhh` — command-line front end for the RHHH reproduction.
//!
//! ```text
//! rhhh generate --preset chicago16 --packets 1000000 --out trace.trc
//! rhhh generate --scenario ddos-ramp --packets 1000000 --out ramp.pcap
//! rhhh analyze  --trace trace.trc --algorithm rhhh --hierarchy 2d-bytes --theta 0.03
//! rhhh analyze  --pcap ramp.pcap --algorithm 10-rhhh --batch
//! rhhh analyze  --preset sanjose14 --packets 2000000 --volume
//! rhhh speed    --hierarchy 1d-bits --packets 1000000
//! ```

mod args;
mod commands;

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let code = match argv.first().map(String::as_str) {
        Some("generate") => commands::generate(&argv[1..]),
        Some("analyze") => commands::analyze(&argv[1..]),
        Some("speed") => commands::speed(&argv[1..]),
        Some("--help" | "-h" | "help") | None => {
            print_usage();
            0
        }
        Some(other) => {
            eprintln!("unknown command `{other}`\n");
            print_usage();
            2
        }
    };
    std::process::exit(code);
}

fn print_usage() {
    eprintln!(
        "rhhh — hierarchical heavy hitters (SIGCOMM'17 reproduction)

USAGE:
    rhhh generate (--preset <name> | --scenario <name>) --packets <n> \\
                  --out <file.trc|file.pcap>   (.pcap writes raw frames) \\
                  [--attack <subnet>/<bits>-><victim>@<fraction>]
    rhhh analyze  (--trace <file.trc> | --pcap <file.pcap> | --scenario <name> \\
                   | --preset <name> --packets <n>) \\
                  [--algorithm rhhh|10-rhhh|mst|full-ancestry|partial-ancestry] \\
                  [--hierarchy 1d-bytes|1d-bits|2d-bytes] \\
                  [--counter stream-summary|compact|heap|misra-gries|lossy-counting] \\
                  [--theta <t>] [--epsilon <e>] [--volume] [--batch] \\
                  [--shards <n>]           (hash-partition across n worker threads) \\
                  [--handoff ring|channel] (shard ingest plane; default lock-free ring) \\
                  [--window <w> [--panes <g>]]  (sliding window: last w packets, g-pane ring) \\
                  [--top <k>] [--filter <prefix>]   (e.g. --filter 10.0.0.0/8,*)
    rhhh speed    [--hierarchy <h>] [--packets <n>] [--preset <name>] [--batch] \\
                  [--counter <kind>] [--shards <n>] [--handoff ring|channel]

--pcap feeds the zero-copy wire plane (raw frame bytes straight into the
sketch) when the analysis is 2d-bytes + rhhh/10-rhhh + --batch without
--shards; other combinations materialize packet structs first. --window
needs a materialized trace.

PRESETS:   chicago15 chicago16 sanjose13 sanjose14
SCENARIOS: ddos-ramp flash-crowd scan-sweep diurnal-drift multi-tenant"
    );
}
