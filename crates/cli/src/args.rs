//! Minimal flag parsing — deliberately dependency-free.

use std::collections::HashMap;

/// Parsed `--flag value` pairs plus boolean switches.
pub struct Flags {
    values: HashMap<String, String>,
    switches: Vec<String>,
}

impl Flags {
    /// Parses `--key value` and bare `--switch` tokens.
    ///
    /// # Errors
    ///
    /// Returns a message for non-flag positional tokens.
    pub fn parse(argv: &[String], switches: &[&str]) -> Result<Self, String> {
        let mut values = HashMap::new();
        let mut found = Vec::new();
        let mut it = argv.iter().peekable();
        while let Some(tok) = it.next() {
            let Some(name) = tok.strip_prefix("--") else {
                return Err(format!("unexpected positional argument `{tok}`"));
            };
            if switches.contains(&name) {
                found.push(name.to_string());
            } else {
                let value = it
                    .next()
                    .ok_or_else(|| format!("--{name} expects a value"))?;
                values.insert(name.to_string(), value.clone());
            }
        }
        Ok(Self {
            values,
            switches: found,
        })
    }

    /// String value of a flag.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.values.get(name).map(String::as_str)
    }

    /// Required string value.
    ///
    /// # Errors
    ///
    /// Returns a message when the flag is absent.
    pub fn require(&self, name: &str) -> Result<&str, String> {
        self.get(name)
            .ok_or_else(|| format!("--{name} is required"))
    }

    /// Numeric value with default.
    ///
    /// # Errors
    ///
    /// Returns a message when the value does not parse.
    pub fn num(&self, name: &str, default: f64) -> Result<f64, String> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse::<f64>()
                .map_err(|_| format!("--{name} expects a number, got `{v}`")),
        }
    }

    /// Whether a boolean switch was present.
    pub fn switch(&self, name: &str) -> bool {
        self.switches.iter().any(|s| s == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(parts: &[&str]) -> Vec<String> {
        parts.iter().map(ToString::to_string).collect()
    }

    #[test]
    fn parses_values_and_switches() {
        let f = Flags::parse(
            &v(&["--packets", "100", "--volume", "--theta", "0.05"]),
            &["volume"],
        )
        .expect("parse");
        assert_eq!(f.get("packets"), Some("100"));
        assert_eq!(f.num("theta", 0.0).unwrap(), 0.05);
        assert!(f.switch("volume"));
        assert!(!f.switch("quick"));
    }

    #[test]
    fn rejects_positional() {
        assert!(Flags::parse(&v(&["oops"]), &[]).is_err());
    }

    #[test]
    fn missing_value_is_error() {
        assert!(Flags::parse(&v(&["--packets"]), &[]).is_err());
    }

    #[test]
    fn require_and_defaults() {
        let f = Flags::parse(&v(&["--out", "x.trc"]), &[]).expect("parse");
        assert_eq!(f.require("out").unwrap(), "x.trc");
        assert!(f.require("missing").is_err());
        assert_eq!(f.num("packets", 42.0).unwrap(), 42.0);
    }

    #[test]
    fn bad_number_is_error() {
        let f = Flags::parse(&v(&["--theta", "abc"]), &[]).expect("parse");
        assert!(f.num("theta", 0.0).is_err());
    }
}
