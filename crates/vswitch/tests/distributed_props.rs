//! `DistributedStats` accounting properties: every switch-side packet is
//! counted exactly once — forwarded, dropped or unsampled — under
//! `DropNewest` backpressure, on every seed, queue size and operating
//! point, for both the single-VM and the multi-VM fan-out frontends.

use hhh_core::RhhhConfig;
use hhh_hierarchy::Lattice;
use hhh_vswitch::{Backpressure, DistributedRhhh, MultiVmDistributedRhhh};
use proptest::prelude::*;

struct Lcg(u64);
impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 16
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// packets == forwarded + dropped + unsampled for the single-VM
    /// frontend under DropNewest, with a deliberately tiny queue so drops
    /// actually occur, across seeds, V multipliers and stream lengths.
    #[test]
    fn stats_account_every_packet(
        seed in any::<u64>(),
        v_scale in 1u64..12,
        queue_pow in 0u32..8,
        n in 1_000u64..12_000,
    ) {
        let lat = Lattice::ipv4_src_dst_bytes();
        let config = RhhhConfig { v_scale, seed, ..RhhhConfig::default() };
        let mut dist = DistributedRhhh::spawn(
            lat,
            config,
            1usize << queue_pow,
            Backpressure::DropNewest,
        );
        let mut rng = Lcg(seed ^ 0xABCD);
        for _ in 0..n {
            dist.update(rng.next());
        }
        let (backend, stats) = dist.finish();
        prop_assert_eq!(stats.packets, n);
        prop_assert_eq!(
            stats.packets,
            stats.forwarded + stats.dropped + stats.unsampled,
            "leaked a packet: {:?}", stats
        );
        // Only forwarded samples can reach the backend's counters.
        prop_assert_eq!(backend.total_updates(), stats.forwarded);
        // V = H never skips, so unsampled must be zero there.
        if v_scale == 1 {
            prop_assert_eq!(stats.unsampled, 0);
        }
    }

    /// The same invariant holds for the multi-VM fan-out frontend, whose
    /// sampled keys additionally route across several queues.
    #[test]
    fn multi_vm_stats_account_every_packet(
        seed in any::<u64>(),
        v_scale in 1u64..12,
        vms in 1usize..5,
        n in 1_000u64..10_000,
    ) {
        let lat = Lattice::ipv4_src_dst_bytes();
        let config = RhhhConfig { v_scale, seed, ..RhhhConfig::default() };
        let mut dist = MultiVmDistributedRhhh::spawn(
            lat,
            config,
            vms,
            1, // capacity-1 queues: heavy contention guaranteed
            Backpressure::DropNewest,
        );
        let mut rng = Lcg(seed ^ 0x1234);
        for _ in 0..n {
            dist.update(rng.next());
        }
        let (backend, stats) = dist.finish();
        prop_assert_eq!(stats.packets, n);
        prop_assert_eq!(
            stats.packets,
            stats.forwarded + stats.dropped + stats.unsampled,
            "leaked a packet: {:?}", stats
        );
        prop_assert_eq!(backend.total_updates(), stats.forwarded);
    }
}
