//! Differential property: the hand-off plane is *transport*, not
//! *semantics*. For any stream, shard count, batch grain and seed, the
//! ring-ingest monitor and the legacy channel monitor must harvest
//! bit-identical answers — same packet/update/weight ledgers, same output
//! rows in the same order — on both the flat and the windowed pipeline.

use hhh_core::{HeavyHitter, HhhAlgorithm, RhhhConfig};
use hhh_counters::SpaceSaving;
use hhh_hierarchy::Lattice;
use hhh_vswitch::{Handoff, ShardedMonitor, SpawnOptions, WindowedShardedMonitor};
use proptest::collection::vec;
use proptest::prelude::*;
use proptest::sample::select;

fn config(seed: u64) -> RhhhConfig {
    RhhhConfig {
        epsilon_a: 0.01,
        epsilon_s: 0.05,
        delta_s: 0.05,
        seed,
        ..RhhhConfig::default()
    }
}

fn opts(handoff: Handoff) -> SpawnOptions {
    SpawnOptions {
        handoff,
        ..SpawnOptions::default()
    }
}

/// Harvest summary: the ledgers plus the full output table at θ = 0.05.
type Harvest = (u64, u64, u64, Vec<HeavyHitter<u64>>);

fn flat_harvest(handoff: Handoff, keys: &[u64], shards: usize, batch: usize, seed: u64) -> Harvest {
    let lat = Lattice::ipv4_src_dst_bytes();
    let mut mon = ShardedMonitor::<u64, SpaceSaving<u64>>::spawn_with(
        lat,
        config(seed),
        shards,
        batch,
        opts(handoff),
    )
    .expect("spawn workers");
    for &k in keys {
        mon.update(k);
    }
    let merged = mon.harvest().expect("healthy pipeline");
    (
        merged.packets(),
        merged.total_updates(),
        merged.total_weight(),
        merged.output(0.05),
    )
}

fn windowed_harvest(
    handoff: Handoff,
    keys: &[u64],
    shards: usize,
    batch: usize,
    window: u64,
    panes: usize,
    seed: u64,
) -> Harvest {
    let lat = Lattice::ipv4_src_dst_bytes();
    let mut mon = WindowedShardedMonitor::<u64, SpaceSaving<u64>>::spawn_with(
        lat,
        config(seed),
        shards,
        batch,
        window,
        panes,
        opts(handoff),
    )
    .expect("spawn workers");
    for &k in keys {
        mon.update(k);
    }
    let merged = mon.harvest_window().expect("healthy pipeline");
    (
        merged.packets(),
        merged.total_updates(),
        merged.total_weight(),
        merged.output(0.05),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Flat pipeline: ring and channel hand-offs harvest bit-identical
    /// monitors for arbitrary streams, shard counts, grains and seeds.
    #[test]
    fn ring_and_channel_harvest_identically(
        keys in vec(0u64..50_000, 1..3_000),
        shards in 1usize..5,
        batch in select(vec![1usize, 16, 256]),
        seed in any::<u64>(),
    ) {
        let ring = flat_harvest(Handoff::Ring, &keys, shards, batch, seed);
        let channel = flat_harvest(Handoff::Channel, &keys, shards, batch, seed);
        prop_assert_eq!(ring, channel, "hand-off plane changed the answer");
    }

    /// Windowed pipeline: the same holds across pane rotations — the
    /// rotation broadcasts ride the same hand-off and must not reorder
    /// against batches.
    #[test]
    fn windowed_ring_and_channel_harvest_identically(
        keys in vec(0u64..50_000, 1..3_000),
        shards in 1usize..4,
        batch in select(vec![1usize, 64]),
        panes in 2usize..5,
        seed in any::<u64>(),
    ) {
        let window = 1_000u64;
        let ring = windowed_harvest(Handoff::Ring, &keys, shards, batch, window, panes, seed);
        let channel =
            windowed_harvest(Handoff::Channel, &keys, shards, batch, window, panes, seed);
        prop_assert_eq!(ring, channel, "hand-off plane changed the windowed answer");
    }
}
