//! Freshness properties of the non-blocking snapshot query plane.
//!
//! The plane promises a *bounded-staleness* read: `query()` never sees
//! packets that were not fed (coverage is conservative at every instant),
//! and after an explicit publish marker drains it sees *everything* fed
//! before the marker — exactly, for any stream, shard count, batch grain
//! and publication interval. The cached and from-scratch query paths must
//! agree whenever the cache is keyed to the current epochs.

use std::time::{Duration, Instant};

use hhh_core::RhhhConfig;
use hhh_counters::SpaceSaving;
use hhh_hierarchy::Lattice;
use hhh_vswitch::{ShardedMonitor, SpawnOptions};
use proptest::collection::vec;
use proptest::prelude::*;
use proptest::sample::select;

fn config(seed: u64) -> RhhhConfig {
    RhhhConfig {
        epsilon_a: 0.01,
        epsilon_s: 0.05,
        delta_s: 0.05,
        seed,
        ..RhhhConfig::default()
    }
}

fn wait_until(mut done: impl FnMut() -> bool, what: &str) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while !done() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(1));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// At every instant coverage is conservative (`≤` packets fed so
    /// far); after the feed stops and a publish marker drains, coverage
    /// converges to *exactly* the fed count — the snapshot plane neither
    /// invents nor permanently loses packets, whatever the publication
    /// interval.
    #[test]
    fn coverage_is_conservative_then_exact(
        keys in vec(0u64..20_000, 1..2_000),
        shards in 1usize..5,
        batch in select(vec![1usize, 16, 256]),
        publish_every in select(vec![1u64, 4, u64::MAX]),
        seed in any::<u64>(),
    ) {
        let lat = Lattice::ipv4_src_dst_bytes();
        let mut mon = ShardedMonitor::<u64, SpaceSaving<u64>>::spawn_with(
            lat,
            config(seed),
            shards,
            batch,
            SpawnOptions { publish_every, ..SpawnOptions::default() },
        )
        .expect("spawn workers");

        let mut fed = 0u64;
        for chunk in keys.chunks(257) {
            for &k in chunk {
                mon.update(k);
            }
            fed += chunk.len() as u64;
            prop_assert!(
                mon.query_coverage() <= fed,
                "snapshots claimed packets that were never fed"
            );
        }
        mon.publish_now();
        let total = keys.len() as u64;
        wait_until(|| mon.query_coverage() == total, "exact post-publish coverage");

        // With the epochs settled, the cached query and a from-scratch
        // K-way merge must give the same answer.
        let cached = mon.query(0.05);
        let fresh = mon.query_fresh(0.05);
        prop_assert_eq!(cached, fresh, "cache diverged from the snapshots");

        mon.harvest().expect("healthy pipeline");
    }

    /// Staleness is bounded by the publication interval: with
    /// `publish_every = 1` every batch hand-off publishes, so once the
    /// feed quiesces (flush, no explicit marker needed) the snapshots
    /// converge to full coverage on their own.
    #[test]
    fn auto_publication_converges_without_markers(
        keys in vec(0u64..20_000, 1..1_000),
        shards in 1usize..4,
        seed in any::<u64>(),
    ) {
        let lat = Lattice::ipv4_src_dst_bytes();
        let mut mon = ShardedMonitor::<u64, SpaceSaving<u64>>::spawn_with(
            lat,
            config(seed),
            shards,
            32,
            SpawnOptions { publish_every: 1, ..SpawnOptions::default() },
        )
        .expect("spawn workers");
        for &k in &keys {
            mon.update(k);
        }
        mon.flush();
        let total = keys.len() as u64;
        wait_until(|| mon.query_coverage() == total, "auto-published coverage");
        mon.harvest().expect("healthy pipeline");
    }
}
