//! Property tests: the packet parser must never panic on arbitrary bytes,
//! and build→parse must round-trip every field.

use hhh_vswitch::{build_udp_frame, EthernetFrame, Ipv4View, UdpView};
use proptest::prelude::*;

proptest! {
    /// Whatever bytes arrive off the wire, checked constructors return
    /// errors — they never panic or read out of bounds.
    #[test]
    fn parser_never_panics(buf in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = EthernetFrame::new_checked(&buf)
            .and_then(|e| Ipv4View::new_checked(e.payload()))
            .and_then(|i| UdpView::new_checked(i.payload()));
    }

    /// Round-trip: every header field survives build → parse.
    #[test]
    fn build_parse_roundtrip(
        src in any::<u32>(),
        dst in any::<u32>(),
        sport in any::<u16>(),
        dport in any::<u16>(),
        payload in 0usize..512,
    ) {
        let frame = build_udp_frame(src, dst, sport, dport, payload);
        let eth = EthernetFrame::new_checked(&frame).expect("eth");
        let ip = Ipv4View::new_checked(eth.payload()).expect("ip");
        prop_assert_eq!(ip.src(), src);
        prop_assert_eq!(ip.dst(), dst);
        prop_assert_eq!(ip.protocol(), 17);
        let udp = UdpView::new_checked(ip.payload()).expect("udp");
        prop_assert_eq!(udp.src_port(), sport);
        prop_assert_eq!(udp.dst_port(), dport);
        prop_assert_eq!(ip.payload().len(), 8 + payload);
    }

    /// Truncating a valid frame anywhere yields an error or a shorter
    /// parse, never a panic.
    #[test]
    fn truncation_is_graceful(cut in 0usize..64) {
        let frame = build_udp_frame(0x0A000001, 0x08080808, 53, 53, 22);
        let cut = cut.min(frame.len());
        let _ = EthernetFrame::new_checked(&frame[..cut])
            .and_then(|e| Ipv4View::new_checked(e.payload()))
            .and_then(|i| UdpView::new_checked(i.payload()));
    }
}
