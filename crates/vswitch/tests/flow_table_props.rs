//! Property tests for the classifier tiers: masking laws and lookup
//! consistency under arbitrary rule sets.

use hhh_vswitch::flow_table::FlowMask;
use hhh_vswitch::{Action, FlowKey, MegaflowTable, MicroflowCache};
use proptest::prelude::*;

fn arb_key() -> impl Strategy<Value = FlowKey> {
    (
        any::<u32>(),
        any::<u32>(),
        any::<u16>(),
        any::<u16>(),
        any::<u8>(),
    )
        .prop_map(|(src, dst, src_port, dst_port, proto)| FlowKey {
            src,
            dst,
            src_port,
            dst_port,
            proto,
        })
}

fn arb_mask() -> impl Strategy<Value = FlowMask> {
    (0u8..=32, 0u8..=32, any::<bool>()).prop_map(|(s, d, ports)| {
        let mut m = FlowMask::prefixes(s, d);
        if ports {
            m.src_port = u16::MAX;
            m.dst_port = u16::MAX;
            m.proto = u8::MAX;
        }
        m
    })
}

proptest! {
    /// Masking is idempotent and monotone: masking twice equals once, and
    /// a masked key always matches its own rule.
    #[test]
    fn masking_laws(key in arb_key(), mask in arb_mask()) {
        let once = key.masked(&mask);
        prop_assert_eq!(once.masked(&mask), once);
        let mut table = MegaflowTable::new();
        table.insert(1, mask, key, Action::Output(9));
        prop_assert_eq!(table.lookup(&key), Some(Action::Output(9)));
    }

    /// A key differing only in masked-out bits still matches; a key
    /// differing in a kept bit does not match a fully-exact rule.
    #[test]
    fn wildcard_semantics(key in arb_key(), flip_port in any::<u16>()) {
        let mask = FlowMask::prefixes(32, 32); // exact IPs, wild ports
        let mut table = MegaflowTable::new();
        table.insert(1, mask, key, Action::Drop);
        let mut other = key;
        other.src_port ^= flip_port;
        prop_assert_eq!(table.lookup(&other), Some(Action::Drop));

        let exact = FlowMask::exact();
        let mut table = MegaflowTable::new();
        table.insert(1, exact, key, Action::Drop);
        let mut diff = key;
        diff.src = !diff.src;
        prop_assert_eq!(table.lookup(&diff), None);
    }

    /// Highest priority wins regardless of insertion order.
    #[test]
    fn priority_total_order(
        key in arb_key(),
        priorities in proptest::collection::vec(-100i32..100, 1..8),
    ) {
        let mut table = MegaflowTable::new();
        for (i, &p) in priorities.iter().enumerate() {
            table.insert(p, FlowMask::exact(), key, Action::Output(i as u16));
        }
        let best = priorities
            .iter()
            .enumerate()
            .max_by_key(|(i, &p)| (p, *i as i64))
            .map(|(i, _)| i as u16)
            .expect("non-empty");
        // Ties share one hash table (later insert overwrites), so the
        // winner is the max priority with the latest insertion among ties.
        prop_assert_eq!(table.lookup(&key), Some(Action::Output(best)));
    }

    /// The microflow cache never returns an action that was not installed
    /// for exactly that key.
    #[test]
    fn microflow_exactness(
        keys in proptest::collection::vec(arb_key(), 1..64),
        probe in arb_key(),
    ) {
        let mut cache = MicroflowCache::new(16);
        for (i, k) in keys.iter().enumerate() {
            cache.install(*k, Action::Output(i as u16));
        }
        if let Some(Action::Output(port)) = cache.lookup(&probe) {
            prop_assert_eq!(
                keys.get(port as usize),
                Some(&probe),
                "cache returned an action for a different key"
            );
        }
    }
}
