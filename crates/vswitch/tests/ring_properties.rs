//! FIFO / no-loss / no-duplication properties of the crossbeam shim's
//! [`ArrayQueue`] — the SPSC ring under the sharded hand-off plane —
//! checked under arbitrary chunkings of pushes and pops, both
//! single-threaded (where the model queue is exact) and across a real
//! producer/consumer thread pair.

use std::collections::VecDeque;
use std::sync::Arc;

use crossbeam::queue::ArrayQueue;
use proptest::collection::vec;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Arbitrary interleavings of push-chunks and pop-chunks behave
    /// exactly like a bounded FIFO model: every accepted push comes back
    /// out exactly once, in order; rejections happen only at capacity;
    /// empty pops happen only when the model is empty.
    #[test]
    fn fifo_model_under_arbitrary_chunkings(
        cap in 1usize..64,
        ops in vec((0usize..32, 0usize..32), 1..64),
    ) {
        let q = ArrayQueue::new(cap);
        let mut model: VecDeque<u64> = VecDeque::new();
        let mut next = 0u64;
        let mut popped: Vec<u64> = Vec::new();
        for (pushes, pops) in ops {
            for _ in 0..pushes {
                match q.push(next) {
                    Ok(()) => model.push_back(next),
                    Err(bounced) => {
                        prop_assert_eq!(bounced, next, "rejected value returns intact");
                        prop_assert_eq!(model.len(), q.capacity(), "rejects only at capacity");
                    }
                }
                next += 1;
            }
            for _ in 0..pops {
                match q.pop() {
                    Some(v) => {
                        prop_assert_eq!(Some(v), model.pop_front(), "FIFO order");
                        popped.push(v);
                    }
                    None => prop_assert!(model.is_empty(), "empty pops only when empty"),
                }
            }
        }
        while let Some(v) = q.pop() {
            prop_assert_eq!(Some(v), model.pop_front(), "drain stays FIFO");
            popped.push(v);
        }
        prop_assert!(model.is_empty(), "no element lost in the ring");
        prop_assert!(
            popped.windows(2).all(|w| w[0] < w[1]),
            "no duplicates, strictly increasing"
        );
    }

    /// A real SPSC pair: the producer pushes `0..total` in arbitrary
    /// chunk sizes (retrying on full), the consumer drains concurrently.
    /// The consumer must see exactly `0, 1, 2, …, total-1` — no loss, no
    /// duplication, no reordering — for any capacity and chunking.
    #[test]
    fn spsc_cross_thread_no_loss_no_dup(
        cap in 1usize..32,
        chunks in vec(1usize..64, 1..32),
    ) {
        let q = Arc::new(ArrayQueue::new(cap));
        let total: usize = chunks.iter().sum();
        let consumer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                let mut got = Vec::with_capacity(total);
                while got.len() < total {
                    match q.pop() {
                        Some(v) => got.push(v),
                        None => std::thread::yield_now(),
                    }
                }
                got
            })
        };
        let mut next = 0u64;
        for chunk in chunks {
            for _ in 0..chunk {
                let mut v = next;
                loop {
                    match q.push(v) {
                        Ok(()) => break,
                        Err(bounced) => {
                            v = bounced;
                            std::thread::yield_now();
                        }
                    }
                }
                next += 1;
            }
        }
        let got = consumer.join().expect("consumer thread");
        prop_assert_eq!(got.len(), total, "no loss");
        prop_assert!(
            got.iter().enumerate().all(|(i, &v)| v == i as u64),
            "exact in-order sequence: no duplication or reordering"
        );
    }
}
