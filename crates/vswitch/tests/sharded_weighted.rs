//! Weight-conservation properties of the `ShardedMonitor` volume feed:
//! however a weighted stream is split across shards, buffered, batched and
//! merged back, the harvested instance's packet and weight totals must
//! equal the input's exactly — weight is neither created nor lost by
//! hash-routing, channel hand-off, the per-shard weighted batch path or
//! the K-way merge.

use hhh_core::{HhhAlgorithm, RhhhConfig};
use hhh_counters::{CompactSpaceSaving, FrequencyEstimator, SpaceSaving};
use hhh_hierarchy::Lattice;
use hhh_vswitch::ShardedMonitor;
use proptest::collection::vec;
use proptest::prelude::*;
use proptest::sample::select;

fn config(seed: u64) -> RhhhConfig {
    RhhhConfig {
        epsilon_s: 0.05,
        epsilon_a: 0.01,
        delta_s: 0.05,
        seed,
        ..RhhhConfig::default()
    }
}

fn run_weighted<E: FrequencyEstimator<u64> + Clone + Sync>(
    packets: &[(u64, u64)],
    shards: usize,
    batch: usize,
    seed: u64,
) -> (u64, u64) {
    let lat = Lattice::ipv4_src_dst_bytes();
    let mut mon =
        ShardedMonitor::<u64, E>::spawn(lat, config(seed), shards, batch).expect("spawn workers");
    mon.update_batch_weighted(packets);
    let expect_weight: u64 = packets.iter().map(|&(_, w)| w).sum();
    assert_eq!(mon.weight(), expect_weight, "feed-side weight ledger");
    assert_eq!(mon.packets(), packets.len() as u64, "feed-side packets");
    let merged = mon.harvest().expect("healthy pipeline");
    (merged.packets(), merged.total_weight())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Total weight and packet count survive shard → batch → merge intact
    /// for arbitrary weighted streams, shard counts, batch grains and
    /// seeds, on both Space Saving layouts.
    #[test]
    fn weight_conserved_across_shards(
        packets in vec((0u64..10_000, 1u64..2_000), 1..800),
        shards in 1usize..5,
        batch in select(vec![1usize, 7, 64, 1_024]),
        seed in any::<u64>(),
    ) {
        let n = packets.len() as u64;
        let volume: u64 = packets.iter().map(|&(_, w)| w).sum();
        let (p, w) = run_weighted::<SpaceSaving<u64>>(&packets, shards, batch, seed);
        prop_assert_eq!(p, n, "stream-summary: packets lost");
        prop_assert_eq!(w, volume, "stream-summary: weight lost");
        let (p, w) = run_weighted::<CompactSpaceSaving<u64>>(&packets, shards, batch, seed);
        prop_assert_eq!(p, n, "compact: packets lost");
        prop_assert_eq!(w, volume, "compact: weight lost");
    }

    /// Zero-weight packets are legal on the feed (the counter treats them
    /// as no-ops) and still count as packets without adding weight.
    #[test]
    fn zero_weight_packets_count_packets_only(
        n in 1usize..200,
        shards in 1usize..4,
        seed in any::<u64>(),
    ) {
        let packets: Vec<(u64, u64)> = (0..n as u64).map(|k| (k, 0)).collect();
        let (p, w) = run_weighted::<SpaceSaving<u64>>(&packets, shards, 32, seed);
        prop_assert_eq!(p, n as u64);
        prop_assert_eq!(w, 0);
    }
}
