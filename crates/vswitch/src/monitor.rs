//! Monitor adapters: plug any HHH algorithm into the datapath hook.

use hhh_core::{CounterKind, HhhAlgorithm, Rhhh, RhhhConfig};
use hhh_counters::{CompactSpaceSaving, SpaceSaving};
use hhh_hierarchy::Lattice;

use crate::datapath::DataplaneMonitor;

/// The unmodified-switch baseline: measurement disabled. Figure 6's
/// "OVS" bar.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoOpMonitor;

impl DataplaneMonitor for NoOpMonitor {
    #[inline]
    fn on_packet(&mut self, _key2: u64) {}

    fn label(&self) -> String {
        "NoOp".into()
    }
}

/// Wraps any [`HhhAlgorithm`] over the packed 2D key as a dataplane
/// monitor — RHHH, 10-RHHH, MST and Partial Ancestry all ride this adapter
/// in the Figure 6 comparison.
#[derive(Debug)]
pub struct AlgoMonitor<A> {
    algo: A,
}

impl<A: HhhAlgorithm<u64>> AlgoMonitor<A> {
    /// Wraps an algorithm instance.
    pub fn new(algo: A) -> Self {
        Self { algo }
    }

    /// The wrapped algorithm (for `Output(θ)` after the run).
    pub fn algorithm(&self) -> &A {
        &self.algo
    }

    /// Unwraps the algorithm.
    pub fn into_algorithm(self) -> A {
        self.algo
    }
}

impl<A: HhhAlgorithm<u64>> DataplaneMonitor for AlgoMonitor<A> {
    #[inline]
    fn on_packet(&mut self, key2: u64) {
        self.algo.insert(key2);
    }

    fn label(&self) -> String {
        self.algo.name()
    }
}

/// Dataplane monitor driving an algorithm through its slice-at-a-time path
/// ([`HhhAlgorithm::insert_batch`], which RHHH overrides with the
/// geometric-skip `update_batch`): keys are buffered and flushed once the
/// batch fills — mirroring how DPDK-style datapaths already hand packets
/// to the processing stage in rx bursts, so the measurement hook batches
/// at the same grain as the switch itself.
///
/// Call [`BatchingMonitor::flush`] (or tear down via
/// [`BatchingMonitor::into_algorithm`], which flushes) before querying:
/// buffered keys are not yet visible to the algorithm.
#[derive(Debug)]
pub struct BatchingMonitor<A: HhhAlgorithm<u64> = Rhhh<u64, SpaceSaving<u64>>> {
    algo: A,
    buf: Vec<u64>,
    batch: usize,
    /// Overrides the derived `label()` (used when the algorithm's own name
    /// cannot distinguish the configuration, e.g. runtime counter kinds).
    label: Option<String>,
}

impl<A: HhhAlgorithm<u64>> BatchingMonitor<A> {
    /// Wraps `algo`, flushing every `batch` packets (a DPDK-like rx-burst
    /// grain such as 256 works well).
    ///
    /// # Panics
    ///
    /// Panics when `batch` is zero.
    pub fn new(algo: A, batch: usize) -> Self {
        assert!(batch > 0, "batch size must be positive");
        Self {
            algo,
            buf: Vec::with_capacity(batch),
            batch,
            label: None,
        }
    }

    /// Delivers all buffered keys to the algorithm.
    pub fn flush(&mut self) {
        if !self.buf.is_empty() {
            self.algo.insert_batch(&self.buf);
            self.buf.clear();
        }
    }

    /// Flushes and unwraps the algorithm for querying.
    pub fn into_algorithm(mut self) -> A {
        self.flush();
        self.algo
    }

    /// Keys currently buffered (not yet visible to the algorithm).
    #[must_use]
    pub fn pending(&self) -> usize {
        self.buf.len()
    }
}

impl<A: HhhAlgorithm<u64>> DataplaneMonitor for BatchingMonitor<A> {
    #[inline]
    fn on_packet(&mut self, key2: u64) {
        self.buf.push(key2);
        if self.buf.len() >= self.batch {
            self.algo.insert_batch(&self.buf);
            self.buf.clear();
        }
    }

    fn label(&self) -> String {
        self.label
            .clone()
            .unwrap_or_else(|| format!("{}(batch)", self.algo.name()))
    }
}

/// [`BatchingMonitor`] over the cache-packed flat-arena counter — the
/// highest-throughput monitor configuration this workspace offers.
pub type CompactBatchingMonitor = BatchingMonitor<Rhhh<u64, CompactSpaceSaving<u64>>>;

/// The type-erased [`BatchingMonitor`]: the per-node counter layout is
/// selected at runtime via [`CounterKind`] (e.g. from deployment
/// configuration) instead of at the type level. Build with
/// [`DynBatchingMonitor::with_counter`].
pub type DynBatchingMonitor = BatchingMonitor<Box<dyn HhhAlgorithm<u64>>>;

impl DynBatchingMonitor {
    /// Builds a batching RHHH monitor over `lattice` with `kind` counters,
    /// flushing every `batch` packets. The label carries the counter kind
    /// (`"10-RHHH[compact](batch)"`-style, non-default kinds only) so rows
    /// for different kinds stay distinguishable in reports.
    ///
    /// # Panics
    ///
    /// Panics when `batch` is zero.
    #[must_use]
    pub fn with_counter(
        kind: CounterKind,
        lattice: Lattice<u64>,
        config: RhhhConfig,
        batch: usize,
    ) -> Self {
        let mut monitor = Self::new(kind.build_rhhh(lattice, config), batch);
        let base = monitor.algo.name();
        let tag = if kind == CounterKind::default() {
            String::new()
        } else {
            format!("[{}]", kind.label())
        };
        monitor.label = Some(format!("{base}{tag}(batch)"));
        monitor
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datapath::Datapath;
    use crate::packet::build_udp_frame;
    use hhh_core::{Rhhh, RhhhConfig};
    use hhh_hierarchy::Lattice;

    #[test]
    fn rhhh_monitor_counts_datapath_traffic() {
        let lat = Lattice::ipv4_src_dst_bytes();
        let algo = Rhhh::<u64>::new(lat, RhhhConfig::default());
        let mut dp = Datapath::new(AlgoMonitor::new(algo));

        let frame = build_udp_frame(
            u32::from_be_bytes([10, 20, 1, 1]),
            u32::from_be_bytes([8, 8, 8, 8]),
            1000,
            80,
            22,
        );
        for _ in 0..5_000 {
            dp.process_frame(&frame).expect("valid");
        }
        let algo = dp.into_monitor().into_algorithm();
        assert_eq!(algo.packets(), 5_000);
        // A single flow carries 100% of traffic: it must be an HHH.
        let out = algo.query(0.5);
        assert!(!out.is_empty());
    }

    #[test]
    fn batching_monitor_matches_packet_counts_and_finds_hhh() {
        let lat = Lattice::ipv4_src_dst_bytes();
        let algo = Rhhh::<u64>::new(lat, RhhhConfig::ten_rhhh());
        let mut dp = Datapath::new(BatchingMonitor::new(algo, 256));
        let frame = build_udp_frame(
            u32::from_be_bytes([10, 20, 1, 1]),
            u32::from_be_bytes([8, 8, 8, 8]),
            1000,
            80,
            22,
        );
        for _ in 0..5_000 {
            dp.process_frame(&frame).expect("valid");
        }
        // 5000 = 19 full 256-batches + 136 pending.
        let monitor = dp.monitor();
        assert_eq!(monitor.pending(), 5_000 % 256);
        let algo = dp.into_monitor().into_algorithm();
        assert_eq!(algo.packets(), 5_000, "into_algorithm flushes the tail");
        assert!(!algo.query(0.5).is_empty());
    }

    #[test]
    fn explicit_flush_drains_buffer() {
        let lat = Lattice::ipv4_src_dst_bytes();
        let algo = Rhhh::<u64>::new(lat, RhhhConfig::default());
        let mut m = BatchingMonitor::new(algo, 1024);
        for i in 0..10u64 {
            m.on_packet(i);
        }
        assert_eq!(m.pending(), 10);
        m.flush();
        assert_eq!(m.pending(), 0);
        let algo = m.into_algorithm();
        assert_eq!(algo.packets(), 10);
    }

    #[test]
    fn dyn_batching_monitor_labels_carry_the_counter_kind() {
        let lat = Lattice::ipv4_src_dst_bytes();
        let labels: Vec<String> = CounterKind::roster()
            .iter()
            .map(|&kind| {
                DynBatchingMonitor::with_counter(kind, lat.clone(), RhhhConfig::ten_rhhh(), 64)
                    .label()
            })
            .collect();
        assert_eq!(labels[0], "10-RHHH(batch)");
        assert!(labels.contains(&"10-RHHH[compact](batch)".to_string()));
        let distinct: std::collections::HashSet<&String> = labels.iter().collect();
        assert_eq!(distinct.len(), labels.len(), "label collision: {labels:?}");
    }

    #[test]
    fn dyn_batching_monitor_selects_counter_at_runtime() {
        let lat = Lattice::ipv4_src_dst_bytes();
        for kind in CounterKind::roster() {
            let mut dp = Datapath::new(DynBatchingMonitor::with_counter(
                kind,
                lat.clone(),
                RhhhConfig::default(),
                256,
            ));
            let frame = build_udp_frame(
                u32::from_be_bytes([10, 20, 1, 1]),
                u32::from_be_bytes([8, 8, 8, 8]),
                1000,
                80,
                22,
            );
            for _ in 0..3_000 {
                dp.process_frame(&frame).expect("valid");
            }
            let algo = dp.into_monitor().into_algorithm();
            assert_eq!(algo.packets(), 3_000, "{}", kind.label());
            assert!(!algo.query(0.5).is_empty(), "{}", kind.label());
        }
    }

    #[test]
    fn compact_batching_monitor_is_a_batching_monitor() {
        let lat = Lattice::ipv4_src_dst_bytes();
        let algo =
            Rhhh::<u64, hhh_counters::CompactSpaceSaving<u64>>::new(lat, RhhhConfig::ten_rhhh());
        let mut m: super::CompactBatchingMonitor = BatchingMonitor::new(algo, 128);
        for i in 0..1_000u64 {
            m.on_packet(i % 16);
        }
        let algo = m.into_algorithm();
        assert_eq!(algo.packets(), 1_000);
    }

    #[test]
    fn labels_propagate_algorithm_names() {
        let lat = Lattice::ipv4_src_dst_bytes();
        let m = AlgoMonitor::new(Rhhh::<u64>::new(lat.clone(), RhhhConfig::default()));
        assert_eq!(m.label(), "RHHH");
        let m10 = AlgoMonitor::new(Rhhh::<u64>::new(lat, RhhhConfig::ten_rhhh()));
        assert_eq!(m10.label(), "10-RHHH");
        assert_eq!(NoOpMonitor.label(), "NoOp");
    }
}
