//! Monitor adapters: plug any HHH algorithm into the datapath hook.

use hhh_core::HhhAlgorithm;

use crate::datapath::DataplaneMonitor;

/// The unmodified-switch baseline: measurement disabled. Figure 6's
/// "OVS" bar.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoOpMonitor;

impl DataplaneMonitor for NoOpMonitor {
    #[inline]
    fn on_packet(&mut self, _key2: u64) {}

    fn label(&self) -> String {
        "NoOp".into()
    }
}

/// Wraps any [`HhhAlgorithm`] over the packed 2D key as a dataplane
/// monitor — RHHH, 10-RHHH, MST and Partial Ancestry all ride this adapter
/// in the Figure 6 comparison.
#[derive(Debug)]
pub struct AlgoMonitor<A> {
    algo: A,
}

impl<A: HhhAlgorithm<u64>> AlgoMonitor<A> {
    /// Wraps an algorithm instance.
    pub fn new(algo: A) -> Self {
        Self { algo }
    }

    /// The wrapped algorithm (for `Output(θ)` after the run).
    pub fn algorithm(&self) -> &A {
        &self.algo
    }

    /// Unwraps the algorithm.
    pub fn into_algorithm(self) -> A {
        self.algo
    }
}

impl<A: HhhAlgorithm<u64>> DataplaneMonitor for AlgoMonitor<A> {
    #[inline]
    fn on_packet(&mut self, key2: u64) {
        self.algo.insert(key2);
    }

    fn label(&self) -> String {
        self.algo.name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datapath::Datapath;
    use crate::packet::build_udp_frame;
    use hhh_core::{Rhhh, RhhhConfig};
    use hhh_hierarchy::Lattice;

    #[test]
    fn rhhh_monitor_counts_datapath_traffic() {
        let lat = Lattice::ipv4_src_dst_bytes();
        let algo = Rhhh::<u64>::new(lat, RhhhConfig::default());
        let mut dp = Datapath::new(AlgoMonitor::new(algo));

        let frame = build_udp_frame(
            u32::from_be_bytes([10, 20, 1, 1]),
            u32::from_be_bytes([8, 8, 8, 8]),
            1000,
            80,
            22,
        );
        for _ in 0..5_000 {
            dp.process_frame(&frame).expect("valid");
        }
        let algo = dp.into_monitor().into_algorithm();
        assert_eq!(algo.packets(), 5_000);
        // A single flow carries 100% of traffic: it must be an HHH.
        let out = algo.query(0.5);
        assert!(!out.is_empty());
    }

    #[test]
    fn labels_propagate_algorithm_names() {
        let lat = Lattice::ipv4_src_dst_bytes();
        let m = AlgoMonitor::new(Rhhh::<u64>::new(lat.clone(), RhhhConfig::default()));
        assert_eq!(m.label(), "RHHH");
        let m10 = AlgoMonitor::new(Rhhh::<u64>::new(lat, RhhhConfig::ten_rhhh()));
        assert_eq!(m10.label(), "10-RHHH");
        assert_eq!(NoOpMonitor.label(), "NoOp");
    }
}
