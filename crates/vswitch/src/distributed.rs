//! The distributed integration: sampling in the switch, counting in a
//! "virtual machine".
//!
//! Section 5.2 of the paper: "HHH measurement can be performed in a
//! separate virtual machine. In that case, OVS forwards the relevant
//! traffic to the virtual machine. When RHHH operates with V > H, we only
//! forward the sampled packets and thus reduce overheads."
//!
//! Here the VM is a measurement thread and the virtual link is a bounded
//! crossbeam channel. The switch-side frontend performs the `[0, V)` draw
//! per packet and forwards only the `H/V` fraction that actually updates a
//! counter — so a larger `V` proportionally unloads both the switch and
//! the link, which is the monotone throughput-vs-V trend of Figure 8.
//! Backpressure behaviour is explicit: when the channel is full the sample
//! is dropped and counted, like a NIC queue overflow.

use std::thread::JoinHandle;

use crossbeam::channel::{bounded, Sender};
use hhh_core::sampling::FastRng;
use hhh_core::{HeavyHitter, Rhhh, RhhhConfig};
use hhh_hierarchy::{KeyBits, Lattice, NodeId};

use crate::datapath::DataplaneMonitor;

/// What the switch side does when the switch→VM channel is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backpressure {
    /// Wait for the measurement thread — models a lossless link; switch
    /// throughput then reflects the end-to-end sustainable rate, which is
    /// what Figure 8 reports.
    Block,
    /// Drop the sample and count it — models a lossy NIC queue.
    DropNewest,
}

/// Statistics of a finished distributed run.
///
/// Every switch-side packet is accounted for exactly once:
/// `packets == forwarded + dropped + unsampled` (pinned by the
/// `distributed_props` property suite across seeds and configurations).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DistributedStats {
    /// Packets the switch processed.
    pub packets: u64,
    /// Samples forwarded to the measurement thread.
    pub forwarded: u64,
    /// Samples dropped because the channel was full.
    pub dropped: u64,
    /// Packets whose `[0, V)` draw selected no node (the `1 − H/V`
    /// fraction that never leaves the switch).
    pub unsampled: u64,
}

/// Switch-side frontend plus the measurement thread.
///
/// Create with [`DistributedRhhh::spawn`], feed packets via `update` (or
/// use it as a [`DataplaneMonitor`]), then call [`DistributedRhhh::finish`]
/// to join the thread and query results.
#[derive(Debug)]
pub struct DistributedRhhh {
    sender: Option<Sender<(u16, u64)>>,
    handle: Option<JoinHandle<Rhhh<u64>>>,
    masks: Vec<u64>,
    rng: FastRng,
    v: u64,
    h: u64,
    packets: u64,
    forwarded: u64,
    dropped: u64,
    unsampled: u64,
    backpressure: Backpressure,
}

impl DistributedRhhh {
    /// Spawns the measurement thread. `queue_capacity` bounds the
    /// switch→VM channel (the virtual link's buffer).
    #[must_use]
    pub fn spawn(
        lattice: Lattice<u64>,
        config: RhhhConfig,
        queue_capacity: usize,
        backpressure: Backpressure,
    ) -> Self {
        let masks: Vec<u64> = lattice.node_ids().map(|n| lattice.mask(n)).collect();
        let h = lattice.num_nodes() as u64;
        let v = config.v_scale * h;
        let seed = config.seed;
        let backend = Rhhh::<u64>::new(lattice, config);
        let (sender, receiver) = bounded::<(u16, u64)>(queue_capacity);
        let handle = std::thread::spawn(move || {
            let mut backend = backend;
            for (node, key) in receiver {
                backend.raw_update(NodeId(node), key);
            }
            backend
        });
        Self {
            sender: Some(sender),
            handle: Some(handle),
            masks,
            rng: FastRng::new(seed ^ 0xD157_0000),
            v,
            h,
            packets: 0,
            forwarded: 0,
            dropped: 0,
            unsampled: 0,
            backpressure,
        }
    }

    /// Switch-side per-packet work: O(1) draw, occasional forward.
    #[inline]
    pub fn update(&mut self, key2: u64) {
        self.packets += 1;
        let d = self.rng.bounded(self.v);
        if d < self.h {
            let masked = key2.and(self.masks[d as usize]);
            let sender = self.sender.as_ref().expect("not finished");
            match self.backpressure {
                Backpressure::Block => {
                    sender
                        .send((d as u16, masked))
                        .expect("measurement thread alive");
                    self.forwarded += 1;
                }
                Backpressure::DropNewest => match sender.try_send((d as u16, masked)) {
                    Ok(()) => self.forwarded += 1,
                    Err(_) => self.dropped += 1,
                },
            }
        } else {
            self.unsampled += 1;
        }
    }

    /// Samples dropped on the virtual link so far.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Joins the measurement thread and returns the queryable backend with
    /// run statistics. The backend's `N` is set to the switch-side packet
    /// count.
    ///
    /// # Panics
    ///
    /// Panics if the measurement thread panicked.
    #[must_use]
    pub fn finish(mut self) -> (Rhhh<u64>, DistributedStats) {
        drop(self.sender.take()); // closes the channel, thread drains & exits
        let mut backend = self
            .handle
            .take()
            .expect("finish called once")
            .join()
            .expect("measurement thread panicked");
        backend.note_packets(self.packets);
        (
            backend,
            DistributedStats {
                packets: self.packets,
                forwarded: self.forwarded,
                dropped: self.dropped,
                unsampled: self.unsampled,
            },
        )
    }

    /// Convenience: finish and immediately run `Output(θ)`.
    ///
    /// # Panics
    ///
    /// Panics if the measurement thread panicked.
    #[must_use]
    pub fn finish_and_query(self, theta: f64) -> (Vec<HeavyHitter<u64>>, DistributedStats) {
        let (backend, stats) = self.finish();
        (backend.output(theta), stats)
    }
}

impl DataplaneMonitor for DistributedRhhh {
    #[inline]
    fn on_packet(&mut self, key2: u64) {
        self.update(key2);
    }

    fn label(&self) -> String {
        if self.v == self.h {
            "Distributed-RHHH".into()
        } else {
            format!("Distributed-{}-RHHH", self.v / self.h)
        }
    }
}

/// One switch's frontend in a multi-source deployment: same per-packet
/// work as [`DistributedRhhh`], but many frontends share a single
/// measurement thread — the paper's closing point for the distributed
/// integration: "our distributed implementation is capable of analyzing
/// data from multiple network devices."
#[derive(Debug)]
pub struct SharedFrontend {
    sender: Sender<(u16, u64)>,
    masks: std::sync::Arc<Vec<u64>>,
    rng: FastRng,
    v: u64,
    h: u64,
    packets: u64,
    forwarded: u64,
    dropped: u64,
    unsampled: u64,
    backpressure: Backpressure,
}

impl SharedFrontend {
    /// Switch-side per-packet work; identical contract to
    /// [`DistributedRhhh::update`].
    #[inline]
    pub fn update(&mut self, key2: u64) {
        self.packets += 1;
        let d = self.rng.bounded(self.v);
        if d < self.h {
            let masked = key2 & self.masks[d as usize];
            match self.backpressure {
                Backpressure::Block => {
                    self.sender
                        .send((d as u16, masked))
                        .expect("measurement thread alive");
                    self.forwarded += 1;
                }
                Backpressure::DropNewest => match self.sender.try_send((d as u16, masked)) {
                    Ok(()) => self.forwarded += 1,
                    Err(_) => self.dropped += 1,
                },
            }
        } else {
            self.unsampled += 1;
        }
    }

    /// Finishes this frontend, returning its statistics. The backend keeps
    /// running until every frontend has finished.
    #[must_use]
    pub fn finish(self) -> DistributedStats {
        DistributedStats {
            packets: self.packets,
            forwarded: self.forwarded,
            dropped: self.dropped,
            unsampled: self.unsampled,
        }
    }
}

impl DataplaneMonitor for SharedFrontend {
    #[inline]
    fn on_packet(&mut self, key2: u64) {
        self.update(key2);
    }

    fn label(&self) -> String {
        "Distributed-RHHH(shared)".into()
    }
}

/// Multi-source distributed RHHH: `frontends` switch frontends (one per
/// network device, each usable from its own thread) feeding one
/// measurement backend over a shared bounded channel.
///
/// Returns the frontends plus a collector handle; after all frontends are
/// finished (dropping their channel clones), call
/// [`SharedCollector::finish`] with the summed switch-side packet count to
/// obtain the queryable backend.
#[must_use]
pub fn spawn_shared(
    lattice: Lattice<u64>,
    config: RhhhConfig,
    queue_capacity: usize,
    backpressure: Backpressure,
    frontends: usize,
) -> (Vec<SharedFrontend>, SharedCollector) {
    assert!(frontends > 0, "need at least one frontend");
    let masks = std::sync::Arc::new(
        lattice
            .node_ids()
            .map(|n| lattice.mask(n))
            .collect::<Vec<u64>>(),
    );
    let h = lattice.num_nodes() as u64;
    let v = config.v_scale * h;
    let seed = config.seed;
    let backend = Rhhh::<u64>::new(lattice, config);
    let (sender, receiver) = bounded::<(u16, u64)>(queue_capacity);
    let handle = std::thread::spawn(move || {
        let mut backend = backend;
        for (node, key) in receiver {
            backend.raw_update(NodeId(node), key);
        }
        backend
    });
    let fronts = (0..frontends)
        .map(|i| SharedFrontend {
            sender: sender.clone(),
            masks: masks.clone(),
            // Distinct deterministic seed per device.
            rng: FastRng::new(seed ^ 0x5A_0000 ^ (i as u64).wrapping_mul(0x9E37_79B9)),
            v,
            h,
            packets: 0,
            forwarded: 0,
            dropped: 0,
            unsampled: 0,
            backpressure,
        })
        .collect();
    drop(sender); // backend exits once every frontend's clone is dropped
    (fronts, SharedCollector { handle })
}

/// Joins the shared measurement backend once all frontends finished.
#[derive(Debug)]
pub struct SharedCollector {
    handle: JoinHandle<Rhhh<u64>>,
}

impl SharedCollector {
    /// Joins the measurement thread; `total_packets` is the sum of packets
    /// across all switch frontends (the global `N`).
    ///
    /// # Panics
    ///
    /// Panics if the measurement thread panicked.
    #[must_use]
    pub fn finish(self, total_packets: u64) -> Rhhh<u64> {
        let mut backend = self.handle.join().expect("measurement thread panicked");
        backend.note_packets(total_packets);
        backend
    }
}

/// The multi-VM generalization of [`DistributedRhhh`]: one switch frontend
/// fanning sampled `(node, masked key)` pairs out to `M` measurement VMs
/// by **key hash**, queries answered by merging the backends at harvest.
///
/// Where [`spawn_shared`] scales the *ingress* side (many devices, one
/// backend), this scales the *measurement* side: a single backend VM caps
/// the sustainable sample rate, so the frontend routes each masked key to
/// `hash(key) % M` — every key's samples land on one VM, each VM holds a
/// key-partitioned slice of every node's summary, and
/// [`Rhhh::merge`] combines the slices with the per-VM error bounds
/// summed. The same `V`-fold overhead reduction of Section 5.2 applies per
/// link; the fan-out adds backend capacity linearly.
#[derive(Debug)]
pub struct MultiVmDistributedRhhh {
    senders: Vec<Sender<(u16, u64)>>,
    handles: Vec<JoinHandle<Rhhh<u64>>>,
    masks: Vec<u64>,
    rng: FastRng,
    v: u64,
    h: u64,
    packets: u64,
    forwarded: u64,
    dropped: u64,
    unsampled: u64,
    backpressure: Backpressure,
}

impl MultiVmDistributedRhhh {
    /// Spawns `vms` measurement threads, each with its own bounded
    /// switch→VM channel of `queue_capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics when `vms` is zero.
    #[must_use]
    pub fn spawn(
        lattice: Lattice<u64>,
        config: RhhhConfig,
        vms: usize,
        queue_capacity: usize,
        backpressure: Backpressure,
    ) -> Self {
        assert!(vms > 0, "need at least one measurement VM");
        let masks: Vec<u64> = lattice.node_ids().map(|n| lattice.mask(n)).collect();
        let h = lattice.num_nodes() as u64;
        let v = config.v_scale * h;
        let seed = config.seed;
        let mut senders = Vec::with_capacity(vms);
        let mut handles = Vec::with_capacity(vms);
        for vm in 0..vms {
            let backend = Rhhh::<u64>::new(
                lattice.clone(),
                RhhhConfig {
                    seed: seed ^ (vm as u64 + 1).wrapping_mul(0x9E37_79B9),
                    ..config
                },
            );
            let (tx, rx) = bounded::<(u16, u64)>(queue_capacity);
            handles.push(std::thread::spawn(move || {
                let mut backend = backend;
                for (node, key) in rx {
                    backend.raw_update(NodeId(node), key);
                }
                backend
            }));
            senders.push(tx);
        }
        Self {
            senders,
            handles,
            masks,
            rng: FastRng::new(seed ^ 0xFA11_0007),
            v,
            h,
            packets: 0,
            forwarded: 0,
            dropped: 0,
            unsampled: 0,
            backpressure,
        }
    }

    /// Number of measurement VMs.
    #[must_use]
    pub fn vms(&self) -> usize {
        self.senders.len()
    }

    /// Switch-side per-packet work: one `[0, V)` draw; a selected packet is
    /// masked and routed to its key's VM.
    #[inline]
    pub fn update(&mut self, key2: u64) {
        self.packets += 1;
        let d = self.rng.bounded(self.v);
        if d < self.h {
            let masked = key2.and(self.masks[d as usize]);
            let vm = crate::sharded::shard_of(masked, self.senders.len());
            match self.backpressure {
                Backpressure::Block => {
                    self.senders[vm]
                        .send((d as u16, masked))
                        .expect("measurement thread alive");
                    self.forwarded += 1;
                }
                Backpressure::DropNewest => match self.senders[vm].try_send((d as u16, masked)) {
                    Ok(()) => self.forwarded += 1,
                    Err(_) => self.dropped += 1,
                },
            }
        } else {
            self.unsampled += 1;
        }
    }

    /// Closes every channel, joins the VM threads, merges their summaries
    /// and returns the queryable whole with run statistics. The merged
    /// `N` is set to the switch-side packet count.
    ///
    /// # Panics
    ///
    /// Panics if a measurement thread panicked.
    #[must_use]
    pub fn finish(mut self) -> (Rhhh<u64>, DistributedStats) {
        self.senders.clear(); // closes the channels, threads drain & exit
        let mut backends = self
            .handles
            .drain(..)
            .map(|h| h.join().expect("measurement thread panicked"));
        let mut merged = backends.next().expect("at least one VM");
        for backend in backends {
            merged.merge(backend);
        }
        merged.note_packets(self.packets);
        (
            merged,
            DistributedStats {
                packets: self.packets,
                forwarded: self.forwarded,
                dropped: self.dropped,
                unsampled: self.unsampled,
            },
        )
    }

    /// Convenience: finish and immediately run `Output(θ)`.
    ///
    /// # Panics
    ///
    /// Panics if a measurement thread panicked.
    #[must_use]
    pub fn finish_and_query(self, theta: f64) -> (Vec<HeavyHitter<u64>>, DistributedStats) {
        let (backend, stats) = self.finish();
        (backend.output(theta), stats)
    }
}

impl DataplaneMonitor for MultiVmDistributedRhhh {
    #[inline]
    fn on_packet(&mut self, key2: u64) {
        self.update(key2);
    }

    fn label(&self) -> String {
        let base = if self.v == self.h {
            "RHHH".to_string()
        } else {
            format!("{}-RHHH", self.v / self.h)
        };
        format!("Distributed-{base}(x{} VMs)", self.senders.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hhh_core::HhhAlgorithm;
    use hhh_hierarchy::pack2;

    struct Lcg(u64);
    impl Lcg {
        fn next(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0 >> 16
        }
    }

    #[test]
    fn forwards_h_over_v_fraction() {
        let lat = hhh_hierarchy::Lattice::ipv4_src_dst_bytes();
        let mut dist =
            DistributedRhhh::spawn(lat, RhhhConfig::ten_rhhh(), 1 << 16, Backpressure::Block);
        let mut rng = Lcg(1);
        let n = 200_000u64;
        for _ in 0..n {
            dist.update(rng.next());
        }
        let (_, stats) = dist.finish();
        assert_eq!(stats.packets, n);
        let rate = stats.forwarded as f64 / n as f64;
        assert!((rate - 0.1).abs() < 0.01, "forward rate {rate}");
        assert_eq!(stats.dropped, 0, "blocking mode never drops");
        assert_eq!(
            stats.packets,
            stats.forwarded + stats.dropped + stats.unsampled,
            "every packet accounted exactly once"
        );
    }

    #[test]
    fn finds_planted_hhh_like_inline() {
        let lat = hhh_hierarchy::Lattice::ipv4_src_dst_bytes();
        let config = RhhhConfig {
            epsilon_s: 0.02,
            epsilon_a: 0.005,
            delta_s: 0.05,
            ..RhhhConfig::default()
        };
        let mut dist = DistributedRhhh::spawn(lat.clone(), config, 1 << 16, Backpressure::Block);
        let mut rng = Lcg(4);
        let n = 400_000u64;
        for i in 0..n {
            let key = if i % 10 < 3 {
                pack2(
                    0x0A14_0000 | (rng.next() as u32 & 0xFFFF),
                    u32::from_be_bytes([8, 8, 8, 8]),
                )
            } else {
                pack2(rng.next() as u32, rng.next() as u32)
            };
            dist.update(key);
        }
        let (out, stats) = dist.finish_and_query(0.1);
        assert_eq!(stats.packets, n);
        assert_eq!(stats.dropped, 0, "blocking mode never drops");
        let rendered: Vec<String> = out.iter().map(|h| h.prefix.display(&lat)).collect();
        assert!(
            rendered
                .iter()
                .any(|s| s.contains("10.20.0.0/16") && s.contains("8.8.8.8/32")),
            "missing planted HHH in {rendered:?}"
        );
    }

    #[test]
    fn tiny_queue_counts_drops_instead_of_blocking() {
        let lat = hhh_hierarchy::Lattice::ipv4_src_dst_bytes();
        // Capacity-1 queue with V = H: heavy contention guaranteed.
        let mut dist =
            DistributedRhhh::spawn(lat, RhhhConfig::default(), 1, Backpressure::DropNewest);
        let mut rng = Lcg(9);
        for _ in 0..50_000 {
            dist.update(rng.next());
        }
        let (_, stats) = dist.finish();
        // V = H: every packet is sampled, so none is unsampled.
        assert_eq!(stats.unsampled, 0);
        assert_eq!(stats.forwarded + stats.dropped, 50_000);
        // The run must terminate promptly (no deadlock) — reaching this
        // assertion is the test.
    }

    #[test]
    fn multi_vm_fanout_finds_planted_hhh_and_accounts_packets() {
        for vms in [1usize, 2, 4] {
            let lat = hhh_hierarchy::Lattice::ipv4_src_dst_bytes();
            let config = RhhhConfig {
                epsilon_s: 0.02,
                epsilon_a: 0.005,
                delta_s: 0.05,
                ..RhhhConfig::default()
            };
            let mut dist = MultiVmDistributedRhhh::spawn(
                lat.clone(),
                config,
                vms,
                1 << 14,
                Backpressure::Block,
            );
            assert_eq!(dist.vms(), vms);
            let mut rng = Lcg(40 + vms as u64);
            let n = 400_000u64;
            for i in 0..n {
                let key = if i % 10 < 3 {
                    pack2(
                        0x0A14_0000 | (rng.next() as u32 & 0xFFFF),
                        u32::from_be_bytes([8, 8, 8, 8]),
                    )
                } else {
                    pack2(rng.next() as u32, rng.next() as u32)
                };
                dist.update(key);
            }
            let (backend, stats) = dist.finish();
            assert_eq!(stats.packets, n);
            assert_eq!(
                stats.packets,
                stats.forwarded + stats.dropped + stats.unsampled
            );
            assert_eq!(backend.packets(), n, "merged backend carries global N");
            let rendered: Vec<String> = backend
                .output(0.1)
                .iter()
                .map(|h| h.prefix.display(&lat))
                .collect();
            assert!(
                rendered
                    .iter()
                    .any(|s| s.contains("10.20.0.0/16") && s.contains("8.8.8.8/32")),
                "{vms} VMs: missing planted HHH in {rendered:?}"
            );
        }
    }

    #[test]
    fn multi_vm_ten_rhhh_forwards_h_over_v() {
        let lat = hhh_hierarchy::Lattice::ipv4_src_dst_bytes();
        let mut dist = MultiVmDistributedRhhh::spawn(
            lat,
            RhhhConfig::ten_rhhh(),
            3,
            1 << 14,
            Backpressure::Block,
        );
        let mut rng = Lcg(77);
        let n = 200_000u64;
        for _ in 0..n {
            dist.update(rng.next());
        }
        let (backend, stats) = dist.finish();
        let rate = stats.forwarded as f64 / n as f64;
        assert!((rate - 0.1).abs() < 0.01, "forward rate {rate}");
        assert_eq!(stats.packets, stats.forwarded + stats.unsampled);
        assert_eq!(backend.total_updates(), stats.forwarded);
    }

    #[test]
    fn multiple_devices_feed_one_backend() {
        // Two "switches" on their own threads observe different halves of
        // the attack; the shared backend sees the union.
        let lat = hhh_hierarchy::Lattice::ipv4_src_dst_bytes();
        let config = RhhhConfig {
            epsilon_s: 0.02,
            epsilon_a: 0.005,
            delta_s: 0.05,
            ..RhhhConfig::default()
        };
        let (fronts, collector) =
            spawn_shared(lat.clone(), config, 1 << 14, Backpressure::Block, 2);
        let mut handles = Vec::new();
        for (dev, mut front) in fronts.into_iter().enumerate() {
            handles.push(std::thread::spawn(move || {
                let mut rng = Lcg(100 + dev as u64);
                let n = 200_000u64;
                for i in 0..n {
                    // Each device sees ~15% attack traffic; the aggregate
                    // crosses theta = 0.1 only when combined... both see it,
                    // but per-device share (~15%) and combined share (~15%)
                    // are equal here; the point is the union count.
                    let key = if i % 20 < 3 {
                        pack2(
                            0x0A14_0000 | (rng.next() as u32 & 0xFFFF),
                            u32::from_be_bytes([8, 8, 8, 8]),
                        )
                    } else {
                        pack2(rng.next() as u32, rng.next() as u32)
                    };
                    front.update(key);
                }
                front.finish()
            }));
        }
        let mut total = 0u64;
        for h in handles {
            let stats = h.join().expect("device thread");
            assert_eq!(stats.dropped, 0);
            total += stats.packets;
        }
        assert_eq!(total, 400_000);
        let backend = collector.finish(total);
        assert_eq!(backend.packets(), total);
        let out = backend.output(0.1);
        let found = out
            .iter()
            .any(|h| h.prefix.display(&lat).contains("10.20.0.0/16"));
        assert!(found, "shared backend must aggregate both devices");
    }

    #[test]
    fn backend_n_matches_switch_packets() {
        let lat = hhh_hierarchy::Lattice::ipv4_src_dst_bytes();
        let mut dist =
            DistributedRhhh::spawn(lat, RhhhConfig::default(), 1 << 12, Backpressure::Block);
        for i in 0..10_000u64 {
            dist.update(i);
        }
        let (backend, _) = dist.finish();
        assert_eq!(backend.packets(), 10_000);
    }
}
