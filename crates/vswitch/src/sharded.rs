//! Shard-parallel RHHH: RSS-style hash partitioning across worker threads,
//! merge-on-harvest.
//!
//! Modern NICs spread flows across receive queues by hashing the packet
//! header (RSS), and each queue is polled by its own core. The inline
//! monitors in [`crate::monitor`] assume one measurement instance sees the
//! whole stream; this module drops that assumption: every worker thread
//! runs its *own* RHHH instance over its own sub-stream through the
//! geometric-skip batch path, shares nothing while packets flow, and the
//! harvest combines the per-shard summaries with [`Rhhh::merge`].
//!
//! Partitioning is by **key hash**, so a flow (and every prefix of it, per
//! shard) lands wholly in one shard. Accuracy-wise the merge analysis
//! applies: per-node counter errors add across shards (`Σᵢ nᵢ/m = n/m` —
//! the same ε_a class as one instance), and the shards' independent
//! sampling errors add in variance, which is exactly what the merged
//! instance's `slack()` over the summed `N` charges. Convergence needs the
//! *total* stream length to pass ψ, which the merged packet count reflects.
//!
//! The channel carries whole batches (one `Vec` per `batch` packets), not
//! packets, so the per-packet cost on the ingress thread is a hash, a
//! buffer push and an amortized send — and the workers spend their time in
//! `update_batch`, not on synchronization. The channels are bounded
//! ([`QUEUE_BATCHES`] in-flight batches per shard), so a worker that falls
//! behind backpressures the ingress thread instead of accumulating an
//! unbounded backlog — the same discipline the distributed link in
//! [`crate::distributed`] applies.

use std::thread::JoinHandle;

use crossbeam::channel::{bounded, Sender};
use hhh_core::{HeavyHitter, MergeError, PaneRing, Rhhh, RhhhConfig};
use hhh_counters::{FrequencyEstimator, SpaceSaving};
use hhh_hierarchy::{KeyBits, Lattice};

use crate::datapath::DataplaneMonitor;

/// In-flight batches each shard's channel may hold before the ingress
/// thread blocks. Enough to ride out scheduling hiccups (at the default
/// 4Ki-key batches this is ≤ 2 MiB per shard), small enough that a
/// continuously slower worker bounds memory instead of growing a backlog.
const QUEUE_BATCHES: usize = 16;

/// The canonical key-hash routing, re-exported so pipeline users need not
/// reach into `hhh-hierarchy` for it.
pub use hhh_hierarchy::shard_of;

/// [`shard_of`] over any lattice key (hashes the low 64 bits; for the
/// packed IPv4 keys this is the whole key).
#[inline]
fn shard_of_key<K: KeyBits>(key: K, shards: usize) -> usize {
    shard_of(key.low_u64(), shards)
}

/// One hand-off unit on a shard's channel: a batch of unit-weight keys
/// (the packet-count feed) or of `(key, weight)` pairs (the volume feed).
/// Both kinds may interleave on one channel — the worker drains them in
/// arrival order through the matching RHHH batch path.
#[derive(Debug)]
enum ShardBatch<K> {
    Unit(Vec<K>),
    Weighted(Vec<(K, u64)>),
    /// Failure-injection poison: the worker panics on receipt. Only ever
    /// sent by [`ShardedMonitor::inject_shard_failure`] (chaos tests).
    Poison,
}

/// Extracts a human-readable message from a worker thread's panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "worker panicked with a non-string payload".to_string()
    }
}

/// Joins every shard worker — even after a failure, so no thread leaks —
/// and surfaces the first death as [`MergeError::ShardFailed`] naming the
/// shard and its panic payload. Shared by both monitors' harvests so the
/// windowed and unwindowed pipelines keep an identical failure contract.
fn join_shards<T>(handles: Vec<JoinHandle<T>>) -> Result<Vec<T>, MergeError> {
    let mut workers = Vec::with_capacity(handles.len());
    let mut failure: Option<MergeError> = None;
    for (shard, handle) in handles.into_iter().enumerate() {
        match handle.join() {
            Ok(worker) => workers.push(worker),
            Err(payload) => {
                failure.get_or_insert_with(|| {
                    MergeError::ShardFailed(format!(
                        "shard {shard}: {}",
                        panic_message(payload.as_ref())
                    ))
                });
            }
        }
    }
    match failure {
        Some(err) => Err(err),
        None => Ok(workers),
    }
}

/// Shard-parallel RHHH monitor: `N` worker threads, each owning one RHHH
/// instance fed through the batch path, combined by merge at harvest.
///
/// Create with [`ShardedMonitor::spawn`], feed packets via
/// [`ShardedMonitor::on_packet`] (or as a [`DataplaneMonitor`]), then
/// [`ShardedMonitor::harvest`] to join the workers and obtain the merged,
/// queryable instance.
///
/// Generic over the per-node counter like [`Rhhh`] itself; the flat-arena
/// layout ([`crate::monitor::CompactBatchingMonitor`]'s counter) pairs well
/// with the batch flush the workers run.
#[derive(Debug)]
pub struct ShardedMonitor<K: KeyBits = u64, E: FrequencyEstimator<K> = SpaceSaving<K>> {
    senders: Vec<Sender<ShardBatch<K>>>,
    handles: Vec<JoinHandle<Rhhh<K, E>>>,
    bufs: Vec<Vec<K>>,
    /// Per-shard `(key, weight)` buffers of the volume feed; allocated
    /// lazily on the first weighted packet so packet-count pipelines pay
    /// nothing for the second path.
    wbufs: Vec<Vec<(K, u64)>>,
    batch: usize,
    packets: u64,
    /// Total recorded weight (equals `packets` when only the unit feed is
    /// used).
    weight: u64,
    per_shard: Vec<u64>,
    label: String,
}

impl<K: KeyBits, E: FrequencyEstimator<K>> ShardedMonitor<K, E> {
    /// Spawns `shards` worker threads over copies of `lattice`/`config`
    /// (each worker gets a distinct deterministic seed derived from
    /// `config.seed`), buffering `batch` packets per shard before handing
    /// a batch over.
    ///
    /// # Panics
    ///
    /// Panics when `shards` or `batch` is zero.
    #[must_use]
    pub fn spawn(lattice: Lattice<K>, config: RhhhConfig, shards: usize, batch: usize) -> Self {
        assert!(shards > 0, "need at least one shard");
        assert!(batch > 0, "batch size must be positive");
        let base = if config.v_scale == 1 {
            "RHHH".to_string()
        } else {
            format!("{}-RHHH", config.v_scale)
        };
        let mut senders = Vec::with_capacity(shards);
        let mut handles = Vec::with_capacity(shards);
        for shard in 0..shards {
            let worker = Rhhh::<K, E>::new(
                lattice.clone(),
                RhhhConfig {
                    // Distinct deterministic seed per shard: the shards'
                    // sampling draws must be independent.
                    seed: config.seed ^ (shard as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                    ..config
                },
            );
            let (tx, rx) = bounded::<ShardBatch<K>>(QUEUE_BATCHES);
            handles.push(std::thread::spawn(move || {
                let mut worker = worker;
                for batch in rx {
                    match batch {
                        ShardBatch::Unit(keys) => worker.update_batch(&keys),
                        ShardBatch::Weighted(packets) => worker.update_batch_weighted(&packets),
                        ShardBatch::Poison => panic!("injected shard failure"),
                    }
                }
                worker
            }));
            senders.push(tx);
        }
        Self {
            senders,
            handles,
            bufs: (0..shards).map(|_| Vec::with_capacity(batch)).collect(),
            wbufs: (0..shards).map(|_| Vec::new()).collect(),
            batch,
            packets: 0,
            weight: 0,
            per_shard: vec![0; shards],
            label: format!("Sharded{shards}-{base}"),
        }
    }

    /// Number of worker shards.
    #[must_use]
    pub fn shards(&self) -> usize {
        self.senders.len()
    }

    /// Packets fed so far (across all shards).
    #[must_use]
    pub fn packets(&self) -> u64 {
        self.packets
    }

    /// Packets routed to each shard so far — the hash-balance diagnostic.
    #[must_use]
    pub fn shard_packets(&self) -> &[u64] {
        &self.per_shard
    }

    /// Total recorded weight so far (equals [`ShardedMonitor::packets`]
    /// when only the unit feed is used).
    #[must_use]
    pub fn weight(&self) -> u64 {
        self.weight
    }

    /// Routes one packet to its shard, handing off a full batch when the
    /// shard's buffer fills.
    #[inline]
    pub fn update(&mut self, key2: K) {
        self.packets += 1;
        self.weight += 1;
        let shard = shard_of_key(key2, self.senders.len());
        self.per_shard[shard] += 1;
        let buf = &mut self.bufs[shard];
        buf.push(key2);
        if buf.len() >= self.batch {
            let full = std::mem::replace(buf, Vec::with_capacity(self.batch));
            // A send only fails when the worker died (panicked) and its
            // receiver dropped. The feed stays alive — packets for the
            // dead shard are lost — and harvest reports the failure as a
            // `MergeError::ShardFailed` instead of poisoning the ingress.
            let _ = self.senders[shard].send(ShardBatch::Unit(full));
        }
    }

    /// Routes one packet carrying `weight` units (e.g. bytes) to its
    /// shard — the volume-measurement twin of [`ShardedMonitor::update`].
    /// The shard is still chosen by key hash, so a flow's whole volume
    /// lands in one shard and the per-shard weighted batch path
    /// ([`Rhhh::update_batch_weighted`]) records it; the harvest-time
    /// merge then conserves total weight exactly (pinned by the
    /// `sharded_weighted` property suite).
    #[inline]
    pub fn update_weighted(&mut self, key2: K, weight: u64) {
        self.packets += 1;
        self.weight += weight;
        let shard = shard_of_key(key2, self.senders.len());
        self.per_shard[shard] += 1;
        let buf = &mut self.wbufs[shard];
        if buf.capacity() == 0 {
            buf.reserve(self.batch);
        }
        buf.push((key2, weight));
        if buf.len() >= self.batch {
            let full = std::mem::replace(buf, Vec::with_capacity(self.batch));
            let _ = self.senders[shard].send(ShardBatch::Weighted(full));
        }
    }

    /// Feeds a slice of weighted packets — the bulk entry point of the
    /// volume feed (ROADMAP sharding follow-up (b)).
    pub fn update_batch_weighted(&mut self, packets: &[(K, u64)]) {
        for &(key, weight) in packets {
            self.update_weighted(key, weight);
        }
    }

    /// Sends every partially filled buffer (both feeds) to its worker.
    /// Called by [`ShardedMonitor::harvest`]; useful on its own before a
    /// progress report.
    pub fn flush(&mut self) {
        for (shard, buf) in self.bufs.iter_mut().enumerate() {
            if !buf.is_empty() {
                let part = std::mem::take(buf);
                let _ = self.senders[shard].send(ShardBatch::Unit(part));
            }
        }
        for (shard, buf) in self.wbufs.iter_mut().enumerate() {
            if !buf.is_empty() {
                let part = std::mem::take(buf);
                let _ = self.senders[shard].send(ShardBatch::Weighted(part));
            }
        }
    }

    /// Failure-injection hook for chaos tests: kills the given shard's
    /// worker thread (it panics on the poison message). Subsequent feeds
    /// keep running — packets routed to the dead shard are dropped — and
    /// [`ShardedMonitor::harvest`] reports the death as
    /// [`MergeError::ShardFailed`].
    #[doc(hidden)]
    pub fn inject_shard_failure(&mut self, shard: usize) {
        let _ = self.senders[shard].send(ShardBatch::Poison);
    }

    /// Flushes, joins every worker and merges the per-shard summaries into
    /// one queryable instance whose packet and weight totals cover the
    /// whole stream. All K summaries combine in a single
    /// [`Rhhh::merge_many`] pass — tighter than the pairwise fold this
    /// pipeline used before, which accumulated min-count padding per fold
    /// step (ROADMAP sharding follow-up (c)).
    ///
    /// # Errors
    ///
    /// [`MergeError::ShardFailed`] when any worker thread died (panicked)
    /// mid-feed: its sub-stream's summary is gone, so a merged answer
    /// would silently under-count. The error names the first dead shard.
    pub fn harvest(mut self) -> Result<Rhhh<K, E>, MergeError> {
        self.flush();
        self.senders.clear(); // closes every channel; workers drain & exit
        let mut workers = join_shards(std::mem::take(&mut self.handles))?;
        let mut merged = workers.remove(0);
        merged.merge_many(workers);
        Ok(merged)
    }

    /// Convenience: harvest and immediately run `Output(θ)`.
    ///
    /// # Errors
    ///
    /// Propagates [`ShardedMonitor::harvest`]'s `ShardFailed`.
    pub fn finish_and_query(self, theta: f64) -> Result<Vec<HeavyHitter<K>>, MergeError> {
        Ok(self.harvest()?.output(theta))
    }
}

impl<E: FrequencyEstimator<u64>> DataplaneMonitor for ShardedMonitor<u64, E> {
    #[inline]
    fn on_packet(&mut self, key2: u64) {
        self.update(key2);
    }

    fn label(&self) -> String {
        self.label.clone()
    }
}

/// One hand-off unit on a windowed shard's channel: a batch of keys, or
/// the global pane-rotation marker. Markers ride the same ordered channel
/// as the batches, so every worker rotates at exactly the same global
/// packet index — pane boundaries stay aligned across shards without any
/// cross-thread synchronization.
#[derive(Debug)]
enum WindowedShardMsg<K> {
    Batch(Vec<K>),
    Rotate,
    /// Failure-injection poison, as in [`ShardBatch::Poison`].
    Poison,
}

/// Shard-parallel **sliding-window** RHHH: the windowed twin of
/// [`ShardedMonitor`].
///
/// Every worker thread runs its own [`PaneRing`] over its hash-routed
/// sub-stream through the geometric-skip batch path. Rotation is driven by
/// the *global* packet count: every `⌈W/G⌉` packets the ingress thread
/// flushes all partial buffers (so pane attribution is exact) and
/// broadcasts a rotation marker down every shard channel. Each shard's
/// pane `i` therefore summarizes exactly its sub-stream of global pane
/// `i`, and [`WindowedShardedMonitor::harvest_window`] can answer the
/// windowed query with one **K·G-way** [`Rhhh::merge_many`] combine over
/// all shards' retained panes — per-shard errors add within a pane (the
/// sharded-merge analysis) and per-pane bounds add across the window (the
/// pane-ring analysis), so the end-to-end bound is the same summed
/// per-pane bound a single-threaded [`hhh_core::WindowedRhhh`] earns.
#[derive(Debug)]
pub struct WindowedShardedMonitor<K: KeyBits = u64, E: FrequencyEstimator<K> = SpaceSaving<K>> {
    senders: Vec<Sender<WindowedShardMsg<K>>>,
    handles: Vec<JoinHandle<PaneRing<K, E>>>,
    bufs: Vec<Vec<K>>,
    batch: usize,
    window: u64,
    pane_len: u64,
    pane_count: usize,
    packets: u64,
    pane_fill: u64,
    rotations: u64,
    label: String,
}

impl<K: KeyBits, E: FrequencyEstimator<K>> WindowedShardedMonitor<K, E> {
    /// Spawns `shards` pane-ring workers (distinct deterministic seeds per
    /// shard, like [`ShardedMonitor::spawn`]) covering the last `window`
    /// packets with `panes` globally-aligned ring panes.
    ///
    /// # Panics
    ///
    /// Panics when `shards`, `batch`, `window` or `panes` is zero, or when
    /// `window < panes`.
    #[must_use]
    pub fn spawn(
        lattice: Lattice<K>,
        config: RhhhConfig,
        shards: usize,
        batch: usize,
        window: u64,
        panes: usize,
    ) -> Self {
        assert!(shards > 0, "need at least one shard");
        assert!(batch > 0, "batch size must be positive");
        assert!(window > 0, "window must be positive");
        assert!(panes > 0, "need at least one pane");
        assert!(
            window >= panes as u64,
            "window must hold at least one packet per pane"
        );
        let base = if config.v_scale == 1 {
            "RHHH".to_string()
        } else {
            format!("{}-RHHH", config.v_scale)
        };
        let mut senders = Vec::with_capacity(shards);
        let mut handles = Vec::with_capacity(shards);
        for shard in 0..shards {
            let ring = PaneRing::<K, E>::new(
                lattice.clone(),
                RhhhConfig {
                    seed: config.seed ^ (shard as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                    ..config
                },
                panes,
            );
            let (tx, rx) = bounded::<WindowedShardMsg<K>>(QUEUE_BATCHES);
            handles.push(std::thread::spawn(move || {
                let mut ring = ring;
                for msg in rx {
                    match msg {
                        WindowedShardMsg::Batch(keys) => ring.active_mut().update_batch(&keys),
                        WindowedShardMsg::Rotate => ring.rotate(),
                        WindowedShardMsg::Poison => panic!("injected shard failure"),
                    }
                }
                ring
            }));
            senders.push(tx);
        }
        Self {
            senders,
            handles,
            bufs: (0..shards).map(|_| Vec::with_capacity(batch)).collect(),
            batch,
            window,
            pane_len: window.div_ceil(panes as u64),
            pane_count: panes,
            packets: 0,
            pane_fill: 0,
            rotations: 0,
            label: format!("WindowedSharded{shards}-{base}"),
        }
    }

    /// Number of worker shards.
    #[must_use]
    pub fn shards(&self) -> usize {
        self.senders.len()
    }

    /// The requested window W.
    #[must_use]
    pub fn window(&self) -> u64 {
        self.window
    }

    /// The global rotation period `⌈W/G⌉` in packets.
    #[must_use]
    pub fn pane_len(&self) -> u64 {
        self.pane_len
    }

    /// Packets fed so far (across all shards).
    #[must_use]
    pub fn packets(&self) -> u64 {
        self.packets
    }

    /// Global panes completed so far.
    #[must_use]
    pub fn panes_completed(&self) -> u64 {
        self.rotations
    }

    /// Routes one packet to its shard; at every global pane boundary,
    /// flushes all partial buffers and broadcasts the rotation marker.
    #[inline]
    pub fn update(&mut self, key2: K) {
        self.packets += 1;
        self.pane_fill += 1;
        let shard = shard_of_key(key2, self.senders.len());
        let buf = &mut self.bufs[shard];
        buf.push(key2);
        if buf.len() >= self.batch {
            let full = std::mem::replace(buf, Vec::with_capacity(self.batch));
            let _ = self.senders[shard].send(WindowedShardMsg::Batch(full));
        }
        if self.pane_fill == self.pane_len {
            self.rotate();
        }
    }

    /// Feeds a slice of packets (the burst entry point; routing and pane
    /// accounting stay per-packet, hand-off stays per-batch).
    pub fn update_batch(&mut self, keys: &[K]) {
        for &k in keys {
            self.update(k);
        }
    }

    fn rotate(&mut self) {
        // The boundary packet must reach its worker before the marker:
        // flush every partial buffer first, then broadcast Rotate on the
        // same ordered channels.
        self.flush();
        for tx in &self.senders {
            let _ = tx.send(WindowedShardMsg::Rotate);
        }
        self.rotations += 1;
        self.pane_fill = 0;
    }

    /// Sends every partially filled buffer to its worker.
    pub fn flush(&mut self) {
        for (shard, buf) in self.bufs.iter_mut().enumerate() {
            if !buf.is_empty() {
                let part = std::mem::take(buf);
                let _ = self.senders[shard].send(WindowedShardMsg::Batch(part));
            }
        }
    }

    /// Failure-injection hook for chaos tests; see
    /// [`ShardedMonitor::inject_shard_failure`].
    #[doc(hidden)]
    pub fn inject_shard_failure(&mut self, shard: usize) {
        let _ = self.senders[shard].send(WindowedShardMsg::Poison);
    }

    /// Flushes, joins every worker and combines the windowed answer: all
    /// shards' retained completed panes merge in a single K·G-way
    /// [`Rhhh::merge_many`] pass, yielding one instance whose packet total
    /// is exactly the covered window (at least `W` once `G` global panes
    /// have completed). Before the first rotation there are no completed
    /// panes anywhere, and the K active panes merge instead — a partial
    /// answer over everything fed so far.
    ///
    /// # Errors
    ///
    /// [`MergeError::ShardFailed`] when any worker thread died mid-feed
    /// (same contract as [`ShardedMonitor::harvest`]).
    pub fn harvest_window(mut self) -> Result<Rhhh<K, E>, MergeError> {
        self.flush();
        self.senders.clear(); // closes every channel; workers drain & exit
        let rings = join_shards(std::mem::take(&mut self.handles))?;
        let mut panes: Vec<Rhhh<K, E>> = Vec::with_capacity(rings.len() * self.pane_count);
        if self.rotations == 0 {
            for ring in rings {
                let (active, _) = ring.into_parts();
                panes.push(active);
            }
        } else {
            for ring in rings {
                let (_, completed) = ring.into_parts();
                panes.extend(completed);
            }
        }
        let mut merged = panes.remove(0);
        merged.merge_many(panes);
        Ok(merged)
    }

    /// Convenience: harvest the windowed answer and run `Output(θ)`.
    ///
    /// # Errors
    ///
    /// Propagates [`WindowedShardedMonitor::harvest_window`]'s failures.
    pub fn finish_and_query(self, theta: f64) -> Result<Vec<HeavyHitter<K>>, MergeError> {
        Ok(self.harvest_window()?.output(theta))
    }
}

impl<E: FrequencyEstimator<u64>> DataplaneMonitor for WindowedShardedMonitor<u64, E> {
    #[inline]
    fn on_packet(&mut self, key2: u64) {
        self.update(key2);
    }

    fn label(&self) -> String {
        self.label.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hhh_core::HhhAlgorithm;
    use hhh_counters::CompactSpaceSaving;
    use hhh_hierarchy::pack2;

    struct Lcg(u64);
    impl Lcg {
        fn next(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0 >> 16
        }
    }

    fn attack_stream(n: u64, seed: u64) -> Vec<u64> {
        let mut rng = Lcg(seed);
        (0..n)
            .map(|i| {
                if i % 10 < 3 {
                    pack2(
                        0x0A14_0000 | (rng.next() as u32 & 0xFFFF),
                        u32::from_be_bytes([8, 8, 8, 8]),
                    )
                } else {
                    pack2(rng.next() as u32, rng.next() as u32)
                }
            })
            .collect()
    }

    fn config() -> RhhhConfig {
        RhhhConfig {
            epsilon_s: 0.02,
            epsilon_a: 0.005,
            delta_s: 0.05,
            ..RhhhConfig::default()
        }
    }

    #[test]
    fn sharded_monitor_finds_planted_hhh() {
        for shards in [1usize, 2, 4] {
            let lat = hhh_hierarchy::Lattice::ipv4_src_dst_bytes();
            let mut mon =
                ShardedMonitor::<u64, SpaceSaving<u64>>::spawn(lat.clone(), config(), shards, 256);
            let n = 400_000u64;
            for &k in &attack_stream(n, 4) {
                mon.update(k);
            }
            assert_eq!(mon.packets(), n);
            let total: u64 = mon.shard_packets().iter().sum();
            assert_eq!(total, n, "per-shard routing must account every packet");
            let merged = mon.harvest().expect("healthy pipeline");
            assert_eq!(merged.packets(), n, "merged N covers the whole stream");
            assert_eq!(merged.total_weight(), n);
            let rendered: Vec<String> = merged
                .output(0.1)
                .iter()
                .map(|h| h.prefix.display(&lat))
                .collect();
            assert!(
                rendered
                    .iter()
                    .any(|s| s.contains("10.20.0.0/16") && s.contains("8.8.8.8/32")),
                "{shards} shards: missing planted HHH in {rendered:?}"
            );
        }
    }

    #[test]
    fn sharded_monitor_works_with_compact_counter() {
        let lat = hhh_hierarchy::Lattice::ipv4_src_dst_bytes();
        let mut mon =
            ShardedMonitor::<u64, CompactSpaceSaving<u64>>::spawn(lat.clone(), config(), 3, 512);
        let n = 300_000u64;
        for &k in &attack_stream(n, 7) {
            mon.on_packet(k);
        }
        assert_eq!(mon.label(), "Sharded3-RHHH");
        let out = mon.finish_and_query(0.1).expect("healthy pipeline");
        assert!(out
            .iter()
            .map(|h| h.prefix.display(&lat))
            .any(|s| s.contains("10.20.0.0/16")));
    }

    #[test]
    fn shard_routing_is_key_stable_and_balanced() {
        // The same key always lands on the same shard, and random traffic
        // spreads evenly (within 10%).
        let shards = 4;
        let mut rng = Lcg(9);
        let mut counts = vec![0u64; shards];
        for _ in 0..100_000 {
            let k = rng.next();
            let s = shard_of(k, shards);
            assert_eq!(s, shard_of(k, shards));
            counts[s] += 1;
        }
        let expect = 100_000 / shards as u64;
        for (s, &c) in counts.iter().enumerate() {
            assert!(
                (c as i64 - expect as i64).unsigned_abs() < expect / 10,
                "shard {s}: {c} vs {expect}"
            );
        }
    }

    #[test]
    fn weighted_feed_conserves_weight_and_finds_volume_hitter() {
        let lat = hhh_hierarchy::Lattice::ipv4_src_dst_bytes();
        let mut mon = ShardedMonitor::<u64, SpaceSaving<u64>>::spawn(lat.clone(), config(), 3, 512);
        let heavy = pack2(
            u32::from_be_bytes([7, 7, 7, 7]),
            u32::from_be_bytes([8, 8, 8, 8]),
        );
        let mut rng = Lcg(13);
        let n = 200_000u64;
        let mut volume = 0u64;
        let packets: Vec<(u64, u64)> = (0..n)
            .map(|i| {
                let p = if i % 10 == 0 {
                    (heavy, 1400)
                } else {
                    (pack2(rng.next() as u32, rng.next() as u32), 64)
                };
                volume += p.1;
                p
            })
            .collect();
        for chunk in packets.chunks(4_096) {
            mon.update_batch_weighted(chunk);
        }
        assert_eq!(mon.packets(), n);
        assert_eq!(mon.weight(), volume);
        let merged = mon.harvest().expect("healthy pipeline");
        assert_eq!(merged.packets(), n);
        assert_eq!(
            merged.total_weight(),
            volume,
            "sharding + merge must conserve total weight"
        );
        let out = merged.output(0.3);
        assert!(
            out.iter()
                .any(|h| h.prefix.display(&lat).contains("7.7.7.7/32")),
            "volume-heavy flow lost by the weighted sharded path"
        );
    }

    #[test]
    fn unit_and_weighted_feeds_interleave() {
        // Mixing both feeds on one monitor keeps the ledgers coherent:
        // packets count both kinds, weight counts units + weights.
        let lat = hhh_hierarchy::Lattice::ipv4_src_dst_bytes();
        let mut mon = ShardedMonitor::<u64, SpaceSaving<u64>>::spawn(lat, config(), 2, 64);
        for i in 0..1_000u64 {
            if i % 2 == 0 {
                mon.update(i);
            } else {
                mon.update_weighted(i, 10);
            }
        }
        assert_eq!(mon.packets(), 1_000);
        assert_eq!(mon.weight(), 500 + 500 * 10);
        let merged = mon.harvest().expect("healthy pipeline");
        assert_eq!(merged.packets(), 1_000);
        assert_eq!(merged.total_weight(), 500 + 500 * 10);
    }

    #[test]
    fn harvest_flushes_partial_buffers() {
        let lat = hhh_hierarchy::Lattice::ipv4_src_dst_bytes();
        let mut mon = ShardedMonitor::<u64, SpaceSaving<u64>>::spawn(lat, config(), 2, 4_096);
        // Fewer packets than one batch: everything rides the final flush.
        for i in 0..100u64 {
            mon.update(i);
        }
        let merged = mon.harvest().expect("healthy pipeline");
        assert_eq!(merged.packets(), 100);
    }

    #[test]
    fn ten_rhhh_sharded_update_rate_is_h_over_v() {
        let lat = hhh_hierarchy::Lattice::ipv4_src_dst_bytes();
        let mut mon =
            ShardedMonitor::<u64, SpaceSaving<u64>>::spawn(lat, RhhhConfig::ten_rhhh(), 4, 1_024);
        let n = 200_000u64;
        for &k in &attack_stream(n, 11) {
            mon.update(k);
        }
        let merged = mon.harvest().expect("healthy pipeline");
        let rate = merged.total_updates() as f64 / n as f64;
        assert!((rate - 0.1).abs() < 0.01, "update rate {rate}");
    }

    #[test]
    #[should_panic(expected = "need at least one shard")]
    fn zero_shards_rejected() {
        let lat = hhh_hierarchy::Lattice::ipv4_src_dst_bytes();
        let _ = ShardedMonitor::<u64, SpaceSaving<u64>>::spawn(lat, RhhhConfig::default(), 0, 64);
    }

    #[test]
    fn windowed_sharded_pane_accounting_is_global() {
        let lat = hhh_hierarchy::Lattice::ipv4_src_dst_bytes();
        let mut mon = WindowedShardedMonitor::<u64, SpaceSaving<u64>>::spawn(
            lat,
            config(),
            3,
            256,
            40_000,
            4,
        );
        assert_eq!(mon.pane_len(), 10_000);
        for &k in &attack_stream(35_000, 21) {
            mon.update(k);
        }
        assert_eq!(mon.packets(), 35_000);
        assert_eq!(mon.panes_completed(), 3);
        let merged = mon.harvest_window().expect("healthy pipeline");
        assert_eq!(
            merged.packets(),
            30_000,
            "windowed harvest covers exactly the completed global panes"
        );
    }

    #[test]
    fn windowed_sharded_finds_recent_attack_and_ages_out_old_one() {
        for shards in [1usize, 4] {
            let lat = hhh_hierarchy::Lattice::ipv4_src_dst_bytes();
            let mut mon = WindowedShardedMonitor::<u64, CompactSpaceSaving<u64>>::spawn(
                lat.clone(),
                config(),
                shards,
                512,
                120_000,
                4,
            );
            // Old traffic: planted attack. Recent window: clean random.
            for &k in &attack_stream(120_000, 31) {
                mon.update(k);
            }
            let mut rng = Lcg(32);
            for _ in 0..150_000 {
                mon.update(pack2(rng.next() as u32, rng.next() as u32));
            }
            let out = mon.finish_and_query(0.1).expect("healthy pipeline");
            assert!(
                !out.iter()
                    .any(|h| h.prefix.display(&lat).contains("10.20.0.0/16")),
                "{shards} shards: attack older than the window must age out"
            );

            // Symmetric check: an attack inside the window is found.
            let mut mon = WindowedShardedMonitor::<u64, SpaceSaving<u64>>::spawn(
                lat.clone(),
                config(),
                shards,
                512,
                120_000,
                4,
            );
            for _ in 0..150_000 {
                mon.update(pack2(rng.next() as u32, rng.next() as u32));
            }
            for &k in &attack_stream(120_000, 33) {
                mon.update(k);
            }
            let out = mon.finish_and_query(0.1).expect("healthy pipeline");
            assert!(
                out.iter()
                    .any(|h| h.prefix.display(&lat).contains("10.20.0.0/16")),
                "{shards} shards: attack inside the window must be reported"
            );
        }
    }

    #[test]
    fn windowed_sharded_before_first_rotation_answers_partially() {
        let lat = hhh_hierarchy::Lattice::ipv4_src_dst_bytes();
        let mut mon = WindowedShardedMonitor::<u64, SpaceSaving<u64>>::spawn(
            lat,
            config(),
            2,
            256,
            1_000_000,
            4,
        );
        for &k in &attack_stream(10_000, 41) {
            mon.update(k);
        }
        assert_eq!(mon.panes_completed(), 0);
        let merged = mon.harvest_window().expect("healthy pipeline");
        assert_eq!(
            merged.packets(),
            10_000,
            "pre-rotation harvest merges the active panes"
        );
    }

    #[test]
    fn dead_shard_surfaces_as_merge_error() {
        let lat = hhh_hierarchy::Lattice::ipv4_src_dst_bytes();
        let mut mon = ShardedMonitor::<u64, SpaceSaving<u64>>::spawn(lat, config(), 2, 64);
        for i in 0..1_000u64 {
            mon.update(i);
        }
        mon.inject_shard_failure(1);
        // The feed keeps running after the death: sends to the dead shard
        // are dropped, never panicking the ingress thread.
        for i in 0..5_000u64 {
            mon.update(i.wrapping_mul(0x9E37_79B9));
        }
        match mon.harvest() {
            Err(hhh_core::MergeError::ShardFailed(msg)) => {
                assert!(msg.contains("shard 1"), "error names the shard: {msg}");
                assert!(msg.contains("injected"), "error carries the payload: {msg}");
            }
            Ok(_) => panic!("harvest must not silently merge a partial answer"),
            Err(e) => panic!("wrong error kind: {e}"),
        }
    }
}
