//! Shard-parallel RHHH: RSS-style hash partitioning across worker threads,
//! lock-free batch hand-off, merge-on-harvest, and a non-blocking
//! snapshot query plane.
//!
//! Modern NICs spread flows across receive queues by hashing the packet
//! header (RSS), and each queue is polled by its own core. The inline
//! monitors in [`crate::monitor`] assume one measurement instance sees the
//! whole stream; this module drops that assumption: every worker thread
//! runs its *own* RHHH instance over its own sub-stream through the
//! geometric-skip batch path, shares nothing while packets flow, and the
//! harvest combines the per-shard summaries with [`Rhhh::merge`].
//!
//! Partitioning is by **key hash**, so a flow (and every prefix of it, per
//! shard) lands wholly in one shard. Accuracy-wise the merge analysis
//! applies: per-node counter errors add across shards (`Σᵢ nᵢ/m = n/m` —
//! the same ε_a class as one instance), and the shards' independent
//! sampling errors add in variance, which is exactly what the merged
//! instance's `slack()` over the summed `N` charges. Convergence needs the
//! *total* stream length to pass ψ, which the merged packet count reflects.
//!
//! The hand-off carries whole batches (one `Vec` per `batch` packets), not
//! packets, so the per-packet cost on the ingress thread is a hash, a
//! buffer push and an amortized hand-off — and the workers spend their
//! time in `update_batch`, not on synchronization. By default the hand-off
//! is a fixed-capacity lock-free SPSC ring per shard
//! ([`crate::handoff::Handoff::Ring`]): the uncontended crossing is two
//! atomic read-modify-writes, with spin-then-park backpressure when a
//! worker falls behind ([`QUEUE_BATCHES`] in-flight batches bound the
//! backlog). The previous bounded-channel hop stays available behind
//! [`SpawnOptions`] as the differential baseline.
//!
//! **The query plane never joins or blocks the workers.** Each worker
//! periodically publishes an epoch-stamped [`ShardSnapshot`] — a clone of
//! its summary — through an atomically swappable pointer (`arc-swap`):
//! every `publish_every` batches for [`ShardedMonitor`], at every pane
//! rotation for [`WindowedShardedMonitor`], and once at exit. A live
//! `query(θ)` loads the latest snapshot from every shard and K-way-merges
//! them via [`Rhhh::merge_many`], caching the merged instance keyed by the
//! epoch vector (the cross-thread generalization of the pane-ring query
//! cache in [`hhh_core::WindowedRhhh`]): repeated queries between
//! publications cost one `Output(θ)` scan, not a re-merge. Snapshots are
//! clones, so publication never perturbs the worker's state and the
//! harvest stays bit-identical whether or when queries ran.

use std::sync::Arc;
use std::thread::JoinHandle;

use arc_swap::ArcSwap;
use hhh_core::{HeavyHitter, HhhAlgorithm, MergeError, PaneRing, Rhhh, RhhhConfig};
use hhh_counters::{FrequencyEstimator, SpaceSaving};
use hhh_hierarchy::{KeyBits, Lattice};

use crate::datapath::DataplaneMonitor;
use crate::handoff::{conduit, spawn_named, HandoffStats, ShardTx, SpawnError, SpawnOptions};

/// In-flight batches each shard's hand-off may hold before the ingress
/// thread backpressures. Enough to ride out scheduling hiccups (at the
/// default 4Ki-key batches this is ≤ 2 MiB per shard), small enough that
/// a continuously slower worker bounds memory instead of growing a
/// backlog.
const QUEUE_BATCHES: usize = 16;

/// The canonical key-hash routing, re-exported so pipeline users need not
/// reach into `hhh-hierarchy` for it.
pub use hhh_hierarchy::shard_of;

/// [`shard_of`] over any lattice key (hashes the low 64 bits; for the
/// packed IPv4 keys this is the whole key).
#[inline]
fn shard_of_key<K: KeyBits>(key: K, shards: usize) -> usize {
    shard_of(key.low_u64(), shards)
}

/// One worker's published view of its sub-stream, swapped atomically into
/// the monitor-visible slot so readers never block the worker.
///
/// `epoch` increments with every publication (the initial empty snapshot
/// is epoch 0), so the query cache can detect staleness by comparing
/// epoch vectors. `batches` counts the hand-off units folded into
/// `summary` — a query made after this snapshot reflects every batch the
/// worker acknowledged before publishing it, and is stale by at most one
/// publication interval.
#[derive(Debug)]
pub struct ShardSnapshot<K: KeyBits, E: FrequencyEstimator<K>> {
    /// Publication sequence number (0 = the pre-feed empty snapshot).
    pub epoch: u64,
    /// Batches folded into `summary` at publication time.
    pub batches: u64,
    /// Clone of the worker's RHHH state (for the windowed monitor: the
    /// merged completed window, or the active pane before any rotation —
    /// mirroring `harvest_window`'s coverage rule).
    pub summary: Rhhh<K, E>,
}

/// One hand-off unit on a shard's conduit: a batch of unit-weight keys
/// (the packet-count feed) or of `(key, weight)` pairs (the volume feed).
/// Both kinds may interleave on one conduit — the worker drains them in
/// arrival order through the matching RHHH batch path.
#[derive(Debug)]
enum ShardBatch<K> {
    Unit(Vec<K>),
    Weighted(Vec<(K, u64)>),
    /// Publication marker: the worker publishes a fresh snapshot now.
    /// Rides the same FIFO conduit as the batches, so the snapshot
    /// reflects everything sent before the marker.
    Publish,
    /// Failure-injection poison: the worker panics on receipt. Only ever
    /// sent by [`ShardedMonitor::inject_shard_failure`] (chaos tests).
    Poison,
}

/// Extracts a human-readable message from a worker thread's panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "worker panicked with a non-string payload".to_string()
    }
}

/// Joins every shard worker — even after a failure, so no thread leaks —
/// and surfaces the first death as [`MergeError::ShardFailed`] naming the
/// shard and its panic payload. Shared by both monitors' harvests so the
/// windowed and unwindowed pipelines keep an identical failure contract.
fn join_shards<T>(handles: Vec<JoinHandle<T>>) -> Result<Vec<T>, MergeError> {
    let mut workers = Vec::with_capacity(handles.len());
    let mut failure: Option<MergeError> = None;
    for (shard, handle) in handles.into_iter().enumerate() {
        match handle.join() {
            Ok(worker) => workers.push(worker),
            Err(payload) => {
                failure.get_or_insert_with(|| {
                    MergeError::ShardFailed(format!(
                        "shard {shard}: {}",
                        panic_message(payload.as_ref())
                    ))
                });
            }
        }
    }
    match failure {
        Some(err) => Err(err),
        None => Ok(workers),
    }
}

/// Stores a fresh epoch-stamped snapshot of `summary` into `slot`.
fn publish_snapshot<K: KeyBits, E: FrequencyEstimator<K> + Clone>(
    slot: &ArcSwap<ShardSnapshot<K, E>>,
    epoch: &mut u64,
    batches: u64,
    summary: &Rhhh<K, E>,
) {
    *epoch += 1;
    slot.store(Arc::new(ShardSnapshot {
        epoch: *epoch,
        batches,
        summary: summary.clone(),
    }));
}

/// K-way-merges one summary clone per snapshot (the read side of the
/// query plane; never touches the workers).
fn merge_snapshots<K: KeyBits, E: FrequencyEstimator<K> + Clone>(
    snaps: &[Arc<ShardSnapshot<K, E>>],
) -> Rhhh<K, E> {
    let mut merged = snaps[0].summary.clone();
    merged.merge_many(snaps[1..].iter().map(|s| s.summary.clone()).collect());
    merged
}

/// Shard-parallel RHHH monitor: `N` worker threads, each owning one RHHH
/// instance fed through the batch path, combined by merge at harvest.
///
/// Create with [`ShardedMonitor::spawn`] (or [`ShardedMonitor::spawn_with`]
/// for hand-off/publication knobs), feed packets via
/// [`ShardedMonitor::on_packet`] (or as a [`DataplaneMonitor`]), query the
/// live snapshot plane with [`ShardedMonitor::query`] at any time, then
/// [`ShardedMonitor::harvest`] to join the workers and obtain the merged,
/// queryable instance.
///
/// Generic over the per-node counter like [`Rhhh`] itself; the flat-arena
/// layout ([`crate::monitor::CompactBatchingMonitor`]'s counter) pairs well
/// with the batch flush the workers run.
#[derive(Debug)]
pub struct ShardedMonitor<K: KeyBits = u64, E: FrequencyEstimator<K> = SpaceSaving<K>> {
    senders: Vec<ShardTx<ShardBatch<K>>>,
    handles: Vec<JoinHandle<Rhhh<K, E>>>,
    snapshots: Vec<Arc<ArcSwap<ShardSnapshot<K, E>>>>,
    stats: Vec<HandoffStats>,
    bufs: Vec<Vec<K>>,
    /// Per-shard `(key, weight)` buffers of the volume feed; allocated
    /// lazily on the first weighted packet so packet-count pipelines pay
    /// nothing for the second path.
    wbufs: Vec<Vec<(K, u64)>>,
    batch: usize,
    packets: u64,
    /// Total recorded weight (equals `packets` when only the unit feed is
    /// used).
    weight: u64,
    per_shard: Vec<u64>,
    /// Live-query merge cache keyed by the snapshot epoch vector; stays
    /// valid until any shard publishes again.
    query_cache: Option<(Vec<u64>, Rhhh<K, E>)>,
    label: String,
}

impl<K: KeyBits, E: FrequencyEstimator<K> + Clone + Sync> ShardedMonitor<K, E> {
    /// Spawns `shards` worker threads over copies of `lattice`/`config`
    /// (each worker gets a distinct deterministic seed derived from
    /// `config.seed`), buffering `batch` packets per shard before handing
    /// a batch over. Uses the default [`SpawnOptions`] (ring hand-off,
    /// snapshot every 8 batches).
    ///
    /// # Errors
    ///
    /// [`SpawnError`] when the OS refuses to start a worker thread.
    ///
    /// # Panics
    ///
    /// Panics when `shards` or `batch` is zero.
    pub fn spawn(
        lattice: Lattice<K>,
        config: RhhhConfig,
        shards: usize,
        batch: usize,
    ) -> Result<Self, SpawnError> {
        Self::spawn_with(lattice, config, shards, batch, SpawnOptions::default())
    }

    /// [`ShardedMonitor::spawn`] with explicit hand-off and publication
    /// options. Worker threads are named `shard-{i}`.
    ///
    /// # Errors
    ///
    /// [`SpawnError`] when the OS refuses to start a worker thread.
    ///
    /// # Panics
    ///
    /// Panics when `shards` or `batch` is zero.
    pub fn spawn_with(
        lattice: Lattice<K>,
        config: RhhhConfig,
        shards: usize,
        batch: usize,
        opts: SpawnOptions,
    ) -> Result<Self, SpawnError> {
        assert!(shards > 0, "need at least one shard");
        assert!(batch > 0, "batch size must be positive");
        let base = if config.v_scale == 1 {
            "RHHH".to_string()
        } else {
            format!("{}-RHHH", config.v_scale)
        };
        let publish_every = opts.publish_every.max(1);
        let mut senders = Vec::with_capacity(shards);
        let mut handles = Vec::with_capacity(shards);
        let mut snapshots = Vec::with_capacity(shards);
        for shard in 0..shards {
            let worker = Rhhh::<K, E>::new(
                lattice.clone(),
                RhhhConfig {
                    // Distinct deterministic seed per shard: the shards'
                    // sampling draws must be independent.
                    seed: config.seed ^ (shard as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                    ..config
                },
            );
            let slot = Arc::new(ArcSwap::from_pointee(ShardSnapshot {
                epoch: 0,
                batches: 0,
                summary: worker.clone(),
            }));
            snapshots.push(Arc::clone(&slot));
            let (tx, rx) = conduit::<ShardBatch<K>>(opts.handoff, QUEUE_BATCHES);
            let handle = spawn_named(format!("shard-{shard}"), move || {
                let mut worker = worker;
                let mut batches = 0u64;
                let mut epoch = 0u64;
                while let Some(msg) = rx.recv() {
                    match msg {
                        ShardBatch::Unit(keys) => {
                            worker.update_batch(&keys);
                            batches += 1;
                            if batches.is_multiple_of(publish_every) {
                                publish_snapshot(&slot, &mut epoch, batches, &worker);
                            }
                        }
                        ShardBatch::Weighted(packets) => {
                            worker.update_batch_weighted(&packets);
                            batches += 1;
                            if batches.is_multiple_of(publish_every) {
                                publish_snapshot(&slot, &mut epoch, batches, &worker);
                            }
                        }
                        ShardBatch::Publish => {
                            publish_snapshot(&slot, &mut epoch, batches, &worker);
                        }
                        ShardBatch::Poison => panic!("injected shard failure"),
                    }
                }
                // Final publication so late readers see the full
                // sub-stream even without harvesting.
                publish_snapshot(&slot, &mut epoch, batches, &worker);
                worker
            })?;
            senders.push(tx.bind(handle.thread().clone()));
            handles.push(handle);
        }
        Ok(Self {
            senders,
            handles,
            snapshots,
            stats: vec![HandoffStats::default(); shards],
            bufs: (0..shards).map(|_| Vec::with_capacity(batch)).collect(),
            wbufs: (0..shards).map(|_| Vec::new()).collect(),
            batch,
            packets: 0,
            weight: 0,
            per_shard: vec![0; shards],
            query_cache: None,
            label: format!("Sharded{shards}-{base}"),
        })
    }

    /// Number of worker shards.
    #[must_use]
    pub fn shards(&self) -> usize {
        self.senders.len()
    }

    /// Packets fed so far (across all shards).
    #[must_use]
    pub fn packets(&self) -> u64 {
        self.packets
    }

    /// Packets routed to each shard so far — the hash-balance diagnostic.
    #[must_use]
    pub fn shard_packets(&self) -> &[u64] {
        &self.per_shard
    }

    /// Total recorded weight so far (equals [`ShardedMonitor::packets`]
    /// when only the unit feed is used).
    #[must_use]
    pub fn weight(&self) -> u64 {
        self.weight
    }

    /// Per-shard hand-off counters (sends, ring occupancy, backpressure
    /// and park events, drops) — the diagnostics `sharded_throughput`
    /// prints.
    #[must_use]
    pub fn handoff_stats(&self) -> &[HandoffStats] {
        &self.stats
    }

    /// The latest published snapshot epoch per shard (0 until a shard
    /// first publishes). Strictly increases with each publication.
    #[must_use]
    pub fn snapshot_epochs(&self) -> Vec<u64> {
        self.snapshots.iter().map(|s| s.load_full().epoch).collect()
    }

    /// Routes one packet to its shard, handing off a full batch when the
    /// shard's buffer fills.
    #[inline]
    pub fn update(&mut self, key2: K) {
        self.packets += 1;
        self.weight += 1;
        let shard = shard_of_key(key2, self.senders.len());
        self.per_shard[shard] += 1;
        let buf = &mut self.bufs[shard];
        buf.push(key2);
        if buf.len() >= self.batch {
            let full = std::mem::replace(buf, Vec::with_capacity(self.batch));
            // A send only fails when the worker died (panicked). The feed
            // stays alive — packets for the dead shard are lost and
            // counted in its `HandoffStats::dropped` — and harvest
            // reports the failure as a `MergeError::ShardFailed` instead
            // of poisoning the ingress.
            let _ = self.senders[shard].send(ShardBatch::Unit(full), &mut self.stats[shard]);
        }
    }

    /// Routes one packet carrying `weight` units (e.g. bytes) to its
    /// shard — the volume-measurement twin of [`ShardedMonitor::update`].
    /// The shard is still chosen by key hash, so a flow's whole volume
    /// lands in one shard and the per-shard weighted batch path
    /// ([`Rhhh::update_batch_weighted`]) records it; the harvest-time
    /// merge then conserves total weight exactly (pinned by the
    /// `sharded_weighted` property suite).
    #[inline]
    pub fn update_weighted(&mut self, key2: K, weight: u64) {
        self.packets += 1;
        self.weight += weight;
        let shard = shard_of_key(key2, self.senders.len());
        self.per_shard[shard] += 1;
        let buf = &mut self.wbufs[shard];
        if buf.capacity() == 0 {
            buf.reserve(self.batch);
        }
        buf.push((key2, weight));
        if buf.len() >= self.batch {
            let full = std::mem::replace(buf, Vec::with_capacity(self.batch));
            let _ = self.senders[shard].send(ShardBatch::Weighted(full), &mut self.stats[shard]);
        }
    }

    /// Feeds a slice of weighted packets — the bulk entry point of the
    /// volume feed (ROADMAP sharding follow-up (b)).
    pub fn update_batch_weighted(&mut self, packets: &[(K, u64)]) {
        for &(key, weight) in packets {
            self.update_weighted(key, weight);
        }
    }

    /// Sends every partially filled buffer (both feeds) to its worker.
    /// Called by [`ShardedMonitor::harvest`]; useful on its own before a
    /// progress report.
    pub fn flush(&mut self) {
        for (shard, buf) in self.bufs.iter_mut().enumerate() {
            if !buf.is_empty() {
                let part = std::mem::take(buf);
                let _ = self.senders[shard].send(ShardBatch::Unit(part), &mut self.stats[shard]);
            }
        }
        for (shard, buf) in self.wbufs.iter_mut().enumerate() {
            if !buf.is_empty() {
                let part = std::mem::take(buf);
                let _ =
                    self.senders[shard].send(ShardBatch::Weighted(part), &mut self.stats[shard]);
            }
        }
    }

    /// Flushes all partial buffers and asks every worker to publish a
    /// fresh snapshot. The marker rides the FIFO hand-off behind the
    /// flushed batches, so once each shard's epoch advances past its
    /// value at call time, [`ShardedMonitor::query`] reflects **every**
    /// packet fed before this call — the deterministic freshness hook the
    /// property suite pins.
    pub fn publish_now(&mut self) {
        self.flush();
        for (shard, tx) in self.senders.iter().enumerate() {
            let _ = tx.send(ShardBatch::Publish, &mut self.stats[shard]);
        }
    }

    /// Ensures the query cache holds the merge of the latest snapshots.
    fn refresh_query_cache(&mut self) {
        let snaps: Vec<Arc<ShardSnapshot<K, E>>> =
            self.snapshots.iter().map(|s| s.load_full()).collect();
        let epochs: Vec<u64> = snaps.iter().map(|s| s.epoch).collect();
        if let Some((cached, _)) = &self.query_cache {
            if *cached == epochs {
                return;
            }
        }
        let merged = merge_snapshots(&snaps);
        self.query_cache = Some((epochs, merged));
    }

    /// Live `Output(θ)` over the latest published snapshots — never
    /// joins, blocks, or slows the workers. The K-way merge is cached
    /// keyed by the snapshot epoch vector, so repeated queries between
    /// publications cost one output scan (the cross-thread analogue of
    /// [`hhh_core::WindowedRhhh::query`]'s cache). Staleness is bounded
    /// by one publication interval per shard plus whatever sits in the
    /// monitor's partial buffers; call [`ShardedMonitor::publish_now`]
    /// first for an up-to-the-call answer.
    pub fn query(&mut self, theta: f64) -> Vec<HeavyHitter<K>> {
        self.refresh_query_cache();
        self.query_cache
            .as_ref()
            .expect("cache refreshed above")
            .1
            .output(theta)
    }

    /// [`ShardedMonitor::query`] without the epoch cache: re-merges the
    /// latest snapshots on every call. The differential baseline the
    /// bench races the cached path against.
    #[must_use]
    pub fn query_fresh(&self, theta: f64) -> Vec<HeavyHitter<K>> {
        let snaps: Vec<Arc<ShardSnapshot<K, E>>> =
            self.snapshots.iter().map(|s| s.load_full()).collect();
        merge_snapshots(&snaps).output(theta)
    }

    /// Packets covered by the current snapshot merge — how much of the
    /// fed stream a live query reflects right now.
    pub fn query_coverage(&mut self) -> u64 {
        self.refresh_query_cache();
        self.query_cache
            .as_ref()
            .expect("cache refreshed above")
            .1
            .packets()
    }

    /// Failure-injection hook for chaos tests: kills the given shard's
    /// worker thread (it panics on the poison message). Subsequent feeds
    /// keep running — packets routed to the dead shard are dropped — and
    /// [`ShardedMonitor::harvest`] reports the death as
    /// [`MergeError::ShardFailed`]. Live queries keep answering from the
    /// dead shard's last published snapshot.
    #[doc(hidden)]
    pub fn inject_shard_failure(&mut self, shard: usize) {
        let _ = self.senders[shard].send(ShardBatch::Poison, &mut self.stats[shard]);
    }

    /// Flushes, joins every worker and merges the per-shard summaries into
    /// one queryable instance whose packet and weight totals cover the
    /// whole stream. All K summaries combine in a single
    /// [`Rhhh::merge_many`] pass — tighter than the pairwise fold this
    /// pipeline used before, which accumulated min-count padding per fold
    /// step (ROADMAP sharding follow-up (c)).
    ///
    /// # Errors
    ///
    /// [`MergeError::ShardFailed`] when any worker thread died (panicked)
    /// mid-feed: its sub-stream's summary is gone, so a merged answer
    /// would silently under-count. The error names the first dead shard.
    pub fn harvest(mut self) -> Result<Rhhh<K, E>, MergeError> {
        self.flush();
        self.senders.clear(); // closes every hand-off; workers drain & exit
        let mut workers = join_shards(std::mem::take(&mut self.handles))?;
        let mut merged = workers.remove(0);
        merged.merge_many(workers);
        Ok(merged)
    }

    /// Convenience: harvest and immediately run `Output(θ)`.
    ///
    /// # Errors
    ///
    /// Propagates [`ShardedMonitor::harvest`]'s `ShardFailed`.
    pub fn finish_and_query(self, theta: f64) -> Result<Vec<HeavyHitter<K>>, MergeError> {
        Ok(self.harvest()?.output(theta))
    }
}

impl<E: FrequencyEstimator<u64> + Clone + Sync> DataplaneMonitor for ShardedMonitor<u64, E> {
    #[inline]
    fn on_packet(&mut self, key2: u64) {
        self.update(key2);
    }

    fn label(&self) -> String {
        self.label.clone()
    }
}

/// One hand-off unit on a windowed shard's conduit: a batch of keys, or
/// the global pane-rotation marker. Markers ride the same ordered conduit
/// as the batches, so every worker rotates at exactly the same global
/// packet index — pane boundaries stay aligned across shards without any
/// cross-thread synchronization.
#[derive(Debug)]
enum WindowedShardMsg<K> {
    Batch(Vec<K>),
    Rotate,
    /// Publication marker, as in [`ShardBatch::Publish`].
    Publish,
    /// Failure-injection poison, as in [`ShardBatch::Poison`].
    Poison,
}

/// Stores a fresh epoch-stamped snapshot of the ring's current windowed
/// answer: the merged completed panes, or the active pane before the
/// first rotation — exactly the coverage rule
/// [`WindowedShardedMonitor::harvest_window`] applies, so live queries
/// and the harvest agree on semantics.
fn publish_window_snapshot<K: KeyBits, E: FrequencyEstimator<K> + Clone>(
    slot: &ArcSwap<ShardSnapshot<K, E>>,
    epoch: &mut u64,
    batches: u64,
    ring: &PaneRing<K, E>,
) {
    *epoch += 1;
    let summary = ring
        .merged_window()
        .unwrap_or_else(|| ring.active().clone());
    slot.store(Arc::new(ShardSnapshot {
        epoch: *epoch,
        batches,
        summary,
    }));
}

/// Shard-parallel **sliding-window** RHHH: the windowed twin of
/// [`ShardedMonitor`].
///
/// Every worker thread runs its own [`PaneRing`] over its hash-routed
/// sub-stream through the geometric-skip batch path. Rotation is driven by
/// the *global* packet count: every `⌈W/G⌉` packets the ingress thread
/// flushes all partial buffers (so pane attribution is exact) and
/// broadcasts a rotation marker down every shard conduit. Each shard's
/// pane `i` therefore summarizes exactly its sub-stream of global pane
/// `i`, and [`WindowedShardedMonitor::harvest_window`] can answer the
/// windowed query with one **K·G-way** [`Rhhh::merge_many`] combine over
/// all shards' retained panes — per-shard errors add within a pane (the
/// sharded-merge analysis) and per-pane bounds add across the window (the
/// pane-ring analysis), so the end-to-end bound is the same summed
/// per-pane bound a single-threaded [`hhh_core::WindowedRhhh`] earns.
///
/// Workers publish their merged-window snapshot at every rotation, so
/// [`WindowedShardedMonitor::query`] serves the sliding-window answer
/// live — stale by at most one pane — without joining anything.
#[derive(Debug)]
pub struct WindowedShardedMonitor<K: KeyBits = u64, E: FrequencyEstimator<K> = SpaceSaving<K>> {
    senders: Vec<ShardTx<WindowedShardMsg<K>>>,
    handles: Vec<JoinHandle<PaneRing<K, E>>>,
    snapshots: Vec<Arc<ArcSwap<ShardSnapshot<K, E>>>>,
    stats: Vec<HandoffStats>,
    bufs: Vec<Vec<K>>,
    batch: usize,
    window: u64,
    pane_len: u64,
    pane_count: usize,
    packets: u64,
    pane_fill: u64,
    rotations: u64,
    query_cache: Option<(Vec<u64>, Rhhh<K, E>)>,
    label: String,
}

impl<K: KeyBits, E: FrequencyEstimator<K> + Clone + Sync> WindowedShardedMonitor<K, E> {
    /// Spawns `shards` pane-ring workers (distinct deterministic seeds per
    /// shard, like [`ShardedMonitor::spawn`]) covering the last `window`
    /// packets with `panes` globally-aligned ring panes. Uses the default
    /// [`SpawnOptions`].
    ///
    /// # Errors
    ///
    /// [`SpawnError`] when the OS refuses to start a worker thread.
    ///
    /// # Panics
    ///
    /// Panics when `shards`, `batch`, `window` or `panes` is zero, or when
    /// `window < panes`.
    pub fn spawn(
        lattice: Lattice<K>,
        config: RhhhConfig,
        shards: usize,
        batch: usize,
        window: u64,
        panes: usize,
    ) -> Result<Self, SpawnError> {
        Self::spawn_with(
            lattice,
            config,
            shards,
            batch,
            window,
            panes,
            SpawnOptions::default(),
        )
    }

    /// [`WindowedShardedMonitor::spawn`] with explicit hand-off options.
    /// Worker threads are named `wshard-{i}`. Snapshots publish at every
    /// pane rotation (the windowed publication interval), so
    /// `SpawnOptions::publish_every` is not consulted here.
    ///
    /// # Errors
    ///
    /// [`SpawnError`] when the OS refuses to start a worker thread.
    ///
    /// # Panics
    ///
    /// Panics when `shards`, `batch`, `window` or `panes` is zero, or when
    /// `window < panes`.
    #[allow(clippy::too_many_arguments)]
    pub fn spawn_with(
        lattice: Lattice<K>,
        config: RhhhConfig,
        shards: usize,
        batch: usize,
        window: u64,
        panes: usize,
        opts: SpawnOptions,
    ) -> Result<Self, SpawnError> {
        assert!(shards > 0, "need at least one shard");
        assert!(batch > 0, "batch size must be positive");
        assert!(window > 0, "window must be positive");
        assert!(panes > 0, "need at least one pane");
        assert!(
            window >= panes as u64,
            "window must hold at least one packet per pane"
        );
        let base = if config.v_scale == 1 {
            "RHHH".to_string()
        } else {
            format!("{}-RHHH", config.v_scale)
        };
        let mut senders = Vec::with_capacity(shards);
        let mut handles = Vec::with_capacity(shards);
        let mut snapshots = Vec::with_capacity(shards);
        for shard in 0..shards {
            let ring = PaneRing::<K, E>::new(
                lattice.clone(),
                RhhhConfig {
                    seed: config.seed ^ (shard as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                    ..config
                },
                panes,
            );
            let slot = Arc::new(ArcSwap::from_pointee(ShardSnapshot {
                epoch: 0,
                batches: 0,
                summary: ring.active().clone(),
            }));
            snapshots.push(Arc::clone(&slot));
            let (tx, rx) = conduit::<WindowedShardMsg<K>>(opts.handoff, QUEUE_BATCHES);
            let handle = spawn_named(format!("wshard-{shard}"), move || {
                let mut ring = ring;
                let mut batches = 0u64;
                let mut epoch = 0u64;
                while let Some(msg) = rx.recv() {
                    match msg {
                        WindowedShardMsg::Batch(keys) => {
                            ring.active_mut().update_batch(&keys);
                            batches += 1;
                        }
                        WindowedShardMsg::Rotate => {
                            ring.rotate();
                            publish_window_snapshot(&slot, &mut epoch, batches, &ring);
                        }
                        WindowedShardMsg::Publish => {
                            publish_window_snapshot(&slot, &mut epoch, batches, &ring);
                        }
                        WindowedShardMsg::Poison => panic!("injected shard failure"),
                    }
                }
                publish_window_snapshot(&slot, &mut epoch, batches, &ring);
                ring
            })?;
            senders.push(tx.bind(handle.thread().clone()));
            handles.push(handle);
        }
        Ok(Self {
            senders,
            handles,
            snapshots,
            stats: vec![HandoffStats::default(); shards],
            bufs: (0..shards).map(|_| Vec::with_capacity(batch)).collect(),
            batch,
            window,
            pane_len: window.div_ceil(panes as u64),
            pane_count: panes,
            packets: 0,
            pane_fill: 0,
            rotations: 0,
            query_cache: None,
            label: format!("WindowedSharded{shards}-{base}"),
        })
    }

    /// Number of worker shards.
    #[must_use]
    pub fn shards(&self) -> usize {
        self.senders.len()
    }

    /// The requested window W.
    #[must_use]
    pub fn window(&self) -> u64 {
        self.window
    }

    /// The global rotation period `⌈W/G⌉` in packets.
    #[must_use]
    pub fn pane_len(&self) -> u64 {
        self.pane_len
    }

    /// Packets fed so far (across all shards).
    #[must_use]
    pub fn packets(&self) -> u64 {
        self.packets
    }

    /// Global panes completed so far.
    #[must_use]
    pub fn panes_completed(&self) -> u64 {
        self.rotations
    }

    /// Per-shard hand-off counters; see [`ShardedMonitor::handoff_stats`].
    #[must_use]
    pub fn handoff_stats(&self) -> &[HandoffStats] {
        &self.stats
    }

    /// The latest published snapshot epoch per shard. Workers publish at
    /// every pane rotation, on [`WindowedShardedMonitor::publish_now`]
    /// markers, and at exit.
    #[must_use]
    pub fn snapshot_epochs(&self) -> Vec<u64> {
        self.snapshots.iter().map(|s| s.load_full().epoch).collect()
    }

    /// Routes one packet to its shard; at every global pane boundary,
    /// flushes all partial buffers and broadcasts the rotation marker.
    #[inline]
    pub fn update(&mut self, key2: K) {
        self.packets += 1;
        self.pane_fill += 1;
        let shard = shard_of_key(key2, self.senders.len());
        let buf = &mut self.bufs[shard];
        buf.push(key2);
        if buf.len() >= self.batch {
            let full = std::mem::replace(buf, Vec::with_capacity(self.batch));
            let _ = self.senders[shard].send(WindowedShardMsg::Batch(full), &mut self.stats[shard]);
        }
        if self.pane_fill == self.pane_len {
            self.rotate();
        }
    }

    /// Feeds a slice of packets (the burst entry point; routing and pane
    /// accounting stay per-packet, hand-off stays per-batch).
    pub fn update_batch(&mut self, keys: &[K]) {
        for &k in keys {
            self.update(k);
        }
    }

    fn rotate(&mut self) {
        // The boundary packet must reach its worker before the marker:
        // flush every partial buffer first, then broadcast Rotate on the
        // same ordered conduits.
        self.flush();
        for (shard, tx) in self.senders.iter().enumerate() {
            let _ = tx.send(WindowedShardMsg::Rotate, &mut self.stats[shard]);
        }
        self.rotations += 1;
        self.pane_fill = 0;
    }

    /// Sends every partially filled buffer to its worker.
    pub fn flush(&mut self) {
        for (shard, buf) in self.bufs.iter_mut().enumerate() {
            if !buf.is_empty() {
                let part = std::mem::take(buf);
                let _ =
                    self.senders[shard].send(WindowedShardMsg::Batch(part), &mut self.stats[shard]);
            }
        }
    }

    /// Flushes and asks every worker to publish a fresh snapshot (without
    /// rotating); see [`ShardedMonitor::publish_now`]. The published
    /// coverage still follows the window rule — completed panes, or the
    /// active pane before the first rotation.
    pub fn publish_now(&mut self) {
        self.flush();
        for (shard, tx) in self.senders.iter().enumerate() {
            let _ = tx.send(WindowedShardMsg::Publish, &mut self.stats[shard]);
        }
    }

    fn refresh_query_cache(&mut self) {
        let snaps: Vec<Arc<ShardSnapshot<K, E>>> =
            self.snapshots.iter().map(|s| s.load_full()).collect();
        let epochs: Vec<u64> = snaps.iter().map(|s| s.epoch).collect();
        if let Some((cached, _)) = &self.query_cache {
            if *cached == epochs {
                return;
            }
        }
        let merged = merge_snapshots(&snaps);
        self.query_cache = Some((epochs, merged));
    }

    /// Live sliding-window `Output(θ)` over the latest per-shard
    /// merged-window snapshots — never joins or blocks the workers, stale
    /// by at most one pane. Cached keyed by the snapshot epoch vector
    /// like [`ShardedMonitor::query`].
    pub fn query(&mut self, theta: f64) -> Vec<HeavyHitter<K>> {
        self.refresh_query_cache();
        self.query_cache
            .as_ref()
            .expect("cache refreshed above")
            .1
            .output(theta)
    }

    /// [`WindowedShardedMonitor::query`] without the epoch cache.
    #[must_use]
    pub fn query_fresh(&self, theta: f64) -> Vec<HeavyHitter<K>> {
        let snaps: Vec<Arc<ShardSnapshot<K, E>>> =
            self.snapshots.iter().map(|s| s.load_full()).collect();
        merge_snapshots(&snaps).output(theta)
    }

    /// Packets covered by the current snapshot merge.
    pub fn query_coverage(&mut self) -> u64 {
        self.refresh_query_cache();
        self.query_cache
            .as_ref()
            .expect("cache refreshed above")
            .1
            .packets()
    }

    /// Failure-injection hook for chaos tests; see
    /// [`ShardedMonitor::inject_shard_failure`].
    #[doc(hidden)]
    pub fn inject_shard_failure(&mut self, shard: usize) {
        let _ = self.senders[shard].send(WindowedShardMsg::Poison, &mut self.stats[shard]);
    }

    /// Flushes, joins every worker and combines the windowed answer: all
    /// shards' retained completed panes merge in a single K·G-way
    /// [`Rhhh::merge_many`] pass, yielding one instance whose packet total
    /// is exactly the covered window (at least `W` once `G` global panes
    /// have completed). Before the first rotation there are no completed
    /// panes anywhere, and the K active panes merge instead — a partial
    /// answer over everything fed so far.
    ///
    /// # Errors
    ///
    /// [`MergeError::ShardFailed`] when any worker thread died mid-feed
    /// (same contract as [`ShardedMonitor::harvest`]).
    pub fn harvest_window(mut self) -> Result<Rhhh<K, E>, MergeError> {
        self.flush();
        self.senders.clear(); // closes every hand-off; workers drain & exit
        let rings = join_shards(std::mem::take(&mut self.handles))?;
        let mut panes: Vec<Rhhh<K, E>> = Vec::with_capacity(rings.len() * self.pane_count);
        if self.rotations == 0 {
            for ring in rings {
                let (active, _) = ring.into_parts();
                panes.push(active);
            }
        } else {
            for ring in rings {
                let (_, completed) = ring.into_parts();
                panes.extend(completed);
            }
        }
        let mut merged = panes.remove(0);
        merged.merge_many(panes);
        Ok(merged)
    }

    /// Convenience: harvest the windowed answer and run `Output(θ)`.
    ///
    /// # Errors
    ///
    /// Propagates [`WindowedShardedMonitor::harvest_window`]'s failures.
    pub fn finish_and_query(self, theta: f64) -> Result<Vec<HeavyHitter<K>>, MergeError> {
        Ok(self.harvest_window()?.output(theta))
    }
}

impl<E: FrequencyEstimator<u64> + Clone + Sync> DataplaneMonitor
    for WindowedShardedMonitor<u64, E>
{
    #[inline]
    fn on_packet(&mut self, key2: u64) {
        self.update(key2);
    }

    fn label(&self) -> String {
        self.label.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::handoff::Handoff;
    use hhh_counters::CompactSpaceSaving;
    use hhh_hierarchy::pack2;
    use std::time::{Duration, Instant};

    struct Lcg(u64);
    impl Lcg {
        fn next(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0 >> 16
        }
    }

    fn attack_stream(n: u64, seed: u64) -> Vec<u64> {
        let mut rng = Lcg(seed);
        (0..n)
            .map(|i| {
                if i % 10 < 3 {
                    pack2(
                        0x0A14_0000 | (rng.next() as u32 & 0xFFFF),
                        u32::from_be_bytes([8, 8, 8, 8]),
                    )
                } else {
                    pack2(rng.next() as u32, rng.next() as u32)
                }
            })
            .collect()
    }

    fn config() -> RhhhConfig {
        RhhhConfig {
            epsilon_s: 0.02,
            epsilon_a: 0.005,
            delta_s: 0.05,
            ..RhhhConfig::default()
        }
    }

    /// Spins (bounded) until `done` holds — for waiting out in-flight
    /// publication markers without joining workers.
    fn wait_until(mut done: impl FnMut() -> bool) {
        let deadline = Instant::now() + Duration::from_secs(10);
        while !done() {
            assert!(Instant::now() < deadline, "snapshots never advanced");
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    #[test]
    fn sharded_monitor_finds_planted_hhh() {
        for shards in [1usize, 2, 4] {
            let lat = hhh_hierarchy::Lattice::ipv4_src_dst_bytes();
            let mut mon =
                ShardedMonitor::<u64, SpaceSaving<u64>>::spawn(lat.clone(), config(), shards, 256)
                    .expect("spawn workers");
            let n = 400_000u64;
            for &k in &attack_stream(n, 4) {
                mon.update(k);
            }
            assert_eq!(mon.packets(), n);
            let total: u64 = mon.shard_packets().iter().sum();
            assert_eq!(total, n, "per-shard routing must account every packet");
            let merged = mon.harvest().expect("healthy pipeline");
            assert_eq!(merged.packets(), n, "merged N covers the whole stream");
            assert_eq!(merged.total_weight(), n);
            let rendered: Vec<String> = merged
                .output(0.1)
                .iter()
                .map(|h| h.prefix.display(&lat))
                .collect();
            assert!(
                rendered
                    .iter()
                    .any(|s| s.contains("10.20.0.0/16") && s.contains("8.8.8.8/32")),
                "{shards} shards: missing planted HHH in {rendered:?}"
            );
        }
    }

    #[test]
    fn sharded_monitor_works_with_compact_counter() {
        let lat = hhh_hierarchy::Lattice::ipv4_src_dst_bytes();
        let mut mon =
            ShardedMonitor::<u64, CompactSpaceSaving<u64>>::spawn(lat.clone(), config(), 3, 512)
                .expect("spawn workers");
        let n = 300_000u64;
        for &k in &attack_stream(n, 7) {
            mon.on_packet(k);
        }
        assert_eq!(mon.label(), "Sharded3-RHHH");
        let out = mon.finish_and_query(0.1).expect("healthy pipeline");
        assert!(out
            .iter()
            .map(|h| h.prefix.display(&lat))
            .any(|s| s.contains("10.20.0.0/16")));
    }

    #[test]
    fn channel_mode_stays_available_as_baseline() {
        let lat = hhh_hierarchy::Lattice::ipv4_src_dst_bytes();
        let mut mon = ShardedMonitor::<u64, SpaceSaving<u64>>::spawn_with(
            lat,
            config(),
            2,
            256,
            SpawnOptions {
                handoff: Handoff::Channel,
                ..SpawnOptions::default()
            },
        )
        .expect("spawn workers");
        let n = 50_000u64;
        for &k in &attack_stream(n, 17) {
            mon.update(k);
        }
        let merged = mon.harvest().expect("healthy pipeline");
        assert_eq!(merged.packets(), n);
    }

    #[test]
    fn live_query_answers_without_harvesting() {
        let lat = hhh_hierarchy::Lattice::ipv4_src_dst_bytes();
        // Auto-publication off: the explicit marker below is the only
        // publisher, so "epoch advanced" means "marker processed" and the
        // coverage assertion is deterministic.
        let mut mon = ShardedMonitor::<u64, SpaceSaving<u64>>::spawn_with(
            lat.clone(),
            config(),
            2,
            256,
            SpawnOptions {
                publish_every: u64::MAX,
                ..SpawnOptions::default()
            },
        )
        .expect("spawn workers");
        let n = 200_000u64;
        for &k in &attack_stream(n, 23) {
            mon.update(k);
        }
        let before = mon.snapshot_epochs();
        mon.publish_now();
        wait_until(|| {
            mon.snapshot_epochs()
                .iter()
                .zip(&before)
                .all(|(now, then)| now > then)
        });
        // The publish markers rode the FIFO hand-off behind every flushed
        // batch, so the snapshot merge covers the entire feed so far.
        assert_eq!(mon.query_coverage(), n);
        let rendered: Vec<String> = mon
            .query(0.1)
            .iter()
            .map(|h| h.prefix.display(&lat))
            .collect();
        assert!(
            rendered
                .iter()
                .any(|s| s.contains("10.20.0.0/16") && s.contains("8.8.8.8/32")),
            "live query must see the planted HHH: {rendered:?}"
        );
        // Workers are still alive and harvestable after any number of
        // live queries, with the same totals.
        let merged = mon.harvest().expect("healthy pipeline");
        assert_eq!(merged.packets(), n);
    }

    #[test]
    fn auto_publication_reaches_full_coverage() {
        let lat = hhh_hierarchy::Lattice::ipv4_src_dst_bytes();
        let mut mon = ShardedMonitor::<u64, SpaceSaving<u64>>::spawn_with(
            lat,
            config(),
            2,
            128,
            SpawnOptions {
                publish_every: 1,
                ..SpawnOptions::default()
            },
        )
        .expect("spawn workers");
        let n = 20_000u64;
        for &k in &attack_stream(n, 43) {
            mon.update(k);
        }
        // Publishing after every batch, the final flushed batch's
        // snapshot covers the whole feed — no marker needed.
        mon.flush();
        wait_until(|| mon.query_coverage() == n);
        let merged = mon.harvest().expect("healthy pipeline");
        assert_eq!(merged.packets(), n);
    }

    #[test]
    fn query_cache_reuses_merge_until_epochs_move() {
        let lat = hhh_hierarchy::Lattice::ipv4_src_dst_bytes();
        let mut mon = ShardedMonitor::<u64, SpaceSaving<u64>>::spawn_with(
            lat,
            config(),
            2,
            128,
            SpawnOptions {
                publish_every: u64::MAX,
                ..SpawnOptions::default()
            },
        )
        .expect("spawn workers");
        for &k in &attack_stream(50_000, 29) {
            mon.update(k);
        }
        let before = mon.snapshot_epochs();
        mon.publish_now();
        wait_until(|| {
            mon.snapshot_epochs()
                .iter()
                .zip(&before)
                .all(|(now, then)| now > then)
        });
        let c1 = mon.query_coverage();
        let epochs = mon.snapshot_epochs();
        let c2 = mon.query_coverage();
        assert_eq!(c1, c2, "same epochs, same cached merge");
        assert_eq!(
            mon.snapshot_epochs(),
            epochs,
            "querying must not advance epochs"
        );
    }

    #[test]
    fn shard_routing_is_key_stable_and_balanced() {
        // The same key always lands on the same shard, and random traffic
        // spreads evenly (within 10%).
        let shards = 4;
        let mut rng = Lcg(9);
        let mut counts = vec![0u64; shards];
        for _ in 0..100_000 {
            let k = rng.next();
            let s = shard_of(k, shards);
            assert_eq!(s, shard_of(k, shards));
            counts[s] += 1;
        }
        let expect = 100_000 / shards as u64;
        for (s, &c) in counts.iter().enumerate() {
            assert!(
                (c as i64 - expect as i64).unsigned_abs() < expect / 10,
                "shard {s}: {c} vs {expect}"
            );
        }
    }

    #[test]
    fn weighted_feed_conserves_weight_and_finds_volume_hitter() {
        let lat = hhh_hierarchy::Lattice::ipv4_src_dst_bytes();
        let mut mon = ShardedMonitor::<u64, SpaceSaving<u64>>::spawn(lat.clone(), config(), 3, 512)
            .expect("spawn workers");
        let heavy = pack2(
            u32::from_be_bytes([7, 7, 7, 7]),
            u32::from_be_bytes([8, 8, 8, 8]),
        );
        let mut rng = Lcg(13);
        let n = 200_000u64;
        let mut volume = 0u64;
        let packets: Vec<(u64, u64)> = (0..n)
            .map(|i| {
                let p = if i % 10 == 0 {
                    (heavy, 1400)
                } else {
                    (pack2(rng.next() as u32, rng.next() as u32), 64)
                };
                volume += p.1;
                p
            })
            .collect();
        for chunk in packets.chunks(4_096) {
            mon.update_batch_weighted(chunk);
        }
        assert_eq!(mon.packets(), n);
        assert_eq!(mon.weight(), volume);
        let merged = mon.harvest().expect("healthy pipeline");
        assert_eq!(merged.packets(), n);
        assert_eq!(
            merged.total_weight(),
            volume,
            "sharding + merge must conserve total weight"
        );
        let out = merged.output(0.3);
        assert!(
            out.iter()
                .any(|h| h.prefix.display(&lat).contains("7.7.7.7/32")),
            "volume-heavy flow lost by the weighted sharded path"
        );
    }

    #[test]
    fn unit_and_weighted_feeds_interleave() {
        // Mixing both feeds on one monitor keeps the ledgers coherent:
        // packets count both kinds, weight counts units + weights.
        let lat = hhh_hierarchy::Lattice::ipv4_src_dst_bytes();
        let mut mon = ShardedMonitor::<u64, SpaceSaving<u64>>::spawn(lat, config(), 2, 64)
            .expect("spawn workers");
        for i in 0..1_000u64 {
            if i % 2 == 0 {
                mon.update(i);
            } else {
                mon.update_weighted(i, 10);
            }
        }
        assert_eq!(mon.packets(), 1_000);
        assert_eq!(mon.weight(), 500 + 500 * 10);
        let merged = mon.harvest().expect("healthy pipeline");
        assert_eq!(merged.packets(), 1_000);
        assert_eq!(merged.total_weight(), 500 + 500 * 10);
    }

    #[test]
    fn harvest_flushes_partial_buffers() {
        let lat = hhh_hierarchy::Lattice::ipv4_src_dst_bytes();
        let mut mon = ShardedMonitor::<u64, SpaceSaving<u64>>::spawn(lat, config(), 2, 4_096)
            .expect("spawn workers");
        // Fewer packets than one batch: everything rides the final flush.
        for i in 0..100u64 {
            mon.update(i);
        }
        let merged = mon.harvest().expect("healthy pipeline");
        assert_eq!(merged.packets(), 100);
    }

    #[test]
    fn ten_rhhh_sharded_update_rate_is_h_over_v() {
        let lat = hhh_hierarchy::Lattice::ipv4_src_dst_bytes();
        let mut mon =
            ShardedMonitor::<u64, SpaceSaving<u64>>::spawn(lat, RhhhConfig::ten_rhhh(), 4, 1_024)
                .expect("spawn workers");
        let n = 200_000u64;
        for &k in &attack_stream(n, 11) {
            mon.update(k);
        }
        let merged = mon.harvest().expect("healthy pipeline");
        let rate = merged.total_updates() as f64 / n as f64;
        assert!((rate - 0.1).abs() < 0.01, "update rate {rate}");
    }

    #[test]
    #[should_panic(expected = "need at least one shard")]
    fn zero_shards_rejected() {
        let lat = hhh_hierarchy::Lattice::ipv4_src_dst_bytes();
        let _ = ShardedMonitor::<u64, SpaceSaving<u64>>::spawn(lat, RhhhConfig::default(), 0, 64);
    }

    #[test]
    fn windowed_sharded_pane_accounting_is_global() {
        let lat = hhh_hierarchy::Lattice::ipv4_src_dst_bytes();
        let mut mon = WindowedShardedMonitor::<u64, SpaceSaving<u64>>::spawn(
            lat,
            config(),
            3,
            256,
            40_000,
            4,
        )
        .expect("spawn workers");
        assert_eq!(mon.pane_len(), 10_000);
        for &k in &attack_stream(35_000, 21) {
            mon.update(k);
        }
        assert_eq!(mon.packets(), 35_000);
        assert_eq!(mon.panes_completed(), 3);
        let merged = mon.harvest_window().expect("healthy pipeline");
        assert_eq!(
            merged.packets(),
            30_000,
            "windowed harvest covers exactly the completed global panes"
        );
    }

    #[test]
    fn windowed_live_query_matches_window_semantics() {
        let lat = hhh_hierarchy::Lattice::ipv4_src_dst_bytes();
        let mut mon = WindowedShardedMonitor::<u64, SpaceSaving<u64>>::spawn(
            lat,
            config(),
            2,
            256,
            40_000,
            4,
        )
        .expect("spawn workers");
        // 2.5 panes: live coverage reflects completed panes only, stale
        // by at most the active partial pane.
        for &k in &attack_stream(25_000, 27) {
            mon.update(k);
        }
        assert_eq!(mon.panes_completed(), 2);
        mon.publish_now();
        wait_until(|| {
            // Two rotations + the explicit marker: every shard past 2.
            mon.snapshot_epochs().iter().all(|&e| e > 2)
        });
        assert_eq!(
            mon.query_coverage(),
            20_000,
            "live windowed coverage = completed panes"
        );
        let merged = mon.harvest_window().expect("healthy pipeline");
        assert_eq!(merged.packets(), 20_000);
    }

    #[test]
    fn windowed_sharded_finds_recent_attack_and_ages_out_old_one() {
        for shards in [1usize, 4] {
            let lat = hhh_hierarchy::Lattice::ipv4_src_dst_bytes();
            let mut mon = WindowedShardedMonitor::<u64, CompactSpaceSaving<u64>>::spawn(
                lat.clone(),
                config(),
                shards,
                512,
                120_000,
                4,
            )
            .expect("spawn workers");
            // Old traffic: planted attack. Recent window: clean random.
            for &k in &attack_stream(120_000, 31) {
                mon.update(k);
            }
            let mut rng = Lcg(32);
            for _ in 0..150_000 {
                mon.update(pack2(rng.next() as u32, rng.next() as u32));
            }
            let out = mon.finish_and_query(0.1).expect("healthy pipeline");
            assert!(
                !out.iter()
                    .any(|h| h.prefix.display(&lat).contains("10.20.0.0/16")),
                "{shards} shards: attack older than the window must age out"
            );

            // Symmetric check: an attack inside the window is found.
            let mut mon = WindowedShardedMonitor::<u64, SpaceSaving<u64>>::spawn(
                lat.clone(),
                config(),
                shards,
                512,
                120_000,
                4,
            )
            .expect("spawn workers");
            for _ in 0..150_000 {
                mon.update(pack2(rng.next() as u32, rng.next() as u32));
            }
            for &k in &attack_stream(120_000, 33) {
                mon.update(k);
            }
            let out = mon.finish_and_query(0.1).expect("healthy pipeline");
            assert!(
                out.iter()
                    .any(|h| h.prefix.display(&lat).contains("10.20.0.0/16")),
                "{shards} shards: attack inside the window must be reported"
            );
        }
    }

    #[test]
    fn windowed_sharded_before_first_rotation_answers_partially() {
        let lat = hhh_hierarchy::Lattice::ipv4_src_dst_bytes();
        let mut mon = WindowedShardedMonitor::<u64, SpaceSaving<u64>>::spawn(
            lat,
            config(),
            2,
            256,
            1_000_000,
            4,
        )
        .expect("spawn workers");
        for &k in &attack_stream(10_000, 41) {
            mon.update(k);
        }
        assert_eq!(mon.panes_completed(), 0);
        // Live query before any rotation serves the active panes, like
        // the harvest below.
        let before = mon.snapshot_epochs();
        mon.publish_now();
        wait_until(|| {
            mon.snapshot_epochs()
                .iter()
                .zip(&before)
                .all(|(now, then)| now > then)
        });
        assert_eq!(mon.query_coverage(), 10_000);
        let merged = mon.harvest_window().expect("healthy pipeline");
        assert_eq!(
            merged.packets(),
            10_000,
            "pre-rotation harvest merges the active panes"
        );
    }

    #[test]
    fn dead_shard_surfaces_as_merge_error() {
        let lat = hhh_hierarchy::Lattice::ipv4_src_dst_bytes();
        let mut mon = ShardedMonitor::<u64, SpaceSaving<u64>>::spawn(lat, config(), 2, 64)
            .expect("spawn workers");
        for i in 0..1_000u64 {
            mon.update(i);
        }
        mon.inject_shard_failure(1);
        // The feed keeps running after the death: sends to the dead shard
        // are dropped, never panicking (or wedging) the ingress thread.
        for i in 0..5_000u64 {
            mon.update(i.wrapping_mul(0x9E37_79B9));
        }
        match mon.harvest() {
            Err(hhh_core::MergeError::ShardFailed(msg)) => {
                assert!(msg.contains("shard 1"), "error names the shard: {msg}");
                assert!(msg.contains("injected"), "error carries the payload: {msg}");
            }
            Ok(_) => panic!("harvest must not silently merge a partial answer"),
            Err(e) => panic!("wrong error kind: {e}"),
        }
    }
}
