//! A simulated Open-vSwitch-like software dataplane.
//!
//! Section 5 of the RHHH paper integrates the algorithm into the DPDK build
//! of Open vSwitch and measures dataplane throughput (Figures 6–8). The
//! physical testbed (two Xeon servers, 10 GbE NICs, MoonGen) is hardware we
//! substitute per DESIGN.md: this crate reproduces the *architecture* that
//! determines the result — a fast per-packet pipeline whose measurement hook
//! cost is what separates the algorithms:
//!
//! ```text
//!   frame bytes ──► parse (Ethernet/IPv4/UDP views)
//!               ──► measurement hook (DataplaneMonitor)
//!               ──► microflow cache (exact-match, like OVS's EMC)
//!               ──► megaflow table (per-mask hash tables, tuple-space search)
//!               ──► action (output port / drop)
//! ```
//!
//! * [`packet`] — zero-copy packet views in the smoltcp style: checked
//!   constructors over `&[u8]`, accessor methods, and builders for the
//!   64-byte UDP test frames the paper's generator produces.
//! * [`flow_table`] — the two OVS lookup tiers: an exact-match
//!   [`flow_table::MicroflowCache`] backed by a hash map, and a
//!   [`flow_table::MegaflowTable`] that searches one hash table per
//!   distinct wildcard mask (OVS's tuple-space design).
//! * [`datapath`] — the pipeline plus [`datapath::DataplaneMonitor`], the
//!   measurement hook; [`monitor`] adapts any [`hhh_core::HhhAlgorithm`]
//!   into a monitor (inline dataplane integration, Figure 6/7).
//! * [`distributed`] — the paper's second integration: the switch only
//!   *samples* (`d < H`) and forwards sampled headers over a bounded
//!   channel to a measurement thread standing in for the monitoring VM
//!   (Figure 8); [`distributed::MultiVmDistributedRhhh`] fans the samples
//!   out to several VMs by key hash and merges at harvest.
//! * [`sharded`] — RSS-style shard parallelism: packets hash-partition
//!   across worker threads, each running the geometric-skip batch path on
//!   its own RHHH instance; queries merge the per-shard summaries.
//! * [`wire`] — the zero-copy wire ingest plane: resolves raw
//!   [`hhh_traces::FrameBlock`]s into virtual key lanes and feeds
//!   `Rhhh::update_batch_wire` without materializing packet structs,
//!   bit-identical to the struct-fed pipeline.

pub mod datapath;
pub mod distributed;
pub mod flow_table;
pub mod handoff;
pub mod monitor;
pub mod packet;
pub mod sharded;
pub mod wire;

pub use datapath::{Datapath, DatapathStats, DataplaneMonitor};
pub use distributed::{
    spawn_shared, Backpressure, DistributedRhhh, DistributedStats, MultiVmDistributedRhhh,
    SharedCollector, SharedFrontend,
};
pub use flow_table::{Action, FlowKey, MegaflowTable, MicroflowCache};
pub use handoff::{Handoff, HandoffStats, SpawnError, SpawnOptions};
pub use monitor::{
    AlgoMonitor, BatchingMonitor, CompactBatchingMonitor, DynBatchingMonitor, NoOpMonitor,
};
pub use packet::{build_udp_frame, EthernetFrame, Ipv4View, ParseError, UdpView};
pub use sharded::{shard_of, ShardSnapshot, ShardedMonitor, WindowedShardedMonitor};
pub use wire::WireBlockView;
