//! The datapath pipeline: parse → measure → classify → act.
//!
//! Mirrors the OVS-DPDK userspace datapath shape: the measurement hook sits
//! inside the per-packet processing stage exactly as in the paper's
//! dataplane integration ("OVS updates each packet as part of its
//! processing stage"), so the throughput difference between monitors is the
//! cost difference between the HHH algorithms — the quantity Figures 6 and
//! 7 report.

use hhh_hierarchy::pack2;
use hhh_traces::Packet;

use crate::flow_table::{Action, FlowKey, FlowMask, MegaflowTable, MicroflowCache};
use crate::packet::{EthernetFrame, Ipv4View, ParseError, UdpView, ETHERTYPE_IPV4};

/// The measurement hook interface. `on_packet` receives the packed 2D
/// source × destination key (the hierarchy the paper's OVS evaluation
/// measures).
pub trait DataplaneMonitor: Send {
    /// Observes a packet in the datapath.
    fn on_packet(&mut self, key2: u64);

    /// Monitor name for reports.
    fn label(&self) -> String;
}

/// Running counters for the pipeline.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DatapathStats {
    /// Frames handed to `process`.
    pub received: u64,
    /// Frames forwarded by some rule.
    pub forwarded: u64,
    /// Frames dropped by rule or by table miss.
    pub dropped: u64,
    /// Frames rejected by the parser.
    pub malformed: u64,
}

/// The software switch: parser, measurement hook, microflow cache, megaflow
/// classifier.
pub struct Datapath<M: DataplaneMonitor> {
    microflow: MicroflowCache,
    megaflow: MegaflowTable,
    monitor: M,
    stats: DatapathStats,
}

impl<M: DataplaneMonitor> Datapath<M> {
    /// Builds a datapath with an OVS-sized microflow cache (8192 slots) and
    /// a default route forwarding everything to port 1 — the paper's
    /// forwarding setup ("OVS receives packets on one network interface and
    /// then forwards them to the second one").
    pub fn new(monitor: M) -> Self {
        let mut megaflow = MegaflowTable::new();
        megaflow.insert(
            0,
            FlowMask::any(),
            FlowKey {
                src: 0,
                dst: 0,
                src_port: 0,
                dst_port: 0,
                proto: 0,
            },
            Action::Output(1),
        );
        Self {
            microflow: MicroflowCache::new(8192),
            megaflow,
            monitor,
            stats: DatapathStats::default(),
        }
    }

    /// Adds a classifier rule.
    pub fn add_rule(&mut self, priority: i32, mask: FlowMask, key: FlowKey, action: Action) {
        self.megaflow.insert(priority, mask, key, action);
    }

    /// Full path: parse raw frame bytes, then process.
    ///
    /// # Errors
    ///
    /// Returns the parse error for malformed frames (also counted in
    /// [`DatapathStats::malformed`]).
    pub fn process_frame(&mut self, frame: &[u8]) -> Result<Action, ParseError> {
        match Self::parse(frame) {
            Ok(key) => Ok(self.process_key(key)),
            Err(e) => {
                self.stats.received += 1;
                self.stats.malformed += 1;
                Err(e)
            }
        }
    }

    /// Block entry point: runs every frame of a raw [`FrameBlock`]
    /// through the full parse → measure → classify pipeline (the shape a
    /// block-ring NIC driver delivers). Malformed frames are counted, not
    /// fatal. Returns the number of frames that parsed.
    pub fn process_block(&mut self, block: &hhh_traces::FrameBlock) -> u64 {
        let mut parsed = 0u64;
        for (frame, _orig) in block.frames() {
            if self.process_frame(frame).is_ok() {
                parsed += 1;
            }
        }
        parsed
    }

    /// Extracts the five-tuple from a frame.
    fn parse(frame: &[u8]) -> Result<FlowKey, ParseError> {
        let eth = EthernetFrame::new_checked(frame)?;
        if eth.ethertype() != ETHERTYPE_IPV4 {
            return Err(ParseError::NotIpv4);
        }
        let ip = Ipv4View::new_checked(eth.payload())?;
        let (src_port, dst_port) = match ip.protocol() {
            6 | 17 => {
                let udp = UdpView::new_checked(ip.payload())?;
                (udp.src_port(), udp.dst_port())
            }
            _ => (0, 0),
        };
        Ok(FlowKey {
            src: ip.src(),
            dst: ip.dst(),
            src_port,
            dst_port,
            proto: ip.protocol(),
        })
    }

    /// Fast path used by the throughput harness: the five-tuple is already
    /// extracted (the paper's OVS datapath similarly parses once into a
    /// miniflow and classifies on that).
    #[inline]
    pub fn process_key(&mut self, key: FlowKey) -> Action {
        self.stats.received += 1;
        // Measurement hook — inline in the datapath, as in Section 5.2's
        // dataplane integration.
        self.monitor.on_packet(pack2(key.src, key.dst));

        let action = if let Some(action) = self.microflow.lookup(&key) {
            action
        } else {
            match self.megaflow.lookup(&key) {
                Some(action) => {
                    self.microflow.install(key, action);
                    action
                }
                None => Action::Drop,
            }
        };
        match action {
            Action::Output(_) => self.stats.forwarded += 1,
            Action::Drop => self.stats.dropped += 1,
        }
        action
    }

    /// Convenience: process a synthetic trace packet.
    #[inline]
    pub fn process_packet(&mut self, p: &Packet) -> Action {
        self.process_key(FlowKey {
            src: p.src,
            dst: p.dst,
            src_port: p.src_port,
            dst_port: p.dst_port,
            proto: p.proto,
        })
    }

    /// Pipeline statistics so far.
    #[must_use]
    pub fn stats(&self) -> DatapathStats {
        self.stats
    }

    /// Microflow cache hit count (pipeline health diagnostic).
    #[must_use]
    pub fn microflow_hits(&self) -> u64 {
        self.microflow.hits()
    }

    /// Access to the monitor (e.g. to run `Output(θ)` after the run).
    #[must_use]
    pub fn monitor(&self) -> &M {
        &self.monitor
    }

    /// Mutable access to the monitor.
    pub fn monitor_mut(&mut self) -> &mut M {
        &mut self.monitor
    }

    /// Tears the pipeline down, returning the monitor.
    pub fn into_monitor(self) -> M {
        self.monitor
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monitor::NoOpMonitor;
    use crate::packet::build_udp_frame;

    fn ipb(a: u8, b: u8, c: u8, d: u8) -> u32 {
        u32::from_be_bytes([a, b, c, d])
    }

    #[test]
    fn default_route_forwards() {
        let mut dp = Datapath::new(NoOpMonitor);
        let frame = build_udp_frame(ipb(1, 2, 3, 4), ipb(5, 6, 7, 8), 10, 20, 22);
        assert_eq!(dp.process_frame(&frame), Ok(Action::Output(1)));
        let stats = dp.stats();
        assert_eq!(stats.received, 1);
        assert_eq!(stats.forwarded, 1);
        assert_eq!(stats.dropped, 0);
    }

    #[test]
    fn drop_rule_takes_priority() {
        let mut dp = Datapath::new(NoOpMonitor);
        let key = FlowKey {
            src: ipb(10, 0, 0, 1),
            dst: ipb(8, 8, 8, 8),
            src_port: 0,
            dst_port: 0,
            proto: 0,
        };
        dp.add_rule(100, FlowMask::prefixes(8, 32), key, Action::Drop);
        let frame = build_udp_frame(ipb(10, 9, 9, 9), ipb(8, 8, 8, 8), 1, 2, 22);
        assert_eq!(dp.process_frame(&frame), Ok(Action::Drop));
        assert_eq!(dp.stats().dropped, 1);
    }

    #[test]
    fn microflow_caches_after_first_lookup() {
        let mut dp = Datapath::new(NoOpMonitor);
        let frame = build_udp_frame(ipb(1, 1, 1, 1), ipb(2, 2, 2, 2), 5, 6, 22);
        for _ in 0..10 {
            dp.process_frame(&frame).expect("valid frame");
        }
        // First packet misses, the rest hit the exact-match cache.
        assert_eq!(dp.microflow_hits(), 9);
    }

    #[test]
    fn malformed_frames_counted_not_fatal() {
        let mut dp = Datapath::new(NoOpMonitor);
        assert!(dp.process_frame(&[0u8; 3]).is_err());
        let mut junk = build_udp_frame(1, 2, 3, 4, 22);
        junk[12] = 0x86; // ethertype -> not IPv4
        junk[13] = 0xDD;
        assert_eq!(dp.process_frame(&junk), Err(ParseError::NotIpv4));
        assert_eq!(dp.stats().malformed, 2);
        assert_eq!(dp.stats().received, 2);
    }

    #[test]
    fn monitor_sees_every_valid_packet() {
        #[derive(Default)]
        struct Counting(u64);
        impl DataplaneMonitor for Counting {
            fn on_packet(&mut self, _key2: u64) {
                self.0 += 1;
            }
            fn label(&self) -> String {
                "Counting".into()
            }
        }
        let mut dp = Datapath::new(Counting::default());
        let frame = build_udp_frame(ipb(9, 9, 9, 9), ipb(4, 4, 4, 4), 1, 2, 22);
        for _ in 0..25 {
            dp.process_frame(&frame).expect("valid");
        }
        assert!(dp.process_frame(&[0u8; 2]).is_err());
        assert_eq!(dp.monitor().0, 25, "malformed frames bypass the monitor");
    }

    #[test]
    fn process_block_runs_the_pipeline_per_frame() {
        use hhh_traces::{FrameBlock, Packet};
        let mut dp = Datapath::new(NoOpMonitor);
        let mut block = FrameBlock::new();
        for i in 0..50u32 {
            block.push_packet(&Packet {
                src: 0x0A00_0000 | i,
                dst: 0x0808_0808,
                src_port: 1000,
                dst_port: 53,
                proto: 17,
                wire_len: 64,
            });
        }
        let mut arp = vec![0u8; 42];
        arp[12] = 0x08;
        arp[13] = 0x06;
        block.push_frame(&arp, 42);
        assert_eq!(dp.process_block(&block), 50);
        let stats = dp.stats();
        assert_eq!(stats.received, 51);
        assert_eq!(stats.forwarded, 50);
        assert_eq!(stats.malformed, 1);
    }

    #[test]
    fn icmp_frames_have_zero_ports() {
        let mut frame = build_udp_frame(ipb(3, 3, 3, 3), ipb(4, 4, 4, 4), 7, 8, 22);
        frame[14 + 9] = 1; // protocol = ICMP
        let key = Datapath::<NoOpMonitor>::parse(&frame).expect("parse");
        assert_eq!(key.proto, 1);
        assert_eq!(key.src_port, 0);
        assert_eq!(key.dst_port, 0);
    }
}
