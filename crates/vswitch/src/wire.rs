//! Zero-copy wire ingest: key lanes straight out of raw frame blocks,
//! feeding the RHHH block pipeline without materializing `Packet` structs.
//!
//! The paper's deployment point is a byte stream — its OVS evaluation
//! feeds 64-byte frames and reports Mpps *from the wire*. This module is
//! the bridge from raw bytes to the sketch: a [`WireBlockView`] resolves
//! a [`FrameBlock`] into a virtual `(src, dst, wire_len)` lane plane, and
//! [`WireBlockView::ingest`] runs `Rhhh::update_batch_wire` over it so
//! key bytes are loaded lazily, per *selected* packet, directly from the
//! frame buffer.
//!
//! Two planes, chosen per block:
//!
//! * **Trusted** — generator-emitted blocks are clean by construction
//!   ([`FrameBlock::is_clean`]): every frame is valid IPv4 at a fixed
//!   64-byte stride. No per-frame validation pass runs at all; the key of
//!   packet `i` is one big-endian load at `i·64 + 26`. Combined with the
//!   RHHH sampling (`V = 10H` selects ~a tenth of packets), most frame
//!   bytes are never touched — ingest inherits the paper's O(1) update
//!   discount at the memory-bandwidth level too.
//! * **Validated** — externally sourced blocks (pcap) get a prepass that
//!   classifies every frame with the shared predicate
//!   ([`hhh_traces::classify_frame`], property-pinned to the accept set
//!   of [`hhh_traces::parse_ipv4_frame`]) and compacts accepted frames'
//!   field offsets into dense lanes, with skipped frames split into
//!   non-IPv4 vs truncated counts.
//!
//! **Bit-identity.** Both planes present the same key sequence that
//! materializing `Packet` structs from the same frames would produce
//! (`Packet::key2` of frame `i`, in frame order, skips removed), and
//! `update_batch_wire`'s RNG schedule depends only on the packet count —
//! so wire-fed and struct-fed instances are bit-identical state for
//! state. The differential property suite in `tests/wire_ingest.rs` pins
//! this across layouts, V, weighting and chunkings.

use hhh_core::Rhhh;
use hhh_counters::FrequencyEstimator;
use hhh_traces::frame::SRC_OFFSET;
use hhh_traces::{classify_frame, FrameBlock, FrameClass, GEN_FRAME_LEN};

/// Loads the packed 2D source × destination key with one big-endian read
/// at the frame's source-address offset: the wire layout `src‖dst` (both
/// big-endian, adjacent) *is* `pack2(src, dst)` read as a `u64`.
#[inline]
fn key2_load(data: &[u8], src_off: usize) -> u64 {
    u64::from_be_bytes(
        data[src_off..src_off + 8]
            .try_into()
            .expect("validated frame bounds"),
    )
}

/// How the view locates accepted frames' key fields.
#[derive(Debug)]
enum Plan<'a> {
    /// Trusted clean block: frame `i` starts at `i · GEN_FRAME_LEN`; the
    /// wire-length lane is borrowed from the block.
    Stride { frames: usize, wire: &'a [u32] },
    /// Validated block: dense source-field byte offsets and wire lengths
    /// of the accepted frames, in frame order.
    Validated { src_offs: Vec<u32>, wire: Vec<u32> },
}

/// A [`FrameBlock`] resolved into key lanes for zero-copy ingest.
#[derive(Debug)]
pub struct WireBlockView<'a> {
    data: &'a [u8],
    plan: Plan<'a>,
    skipped_non_ipv4: u64,
    skipped_truncated: u64,
}

impl<'a> WireBlockView<'a> {
    /// Resolves a block: the trusted plane for clean fixed-stride blocks,
    /// the validated plane for everything else.
    #[must_use]
    pub fn new(block: &'a FrameBlock) -> Self {
        if block.is_clean() && block.fixed_stride() == Some(GEN_FRAME_LEN) {
            debug_assert!(
                block
                    .frames()
                    .all(|(f, _)| classify_frame(f) == FrameClass::Ipv4),
                "clean block carries an unparseable frame"
            );
            Self {
                data: block.data(),
                plan: Plan::Stride {
                    frames: block.len(),
                    wire: block.wire_lens(),
                },
                skipped_non_ipv4: 0,
                skipped_truncated: 0,
            }
        } else {
            Self::validated(block)
        }
    }

    /// Forces the validated plane: classifies every frame and compacts
    /// the accepted ones into dense lanes. Used for untrusted blocks and
    /// by tests/benches that want the full-parse cost measured.
    #[must_use]
    pub fn validated(block: &'a FrameBlock) -> Self {
        let mut src_offs = Vec::with_capacity(block.len());
        let mut wire = Vec::with_capacity(block.len());
        let mut skipped_non_ipv4 = 0u64;
        let mut skipped_truncated = 0u64;
        for (i, (frame, orig)) in block.frames().enumerate() {
            match classify_frame(frame) {
                FrameClass::Ipv4 => {
                    src_offs.push(block.offsets()[i] + SRC_OFFSET as u32);
                    // Same cap as `parse_ipv4_frame`'s `wire_len` — the
                    // weighted planes must agree on jumbo `orig_len` too.
                    wire.push(orig.min(u32::from(u16::MAX)));
                }
                FrameClass::NonIpv4 => skipped_non_ipv4 += 1,
                FrameClass::Truncated => skipped_truncated += 1,
            }
        }
        Self {
            data: block.data(),
            plan: Plan::Validated { src_offs, wire },
            skipped_non_ipv4,
            skipped_truncated,
        }
    }

    /// Number of accepted (ingestible) frames.
    #[must_use]
    pub fn len(&self) -> usize {
        match &self.plan {
            Plan::Stride { frames, .. } => *frames,
            Plan::Validated { src_offs, .. } => src_offs.len(),
        }
    }

    /// True when no frame was accepted.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Frames rejected as another protocol family (always 0 on the
    /// trusted plane).
    #[must_use]
    pub fn skipped_non_ipv4(&self) -> u64 {
        self.skipped_non_ipv4
    }

    /// Frames rejected as truncated captures (always 0 on the trusted
    /// plane).
    #[must_use]
    pub fn skipped_truncated(&self) -> u64 {
        self.skipped_truncated
    }

    /// Dense per-accepted-frame original wire lengths.
    #[must_use]
    pub fn wire_lens(&self) -> &[u32] {
        match &self.plan {
            Plan::Stride { frames, wire } => &wire[..*frames],
            Plan::Validated { wire, .. } => wire,
        }
    }

    /// The packed 2D key of accepted frame `i` — equal to
    /// `Packet::key2()` of the materialized struct.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn key2_at(&self, i: usize) -> u64 {
        match &self.plan {
            Plan::Stride { frames, .. } => {
                assert!(i < *frames, "frame index out of range");
                key2_load(self.data, i * GEN_FRAME_LEN + SRC_OFFSET)
            }
            Plan::Validated { src_offs, .. } => key2_load(self.data, src_offs[i] as usize),
        }
    }

    /// The 1D source key of accepted frame `i` (`Packet::key1()`).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn key1_at(&self, i: usize) -> u32 {
        (self.key2_at(i) >> 32) as u32
    }

    /// Appends all 2D keys to `out` — the materialize step for consumers
    /// that need a dense slice (sharded feeds, scalar paths).
    pub fn keys2_into(&self, out: &mut Vec<u64>) {
        out.reserve(self.len());
        match &self.plan {
            Plan::Stride { frames, .. } => {
                for i in 0..*frames {
                    out.push(key2_load(self.data, i * GEN_FRAME_LEN + SRC_OFFSET));
                }
            }
            Plan::Validated { src_offs, .. } => {
                for &off in src_offs {
                    out.push(key2_load(self.data, off as usize));
                }
            }
        }
    }

    /// Appends all 1D source keys to `out`.
    pub fn keys1_into(&self, out: &mut Vec<u32>) {
        out.reserve(self.len());
        for i in 0..self.len() {
            out.push(self.key1_at(i));
        }
    }

    /// Unit-weight zero-copy ingest: runs the block pipeline over the
    /// virtual key lane. Each plan arm hands `update_batch_wire` its own
    /// monomorphic closure, so the per-selected-packet load compiles to a
    /// single bounds-checked big-endian read.
    pub fn ingest<E: FrequencyEstimator<u64>>(&self, algo: &mut Rhhh<u64, E>) {
        let data = self.data;
        match &self.plan {
            Plan::Stride { frames, .. } => {
                algo.update_batch_wire(*frames, |i| {
                    key2_load(data, i * GEN_FRAME_LEN + SRC_OFFSET)
                });
            }
            Plan::Validated { src_offs, .. } => {
                algo.update_batch_wire(src_offs.len(), |i| key2_load(data, src_offs[i] as usize));
            }
        }
    }

    /// Volume-weighted zero-copy ingest: like [`Self::ingest`] but every
    /// packet carries its on-wire byte length from the dense side lane.
    pub fn ingest_weighted<E: FrequencyEstimator<u64>>(&self, algo: &mut Rhhh<u64, E>) {
        let data = self.data;
        match &self.plan {
            Plan::Stride { frames, wire } => {
                algo.update_batch_wire_weighted(&wire[..*frames], |i| {
                    key2_load(data, i * GEN_FRAME_LEN + SRC_OFFSET)
                });
            }
            Plan::Validated { src_offs, wire } => {
                algo.update_batch_wire_weighted(wire, |i| key2_load(data, src_offs[i] as usize));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hhh_core::{HhhAlgorithm, RhhhConfig};
    use hhh_hierarchy::Lattice;
    use hhh_traces::{parse_ipv4_frame, Packet, ScenarioConfig, ScenarioGenerator, ScenarioKind};

    fn rhhh(v_scale: u64) -> Rhhh<u64> {
        Rhhh::new(
            Lattice::ipv4_src_dst_bytes(),
            RhhhConfig {
                epsilon_a: 0.001,
                epsilon_s: 0.001,
                delta_s: 0.001,
                v_scale,
                updates_per_packet: 1,
                seed: 0x31BE,
            },
        )
    }

    #[test]
    fn trusted_lanes_equal_struct_keys_for_every_scenario() {
        for kind in ScenarioKind::all() {
            let cfg = ScenarioConfig::new(kind);
            let structs = ScenarioGenerator::new(&cfg).take_packets(2_000);
            let mut gen = ScenarioGenerator::new(&cfg);
            let mut block = FrameBlock::new();
            gen.next_block(&mut block, 2_000);
            let view = WireBlockView::new(&block);
            assert_eq!(view.len(), structs.len());
            assert_eq!(view.skipped_non_ipv4() + view.skipped_truncated(), 0);
            for (i, p) in structs.iter().enumerate() {
                assert_eq!(view.key2_at(i), p.key2(), "{} frame {i}", kind.name());
                assert_eq!(view.key1_at(i), p.key1());
                assert_eq!(
                    view.wire_lens()[i],
                    u32::from(p.wire_len).max(GEN_FRAME_LEN as u32)
                );
            }
        }
    }

    #[test]
    fn validated_plane_matches_trusted_plane_on_clean_blocks() {
        let cfg = ScenarioConfig::new(ScenarioKind::MultiTenant);
        let mut gen = ScenarioGenerator::new(&cfg);
        let mut block = FrameBlock::new();
        gen.next_block(&mut block, 1_500);
        let trusted = WireBlockView::new(&block);
        let validated = WireBlockView::validated(&block);
        assert_eq!(trusted.len(), validated.len());
        let mut a = Vec::new();
        let mut b = Vec::new();
        trusted.keys2_into(&mut a);
        validated.keys2_into(&mut b);
        assert_eq!(a, b);
        assert_eq!(trusted.wire_lens(), validated.wire_lens());
    }

    #[test]
    fn mixed_blocks_compact_and_account_skips() {
        let mut block = FrameBlock::new();
        let keeper = Packet {
            src: 0x0A01_0203,
            dst: 0x0808_0808,
            src_port: 9,
            dst_port: 53,
            proto: 17,
            wire_len: 576,
        };
        block.push_packet(&keeper);
        // ARP: non-IPv4.
        let mut arp = vec![0u8; 42];
        arp[12] = 0x08;
        arp[13] = 0x06;
        block.push_frame(&arp, 42);
        // IPv4 cut mid-header: truncated.
        let mut cut = vec![0u8; 20];
        cut[12] = 0x08;
        block.push_frame(&cut, 60);
        // IHL 7 frame with options present: accepted, src/dst at the
        // fixed offsets.
        let mut opts = vec![0u8; 14 + 28];
        opts[12] = 0x08;
        opts[14] = 0x47;
        opts[26..30].copy_from_slice(&0xC0A8_0101u32.to_be_bytes());
        opts[30..34].copy_from_slice(&0x0101_0101u32.to_be_bytes());
        block.push_frame(&opts, 42);

        let view = WireBlockView::new(&block);
        assert_eq!(view.len(), 2);
        assert_eq!(view.skipped_non_ipv4(), 1);
        assert_eq!(view.skipped_truncated(), 1);
        assert_eq!(view.key2_at(0), keeper.key2());
        assert_eq!(view.key1_at(1), 0xC0A8_0101);
        assert_eq!(view.wire_lens(), &[576, 42]);
        // The lane plane agrees with struct materialization frame by frame.
        let materialized: Vec<Packet> = block
            .frames()
            .filter_map(|(f, o)| parse_ipv4_frame(f, o))
            .collect();
        assert_eq!(materialized.len(), 2);
        for (i, p) in materialized.iter().enumerate() {
            assert_eq!(view.key2_at(i), p.key2());
        }
    }

    #[test]
    fn ingest_matches_struct_fed_update_batch() {
        let cfg = ScenarioConfig::new(ScenarioKind::DdosRamp).with_horizon(20_000);
        let structs = ScenarioGenerator::new(&cfg).take_packets(20_000);
        let keys: Vec<u64> = structs.iter().map(Packet::key2).collect();
        let mut gen = ScenarioGenerator::new(&cfg);

        let mut wire_fed = rhhh(10);
        let mut struct_fed = rhhh(10);
        let mut block = FrameBlock::new();
        for chunk in keys.chunks(4_096) {
            gen.next_block(&mut block, chunk.len());
            WireBlockView::new(&block).ingest(&mut wire_fed);
            struct_fed.update_batch(chunk);
        }
        assert_eq!(wire_fed.packets(), struct_fed.packets());
        assert_eq!(wire_fed.query(0.05), struct_fed.query(0.05));
    }

    #[test]
    fn weighted_ingest_matches_struct_fed_weighted() {
        let cfg = ScenarioConfig::new(ScenarioKind::FlashCrowd).with_horizon(12_000);
        let structs = ScenarioGenerator::new(&cfg).take_packets(12_000);
        let pairs: Vec<(u64, u64)> = structs
            .iter()
            .map(|p| (p.key2(), u64::from(p.wire_len).max(64)))
            .collect();
        let mut gen = ScenarioGenerator::new(&cfg);

        let mut wire_fed = rhhh(1);
        let mut struct_fed = rhhh(1);
        let mut block = FrameBlock::new();
        for chunk in pairs.chunks(5_000) {
            gen.next_block(&mut block, chunk.len());
            WireBlockView::new(&block).ingest_weighted(&mut wire_fed);
            struct_fed.update_batch_weighted(chunk);
        }
        assert_eq!(wire_fed.total_weight(), struct_fed.total_weight());
        assert_eq!(wire_fed.query(0.05), struct_fed.query(0.05));
    }
}
