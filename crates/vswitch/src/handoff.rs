//! Batch hand-off plumbing for the sharded monitors: SPSC ring buffers
//! with bounded spin-then-park backpressure, the legacy bounded-channel
//! path behind the same interface, and named worker-thread spawning.
//!
//! The unit of hand-off is a whole batch (a `Vec` of a few thousand keys),
//! so the per-packet ingest path never touches this module — it pushes
//! into a plain buffer and crosses threads once per batch. What this
//! module optimizes is that once-per-batch crossing: the default
//! [`Handoff::Ring`] mode hands batches over a fixed-capacity lock-free
//! ring ([`crossbeam::queue::ArrayQueue`]) where the uncontended cost is
//! two atomic read-modify-writes, while [`Handoff::Channel`] keeps the
//! previous `sync_channel` hop (a mutex + condvar handshake with a
//! futex syscall under contention) as the differential baseline the
//! `sharded_throughput` bench races ring mode against.
//!
//! Backpressure is spin-then-park on both sides. A producer hitting a
//! full ring yields the CPU a bounded number of times (on the shared-core
//! CI box the consumer usually drains within a few yields), then parks in
//! bounded [`PARK_WAIT`] naps so a stalled worker costs sleep, not spin.
//! A worker finding the ring empty does the same with a parked-flag
//! handshake so the producer can wake it the moment a batch lands. Every
//! park and every full-ring encounter is counted in [`HandoffStats`] —
//! the occupancy diagnostics the bench prints per shard.
//!
//! Liveness is explicit: the consumer half holds an alive flag that drops
//! to `false` when the worker exits — including by panic, since the flag
//! clears in the receiver's `Drop` during unwind. A producer that finds
//! the flag down stops retrying immediately and reports the send as
//! dropped, so a dead worker can never wedge the ingress thread against a
//! full ring (`tests/failure_injection.rs` pins this).

use std::fmt;
use std::io;
use std::str::FromStr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::{JoinHandle, Thread};
use std::time::Duration;

use crossbeam::channel::{bounded, Receiver, Sender};
use crossbeam::queue::ArrayQueue;

/// Bounded yields before a full/empty encounter escalates to parking.
const SPIN_YIELDS: u32 = 64;

/// One bounded nap while parked; re-checks liveness/closure after each.
const PARK_WAIT: Duration = Duration::from_micros(100);

/// Cap on the consumer's exponential park backoff while the ring stays
/// empty. An idle worker settles into ~5 ms naps (≈1% of a core) instead
/// of hot-spinning; the producer's `unpark` ends any nap early.
const PARK_WAIT_MAX: Duration = Duration::from_millis(5);

/// Which hand-off carries batches from the ingress thread to the shard
/// workers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Handoff {
    /// Lock-free SPSC ring ([`crossbeam::queue::ArrayQueue`]) with
    /// spin-then-park backpressure — the default.
    #[default]
    Ring,
    /// The pre-ring bounded channel (`crossbeam::channel::bounded` over
    /// `sync_channel`), kept as the differential baseline.
    Channel,
}

impl fmt::Display for Handoff {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Handoff::Ring => "ring",
            Handoff::Channel => "channel",
        })
    }
}

impl FromStr for Handoff {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "ring" => Ok(Handoff::Ring),
            "channel" => Ok(Handoff::Channel),
            other => Err(format!("unknown hand-off `{other}` (ring|channel)")),
        }
    }
}

/// Spawn-time knobs for the sharded monitors, beyond the required
/// lattice/config/shards/batch arguments.
#[derive(Debug, Clone, Copy)]
pub struct SpawnOptions {
    /// Batch hand-off mechanism; defaults to [`Handoff::Ring`].
    pub handoff: Handoff,
    /// Unwindowed workers publish a fresh snapshot every this many
    /// batches (windowed workers publish at every pane rotation instead).
    /// Lower is fresher but clones the per-shard summary more often.
    pub publish_every: u64,
    /// Request pinning worker `i` to core `i`. Recorded for API parity
    /// with deployments that pin RSS queues to cores, but currently a
    /// no-op: thread affinity needs OS bindings (`libc`/`unsafe`) that
    /// this offline, `#![deny(unsafe_code)]` workspace does not carry.
    pub pin_cores: bool,
}

impl Default for SpawnOptions {
    fn default() -> Self {
        Self {
            handoff: Handoff::Ring,
            publish_every: 8,
            pin_cores: false,
        }
    }
}

/// A worker thread failed to spawn. Carries the thread's name and the OS
/// error instead of panicking the ingress path.
#[derive(Debug)]
pub struct SpawnError {
    /// Name of the thread that failed to start (e.g. `shard-3`).
    pub thread: String,
    /// The underlying OS error.
    pub source: io::Error,
}

impl fmt::Display for SpawnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "failed to spawn worker thread `{}`: {}",
            self.thread, self.source
        )
    }
}

impl std::error::Error for SpawnError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.source)
    }
}

/// Spawns a named worker thread, surfacing the OS error instead of
/// panicking (satellite of ISSUE 8; `std::thread::spawn` would abort the
/// process on failure).
pub(crate) fn spawn_named<F, T>(name: String, f: F) -> Result<JoinHandle<T>, SpawnError>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    std::thread::Builder::new()
        .name(name.clone())
        .spawn(f)
        .map_err(|source| SpawnError {
            thread: name,
            source,
        })
}

/// Per-shard hand-off counters, accumulated on the ingress thread (sends)
/// and observed from the producer's view of the ring. The occupancy
/// figures are ring-mode only — a `sync_channel` exposes no length.
#[derive(Debug, Clone, Copy, Default)]
pub struct HandoffStats {
    /// Batches handed to this shard (including dropped ones).
    pub sends: u64,
    /// Sum over sends of the ring occupancy observed just before the
    /// push; `occupancy_sum / sends` is the mean queue depth the producer
    /// sees.
    pub occupancy_sum: u64,
    /// Peak ring occupancy observed before a push.
    pub occupancy_max: u64,
    /// Sends that found the ring full at least once (backpressure
    /// events, not retry iterations).
    pub full_events: u64,
    /// Bounded parks the producer took while waiting out a full ring.
    pub park_events: u64,
    /// Sends abandoned because the worker was dead.
    pub dropped: u64,
}

impl HandoffStats {
    /// Mean ring occupancy observed at send time (0 when nothing was
    /// sent or in channel mode).
    #[must_use]
    pub fn mean_occupancy(&self) -> f64 {
        if self.sends == 0 {
            0.0
        } else {
            self.occupancy_sum as f64 / self.sends as f64
        }
    }
}

/// Shared state of one shard's ring: the queue plus the liveness and
/// wake-up handshake flags.
#[derive(Debug)]
pub(crate) struct RingCore<T> {
    queue: ArrayQueue<T>,
    /// Producer raised: no further batches will arrive; drain and exit.
    closed: AtomicBool,
    /// Consumer holds this up; cleared in [`RingRx`]'s `Drop` (which also
    /// runs during panic unwind), so the producer never retries against a
    /// dead worker.
    alive: AtomicBool,
    /// Consumer raises before parking so the producer knows an `unpark`
    /// is needed; bounded parks make a lost race cost one [`PARK_WAIT`].
    parked: AtomicBool,
}

impl<T> RingCore<T> {
    pub(crate) fn new(capacity: usize) -> Self {
        Self {
            queue: ArrayQueue::new(capacity),
            closed: AtomicBool::new(false),
            alive: AtomicBool::new(true),
            parked: AtomicBool::new(false),
        }
    }
}

/// Consumer half of a shard ring; owned by the worker thread.
#[derive(Debug)]
pub(crate) struct RingRx<T> {
    core: Arc<RingCore<T>>,
}

impl<T> RingRx<T> {
    pub(crate) fn new(core: Arc<RingCore<T>>) -> Self {
        Self { core }
    }

    /// Pops the next batch, spin-then-parking while the ring is empty;
    /// `None` once the producer closed the ring and it drained.
    ///
    /// Parks back off exponentially (100µs … [`PARK_WAIT_MAX`]) while the
    /// ring stays empty, so an idle worker costs ~1% of a core instead of
    /// spinning — and the producer's `unpark` on push means a long park
    /// never delays a batch by more than the wake-up itself.
    fn recv(&self) -> Option<T> {
        let mut idle_parks: u32 = 0;
        loop {
            if let Some(msg) = self.core.queue.pop() {
                return Some(msg);
            }
            if self.core.closed.load(Ordering::Acquire) {
                // Close raced with the empty check; one more drain pass.
                return self.core.queue.pop();
            }
            for _ in 0..SPIN_YIELDS {
                std::thread::yield_now();
                if !self.core.queue.is_empty() {
                    break;
                }
            }
            if self.core.queue.is_empty() && !self.core.closed.load(Ordering::Acquire) {
                self.core.parked.store(true, Ordering::Release);
                // Re-check after raising the flag: a push landing between
                // the check and the park would otherwise sleep out the
                // whole timeout (bounded either way — no lost-wakeup
                // hang, because the producer unparks when it sees the
                // flag).
                if self.core.queue.is_empty() && !self.core.closed.load(Ordering::Acquire) {
                    let nap = PARK_WAIT * 2u32.pow(idle_parks.min(6));
                    std::thread::park_timeout(nap.min(PARK_WAIT_MAX));
                    idle_parks += 1;
                }
                self.core.parked.store(false, Ordering::Release);
            } else {
                idle_parks = 0;
            }
        }
    }
}

impl<T> Drop for RingRx<T> {
    fn drop(&mut self) {
        // Runs on normal exit and on panic unwind: either way the
        // producer must stop waiting for this worker.
        self.core.alive.store(false, Ordering::Release);
    }
}

/// Receiving half handed to a worker thread — ring or channel behind one
/// `recv` loop shape.
#[derive(Debug)]
pub(crate) enum ShardRx<T> {
    Channel(Receiver<T>),
    Ring(RingRx<T>),
}

impl<T> ShardRx<T> {
    /// Blocks for the next batch; `None` when the producer hung up and
    /// everything in flight drained.
    pub(crate) fn recv(&self) -> Option<T> {
        match self {
            ShardRx::Channel(rx) => rx.recv().ok(),
            ShardRx::Ring(rx) => rx.recv(),
        }
    }
}

/// Sending half kept by the ingress thread. Dropping it closes the
/// hand-off (worker drains and exits) in both modes.
#[derive(Debug)]
pub(crate) enum ShardTx<T> {
    Channel(Sender<T>),
    Ring {
        core: Arc<RingCore<T>>,
        /// The worker's thread handle, for unparking it out of an
        /// empty-ring nap.
        worker: Thread,
    },
}

impl<T> ShardTx<T> {
    /// Hands one batch to the worker, blocking (bounded spins, then
    /// bounded parks) while the hand-off is full. Returns `false` — and
    /// counts the batch as dropped — when the worker is dead, so a
    /// failed shard never wedges the ingress thread.
    pub(crate) fn send(&self, msg: T, stats: &mut HandoffStats) -> bool {
        stats.sends += 1;
        match self {
            ShardTx::Channel(tx) => {
                if tx.send(msg).is_ok() {
                    true
                } else {
                    stats.dropped += 1;
                    false
                }
            }
            ShardTx::Ring { core, worker } => {
                let occupancy = core.queue.len() as u64;
                stats.occupancy_sum += occupancy;
                stats.occupancy_max = stats.occupancy_max.max(occupancy);
                let mut msg = msg;
                let mut was_full = false;
                loop {
                    if !core.alive.load(Ordering::Acquire) {
                        stats.dropped += 1;
                        return false;
                    }
                    match core.queue.push(msg) {
                        Ok(()) => {
                            if core.parked.load(Ordering::Acquire) {
                                worker.unpark();
                            }
                            return true;
                        }
                        Err(back) => {
                            msg = back;
                            if !was_full {
                                was_full = true;
                                stats.full_events += 1;
                            }
                        }
                    }
                    // Full: yield a bounded number of times (the worker
                    // usually drains a slot quickly), then nap. Each lap
                    // re-checks liveness, bounding the wait on a worker
                    // that died mid-backlog.
                    let mut drained = false;
                    for _ in 0..SPIN_YIELDS {
                        std::thread::yield_now();
                        if !core.queue.is_full() {
                            drained = true;
                            break;
                        }
                    }
                    if !drained {
                        stats.park_events += 1;
                        std::thread::park_timeout(PARK_WAIT);
                    }
                }
            }
        }
    }
}

impl<T> Drop for ShardTx<T> {
    fn drop(&mut self) {
        if let ShardTx::Ring { core, worker } = self {
            core.closed.store(true, Ordering::Release);
            // The worker may be napping on an empty ring; wake it so it
            // observes the close promptly.
            worker.unpark();
        }
        // Channel mode: dropping the inner Sender closes the channel.
    }
}

/// Builds one shard's hand-off pair in the requested mode. The ring
/// consumer must be moved into the worker before the producer half can be
/// finalized (it needs the worker's [`Thread`] for unparking), so this
/// returns the pieces rather than a finished `ShardTx`.
pub(crate) fn conduit<T>(handoff: Handoff, capacity: usize) -> (ConduitTx<T>, ShardRx<T>) {
    match handoff {
        Handoff::Channel => {
            let (tx, rx) = bounded(capacity);
            (ConduitTx::Channel(tx), ShardRx::Channel(rx))
        }
        Handoff::Ring => {
            let core = Arc::new(RingCore::new(capacity));
            let rx = RingRx::new(Arc::clone(&core));
            (ConduitTx::Ring(core), ShardRx::Ring(rx))
        }
    }
}

/// Producer half of [`conduit`] before the worker thread exists.
pub(crate) enum ConduitTx<T> {
    Channel(Sender<T>),
    Ring(Arc<RingCore<T>>),
}

impl<T> ConduitTx<T> {
    /// Finalizes the producer half with the spawned worker's handle.
    pub(crate) fn bind(self, worker: Thread) -> ShardTx<T> {
        match self {
            ConduitTx::Channel(tx) => ShardTx::Channel(tx),
            ConduitTx::Ring(core) => ShardTx::Ring { core, worker },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handoff_parses_and_displays() {
        assert_eq!("ring".parse::<Handoff>().unwrap(), Handoff::Ring);
        assert_eq!("channel".parse::<Handoff>().unwrap(), Handoff::Channel);
        assert!("rings".parse::<Handoff>().is_err());
        assert_eq!(Handoff::default().to_string(), "ring");
    }

    #[test]
    fn ring_send_recv_roundtrip_with_stats() {
        let (tx, rx) = conduit::<u32>(Handoff::Ring, 4);
        let worker = spawn_named("handoff-test".into(), move || {
            let mut got = Vec::new();
            while let Some(v) = rx.recv() {
                got.push(v);
            }
            got
        })
        .unwrap();
        let tx = tx.bind(worker.thread().clone());
        let mut stats = HandoffStats::default();
        for i in 0..1_000u32 {
            assert!(tx.send(i, &mut stats));
        }
        drop(tx);
        let got = worker.join().unwrap();
        assert_eq!(got, (0..1_000).collect::<Vec<_>>(), "FIFO, no loss");
        assert_eq!(stats.sends, 1_000);
        assert_eq!(stats.dropped, 0);
    }

    #[test]
    fn dead_ring_worker_fails_fast_instead_of_wedging() {
        let (tx, rx) = conduit::<u32>(Handoff::Ring, 2);
        let worker = spawn_named("handoff-dead".into(), move || {
            // Take one message then die without draining.
            let _ = rx.recv();
            panic!("simulated worker death");
        })
        .unwrap();
        let tx = tx.bind(worker.thread().clone());
        let mut stats = HandoffStats::default();
        assert!(tx.send(0, &mut stats));
        assert!(worker.join().is_err(), "worker dies by design");
        // The worker's RingRx dropped during unwind, so even against a
        // capacity-2 ring the producer must fail fast, not spin forever.
        let mut saw_drop = false;
        for i in 1..100u32 {
            if !tx.send(i, &mut stats) {
                saw_drop = true;
                break;
            }
        }
        assert!(saw_drop, "producer must detect the dead worker");
        assert!(stats.dropped >= 1);
    }

    #[test]
    fn channel_mode_reports_dead_worker_as_drop() {
        let (tx, rx) = conduit::<u32>(Handoff::Channel, 2);
        drop(rx);
        let tx = tx.bind(std::thread::current());
        let mut stats = HandoffStats::default();
        assert!(!tx.send(7, &mut stats));
        assert_eq!(stats.dropped, 1);
    }
}
