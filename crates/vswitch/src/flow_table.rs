//! The two OVS lookup tiers.
//!
//! Open vSwitch resolves most packets in an exact-match cache (the EMC /
//! microflow cache) and falls back to the megaflow classifier — one hash
//! table per distinct wildcard mask, searched in priority order (tuple
//! space search). This module reproduces both tiers over the five-tuple
//! [`FlowKey`].

use std::collections::HashMap;

use hhh_counters::IntHashBuilder;

type Map<K, V> = HashMap<K, V, IntHashBuilder>;

/// The five-tuple key the datapath classifies on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FlowKey {
    /// Source IPv4 address.
    pub src: u32,
    /// Destination IPv4 address.
    pub dst: u32,
    /// Source transport port.
    pub src_port: u16,
    /// Destination transport port.
    pub dst_port: u16,
    /// IP protocol.
    pub proto: u8,
}

impl FlowKey {
    /// Applies a wildcard mask field-by-field.
    #[must_use]
    pub fn masked(&self, mask: &FlowMask) -> FlowKey {
        FlowKey {
            src: self.src & mask.src,
            dst: self.dst & mask.dst,
            src_port: self.src_port & mask.src_port,
            dst_port: self.dst_port & mask.dst_port,
            proto: self.proto & mask.proto,
        }
    }
}

/// Per-field wildcard mask for megaflow entries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FlowMask {
    /// Source address mask.
    pub src: u32,
    /// Destination address mask.
    pub dst: u32,
    /// Source port mask.
    pub src_port: u16,
    /// Destination port mask.
    pub dst_port: u16,
    /// Protocol mask.
    pub proto: u8,
}

impl FlowMask {
    /// Match everything exactly.
    #[must_use]
    pub fn exact() -> Self {
        Self {
            src: u32::MAX,
            dst: u32::MAX,
            src_port: u16::MAX,
            dst_port: u16::MAX,
            proto: u8::MAX,
        }
    }

    /// Match on IP prefixes only (ports/proto wildcarded).
    #[must_use]
    pub fn prefixes(src_bits: u8, dst_bits: u8) -> Self {
        let pm = |bits: u8| -> u32 {
            if bits == 0 {
                0
            } else {
                u32::MAX << (32 - u32::from(bits.min(32)))
            }
        };
        Self {
            src: pm(src_bits),
            dst: pm(dst_bits),
            src_port: 0,
            dst_port: 0,
            proto: 0,
        }
    }

    /// Wildcard everything (default route).
    #[must_use]
    pub fn any() -> Self {
        Self {
            src: 0,
            dst: 0,
            src_port: 0,
            dst_port: 0,
            proto: 0,
        }
    }
}

/// Forwarding decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// Emit on a port.
    Output(u16),
    /// Drop the packet.
    Drop,
}

/// Exact-match cache in front of the classifier (OVS's EMC analogue):
/// bounded, evicting by simple hash-slot replacement like the real EMC.
#[derive(Debug, Clone)]
pub struct MicroflowCache {
    slots: Vec<Option<(FlowKey, Action)>>,
    mask: usize,
    hits: u64,
    misses: u64,
}

impl MicroflowCache {
    /// Creates a cache with `capacity` slots (rounded up to a power of
    /// two; OVS's EMC uses 8192).
    ///
    /// # Panics
    ///
    /// Panics when `capacity == 0`.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        let cap = capacity.next_power_of_two();
        Self {
            slots: vec![None; cap],
            mask: cap - 1,
            hits: 0,
            misses: 0,
        }
    }

    fn slot_of(&self, key: &FlowKey) -> usize {
        // One multiply-fold over the packed tuple.
        let packed = (u64::from(key.src) << 32) | u64::from(key.dst);
        let ports =
            (u64::from(key.src_port) << 24) | (u64::from(key.dst_port) << 8) | u64::from(key.proto);
        let mut x = packed ^ ports.rotate_left(17);
        x ^= x >> 33;
        x = x.wrapping_mul(0xff51_afd7_ed55_8ccd);
        x ^= x >> 33;
        (x as usize) & self.mask
    }

    /// Looks the key up, recording hit/miss statistics.
    pub fn lookup(&mut self, key: &FlowKey) -> Option<Action> {
        match &self.slots[self.slot_of(key)] {
            Some((k, action)) if k == key => {
                self.hits += 1;
                Some(*action)
            }
            _ => {
                self.misses += 1;
                None
            }
        }
    }

    /// Installs (or replaces) the entry in the key's slot.
    pub fn install(&mut self, key: FlowKey, action: Action) {
        let slot = self.slot_of(&key);
        self.slots[slot] = Some((key, action));
    }

    /// Cache hits so far.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Cache misses so far.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses
    }
}

/// Tuple-space-search classifier: one exact-match table per distinct mask,
/// searched in descending priority order.
#[derive(Debug, Clone, Default)]
pub struct MegaflowTable {
    /// (priority, mask, table) sorted by descending priority.
    tiers: Vec<(i32, FlowMask, Map<FlowKey, Action>)>,
}

impl MegaflowTable {
    /// Creates an empty classifier.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts a rule. Rules with the same mask and priority share a hash
    /// table; higher priority wins on lookup.
    pub fn insert(&mut self, priority: i32, mask: FlowMask, key: FlowKey, action: Action) {
        let masked = key.masked(&mask);
        if let Some((_, _, table)) = self
            .tiers
            .iter_mut()
            .find(|(p, m, _)| *p == priority && *m == mask)
        {
            table.insert(masked, action);
            return;
        }
        let mut table = Map::default();
        table.insert(masked, action);
        self.tiers.push((priority, mask, table));
        self.tiers.sort_by_key(|(p, _, _)| std::cmp::Reverse(*p));
    }

    /// Finds the highest-priority matching rule.
    #[must_use]
    pub fn lookup(&self, key: &FlowKey) -> Option<Action> {
        for (_, mask, table) in &self.tiers {
            if let Some(action) = table.get(&key.masked(mask)) {
                return Some(*action);
            }
        }
        None
    }

    /// Number of (priority, mask) tiers — the quantity tuple-space lookup
    /// cost scales with.
    #[must_use]
    pub fn tier_count(&self) -> usize {
        self.tiers.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(src: u32, dst: u32) -> FlowKey {
        FlowKey {
            src,
            dst,
            src_port: 1000,
            dst_port: 80,
            proto: 17,
        }
    }

    #[test]
    fn microflow_hit_after_install() {
        let mut cache = MicroflowCache::new(1024);
        let k = key(1, 2);
        assert_eq!(cache.lookup(&k), None);
        cache.install(k, Action::Output(3));
        assert_eq!(cache.lookup(&k), Some(Action::Output(3)));
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
    }

    #[test]
    fn microflow_slot_replacement() {
        // A 1-slot cache: the second key evicts the first.
        let mut cache = MicroflowCache::new(1);
        cache.install(key(1, 1), Action::Output(1));
        cache.install(key(2, 2), Action::Output(2));
        assert_eq!(cache.lookup(&key(2, 2)), Some(Action::Output(2)));
        assert_eq!(cache.lookup(&key(1, 1)), None);
    }

    #[test]
    fn megaflow_prefix_match() {
        let mut table = MegaflowTable::new();
        let mask = FlowMask::prefixes(16, 0);
        table.insert(
            10,
            mask,
            key(u32::from_be_bytes([10, 20, 0, 0]), 0),
            Action::Output(7),
        );
        // Any source inside 10.20/16 matches.
        assert_eq!(
            table.lookup(&key(u32::from_be_bytes([10, 20, 99, 1]), 55)),
            Some(Action::Output(7))
        );
        assert_eq!(
            table.lookup(&key(u32::from_be_bytes([10, 21, 0, 1]), 55)),
            None
        );
    }

    #[test]
    fn megaflow_priority_order() {
        let mut table = MegaflowTable::new();
        let specific = FlowMask::prefixes(24, 0);
        let broad = FlowMask::any();
        let k = key(u32::from_be_bytes([10, 20, 30, 40]), 5);
        table.insert(0, broad, k, Action::Output(1));
        table.insert(100, specific, k, Action::Drop);
        assert_eq!(table.lookup(&k), Some(Action::Drop), "priority wins");
        // A non-matching specific key falls through to the default.
        assert_eq!(
            table.lookup(&key(u32::from_be_bytes([99, 0, 0, 1]), 5)),
            Some(Action::Output(1))
        );
    }

    #[test]
    fn megaflow_shares_tables_per_mask() {
        let mut table = MegaflowTable::new();
        let mask = FlowMask::prefixes(8, 8);
        for i in 0..50u32 {
            table.insert(1, mask, key(i << 24, i << 24), Action::Output(i as u16));
        }
        assert_eq!(table.tier_count(), 1, "same mask+priority share a tier");
    }

    #[test]
    fn prefix_mask_edge_cases() {
        assert_eq!(FlowMask::prefixes(0, 0).src, 0);
        assert_eq!(FlowMask::prefixes(32, 0).src, u32::MAX);
        assert_eq!(FlowMask::prefixes(8, 0).src, 0xFF00_0000);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_cache_rejected() {
        let _ = MicroflowCache::new(0);
    }
}
