//! Zero-copy packet views, in the smoltcp idiom: a view type wraps a byte
//! slice, `new_checked` validates lengths/versions up front, and accessors
//! read fields at fixed offsets without copying.
//!
//! Only the header fields the dataplane needs are modelled (Ethernet II,
//! IPv4 without options beyond IHL handling, UDP). The builder emits the
//! 64-byte UDP frames the paper's MoonGen generator uses ("we adjust the
//! payload size to 64 bytes").

use bytes::{BufMut, BytesMut};

/// Errors surfaced by the checked view constructors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParseError {
    /// Buffer shorter than the fixed header.
    Truncated,
    /// Ethertype is not IPv4.
    NotIpv4,
    /// IP version field is not 4 or IHL is invalid.
    BadIpHeader,
    /// Payload shorter than the length field claims.
    BadLength,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let msg = match self {
            ParseError::Truncated => "frame truncated",
            ParseError::NotIpv4 => "ethertype is not IPv4",
            ParseError::BadIpHeader => "bad IPv4 header",
            ParseError::BadLength => "length field exceeds buffer",
        };
        f.write_str(msg)
    }
}

impl std::error::Error for ParseError {}

/// Ethernet II header length.
pub const ETH_HEADER_LEN: usize = 14;
/// Ethertype for IPv4.
pub const ETHERTYPE_IPV4: u16 = 0x0800;
/// Minimal IPv4 header (no options).
pub const IPV4_MIN_HEADER_LEN: usize = 20;
/// UDP header length.
pub const UDP_HEADER_LEN: usize = 8;

/// Ethernet II frame view.
#[derive(Debug, Clone, Copy)]
pub struct EthernetFrame<'a> {
    buf: &'a [u8],
}

impl<'a> EthernetFrame<'a> {
    /// Validates the fixed header length.
    ///
    /// # Errors
    ///
    /// [`ParseError::Truncated`] when the buffer is too short.
    pub fn new_checked(buf: &'a [u8]) -> Result<Self, ParseError> {
        if buf.len() < ETH_HEADER_LEN {
            return Err(ParseError::Truncated);
        }
        Ok(Self { buf })
    }

    /// Destination MAC address.
    #[must_use]
    pub fn dst_mac(&self) -> [u8; 6] {
        self.buf[0..6].try_into().expect("checked length")
    }

    /// Source MAC address.
    #[must_use]
    pub fn src_mac(&self) -> [u8; 6] {
        self.buf[6..12].try_into().expect("checked length")
    }

    /// Ethertype (big-endian on the wire).
    #[must_use]
    pub fn ethertype(&self) -> u16 {
        u16::from_be_bytes([self.buf[12], self.buf[13]])
    }

    /// The layer-3 payload.
    #[must_use]
    pub fn payload(&self) -> &'a [u8] {
        &self.buf[ETH_HEADER_LEN..]
    }
}

/// IPv4 header view.
#[derive(Debug, Clone, Copy)]
pub struct Ipv4View<'a> {
    buf: &'a [u8],
    header_len: usize,
}

impl<'a> Ipv4View<'a> {
    /// Validates version, IHL and total length.
    ///
    /// # Errors
    ///
    /// [`ParseError`] variants for truncation or malformed headers.
    pub fn new_checked(buf: &'a [u8]) -> Result<Self, ParseError> {
        if buf.len() < IPV4_MIN_HEADER_LEN {
            return Err(ParseError::Truncated);
        }
        let version = buf[0] >> 4;
        let ihl = usize::from(buf[0] & 0x0F) * 4;
        if version != 4 || ihl < IPV4_MIN_HEADER_LEN {
            return Err(ParseError::BadIpHeader);
        }
        if buf.len() < ihl {
            return Err(ParseError::Truncated);
        }
        let total_len = usize::from(u16::from_be_bytes([buf[2], buf[3]]));
        if total_len < ihl || total_len > buf.len() {
            return Err(ParseError::BadLength);
        }
        Ok(Self {
            buf,
            header_len: ihl,
        })
    }

    /// Source address.
    #[must_use]
    pub fn src(&self) -> u32 {
        u32::from_be_bytes(self.buf[12..16].try_into().expect("checked length"))
    }

    /// Destination address.
    #[must_use]
    pub fn dst(&self) -> u32 {
        u32::from_be_bytes(self.buf[16..20].try_into().expect("checked length"))
    }

    /// IP protocol number.
    #[must_use]
    pub fn protocol(&self) -> u8 {
        self.buf[9]
    }

    /// Packed 2D source × destination key in one big-endian load — on the
    /// wire the two addresses are adjacent, so bytes 12..20 of the header
    /// read as a `u64` *are* `pack2(src, dst)`. The zero-copy wire lane
    /// parser relies on this layout identity; this accessor keeps it
    /// checked-view-visible (and tested) in one place.
    #[must_use]
    pub fn key2(&self) -> u64 {
        u64::from_be_bytes(self.buf[12..20].try_into().expect("checked length"))
    }

    /// Time-to-live.
    #[must_use]
    pub fn ttl(&self) -> u8 {
        self.buf[8]
    }

    /// The layer-4 payload (respects IHL).
    #[must_use]
    pub fn payload(&self) -> &'a [u8] {
        &self.buf[self.header_len..]
    }
}

/// UDP header view.
#[derive(Debug, Clone, Copy)]
pub struct UdpView<'a> {
    buf: &'a [u8],
}

impl<'a> UdpView<'a> {
    /// Validates the fixed header length.
    ///
    /// # Errors
    ///
    /// [`ParseError::Truncated`] when the buffer is too short.
    pub fn new_checked(buf: &'a [u8]) -> Result<Self, ParseError> {
        if buf.len() < UDP_HEADER_LEN {
            return Err(ParseError::Truncated);
        }
        Ok(Self { buf })
    }

    /// Source port.
    #[must_use]
    pub fn src_port(&self) -> u16 {
        u16::from_be_bytes([self.buf[0], self.buf[1]])
    }

    /// Destination port.
    #[must_use]
    pub fn dst_port(&self) -> u16 {
        u16::from_be_bytes([self.buf[2], self.buf[3]])
    }
}

/// Builds a complete Ethernet/IPv4/UDP frame. `payload_len` pads the frame;
/// the default test configuration emits the paper's 64-byte frames
/// (14 + 20 + 8 header bytes + 22 payload).
#[must_use]
pub fn build_udp_frame(
    src: u32,
    dst: u32,
    src_port: u16,
    dst_port: u16,
    payload_len: usize,
) -> Vec<u8> {
    let ip_total = IPV4_MIN_HEADER_LEN + UDP_HEADER_LEN + payload_len;
    let mut buf = BytesMut::with_capacity(ETH_HEADER_LEN + ip_total);

    // Ethernet II.
    buf.put_slice(&[0x02, 0, 0, 0, 0, 0x01]); // dst MAC (locally administered)
    buf.put_slice(&[0x02, 0, 0, 0, 0, 0x02]); // src MAC
    buf.put_u16(ETHERTYPE_IPV4);

    // IPv4, no options.
    buf.put_u8(0x45); // version 4, IHL 5
    buf.put_u8(0); // DSCP/ECN
    buf.put_u16(ip_total as u16);
    buf.put_u16(0); // identification
    buf.put_u16(0); // flags/fragment offset
    buf.put_u8(64); // TTL
    buf.put_u8(17); // UDP
    buf.put_u16(0); // header checksum (not validated by the datapath)
    buf.put_u32(src);
    buf.put_u32(dst);

    // UDP.
    buf.put_u16(src_port);
    buf.put_u16(dst_port);
    buf.put_u16((UDP_HEADER_LEN + payload_len) as u16);
    buf.put_u16(0); // checksum optional for IPv4

    buf.put_bytes(0xAB, payload_len);
    buf.to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ip(a: u8, b: u8, c: u8, d: u8) -> u32 {
        u32::from_be_bytes([a, b, c, d])
    }

    #[test]
    fn build_and_parse_roundtrip() {
        let frame = build_udp_frame(ip(10, 1, 2, 3), ip(8, 8, 8, 8), 1234, 53, 22);
        assert_eq!(frame.len(), 64, "the paper's 64-byte test frames");

        let eth = EthernetFrame::new_checked(&frame).expect("eth");
        assert_eq!(eth.ethertype(), ETHERTYPE_IPV4);
        assert_eq!(eth.src_mac(), [0x02, 0, 0, 0, 0, 0x02]);

        let ipv4 = Ipv4View::new_checked(eth.payload()).expect("ip");
        assert_eq!(ipv4.src(), ip(10, 1, 2, 3));
        assert_eq!(ipv4.dst(), ip(8, 8, 8, 8));
        assert_eq!(ipv4.protocol(), 17);
        assert_eq!(ipv4.ttl(), 64);
        assert_eq!(
            ipv4.key2(),
            hhh_hierarchy::pack2(ipv4.src(), ipv4.dst()),
            "one BE load equals the packed key"
        );

        let udp = UdpView::new_checked(ipv4.payload()).expect("udp");
        assert_eq!(udp.src_port(), 1234);
        assert_eq!(udp.dst_port(), 53);
    }

    #[test]
    fn truncated_buffers_rejected() {
        assert_eq!(
            EthernetFrame::new_checked(&[0u8; 5]).unwrap_err(),
            ParseError::Truncated
        );
        assert_eq!(
            Ipv4View::new_checked(&[0x45; 10]).unwrap_err(),
            ParseError::Truncated
        );
        assert_eq!(
            UdpView::new_checked(&[0u8; 7]).unwrap_err(),
            ParseError::Truncated
        );
    }

    #[test]
    fn wrong_ip_version_rejected() {
        let mut buf = [0u8; 20];
        buf[0] = 0x65; // version 6
        assert_eq!(
            Ipv4View::new_checked(&buf).unwrap_err(),
            ParseError::BadIpHeader
        );
        buf[0] = 0x43; // IHL 3 (< 20 bytes)
        assert_eq!(
            Ipv4View::new_checked(&buf).unwrap_err(),
            ParseError::BadIpHeader
        );
    }

    #[test]
    fn bad_total_length_rejected() {
        let frame = build_udp_frame(1, 2, 3, 4, 0);
        let mut ip_bytes = frame[ETH_HEADER_LEN..].to_vec();
        // Claim a longer total length than the buffer has.
        ip_bytes[2] = 0xFF;
        ip_bytes[3] = 0xFF;
        assert_eq!(
            Ipv4View::new_checked(&ip_bytes).unwrap_err(),
            ParseError::BadLength
        );
    }

    #[test]
    fn options_bearing_header_respected() {
        // IHL 6 (24-byte header): payload must start after the options.
        let mut buf = vec![0u8; 32];
        buf[0] = 0x46;
        buf[2] = 0;
        buf[3] = 32; // total length
        let v = Ipv4View::new_checked(&buf).expect("valid with options");
        assert_eq!(v.payload().len(), 32 - 24);
    }

    #[test]
    fn parse_never_panics_on_garbage() {
        // Cheap fuzz sweep; the proptest suite does this more thoroughly.
        let mut state = 0x1234_5678_9ABC_DEF0u64;
        for len in 0..128usize {
            let mut buf = vec![0u8; len];
            for b in &mut buf {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                *b = (state >> 56) as u8;
            }
            let _ = EthernetFrame::new_checked(&buf)
                .and_then(|e| Ipv4View::new_checked(e.payload()))
                .and_then(|i| UdpView::new_checked(i.payload()));
        }
    }
}
