//! Batch-vs-scalar equivalence suite.
//!
//! The batch path consumes RNG draws on a different schedule than the
//! scalar path (one geometric gap draw per *selected* packet instead of one
//! bounded draw per packet), so the two are equal in distribution, not
//! bit-for-bit. These tests pin down that equivalence:
//!
//! * a chi-squared two-sample test over per-node update counts (the
//!   balls-and-bins statistic the Section 6 analysis rests on) across
//!   several fixed seeds,
//! * binomial bounds on the selected fraction,
//! * deterministic checks that batch flushes respect the Space Saving
//!   `count − error ≤ X ≤ count` sandwich, exactly (no-eviction regime) and
//!   as an inequality (eviction-heavy regime).
//!
//! Everything is seeded; there is no flakiness to re-roll.

use hhh_core::{HhhAlgorithm, NodeEstimates, Rhhh, RhhhConfig};
use hhh_hierarchy::{pack2, Lattice, NodeId};

struct Lcg(u64);
impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 16
    }
}

fn stream(n: usize, seed: u64) -> Vec<u64> {
    let mut rng = Lcg(seed);
    (0..n)
        .map(|i| {
            if i % 10 < 3 {
                pack2(0x0A14_0000 | (rng.next() as u32 & 0xFFFF), 0x0808_0808)
            } else {
                pack2(rng.next() as u32, rng.next() as u32)
            }
        })
        .collect()
}

/// Two-sample chi-squared statistic over per-bin counts; under the null
/// (same multinomial law) it is ~χ²(bins − 1).
fn chi_squared_two_sample(a: &[u64], b: &[u64]) -> f64 {
    let na: u64 = a.iter().sum();
    let nb: u64 = b.iter().sum();
    assert!(na > 0 && nb > 0);
    let k1 = (nb as f64 / na as f64).sqrt();
    let k2 = (na as f64 / nb as f64).sqrt();
    a.iter()
        .zip(b)
        .filter(|(&x, &y)| x + y > 0)
        .map(|(&x, &y)| {
            let d = k1 * x as f64 - k2 * y as f64;
            d * d / (x + y) as f64
        })
        .sum()
}

fn node_counts<K: hhh_hierarchy::KeyBits>(algo: &Rhhh<K>) -> Vec<u64> {
    (0..algo.h() as u16)
        .map(|i| algo.node_updates(NodeId(i)))
        .collect()
}

/// Chi-squared over node selection counts, scalar vs batch, three seeds,
/// both operating points (V = H and V = 10H). df = 24; the 99.9th
/// percentile of χ²(24) is 52.6.
#[test]
fn node_selection_counts_statistically_indistinguishable() {
    const CHI2_DF24_P999: f64 = 52.62;
    for seed in [11u64, 12, 13] {
        for v_scale in [1u64, 10] {
            let config = RhhhConfig {
                v_scale,
                seed,
                ..RhhhConfig::default()
            };
            let lat = Lattice::ipv4_src_dst_bytes();
            let keys = stream(300_000, seed);
            let mut scalar = Rhhh::<u64>::new(lat.clone(), config);
            for &k in &keys {
                scalar.update(k);
            }
            let mut batch = Rhhh::<u64>::new(lat, config);
            for chunk in keys.chunks(8_192) {
                batch.update_batch(chunk);
            }
            let (sc, bc) = (node_counts(&scalar), node_counts(&batch));
            let chi2 = chi_squared_two_sample(&sc, &bc);
            assert!(
                chi2 < CHI2_DF24_P999,
                "seed {seed}, v_scale {v_scale}: chi2 = {chi2:.2} \
                 (scalar {sc:?} vs batch {bc:?})"
            );
        }
    }
}

/// The batch path's selected fraction is Binomial(n, H/V) like the scalar
/// path's; both totals stay within 5σ of the mean for every seed.
#[test]
fn selected_fraction_matches_binomial_law() {
    let n = 300_000u64;
    let p = 0.1f64;
    let sigma = (n as f64 * p * (1.0 - p)).sqrt();
    for seed in [21u64, 22, 23] {
        let config = RhhhConfig {
            v_scale: 10,
            seed,
            ..RhhhConfig::default()
        };
        let lat = Lattice::ipv4_src_dst_bytes();
        let keys = stream(n as usize, seed);
        let mut batch = Rhhh::<u64>::new(lat.clone(), config);
        batch.update_batch(&keys);
        let mut scalar = Rhhh::<u64>::new(lat, config);
        for &k in &keys {
            scalar.update(k);
        }
        for (label, algo) in [("batch", &batch), ("scalar", &scalar)] {
            let dev = (algo.total_updates() as f64 - n as f64 * p).abs();
            assert!(
                dev < 5.0 * sigma,
                "seed {seed} {label}: {} updates, dev {dev:.0} > 5σ = {:.0}",
                algo.total_updates(),
                5.0 * sigma
            );
        }
    }
}

/// No-eviction regime: with a tiny key universe every node instance has
/// spare capacity, so Space Saving is exact — the batch flush must satisfy
/// `lower == upper` per candidate and reconcile per-node totals exactly.
#[test]
fn batch_flush_is_exact_below_capacity() {
    let lat = Lattice::ipv4_src_dst_bytes();
    let mut algo = Rhhh::<u64>::new(lat, RhhhConfig::ten_rhhh());
    let mut rng = Lcg(77);
    let keys: Vec<u64> = (0..200_000)
        .map(|_| {
            pack2(
                rng.next() as u32 & 0x0000_0007,
                rng.next() as u32 & 0x0000_0003,
            )
        })
        .collect();
    for chunk in keys.chunks(4_096) {
        algo.update_batch(chunk);
    }
    for node in 0..algo.h() as u16 {
        let node = NodeId(node);
        let mut total = 0u64;
        for c in algo.node_candidates(node) {
            assert_eq!(c.lower, c.upper, "no eviction may introduce error");
            total += c.upper;
        }
        assert_eq!(
            total,
            algo.node_updates(node),
            "per-node counts must reconcile exactly at {node:?}"
        );
    }
}

/// Eviction-heavy regime: candidates keep the Space Saving sandwich
/// `count − error ≤ X ≤ count` (observable as lower ≤ upper with
/// error ≤ per-node error bound) and guaranteed mass never exceeds the
/// node's delivered updates.
#[test]
fn batch_flush_respects_space_saving_sandwich_under_eviction() {
    let lat = Lattice::ipv4_src_dst_bytes();
    // ε_a = 0.2 → 6 counters per instance: constant evictions.
    let mut algo = Rhhh::<u64>::new(
        lat,
        RhhhConfig {
            epsilon_a: 0.2,
            ..RhhhConfig::ten_rhhh()
        },
    );
    let keys = stream(300_000, 5);
    for chunk in keys.chunks(4_096) {
        algo.update_batch(chunk);
    }
    for node in 0..algo.h() as u16 {
        let node = NodeId(node);
        let delivered = algo.node_updates(node);
        let cands = algo.node_candidates(node);
        let mut guaranteed = 0u64;
        for c in &cands {
            assert!(c.lower <= c.upper, "sandwich inverted at {node:?}");
            let error = c.upper - c.lower;
            assert!(
                error <= delivered,
                "error {error} exceeds delivered {delivered} at {node:?}"
            );
            guaranteed += c.lower;
        }
        assert!(
            guaranteed <= delivered,
            "guaranteed mass {guaranteed} > delivered {delivered} at {node:?}"
        );
    }
}

/// Weighted batch path: same totals as the scalar weighted path and a
/// volume estimate for the planted heavy flow within the configured error.
#[test]
fn weighted_batch_matches_scalar_weighted_totals() {
    for seed in [31u64, 32, 33] {
        let lat = Lattice::ipv4_src_bytes();
        let config = RhhhConfig {
            epsilon_s: 0.05,
            delta_s: 0.05,
            seed,
            ..RhhhConfig::default()
        };
        let heavy = u32::from_be_bytes([7, 7, 7, 7]);
        let mut rng = Lcg(seed);
        let packets: Vec<(u32, u64)> = (0..200_000usize)
            .map(|i| {
                if i % 10 == 0 {
                    (heavy, 1400)
                } else {
                    (rng.next() as u32, 64)
                }
            })
            .collect();
        let mut batch = Rhhh::<u32>::new(lat.clone(), config);
        for chunk in packets.chunks(2_048) {
            batch.update_batch_weighted(chunk);
        }
        let mut scalar = Rhhh::<u32>::new(lat, config);
        for &(k, w) in &packets {
            scalar.update_weighted(k, w);
        }
        assert_eq!(batch.total_weight(), scalar.total_weight());
        assert_eq!(batch.packets(), scalar.packets());

        let truth = 200_000u64 / 10 * 1400;
        for (label, algo) in [("batch", &batch), ("scalar", &scalar)] {
            let out = algo.output(0.3);
            let bottom = algo.lattice().bottom();
            let entry = out
                .iter()
                .find(|h| h.prefix.key == heavy && h.prefix.node == bottom)
                .unwrap_or_else(|| panic!("{label} seed {seed}: heavy flow lost"));
            assert!(
                (entry.freq_upper - truth as f64).abs() < 0.2 * truth as f64,
                "{label} seed {seed}: {} vs {truth}",
                entry.freq_upper
            );
        }
    }
}

/// The two paths report the same HHH set on a planted-attack stream — the
/// end-to-end answer users actually consume.
#[test]
fn batch_and_scalar_agree_on_the_hhh_set() {
    for seed in [41u64, 42, 43] {
        let lat = Lattice::ipv4_src_dst_bytes();
        let config = RhhhConfig {
            epsilon_s: 0.02,
            epsilon_a: 0.005,
            delta_s: 0.05,
            v_scale: 10,
            updates_per_packet: 1,
            seed,
        };
        let keys = stream(400_000, seed);
        let mut scalar = Rhhh::<u64>::new(lat.clone(), config);
        for &k in &keys {
            scalar.update(k);
        }
        let mut batch = Rhhh::<u64>::new(lat.clone(), config);
        for chunk in keys.chunks(8_192) {
            batch.update_batch(chunk);
        }
        let planted = |algo: &Rhhh<u64>| {
            algo.output(0.1)
                .iter()
                .map(|h| h.prefix.display(&lat))
                .any(|s| s.contains("10.20.0.0/16") && s.contains("8.8.8.8/32"))
        };
        assert!(planted(&scalar), "seed {seed}: scalar lost the attack");
        assert!(planted(&batch), "seed {seed}: batch lost the attack");
    }
}

/// `flush_group_evicting` (what the batch flush calls — adaptive ordering
/// with bulk min-level eviction on the flat arena) vs per-key processing
/// of the same groups in the same (deterministically chosen, exposed)
/// order: the deferred-eviction path must leave the same count multiset,
/// update total and min-count — only the tie-break among equal minima
/// (hence which key owns a slot) may differ.
#[test]
fn flush_group_evicting_matches_default_flush() {
    use hhh_counters::{CompactSpaceSaving, FrequencyEstimator};
    let mut rng = Lcg(0x5CA1E);
    for cap in [1usize, 5, 24, 120] {
        for (universe, group_len) in [(8u64, 64usize), (200, 96), (10_000, 512)] {
            let mut bulk: CompactSpaceSaving<u64> = CompactSpaceSaving::with_capacity(cap);
            let mut default: CompactSpaceSaving<u64> = CompactSpaceSaving::with_capacity(cap);
            for _ in 0..30 {
                let mut group: Vec<u64> = (0..group_len).map(|_| rng.next() % universe).collect();
                let mut group2 = group.clone();
                bulk.flush_group_evicting(&mut group);
                // Mirror the adaptive order decision: sorted runs go
                // through the default flush, arrival order through plain
                // per-key increment_batch.
                if bulk.last_flush_sorted() {
                    default.flush_group(&mut group2);
                } else {
                    default.increment_batch(&group2);
                }
            }
            let label = format!("cap {cap}, universe {universe}, group {group_len}");
            assert_eq!(bulk.updates(), default.updates(), "{label}: updates");
            assert_eq!(bulk.min_count(), default.min_count(), "{label}: min");
            let multiset = |c: &CompactSpaceSaving<u64>| -> Vec<u64> {
                let mut v: Vec<u64> = c.candidates().iter().map(|e| e.upper).collect();
                v.sort_unstable();
                v
            };
            assert_eq!(
                multiset(&bulk),
                multiset(&default),
                "{label}: count multisets diverged"
            );
            bulk.debug_validate();
            default.debug_validate();
        }
    }
}

/// Per-instance state comparison used by the PR 6 block-vs-reference pins:
/// identical RNG schedules must leave *identical* counter state, so we
/// compare packets, total updates and every node's full candidate vector
/// (order included) — strictly stronger than comparing `output(θ)`.
fn assert_state_identical<E>(label: &str, block: &Rhhh<u64, E>, reference: &Rhhh<u64, E>)
where
    E: hhh_counters::FrequencyEstimator<u64>,
{
    assert_eq!(block.packets(), reference.packets(), "{label}: packets");
    assert_eq!(
        block.total_updates(),
        reference.total_updates(),
        "{label}: total updates"
    );
    for node in 0..block.h() as u16 {
        let node = NodeId(node);
        assert_eq!(
            block.node_updates(node),
            reference.node_updates(node),
            "{label}: update totals diverged at {node:?}"
        );
        assert_eq!(
            block.node_candidates(node),
            reference.node_candidates(node),
            "{label}: counter state diverged at {node:?}"
        );
    }
}

/// The PR 6 block front end must be *bit-identical* to the frozen PR 5
/// reference scatter given the same seed and chunking — not merely equal in
/// distribution. Pinned across V ∈ {H, 10H} × both counter layouts ×
/// several chunkings (whole-slice, power-of-two, ragged prime) × r ∈ {1, 4}.
#[test]
fn block_path_bit_identical_to_reference() {
    use hhh_counters::CompactSpaceSaving;
    let keys = stream(150_000, 99);
    for v_scale in [1u64, 10] {
        for updates_per_packet in [1u32, 4] {
            for chunk in [150_000usize, 8_192, 7_001] {
                let config = RhhhConfig {
                    epsilon_s: 0.01,
                    epsilon_a: 0.005,
                    delta_s: 0.05,
                    v_scale,
                    updates_per_packet,
                    seed: 0xB10C,
                };
                let lat = Lattice::ipv4_src_dst_bytes();
                let label =
                    format!("v_scale {v_scale}, r {updates_per_packet}, chunk {chunk}, list");
                let mut block = Rhhh::<u64>::new(lat.clone(), config);
                let mut reference = Rhhh::<u64>::new(lat.clone(), config);
                for c in keys.chunks(chunk) {
                    block.update_batch(c);
                    reference.update_batch_reference(c);
                }
                assert_state_identical(&label, &block, &reference);

                let label =
                    format!("v_scale {v_scale}, r {updates_per_packet}, chunk {chunk}, compact");
                let mut block = Rhhh::<u64, CompactSpaceSaving<u64>>::new(lat.clone(), config);
                let mut reference = Rhhh::<u64, CompactSpaceSaving<u64>>::new(lat, config);
                for c in keys.chunks(chunk) {
                    block.update_batch(c);
                    reference.update_batch_reference(c);
                }
                assert_state_identical(&label, &block, &reference);
            }
        }
    }
}

/// Weighted feeds go through the same block engine (gap draws over packet
/// indices, weights carried alongside); the weighted block path must also
/// be bit-identical to its frozen reference.
#[test]
fn block_weighted_path_bit_identical_to_reference() {
    use hhh_counters::CompactSpaceSaving;
    let mut rng = Lcg(0x00B1_0CED);
    let packets: Vec<(u64, u64)> = (0..150_000usize)
        .map(|i| {
            let key = if i % 10 < 3 {
                pack2(0x0A14_0000 | (rng.next() as u32 & 0xFFFF), 0x0808_0808)
            } else {
                pack2(rng.next() as u32, rng.next() as u32)
            };
            (key, 64 + (rng.next() % 1400))
        })
        .collect();
    for v_scale in [1u64, 10] {
        for chunk in [150_000usize, 2_048, 7_001] {
            let config = RhhhConfig {
                epsilon_s: 0.01,
                epsilon_a: 0.005,
                delta_s: 0.05,
                v_scale,
                updates_per_packet: 1,
                seed: 0x17E5,
            };
            let lat = Lattice::ipv4_src_dst_bytes();
            let label = format!("weighted, v_scale {v_scale}, chunk {chunk}, list");
            let mut block = Rhhh::<u64>::new(lat.clone(), config);
            let mut reference = Rhhh::<u64>::new(lat.clone(), config);
            for c in packets.chunks(chunk) {
                block.update_batch_weighted(c);
                reference.update_batch_weighted_reference(c);
            }
            assert_eq!(block.total_weight(), reference.total_weight(), "{label}");
            assert_state_identical(&label, &block, &reference);

            let label = format!("weighted, v_scale {v_scale}, chunk {chunk}, compact");
            let mut block = Rhhh::<u64, CompactSpaceSaving<u64>>::new(lat.clone(), config);
            let mut reference = Rhhh::<u64, CompactSpaceSaving<u64>>::new(lat, config);
            for c in packets.chunks(chunk) {
                block.update_batch_weighted(c);
                reference.update_batch_weighted_reference(c);
            }
            assert_eq!(block.total_weight(), reference.total_weight(), "{label}");
            assert_state_identical(&label, &block, &reference);
        }
    }
}

/// Windowed feeds split batches at pane boundaries before reaching the
/// block engine; with a ragged chunk size every pane rotation lands
/// mid-chunk. The block path must agree with the reference bit for bit on
/// every pane — pinned through the merged-window query (coarse ε keeps the
/// extraction cheap) and the bookkeeping counters.
#[test]
fn block_windowed_path_bit_identical_across_pane_straddles() {
    use hhh_core::WindowedRhhh;
    // ε_s sized so ψ = Z·V/ε_s² ≈ 22k stays under the 40k window (checked
    // by `WindowedRhhh::new` in debug builds).
    let config = RhhhConfig {
        epsilon_s: 0.15,
        epsilon_a: 0.01,
        delta_s: 0.05,
        v_scale: 10,
        updates_per_packet: 1,
        seed: 0xAB1E,
    };
    let lat = Lattice::ipv4_src_dst_bytes();
    let keys = stream(130_000, 7);
    // window 40k over 4 panes → pane length 10k; 7001-key chunks straddle
    // every rotation.
    let mut block = WindowedRhhh::<u64>::new(lat.clone(), config, 40_000, 4);
    let mut reference = WindowedRhhh::<u64>::new(lat, config, 40_000, 4);
    for c in keys.chunks(7_001) {
        block.update_batch(c);
        reference.update_batch_reference(c);
    }
    assert_eq!(block.total_packets(), reference.total_packets());
    assert_eq!(block.panes_completed(), reference.panes_completed());
    assert_eq!(block.covered_range(), reference.covered_range());
    assert_eq!(
        block.query(0.1),
        reference.query(0.1),
        "windowed merged-window answers diverged"
    );
    assert_eq!(
        block.query_current(0.1),
        reference.query_current(0.1),
        "active-pane answers diverged"
    );
}

/// Swapping the per-node counter for the flat-arena layout changes neither
/// the selection schedule (same RNG, same draws) nor the count multisets
/// (both layouts evict true minima), so a compact-backed run must deliver
/// the same per-node update totals as a stream-summary-backed run — and
/// still find the planted attack through the batch path.
#[test]
fn compact_counter_batch_path_matches_stream_summary() {
    use hhh_counters::CompactSpaceSaving;
    for seed in [51u64, 52] {
        let lat = Lattice::ipv4_src_dst_bytes();
        let config = RhhhConfig {
            epsilon_s: 0.02,
            epsilon_a: 0.005,
            delta_s: 0.05,
            v_scale: 10,
            updates_per_packet: 1,
            seed,
        };
        let keys = stream(400_000, seed);
        let mut list = Rhhh::<u64>::new(lat.clone(), config);
        let mut flat = Rhhh::<u64, CompactSpaceSaving<u64>>::new(lat.clone(), config);
        for chunk in keys.chunks(8_192) {
            list.update_batch(chunk);
            flat.update_batch(chunk);
        }
        assert_eq!(
            list.total_updates(),
            flat.total_updates(),
            "seed {seed}: RNG schedules diverged"
        );
        for node in 0..25u16 {
            assert_eq!(
                list.node_updates(NodeId(node)),
                flat.node_updates(NodeId(node)),
                "seed {seed}: node {node} update totals diverged"
            );
        }
        let planted = flat
            .output(0.1)
            .iter()
            .map(|h| h.prefix.display(&lat))
            .any(|s| s.contains("10.20.0.0/16") && s.contains("8.8.8.8/32"));
        assert!(planted, "seed {seed}: compact batch lost the attack");
    }
}
