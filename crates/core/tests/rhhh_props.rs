//! Property tests for RHHH and the exact ground truth.
//!
//! The probabilistic guarantees (accuracy/coverage at confidence 1−δ) are
//! exercised with seeded streams — proptest supplies structure (how many
//! heavy flows, how skewed), while the RHHH seed stays fixed so failures
//! reproduce deterministically.

use hhh_core::{ExactHhh, HhhAlgorithm, Rhhh, RhhhConfig};
use hhh_hierarchy::{pack2, Lattice, Prefix};
use proptest::prelude::*;

/// Deterministic stream with proptest-chosen shape: `heavy` flows share a
/// planted /16 and carry `share`% of traffic.
fn make_stream(n: u64, heavy_subnet: u8, share_pct: u64, seed: u64) -> Vec<u64> {
    let mut x = seed | 1;
    (0..n)
        .map(|i| {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            if i % 100 < share_pct {
                pack2(
                    u32::from_be_bytes([10, heavy_subnet, (x >> 24) as u8, (x >> 32) as u8]),
                    u32::from_be_bytes([8, 8, 8, 8]),
                )
            } else {
                pack2((x >> 16) as u32, (x >> 40) as u32 ^ (i as u32))
            }
        })
        .collect()
}

fn loose_config(seed: u64) -> RhhhConfig {
    RhhhConfig {
        epsilon_a: 0.01,
        epsilon_s: 0.04,
        delta_s: 0.01,
        v_scale: 1,
        updates_per_packet: 1,
        seed,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Coverage (Definition 10): every exact HHH is reported, for any
    /// planted stream shape, once converged.
    #[test]
    fn rhhh_covers_exact_hhh(
        heavy_subnet in 0u8..255,
        share in 10u64..60,
        seed in 1u64..1000,
    ) {
        let lat = Lattice::ipv4_src_dst_bytes();
        let mut algo = Rhhh::<u64>::new(lat.clone(), loose_config(seed));
        let mut exact = ExactHhh::new(lat.clone());
        for &k in &make_stream(120_000, heavy_subnet, share, seed) {
            algo.update(k);
            exact.insert(k);
        }
        prop_assert!(algo.converged());
        let theta = 0.08;
        let got: std::collections::HashSet<Prefix<u64>> =
            algo.output(theta).iter().map(|h| h.prefix).collect();
        for p in exact.hhh(theta) {
            prop_assert!(got.contains(&p), "missed {}", p.display(&lat));
        }
    }

    /// Output rows are internally consistent for arbitrary θ.
    #[test]
    fn output_rows_are_consistent(
        theta in 0.005f64..0.9,
        seed in 1u64..500,
    ) {
        let lat = Lattice::ipv4_src_dst_bytes();
        let mut algo = Rhhh::<u64>::new(lat, loose_config(seed));
        for &k in &make_stream(50_000, 7, 30, seed) {
            algo.update(k);
        }
        for h in algo.output(theta) {
            prop_assert!(h.freq_lower <= h.freq_upper);
            prop_assert!(h.freq_lower >= 0.0);
            prop_assert!(h.conditioned.is_finite());
            // Admission rule: the conditioned estimate crossed θN.
            prop_assert!(h.conditioned >= theta * algo.packets() as f64 - 1e-9);
        }
    }

    /// Exact-HHH structural laws: conditioned counts never exceed plain
    /// frequencies, and every selected prefix's conditioned count (w.r.t.
    /// the prefixes selected before it) reaches θN.
    #[test]
    fn exact_hhh_laws(share in 5u64..50, seed in 1u64..500) {
        let lat = Lattice::ipv4_src_dst_bytes();
        let mut exact = ExactHhh::new(lat);
        for &k in &make_stream(40_000, 3, share, seed) {
            exact.insert(k);
        }
        let theta = 0.05;
        let thr = theta * exact.packets() as f64;
        let hhh = exact.hhh(theta);
        for (i, p) in hhh.iter().enumerate() {
            let before = &hhh[..i];
            let c = exact.conditioned(p, before);
            prop_assert!(c as f64 >= thr, "selected below threshold");
            prop_assert!(c <= exact.frequency(p) as i64, "C > f");
        }
        // Residual-mass law: if the root is NOT selected, the mass left
        // over after subtracting the selected prefixes must be below θN —
        // otherwise the root's conditioned count would have admitted it.
        let root = Prefix {
            key: 0,
            node: exact.lattice().root(),
        };
        if !hhh.iter().any(|p| p.node == exact.lattice().root()) {
            let residual = exact.conditioned(&root, &hhh);
            prop_assert!((residual as f64) < thr, "uncovered residual {residual}");
        }
    }

    /// Determinism: same seed, same stream → identical output, regardless
    /// of stream shape.
    #[test]
    fn rhhh_is_deterministic(seed in 1u64..200) {
        let lat = Lattice::ipv4_src_dst_bytes();
        let stream = make_stream(30_000, 9, 25, seed);
        let mut a = Rhhh::<u64>::new(lat.clone(), loose_config(seed));
        let mut b = Rhhh::<u64>::new(lat, loose_config(seed));
        for &k in &stream {
            a.update(k);
            b.update(k);
        }
        let (oa, ob) = (a.output(0.05), b.output(0.05));
        prop_assert_eq!(oa.len(), ob.len());
        for (x, y) in oa.iter().zip(&ob) {
            prop_assert_eq!(x.prefix, y.prefix);
            prop_assert_eq!(x.freq_upper, y.freq_upper);
        }
    }

    /// Weighted and unit updates agree when all weights are 1.
    #[test]
    fn unit_weight_equals_plain_update(seed in 1u64..200) {
        let lat = Lattice::ipv4_src_bytes();
        let stream = make_stream(20_000, 1, 20, seed);
        let mut plain = Rhhh::<u32>::new(lat.clone(), loose_config(seed));
        let mut weighted = Rhhh::<u32>::new(lat, loose_config(seed));
        for &k in &stream {
            plain.update(k as u32);
            weighted.update_weighted(k as u32, 1);
        }
        prop_assert_eq!(plain.total_updates(), weighted.total_updates());
        prop_assert_eq!(plain.total_weight(), weighted.total_weight());
        let (oa, ob) = (plain.output(0.05), weighted.output(0.05));
        prop_assert_eq!(oa.len(), ob.len());
    }
}
