//! Shard-merge differential suite.
//!
//! A K-shard pipeline partitions the stream by key hash, runs one RHHH
//! instance per shard through the geometric-skip batch path, and merges at
//! harvest. These tests pin the merge contract at the RHHH level:
//!
//! * the merged per-node summaries keep the Space Saving sandwich with the
//!   error of the K per-shard summaries *summed* (the bound the merge
//!   analysis promises — shard and merge costs no accuracy class, only a
//!   constant),
//! * the merged `Output(θ)` finds the same planted hierarchical heavy
//!   hitter a single instance over the whole stream finds — on random,
//!   Zipf-tailed and phase-change streams, for both Space Saving layouts,
//! * the `HhhAlgorithm`-level merge (through `Box<dyn …>`, the way a
//!   runtime-configured pipeline holds its workers) succeeds exactly when
//!   the two sides are the same algorithm over the same configuration.

use hhh_core::{CounterKind, HhhAlgorithm, MergeError, NodeEstimates, Rhhh, RhhhConfig};
use hhh_counters::{CompactSpaceSaving, FrequencyEstimator, SpaceSaving};
use hhh_hierarchy::{pack2, shard_of, Lattice, NodeId};
use hhh_traces::{TraceConfig, TraceGenerator};

struct Lcg(u64);
impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 16
    }
}

/// Uniform random keys plus the planted /16 → victim attack (30%).
fn random_stream(n: usize, seed: u64) -> Vec<u64> {
    let mut rng = Lcg(seed);
    (0..n)
        .map(|i| {
            if i % 10 < 3 {
                pack2(0x0A14_0000 | (rng.next() as u32 & 0xFFFF), 0x0808_0808)
            } else {
                pack2(rng.next() as u32, rng.next() as u32)
            }
        })
        .collect()
}

/// Zipf-tailed realistic keys (chicago16 generator) with the attack planted
/// on top — the flow-size law the paper's traces follow.
fn zipf_stream(n: usize, seed: u64) -> Vec<u64> {
    let mut gen = TraceGenerator::new(&TraceConfig::chicago16());
    let mut rng = Lcg(seed);
    (0..n)
        .map(|i| {
            if i % 10 < 3 {
                pack2(0x0A14_0000 | (rng.next() as u32 & 0xFFFF), 0x0808_0808)
            } else {
                gen.generate().key2()
            }
        })
        .collect()
}

/// Phase-change stream: the attack is entirely absent for the first 60% of
/// the stream, then bursts at 75% intensity — the regime where shards see
/// wildly different local mixes over time.
fn phase_stream(n: usize, seed: u64) -> Vec<u64> {
    let mut rng = Lcg(seed);
    let cut = n * 6 / 10;
    (0..n)
        .map(|i| {
            if i >= cut && i % 4 != 0 {
                pack2(0x0A14_0000 | (rng.next() as u32 & 0xFFFF), 0x0808_0808)
            } else {
                pack2(rng.next() as u32, rng.next() as u32)
            }
        })
        .collect()
}

fn test_config(v_scale: u64, seed: u64) -> RhhhConfig {
    RhhhConfig {
        epsilon_a: 0.005,
        epsilon_s: 0.02,
        delta_s: 0.05,
        v_scale,
        updates_per_packet: 1,
        seed,
    }
}

/// Partitions `keys` by key hash into `shards` instances (distinct seeds),
/// drives each through the batch path, and merges them all.
fn shard_and_merge<E: FrequencyEstimator<u64>>(
    lat: &Lattice<u64>,
    config: RhhhConfig,
    keys: &[u64],
    shards: usize,
) -> Rhhh<u64, E> {
    let mut parts: Vec<Rhhh<u64, E>> = (0..shards)
        .map(|i| {
            Rhhh::new(
                lat.clone(),
                RhhhConfig {
                    seed: config.seed ^ (0xD00D + i as u64 * 0x9E37),
                    ..config
                },
            )
        })
        .collect();
    let mut buckets: Vec<Vec<u64>> = vec![Vec::new(); shards];
    for &k in keys {
        buckets[shard_of(k, shards)].push(k);
    }
    for (part, bucket) in parts.iter_mut().zip(&buckets) {
        for chunk in bucket.chunks(8_192) {
            part.update_batch(chunk);
        }
    }
    let mut merged = parts.remove(0);
    for part in parts {
        merged.merge(part);
    }
    merged
}

/// The merged per-node summaries keep the counter-level sandwich with the
/// per-shard errors summed: `lower ≤ upper`, per-candidate error within the
/// summed deterministic bounds (`Σᵢ deliveredᵢ/cap ≤ delivered/cap`, plus
/// one flooring unit per shard), and guaranteed mass reconciling with the
/// accumulated delivered updates.
fn check_merged_node_sandwich<E: FrequencyEstimator<u64>>(keys: &[u64], shards: usize) {
    let lat = Lattice::ipv4_src_dst_bytes();
    let config = test_config(1, 0xA11CE);
    let merged = shard_and_merge::<E>(&lat, config, keys, shards);
    assert_eq!(
        merged.packets(),
        keys.len() as u64,
        "packet totals must sum"
    );
    assert_eq!(
        merged.total_weight(),
        keys.len() as u64,
        "weight totals must sum"
    );
    let cap = hhh_counters::counters_for(config.epsilon_a, config.epsilon_s) as u64;
    for node in 0..merged.h() as u16 {
        let node = NodeId(node);
        let delivered = merged.node_updates(node);
        let allow = delivered / cap + shards as u64;
        let mut guaranteed = 0u64;
        for c in merged.node_candidates(node) {
            assert!(c.lower <= c.upper, "sandwich inverted at {node:?}");
            assert!(
                c.upper - c.lower <= allow,
                "merged error {} beyond summed per-shard bounds {allow} at {node:?}",
                c.upper - c.lower
            );
            guaranteed += c.lower;
        }
        assert!(
            guaranteed <= delivered,
            "guaranteed {guaranteed} > delivered {delivered} at {node:?}"
        );
    }
}

#[test]
fn merged_node_summaries_keep_sandwich_stream_summary() {
    for (name, keys) in [
        ("random", random_stream(240_000, 7)),
        ("zipf", zipf_stream(240_000, 8)),
        ("phase", phase_stream(240_000, 9)),
    ] {
        for shards in [2usize, 4] {
            check_merged_node_sandwich::<SpaceSaving<u64>>(&keys, shards);
            let _ = name;
        }
    }
}

#[test]
fn merged_node_summaries_keep_sandwich_compact() {
    for keys in [
        random_stream(240_000, 17),
        zipf_stream(240_000, 18),
        phase_stream(240_000, 19),
    ] {
        for shards in [2usize, 4] {
            check_merged_node_sandwich::<CompactSpaceSaving<u64>>(&keys, shards);
        }
    }
}

/// End-to-end recall differential: the K-shard merged pipeline reports the
/// planted attack prefix whenever the single-instance run does — on all
/// three stream shapes, both layouts, both operating points.
fn check_merged_recall<E: FrequencyEstimator<u64>>(keys: &[u64], shards: usize, v_scale: u64) {
    let lat = Lattice::ipv4_src_dst_bytes();
    let config = test_config(v_scale, 0xBEE);
    let planted = |out: &[hhh_core::HeavyHitter<u64>]| {
        out.iter()
            .map(|h| h.prefix.display(&lat))
            .any(|s| s.contains("10.20.0.0/16") && s.contains("8.8.8.8/32"))
    };

    let mut single = Rhhh::<u64, E>::new(lat.clone(), config);
    for chunk in keys.chunks(8_192) {
        single.update_batch(chunk);
    }
    assert!(planted(&single.output(0.1)), "single instance lost attack");

    let merged = shard_and_merge::<E>(&lat, config, keys, shards);
    assert!(
        planted(&merged.output(0.1)),
        "{shards}-shard merged run lost the attack the single run found"
    );
}

#[test]
fn merged_output_matches_single_instance_recall() {
    for keys in [
        random_stream(400_000, 21),
        zipf_stream(400_000, 22),
        phase_stream(400_000, 23),
    ] {
        for shards in [2usize, 4] {
            check_merged_recall::<SpaceSaving<u64>>(&keys, shards, 1);
            check_merged_recall::<CompactSpaceSaving<u64>>(&keys, shards, 1);
        }
        // 10-RHHH: higher sampling variance, same recall requirement.
        check_merged_recall::<SpaceSaving<u64>>(&keys, 4, 10);
        check_merged_recall::<CompactSpaceSaving<u64>>(&keys, 4, 10);
    }
}

/// Merging must also commute with *what* gets counted: a merged run and a
/// single run see different RNG draw schedules, but the total recorded
/// update mass per node must agree within binomial noise (5σ), because both
/// realise the same per-packet selection law.
#[test]
fn merged_update_totals_match_selection_law() {
    let lat = Lattice::ipv4_src_dst_bytes();
    let keys = random_stream(300_000, 33);
    let config = test_config(10, 0xFEED);
    let merged = shard_and_merge::<SpaceSaving<u64>>(&lat, config, &keys, 4);
    let n = keys.len() as f64;
    let p = 0.1f64;
    let sigma = (n * p * (1.0 - p)).sqrt();
    let dev = (merged.total_updates() as f64 - n * p).abs();
    assert!(
        dev < 5.0 * sigma,
        "merged updates {} deviate {dev:.0} > 5σ from binomial mean",
        merged.total_updates()
    );
}

#[test]
fn rhhh_merge_rejects_incompatible_configs() {
    let lat = Lattice::ipv4_src_dst_bytes();
    let mut a = Rhhh::<u64>::new(lat.clone(), test_config(1, 1));
    // Different v_scale.
    let b = Rhhh::<u64>::new(lat.clone(), test_config(10, 2));
    assert!(matches!(a.try_merge(b), Err(MergeError::ConfigMismatch(_))));
    // Different lattice (coarser 16-bit granularity → different masks).
    let c = Rhhh::<u64>::new(
        Lattice::new(
            "other",
            vec![
                hhh_hierarchy::FieldSpec::new(32, 16),
                hhh_hierarchy::FieldSpec::new(32, 16),
            ],
        ),
        test_config(1, 3),
    );
    assert!(matches!(a.try_merge(c), Err(MergeError::ConfigMismatch(_))));
    // Different seed alone is fine — shards must use distinct seeds.
    let d = Rhhh::<u64>::new(lat, test_config(1, 99));
    assert!(a.try_merge(d).is_ok());
}

/// The dyn-dispatch surface: a pipeline that holds `Box<dyn HhhAlgorithm>`
/// workers (runtime counter selection via `CounterKind`) merges through the
/// trait exactly like the concrete types do.
#[test]
fn boxed_merge_survives_dyn_dispatch() {
    let lat = Lattice::ipv4_src_dst_bytes();
    let keys = random_stream(100_000, 44);
    for kind in [CounterKind::StreamSummary, CounterKind::Compact] {
        let mut a = kind.build_rhhh::<u64>(lat.clone(), test_config(1, 10));
        let mut b = kind.build_rhhh::<u64>(lat.clone(), test_config(1, 11));
        a.insert_batch(&keys[..50_000]);
        b.insert_batch(&keys[50_000..]);
        a.merge(b).expect("same kind and config must merge");
        assert_eq!(a.packets(), 100_000);
        assert!(
            !a.query(0.1).is_empty(),
            "{}: merged dyn instance must answer queries",
            kind.label()
        );
    }
}

#[test]
fn boxed_merge_rejects_cross_kind() {
    let lat = Lattice::ipv4_src_dst_bytes();
    // RHHH[stream-summary] vs RHHH[compact]: different erased types.
    let mut a = CounterKind::StreamSummary.build_rhhh::<u64>(lat.clone(), test_config(1, 1));
    let b = CounterKind::Compact.build_rhhh::<u64>(lat, test_config(1, 2));
    assert!(matches!(
        a.merge(b),
        Err(MergeError::AlgorithmMismatch { .. })
    ));
    // `self` must be untouched by the failed merge.
    assert_eq!(a.packets(), 0);
}

/// `Rhhh::merge_many` (the K-way harvest combine) against the pairwise
/// fold on the same shard set: totals agree exactly, and every node's
/// per-key upper bound is no looser than the fold's — the K-way combine
/// pads one-sided keys with per-shard minima instead of the fold's
/// growing intermediate merged minima.
#[test]
fn rhhh_merge_many_no_looser_than_pairwise_fold() {
    let lat = Lattice::ipv4_src_dst_bytes();
    let keys = zipf_stream(200_000, 55);
    for shards in [2usize, 4, 8] {
        let build = |seed_base: u64| -> Vec<Rhhh<u64, CompactSpaceSaving<u64>>> {
            let mut parts: Vec<Rhhh<u64, CompactSpaceSaving<u64>>> = (0..shards)
                .map(|i| {
                    Rhhh::new(
                        lat.clone(),
                        RhhhConfig {
                            seed: seed_base ^ (i as u64 * 0x9E37),
                            ..test_config(1, 0)
                        },
                    )
                })
                .collect();
            let mut buckets: Vec<Vec<u64>> = vec![Vec::new(); shards];
            for &k in &keys {
                buckets[shard_of(k, shards)].push(k);
            }
            for (part, bucket) in parts.iter_mut().zip(&buckets) {
                part.update_batch(bucket);
            }
            parts
        };
        let pairwise = {
            let mut parts = build(0xF01D);
            let mut merged = parts.remove(0);
            for part in parts {
                merged.merge(part);
            }
            merged
        };
        let kway = {
            let mut parts = build(0xF01D);
            let mut merged = parts.remove(0);
            merged.merge_many(parts);
            merged
        };
        assert_eq!(kway.packets(), pairwise.packets(), "{shards} shards");
        assert_eq!(
            kway.total_updates(),
            pairwise.total_updates(),
            "{shards} shards: same shard streams, same per-node updates"
        );
        for node in 0..25u16 {
            let node = NodeId(node);
            for c in kway.node_candidates(node) {
                assert!(
                    c.upper <= pairwise.node_upper(node, &c.key),
                    "{shards} shards, {node:?}: K-way upper {} looser than \
                     fold's {} for {:?}",
                    c.upper,
                    pairwise.node_upper(node, &c.key),
                    c.key
                );
            }
        }
        // The K-way result still answers the query and finds the attack.
        let out = kway.output(0.1);
        let rendered: Vec<String> = out.iter().map(|h| h.prefix.display(&lat)).collect();
        assert!(
            rendered
                .iter()
                .any(|s| s.contains("10.20.0.0/16") && s.contains("8.8.8.8/32")),
            "{shards} shards: K-way merge lost the attack in {rendered:?}"
        );
    }
}

/// `try_merge_many` validates every input before mutating: one bad shard
/// in the middle leaves `self` untouched.
#[test]
fn rhhh_merge_many_rejects_any_incompatible_input() {
    let lat = Lattice::ipv4_src_dst_bytes();
    let mut a = Rhhh::<u64>::new(lat.clone(), test_config(1, 1));
    a.update_batch(&random_stream(10_000, 3));
    let packets_before = a.packets();
    let good = Rhhh::<u64>::new(lat.clone(), test_config(1, 2));
    let bad = Rhhh::<u64>::new(lat, test_config(10, 3)); // wrong v_scale
    assert!(matches!(
        a.try_merge_many(vec![good, bad]),
        Err(MergeError::ConfigMismatch(_))
    ));
    assert_eq!(a.packets(), packets_before, "failed merge must not mutate");
}
