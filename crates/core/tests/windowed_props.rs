//! Pane-ring sliding-window differential suite.
//!
//! Pins the three contracts of `WindowedRhhh`:
//!
//! * **Rotation-boundary invariants** — however the stream is chunked,
//!   pane boundaries land at exactly the packet indices the rotation
//!   period dictates: completed-pane counts, active fill, covered range
//!   and lifetime totals all reconcile, and the merged window's packet
//!   count is exactly the covered range's width.
//! * **Batch/scalar differential equivalence across pane boundaries** —
//!   a batch straddling pane boundaries is bit-identical to feeding the
//!   boundary-aligned sub-batches (the split is exact, both counter
//!   layouts), and the batch feed matches the scalar feed structurally
//!   (same boundaries) and statistically (same selection law, same
//!   planted-HHH recall).
//! * **Query-coverage sandwich** — on random, Zipf-tailed and
//!   phase-change streams, every windowed estimate stays within the
//!   *summed per-pane* Space Saving + sampling bounds of an exact oracle
//!   computed over precisely the covered packet range, and the in-window
//!   planted attack is always reported while out-of-window traffic ages
//!   out.

use hhh_core::{HhhAlgorithm, RhhhConfig, WindowedRhhh};
use hhh_counters::{CompactSpaceSaving, FrequencyEstimator, SpaceSaving};
use hhh_hierarchy::{pack2, Lattice};
use hhh_traces::{TraceConfig, TraceGenerator};

struct Lcg(u64);
impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 16
    }
}

/// Uniform random keys plus the planted /16 → victim attack (30%).
fn random_stream(n: usize, seed: u64) -> Vec<u64> {
    let mut rng = Lcg(seed);
    (0..n)
        .map(|i| {
            if i % 10 < 3 {
                pack2(0x0A14_0000 | (rng.next() as u32 & 0xFFFF), 0x0808_0808)
            } else {
                pack2(rng.next() as u32, rng.next() as u32)
            }
        })
        .collect()
}

/// Zipf-tailed realistic keys (chicago16 generator) with the attack on top.
fn zipf_stream(n: usize, seed: u64) -> Vec<u64> {
    let mut gen = TraceGenerator::new(&TraceConfig::chicago16());
    let mut rng = Lcg(seed);
    (0..n)
        .map(|i| {
            if i % 10 < 3 {
                pack2(0x0A14_0000 | (rng.next() as u32 & 0xFFFF), 0x0808_0808)
            } else {
                gen.generate().key2()
            }
        })
        .collect()
}

/// Phase-change stream: clean for the first 60%, then the attack bursts at
/// 75% intensity — the regime where panes see wildly different mixes.
fn phase_stream(n: usize, seed: u64) -> Vec<u64> {
    let mut rng = Lcg(seed);
    let cut = n * 6 / 10;
    (0..n)
        .map(|i| {
            if i >= cut && i % 4 != 0 {
                pack2(0x0A14_0000 | (rng.next() as u32 & 0xFFFF), 0x0808_0808)
            } else {
                pack2(rng.next() as u32, rng.next() as u32)
            }
        })
        .collect()
}

/// ψ ≈ 1.96·25/4e-4 ≈ 122.5k for the 2D lattice at `v_scale = 1` — every
/// window below is at least 160k so the debug ψ check binds honestly.
fn test_config(v_scale: u64, seed: u64) -> RhhhConfig {
    RhhhConfig {
        epsilon_a: 0.005,
        epsilon_s: 0.02,
        delta_s: 0.05,
        v_scale,
        updates_per_packet: 1,
        seed,
    }
}

// ---------------------------------------------------------------------------
// Rotation-boundary invariants
// ---------------------------------------------------------------------------

/// Feeds `n` packets through an arbitrary mix of scalar and batch calls and
/// checks that every piece of pane bookkeeping reconciles with the packet
/// arithmetic — pane packet counts sum to the total fed.
fn check_rotation_invariants<E: FrequencyEstimator<u64> + Clone>(
    window: u64,
    panes: usize,
    chunks: &[usize],
) {
    let lat = Lattice::ipv4_src_dst_bytes();
    let mut w = WindowedRhhh::<u64, E>::new(lat, test_config(1, 3), window, panes);
    let pane_len = window.div_ceil(panes as u64);
    assert_eq!(w.pane_len(), pane_len);
    let mut rng = Lcg(11);
    let mut fed = 0u64;
    for (i, &chunk) in chunks.iter().enumerate() {
        if i % 2 == 0 {
            let keys: Vec<u64> = (0..chunk).map(|_| rng.next()).collect();
            w.update_batch(&keys);
        } else {
            for _ in 0..chunk {
                w.update(rng.next());
            }
        }
        fed += chunk as u64;

        assert_eq!(w.total_packets(), fed, "lifetime total drifted");
        assert_eq!(w.panes_completed(), fed / pane_len, "rotation count");
        assert_eq!(w.current_fill(), fed % pane_len, "active fill");
        let retained = (fed / pane_len).min(panes as u64);
        assert_eq!(
            w.covered_packets(),
            retained * pane_len,
            "covered = retained panes × pane length"
        );
        let (start, end) = w.covered_range();
        assert_eq!(end, fed - w.current_fill(), "window ends at last boundary");
        assert_eq!(end - start, w.covered_packets(), "range width = covered");
        // The merged answer's own packet ledger equals the covered range:
        // pane packet counts sum to the total the window claims.
        if let Some(merged) = w.merged_window() {
            assert_eq!(merged.packets(), w.covered_packets());
            assert_eq!(merged.total_weight(), w.covered_packets());
        } else {
            assert_eq!(w.covered_packets(), 0);
        }
    }
}

#[test]
fn rotation_invariants_hold_for_any_chunking() {
    // Chunk sizes straddle pane boundaries in every way: sub-pane, exact
    // pane, multi-pane, and a long tail of odd sizes.
    let chunkings: &[&[usize]] = &[
        &[200_000],
        &[40_000; 6],
        &[39_999, 40_001, 1, 79_999, 40_000],
        &[7_777; 31],
        &[1, 39_999, 120_000, 3, 79_997],
    ];
    for chunks in chunkings {
        check_rotation_invariants::<SpaceSaving<u64>>(160_000, 4, chunks);
    }
    check_rotation_invariants::<CompactSpaceSaving<u64>>(160_000, 4, &[7_777; 31]);
    check_rotation_invariants::<SpaceSaving<u64>>(160_000, 1, &[39_999, 40_001, 80_000]);
    check_rotation_invariants::<SpaceSaving<u64>>(160_001, 8, &[20_001; 10]);
}

// ---------------------------------------------------------------------------
// Batch/scalar differential equivalence across pane boundaries
// ---------------------------------------------------------------------------

/// Two windowed instances are bit-identical: same pane bookkeeping and
/// identical outputs from both query paths.
fn assert_bit_identical<E: FrequencyEstimator<u64> + Clone>(
    a: &WindowedRhhh<u64, E>,
    b: &WindowedRhhh<u64, E>,
) {
    assert_eq!(a.panes_completed(), b.panes_completed());
    assert_eq!(a.current_fill(), b.current_fill());
    let (oa, ob) = (a.query_fresh(0.05), b.query_fresh(0.05));
    match (oa, ob) {
        (None, None) => {}
        (Some(x), Some(y)) => {
            assert_eq!(x.len(), y.len(), "windowed outputs diverged");
            for (p, q) in x.iter().zip(&y) {
                assert_eq!(p.prefix, q.prefix);
                assert_eq!(p.freq_upper, q.freq_upper);
                assert_eq!(p.freq_lower, q.freq_lower);
            }
        }
        _ => panic!("one side has a window, the other does not"),
    }
    let (ca, cb) = (a.query_current(0.05), b.query_current(0.05));
    assert_eq!(ca.len(), cb.len(), "active panes diverged");
    for (p, q) in ca.iter().zip(&cb) {
        assert_eq!(p.prefix, q.prefix);
        assert_eq!(p.freq_upper, q.freq_upper);
    }
}

/// A batch straddling pane boundaries must be *bit-identical* to feeding
/// the boundary-aligned sub-batches separately: the internal split is
/// exact, so both sides hand the same sub-slices to the same panes and the
/// RNG streams walk in lockstep.
fn check_straddling_batch_splits_exactly<E: FrequencyEstimator<u64> + Clone>(v_scale: u64) {
    let lat = Lattice::ipv4_src_dst_bytes();
    let (window, panes) = (160_000u64, 4usize);
    let pane_len = window / panes as u64; // 40k
    let keys = zipf_stream(330_000, 21);
    // ε_s loose enough that the 160k window passes ψ even at V = 10H
    // (ψ = 1.96·250/0.06² ≈ 136k).
    let config = RhhhConfig {
        epsilon_s: 0.06,
        ..test_config(v_scale, 0x5EED)
    };

    let mut straddling = WindowedRhhh::<u64, E>::new(lat.clone(), config, window, panes);
    // Chunks chosen to straddle: 90k crosses two boundaries at once; the
    // rest land mid-pane.
    for chunk in keys.chunks(90_000) {
        straddling.update_batch(chunk);
    }

    let mut aligned = WindowedRhhh::<u64, E>::new(lat, config, window, panes);
    // The same chunks pre-split by hand at each pane boundary, so no call
    // ever crosses one: the straddling side's internal split must hand the
    // panes exactly these sub-slices, making the two runs bit-identical.
    for chunk in keys.chunks(90_000) {
        let mut i = 0usize;
        while i < chunk.len() {
            let fill = (aligned.total_packets() % pane_len) as usize;
            let take = (pane_len as usize - fill).min(chunk.len() - i);
            aligned.update_batch(&chunk[i..i + take]);
            i += take;
        }
    }

    assert!(straddling.panes_completed() >= 8, "stream spans many panes");
    assert_bit_identical(&straddling, &aligned);
}

#[test]
fn straddling_batches_split_exactly_stream_summary() {
    check_straddling_batch_splitting_both_scales::<SpaceSaving<u64>>();
}

#[test]
fn straddling_batches_split_exactly_compact() {
    check_straddling_batch_splitting_both_scales::<CompactSpaceSaving<u64>>();
}

fn check_straddling_batch_splitting_both_scales<E: FrequencyEstimator<u64> + Clone>() {
    check_straddling_batch_splits_exactly::<E>(1);
    check_straddling_batch_splits_exactly::<E>(10);
}

/// The batch and scalar feeds realize the same per-packet selection law,
/// so across pane boundaries they must agree structurally (identical pane
/// boundaries) and statistically (update rate ≈ H/V per pane, and the
/// same planted attack recalled from the same covered window).
fn check_batch_scalar_equivalence<E: FrequencyEstimator<u64> + Clone>(keys: &[u64]) {
    let lat = Lattice::ipv4_src_dst_bytes();
    let (window, panes) = (160_000u64, 4usize);
    let config = test_config(1, 0xFACE);

    let mut scalar = WindowedRhhh::<u64, E>::new(lat.clone(), config, window, panes);
    for &k in keys {
        scalar.update(k);
    }
    let mut batch = WindowedRhhh::<u64, E>::new(lat.clone(), config, window, panes);
    for chunk in keys.chunks(8_192) {
        batch.update_batch(chunk);
    }

    assert_eq!(scalar.panes_completed(), batch.panes_completed());
    assert_eq!(scalar.current_fill(), batch.current_fill());
    assert_eq!(scalar.covered_range(), batch.covered_range());

    let (ms, mb) = (
        scalar.merged_window().expect("window complete"),
        batch.merged_window().expect("window complete"),
    );
    // V = H: both paths deliver exactly one update per covered packet.
    assert_eq!(ms.total_updates(), ms.packets());
    assert_eq!(mb.total_updates(), mb.packets());

    let planted = |out: &[hhh_core::HeavyHitter<u64>]| {
        out.iter()
            .map(|h| h.prefix.display(&lat))
            .any(|s| s.contains("10.20.0.0/16") && s.contains("8.8.8.8/32"))
    };
    assert!(
        planted(&ms.output(0.1)),
        "scalar windowed feed lost the attack"
    );
    assert!(
        planted(&mb.output(0.1)),
        "batch windowed feed lost the attack"
    );
}

#[test]
fn batch_and_scalar_windowed_feeds_agree() {
    for keys in [
        random_stream(250_000, 5),
        zipf_stream(250_000, 6),
        phase_stream(400_000, 7),
    ] {
        check_batch_scalar_equivalence::<SpaceSaving<u64>>(&keys);
        check_batch_scalar_equivalence::<CompactSpaceSaving<u64>>(&keys);
    }
}

// ---------------------------------------------------------------------------
// Query-coverage sandwich vs an exact oracle over the covered range
// ---------------------------------------------------------------------------

/// Every windowed estimate must sit within the summed per-pane bounds of
/// the exact frequency over precisely the covered packet range: counter
/// errors add across panes to `ε·W_cov` and the G panes' independent
/// sampling slacks add in quadrature to `√G ×` the merged slack.
fn check_query_coverage_sandwich<E: FrequencyEstimator<u64> + Clone>(keys: &[u64], expect: bool) {
    let lat = Lattice::ipv4_src_dst_bytes();
    let (window, panes) = (160_000u64, 4usize);
    let config = test_config(1, 0xB0B);
    let mut w = WindowedRhhh::<u64, E>::new(lat.clone(), config, window, panes);
    for chunk in keys.chunks(16_384) {
        w.update_batch(chunk);
    }
    let (start, end) = w.covered_range();
    assert_eq!(end - start, window, "stream long enough for full coverage");
    let mut oracle = hhh_core::ExactHhh::new(lat.clone());
    for &k in &keys[start as usize..end as usize] {
        oracle.insert(k);
    }

    let merged = w.merged_window().expect("window complete");
    let covered = merged.packets() as f64;
    // Summed per-pane bounds: Σᵢ ε·Nᵢ = ε·W_cov, and Σᵢ slackᵢ =
    // G·2Z√(V·W/G) = √G · slack(W) (slack ∝ √N, panes are equal-sized).
    let eps_total = config.epsilon_a + config.epsilon_s;
    let allow = eps_total * covered + (panes as f64).sqrt() * merged.slack();

    let out = merged.output(0.1);
    if expect {
        assert!(!out.is_empty(), "windowed query found nothing");
    }
    for h in &out {
        let truth = oracle.frequency(&h.prefix) as f64;
        assert!(
            h.freq_upper + allow >= truth,
            "{}: upper {} below oracle {truth} minus summed bound {allow}",
            h.prefix.display(&lat),
            h.freq_upper
        );
        assert!(
            h.freq_lower <= truth + allow,
            "{}: lower {} above oracle {truth} plus summed bound {allow}",
            h.prefix.display(&lat),
            h.freq_lower
        );
        assert!(
            (h.freq_upper - truth).abs() <= allow,
            "{}: estimate {} strays {} from oracle {truth}, beyond {allow}",
            h.prefix.display(&lat),
            h.freq_upper,
            (h.freq_upper - truth).abs()
        );
    }

    let has_attack = out
        .iter()
        .map(|h| h.prefix.display(&lat))
        .any(|s| s.contains("10.20.0.0/16"));
    assert_eq!(
        has_attack, expect,
        "attack visibility must match its presence in the covered window"
    );
}

#[test]
fn windowed_estimates_within_summed_per_pane_bounds() {
    // The attack rides the whole stream (random/zipf) or only its recent
    // 40% (phase) — in all three the covered window contains it.
    for keys in [
        random_stream(250_000, 31),
        zipf_stream(250_000, 32),
        phase_stream(400_000, 33),
    ] {
        check_query_coverage_sandwich::<SpaceSaving<u64>>(&keys, true);
        check_query_coverage_sandwich::<CompactSpaceSaving<u64>>(&keys, true);
    }
    // Inverted phase: the attack rode only the *old* traffic; the covered
    // window is clean and the answer must not resurrect it.
    let mut inverted = phase_stream(400_000, 34);
    inverted.reverse();
    check_query_coverage_sandwich::<SpaceSaving<u64>>(&inverted, false);
    check_query_coverage_sandwich::<CompactSpaceSaving<u64>>(&inverted, false);
}
