//! Exact hierarchical heavy hitters — the ground truth for the evaluation.
//!
//! Maintains one exact hash map per lattice node (every packet updates all
//! `H` nodes, so this is deliberately the expensive thing the paper avoids)
//! and extracts the exact HHH set by the level-by-level procedure of
//! Definition 8, using the exact conditioned frequencies of Lemma 6.9 (one
//! dimension) and Lemma 6.13 (two dimensions, inclusion–exclusion over
//! pairwise glbs — the conditioned-count definition of Mitzenmacher et al.
//! that the paper's analysis builds on).
//!
//! The evaluation metrics (accuracy-error ratio, coverage error,
//! false-positive rate — Figures 2–4) all compare an algorithm's output
//! against this structure.

use std::collections::HashMap;

use hhh_counters::IntHashBuilder;
use hhh_hierarchy::{KeyBits, Lattice, NodeId, Prefix};

use crate::output::HeavyHitter;

type Map<K> = HashMap<K, u64, IntHashBuilder>;

/// Exact per-node frequency tables plus exact HHH extraction.
#[derive(Debug, Clone)]
pub struct ExactHhh<K: KeyBits> {
    lattice: Lattice<K>,
    counts: Vec<Map<K>>,
    packets: u64,
}

impl<K: KeyBits> ExactHhh<K> {
    /// Creates an empty ground-truth accumulator for a lattice.
    #[must_use]
    pub fn new(lattice: Lattice<K>) -> Self {
        let counts = (0..lattice.num_nodes()).map(|_| Map::default()).collect();
        Self {
            lattice,
            counts,
            packets: 0,
        }
    }

    /// The lattice this instance counts over.
    #[must_use]
    pub fn lattice(&self) -> &Lattice<K> {
        &self.lattice
    }

    /// Processes a packet: every lattice node's map is updated (O(H)).
    pub fn insert(&mut self, key: K) {
        self.packets += 1;
        for node in self.lattice.node_ids() {
            let masked = self.lattice.mask_key(node, key);
            *self.counts[node.index()].entry(masked).or_insert(0) += 1;
        }
    }

    /// Number of packets processed (`N`).
    #[must_use]
    pub fn packets(&self) -> u64 {
        self.packets
    }

    /// Exact frequency `f_p` of a prefix (Definition 3).
    #[must_use]
    pub fn frequency(&self, p: &Prefix<K>) -> u64 {
        self.counts[p.node.index()]
            .get(&p.key)
            .copied()
            .unwrap_or(0)
    }

    /// Exact conditioned frequency `C_{p|P}`, computed via Lemma 6.9 (one
    /// dimension) / Lemma 6.13 (two dimensions).
    ///
    /// # Semantics
    ///
    /// When some element of `P` generalizes `p`, all of `p`'s mass is
    /// already covered and this returns 0 (Definition 6 directly). In one
    /// dimension the formula then equals Definition 6's set semantics
    /// exactly. In two dimensions it equals set semantics whenever every
    /// element of `P` is either a descendant of `p` or disjoint from it —
    /// which bottom-up HHH extraction guarantees for its own queries up to
    /// the incomparable-overlap case, where the formula (like the paper's
    /// and Mitzenmacher et al.'s, which *define* conditioned counts this
    /// way) is conservative: it counts overlap mass shared with
    /// incomparable selected prefixes that pure set semantics would
    /// exclude. The `conditioned_semantics` integration test pins down all
    /// three regimes against a brute-force Definition 6.
    #[must_use]
    pub fn conditioned(&self, p: &Prefix<K>, selected: &[Prefix<K>]) -> i64 {
        // Fully covered: some selected prefix generalizes p.
        if selected.iter().any(|h| h.generalizes(p, &self.lattice)) {
            return 0;
        }
        // G(p|P): maximal strict descendants of p within the set.
        let descendants: Vec<Prefix<K>> = selected
            .iter()
            .copied()
            .filter(|h| p.strictly_generalizes(h, &self.lattice))
            .collect();
        let g: Vec<Prefix<K>> = descendants
            .iter()
            .copied()
            .filter(|h| {
                !descendants
                    .iter()
                    .any(|h2| h2 != h && h2.strictly_generalizes(h, &self.lattice))
            })
            .collect();

        let mut c = self.frequency(p) as i64;
        for h in &g {
            c -= self.frequency(h) as i64;
        }
        if self.lattice.dims() > 1 {
            for i in 0..g.len() {
                for j in (i + 1)..g.len() {
                    if let Some(q) = g[i].glb(&g[j], &self.lattice) {
                        let covered = g
                            .iter()
                            .enumerate()
                            .any(|(k, h3)| k != i && k != j && h3.generalizes(&q, &self.lattice));
                        if !covered {
                            c += self.frequency(&q) as i64;
                        }
                    }
                }
            }
        }
        c
    }

    /// Exact HHH extraction per Definition 8: level by level from fully
    /// specified to fully general, admitting prefixes whose exact
    /// conditioned frequency (w.r.t. the already-selected set) reaches
    /// `θ·N`.
    #[must_use]
    pub fn hhh(&self, theta: f64) -> Vec<Prefix<K>> {
        assert!(theta > 0.0 && theta <= 1.0, "theta must lie in (0, 1]");
        let threshold = theta * self.packets as f64;
        let mut selected: Vec<Prefix<K>> = Vec::new();
        for level in 0..=self.lattice.depth() {
            for &node in self.lattice.nodes_at_level(level) {
                for (&key, &f) in &self.counts[node.index()] {
                    // Cheap pre-filter: C_{p|P} ≤ f_p, so prefixes below the
                    // threshold frequency can never qualify.
                    if (f as f64) < threshold {
                        continue;
                    }
                    let p = Prefix { key, node };
                    if self.conditioned(&p, &selected) as f64 >= threshold {
                        selected.push(p);
                    }
                }
            }
        }
        selected
    }

    /// Convenience wrapper: the exact HHH set rendered as [`HeavyHitter`]
    /// records with exact frequencies (both bounds equal the truth).
    #[must_use]
    pub fn hhh_records(&self, theta: f64) -> Vec<HeavyHitter<K>> {
        let mut selected: Vec<Prefix<K>> = Vec::new();
        let mut records = Vec::new();
        let threshold = theta * self.packets as f64;
        for level in 0..=self.lattice.depth() {
            for &node in self.lattice.nodes_at_level(level) {
                for (&key, &f) in &self.counts[node.index()] {
                    if (f as f64) < threshold {
                        continue;
                    }
                    let p = Prefix { key, node };
                    let c = self.conditioned(&p, &selected);
                    if c as f64 >= threshold {
                        selected.push(p);
                        records.push(HeavyHitter {
                            prefix: p,
                            freq_lower: f as f64,
                            freq_upper: f as f64,
                            conditioned: c as f64,
                        });
                    }
                }
            }
        }
        records
    }

    /// Number of distinct keys tracked at a node (diagnostics / memory
    /// accounting in the harness).
    #[must_use]
    pub fn distinct_at(&self, node: NodeId) -> usize {
        self.counts[node.index()].len()
    }

    /// All prefixes at `node` with exact frequency at least `threshold` —
    /// the candidate enumeration the coverage metric sweeps.
    #[must_use]
    pub fn heavy_prefixes_at(&self, node: NodeId, threshold: f64) -> Vec<Prefix<K>> {
        self.counts[node.index()]
            .iter()
            .filter(|(_, &f)| f as f64 >= threshold)
            .map(|(&key, _)| Prefix { key, node })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hhh_hierarchy::pack2;

    fn ip(a: u8, b: u8, c: u8, d: u8) -> u32 {
        u32::from_be_bytes([a, b, c, d])
    }

    #[test]
    fn frequencies_aggregate_up_the_hierarchy() {
        let mut ex = ExactHhh::new(hhh_hierarchy::Lattice::ipv4_src_bytes());
        for _ in 0..5 {
            ex.insert(ip(10, 1, 2, 3));
        }
        for _ in 0..3 {
            ex.insert(ip(10, 1, 9, 9));
        }
        for _ in 0..2 {
            ex.insert(ip(11, 0, 0, 1));
        }
        let lat = ex.lattice().clone();
        let full = Prefix::of(&lat, lat.node_by_spec(&[4]), ip(10, 1, 2, 3));
        let slash16 = Prefix::of(&lat, lat.node_by_spec(&[2]), ip(10, 1, 0, 0));
        let slash8 = Prefix::of(&lat, lat.node_by_spec(&[1]), ip(10, 0, 0, 0));
        let root = Prefix::of(&lat, lat.root(), 0);
        assert_eq!(ex.frequency(&full), 5);
        assert_eq!(ex.frequency(&slash16), 8);
        assert_eq!(ex.frequency(&slash8), 8);
        assert_eq!(ex.frequency(&root), 10);
    }

    #[test]
    fn paper_worked_example() {
        // θN = 100; f(101.*) = 108 of which 102 under 101.102.*: only the
        // /16 is an HHH (Section 3.1).
        let lat = hhh_hierarchy::Lattice::ipv4_src_bytes();
        let mut ex = ExactHhh::new(lat);
        // 102 packets in 101.102.0.0/16, spread thin so no /24 or /32
        // qualifies (θN = 100).
        for i in 0..102u32 {
            ex.insert(ip(101, 102, (i % 64) as u8, (i / 64) as u8));
        }
        // 6 more packets elsewhere in 101.0.0.0/8.
        for i in 0..6u32 {
            ex.insert(ip(101, (i + 110) as u8, 0, 0));
        }
        // Pad to N = 10_000 with scattered noise outside 101/8.
        let mut x = 1u64;
        for _ in 0..(10_000 - 108) {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let v = (x >> 16) as u32;
            let key = if (v >> 24) == 101 { v ^ 0x8000_0000 } else { v };
            ex.insert(key);
        }
        assert_eq!(ex.packets(), 10_000);

        let hhh = ex.hhh(0.01);
        let lat = ex.lattice();
        let rendered: Vec<String> = hhh.iter().map(|p| p.display(lat)).collect();
        assert!(
            rendered.contains(&"101.102.0.0/16".to_string()),
            "got {rendered:?}"
        );
        assert!(
            !rendered.contains(&"101.0.0.0/8".to_string()),
            "the /8 adds only 6 packets beyond the /16: {rendered:?}"
        );
        // The root is always an HHH (its conditioned count is the residual
        // mass, ~9892 ≥ 100).
        assert!(rendered.contains(&"*".to_string()), "got {rendered:?}");
    }

    #[test]
    fn conditioned_subtracts_descendants_1d() {
        let lat = hhh_hierarchy::Lattice::ipv4_src_bytes();
        let mut ex = ExactHhh::new(lat);
        for _ in 0..10 {
            ex.insert(ip(5, 5, 5, 5));
        }
        for _ in 0..4 {
            ex.insert(ip(5, 5, 7, 7));
        }
        let lat = ex.lattice().clone();
        let p16 = Prefix::of(&lat, lat.node_by_spec(&[2]), ip(5, 5, 0, 0));
        let p32 = Prefix::of(&lat, lat.node_by_spec(&[4]), ip(5, 5, 5, 5));
        assert_eq!(ex.conditioned(&p16, &[]), 14);
        assert_eq!(ex.conditioned(&p16, &[p32]), 4);
    }

    #[test]
    fn conditioned_inclusion_exclusion_2d() {
        let lat = hhh_hierarchy::Lattice::ipv4_src_dst_bytes();
        let mut ex = ExactHhh::new(lat);
        // 6 packets from 10.1.x to 20.1.x (counted by both descendants),
        // 3 from 10.1.x to 99.x (only h1), 2 from 77.x to 20.1.x (only h2).
        for i in 0..6u32 {
            ex.insert(pack2(ip(10, 1, i as u8, 0), ip(20, 1, 0, i as u8)));
        }
        for i in 0..3u32 {
            ex.insert(pack2(ip(10, 1, 0, i as u8), ip(99, 0, 0, 1)));
        }
        for i in 0..2u32 {
            ex.insert(pack2(ip(77, 0, 0, i as u8), ip(20, 1, 2, 3)));
        }
        let lat = ex.lattice().clone();
        let h1 = Prefix::of(&lat, lat.node_by_spec(&[2, 0]), pack2(ip(10, 1, 0, 0), 0)); // (10.1.*, *) = 9
        let h2 = Prefix::of(&lat, lat.node_by_spec(&[0, 2]), pack2(0, ip(20, 1, 0, 0))); // (*, 20.1.*) = 8
        let root = Prefix::of(&lat, lat.root(), 0);
        assert_eq!(ex.frequency(&h1), 9);
        assert_eq!(ex.frequency(&h2), 8);
        // C_root|{h1,h2} = 11 − 9 − 8 + f(glb) where glb = (10.1.*, 20.1.*)
        // = 6 → 0.
        assert_eq!(ex.conditioned(&root, &[h1, h2]), 0);
    }

    #[test]
    fn hhh_empty_stream_is_empty() {
        let ex = ExactHhh::new(hhh_hierarchy::Lattice::ipv4_src_bytes());
        assert!(ex.hhh(0.1).is_empty());
    }

    #[test]
    fn records_match_prefix_set() {
        let mut ex = ExactHhh::new(hhh_hierarchy::Lattice::ipv4_src_bytes());
        let mut x = 5u64;
        for i in 0..5_000u64 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(7);
            let key = if i % 4 == 0 {
                ip(50, 60, 0, 0) | ((x as u32) & 0xFFFF)
            } else {
                x as u32
            };
            ex.insert(key);
        }
        let set = ex.hhh(0.05);
        let records = ex.hhh_records(0.05);
        assert_eq!(set.len(), records.len());
        for (p, r) in set.iter().zip(&records) {
            assert_eq!(*p, r.prefix);
            assert_eq!(r.freq_lower, r.freq_upper);
            assert_eq!(r.freq_lower, ex.frequency(p) as f64);
        }
    }
}
