//! Pane-ring sliding-window RHHH for continuous monitoring.
//!
//! The paper sets the performance parameter V for a fixed measurement
//! interval ("When the minimal measurement interval is known in advance,
//! the parameter V can be set to satisfy correctness at the end of the
//! measurement", Section 6.3). Operational deployments need *rolling*
//! answers: "what are the HHHs over the last W packets, right now?".
//!
//! # The pane ring
//!
//! [`WindowedRhhh`] approximates a W-packet sliding window with a ring of
//! `G` sub-epoch **panes**, each an independent [`Rhhh`] instance over
//! `⌈W/G⌉` packets:
//!
//! * the **active** pane absorbs updates — through the scalar path or the
//!   geometric-skip [`Rhhh::update_batch`] path (batches that straddle a
//!   pane boundary are split at the boundary, so pane attribution is
//!   exact);
//! * every `⌈W/G⌉` packets the ring **rotates**: the active pane joins the
//!   completed set, the oldest completed pane beyond `G` is dropped, and a
//!   fresh pane (fresh deterministic seed) starts absorbing;
//! * a **query** combines the last `G` completed panes in a single K-way
//!   [`Rhhh::merge_many`] pass and runs `Output(θ)` on the result.
//!
//! # Coverage and staleness
//!
//! Once `G` panes have completed, every query covers exactly
//! `G·⌈W/G⌉ ≥ W` packets, ending between `0` and `⌈W/G⌉` packets ago (the
//! active pane's fill is the staleness). The covered interval therefore
//! always spans `[W, W + W/G)` packets counted back from "now" — against
//! the classic two-epoch jumping window's `[W, 2W)`, the slop shrinks from
//! a full window to one pane. `G = 1` recovers the jumping window.
//!
//! # Accuracy
//!
//! Each pane is an independent RHHH instance, so the merge analysis of
//! [`Rhhh::try_merge_many`] applies verbatim: per-pane counter errors add
//! (`Σᵢ ε·Nᵢ = ε·W` — the same class as one instance over the window) and
//! the panes' independent sampling errors add in variance, which the
//! merged instance's `slack()` over the covered `N` charges. The per-query
//! error is bounded by the *summed per-pane bounds*, pinned by the
//! `windowed_props` suite against an exact oracle over the covered range.
//! Convergence of the merged answer needs the covered window to pass ψ,
//! which [`WindowedRhhh::new`] checks in debug builds.
//!
//! # Query cost and the cached in-flight merge
//!
//! The K-way combine costs ≈ 40–115 µs per node instance — ~1.1 ms per
//! 100k-packet pane for the 25-node 2D byte lattice at ε = 0.001, ~4.4 ms
//! for a G = 4 ring over W = 400k, scaling ≈ linearly in G (measured:
//! `windowed_throughput` bench group and the `window_accuracy` eval; see
//! ROADMAP "Performance"). [`WindowedRhhh::query`] therefore keeps a
//! **cached merged snapshot**: the merge runs at most once per pane
//! (rebuilt lazily after each rotation invalidates it), so a steady query
//! cadence pays the combine once per `⌈W/G⌉` packets instead of per query;
//! between rotations a query is just `Output(θ)` on the snapshot — 0.11 ms
//! vs 4.4 ms per query in the measured G = 4 configuration, a ~40× saving.
//! [`WindowedRhhh::query_fresh`] bypasses the cache for callers that want
//! the merge-per-query cost model (and for differential tests).

use std::collections::VecDeque;

use hhh_counters::{FrequencyEstimator, SpaceSaving};
use hhh_hierarchy::{KeyBits, Lattice};

use crate::output::HeavyHitter;
use crate::rhhh::{Rhhh, RhhhConfig};
use crate::HhhAlgorithm;

/// Derives the seed of pane `i + 1` from the base seed: panes stay
/// statistically independent while the whole ring remains a pure function
/// of the configuration.
fn pane_seed(base: u64, rotation: u64) -> u64 {
    base.wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(rotation.wrapping_add(1))
}

/// A ring of RHHH panes: one active instance absorbing updates plus the
/// last `keep` completed instances, rotated externally.
///
/// This is the storage half of [`WindowedRhhh`], split out so external
/// drivers — the shard workers of `hhh_vswitch`'s windowed pipeline, whose
/// rotation points are dictated by the *global* packet count rather than
/// the local one — can run the same ring with their own rotation trigger.
#[derive(Debug, Clone)]
pub struct PaneRing<K: KeyBits, E: FrequencyEstimator<K> = SpaceSaving<K>> {
    active: Rhhh<K, E>,
    /// Oldest → newest; `len() ≤ keep`.
    completed: VecDeque<Rhhh<K, E>>,
    keep: usize,
    rotations: u64,
    base_seed: u64,
}

impl<K: KeyBits, E: FrequencyEstimator<K>> PaneRing<K, E> {
    /// Creates a ring retaining the last `keep` completed panes.
    ///
    /// # Panics
    ///
    /// Panics if `keep == 0`.
    #[must_use]
    pub fn new(lattice: Lattice<K>, config: RhhhConfig, keep: usize) -> Self {
        assert!(keep > 0, "must keep at least one completed pane");
        Self {
            active: Rhhh::new(lattice, config),
            completed: VecDeque::with_capacity(keep),
            keep,
            rotations: 0,
            base_seed: config.seed,
        }
    }

    /// The in-progress pane.
    #[must_use]
    pub fn active(&self) -> &Rhhh<K, E> {
        &self.active
    }

    /// Mutable access to the in-progress pane (the update feed).
    pub fn active_mut(&mut self) -> &mut Rhhh<K, E> {
        &mut self.active
    }

    /// Completed panes, oldest first (at most `keep`).
    pub fn completed(&self) -> impl Iterator<Item = &Rhhh<K, E>> {
        self.completed.iter()
    }

    /// Number of completed panes currently retained.
    #[must_use]
    pub fn completed_len(&self) -> usize {
        self.completed.len()
    }

    /// Total rotations so far (= panes completed over the ring's lifetime,
    /// including panes already aged out).
    #[must_use]
    pub fn rotations(&self) -> u64 {
        self.rotations
    }

    /// Decomposes the ring into the active pane and the retained completed
    /// panes (oldest first) — the consuming counterpart of
    /// [`PaneRing::merged_window`], for harvest paths that own the ring
    /// and want to merge many rings' panes in one combine without cloning.
    #[must_use]
    pub fn into_parts(self) -> (Rhhh<K, E>, Vec<Rhhh<K, E>>) {
        (self.active, self.completed.into())
    }

    /// Completes the active pane: it joins the retained set (evicting the
    /// oldest pane beyond `keep`) and a fresh pane with a fresh
    /// deterministic seed starts absorbing.
    pub fn rotate(&mut self) {
        let lattice = self.active.lattice().clone();
        let mut config = *self.active.config();
        config.seed = pane_seed(self.base_seed, self.rotations);
        let fresh = Rhhh::new(lattice, config);
        self.completed
            .push_back(std::mem::replace(&mut self.active, fresh));
        if self.completed.len() > self.keep {
            self.completed.pop_front();
        }
        self.rotations += 1;
    }
}

impl<K: KeyBits, E: FrequencyEstimator<K> + Clone> PaneRing<K, E> {
    /// Combines the retained completed panes into one queryable instance
    /// via a single K-way [`Rhhh::merge_many`] pass. `None` while no pane
    /// has completed. The merged instance's packet/weight totals cover
    /// exactly the retained panes — the window the answer speaks for.
    #[must_use]
    pub fn merged_window(&self) -> Option<Rhhh<K, E>> {
        let mut panes = self.completed.iter().cloned();
        let mut merged = panes.next()?;
        merged.merge_many(panes.collect());
        Some(merged)
    }
}

/// Sliding-window RHHH over a [`PaneRing`]: rotates every `⌈W/G⌉` packets,
/// answers queries over the last `G` completed panes with a cached K-way
/// merge. See the [module docs](self) for coverage, accuracy and cost.
#[derive(Debug, Clone)]
pub struct WindowedRhhh<K: KeyBits, E: FrequencyEstimator<K> = SpaceSaving<K>> {
    ring: PaneRing<K, E>,
    /// Requested window W (packets).
    window: u64,
    /// Rotation period `⌈W/G⌉`.
    pane_len: u64,
    /// Cached merged snapshot of the retained completed panes; refreshed
    /// lazily after a rotation invalidates it, so steady query cadences
    /// pay the K-way combine once per pane.
    cached: Option<Rhhh<K, E>>,
}

impl<K: KeyBits, E: FrequencyEstimator<K> + Clone> WindowedRhhh<K, E> {
    /// Creates a sliding-window instance over the last `window` packets,
    /// approximated by `panes` ring panes of `⌈window/panes⌉` packets each.
    ///
    /// For the merged per-window guarantee to be meaningful, `window`
    /// should exceed the configuration's ψ — checked at construction in
    /// debug builds (there is deliberately no test-mode escape hatch: a
    /// window shorter than ψ is a real configuration error, and tests must
    /// construct convergent windows like any other caller).
    ///
    /// # Panics
    ///
    /// Panics if `window == 0`, `panes == 0`, or `window < panes` (panes
    /// must hold at least one packet).
    #[must_use]
    pub fn new(lattice: Lattice<K>, config: RhhhConfig, window: u64, panes: usize) -> Self {
        assert!(window > 0, "window must be positive");
        assert!(panes > 0, "need at least one pane");
        assert!(
            window >= panes as u64,
            "window must hold at least one packet per pane"
        );
        debug_assert!(
            {
                let probe = Rhhh::<K, E>::new(lattice.clone(), config);
                window as f64 >= probe.psi()
            },
            "window shorter than psi: the merged per-window guarantee will not bind"
        );
        let pane_len = window.div_ceil(panes as u64);
        Self {
            ring: PaneRing::new(lattice, config, panes),
            window,
            pane_len,
            cached: None,
        }
    }

    /// The requested window W.
    #[must_use]
    pub fn window(&self) -> u64 {
        self.window
    }

    /// The number of panes G in the ring.
    #[must_use]
    pub fn pane_count(&self) -> usize {
        self.ring.keep
    }

    /// The rotation period `⌈W/G⌉` in packets.
    #[must_use]
    pub fn pane_len(&self) -> u64 {
        self.pane_len
    }

    /// Processes one packet; rotates panes at pane boundaries.
    #[inline]
    pub fn update(&mut self, key: K) {
        self.ring.active_mut().update(key);
        if HhhAlgorithm::packets(self.ring.active()) >= self.pane_len {
            self.rotate();
        }
    }

    /// Processes a slice of packets through the geometric-skip batch path.
    /// Batches that straddle one or more pane boundaries are split at each
    /// boundary, so every packet lands in the pane its index dictates —
    /// feeding one straddling batch is bit-identical to feeding the
    /// boundary-aligned sub-batches separately.
    pub fn update_batch(&mut self, keys: &[K]) {
        let mut rest = keys;
        while !rest.is_empty() {
            let room = self.pane_len - HhhAlgorithm::packets(self.ring.active());
            let take = (rest.len() as u64).min(room) as usize;
            self.ring.active_mut().update_batch(&rest[..take]);
            if HhhAlgorithm::packets(self.ring.active()) >= self.pane_len {
                self.rotate();
            }
            rest = &rest[take..];
        }
    }

    /// [`WindowedRhhh::update_batch`] through the frozen PR 5-shape batch
    /// path ([`Rhhh::update_batch_reference`]); identical pane splitting,
    /// so the property suite can pin the windowed block path bit-identical
    /// across pane-straddling feeds. Comparison baseline only.
    #[doc(hidden)]
    pub fn update_batch_reference(&mut self, keys: &[K]) {
        let mut rest = keys;
        while !rest.is_empty() {
            let room = self.pane_len - HhhAlgorithm::packets(self.ring.active());
            let take = (rest.len() as u64).min(room) as usize;
            self.ring.active_mut().update_batch_reference(&rest[..take]);
            if HhhAlgorithm::packets(self.ring.active()) >= self.pane_len {
                self.rotate();
            }
            rest = &rest[take..];
        }
    }

    fn rotate(&mut self) {
        self.ring.rotate();
        // The completed set changed: the merged snapshot no longer covers
        // the window. Updates into the active pane never invalidate —
        // completed panes are immutable — which is what makes the cache
        // refresh once per pane rather than once per packet.
        self.cached = None;
    }

    /// Panes completed over the monitor's lifetime.
    #[must_use]
    pub fn panes_completed(&self) -> u64 {
        self.ring.rotations()
    }

    /// Packets absorbed by the in-progress pane — the staleness of the
    /// windowed answer, always `< ⌈W/G⌉`.
    #[must_use]
    pub fn current_fill(&self) -> u64 {
        HhhAlgorithm::packets(self.ring.active())
    }

    /// Lifetime packets fed (completed panes plus the active fill).
    #[must_use]
    pub fn total_packets(&self) -> u64 {
        self.ring.rotations() * self.pane_len + self.current_fill()
    }

    /// Packets covered by the windowed answer right now:
    /// `min(G, completed) · ⌈W/G⌉`, i.e. at least `W` once `G` panes have
    /// completed.
    #[must_use]
    pub fn covered_packets(&self) -> u64 {
        self.ring.completed_len() as u64 * self.pane_len
    }

    /// The absolute packet-index interval `[start, end)` the windowed
    /// answer covers (indices count from 0 over the monitor's lifetime).
    /// `end` trails "now" by [`WindowedRhhh::current_fill`] packets.
    #[must_use]
    pub fn covered_range(&self) -> (u64, u64) {
        let end = self.ring.rotations() * self.pane_len;
        (end - self.covered_packets(), end)
    }

    /// The merged instance over the covered window, built fresh (one K-way
    /// combine per call, no cache). Useful when the caller wants the full
    /// instance — node estimates, slack, packet totals — rather than just
    /// `Output(θ)`. `None` until the first rotation.
    #[must_use]
    pub fn merged_window(&self) -> Option<Rhhh<K, E>> {
        self.ring.merged_window()
    }

    /// HHHs over the covered window, served from the cached in-flight
    /// merge: the K-way combine runs at most once per pane (after the
    /// rotation that invalidated the snapshot), every other call is just
    /// `Output(θ)` on the snapshot. `None` until the first rotation.
    #[must_use]
    pub fn query(&mut self, theta: f64) -> Option<Vec<HeavyHitter<K>>> {
        if self.cached.is_none() {
            self.cached = self.ring.merged_window();
        }
        self.cached.as_ref().map(|m| m.output(theta))
    }

    /// HHHs over the covered window with a fresh merge per call — the
    /// merge-per-query cost model [`WindowedRhhh::query`]'s cache exists to
    /// avoid; kept for callers that must not observe a snapshot (and as
    /// the reference side of the cache-coherence property tests).
    #[must_use]
    pub fn query_fresh(&self, theta: f64) -> Option<Vec<HeavyHitter<K>>> {
        self.ring.merged_window().map(|m| m.output(theta))
    }

    /// HHHs of the in-progress pane (partial; noisier early in the pane).
    #[must_use]
    pub fn query_current(&self, theta: f64) -> Vec<HeavyHitter<K>> {
        self.ring.active().output(theta)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hhh_hierarchy::pack2;

    struct Lcg(u64);
    impl Lcg {
        fn next(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0 >> 16
        }
    }

    /// ψ ≈ 1.96·25/0.01 ≈ 4.9k for the 2D lattice — every window below
    /// uses at least 10k so the debug-build ψ check binds honestly.
    fn config() -> RhhhConfig {
        RhhhConfig {
            epsilon_a: 0.01,
            epsilon_s: 0.1,
            delta_s: 0.05,
            v_scale: 1,
            updates_per_packet: 1,
            seed: 77,
        }
    }

    #[test]
    fn rotates_every_pane() {
        let lat = hhh_hierarchy::Lattice::ipv4_src_bytes();
        let mut w = WindowedRhhh::<u32>::new(lat, config(), 40_000, 4);
        assert_eq!(w.pane_len(), 10_000);
        let mut rng = Lcg(1);
        for _ in 0..35_000 {
            w.update(rng.next() as u32);
        }
        assert_eq!(w.panes_completed(), 3);
        assert_eq!(w.current_fill(), 5_000);
        assert_eq!(w.total_packets(), 35_000);
        assert_eq!(w.covered_packets(), 30_000, "3 completed panes retained");
        assert_eq!(w.covered_range(), (0, 30_000));
        // Past G completed panes, coverage pins at G panes and slides.
        for _ in 0..20_000 {
            w.update(rng.next() as u32);
        }
        assert_eq!(w.panes_completed(), 5);
        assert_eq!(w.covered_packets(), 40_000);
        assert_eq!(w.covered_range(), (10_000, 50_000));
    }

    #[test]
    fn windowed_answers_age_out_old_traffic() {
        let lat = hhh_hierarchy::Lattice::ipv4_src_dst_bytes();
        let mut w = WindowedRhhh::<u64>::new(lat.clone(), config(), 100_000, 4);
        assert!(w.query(0.1).is_none(), "no pane finished yet");
        let mut rng = Lcg(2);
        // Window 1: heavy subnet A. Window 2: heavy subnet B.
        for i in 0..100_000u64 {
            let key = if i % 3 == 0 {
                pack2(0x0A14_0000 | (rng.next() as u32 & 0xFFFF), 0x0808_0808)
            } else {
                pack2(rng.next() as u32, rng.next() as u32)
            };
            w.update(key);
        }
        let phase1 = w.query(0.1).expect("window complete");
        assert!(
            phase1
                .iter()
                .any(|h| h.prefix.display(&lat).contains("10.20.0.0/16")),
            "window 1 must show subnet A"
        );
        for i in 0..100_000u64 {
            let key = if i % 3 == 0 {
                pack2(0x0B15_0000 | (rng.next() as u32 & 0xFFFF), 0x0808_0808)
            } else {
                pack2(rng.next() as u32, rng.next() as u32)
            };
            w.update(key);
        }
        let phase2 = w.query(0.1).expect("window complete");
        assert!(
            phase2
                .iter()
                .any(|h| h.prefix.display(&lat).contains("11.21.0.0/16")),
            "window 2 must show subnet B"
        );
        assert!(
            !phase2
                .iter()
                .any(|h| h.prefix.display(&lat).contains("10.20.0.0/16")),
            "subnet A aged out of the 4-pane window"
        );
    }

    #[test]
    fn cached_query_matches_fresh_merge() {
        let lat = hhh_hierarchy::Lattice::ipv4_src_dst_bytes();
        let mut w = WindowedRhhh::<u64>::new(lat, config(), 20_000, 4);
        let mut rng = Lcg(3);
        let compare = |w: &mut WindowedRhhh<u64>| {
            let cached = w.query(0.05);
            let fresh = w.query_fresh(0.05);
            match (cached, fresh) {
                (None, None) => {}
                (Some(a), Some(b)) => {
                    assert_eq!(a.len(), b.len());
                    for (x, y) in a.iter().zip(&b) {
                        assert_eq!(x.prefix, y.prefix);
                        assert_eq!(x.freq_upper, y.freq_upper);
                    }
                }
                (a, b) => panic!("cache and fresh disagree on availability: {a:?} vs {b:?}"),
            }
        };
        // Across several rotations, a cached query must be bit-identical
        // to a fresh merge — including right after each invalidation.
        for _ in 0..7 {
            for _ in 0..3_000 {
                w.update(rng.next());
            }
            compare(&mut w);
            compare(&mut w); // second hit serves the snapshot
        }
    }

    #[test]
    fn panes_use_distinct_seeds() {
        let lat = hhh_hierarchy::Lattice::ipv4_src_bytes();
        let mut w = WindowedRhhh::<u32>::new(lat, config(), 10_000, 2);
        for i in 0..12_000u32 {
            w.update(i);
        }
        assert_eq!(w.panes_completed(), 2);
        let seeds: Vec<u64> = w.ring.completed().map(|p| p.config().seed).collect();
        assert_eq!(seeds.len(), 2);
        assert_ne!(seeds[0], seeds[1], "completed panes share a seed");
        assert_ne!(
            seeds[1],
            w.ring.active().config().seed,
            "active pane reuses a completed seed"
        );
    }

    #[test]
    fn single_pane_is_the_jumping_window() {
        let lat = hhh_hierarchy::Lattice::ipv4_src_bytes();
        let mut w = WindowedRhhh::<u32>::new(lat, config(), 10_000, 1);
        let mut rng = Lcg(9);
        for _ in 0..25_000 {
            w.update(rng.next() as u32);
        }
        assert_eq!(w.pane_len(), 10_000);
        assert_eq!(w.covered_packets(), 10_000, "G = 1 covers exactly W");
        assert_eq!(w.covered_range(), (10_000, 20_000));
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn zero_window_rejected() {
        let lat = hhh_hierarchy::Lattice::ipv4_src_bytes();
        let _ = WindowedRhhh::<u32>::new(lat, config(), 0, 4);
    }

    #[test]
    #[should_panic(expected = "need at least one pane")]
    fn zero_panes_rejected() {
        let lat = hhh_hierarchy::Lattice::ipv4_src_bytes();
        let _ = WindowedRhhh::<u32>::new(lat, config(), 10_000, 0);
    }

    #[test]
    #[should_panic(expected = "at least one packet per pane")]
    fn window_smaller_than_pane_count_rejected() {
        let lat = hhh_hierarchy::Lattice::ipv4_src_bytes();
        let _ = WindowedRhhh::<u32>::new(lat, config(), 3, 4);
    }
}
