//! Epoch-rotating RHHH for continuous monitoring.
//!
//! The paper measures fixed intervals ("When the minimal measurement
//! interval is known in advance, the parameter V can be set to satisfy
//! correctness at the end of the measurement", Section 6.3). Operational
//! deployments need *rolling* answers: "what are the HHHs over the last W
//! packets, right now?". [`WindowedRhhh`] provides the standard two-epoch
//! rotation: a `current` instance absorbs updates while a `previous`
//! completed epoch serves queries; every `W` packets the epochs rotate.
//!
//! Query semantics: estimates cover between `W` (right after a rotation)
//! and `2·W` packets (right before one) — the usual jumping-window
//! approximation of a sliding window, with all of RHHH's per-epoch
//! guarantees intact because each epoch is an independent instance.

use hhh_counters::{FrequencyEstimator, SpaceSaving};
use hhh_hierarchy::{KeyBits, Lattice};

use crate::output::HeavyHitter;
use crate::rhhh::{Rhhh, RhhhConfig};
use crate::HhhAlgorithm;

/// Jumping-window RHHH: rotates a fresh epoch every `window` packets.
#[derive(Debug, Clone)]
pub struct WindowedRhhh<K: KeyBits, E: FrequencyEstimator<K> = SpaceSaving<K>> {
    current: Rhhh<K, E>,
    previous: Option<Rhhh<K, E>>,
    window: u64,
    epochs_completed: u64,
}

impl<K: KeyBits, E: FrequencyEstimator<K> + Clone> WindowedRhhh<K, E> {
    /// Creates a windowed instance rotating every `window` packets.
    ///
    /// For the per-epoch guarantee to be meaningful, `window` should exceed
    /// the configuration's ψ (checked at construction in debug builds).
    ///
    /// # Panics
    ///
    /// Panics if `window == 0`.
    #[must_use]
    pub fn new(lattice: Lattice<K>, config: RhhhConfig, window: u64) -> Self {
        assert!(window > 0, "window must be positive");
        debug_assert!(
            {
                let probe = Rhhh::<K, E>::new(lattice.clone(), config);
                window as f64 >= probe.psi() || cfg!(test)
            },
            "window shorter than psi: per-epoch guarantees will not bind"
        );
        Self {
            current: Rhhh::new(lattice, config),
            previous: None,
            window,
            epochs_completed: 0,
        }
    }

    /// Processes one packet; rotates epochs at window boundaries.
    #[inline]
    pub fn update(&mut self, key: K) {
        self.current.update(key);
        if HhhAlgorithm::packets(&self.current) >= self.window {
            self.rotate();
        }
    }

    fn rotate(&mut self) {
        let lattice = self.current.lattice().clone();
        let mut config = *self.current.config();
        // Fresh seed per epoch keeps epochs statistically independent while
        // remaining fully deterministic.
        config.seed = config
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(self.epochs_completed + 1);
        let fresh = Rhhh::new(lattice, config);
        self.previous = Some(std::mem::replace(&mut self.current, fresh));
        self.epochs_completed += 1;
    }

    /// Number of completed epochs so far.
    #[must_use]
    pub fn epochs_completed(&self) -> u64 {
        self.epochs_completed
    }

    /// Packets absorbed by the in-progress epoch.
    #[must_use]
    pub fn current_fill(&self) -> u64 {
        HhhAlgorithm::packets(&self.current)
    }

    /// HHHs of the last *completed* epoch — the stable answer operators
    /// alert on. `None` until the first rotation.
    #[must_use]
    pub fn query_completed(&self, theta: f64) -> Option<Vec<HeavyHitter<K>>> {
        self.previous.as_ref().map(|epoch| epoch.output(theta))
    }

    /// HHHs of the in-progress epoch (partial; noisier early in the epoch).
    #[must_use]
    pub fn query_current(&self, theta: f64) -> Vec<HeavyHitter<K>> {
        self.current.output(theta)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hhh_hierarchy::pack2;

    struct Lcg(u64);
    impl Lcg {
        fn next(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0 >> 16
        }
    }

    fn config() -> RhhhConfig {
        RhhhConfig {
            epsilon_a: 0.01,
            epsilon_s: 0.05,
            delta_s: 0.05,
            v_scale: 1,
            updates_per_packet: 1,
            seed: 77,
        }
    }

    #[test]
    fn rotates_every_window() {
        let lat = hhh_hierarchy::Lattice::ipv4_src_bytes();
        let mut w = WindowedRhhh::<u32>::new(lat, config(), 10_000);
        let mut rng = Lcg(1);
        for _ in 0..35_000 {
            w.update(rng.next() as u32);
        }
        assert_eq!(w.epochs_completed(), 3);
        assert_eq!(w.current_fill(), 5_000);
    }

    #[test]
    fn completed_epoch_answers_are_stable() {
        let lat = hhh_hierarchy::Lattice::ipv4_src_dst_bytes();
        let mut w = WindowedRhhh::<u64>::new(lat.clone(), config(), 100_000);
        assert!(w.query_completed(0.1).is_none(), "no epoch finished yet");
        let mut rng = Lcg(2);
        // Epoch 1: heavy subnet A. Epoch 2: heavy subnet B.
        for i in 0..100_000u64 {
            let key = if i % 3 == 0 {
                pack2(0x0A14_0000 | (rng.next() as u32 & 0xFFFF), 0x0808_0808)
            } else {
                pack2(rng.next() as u32, rng.next() as u32)
            };
            w.update(key);
        }
        let epoch1 = w.query_completed(0.1).expect("epoch 1 complete");
        assert!(
            epoch1
                .iter()
                .any(|h| h.prefix.display(&lat).contains("10.20.0.0/16")),
            "epoch 1 must show subnet A"
        );
        for i in 0..100_000u64 {
            let key = if i % 3 == 0 {
                pack2(0x0B15_0000 | (rng.next() as u32 & 0xFFFF), 0x0808_0808)
            } else {
                pack2(rng.next() as u32, rng.next() as u32)
            };
            w.update(key);
        }
        let epoch2 = w.query_completed(0.1).expect("epoch 2 complete");
        assert!(
            epoch2
                .iter()
                .any(|h| h.prefix.display(&lat).contains("11.21.0.0/16")),
            "epoch 2 must show subnet B"
        );
        assert!(
            !epoch2
                .iter()
                .any(|h| h.prefix.display(&lat).contains("10.20.0.0/16")),
            "subnet A aged out"
        );
    }

    #[test]
    fn epochs_use_distinct_seeds() {
        let lat = hhh_hierarchy::Lattice::ipv4_src_bytes();
        let mut w = WindowedRhhh::<u32>::new(lat, config(), 1_000);
        for i in 0..2_500u32 {
            w.update(i);
        }
        // After two rotations, current and previous configs differ in seed.
        let prev_seed = w.previous.as_ref().expect("rotated").config().seed;
        assert_ne!(prev_seed, w.current.config().seed);
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn zero_window_rejected() {
        let lat = hhh_hierarchy::Lattice::ipv4_src_bytes();
        let _ = WindowedRhhh::<u32>::new(lat, config(), 0);
    }
}
