//! # RHHH — Randomized Hierarchical Heavy Hitters
//!
//! A from-scratch reproduction of *Constant Time Updates in Hierarchical
//! Heavy Hitters* (Ben Basat, Einziger, Friedman, Luizelli, Waisbard —
//! SIGCOMM 2017).
//!
//! Hierarchical heavy hitters (HHH) aggregate flows by shared prefixes:
//! in a DDoS, no single source is heavy, but a source subnet is. Prior
//! algorithms update **every** lattice node per packet — Ω(H) work, where
//! H = 25 for the source×destination byte lattice. [`Rhhh`] keeps the same
//! structure (one counter-algorithm instance per lattice node) but updates
//! **at most one node per packet**, chosen uniformly at random, which makes
//! the per-packet cost O(1) worst case (Theorem 6.18) at the price of
//! needing `ψ = Z_{1-δ_s/2}·V·ε_s⁻²` packets to converge (Theorem 6.3).
//!
//! The crate provides:
//!
//! * [`Rhhh`] — Algorithm 1 with the `V` performance knob (`V = H` updates
//!   every packet; `V = 10·H` is the paper's "10-RHHH") and the
//!   multi-update extension of Corollary 6.8.
//! * [`output`] — the `Output(θ)` procedure shared with the deterministic
//!   baselines: conditioned-frequency estimation with `calcPred` in one
//!   dimension (Algorithm 2) and the glb inclusion–exclusion in two
//!   (Algorithm 3).
//! * [`exact`] — exact HHH per Definitions 6–8, used as ground truth by the
//!   evaluation metrics.
//! * [`HhhAlgorithm`] — the interface the evaluation harness uses to drive
//!   RHHH and every baseline uniformly.
//!
//! # Quickstart
//!
//! ```
//! use hhh_core::{Rhhh, RhhhConfig, HhhAlgorithm};
//! use hhh_hierarchy::{Lattice, pack2};
//!
//! // 2D source/destination byte hierarchy (H = 25), V = H.
//! let lattice = Lattice::ipv4_src_dst_bytes();
//! let config = RhhhConfig::default();
//! let mut algo = Rhhh::<u64>::new(lattice, config);
//!
//! // A subnet (10.1.0.0/16 -> 8.8.8.8) sends ~a third of the traffic.
//! let mut x = 1u64;
//! for i in 0..200_000u64 {
//!     x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
//!     let src = if i % 3 == 0 {
//!         0x0A01_0000 | ((x as u32) & 0xFFFF)
//!     } else {
//!         x as u32
//!     };
//!     algo.insert(pack2(src, 0x0808_0808));
//! }
//!
//! let hhhs = algo.query(0.1); // θ = 10%
//! assert!(!hhhs.is_empty());
//! ```

pub mod batch;
pub mod counter;
pub mod exact;
pub mod hot_profile;
pub mod output;
pub mod radix;
pub mod rhhh;
pub mod sampling;
pub mod windowed;

pub use counter::CounterKind;
pub use exact::ExactHhh;
pub use output::{HeavyHitter, NodeEstimates};
pub use rhhh::{Rhhh, RhhhConfig};
pub use windowed::{PaneRing, WindowedRhhh};

use hhh_hierarchy::KeyBits;

/// Why two algorithm instances could not be merged.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MergeError {
    /// The two instances are different concrete algorithms (or the same
    /// algorithm over different per-node counter types).
    AlgorithmMismatch {
        /// `name()` of the instance merged into.
        left: String,
        /// `name()` of the instance that was offered.
        right: String,
    },
    /// Same concrete type, but the instances measure different hierarchies
    /// or run incompatible configurations; the message names the field.
    ConfigMismatch(String),
    /// The algorithm has no merge support (the deterministic baselines
    /// keep per-key state whose union is not a summary of the union).
    Unsupported(String),
    /// A parallel pipeline could not produce one of the summaries the
    /// merge needed: a shard worker died (panicked) mid-feed, so its
    /// sub-stream's summary is lost and any merged answer would silently
    /// under-count. The message names the shard and, when available, the
    /// panic payload.
    ShardFailed(String),
}

impl std::fmt::Display for MergeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::AlgorithmMismatch { left, right } => {
                write!(f, "cannot merge `{right}` into `{left}`")
            }
            Self::ConfigMismatch(what) => write!(f, "incompatible configurations: {what}"),
            Self::Unsupported(name) => write!(f, "`{name}` does not support merging"),
            Self::ShardFailed(what) => write!(f, "shard worker failed before harvest: {what}"),
        }
    }
}

impl std::error::Error for MergeError {}

/// Uniform driver interface for HHH algorithms — RHHH and the baselines all
/// implement it so the evaluation harness, the benches and the virtual
/// switch monitors can treat them interchangeably.
pub trait HhhAlgorithm<K: KeyBits>: Send {
    /// Processes one packet keyed by `key` (already packed for the
    /// algorithm's lattice).
    fn insert(&mut self, key: K);

    /// Processes a whole slice of packets. The default simply loops
    /// [`Self::insert`]; algorithms with a cheaper slice-at-a-time path
    /// (RHHH's geometric-skip batch update) override it, so callers that
    /// hold packets in bursts — the CLI, the vswitch datapath, the benches
    /// — get the fast path even through `dyn HhhAlgorithm`.
    fn insert_batch(&mut self, keys: &[K]) {
        for &k in keys {
            self.insert(k);
        }
    }

    /// Type-erases the instance for downcasting. This is the hook that
    /// lets [`HhhAlgorithm::merge`] recover the concrete type behind a
    /// `Box<dyn HhhAlgorithm>`; every implementation is the one-liner
    /// `{ self }`.
    fn into_any(self: Box<Self>) -> Box<dyn std::any::Any>;

    /// Merges another instance — same concrete algorithm, same hierarchy,
    /// same configuration — into `self`, so that `self` summarizes the
    /// union of both input streams. Like [`Self::insert_batch`], this is on
    /// the driver trait so it survives `dyn` dispatch: a shard-parallel
    /// pipeline holding `Box<dyn HhhAlgorithm>` workers (built via
    /// [`CounterKind::build_rhhh`]) can still harvest by merging.
    ///
    /// The default declines ([`MergeError::Unsupported`]); RHHH overrides
    /// it with the per-node counter merge.
    ///
    /// # Errors
    ///
    /// [`MergeError::AlgorithmMismatch`] when `other` is a different
    /// concrete type, [`MergeError::ConfigMismatch`] when it measures a
    /// different lattice or configuration, [`MergeError::Unsupported`]
    /// when the algorithm cannot merge at all. On error `other` is
    /// consumed but `self` is unchanged.
    fn merge(&mut self, other: Box<dyn HhhAlgorithm<K>>) -> Result<(), MergeError> {
        drop(other);
        Err(MergeError::Unsupported(self.name()))
    }

    /// Number of packets processed so far (the paper's `N`).
    fn packets(&self) -> u64;

    /// Runs `Output(θ)` and returns the approximate HHH set.
    fn query(&self, theta: f64) -> Vec<HeavyHitter<K>>;

    /// Short human-readable algorithm name for reports ("RHHH", "MST", …).
    fn name(&self) -> String;
}

impl<K: KeyBits> HhhAlgorithm<K> for Box<dyn HhhAlgorithm<K>> {
    fn insert(&mut self, key: K) {
        (**self).insert(key);
    }

    fn insert_batch(&mut self, keys: &[K]) {
        (**self).insert_batch(keys);
    }

    fn into_any(self: Box<Self>) -> Box<dyn std::any::Any> {
        // Unwrap the outer box so the downcast target stays the concrete
        // algorithm type, not `Box<dyn HhhAlgorithm>`.
        (*self).into_any()
    }

    fn merge(&mut self, other: Box<dyn HhhAlgorithm<K>>) -> Result<(), MergeError> {
        (**self).merge(other)
    }

    fn packets(&self) -> u64 {
        (**self).packets()
    }

    fn query(&self, theta: f64) -> Vec<HeavyHitter<K>> {
        (**self).query(theta)
    }

    fn name(&self) -> String {
        (**self).name()
    }
}
