//! Byte-digit LSD radix sort for masked key groups — the block batch
//! pipeline's sorter.
//!
//! The batch flush sorts each lattice node's group so duplicate masked keys
//! become runs (one counter update per run) and so the flat arena can serve
//! slot-stealing keys as bulk minimum-level sweeps. A comparison sort pays
//! `n log n` branchy compares for that; a radix sort pays two linear passes
//! per *digit* — and prefix-masked keys make most digits free. A group at
//! lattice node `(i, j)` of the 2D byte hierarchy varies in at most
//! `i + j` of its 16 byte positions (every masked-off byte is constant
//! zero, and real traffic keeps high header bytes nearly constant too), so
//! the OR/AND sweep below typically finds 1–4 live digits where the
//! comparison sort still walks all 12+ levels.
//!
//! [`radix_sort_keys`] produces exactly `sort_unstable`'s ascending order
//! ([`KeyBits::to_u128`] is order-preserving, and counting passes are
//! stable), and equal keys are indistinguishable — so swapping it into a
//! sorted flush leaves every estimator in a bit-identical state, which is
//! what lets the block path use it while staying prop-pinned to the
//! reference path's `sort_unstable` flush.

use hhh_hierarchy::KeyBits;

/// Below this length the comparison sort's constant factors win over the
/// histogram passes; `sort_unstable` yields the identical ascending order.
const RADIX_MIN: usize = 128;

/// Above this length the counting passes stop paying: each pass streams
/// the whole group through a ping-pong pair of buffers with a random
/// scatter in between, so once `2 · n · size_of::<K>()` outgrows the L2
/// slice the passes thrash where the comparison sort's partitions stay
/// resident. Measured on the V=H batch regime (≈40 Ki-key groups), radix
/// past this bound loses double digits to `sort_unstable`.
const RADIX_MAX: usize = 16_384;

/// Streaming radix passes beat the comparison sort's branchy levels only
/// while the live digit count stays well under `log2 n`; past this ratio
/// the comparison sort runs instead (identical ascending order either way,
/// so the choice is invisible to the counter state).
const PASS_BUDGET_NUM: u32 = 2;

/// Sorts `keys` ascending — bit-identical ordering to
/// `keys.sort_unstable()` — using one stable counting pass per byte
/// position that actually varies within the group. Groups whose live-byte
/// count is too high for the passes to pay off fall back to
/// `sort_unstable`, which produces the same order. `scratch` is the
/// ping-pong buffer; it is resized as needed and its contents are
/// meaningless afterwards.
pub fn radix_sort_keys<K: KeyBits>(keys: &mut [K], scratch: &mut Vec<K>) {
    let n = keys.len();
    if !(RADIX_MIN..=RADIX_MAX).contains(&n) {
        keys.sort_unstable();
        return;
    }

    // One linear sweep finds the byte positions that can influence the
    // order: bits where the group's keys disagree. All native-width ops —
    // widening to `u128` here costs more than it saves on `u64` keys.
    let mut or_bits = keys[0];
    let mut and_bits = keys[0];
    for &k in &keys[1..] {
        or_bits = or_bits.or(k);
        and_bits = and_bits.and(k);
    }
    let varying = or_bits.and(and_bits.not());
    let bytes = (K::BITS / 8) as usize;
    let mut live = 0u32;
    for d in 0..bytes {
        if byte_at(varying, (8 * d) as u32) != 0 {
            live += 1;
        }
    }
    if live == 0 {
        return; // every key equal: any order is sorted
    }
    // Each live byte costs two streaming passes; `sort_unstable` costs
    // ~log2 n branchy levels (fewer on duplicate-heavy groups). Prefer the
    // comparison sort once the group varies in too many byte positions.
    let log2n = usize::BITS - 1 - n.leading_zeros();
    if PASS_BUDGET_NUM * live > log2n {
        keys.sort_unstable();
        return;
    }

    scratch.clear();
    scratch.resize(n, keys[0]);
    let mut in_keys = true;
    for d in 0..bytes {
        let shift = (8 * d) as u32;
        if byte_at(varying, shift) == 0 {
            continue;
        }
        if in_keys {
            counting_pass(keys, scratch, shift);
        } else {
            counting_pass(scratch, keys, shift);
        }
        in_keys = !in_keys;
    }
    if !in_keys {
        keys.copy_from_slice(scratch);
    }
}

/// The byte of `k` at bit offset `shift`, in the key's native width.
#[inline(always)]
fn byte_at<K: KeyBits>(k: K, shift: u32) -> usize {
    (k.shr(shift).low_u64() & 0xFF) as usize
}

/// One stable counting pass on the byte at `shift`: histogram, exclusive
/// prefix sum, scatter. Stability across passes is what makes LSD radix
/// order low-to-high digits correctly.
#[inline]
fn counting_pass<K: KeyBits>(src: &[K], dst: &mut [K], shift: u32) {
    let mut hist = [0u32; 256];
    for &k in src {
        hist[byte_at(k, shift)] += 1;
    }
    let mut sum = 0u32;
    for h in hist.iter_mut() {
        let c = *h;
        *h = sum;
        sum += c;
    }
    for &k in src {
        let b = byte_at(k, shift);
        dst[hist[b] as usize] = k;
        hist[b] += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Lcg(u64);
    impl Lcg {
        fn next(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0 >> 16
        }
    }

    fn check<K: KeyBits>(mut v: Vec<K>) {
        let mut expect = v.clone();
        expect.sort_unstable();
        let mut scratch = Vec::new();
        radix_sort_keys(&mut v, &mut scratch);
        assert_eq!(v, expect);
    }

    #[test]
    fn matches_sort_unstable_on_random_u64() {
        let mut rng = Lcg(1);
        check((0..5_000).map(|_| rng.next()).collect::<Vec<u64>>());
    }

    #[test]
    fn matches_on_prefix_masked_groups() {
        // The shapes the batch flush actually feeds: keys masked to a
        // lattice node, so only a few byte positions vary.
        let mut rng = Lcg(2);
        for mask in [
            0xFF00_0000_0000_0000u64, // node (1, 0): one live byte
            0xFFFF_0000_FF00_0000,    // node (2, 1): three live bytes
            0xFFFF_FFFF_FFFF_FFFF,    // bottom node: all eight
            0x0000_0000_0000_0000,    // root: all keys collapse to zero
        ] {
            check((0..4_000).map(|_| rng.next() & mask).collect::<Vec<u64>>());
        }
    }

    #[test]
    fn matches_on_u32_and_u128_keys() {
        let mut rng = Lcg(3);
        check((0..3_000).map(|_| rng.next() as u32).collect::<Vec<u32>>());
        // Fully random u128s exceed the pass budget (comparison fallback)…
        check(
            (0..3_000)
                .map(|_| (u128::from(rng.next()) << 64) | u128::from(rng.next()))
                .collect::<Vec<u128>>(),
        );
        // …while a masked group with high live bytes runs real passes.
        check(
            (0..3_000)
                .map(|_| u128::from(rng.next() & 0xFFFF) << 100)
                .collect::<Vec<u128>>(),
        );
    }

    #[test]
    fn matches_on_duplicate_heavy_groups() {
        // Heavy-hitter regime: few distinct keys, long runs.
        let mut rng = Lcg(4);
        check(
            (0..4_000)
                .map(|_| (rng.next() % 7) << 56)
                .collect::<Vec<u64>>(),
        );
    }

    #[test]
    fn small_empty_and_single_groups_are_safe() {
        check(Vec::<u64>::new());
        check(vec![42u64]);
        let mut rng = Lcg(5);
        check((0..RADIX_MIN - 1).map(|_| rng.next()).collect::<Vec<u64>>());
    }

    #[test]
    fn oversize_groups_fall_back_to_the_comparison_sort() {
        let mut rng = Lcg(7);
        check(
            (0..RADIX_MAX + 5)
                .map(|_| rng.next() & 0xFFFF)
                .collect::<Vec<u64>>(),
        );
    }

    #[test]
    fn odd_and_even_pass_counts_both_land_in_keys() {
        let mut rng = Lcg(6);
        // One live byte → one pass (result lands in scratch, copied back).
        check(
            (0..1_000)
                .map(|_| rng.next() & 0xFF00)
                .collect::<Vec<u64>>(),
        );
        // Two live bytes → two passes (result lands back in keys).
        check(
            (0..1_000)
                .map(|_| rng.next() & 0xFFFF)
                .collect::<Vec<u64>>(),
        );
    }
}
