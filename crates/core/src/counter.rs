//! Counter-algorithm selection: one name for every [`FrequencyEstimator`]
//! this workspace can plug into a lattice node.
//!
//! The paper's analysis only requires *some* (ε, δ)-Frequency-Estimation
//! structure per node (Definition 4); which one is a deployment choice.
//! [`CounterKind`] is that choice reified as a value, so the CLI
//! (`--counter`), the evaluation harness and the vswitch monitors can all
//! thread it through to [`Rhhh`] without hard-coding a concrete type.

use hhh_counters::{
    CompactSpaceSaving, CuckooHeavyKeeper, DispatchedEstimator, HeapSpaceSaving, LossyCounting,
    MisraGries, SpaceSaving,
};
use hhh_hierarchy::{KeyBits, Lattice};

use crate::rhhh::{Rhhh, RhhhConfig};
use crate::HhhAlgorithm;

/// The per-node counter algorithms RHHH can run on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CounterKind {
    /// Stream-summary Space Saving (Metwally et al.) — strict O(1) worst
    /// case; doubly linked count buckets plus a separate hash index.
    #[default]
    StreamSummary,
    /// Flat-arena Space Saving — the hash index fused into the counter
    /// storage; O(1) amortized with a lazily-maintained exact minimum.
    Compact,
    /// Heap-based Space Saving — O(log 1/ε) sifts; ablation target.
    Heap,
    /// Misra–Gries / Frequent — deterministic underestimates.
    MisraGries,
    /// Manku–Motwani Lossy Counting — deterministic, δ = 0.
    LossyCounting,
    /// Cuckoo Heavy Keeper — bucketized cuckoo table with exponential
    /// decay counts; deterministic deficit bound instead of per-entry
    /// errors.
    CuckooHeavyKeeper,
    /// Regime-adaptive dispatch: each node picks stream-summary or
    /// compact by its observed flush miss ratio and migrates once when
    /// the regime settles.
    Dispatch,
}

impl CounterKind {
    /// Every kind, in ablation-roster order (the two production layouts
    /// first).
    #[must_use]
    pub fn roster() -> [CounterKind; 7] {
        [
            CounterKind::StreamSummary,
            CounterKind::Compact,
            CounterKind::Dispatch,
            CounterKind::Heap,
            CounterKind::MisraGries,
            CounterKind::LossyCounting,
            CounterKind::CuckooHeavyKeeper,
        ]
    }

    /// The CLI/report name.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            CounterKind::StreamSummary => "stream-summary",
            CounterKind::Compact => "compact",
            CounterKind::Heap => "heap",
            CounterKind::MisraGries => "misra-gries",
            CounterKind::LossyCounting => "lossy-counting",
            CounterKind::CuckooHeavyKeeper => "chk",
            CounterKind::Dispatch => "dispatch",
        }
    }

    /// Parses a CLI name (the inverse of [`CounterKind::label`], plus the
    /// `space-saving` alias for the default layout).
    ///
    /// # Errors
    ///
    /// Returns a message listing the valid names.
    pub fn parse(name: &str) -> Result<Self, String> {
        Ok(match name {
            "stream-summary" | "space-saving" => CounterKind::StreamSummary,
            "compact" => CounterKind::Compact,
            "heap" => CounterKind::Heap,
            "misra-gries" => CounterKind::MisraGries,
            "lossy-counting" => CounterKind::LossyCounting,
            "chk" | "cuckoo-heavy-keeper" => CounterKind::CuckooHeavyKeeper,
            "dispatch" => CounterKind::Dispatch,
            other => {
                return Err(format!(
                    "unknown counter `{other}` (try stream-summary, compact, dispatch, heap, \
                     misra-gries, lossy-counting, chk)"
                ))
            }
        })
    }

    /// Builds an [`Rhhh`] instance whose per-node counters are this kind,
    /// erased behind the driver interface (which carries the batch path
    /// via [`HhhAlgorithm::insert_batch`]).
    #[must_use]
    pub fn build_rhhh<K: KeyBits>(
        self,
        lattice: Lattice<K>,
        config: RhhhConfig,
    ) -> Box<dyn HhhAlgorithm<K>> {
        match self {
            CounterKind::StreamSummary => Box::new(Rhhh::<K, SpaceSaving<K>>::new(lattice, config)),
            CounterKind::Compact => {
                Box::new(Rhhh::<K, CompactSpaceSaving<K>>::new(lattice, config))
            }
            CounterKind::Heap => Box::new(Rhhh::<K, HeapSpaceSaving<K>>::new(lattice, config)),
            CounterKind::MisraGries => Box::new(Rhhh::<K, MisraGries<K>>::new(lattice, config)),
            CounterKind::LossyCounting => {
                Box::new(Rhhh::<K, LossyCounting<K>>::new(lattice, config))
            }
            CounterKind::CuckooHeavyKeeper => {
                Box::new(Rhhh::<K, CuckooHeavyKeeper<K>>::new(lattice, config))
            }
            CounterKind::Dispatch => {
                Box::new(Rhhh::<K, DispatchedEstimator<K>>::new(lattice, config))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_roundtrips_labels() {
        for kind in CounterKind::roster() {
            assert_eq!(CounterKind::parse(kind.label()), Ok(kind));
        }
        assert_eq!(
            CounterKind::parse("space-saving"),
            Ok(CounterKind::StreamSummary)
        );
        assert_eq!(
            CounterKind::parse("cuckoo-heavy-keeper"),
            Ok(CounterKind::CuckooHeavyKeeper)
        );
        assert!(CounterKind::parse("bogus").is_err());
    }

    #[test]
    fn every_kind_builds_a_working_rhhh() {
        for kind in CounterKind::roster() {
            let lat = hhh_hierarchy::Lattice::ipv4_src_bytes();
            let mut algo = kind.build_rhhh::<u32>(
                lat,
                RhhhConfig {
                    epsilon_s: 0.05,
                    delta_s: 0.05,
                    ..RhhhConfig::default()
                },
            );
            for i in 0..50_000u32 {
                algo.insert(if i % 3 == 0 { 0x0909_0000 } else { i });
            }
            assert_eq!(algo.packets(), 50_000, "{}", kind.label());
            assert!(
                !algo.query(0.2).is_empty(),
                "{} found nothing",
                kind.label()
            );
        }
    }

    #[test]
    fn batch_insert_reaches_counters_for_every_kind() {
        for kind in CounterKind::roster() {
            let lat = hhh_hierarchy::Lattice::ipv4_src_bytes();
            let mut algo = kind.build_rhhh::<u32>(lat, RhhhConfig::default());
            let keys: Vec<u32> = (0..20_000u32).map(|i| i % 256).collect();
            algo.insert_batch(&keys);
            assert_eq!(algo.packets(), 20_000, "{}", kind.label());
        }
    }
}
