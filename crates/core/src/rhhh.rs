//! RHHH — Algorithm 1 of the paper.
//!
//! One counter-algorithm instance per lattice node. Per packet: draw
//! `d ~ Uniform[0, V)`; if `d < H`, mask the key with node `d`'s prefix
//! pattern and increment that node's instance. Everything else — the
//! conditioned-frequency output, the sampling slack, the ψ convergence
//! bound — hangs off this one randomized line.

use hhh_counters::{counters_for, Candidate, FrequencyEstimator, SpaceSaving};
use hhh_hierarchy::{KeyBits, Lattice, NodeId};
use hhh_stats::{psi, sampling_slack};

use crate::batch::BatchScratch;
use crate::output::{extract_hhh, HeavyHitter, NodeEstimates};
use crate::sampling::{FastRng, GeometricSkip};
use crate::{HhhAlgorithm, MergeError};

/// Configuration of an RHHH instance.
///
/// The error budget follows Theorem 6.6/6.12: the overall guarantee is
/// `ε = ε_a + ε_s` and `δ = δ_a + 2·δ_s` (Space Saving has `δ_a = 0`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RhhhConfig {
    /// Counter-algorithm error `ε_a` (each instance gets
    /// `⌈(1+ε_s)/ε_a⌉` counters, the over-sampling adjustment of
    /// Corollary 6.5).
    pub epsilon_a: f64,
    /// Sampling error `ε_s` — drives the convergence bound ψ.
    pub epsilon_s: f64,
    /// Sampling confidence `δ_s`; the overall `δ = δ_a + 2·δ_s`.
    pub delta_s: f64,
    /// Performance parameter: `V = v_scale · H` (clamped to at least `H`).
    /// `1` is plain RHHH, `10` is the paper's 10-RHHH.
    pub v_scale: u64,
    /// Independent update draws per packet — the `r` of Corollary 6.8
    /// (converges `r×` faster at `r×` the update cost). Usually 1.
    pub updates_per_packet: u32,
    /// PRNG seed (runs with equal seeds are bit-identical).
    pub seed: u64,
}

impl Default for RhhhConfig {
    /// The paper's operating point: `ε_a = ε_s = 0.001`, `δ_s = 0.001`,
    /// `V = H`.
    fn default() -> Self {
        Self {
            epsilon_a: 1e-3,
            epsilon_s: 1e-3,
            delta_s: 1e-3,
            v_scale: 1,
            updates_per_packet: 1,
            seed: 0x5EED,
        }
    }
}

impl RhhhConfig {
    /// The paper's "10-RHHH": `V = 10·H`, i.e. 90% of packets are ignored.
    #[must_use]
    pub fn ten_rhhh() -> Self {
        Self {
            v_scale: 10,
            ..Self::default()
        }
    }

    /// Overall accuracy guarantee `ε = ε_a + ε_s`.
    #[must_use]
    pub fn epsilon(&self) -> f64 {
        self.epsilon_a + self.epsilon_s
    }

    /// Overall confidence `δ = δ_a + 2·δ_s` with `δ_a = 0` for the counter
    /// algorithms in this workspace.
    #[must_use]
    pub fn delta(&self) -> f64 {
        2.0 * self.delta_s
    }
}

/// The RHHH algorithm, generic over key type and per-node counter
/// algorithm (Space Saving by default, per the paper).
#[derive(Debug, Clone)]
pub struct Rhhh<K: KeyBits, E: FrequencyEstimator<K> = SpaceSaving<K>> {
    lattice: Lattice<K>,
    pub(crate) instances: Vec<E>,
    /// Cached masks in node order — avoids the lattice indirection on the
    /// hot path.
    pub(crate) masks: Vec<K>,
    pub(crate) v: u64,
    pub(crate) h: u64,
    pub(crate) rng: FastRng,
    pub(crate) packets: u64,
    /// Total recorded weight (equals `packets` for unit updates).
    pub(crate) weight: u64,
    pub(crate) config: RhhhConfig,
    /// Precomputed `H/V` selection constants for the batch path: the
    /// geometric gap sampler caches `1/ln(1 - H/V)` so per-batch work never
    /// recomputes it.
    pub(crate) skip: GeometricSkip,
    /// Reusable buffers for [`Rhhh::update_batch`]; kept on the instance so
    /// steady-state batch updates allocate nothing.
    pub(crate) scratch: BatchScratch<K>,
}

impl<K: KeyBits, E: FrequencyEstimator<K>> Rhhh<K, E> {
    /// Builds an RHHH instance over `lattice` with the given configuration.
    #[must_use]
    pub fn new(lattice: Lattice<K>, config: RhhhConfig) -> Self {
        assert!(config.v_scale >= 1, "v_scale must be at least 1 (V >= H)");
        assert!(
            config.updates_per_packet >= 1,
            "updates_per_packet must be at least 1"
        );
        let h = lattice.num_nodes() as u64;
        let v = config.v_scale * h;
        let counters = counters_for(config.epsilon_a, config.epsilon_s);
        let instances = (0..lattice.num_nodes())
            .map(|_| E::with_capacity(counters))
            .collect();
        let masks = lattice.node_ids().map(|n| lattice.mask(n)).collect();
        Self {
            lattice,
            instances,
            masks,
            v,
            h,
            rng: FastRng::new(config.seed),
            packets: 0,
            weight: 0,
            config,
            skip: GeometricSkip::new(h, v),
            scratch: BatchScratch::default(),
        }
    }

    /// The performance parameter `V`.
    #[must_use]
    pub fn v(&self) -> u64 {
        self.v
    }

    /// The hierarchy size `H`.
    #[must_use]
    pub fn h(&self) -> u64 {
        self.h
    }

    /// The lattice this instance measures over.
    #[must_use]
    pub fn lattice(&self) -> &Lattice<K> {
        &self.lattice
    }

    /// The configuration this instance was built with.
    #[must_use]
    pub fn config(&self) -> &RhhhConfig {
        &self.config
    }

    /// The convergence bound ψ of Theorem 6.3, adjusted for the r-updates
    /// extension (Corollary 6.8): once `packets() > psi()` the
    /// (δ, ε, θ)-approximate HHH guarantee of Theorem 6.17 holds.
    #[must_use]
    pub fn psi(&self) -> f64 {
        psi(self.v, self.config.epsilon_s, self.config.delta_s)
            / f64::from(self.config.updates_per_packet)
    }

    /// Whether the stream is long enough for the formal guarantee.
    #[must_use]
    pub fn converged(&self) -> bool {
        self.packets as f64 > self.psi()
    }

    /// Algorithm 1 `Update(x)`: draw, mask, increment — O(1) worst case.
    #[inline]
    pub fn update(&mut self, key: K) {
        self.packets += 1;
        self.weight += 1;
        for _ in 0..self.config.updates_per_packet {
            let d = self.rng.bounded(self.v);
            if d < self.h {
                let masked = key.and(self.masks[d as usize]);
                self.instances[d as usize].increment(masked);
            }
        }
    }

    /// Weighted update: one draw per packet, `weight` units recorded at the
    /// selected node. Extension beyond the paper (which analyzes unit
    /// updates for RHHH and notes MST's weighted updates cost
    /// `O(H·log 1/ε)`): frequencies then estimate *traffic volume* (e.g.
    /// bytes) instead of packet counts, and `Output(θ)`'s threshold applies
    /// to total volume. The sampling analysis carries over with `N` replaced
    /// by total weight, at variance inflated by the weight dispersion — the
    /// slack term remains conservative for bounded weights but the formal
    /// ψ bound is only exact for unit weights.
    #[inline]
    pub fn update_weighted(&mut self, key: K, weight: u64) {
        self.packets += 1;
        self.weight += weight;
        for _ in 0..self.config.updates_per_packet {
            let d = self.rng.bounded(self.v);
            if d < self.h {
                let masked = key.and(self.masks[d as usize]);
                self.instances[d as usize].add(masked, weight);
            }
        }
    }

    /// Total recorded weight `W` (equals `packets()` for unit updates); the
    /// `N` that `Output(θ)` thresholds against.
    #[must_use]
    pub fn total_weight(&self) -> u64 {
        self.weight
    }

    /// Clears all counter state and the packet counter for a new
    /// measurement interval, keeping the configuration and advancing the
    /// PRNG (intervals stay statistically independent). Interval-based
    /// monitoring (e.g. per-epoch DDoS scoring) resets instead of
    /// reallocating the `H` counter instances.
    pub fn reset(&mut self) {
        let counters = counters_for(self.config.epsilon_a, self.config.epsilon_s);
        for instance in &mut self.instances {
            *instance = E::with_capacity(counters);
        }
        self.packets = 0;
        self.weight = 0;
    }

    /// Merges `other` — an instance over the same lattice with the same
    /// accuracy configuration — into `self`, so that `self` summarizes the
    /// union of both input streams. This is the aggregation step of every
    /// shard-parallel deployment: per-RSS-queue instances, per-VM backends
    /// and per-device monitors each count their own sub-stream cheaply and
    /// combine at query time.
    ///
    /// Mechanics: node `i`'s counter instance absorbs `other`'s node-`i`
    /// instance via [`FrequencyEstimator::merge`] (exact Space Saving merge
    /// semantics: count+error pairing, re-eviction to capacity), and the
    /// packet and weight totals accumulate — so `N`, the ψ convergence
    /// check and the sampling slack all recompute over the union.
    ///
    /// Accuracy: the per-node counter error bounds *add* (`ε_a` over the
    /// summed updates, unchanged), and the sampling errors of the shards
    /// are independent, so their variances add — the merged instance's
    /// `slack() = 2·Z·√(N·V)` over the total `N` is exactly the standard
    /// deviation bound of the summed estimators, the same guarantee a
    /// single instance earns on the whole stream. Convergence still
    /// requires the *total* `N > ψ`, which the accumulated packet count
    /// reflects. Seeds may differ (shards should use distinct seeds);
    /// `self` keeps its own RNG state.
    ///
    /// # Errors
    ///
    /// [`MergeError::ConfigMismatch`] when the lattices (masks) differ or
    /// any accuracy/performance field of the configuration differs; `self`
    /// is unchanged in that case.
    pub fn try_merge(&mut self, other: Self) -> Result<(), MergeError> {
        if self.masks != other.masks {
            return Err(MergeError::ConfigMismatch(format!(
                "lattice `{}` vs `{}`",
                self.lattice.name(),
                other.lattice.name()
            )));
        }
        let (a, b) = (&self.config, &other.config);
        if (a.epsilon_a, a.epsilon_s, a.delta_s) != (b.epsilon_a, b.epsilon_s, b.delta_s)
            || a.v_scale != b.v_scale
            || a.updates_per_packet != b.updates_per_packet
        {
            return Err(MergeError::ConfigMismatch(format!(
                "config {a:?} vs {b:?} (seed may differ, everything else must match)"
            )));
        }
        self.packets += other.packets;
        self.weight += other.weight;
        for (mine, theirs) in self.instances.iter_mut().zip(other.instances) {
            mine.merge(theirs);
        }
        Ok(())
    }

    /// [`Rhhh::try_merge`] for callers that construct both sides — shard
    /// pipelines built from one configuration — where a mismatch is a bug.
    ///
    /// # Panics
    ///
    /// Panics when the lattices or configurations are incompatible.
    pub fn merge(&mut self, other: Self) {
        if let Err(e) = self.try_merge(other) {
            panic!("Rhhh::merge: {e}");
        }
    }

    /// Merges `K` shard instances at once — the harvest path of
    /// `hhh_vswitch::ShardedMonitor`-style pipelines. Each node's
    /// estimator absorbs all K counterparts through
    /// one [`FrequencyEstimator::merge_many`] combine instead of a
    /// pairwise fold, which shaves the fold's accumulated min-count
    /// padding (the K-way combine pads one-sided keys with the per-shard
    /// minima, the fold with the growing intermediate merged minima).
    /// Totals, convergence and slack accumulate exactly as in
    /// [`Rhhh::try_merge`].
    ///
    /// # Errors
    ///
    /// [`MergeError::ConfigMismatch`] when any input's lattice or
    /// accuracy/performance configuration differs from `self`'s; `self` is
    /// unchanged in that case.
    pub fn try_merge_many(&mut self, others: Vec<Self>) -> Result<(), MergeError> {
        // Validate every input before mutating anything.
        for other in &others {
            if self.masks != other.masks {
                return Err(MergeError::ConfigMismatch(format!(
                    "lattice `{}` vs `{}`",
                    self.lattice.name(),
                    other.lattice.name()
                )));
            }
            let (a, b) = (&self.config, &other.config);
            if (a.epsilon_a, a.epsilon_s, a.delta_s) != (b.epsilon_a, b.epsilon_s, b.delta_s)
                || a.v_scale != b.v_scale
                || a.updates_per_packet != b.updates_per_packet
            {
                return Err(MergeError::ConfigMismatch(format!(
                    "config {a:?} vs {b:?} (seed may differ, everything else must match)"
                )));
            }
        }
        // Transpose: node i's estimators from every shard, handed to one
        // K-way counter combine each.
        let h = self.h as usize;
        let mut per_node: Vec<Vec<E>> = (0..h).map(|_| Vec::with_capacity(others.len())).collect();
        for other in others {
            self.packets += other.packets;
            self.weight += other.weight;
            for (node, instance) in other.instances.into_iter().enumerate() {
                per_node[node].push(instance);
            }
        }
        for (mine, theirs) in self.instances.iter_mut().zip(per_node) {
            mine.merge_many(theirs);
        }
        Ok(())
    }

    /// [`Rhhh::try_merge_many`] for callers that construct every side.
    ///
    /// # Panics
    ///
    /// Panics when any lattice or configuration is incompatible.
    pub fn merge_many(&mut self, others: Vec<Self>) {
        if let Err(e) = self.try_merge_many(others) {
            panic!("Rhhh::merge_many: {e}");
        }
    }

    /// Applies an already-drawn update directly to one node's instance —
    /// the backend half of the distributed integration (Section 5.2's
    /// "HHH measurement … performed in a separate virtual machine"): the
    /// switch performs the `[0, V)` draw and forwards only sampled
    /// `(node, masked key)` pairs; the measurement side calls this.
    #[inline]
    pub fn raw_update(&mut self, node: NodeId, masked_key: K) {
        self.instances[node.index()].increment(masked_key);
    }

    /// Overrides the packet count `N`. Required by distributed frontends:
    /// `N` counts packets seen by the *switch*, while this instance only
    /// sees the sampled sub-stream.
    pub fn note_packets(&mut self, n: u64) {
        self.packets = n;
        self.weight = n;
    }

    /// Frequency scale: each recorded update stands for `V/r` packets
    /// (Definition 11 with the Corollary 6.8 adjustment).
    #[must_use]
    pub fn scale(&self) -> f64 {
        self.v as f64 / f64::from(self.config.updates_per_packet)
    }

    /// The sampling slack added to every conditioned-frequency estimate
    /// (Algorithm 1 line 13): `2·Z_{1-δ}·√(N·V/r)`.
    #[must_use]
    pub fn slack(&self) -> f64 {
        if self.weight == 0 {
            return 0.0;
        }
        let delta = self.config.delta().min(0.5);
        sampling_slack(
            self.weight,
            self.v / u64::from(self.config.updates_per_packet).max(1),
            delta,
        )
    }

    /// Algorithm 1 `Output(θ)`.
    #[must_use]
    pub fn output(&self, theta: f64) -> Vec<HeavyHitter<K>> {
        extract_hhh(
            &self.lattice,
            self,
            theta,
            self.weight,
            self.scale(),
            self.slack(),
        )
    }

    /// Total updates delivered to node instances (≈ `N·r·H/V`); diagnostic.
    #[must_use]
    pub fn total_updates(&self) -> u64 {
        self.instances.iter().map(FrequencyEstimator::updates).sum()
    }

    /// Updates delivered to one node's instance (`X_i` in the balls-and-bins
    /// analysis of Section 6); used by the ψ-convergence experiment.
    #[must_use]
    pub fn node_updates(&self, node: NodeId) -> u64 {
        self.instances[node.index()].updates()
    }

    /// The per-node counter instances in lattice-node order (diagnostic;
    /// the dispatch census in the speed benches reads each instance's
    /// [`FrequencyEstimator::layout_label`] through this).
    #[doc(hidden)]
    #[must_use]
    pub fn node_instances(&self) -> &[E] {
        &self.instances
    }
}

impl<K: KeyBits, E: FrequencyEstimator<K>> NodeEstimates<K> for Rhhh<K, E> {
    fn node_candidates(&self, node: NodeId) -> Vec<Candidate<K>> {
        self.instances[node.index()].candidates()
    }

    fn node_upper(&self, node: NodeId, key: &K) -> u64 {
        self.instances[node.index()].upper(key)
    }

    fn node_lower(&self, node: NodeId, key: &K) -> u64 {
        self.instances[node.index()].lower(key)
    }
}

impl<K: KeyBits, E: FrequencyEstimator<K>> HhhAlgorithm<K> for Rhhh<K, E> {
    fn insert(&mut self, key: K) {
        self.update(key);
    }

    fn insert_batch(&mut self, keys: &[K]) {
        self.update_batch(keys);
    }

    fn into_any(self: Box<Self>) -> Box<dyn std::any::Any> {
        self
    }

    fn merge(&mut self, other: Box<dyn HhhAlgorithm<K>>) -> Result<(), MergeError> {
        let right = other.name();
        match other.into_any().downcast::<Self>() {
            Ok(other) => self.try_merge(*other),
            // A different algorithm — or RHHH over a different per-node
            // counter type, which erases to a different `Self`.
            Err(_) => Err(MergeError::AlgorithmMismatch {
                left: self.name(),
                right,
            }),
        }
    }

    fn packets(&self) -> u64 {
        self.packets
    }

    fn query(&self, theta: f64) -> Vec<HeavyHitter<K>> {
        self.output(theta)
    }

    fn name(&self) -> String {
        if self.config.v_scale == 1 {
            "RHHH".to_string()
        } else {
            format!("{}-RHHH", self.config.v_scale)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hhh_hierarchy::pack2;

    fn ip(a: u8, b: u8, c: u8, d: u8) -> u32 {
        u32::from_be_bytes([a, b, c, d])
    }

    /// Deterministic LCG for reproducible synthetic streams in tests.
    struct Lcg(u64);
    impl Lcg {
        fn next(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0 >> 16
        }
    }

    #[test]
    fn update_rate_is_h_over_v() {
        let lat = hhh_hierarchy::Lattice::ipv4_src_dst_bytes();
        let mut ten = Rhhh::<u64>::new(lat, RhhhConfig::ten_rhhh());
        let mut rng = Lcg(1);
        let n = 200_000;
        for _ in 0..n {
            ten.update(rng.next());
        }
        let rate = ten.total_updates() as f64 / n as f64;
        assert!((rate - 0.1).abs() < 0.01, "update rate {rate}");
        assert_eq!(ten.packets(), n);
    }

    #[test]
    fn v_equals_h_updates_every_packet() {
        let lat = hhh_hierarchy::Lattice::ipv4_src_bytes();
        let mut algo = Rhhh::<u32>::new(lat, RhhhConfig::default());
        let mut rng = Lcg(2);
        for _ in 0..50_000 {
            algo.update(rng.next() as u32);
        }
        assert_eq!(algo.total_updates(), 50_000, "V = H never skips");
    }

    #[test]
    fn updates_spread_evenly_across_nodes() {
        let lat = hhh_hierarchy::Lattice::ipv4_src_dst_bytes();
        let mut algo = Rhhh::<u64>::new(lat, RhhhConfig::default());
        let mut rng = Lcg(3);
        let n = 250_000u64;
        for _ in 0..n {
            algo.update(rng.next());
        }
        let expect = n / 25;
        for node in 0..25usize {
            let u = algo.instances[node].updates();
            assert!(
                (u as i64 - expect as i64).unsigned_abs() < expect / 10,
                "node {node}: {u} vs {expect}"
            );
        }
    }

    #[test]
    fn finds_planted_hierarchical_heavy_hitter() {
        // Plant a /16 source subnet carrying 30% of traffic toward one
        // destination; no single /32 is heavy.
        let lat = hhh_hierarchy::Lattice::ipv4_src_dst_bytes();
        let mut algo = Rhhh::<u64>::new(
            lat,
            RhhhConfig {
                // Loose sampling error so ψ ≈ Z·V/ε_s² stays below N.
                epsilon_s: 0.02,
                epsilon_a: 0.005,
                delta_s: 0.05,
                ..RhhhConfig::default()
            },
        );
        let mut rng = Lcg(4);
        let n = 400_000u64;
        for i in 0..n {
            let key = if i % 10 < 3 {
                // 10.20.x.y -> 8.8.8.8, x.y spread uniformly.
                pack2(0x0A14_0000 | (rng.next() as u32 & 0xFFFF), ip(8, 8, 8, 8))
            } else {
                pack2(rng.next() as u32, rng.next() as u32)
            };
            algo.update(key);
        }
        assert!(algo.converged(), "psi = {}, n = {n}", algo.psi());

        let out = algo.output(0.1);
        let lat = algo.lattice();
        let rendered: Vec<String> = out.iter().map(|h| h.prefix.display(lat)).collect();
        assert!(
            rendered
                .iter()
                .any(|s| s.contains("10.20.0.0/16") && s.contains("8.8.8.8/32")),
            "missing planted HHH in {rendered:?}"
        );
    }

    #[test]
    fn frequency_estimates_scale_by_v() {
        // With a single dominating key, its estimated frequency must be
        // within the ε·N guarantee of the truth, for both V = H and 10·H.
        for (config, tol_scale) in [(RhhhConfig::default(), 1.0), (RhhhConfig::ten_rhhh(), 1.0)] {
            let lat = hhh_hierarchy::Lattice::ipv4_src_bytes();
            let mut algo = Rhhh::<u32>::new(
                lat,
                RhhhConfig {
                    epsilon_s: 0.05,
                    delta_s: 0.05,
                    seed: 42,
                    ..config
                },
            );
            let n = 300_000u64;
            let heavy = ip(1, 2, 3, 4);
            let mut rng = Lcg(5);
            for i in 0..n {
                if i % 2 == 0 {
                    algo.update(heavy);
                } else {
                    algo.update(rng.next() as u32);
                }
            }
            let out = algo.output(0.3);
            let entry = out
                .iter()
                .find(|h| h.prefix.node == algo.lattice().bottom() && h.prefix.key == heavy)
                .unwrap_or_else(|| panic!("{} lost the heavy key", algo.name()));
            let truth = (n / 2) as f64;
            let eps_n = algo.config().epsilon() * n as f64 + algo.slack() * tol_scale;
            assert!(
                (entry.freq_upper - truth).abs() <= eps_n
                    || (entry.freq_lower - truth).abs() <= eps_n,
                "{}: bounds [{}, {}] vs truth {truth} (allow {eps_n})",
                algo.name(),
                entry.freq_lower,
                entry.freq_upper,
            );
        }
    }

    #[test]
    fn multi_update_converges_faster() {
        let lat = hhh_hierarchy::Lattice::ipv4_src_bytes();
        let base = Rhhh::<u32>::new(lat.clone(), RhhhConfig::default());
        let boosted = Rhhh::<u32>::new(
            lat,
            RhhhConfig {
                updates_per_packet: 4,
                ..RhhhConfig::default()
            },
        );
        assert!((base.psi() / boosted.psi() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn deterministic_given_seed() {
        let lat = hhh_hierarchy::Lattice::ipv4_src_dst_bytes();
        let mut a = Rhhh::<u64>::new(lat.clone(), RhhhConfig::default());
        let mut b = Rhhh::<u64>::new(lat, RhhhConfig::default());
        let mut rng = Lcg(9);
        for _ in 0..100_000 {
            let k = rng.next();
            a.update(k);
            b.update(k);
        }
        assert_eq!(a.total_updates(), b.total_updates());
        let (oa, ob) = (a.output(0.05), b.output(0.05));
        assert_eq!(oa.len(), ob.len());
        for (x, y) in oa.iter().zip(&ob) {
            assert_eq!(x.prefix, y.prefix);
            assert_eq!(x.freq_upper, y.freq_upper);
        }
    }

    #[test]
    fn psi_matches_paper_numbers() {
        let lat = hhh_hierarchy::Lattice::ipv4_src_dst_bytes();
        let algo = Rhhh::<u64>::new(lat.clone(), RhhhConfig::default());
        // V = 25, ε_s = δ_s = 0.001 -> ψ ≈ 8.2e7 ("about 100 million").
        assert!(algo.psi() > 7.5e7 && algo.psi() < 9.0e7);
        let ten = Rhhh::<u64>::new(lat, RhhhConfig::ten_rhhh());
        assert!(ten.psi() > 7.5e8 && ten.psi() < 9.0e8);
    }

    #[test]
    fn empty_stream_output_is_empty() {
        let lat = hhh_hierarchy::Lattice::ipv4_src_bytes();
        let algo = Rhhh::<u32>::new(lat, RhhhConfig::default());
        assert!(algo.output(0.01).is_empty());
        assert_eq!(algo.slack(), 0.0);
    }

    #[test]
    fn works_with_other_counter_algorithms() {
        use hhh_counters::{
            CompactSpaceSaving, CuckooHeavyKeeper, DispatchedEstimator, HeapSpaceSaving,
            LossyCounting, MisraGries,
        };
        let mut rng = Lcg(11);
        let mut keys = Vec::new();
        for i in 0..100_000u64 {
            keys.push(if i % 3 == 0 {
                ip(9, 9, 0, 0)
            } else {
                rng.next() as u32
            });
        }
        macro_rules! check {
            ($est:ty) => {{
                let lat = hhh_hierarchy::Lattice::ipv4_src_bytes();
                let mut algo = Rhhh::<u32, $est>::new(
                    lat,
                    RhhhConfig {
                        epsilon_s: 0.05,
                        delta_s: 0.05,
                        ..RhhhConfig::default()
                    },
                );
                for &k in &keys {
                    algo.update(k);
                }
                let out = algo.output(0.2);
                assert!(
                    !out.is_empty(),
                    "{} found nothing",
                    std::any::type_name::<$est>()
                );
            }};
        }
        check!(CompactSpaceSaving<u32>);
        check!(HeapSpaceSaving<u32>);
        check!(MisraGries<u32>);
        check!(LossyCounting<u32>);
        check!(CuckooHeavyKeeper<u32>);
        check!(DispatchedEstimator<u32>);
    }

    #[test]
    fn weighted_updates_estimate_volume() {
        let lat = hhh_hierarchy::Lattice::ipv4_src_bytes();
        let mut algo = Rhhh::<u32>::new(
            lat,
            RhhhConfig {
                epsilon_s: 0.05,
                delta_s: 0.05,
                ..RhhhConfig::default()
            },
        );
        let mut rng = Lcg(31);
        let n = 200_000u64;
        let heavy = ip(7, 7, 7, 7);
        // The heavy flow sends few packets but large ones: 10% of packets,
        // weight 1400 each; the rest weight 64. Volume share ≈ 70%.
        let mut volume = 0u64;
        for i in 0..n {
            if i % 10 == 0 {
                algo.update_weighted(heavy, 1400);
                volume += 1400;
            } else {
                algo.update_weighted(rng.next() as u32, 64);
                volume += 64;
            }
        }
        assert_eq!(algo.total_weight(), volume);
        assert_eq!(algo.packets(), n);
        let out = algo.output(0.3);
        let entry = out
            .iter()
            .find(|h| h.prefix.key == heavy && h.prefix.node == algo.lattice().bottom())
            .expect("volume-heavy flow reported");
        let truth = (n / 10 * 1400) as f64;
        assert!(
            (entry.freq_upper - truth).abs() < 0.2 * truth,
            "estimate {} vs volume {truth}",
            entry.freq_upper
        );
    }

    #[test]
    fn reset_clears_state_for_next_interval() {
        let lat = hhh_hierarchy::Lattice::ipv4_src_bytes();
        let mut algo = Rhhh::<u32>::new(
            lat,
            RhhhConfig {
                epsilon_s: 0.05,
                delta_s: 0.05,
                ..RhhhConfig::default()
            },
        );
        for _ in 0..100_000 {
            algo.update(ip(1, 1, 1, 1));
        }
        assert!(!algo.output(0.5).is_empty());
        algo.reset();
        assert_eq!(algo.packets(), 0);
        assert_eq!(algo.total_weight(), 0);
        assert_eq!(algo.total_updates(), 0);
        assert!(algo.output(0.5).is_empty());
        // The next interval works normally and finds its own HHHs.
        let mut rng = Lcg(33);
        for i in 0..150_000u64 {
            let key = if i % 2 == 0 {
                ip(9, 9, 9, 9)
            } else {
                rng.next() as u32
            };
            algo.update(key);
        }
        let out = algo.output(0.3);
        assert!(out.iter().any(|h| h.prefix.key == ip(9, 9, 9, 9)));
    }

    #[test]
    fn three_dimensional_lattice_update_and_output() {
        // The paper (via Mitzenmacher et al.) notes the structure extends to
        // higher dimensions. Build a 3D hierarchy: src byte-pairs × dst
        // byte-pairs × port as an extra two-level dimension.
        use hhh_hierarchy::{FieldSpec, Lattice};
        let lat: Lattice<u128> = Lattice::new(
            "3d-src-dst-port",
            vec![
                FieldSpec::new(32, 16),
                FieldSpec::new(32, 16),
                FieldSpec::new(16, 16),
            ],
        );
        assert_eq!(lat.num_nodes(), 3 * 3 * 2);
        let mut algo = Rhhh::<u128>::new(
            lat,
            RhhhConfig {
                epsilon_s: 0.05,
                delta_s: 0.05,
                ..RhhhConfig::default()
            },
        );
        let mut rng = Lcg(35);
        for i in 0..200_000u64 {
            let (src, dst, port) = if i % 4 == 0 {
                // Hot aggregate: 10.20/16 -> anything, port 80.
                (
                    0x0A14_0000u32 | (rng.next() as u32 & 0xFFFF),
                    rng.next() as u32,
                    80u16,
                )
            } else {
                (rng.next() as u32, rng.next() as u32, rng.next() as u16)
            };
            let key = (u128::from(src) << 48) | (u128::from(dst) << 16) | u128::from(port);
            algo.update(key);
        }
        let out = algo.output(0.2);
        assert!(!out.is_empty(), "3D output must produce aggregates");
        for h in &out {
            assert!(h.conditioned.is_finite());
        }
    }

    #[test]
    #[should_panic(expected = "v_scale must be at least 1")]
    fn rejects_zero_v_scale() {
        let lat = hhh_hierarchy::Lattice::ipv4_src_bytes();
        let _ = Rhhh::<u32>::new(
            lat,
            RhhhConfig {
                v_scale: 0,
                ..RhhhConfig::default()
            },
        );
    }
}
