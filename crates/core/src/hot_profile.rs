//! Feature-gated cycle accounting for the batch hot path.
//!
//! The `update_speed` benches answer "how fast is the batch path end to
//! end", but never *where the time goes* — and a perf PR that can't
//! attribute its cycles is guessing. With the `hot-profile` cargo feature
//! enabled, [`crate::batch`] brackets each pipeline stage of
//! `update_batch` with a [`ProfTimer`] and charges the elapsed wall time
//! to one of four named stages plus a whole-call total:
//!
//! * **`draw`** — RNG block fill, the geometric gap (`fast_ln`)
//!   conversion, and the selection walk that turns gaps into packet
//!   indices.
//! * **`mask-hash`** — deriving each trial's node from its draw (the
//!   Lemire bound) and the masked-key gather (`key & node_mask`, the
//!   block's SWAR lane work).
//! * **`scatter`** — distributing masked keys into the per-node staging
//!   groups.
//! * **`flush`** — handing each node group to its counter instance
//!   (`flush_group_evicting`), including the counter's own sort/evict
//!   work.
//!
//! Accounting is per-thread (`thread_local`) so shard-parallel pipelines
//! don't contend, and the timers bracket whole *refill blocks* (≤256
//! selected packets), not individual keys — two `Instant::now()` calls per
//! stage per block amortize to a few tenths of a nanosecond per packet,
//! small against the ~4 ns/packet batch path. Stage time is measured
//! inside the total bracket, so `draw + mask-hash + scatter + flush ≤
//! total` and the gap is genuinely unattributed work (scratch clears, the
//! walk's tail, timer overhead); the CI gate on the
//! `hot_path_profile` bench asserts the named stages cover ≥ 95% of the
//! total.
//!
//! The `flush` stage additionally keeps a **per-layout** side table: each
//! per-node flush charges its time against the node counter's
//! [`layout_label`](hhh_counters::FrequencyEstimator::layout_label), so a
//! dispatched lattice (where different nodes run different layouts) shows
//! where its flush cycles actually go. The side table is informational —
//! the `Stage::Flush` accumulator and the ≥ 95% accounted-share gate are
//! computed exactly as before.
//!
//! With the feature **off** (the default), [`ProfTimer`] is a unit struct,
//! every method is an empty `#[inline(always)]` body, and the whole layer
//! compiles to nothing — the bit-identity and throughput of the unprofiled
//! batch path are untouched.

/// The named stages of the batch update pipeline, in pipeline order.
/// `Total` brackets the whole `update_batch` call and is what the
/// per-stage shares are computed against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// RNG fill + gap conversion + selection walk.
    Draw,
    /// Node derivation + masked-key gather.
    MaskHash,
    /// Distribution into per-node staging groups.
    Scatter,
    /// Per-node counter flush.
    Flush,
    /// The whole batch call.
    Total,
}

/// Stage names as they appear in the profile JSON, indexed by `Stage`.
pub const STAGE_NAMES: [&str; 5] = ["draw", "mask-hash", "scatter", "flush", "total"];

/// Accumulated per-stage wall time and bracket counts for the current
/// thread, as captured by [`snapshot`]. Indexed by [`Stage`] discriminant.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageTotals {
    /// Nanoseconds charged to each stage.
    pub ns: [u64; 5],
    /// Number of timer brackets charged to each stage.
    pub calls: [u64; 5],
}

impl StageTotals {
    /// Nanoseconds charged to `stage`.
    #[must_use]
    pub fn ns(&self, stage: Stage) -> u64 {
        self.ns[stage as usize]
    }

    /// Fraction of the `Total` bracket attributed to the four named
    /// stages; the CI profile gate requires ≥ 0.95. Returns 0 when no
    /// total time was recorded.
    #[must_use]
    pub fn accounted_share(&self) -> f64 {
        let total = self.ns[Stage::Total as usize];
        if total == 0 {
            return 0.0;
        }
        let named: u64 = self.ns[..4].iter().sum();
        named as f64 / total as f64
    }
}

#[cfg(feature = "hot-profile")]
mod imp {
    use super::{Stage, StageTotals};
    use std::cell::{Cell, RefCell};
    use std::time::Instant;

    thread_local! {
        static TOTALS: Cell<StageTotals> = const { Cell::new(StageTotals { ns: [0; 5], calls: [0; 5] }) };
        static FLUSH_LAYOUTS: RefCell<Vec<(&'static str, u64, u64)>> = const { RefCell::new(Vec::new()) };
    }

    /// Wall-clock bracket charging its elapsed time to one [`Stage`].
    #[derive(Debug)]
    pub struct ProfTimer {
        start: Instant,
    }

    impl ProfTimer {
        /// Starts the bracket.
        #[inline(always)]
        #[must_use]
        pub fn start() -> Self {
            Self {
                start: Instant::now(),
            }
        }

        /// Ends the bracket, charging the elapsed time to `stage`.
        #[inline(always)]
        pub fn stop(self, stage: Stage) {
            let elapsed = self.start.elapsed().as_nanos() as u64;
            TOTALS.with(|t| {
                let mut totals = t.get();
                totals.ns[stage as usize] += elapsed;
                totals.calls[stage as usize] += 1;
                t.set(totals);
            });
        }

        /// Ends the bracket, charging the elapsed time to the flush
        /// layout side table only (not a [`Stage`] — the caller's outer
        /// `Stage::Flush` bracket still owns the stage accounting).
        /// `label` is lazy so the disabled build never evaluates it.
        #[inline(always)]
        pub fn stop_layout(self, label: impl FnOnce() -> &'static str) {
            let elapsed = self.start.elapsed().as_nanos() as u64;
            let label = label();
            FLUSH_LAYOUTS.with(|t| {
                let mut rows = t.borrow_mut();
                if let Some(row) = rows.iter_mut().find(|r| r.0 == label) {
                    row.1 += elapsed;
                    row.2 += 1;
                } else {
                    rows.push((label, elapsed, 1));
                }
            });
        }
    }

    /// Zeroes the current thread's accumulators.
    pub fn reset() {
        TOTALS.with(|t| t.set(StageTotals::default()));
        FLUSH_LAYOUTS.with(|t| t.borrow_mut().clear());
    }

    /// Returns the current thread's accumulated totals.
    #[must_use]
    pub fn snapshot() -> StageTotals {
        TOTALS.with(Cell::get)
    }

    /// Returns the current thread's flush time split by counter layout
    /// label: `(label, ns, brackets)`, in first-seen order.
    #[must_use]
    pub fn flush_layout_snapshot() -> Vec<(&'static str, u64, u64)> {
        FLUSH_LAYOUTS.with(|t| t.borrow().clone())
    }
}

#[cfg(not(feature = "hot-profile"))]
mod imp {
    use super::{Stage, StageTotals};

    /// Disabled bracket: every method is an empty inlined body, so the
    /// instrumented call sites compile to exactly the uninstrumented code.
    #[derive(Debug)]
    pub struct ProfTimer;

    impl ProfTimer {
        /// Starts nothing.
        #[inline(always)]
        #[must_use]
        pub fn start() -> Self {
            Self
        }

        /// Charges nothing.
        #[inline(always)]
        pub fn stop(self, stage: Stage) {
            let _ = stage;
        }

        /// Charges nothing; the label closure is never called.
        #[inline(always)]
        pub fn stop_layout(self, label: impl FnOnce() -> &'static str) {
            let _ = label;
        }
    }

    /// No accumulators to zero.
    pub fn reset() {}

    /// Always the zero totals.
    #[must_use]
    pub fn snapshot() -> StageTotals {
        StageTotals::default()
    }

    /// Always empty.
    #[must_use]
    pub fn flush_layout_snapshot() -> Vec<(&'static str, u64, u64)> {
        Vec::new()
    }
}

pub use imp::{flush_layout_snapshot, reset, snapshot, ProfTimer};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[cfg(feature = "hot-profile")]
    fn brackets_accumulate_and_reset() {
        reset();
        let t = ProfTimer::start();
        std::hint::black_box(0u64);
        t.stop(Stage::Draw);
        let outer = ProfTimer::start();
        std::thread::sleep(std::time::Duration::from_millis(2));
        outer.stop(Stage::Total);
        let s = snapshot();
        assert_eq!(s.calls[Stage::Draw as usize], 1);
        assert_eq!(s.calls[Stage::Total as usize], 1);
        assert!(s.ns(Stage::Total) >= 2_000_000, "sleep must register");
        reset();
        assert_eq!(snapshot(), StageTotals::default());
    }

    #[test]
    #[cfg(feature = "hot-profile")]
    fn flush_layout_table_accumulates_per_label() {
        reset();
        for label in ["compact", "stream-summary", "compact"] {
            let t = ProfTimer::start();
            std::hint::black_box(0u64);
            t.stop_layout(|| label);
        }
        let rows = flush_layout_snapshot();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].0, "compact");
        assert_eq!(rows[0].2, 2, "two compact brackets fold into one row");
        assert_eq!(rows[1].0, "stream-summary");
        assert_eq!(rows[1].2, 1);
        // The side table never touches the stage accumulators.
        assert_eq!(snapshot(), StageTotals::default());
        reset();
        assert!(flush_layout_snapshot().is_empty());
    }

    #[test]
    #[cfg(not(feature = "hot-profile"))]
    fn disabled_layer_is_inert() {
        reset();
        let t = ProfTimer::start();
        t.stop(Stage::Total);
        let t = ProfTimer::start();
        t.stop_layout(|| unreachable!("label must not be evaluated when disabled"));
        assert_eq!(snapshot(), StageTotals::default());
        assert!(flush_layout_snapshot().is_empty());
    }

    #[test]
    fn accounted_share_is_named_over_total() {
        let mut s = StageTotals::default();
        assert_eq!(s.accounted_share(), 0.0);
        s.ns = [40, 30, 20, 5, 100];
        assert!((s.accounted_share() - 0.95).abs() < 1e-12);
        assert_eq!(s.ns(Stage::MaskHash), 30);
        assert_eq!(STAGE_NAMES[Stage::Flush as usize], "flush");
    }
}
