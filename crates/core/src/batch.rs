//! Batch update path: geometric skip sampling + block-staged per-node
//! grouping.
//!
//! # Why a batch path exists
//!
//! The scalar [`Rhhh::update`] is already O(1) worst case, but its constant
//! is dominated by per-packet overheads that a slice-at-a-time API can
//! amortize away:
//!
//! 1. **The discarded draws.** With `V = v_scale·H`, only an `H/V` fraction
//!    of packets touch a counter, yet every packet pays a wyrand step, a
//!    Lemire bounded reduction and a branch. The batch path instead draws
//!    the *gap* to the next selected packet directly from its geometric
//!    distribution ([`GeometricSkip`]) and strides over the ignored run in
//!    O(1) — for 10-RHHH that is one RNG draw per ~10 packets instead of
//!    one per packet. The gap and node draws are themselves produced in
//!    dependency-free blocks ([`FastRng::fill_block`]) so they pipeline
//!    instead of serializing on the RNG state, and one raw draw feeds both
//!    the gap (bits 11..64) and the node choice (bits 0..11).
//! 2. **Scattered counter access.** Selected updates land on a uniformly
//!    random lattice node, so consecutive scalar updates ping-pong between
//!    `H` independent Space Saving instances (each with its own hash index
//!    and stream-summary arena — ~25 working sets for the 2D byte lattice).
//!    The batch path scatters selected keys straight into one reusable
//!    buffer per node and flushes node by node, so one instance's index
//!    and buckets stay cache-hot while it drains its group.
//! 3. **Repeated work per duplicate key.** After masking, coarse nodes
//!    collapse many packets onto few distinct keys (at the root node,
//!    *all* of them onto one). Each group is sorted so equal masked keys
//!    become runs, which [`FrequencyEstimator::increment_batch`] merges
//!    into one weighted update per distinct key — one index lookup and one
//!    bucket walk where the scalar path pays one per packet.
//!
//! # The block front end (PR 6)
//!
//! The selection front end runs as a staged pipeline over *refill blocks*
//! (up to [`DRAW_BLOCK`] selection trials at a time) instead of one
//! packet-at-a-time closure dispatch:
//!
//! * **Draw** — one [`FastRng::fill_block`] refill produces the block's
//!   raw uniforms; the node choices are derived from their low bits in one
//!   dependency-free integer loop, the geometric gaps from their high bits
//!   in one float loop (the block evaluation of the `fast_ln` polynomial),
//!   and the selection walk reduces gaps to selected packet indices.
//!   Splitting the integer and float work into separate loops lets each
//!   pipeline saturate instead of interleaving; the RNG stream is consumed
//!   in *exactly* the order of the reference path (the gap transform draws
//!   nothing, so hoisting the node loop — including its rare Lemire
//!   rejection re-draws, which stay in trial order — is schedule-only).
//! * **Mask + hash** — the masked-key gather: `LANE_BLOCK`-wide lanes of
//!   `keys[idx] & mask[node]` written into one dense staging buffer.
//!   Masking is fused into the gather, which *replaces* the old
//!   read-modify-write mask pass over every per-node group; the u64 lane
//!   ANDs have no cross-lane dependencies. Key hashing itself stays inside
//!   the counter flush (the tagged table probes with the shared
//!   [`hhh_counters::mix`] hash), but the dense staged buffer is what the
//!   flush's hash loop streams from.
//! * **Scatter** — the staged masked keys are distributed into the
//!   per-node groups. The pushes are the only randomly-targeted writes
//!   left in the front end.
//! * **Flush** — each non-empty group goes to its counter instance via
//!   [`FrequencyEstimator::flush_group_evicting`], unchanged from PR 4/5.
//!
//! Each stage can be bracketed by the feature-gated cycle accounting in
//! [`crate::hot_profile`] (`hot-profile` feature; compiled out by
//! default), which is how the `hot_path_profile` bench attributes the
//! batch path's time.
//!
//! The pre-block shape of the path — per-selection closure dispatch, raw
//! keys scattered first and masked per group at flush time — is preserved
//! verbatim as [`Rhhh::update_batch_reference`] /
//! [`Rhhh::update_batch_weighted_reference`]: the property suite pins the
//! block path bit-identical to it (same seed, same chunking), and the
//! `update_speed` bench reports the block rows as within-run ratios
//! against it.
//!
//! # Draw-schedule caveat
//!
//! The scalar path consumes one `[0, V)` draw per packet; the batch path
//! consumes one `(0, 1]` draw per *selected* packet plus one `[0, H)` draw
//! for the node choice. Per packet both realise "select with probability
//! `H/V`, then pick a node uniformly", so every distributional statement in
//! the paper's analysis (Theorems 6.3–6.18 never look at the joint identity
//! of the underlying uniforms, only at the per-packet selection law) holds
//! verbatim for the batch path. But the same seed walks a different sample
//! path, so a batch run and a scalar run agree *statistically* — same
//! convergence bound ψ, same error guarantees — not bit-for-bit. The
//! `batch_props` suite checks this equivalence with a chi-squared test over
//! per-node update counts. The block and reference batch paths, by
//! contrast, consume the *same* draws in the same order and are
//! bit-identical.
//!
//! Within one node's group the flush handles keys in sorted rather than
//! arrival order — a tie-break Space Saving's guarantees never observe
//! (the sandwich `count − error ≤ X ≤ count` and the heavy-hitter property
//! hold for any processing order of the same multiset). Repeated runs with
//! the same seed are bit-identical.

use hhh_counters::FrequencyEstimator;
use hhh_hierarchy::KeyBits;

use crate::hot_profile::{ProfTimer, Stage};
use crate::radix::radix_sort_keys;
use crate::rhhh::Rhhh;
use crate::sampling::{FastRng, GeometricSkip};

/// Reusable buffers for the batch path, owned by [`Rhhh`] so steady-state
/// batches allocate nothing: selection scatters straight into one buffer
/// per lattice node, and the buffers keep their capacity across batches.
#[derive(Debug, Clone)]
pub struct BatchScratch<K> {
    /// Selected masked keys per node, in arrival order (lazily sized to `H`).
    node_keys: Vec<Vec<K>>,
    /// Selected masked `(key, weight)` pairs per node (weighted path).
    node_weighted: Vec<Vec<(K, u64)>>,
    /// Dense staging for one block's masked-key gather.
    mkeys: Vec<K>,
    /// Dense staging for one block's masked weighted gather.
    mweighted: Vec<(K, u64)>,
    /// Ping-pong buffer for the flush's byte-digit radix sort.
    radix: Vec<K>,
}

impl<K: KeyBits> Default for BatchScratch<K> {
    fn default() -> Self {
        Self {
            node_keys: Vec::new(),
            node_weighted: Vec::new(),
            mkeys: Vec::new(),
            mweighted: Vec::new(),
            radix: Vec::new(),
        }
    }
}

/// Draws consumed per refill of the selection walk's scratch blocks — the
/// granularity at which the staged pipeline (and its profile brackets)
/// operates.
const DRAW_BLOCK: usize = 256;

/// Lane width of the masked-key gather: the gather runs in fixed blocks of
/// this many keys so the bitwise-AND lanes unroll with no per-element
/// bounds or capacity checks.
const LANE_BLOCK: usize = 16;

/// Exact Lemire bounded draw from one pre-generated uniform; the rejection
/// branch (probability `h / 2^64`) falls back to a fresh serial draw, so
/// the result is unbiased.
#[inline(always)]
fn node_from(x: u64, h: u64, rng: &mut FastRng) -> u16 {
    let m = u128::from(x) * u128::from(h);
    let low = m as u64;
    if low < h {
        let threshold = h.wrapping_neg() % h;
        if low < threshold {
            return rng.bounded(h) as u16;
        }
    }
    (m >> 64) as u16
}

/// Walks `draws` Bernoulli(`H/V`) trials with the geometric gap sampler
/// and invokes `on_block(selected_draw_indices, nodes)` once per refill
/// block with that block's selected trials, in order.
///
/// This is the Draw stage of the block pipeline: one RNG block refill,
/// one integer loop deriving the node choices (the only consumer of
/// further serial draws, via the rare Lemire rejection), one float loop
/// converting gaps, and the selection walk that accumulates gaps into
/// draw indices. It consumes the RNG stream in exactly the same order as
/// [`for_each_selected_reference`] — same refill sizes, same rejection
/// draws in the same trial order — so the two paths are bit-identical
/// given the same generator state.
#[inline]
fn for_each_selected_blocks<S>(
    skip: &GeometricSkip,
    rng: &mut FastRng,
    h: u64,
    v: u64,
    draws: u64,
    mut on_block: S,
) where
    S: FnMut(&[u64], &[u16]),
{
    if draws == 0 {
        return;
    }
    let mut raw = [0u64; DRAW_BLOCK];
    let mut nodes = [0u16; DRAW_BLOCK];
    let mut idx = [0u64; DRAW_BLOCK];

    if skip.selects_all() {
        // V = H: every trial is selected; only node choices are needed.
        let mut cur = 0u64;
        while cur < draws {
            let t = ProfTimer::start();
            let take = ((draws - cur) as usize).min(DRAW_BLOCK);
            rng.fill_block(&mut raw[..take]);
            for j in 0..take {
                nodes[j] = node_from(raw[j], h, rng);
                idx[j] = cur + j as u64;
            }
            t.stop(Stage::Draw);
            on_block(&idx[..take], &nodes[..take]);
            cur += take as u64;
        }
        return;
    }

    let inv_p = (v / h).max(1); // expected draws per selection ≈ V/H
    let mut cur = 0u64;
    loop {
        let t = ProfTimer::start();
        // Size the refill to the expected remaining selections (plus
        // slack) so a tail refill doesn't draw a full block for a handful
        // of survivors.
        let expect = (draws - cur) / inv_p + 8;
        let len = (expect as usize).min(DRAW_BLOCK);
        rng.fill_block(&mut raw[..len]);
        if h < (1 << 11) {
            // One raw draw yields both the trial's node (bits 0..11,
            // exact 11-bit Lemire whose rare rejection — probability
            // (2^11 mod h)/2^11 — falls back to a fresh serial draw) and
            // its gap (bits 11..64). Node derivation runs first: the gap
            // transform overwrites the raw draws in place and consumes no
            // RNG, so the rejection draws keep their trial order.
            let threshold = (1u64 << 11) % h;
            for j in 0..len {
                let m = (raw[j] & 0x7FF) * h;
                nodes[j] = if (m & 0x7FF) < threshold {
                    rng.bounded(h) as u16
                } else {
                    (m >> 11) as u16
                };
            }
            skip.gaps_from_block(&mut raw[..len]);
        } else {
            // Very deep hierarchies: separate node draws, taken *after*
            // the gap block like the reference path.
            skip.gaps_from_block(&mut raw[..len]);
            let mut node_raw = [0u64; DRAW_BLOCK];
            rng.fill_block(&mut node_raw[..len]);
            for j in 0..len {
                nodes[j] = node_from(node_raw[j], h, rng);
            }
        }
        // The walk: every consumed trial is one selection until the draw
        // budget runs out mid-block (leftover trials are discarded, as in
        // the reference).
        let mut m = 0usize;
        let mut done = false;
        for &gap in &raw[..len] {
            cur += gap;
            if cur >= draws {
                done = true;
                break;
            }
            idx[m] = cur;
            m += 1;
            cur += 1;
        }
        t.stop(Stage::Draw);
        if m > 0 {
            on_block(&idx[..m], &nodes[..m]);
        }
        if done {
            return;
        }
    }
}

/// The Mask+hash stage: gathers `keys[idx/r] & masks[node]` for one block
/// into the dense staging buffer, [`LANE_BLOCK`] lanes at a time. The
/// lane loops index fixed-size chunks, so they compile to straight-line
/// loads and ANDs with no capacity or bounds checks; `map_key` lets the
/// weighted path gather `(key, weight)` pairs through the same lanes.
#[inline]
fn gather_masked<K: KeyBits, T: Copy, F>(
    r: u64,
    idx: &[u64],
    nodes: &[u16],
    masks: &[K],
    out: &mut Vec<T>,
    map_key: F,
) where
    F: Fn(usize, K) -> T,
{
    let m = idx.len();
    out.clear();
    out.reserve(m);
    let lanes = m - m % LANE_BLOCK;
    for (ic, nc) in idx[..lanes]
        .chunks_exact(LANE_BLOCK)
        .zip(nodes[..lanes].chunks_exact(LANE_BLOCK))
    {
        for l in 0..LANE_BLOCK {
            let packet = if r == 1 { ic[l] } else { ic[l] / r } as usize;
            out.push(map_key(packet, masks[nc[l] as usize]));
        }
    }
    for j in lanes..m {
        let packet = if r == 1 { idx[j] } else { idx[j] / r } as usize;
        out.push(map_key(packet, masks[nodes[j] as usize]));
    }
}

impl<K: KeyBits, E: FrequencyEstimator<K>> Rhhh<K, E> {
    /// Algorithm 1 `Update` over a whole packet slice — statistically
    /// identical to calling [`Rhhh::update`] per element (see the
    /// [module docs](self) for the exact sense of "identical"), at a
    /// fraction of the cost when `V > H`.
    ///
    /// Runs the staged block pipeline of the module docs: block-generated
    /// draws, a lane-wise masked gather (masking fused into the gather, so
    /// no group is re-walked to mask it), per-node scatter, and a sorted
    /// flush — ordered by the constant-byte-skipping radix sort of
    /// [`crate::radix`] — that merges duplicate masked keys into one
    /// weighted [`FrequencyEstimator`] update each. Bit-identical to
    /// [`Rhhh::update_batch_reference`] for the same seed and chunking.
    pub fn update_batch(&mut self, keys: &[K]) {
        self.update_batch_keyed(keys.len(), |packet| keys[packet]);
    }

    /// Zero-copy wire entry point: [`Rhhh::update_batch`] over a *virtual*
    /// key lane. `key_at(i)` returns the key of packet `i` — typically a
    /// fixed-offset big-endian load straight out of a raw frame buffer —
    /// so no key slice is ever materialized.
    ///
    /// **Bit-identity argument.** The RNG consumption schedule of the
    /// block pipeline depends only on the packet *count* (`draws` blocks
    /// of geometric gaps), never on key values, and the masked gather
    /// applies `key_at` at exactly the positions the struct-fed path
    /// indexes its slice. Feeding `n` frames here is therefore
    /// bit-identical to extracting the same `n` keys first and calling
    /// [`Rhhh::update_batch`] — the property suite pins this over raw
    /// frames, both counter layouts, V ∈ {H, 10H} and chunkings.
    ///
    /// With `V = 10H` only ~`n·H/V` packets are selected at all, so the
    /// wire path touches only ~a tenth of the frame bytes — ingest
    /// bandwidth inherits the paper's sampling discount.
    pub fn update_batch_wire<F>(&mut self, packets: usize, key_at: F)
    where
        F: Fn(usize) -> K,
    {
        self.update_batch_keyed(packets, key_at);
    }

    /// Shared body of [`Rhhh::update_batch`] / [`Rhhh::update_batch_wire`]:
    /// the staged block pipeline over an indexable key lane.
    fn update_batch_keyed<F>(&mut self, packets: usize, key_at: F)
    where
        F: Fn(usize) -> K,
    {
        let total = ProfTimer::start();
        let n = packets as u64;
        self.packets += n;
        self.weight += n;
        let r = u64::from(self.config.updates_per_packet);
        let draws = if r == 1 { n } else { n * r };

        let h = self.h as usize;
        let scratch = &mut self.scratch;
        if scratch.node_keys.len() < h {
            scratch.node_keys.resize_with(h, Vec::new);
        }
        for buf in &mut scratch.node_keys[..h] {
            buf.clear();
        }

        let node_keys = &mut scratch.node_keys;
        let mkeys = &mut scratch.mkeys;
        let masks = &self.masks;
        for_each_selected_blocks(
            &self.skip,
            &mut self.rng,
            self.h,
            self.v,
            draws,
            |idx, nodes| {
                let t = ProfTimer::start();
                gather_masked(r, idx, nodes, masks, mkeys, |packet, mask| {
                    key_at(packet).and(mask)
                });
                t.stop(Stage::MaskHash);
                let t = ProfTimer::start();
                for (&node, &mk) in nodes.iter().zip(mkeys.iter()) {
                    node_keys[node as usize].push(mk);
                }
                t.stop(Stage::Scatter);
            },
        );

        // Flush node by node: hand each unordered, already-masked group to
        // the estimator's `flush_group_evicting_with`, which owns both the
        // ordering decision (the default sorts by key so duplicates become
        // runs for `increment_batch`) and the license to batch the
        // evictions themselves (the flat-arena layout serves each run of
        // slot-stealing keys from one minimum-level sweep). When the
        // estimator does sort, it uses our byte-digit radix sorter, which
        // skips the byte positions a node's mask zeroed — same ascending
        // order as `sort_unstable`, so the state stays bit-identical to the
        // reference path's comparison-sorted flush. Order within a group is
        // a tie-break the analysis never observes, and bulk eviction
        // preserves the per-key count multiset exactly; see the module docs
        // and the `flush_group_evicting` contract.
        let t = ProfTimer::start();
        let instances = &mut self.instances;
        let radix = &mut scratch.radix;
        for (node, group) in scratch.node_keys[..h].iter_mut().enumerate() {
            if group.is_empty() {
                continue;
            }
            // Inner bracket feeds the per-layout side table only; the
            // outer `t` still owns the `Stage::Flush` accounting.
            let per_node = ProfTimer::start();
            let instance = &mut instances[node];
            instance.flush_group_evicting_with(group, &mut |g| radix_sort_keys(g, radix));
            per_node.stop_layout(|| instance.layout_label());
        }
        t.stop(Stage::Flush);
        total.stop(Stage::Total);
    }

    /// Weighted batch update: the batch counterpart of
    /// [`Rhhh::update_weighted`]. Each element is one packet carrying
    /// `weight` units (e.g. bytes); selection stays per *packet*, and a
    /// selected packet records its full weight at the chosen node. Runs
    /// the same staged block pipeline as [`Rhhh::update_batch`] and is
    /// bit-identical to [`Rhhh::update_batch_weighted_reference`].
    pub fn update_batch_weighted(&mut self, packets: &[(K, u64)]) {
        let added: u64 = packets.iter().map(|&(_, w)| w).sum();
        self.update_batch_weighted_keyed(packets.len(), added, |packet| packets[packet]);
    }

    /// Volume-weighted wire entry point: like [`Rhhh::update_batch_wire`]
    /// but each packet carries its on-wire byte length from the dense
    /// `wire_len` side lane (which frame blocks maintain at emission, so
    /// weighting costs no parsing). Bit-identical to zipping the same
    /// keys and lengths into pairs and calling
    /// [`Rhhh::update_batch_weighted`] — same argument as the unit path:
    /// the RNG schedule depends only on the packet count.
    pub fn update_batch_wire_weighted<F>(&mut self, wire_len: &[u32], key_at: F)
    where
        F: Fn(usize) -> K,
    {
        let added: u64 = wire_len.iter().map(|&w| u64::from(w)).sum();
        self.update_batch_weighted_keyed(wire_len.len(), added, |packet| {
            (key_at(packet), u64::from(wire_len[packet]))
        });
    }

    /// Shared body of the weighted batch entry points: the staged block
    /// pipeline over an indexable `(key, weight)` lane. `added_weight`
    /// must be the sum of all `n` weights (selection is per packet, but
    /// the total-weight accounting covers unselected packets too).
    fn update_batch_weighted_keyed<F>(&mut self, packets: usize, added_weight: u64, entry_at: F)
    where
        F: Fn(usize) -> (K, u64),
    {
        let total = ProfTimer::start();
        let n = packets as u64;
        self.packets += n;
        self.weight += added_weight;
        let r = u64::from(self.config.updates_per_packet);
        let draws = if r == 1 { n } else { n * r };

        let h = self.h as usize;
        let scratch = &mut self.scratch;
        if scratch.node_weighted.len() < h {
            scratch.node_weighted.resize_with(h, Vec::new);
        }
        for buf in &mut scratch.node_weighted[..h] {
            buf.clear();
        }

        let node_weighted = &mut scratch.node_weighted;
        let mweighted = &mut scratch.mweighted;
        let masks = &self.masks;
        for_each_selected_blocks(
            &self.skip,
            &mut self.rng,
            self.h,
            self.v,
            draws,
            |idx, nodes| {
                let t = ProfTimer::start();
                gather_masked(r, idx, nodes, masks, mweighted, |packet, mask| {
                    let (key, w) = entry_at(packet);
                    (key.and(mask), w)
                });
                t.stop(Stage::MaskHash);
                let t = ProfTimer::start();
                for (&node, &entry) in nodes.iter().zip(mweighted.iter()) {
                    node_weighted[node as usize].push(entry);
                }
                t.stop(Stage::Scatter);
            },
        );

        let t = ProfTimer::start();
        let instances = &mut self.instances;
        for (node, group) in scratch.node_weighted[..h].iter_mut().enumerate() {
            if group.is_empty() {
                continue;
            }
            // Sort by masked key and merge each run into one `add`.
            let per_node = ProfTimer::start();
            group.sort_unstable();
            let instance = &mut instances[node];
            let mut i = 0usize;
            while i < group.len() {
                let key = group[i].0;
                let mut w = group[i].1;
                let mut j = i + 1;
                while j < group.len() && group[j].0 == key {
                    w += group[j].1;
                    j += 1;
                }
                instance.add(key, w);
                i = j;
            }
            per_node.stop_layout(|| instance.layout_label());
        }
        t.stop(Stage::Flush);
        total.stop(Stage::Total);
    }
}

// ---------------------------------------------------------------------------
// Frozen PR 5-shape reference path
// ---------------------------------------------------------------------------

/// The pre-block selection walk, preserved verbatim: per-selection closure
/// dispatch with interleaved node/gap derivation per refill. Consumes the
/// RNG stream in the same order as [`for_each_selected_blocks`]; kept so
/// the property suite can pin the block path bit-identical against it and
/// the `update_speed` bench can report within-run ratios.
#[inline]
fn for_each_selected_reference<E>(
    skip: &GeometricSkip,
    rng: &mut FastRng,
    h: u64,
    v: u64,
    draws: u64,
    mut sink: E,
) where
    E: FnMut(u64, u16),
{
    if draws == 0 {
        return;
    }
    if skip.selects_all() {
        // V = H: every draw is selected; only node choices are needed.
        let mut raw = [0u64; DRAW_BLOCK];
        let mut cur = 0u64;
        while cur < draws {
            let take = ((draws - cur) as usize).min(DRAW_BLOCK);
            rng.fill_block(&mut raw[..take]);
            for &x in &raw[..take] {
                sink(cur, node_from(x, h, rng));
                cur += 1;
            }
        }
        return;
    }

    let inv_p = (v / h).max(1); // expected draws per selection ≈ V/H
    let mut gaps = [0u64; DRAW_BLOCK];
    let mut nodes = [0u16; DRAW_BLOCK];
    let mut len = 0usize;
    let mut i = 0usize;
    let mut cur = 0u64;
    loop {
        if i == len {
            // Size the refill to the expected remaining selections (plus
            // slack) so a tail refill doesn't draw a full block for a
            // handful of survivors.
            let expect = (draws - cur) / inv_p + 8;
            len = (expect as usize).min(DRAW_BLOCK);
            rng.fill_block(&mut gaps[..len]);
            if h < (1 << 11) {
                // One raw draw yields both the trial's gap (bits 11..64)
                // and its node (bits 0..11, exact 11-bit Lemire whose rare
                // rejection — probability (2^11 mod h)/2^11 — falls back
                // to a fresh serial draw).
                let threshold = (1u64 << 11) % h;
                for j in 0..len {
                    let x = gaps[j];
                    let m = (x & 0x7FF) * h;
                    nodes[j] = if (m & 0x7FF) < threshold {
                        rng.bounded(h) as u16
                    } else {
                        (m >> 11) as u16
                    };
                    gaps[j] = skip.gap_from_bits(x >> 11);
                }
            } else {
                // Very deep hierarchies: separate node draws.
                skip.gaps_from_block(&mut gaps[..len]);
                let mut raw = [0u64; DRAW_BLOCK];
                rng.fill_block(&mut raw[..len]);
                for j in 0..len {
                    nodes[j] = node_from(raw[j], h, rng);
                }
            }
            i = 0;
        }
        cur += gaps[i];
        if cur >= draws {
            return;
        }
        sink(cur, nodes[i]);
        cur += 1;
        i += 1;
    }
}

impl<K: KeyBits, E: FrequencyEstimator<K>> Rhhh<K, E> {
    /// The PR 5-shape batch update, frozen for comparison: scatters *raw*
    /// keys per selection through a per-packet closure, then masks each
    /// group in a separate read-modify-write pass before flushing.
    /// Consumes the same RNG draws in the same order as
    /// [`Rhhh::update_batch`] and produces bit-identical state (the
    /// property suite enforces this); exists as the baseline side of the
    /// `update_speed` block-vs-reference rows, not for production use.
    pub fn update_batch_reference(&mut self, keys: &[K]) {
        let n = keys.len() as u64;
        self.packets += n;
        self.weight += n;
        let r = u64::from(self.config.updates_per_packet);

        let h = self.h as usize;
        let scratch = &mut self.scratch;
        if scratch.node_keys.len() < h {
            scratch.node_keys.resize_with(h, Vec::new);
        }
        for buf in &mut scratch.node_keys[..h] {
            buf.clear();
        }

        // Selection: scatter straight into the per-node buffers.
        let node_keys = &mut scratch.node_keys;
        if r == 1 {
            // Common case: draw index == packet index, no division.
            for_each_selected_reference(&self.skip, &mut self.rng, self.h, self.v, n, |i, node| {
                node_keys[node as usize].push(keys[i as usize]);
            });
        } else {
            // Corollary 6.8: r independent selection trials per packet is
            // one geometric walk over n·r virtual draws.
            for_each_selected_reference(
                &self.skip,
                &mut self.rng,
                self.h,
                self.v,
                n * r,
                |i, node| {
                    node_keys[node as usize].push(keys[(i / r) as usize]);
                },
            );
        }

        // Flush node by node: mask once per group, then hand the unordered
        // group to the estimator.
        for node in 0..h {
            let group = &mut scratch.node_keys[node];
            if group.is_empty() {
                continue;
            }
            let mask = self.masks[node];
            for key in group.iter_mut() {
                *key = key.and(mask);
            }
            self.instances[node].flush_group_evicting(group);
        }
    }

    /// The PR 5-shape weighted batch update, frozen for comparison; see
    /// [`Rhhh::update_batch_reference`].
    pub fn update_batch_weighted_reference(&mut self, packets: &[(K, u64)]) {
        let n = packets.len() as u64;
        self.packets += n;
        self.weight += packets.iter().map(|&(_, w)| w).sum::<u64>();
        let r = u64::from(self.config.updates_per_packet);

        let h = self.h as usize;
        let scratch = &mut self.scratch;
        if scratch.node_weighted.len() < h {
            scratch.node_weighted.resize_with(h, Vec::new);
        }
        for buf in &mut scratch.node_weighted[..h] {
            buf.clear();
        }

        let node_weighted = &mut scratch.node_weighted;
        if r == 1 {
            for_each_selected_reference(&self.skip, &mut self.rng, self.h, self.v, n, |i, node| {
                node_weighted[node as usize].push(packets[i as usize]);
            });
        } else {
            for_each_selected_reference(
                &self.skip,
                &mut self.rng,
                self.h,
                self.v,
                n * r,
                |i, node| {
                    node_weighted[node as usize].push(packets[(i / r) as usize]);
                },
            );
        }

        for node in 0..h {
            let group = &mut scratch.node_weighted[node];
            if group.is_empty() {
                continue;
            }
            let mask = self.masks[node];
            for entry in group.iter_mut() {
                entry.0 = entry.0.and(mask);
            }
            // Sort by masked key and merge each run into one `add`.
            group.sort_unstable();
            let instance = &mut self.instances[node];
            let mut i = 0usize;
            while i < group.len() {
                let key = group[i].0;
                let mut w = group[i].1;
                let mut j = i + 1;
                while j < group.len() && group[j].0 == key {
                    w += group[j].1;
                    j += 1;
                }
                instance.add(key, w);
                i = j;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::{HhhAlgorithm, Rhhh, RhhhConfig};
    use hhh_hierarchy::{pack2, Lattice, NodeId};

    struct Lcg(u64);
    impl Lcg {
        fn next(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0 >> 16
        }
    }

    fn stream(n: usize, seed: u64) -> Vec<u64> {
        let mut rng = Lcg(seed);
        (0..n)
            .map(|i| {
                if i % 10 < 3 {
                    pack2(0x0A14_0000 | (rng.next() as u32 & 0xFFFF), 0x0808_0808)
                } else {
                    pack2(rng.next() as u32, rng.next() as u32)
                }
            })
            .collect()
    }

    #[test]
    fn batch_update_rate_is_h_over_v() {
        let lat = Lattice::ipv4_src_dst_bytes();
        let mut algo = Rhhh::<u64>::new(lat, RhhhConfig::ten_rhhh());
        let keys = stream(200_000, 7);
        for chunk in keys.chunks(4_096) {
            algo.update_batch(chunk);
        }
        assert_eq!(algo.packets(), 200_000);
        assert_eq!(algo.total_weight(), 200_000);
        let rate = algo.total_updates() as f64 / 200_000.0;
        assert!((rate - 0.1).abs() < 0.01, "update rate {rate}");
    }

    #[test]
    fn batch_v_equals_h_updates_every_packet() {
        let lat = Lattice::ipv4_src_bytes();
        let mut algo = Rhhh::<u32>::new(lat, RhhhConfig::default());
        let keys: Vec<u32> = stream(50_000, 2).iter().map(|&k| k as u32).collect();
        algo.update_batch(&keys);
        assert_eq!(algo.total_updates(), 50_000, "V = H never skips");
    }

    #[test]
    fn batch_finds_planted_hhh() {
        let lat = Lattice::ipv4_src_dst_bytes();
        let mut algo = Rhhh::<u64>::new(
            lat,
            RhhhConfig {
                epsilon_s: 0.02,
                epsilon_a: 0.005,
                delta_s: 0.05,
                ..RhhhConfig::default()
            },
        );
        let keys = stream(400_000, 4);
        for chunk in keys.chunks(1_024) {
            algo.update_batch(chunk);
        }
        assert!(algo.converged());
        let lat = algo.lattice().clone();
        let rendered: Vec<String> = algo
            .output(0.1)
            .iter()
            .map(|h| h.prefix.display(&lat))
            .collect();
        assert!(
            rendered
                .iter()
                .any(|s| s.contains("10.20.0.0/16") && s.contains("8.8.8.8/32")),
            "missing planted HHH in {rendered:?}"
        );
    }

    #[test]
    fn batch_deterministic_given_seed_and_chunking() {
        let lat = Lattice::ipv4_src_dst_bytes();
        let keys = stream(100_000, 9);
        let mut a = Rhhh::<u64>::new(lat.clone(), RhhhConfig::ten_rhhh());
        let mut b = Rhhh::<u64>::new(lat, RhhhConfig::ten_rhhh());
        a.update_batch(&keys);
        b.update_batch(&keys);
        assert_eq!(a.total_updates(), b.total_updates());
        let (oa, ob) = (a.output(0.05), b.output(0.05));
        assert_eq!(oa.len(), ob.len());
        for (x, y) in oa.iter().zip(&ob) {
            assert_eq!(x.prefix, y.prefix);
            assert_eq!(x.freq_upper, y.freq_upper);
        }
    }

    #[test]
    fn block_path_matches_reference_bitwise() {
        // The full-strength pin lives in `batch_props`; this is the quick
        // in-crate smoke check of the same contract. Comparing per-node
        // candidate vectors is stronger than comparing `output(θ)` (it pins
        // the full counter state, order included) and avoids the HHH
        // extraction pass, which is slow at the paper's fine default ε in
        // unoptimized builds.
        use crate::NodeEstimates;
        for v_scale in [1u64, 10] {
            let lat = Lattice::ipv4_src_dst_bytes();
            let cfg = RhhhConfig {
                v_scale,
                ..RhhhConfig::default()
            };
            let keys = stream(80_000, 13);
            let mut block = Rhhh::<u64>::new(lat.clone(), cfg);
            let mut reference = Rhhh::<u64>::new(lat, cfg);
            for chunk in keys.chunks(7_001) {
                block.update_batch(chunk);
                reference.update_batch_reference(chunk);
            }
            assert_eq!(block.total_updates(), reference.total_updates());
            for node in 0..block.h() as u16 {
                let node = NodeId(node);
                assert_eq!(
                    block.node_candidates(node),
                    reference.node_candidates(node),
                    "v_scale {v_scale}: counter state diverged at {node:?}"
                );
            }
        }
    }

    #[test]
    fn batch_multi_update_draws_r_per_packet() {
        let lat = Lattice::ipv4_src_bytes();
        let mut algo = Rhhh::<u32>::new(
            lat,
            RhhhConfig {
                updates_per_packet: 4,
                v_scale: 10,
                ..RhhhConfig::default()
            },
        );
        let keys: Vec<u32> = stream(200_000, 5).iter().map(|&k| k as u32).collect();
        algo.update_batch(&keys);
        // r = 4 draws per packet at selection rate 1/10 → ~0.4 updates/pkt.
        let rate = algo.total_updates() as f64 / 200_000.0;
        assert!((rate - 0.4).abs() < 0.02, "rate {rate}");
        assert_eq!(algo.packets(), 200_000);
    }

    #[test]
    fn batch_weighted_records_volume() {
        let lat = Lattice::ipv4_src_bytes();
        let mut algo = Rhhh::<u32>::new(
            lat,
            RhhhConfig {
                epsilon_s: 0.05,
                delta_s: 0.05,
                ..RhhhConfig::default()
            },
        );
        let n = 200_000usize;
        let heavy = u32::from_be_bytes([7, 7, 7, 7]);
        let mut rng = Lcg(31);
        let mut volume = 0u64;
        let packets: Vec<(u32, u64)> = (0..n)
            .map(|i| {
                let p = if i % 10 == 0 {
                    (heavy, 1400)
                } else {
                    (rng.next() as u32, 64)
                };
                volume += p.1;
                p
            })
            .collect();
        for chunk in packets.chunks(2_048) {
            algo.update_batch_weighted(chunk);
        }
        assert_eq!(algo.total_weight(), volume);
        assert_eq!(algo.packets(), n as u64);
        let out = algo.output(0.3);
        let lat_bottom = algo.lattice().bottom();
        let entry = out
            .iter()
            .find(|h| h.prefix.key == heavy && h.prefix.node == lat_bottom)
            .expect("volume-heavy flow reported");
        let truth = (n as u64 / 10 * 1400) as f64;
        assert!(
            (entry.freq_upper - truth).abs() < 0.2 * truth,
            "estimate {} vs volume {truth}",
            entry.freq_upper
        );
    }

    #[test]
    fn empty_and_tiny_batches_are_safe() {
        let lat = Lattice::ipv4_src_dst_bytes();
        let mut algo = Rhhh::<u64>::new(lat, RhhhConfig::ten_rhhh());
        algo.update_batch(&[]);
        algo.update_batch_weighted(&[]);
        assert_eq!(algo.packets(), 0);
        for i in 0..1_000u64 {
            algo.update_batch(&[i]); // single-element batches
        }
        assert_eq!(algo.packets(), 1_000);
    }

    #[test]
    fn batch_and_scalar_interleave() {
        // Mixing the two paths on one instance keeps counts coherent.
        let lat = Lattice::ipv4_src_dst_bytes();
        let mut algo = Rhhh::<u64>::new(lat, RhhhConfig::ten_rhhh());
        let keys = stream(60_000, 11);
        for (i, chunk) in keys.chunks(10_000).enumerate() {
            if i % 2 == 0 {
                algo.update_batch(chunk);
            } else {
                for &k in chunk {
                    algo.update(k);
                }
            }
        }
        assert_eq!(algo.packets(), 60_000);
        let rate = algo.total_updates() as f64 / 60_000.0;
        assert!((rate - 0.1).abs() < 0.015, "rate {rate}");
    }
}
