//! The `Output(θ)` procedure of Algorithm 1, shared by RHHH and the MST
//! baseline.
//!
//! Starting from the fully-specified level and walking toward the fully
//! general node, each candidate prefix `p` gets a *conservative* conditioned
//! frequency estimate
//!
//! ```text
//! Ĉ_{p|P} = f̂⁺_p + calcPred(p, P) + slack
//! ```
//!
//! where `calcPred` subtracts the lower-bounded frequencies of the closest
//! already-selected descendants `G(p|P)` (Algorithm 2), and in two
//! dimensions adds back the upper-bounded frequencies of pairwise greatest
//! lower bounds to undo double subtraction (Algorithm 3). `slack` is the
//! `2·Z_{1-δ}·√(N·V)` sampling-error allowance of line 13 — zero for the
//! deterministic baselines.
//!
//! Prefixes with `Ĉ_{p|P} ≥ θN` are added to the output set `P`.

use hhh_counters::Candidate;
use hhh_hierarchy::{KeyBits, Lattice, NodeId, Prefix};

/// Per-node estimate access in *update-count* units (the `X̂` of
/// Definition 11). The caller supplies the scale that converts update counts
/// into frequencies (`V/r` for RHHH, 1 for MST).
pub trait NodeEstimates<K: KeyBits> {
    /// Monitored candidates of the node's counter instance.
    fn node_candidates(&self, node: NodeId) -> Vec<Candidate<K>>;

    /// Upper bound `X̂⁺` for `key` at `node`.
    fn node_upper(&self, node: NodeId, key: &K) -> u64;

    /// Lower bound `X̂⁻` for `key` at `node`.
    fn node_lower(&self, node: NodeId, key: &K) -> u64;
}

/// One reported hierarchical heavy hitter — the `(p, f̂⁻_p, f̂⁺_p)` triple
/// that Algorithm 1 line 16 prints, plus the conditioned estimate that
/// crossed the threshold.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HeavyHitter<K> {
    /// The HHH prefix.
    pub prefix: Prefix<K>,
    /// Lower bound on the prefix frequency, `f̂⁻_p`.
    pub freq_lower: f64,
    /// Upper bound on the prefix frequency, `f̂⁺_p`.
    pub freq_upper: f64,
    /// The conservative conditioned-frequency estimate `Ĉ_{p|P}` (includes
    /// the sampling slack) that admitted the prefix.
    pub conditioned: f64,
}

impl<K: KeyBits> HeavyHitter<K> {
    /// Midpoint frequency estimate `f̂_p` (Definition 11 uses `X̂·V`; with
    /// symmetric bounds the midpoint is the natural point estimate).
    #[must_use]
    pub fn freq_estimate(&self) -> f64 {
        (self.freq_lower + self.freq_upper) / 2.0
    }
}

/// `G(p|P)` of Definition 2/14: the elements of `P` strictly generalized by
/// `p` with no intermediate element of `P` between them — the "closest
/// descendants" of `p` inside `P`.
pub fn best_generalized<K: KeyBits>(
    lattice: &Lattice<K>,
    p: &Prefix<K>,
    selected: &[HeavyHitter<K>],
) -> Vec<Prefix<K>> {
    let descendants: Vec<Prefix<K>> = selected
        .iter()
        .map(|h| h.prefix)
        .filter(|h| p.strictly_generalizes(h, lattice))
        .collect();
    descendants
        .iter()
        .copied()
        .filter(|h| {
            !descendants
                .iter()
                .any(|h2| h2 != h && h2.strictly_generalizes(h, lattice))
        })
        .collect()
}

/// `calcPred` — Algorithm 2 (one dimension) and Algorithm 3 (two
/// dimensions), in frequency units (already scaled).
///
/// Returns the (typically negative) correction to add to `f̂⁺_p`.
fn calc_pred<K: KeyBits, E: NodeEstimates<K>>(
    lattice: &Lattice<K>,
    estimates: &E,
    scale: f64,
    p: &Prefix<K>,
    selected: &[HeavyHitter<K>],
) -> f64 {
    let g = best_generalized(lattice, p, selected);
    let mut r = 0.0;

    // Lines 3–5 (both algorithms): subtract the lower bounds of the closest
    // selected descendants.
    for h in &g {
        r -= estimates.node_lower(h.node, &h.key) as f64 * scale;
    }

    // Algorithm 3 lines 6–11 (multi-dimensional only): add back the upper
    // bounds of pairwise greatest lower bounds, unless the glb is already
    // covered by (contained in) a third element of G(p|P) — in that case its
    // mass was subtracted as part of that element and adding it back would
    // double-count. (The paper's line 8 writes `q ⪯ h3`; with G(p|P) being
    // the *maximal* descendants, the only consistent reading is `h3
    // generalizes q`. The rule genuinely fires with mixed granularities,
    // e.g. h = (/24, /8), h' = (/8, /24), h3 = (/16, /16) ⊒ glb(h, h'); the
    // `covered_rule_matches_set_semantics` integration test shows skipping
    // the add-back then reproduces exact set semantics — the skipped term
    // substitutes for the missing triple-intersection correction.)
    if lattice.dims() > 1 {
        for i in 0..g.len() {
            for j in (i + 1)..g.len() {
                let Some(q) = g[i].glb(&g[j], lattice) else {
                    // No common descendant: the paper treats glb as an item
                    // with count 0 (Definition 12).
                    continue;
                };
                let covered = g
                    .iter()
                    .enumerate()
                    .any(|(k, h3)| k != i && k != j && h3.generalizes(&q, lattice));
                if !covered {
                    r += estimates.node_upper(q.node, &q.key) as f64 * scale;
                }
            }
        }
    }
    r
}

/// Runs `Output(θ)` over all lattice levels.
///
/// * `n` — stream length (the paper's `N`, in packets).
/// * `scale` — frequency units per update count (`V/r` for RHHH, 1 for
///   deterministic baselines).
/// * `slack` — the additive sampling allowance of line 13
///   (`2·Z_{1-δ}·√(N·V)`), zero for deterministic baselines.
///
/// Returns the selected prefixes in selection order (most specific levels
/// first).
pub fn extract_hhh<K: KeyBits, E: NodeEstimates<K>>(
    lattice: &Lattice<K>,
    estimates: &E,
    theta: f64,
    n: u64,
    scale: f64,
    slack: f64,
) -> Vec<HeavyHitter<K>> {
    assert!(theta > 0.0 && theta <= 1.0, "theta must lie in (0, 1]");
    let threshold = theta * n as f64;
    let mut selected: Vec<HeavyHitter<K>> = Vec::new();

    // Level 0 is fully specified; walk upward to the fully-general root.
    for level in 0..=lattice.depth() {
        for &node in lattice.nodes_at_level(level) {
            for cand in estimates.node_candidates(node) {
                let p = Prefix {
                    key: cand.key,
                    node,
                };
                let f_upper = cand.upper as f64 * scale;
                let f_lower = cand.lower as f64 * scale;
                let conditioned =
                    f_upper + calc_pred(lattice, estimates, scale, &p, &selected) + slack;
                if conditioned >= threshold {
                    selected.push(HeavyHitter {
                        prefix: p,
                        freq_lower: f_lower,
                        freq_upper: f_upper,
                        conditioned,
                    });
                }
            }
        }
    }
    selected
}

#[cfg(test)]
mod tests {
    use super::*;
    use hhh_hierarchy::pack2;
    use std::collections::HashMap;

    /// A transparent NodeEstimates backed by exact per-node hash maps, for
    /// testing the output logic in isolation from any counter algorithm.
    struct MapEstimates<K> {
        counts: HashMap<(NodeId, K), u64>,
        nodes: Vec<NodeId>,
    }

    impl<K: KeyBits> MapEstimates<K> {
        fn new(lattice: &Lattice<K>, entries: &[(NodeId, K, u64)]) -> Self {
            let mut counts = HashMap::new();
            for &(node, key, c) in entries {
                counts.insert((node, key), c);
            }
            Self {
                counts,
                nodes: lattice.node_ids().collect(),
            }
        }
    }

    impl<K: KeyBits> NodeEstimates<K> for MapEstimates<K> {
        fn node_candidates(&self, node: NodeId) -> Vec<Candidate<K>> {
            let _ = &self.nodes;
            self.counts
                .iter()
                .filter(|((n, _), _)| *n == node)
                .map(|((_, k), &c)| Candidate {
                    key: *k,
                    upper: c,
                    lower: c,
                })
                .collect()
        }

        fn node_upper(&self, node: NodeId, key: &K) -> u64 {
            self.counts.get(&(node, *key)).copied().unwrap_or(0)
        }

        fn node_lower(&self, node: NodeId, key: &K) -> u64 {
            self.counts.get(&(node, *key)).copied().unwrap_or(0)
        }
    }

    fn ip(a: u8, b: u8, c: u8, d: u8) -> u32 {
        u32::from_be_bytes([a, b, c, d])
    }

    /// The worked example of Section 3.1: θN = 100; p1 = <101.*> with
    /// f = 108, p2 = <101.102.*> with f = 102. Both are heavy hitters, but
    /// p1's conditioned frequency is 108 − 102 = 6 < 100, so only p2 is an
    /// HHH prefix.
    #[test]
    fn paper_worked_example_one_dimension() {
        let lat = hhh_hierarchy::Lattice::ipv4_src_bytes();
        let n1 = lat.node_by_spec(&[1]); // /8
        let n2 = lat.node_by_spec(&[2]); // /16
        let k1 = ip(101, 0, 0, 0);
        let k2 = ip(101, 102, 0, 0);
        let est = MapEstimates::new(&lat, &[(n1, k1, 108), (n2, k2, 102)]);

        // N = 10_000, θ = 1% -> θN = 100.
        let out = extract_hhh(&lat, &est, 0.01, 10_000, 1.0, 0.0);
        let keys: Vec<(NodeId, u32)> = out.iter().map(|h| (h.prefix.node, h.prefix.key)).collect();
        assert!(keys.contains(&(n2, k2)), "p2 must be an HHH");
        assert!(!keys.contains(&(n1, k1)), "p1 conditioned count is only 6");
    }

    /// Without the descendant, the ancestor qualifies.
    #[test]
    fn ancestor_selected_when_no_descendant() {
        let lat = hhh_hierarchy::Lattice::ipv4_src_bytes();
        let n1 = lat.node_by_spec(&[1]);
        let est = MapEstimates::new(&lat, &[(n1, ip(101, 0, 0, 0), 108)]);
        let out = extract_hhh(&lat, &est, 0.01, 10_000, 1.0, 0.0);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].prefix.node, n1);
        assert_eq!(out[0].conditioned, 108.0);
    }

    /// Two dimensions: the glb add-back prevents double subtraction.
    /// Setup: p = (10.*, *) with two selected descendants
    /// h = (10.1.*, 20.*) and h' = (10.*, 20.*)? — no, h' must be strictly
    /// below p and not comparable to h. Use h = (10.1.*, *) f=60 and
    /// h' = (10.*, 20.*) f=70, glb = (10.1.*, 20.*) f=50.
    /// C_{p|P} = f_p − 60 − 70 + 50.
    #[test]
    fn two_dim_inclusion_exclusion() {
        let lat = hhh_hierarchy::Lattice::ipv4_src_dst_bytes();
        let src10 = ip(10, 0, 0, 0);
        let src101 = ip(10, 1, 0, 0);
        let dst20 = ip(20, 0, 0, 0);

        let p_node = lat.node_by_spec(&[1, 0]); // (10.*, *)
        let h_node = lat.node_by_spec(&[2, 0]); // (10.1.*, *)
        let hp_node = lat.node_by_spec(&[1, 1]); // (10.*, 20.*)
        let glb_node = lat.node_by_spec(&[2, 1]); // (10.1.*, 20.*)

        let est = MapEstimates::new(
            &lat,
            &[
                (p_node, pack2(src10, 0), 200),
                (h_node, pack2(src101, 0), 60),
                (hp_node, pack2(src10, dst20), 70),
                (glb_node, pack2(src101, dst20), 50),
            ],
        );

        // θN = 60: the glb entry (level 5, count 50) stays below threshold,
        // h and h' (level 6) are selected, and p's conditioned count is
        // 200 − 60 − 70 + 50 = 120.
        let out = extract_hhh(&lat, &est, 0.006, 10_000, 1.0, 0.0);
        let p_entry = out
            .iter()
            .find(|h| h.prefix.node == p_node)
            .expect("p is an HHH");
        assert_eq!(p_entry.conditioned, 120.0);
    }

    /// Three incomparable descendants in G(p|P): only the compatible pair
    /// contributes a glb add-back; incompatible pairs (different bits under
    /// the common pattern) contribute count 0 per Definition 12.
    #[test]
    fn two_dim_three_descendants_incompatible_pairs() {
        let lat = hhh_hierarchy::Lattice::ipv4_src_dst_bytes();
        let p_node = lat.node_by_spec(&[1, 0]); // (10.*, *)
        let n21 = lat.node_by_spec(&[2, 1]);
        let n12 = lat.node_by_spec(&[1, 2]);
        let n22 = lat.node_by_spec(&[2, 2]);

        let h1 = pack2(ip(10, 1, 0, 0), ip(20, 0, 0, 0)); // (10.1.*, 20.*)
        let h2 = pack2(ip(10, 0, 0, 0), ip(20, 1, 0, 0)); // (10.*, 20.1.*)
        let h3 = pack2(ip(10, 2, 0, 0), ip(30, 0, 0, 0)); // (10.2.*, 30.*)
        let glb12 = pack2(ip(10, 1, 0, 0), ip(20, 1, 0, 0)); // (10.1.*, 20.1.*)

        let est = MapEstimates::new(
            &lat,
            &[
                (p_node, pack2(ip(10, 0, 0, 0), 0), 1000),
                (n21, h1, 300),
                (n12, h2, 300),
                (n21, h3, 300),
                (n22, glb12, 100),
            ],
        );

        // θN = 200: glb12 (level 4, count 100) is not selected; h1, h2, h3
        // are. For p: G = {h1, h2, h3}; glb(h1,h2) = glb12 (+100);
        // glb(h1,h3) and glb(h2,h3) are incompatible (10.1 vs 10.2, 20 vs
        // 30) → count 0. C_p = 1000 − 900 + 100 = 200.
        let out = extract_hhh(&lat, &est, 0.002, 100_000, 1.0, 0.0);
        let p_entry = out
            .iter()
            .find(|h| h.prefix.node == p_node)
            .expect("p is an HHH");
        assert_eq!(p_entry.conditioned, 200.0);
        // All three descendants were selected too.
        assert_eq!(out.len(), 4);
    }

    /// Slack admits borderline prefixes (conservativeness) — a prefix just
    /// below θN without slack crosses with it.
    #[test]
    fn slack_is_additive() {
        let lat = hhh_hierarchy::Lattice::ipv4_src_bytes();
        let n1 = lat.node_by_spec(&[1]);
        let est = MapEstimates::new(&lat, &[(n1, ip(9, 0, 0, 0), 95)]);
        let none = extract_hhh(&lat, &est, 0.01, 10_000, 1.0, 0.0);
        assert!(none.is_empty());
        let some = extract_hhh(&lat, &est, 0.01, 10_000, 1.0, 10.0);
        assert_eq!(some.len(), 1);
    }

    /// Scale converts update counts into frequencies (Definition 11).
    #[test]
    fn scale_multiplies_counts() {
        let lat = hhh_hierarchy::Lattice::ipv4_src_bytes();
        let n1 = lat.node_by_spec(&[1]);
        // 5 updates at scale 25 = 125 estimated packets.
        let est = MapEstimates::new(&lat, &[(n1, ip(9, 0, 0, 0), 5)]);
        let out = extract_hhh(&lat, &est, 0.01, 10_000, 25.0, 0.0);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].freq_upper, 125.0);
    }

    /// G(p|P) keeps only the closest descendants.
    #[test]
    fn best_generalized_excludes_chained() {
        let lat = hhh_hierarchy::Lattice::ipv4_src_bytes();
        // P = {<142.14.13.*>, <142.14.13.14>}, p = <142.14.*> — the paper's
        // Definition 2 example: G(p|P) = {<142.14.13.*>} only.
        let deep = Prefix {
            key: ip(142, 14, 13, 14),
            node: lat.node_by_spec(&[4]),
        };
        let mid = Prefix {
            key: ip(142, 14, 13, 0),
            node: lat.node_by_spec(&[3]),
        };
        let p = Prefix {
            key: ip(142, 14, 0, 0),
            node: lat.node_by_spec(&[2]),
        };
        let selected = vec![
            HeavyHitter {
                prefix: deep,
                freq_lower: 0.0,
                freq_upper: 0.0,
                conditioned: 0.0,
            },
            HeavyHitter {
                prefix: mid,
                freq_lower: 0.0,
                freq_upper: 0.0,
                conditioned: 0.0,
            },
        ];
        let g = best_generalized(&lat, &p, &selected);
        assert_eq!(g, vec![mid]);
    }

    #[test]
    #[should_panic(expected = "theta must lie in (0, 1]")]
    fn rejects_zero_theta() {
        let lat = hhh_hierarchy::Lattice::ipv4_src_bytes();
        let est = MapEstimates::<u32>::new(&lat, &[]);
        let _ = extract_hhh(&lat, &est, 0.0, 100, 1.0, 0.0);
    }
}
