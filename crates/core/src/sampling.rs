//! Fast deterministic randomness for the per-packet draw.
//!
//! Algorithm 1 line 2 draws `d = randomInt(0, V)` for **every packet**, so
//! the draw sits on the hottest path in the system. [`FastRng`] is a wyrand
//! step (one 64×64→128 multiply) and [`FastRng::bounded`] maps it into
//! `[0, n)` with Lemire's nearly-divisionless method — an unbiased bounded
//! draw that avoids the modulo in the common case.
//!
//! Determinism matters for the reproduction: every experiment seeds its RNG
//! so runs are repeatable; the 5-run confidence intervals vary the seed
//! explicitly.

/// A small, fast, seedable PRNG (wyrand). Not cryptographic — the paper's
/// adversary model does not include RNG prediction, and the analysis only
/// needs uniformity.
#[derive(Debug, Clone)]
pub struct FastRng {
    state: u64,
}

impl FastRng {
    /// Creates a generator from a seed. Two generators with the same seed
    /// produce identical streams.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        // Splash the seed so small seeds don't start in a weak state.
        let mut rng = Self {
            state: seed ^ 0xA076_1D64_78BD_642F,
        };
        let _ = rng.next_u64();
        rng
    }

    /// Next 64 uniformly distributed bits.
    #[inline(always)]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0xA076_1D64_78BD_642F);
        let t = u128::from(self.state).wrapping_mul(u128::from(self.state ^ 0xE703_7ED1_A0B4_28DB));
        ((t >> 64) ^ t) as u64
    }

    /// Uniform draw in `[0, n)` by Lemire's nearly-divisionless rejection
    /// method. Unbiased for every `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[inline(always)]
    pub fn bounded(&mut self, n: u64) -> u64 {
        assert!(n > 0, "bounded(0) is meaningless");
        let mut x = self.next_u64();
        let mut m = u128::from(x) * u128::from(n);
        let mut low = m as u64;
        if low < n {
            // Rare slow path: reject the biased low region.
            let threshold = n.wrapping_neg() % n;
            while low < threshold {
                x = self.next_u64();
                m = u128::from(x) * u128::from(n);
                low = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform draw in `[0.0, 1.0)`.
    #[inline(always)]
    pub fn next_f64(&mut self) -> f64 {
        // 53 top bits scaled to [0, 1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = FastRng::new(42);
        let mut b = FastRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = FastRng::new(43);
        assert_ne!(FastRng::new(42).next_u64(), c.next_u64());
    }

    #[test]
    fn bounded_is_in_range() {
        let mut rng = FastRng::new(7);
        for n in [1u64, 2, 3, 5, 25, 250, u64::MAX / 2 + 3] {
            for _ in 0..1_000 {
                assert!(rng.bounded(n) < n);
            }
        }
    }

    #[test]
    fn bounded_is_roughly_uniform() {
        // Chi-squared style sanity: 25 bins (the paper's V = H = 25 draw),
        // 250k draws, each bin expects 10k ± a few hundred.
        let mut rng = FastRng::new(1234);
        let n = 25u64;
        let mut bins = vec![0u64; n as usize];
        let draws = 250_000;
        for _ in 0..draws {
            bins[rng.bounded(n) as usize] += 1;
        }
        let expect = draws / n;
        for (i, &b) in bins.iter().enumerate() {
            let dev = (b as i64 - expect as i64).abs();
            assert!(
                dev < (expect / 10) as i64,
                "bin {i} = {b}, expected ~{expect}"
            );
        }
    }

    #[test]
    fn update_probability_matches_h_over_v() {
        // The sampling core of RHHH: Pr(d < H) = H/V. With V = 10·H the
        // update rate must be ~10%.
        let mut rng = FastRng::new(99);
        let (h, v) = (25u64, 250u64);
        let draws = 1_000_000;
        let mut updates = 0u64;
        for _ in 0..draws {
            if rng.bounded(v) < h {
                updates += 1;
            }
        }
        let rate = updates as f64 / draws as f64;
        assert!((rate - 0.1).abs() < 0.002, "rate = {rate}");
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = FastRng::new(5);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        assert!((sum / 10_000.0 - 0.5).abs() < 0.02);
    }

    #[test]
    #[should_panic(expected = "bounded(0)")]
    fn bounded_zero_panics() {
        let _ = FastRng::new(1).bounded(0);
    }
}
