//! Fast deterministic randomness for the per-packet draw.
//!
//! Algorithm 1 line 2 draws `d = randomInt(0, V)` for **every packet**, so
//! the draw sits on the hottest path in the system. [`FastRng`] is a wyrand
//! step (one 64×64→128 multiply) and [`FastRng::bounded`] maps it into
//! `[0, n)` with Lemire's nearly-divisionless method — an unbiased bounded
//! draw that avoids the modulo in the common case.
//!
//! Determinism matters for the reproduction: every experiment seeds its RNG
//! so runs are repeatable; the 5-run confidence intervals vary the seed
//! explicitly.
//!
//! The wyrand arithmetic itself lives in `hhh_counters::`[`mix`], shared
//! with the key-hash mixer so the workspace has exactly one copy of each
//! mixing function; this module owns the stream state and the bounded /
//! unit-interval / geometric transforms over it.

use hhh_counters::mix::{self, WY_ADD};

/// A small, fast, seedable PRNG (wyrand). Not cryptographic — the paper's
/// adversary model does not include RNG prediction, and the analysis only
/// needs uniformity.
#[derive(Debug, Clone)]
pub struct FastRng {
    state: u64,
}

impl FastRng {
    /// Creates a generator from a seed. Two generators with the same seed
    /// produce identical streams.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        // Splash the seed so small seeds don't start in a weak state.
        let mut rng = Self {
            state: seed ^ WY_ADD,
        };
        let _ = rng.next_u64();
        rng
    }

    /// Next 64 uniformly distributed bits.
    #[inline(always)]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(WY_ADD);
        mix::wyrand_mix(self.state)
    }

    /// Uniform draw in `[0, n)` by Lemire's nearly-divisionless rejection
    /// method. Unbiased for every `n`.
    ///
    /// `n == 0` is a caller bug; it is checked only in debug builds so the
    /// per-draw branch vanishes from the release hot path (callers such as
    /// [`Rhhh::new`](crate::Rhhh::new) validate their bound once at
    /// construction instead).
    #[inline(always)]
    pub fn bounded(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0, "bounded(0) is meaningless");
        let mut x = self.next_u64();
        let mut m = u128::from(x) * u128::from(n);
        let mut low = m as u64;
        if low < n {
            // Rare slow path: reject the biased low region.
            let threshold = n.wrapping_neg() % n;
            while low < threshold {
                x = self.next_u64();
                m = u128::from(x) * u128::from(n);
                low = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform draw in `[0.0, 1.0)`.
    #[inline(always)]
    pub fn next_f64(&mut self) -> f64 {
        // 53 top bits scaled to [0, 1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw in `(0.0, 1.0]` — the open-at-zero variant needed when
    /// the draw feeds a logarithm.
    #[inline(always)]
    pub fn next_f64_open(&mut self) -> f64 {
        ((self.next_u64() >> 11) + 1) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Fills `out` with consecutive draws of the stream, equivalent to
    /// calling [`FastRng::next_u64`] once per element.
    ///
    /// The point is instruction-level parallelism: `next_u64` chains each
    /// draw through the previous one (~10 cycles of latency per draw on the
    /// scalar path), but the wyrand state advances by a *constant* per
    /// draw, so a block's states are an affine sequence the compiler can
    /// compute independently — the expensive 64×64→128 mixes then pipeline
    /// instead of serializing (the loop itself is
    /// [`mix::wyrand_fill`], shared with anything else that
    /// wants a block of wyrand draws).
    pub fn fill_block(&mut self, out: &mut [u64]) {
        self.state = mix::wyrand_fill(self.state, out);
    }
}

/// Geometric gap sampler for the batch update path.
///
/// Algorithm 1 selects each packet independently with probability
/// `p = H/V`; the per-packet ("scalar") path realises this by drawing
/// `d ~ Uniform[0, V)` for **every** packet and acting only when `d < H`.
/// When `V > H` most draws are discarded — 90% of them for the paper's
/// 10-RHHH — yet each still costs a wyrand step, a 64×128 multiply and a
/// branch.
///
/// The number of consecutive *unselected* packets between two selected ones
/// is geometrically distributed: `Pr(G = k) = (1-p)^k · p`. `GeometricSkip`
/// draws that gap directly by inverse-CDF transform on one uniform draw,
///
/// ```text
/// G = floor( ln(U) / ln(1 - p) ),   U ~ Uniform(0, 1]
/// ```
///
/// which is distributed `Geometric(p)` because
/// `Pr(G ≥ k) = Pr(U ≤ (1-p)^k) = (1-p)^k`. One RNG draw and one `ln` thus
/// replace an *expected* `1/p` scalar draws (10 for 10-RHHH), making the
/// per-packet sampling cost `O(p)` amortized instead of `O(1)` with a
/// constant that dominates the update loop. `1/ln(1-p)` is precomputed at
/// construction, so the hot call is a wyrand step, one `ln`, one multiply
/// and a float→int cast.
///
/// The draw *schedule* therefore differs from the scalar path: the scalar
/// path consumes one `[0, V)` draw per packet, while the skip path consumes
/// one `(0, 1]` draw per *selected* packet (plus one `[0, H)` draw to pick
/// the node). The two processes have identical joint distributions — per
/// packet, selection is Bernoulli(`H/V`) and the selected node is uniform —
/// but identical seeds produce different (equally valid) sample paths, so
/// batch and scalar runs agree statistically rather than bit-for-bit.
#[derive(Debug, Clone, Copy)]
pub struct GeometricSkip {
    /// `1 / ln(1 - p)`; negative, since `p ∈ (0, 1)`.
    inv_log_q: f64,
    /// `p == 1` (V = H): every packet is selected, no gap draw needed.
    select_all: bool,
}

impl GeometricSkip {
    /// Sampler for selection probability `numer / denom` (RHHH's `H/V`).
    ///
    /// # Panics
    ///
    /// Panics unless `0 < numer <= denom`.
    #[must_use]
    pub fn new(numer: u64, denom: u64) -> Self {
        assert!(numer > 0, "selection probability must be positive");
        assert!(numer <= denom, "selection probability must be at most 1");
        if numer == denom {
            return Self {
                inv_log_q: 0.0,
                select_all: true,
            };
        }
        let p = numer as f64 / denom as f64;
        Self {
            inv_log_q: 1.0 / (1.0 - p).ln(),
            select_all: false,
        }
    }

    /// Whether every packet is selected (`p == 1`, i.e. `V == H`).
    #[must_use]
    pub fn selects_all(&self) -> bool {
        self.select_all
    }

    /// Draws the number of packets to *skip* before the next selected one
    /// (0 means the next packet is selected).
    #[inline]
    pub fn next_gap(&self, rng: &mut FastRng) -> u64 {
        if self.select_all {
            return 0;
        }
        // U ∈ (0, 1] keeps ln finite; U = 1 maps to gap 0. The smallest U
        // is 2^-53, so ln(U) ≥ -36.74 and the product stays far from the
        // f64→u64 saturation boundary for any practical p.
        let u = rng.next_f64_open();
        (fast_ln_unit(u) * self.inv_log_q) as u64
    }

    /// Converts a block of raw uniform draws (as produced by
    /// [`FastRng::fill_block`]) into geometric gaps in place. Equivalent to
    /// one [`GeometricSkip::next_gap`] per element but free of the per-call
    /// RNG latency chain, so the float pipeline (including the one division
    /// in the log) stays saturated.
    ///
    /// Must not be called when [`GeometricSkip::selects_all`] — the batch
    /// path special-cases `V = H` instead of drawing gaps at all.
    pub fn gaps_from_block(&self, raw: &mut [u64]) {
        debug_assert!(!self.select_all);
        for x in raw.iter_mut() {
            *x = self.gap_from_bits(*x >> 11);
        }
    }

    /// The multi-draw gap path: fills `out` with consecutive geometric
    /// gaps, bit-identical to one [`GeometricSkip::next_gap`] per element
    /// on the same generator, but drawing the raw uniforms through
    /// [`FastRng::fill_block`] and then evaluating the log transform over
    /// the whole block, so neither the RNG latency chain nor the `ln`
    /// dependency chain serializes the loop.
    ///
    /// Must not be called when [`GeometricSkip::selects_all`].
    pub fn fill_gaps(&self, rng: &mut FastRng, out: &mut [u64]) {
        debug_assert!(!self.select_all);
        rng.fill_block(out);
        self.gaps_from_block(out);
    }

    /// Converts 53 uniform bits into one geometric gap. The batch path
    /// derives the gap (bits 11..64) and the node choice (bits 0..11) of
    /// one trial from a *single* raw draw — the bit ranges are disjoint, so
    /// the two are independent.
    #[inline]
    pub fn gap_from_bits(&self, bits53: u64) -> u64 {
        debug_assert!(!self.select_all);
        let u = ((bits53 & ((1u64 << 53) - 1)) + 1) as f64 * (1.0 / (1u64 << 53) as f64);
        (fast_ln_unit(u) * self.inv_log_q) as u64
    }
}

/// Natural logarithm for `x ∈ (0, 1]`, inlined and branch-free.
///
/// The libm `ln` call is the single most expensive instruction sequence in
/// the geometric gap draw (it alone costs about as much as the rest of the
/// selection walk). This decomposes `x = m·2^e` with `m ∈ [1, 2)` from the
/// IEEE-754 bits and evaluates `ln m = 2·atanh(t)`, `t = (m−1)/(m+1)`, by
/// its odd series through `t⁹`. With `t ≤ 1/3` the truncation error is
/// below `2e-6` absolute, which perturbs the geometric gap by less than
/// `2e-6 · |1/ln(1-p)|` — orders of magnitude under one packet, and far
/// below anything a distributional test can resolve (the accuracy test
/// below pins the bound against `f64::ln`).
#[inline(always)]
fn fast_ln_unit(x: f64) -> f64 {
    debug_assert!(x > 0.0 && x <= 1.0);
    let bits = x.to_bits();
    let e = ((bits >> 52) as i64 - 1023) as f64;
    // Mantissa rescaled into [1, 2).
    let m = f64::from_bits((bits & 0x000F_FFFF_FFFF_FFFF) | 0x3FF0_0000_0000_0000);
    let t = (m - 1.0) / (m + 1.0);
    let t2 = t * t;
    let ln_m =
        2.0 * t * (1.0 + t2 * (1.0 / 3.0 + t2 * (1.0 / 5.0 + t2 * (1.0 / 7.0 + t2 * (1.0 / 9.0)))));
    ln_m + e * std::f64::consts::LN_2
}

/// [`fast_ln_unit`] over a block: `out[i] = fast_ln_unit(xs[i])`. Identical
/// per-element arithmetic (pinned by test), evaluated with no
/// cross-iteration dependency so the one division per lane pipelines. The
/// gap conversions ([`GeometricSkip::gaps_from_block`] /
/// [`GeometricSkip::fill_gaps`]) inline this shape fused with the bits→unit
/// scaling; this standalone form exists so the error-bound test covers the
/// block evaluation directly.
///
/// # Panics
///
/// Panics when the slices' lengths differ.
pub fn fast_ln_unit_block(xs: &[f64], out: &mut [f64]) {
    assert_eq!(xs.len(), out.len(), "ln block length mismatch");
    for (o, &x) in out.iter_mut().zip(xs) {
        *o = fast_ln_unit(x);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = FastRng::new(42);
        let mut b = FastRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = FastRng::new(43);
        assert_ne!(FastRng::new(42).next_u64(), c.next_u64());
    }

    #[test]
    fn bounded_is_in_range() {
        let mut rng = FastRng::new(7);
        for n in [1u64, 2, 3, 5, 25, 250, u64::MAX / 2 + 3] {
            for _ in 0..1_000 {
                assert!(rng.bounded(n) < n);
            }
        }
    }

    #[test]
    fn bounded_is_roughly_uniform() {
        // Chi-squared style sanity: 25 bins (the paper's V = H = 25 draw),
        // 250k draws, each bin expects 10k ± a few hundred.
        let mut rng = FastRng::new(1234);
        let n = 25u64;
        let mut bins = vec![0u64; n as usize];
        let draws = 250_000;
        for _ in 0..draws {
            bins[rng.bounded(n) as usize] += 1;
        }
        let expect = draws / n;
        for (i, &b) in bins.iter().enumerate() {
            let dev = (b as i64 - expect as i64).abs();
            assert!(
                dev < (expect / 10) as i64,
                "bin {i} = {b}, expected ~{expect}"
            );
        }
    }

    #[test]
    fn update_probability_matches_h_over_v() {
        // The sampling core of RHHH: Pr(d < H) = H/V. With V = 10·H the
        // update rate must be ~10%.
        let mut rng = FastRng::new(99);
        let (h, v) = (25u64, 250u64);
        let draws = 1_000_000;
        let mut updates = 0u64;
        for _ in 0..draws {
            if rng.bounded(v) < h {
                updates += 1;
            }
        }
        let rate = updates as f64 / draws as f64;
        assert!((rate - 0.1).abs() < 0.002, "rate = {rate}");
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = FastRng::new(5);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        assert!((sum / 10_000.0 - 0.5).abs() < 0.02);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "bounded(0)")]
    fn bounded_zero_panics_in_debug() {
        let _ = FastRng::new(1).bounded(0);
    }

    #[test]
    fn open_unit_draw_never_zero() {
        let mut rng = FastRng::new(77);
        for _ in 0..100_000 {
            let u = rng.next_f64_open();
            assert!(u > 0.0 && u <= 1.0);
        }
    }

    #[test]
    fn geometric_gap_matches_mean_and_mass() {
        // For p = H/V the gap mean is (1-p)/p and Pr(gap = 0) = p.
        let mut rng = FastRng::new(4242);
        for (h, v) in [(25u64, 250u64), (25, 25 * 4), (1, 100)] {
            let skip = GeometricSkip::new(h, v);
            let p = h as f64 / v as f64;
            let draws = 200_000u64;
            let (mut sum, mut zeros) = (0u64, 0u64);
            for _ in 0..draws {
                let g = skip.next_gap(&mut rng);
                sum += g;
                zeros += u64::from(g == 0);
            }
            let mean = sum as f64 / draws as f64;
            let expect = (1.0 - p) / p;
            assert!(
                (mean - expect).abs() < 0.05 * expect + 0.01,
                "p={p}: mean {mean} vs {expect}"
            );
            let zero_rate = zeros as f64 / draws as f64;
            assert!((zero_rate - p).abs() < 0.01, "p={p}: P(0) = {zero_rate}");
        }
    }

    #[test]
    fn geometric_skip_v_equals_h_selects_everything() {
        let skip = GeometricSkip::new(25, 25);
        assert!(skip.selects_all());
        let mut rng = FastRng::new(1);
        for _ in 0..100 {
            assert_eq!(skip.next_gap(&mut rng), 0);
        }
    }

    #[test]
    fn geometric_skip_implies_h_over_v_selection_rate() {
        // Walking a stream with the gap sampler must select ~p of packets —
        // the same guarantee the scalar `bounded(v) < h` test checks above.
        let (h, v) = (25u64, 250u64);
        let skip = GeometricSkip::new(h, v);
        let mut rng = FastRng::new(5150);
        let n = 1_000_000u64;
        let mut selected = 0u64;
        let mut cur = skip.next_gap(&mut rng);
        while cur < n {
            selected += 1;
            cur += 1 + skip.next_gap(&mut rng);
        }
        let rate = selected as f64 / n as f64;
        assert!((rate - 0.1).abs() < 0.002, "rate = {rate}");
    }

    #[test]
    #[should_panic(expected = "selection probability must be positive")]
    fn geometric_skip_rejects_zero_probability() {
        let _ = GeometricSkip::new(0, 10);
    }

    #[test]
    fn fill_block_matches_serial_stream() {
        let mut serial = FastRng::new(808);
        let mut blocked = FastRng::new(808);
        let mut buf = [0u64; 97];
        blocked.fill_block(&mut buf);
        for (i, &b) in buf.iter().enumerate() {
            assert_eq!(b, serial.next_u64(), "draw {i} diverged");
        }
        // And the state carries across the block boundary.
        assert_eq!(blocked.next_u64(), serial.next_u64());
    }

    #[test]
    fn fast_ln_matches_std_ln() {
        // Dense sweep over the unit interval plus the extremes the gap draw
        // can produce.
        let mut rng = FastRng::new(303);
        for _ in 0..200_000 {
            let u = rng.next_f64_open();
            let (fast, exact) = (fast_ln_unit(u), u.ln());
            assert!(
                (fast - exact).abs() < 4e-6,
                "fast_ln({u}) = {fast} vs {exact}"
            );
        }
        for u in [1.0, 0.5, 0.25, f64::powi(2.0, -53)] {
            assert!((fast_ln_unit(u) - u.ln()).abs() < 4e-6, "at {u}");
        }
    }

    #[test]
    fn fast_ln_block_matches_serial_and_std_ln() {
        // The block evaluator must be the serial function per lane — bit
        // for bit — and therefore inherit its error bound vs f64::ln.
        let mut rng = FastRng::new(606);
        for _ in 0..500 {
            let xs: Vec<f64> = (0..97).map(|_| rng.next_f64_open()).collect();
            let mut out = vec![0.0; xs.len()];
            fast_ln_unit_block(&xs, &mut out);
            for (i, (&x, &y)) in xs.iter().zip(&out).enumerate() {
                assert_eq!(y.to_bits(), fast_ln_unit(x).to_bits(), "lane {i}");
                assert!((y - x.ln()).abs() < 4e-6, "block ln({x}) = {y}");
            }
        }
    }

    #[test]
    fn fill_gaps_matches_serial_next_gap() {
        // The multi-draw path must consume the RNG stream exactly like the
        // serial draw loop and produce identical gaps.
        for (h, v) in [(25u64, 250u64), (25, 50), (1, 1000)] {
            let skip = GeometricSkip::new(h, v);
            let mut serial = FastRng::new(0xFEED);
            let mut blocked = FastRng::new(0xFEED);
            let mut gaps = [0u64; 97];
            skip.fill_gaps(&mut blocked, &mut gaps);
            for (i, &g) in gaps.iter().enumerate() {
                assert_eq!(g, skip.next_gap(&mut serial), "gap {i} diverged");
            }
            // State carries across the block boundary.
            assert_eq!(blocked.next_u64(), serial.next_u64());
        }
    }
}
