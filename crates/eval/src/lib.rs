//! Evaluation harness for the RHHH reproduction.
//!
//! One binary per figure of the paper's evaluation (Sections 4–5); each
//! prints the figure's series as CSV rows to stdout and mirrors them into
//! `results/<figure>.csv`. DESIGN.md's per-experiment index maps every
//! figure to its binary; EXPERIMENTS.md records paper-vs-measured.
//!
//! | Binary                 | Paper figure | Series |
//! |------------------------|--------------|--------|
//! | `fig2_accuracy`        | Figure 2     | accuracy-error ratio vs N, 2D bytes, 4 traces |
//! | `fig3_coverage`        | Figure 3     | coverage-error ratio vs N |
//! | `fig4_false_positives` | Figure 4     | false-positive rate vs N, 3 hierarchies × 2 traces |
//! | `fig5_speed`           | Figure 5     | update speed (Mpps) vs ε, 3 hierarchies × 2 traces |
//! | `fig6_ovs_throughput`  | Figure 6     | dataplane throughput per monitor |
//! | `fig7_dataplane_v`     | Figure 7     | dataplane throughput vs V |
//! | `fig8_distributed_v`   | Figure 8     | distributed throughput vs V |
//! | `psi_convergence`      | Thm 6.3/6.17 | empirical ε_s(N) vs the √(Z·V/N) envelope |
//!
//! The [`metrics`] module defines the three quality metrics against exact
//! ground truth; [`runner`] holds the shared experiment plumbing (argument
//! parsing, algorithm factories, timing); [`report`] tees CSV to stdout and
//! the results directory.

pub mod metrics;
pub mod report;
pub mod runner;

pub use hhh_core::CounterKind;
pub use metrics::{accuracy_error_ratio, coverage_error_ratio, false_positive_ratio};
pub use report::Report;
pub use runner::{
    checkpoints, measure_mpps, measure_mpps_batch, quality_sweep, AlgoKind, Args, QualityPoint,
};
