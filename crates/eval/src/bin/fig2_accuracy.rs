//! Figure 2 — Accuracy error ratio vs stream length.
//!
//! Paper: "Accuracy error ratio – HHH candidates whose frequency estimation
//! error is larger than εN (ε = 0.001)", panels (a–d) for the four traces,
//! 2D-byte hierarchy, θ = 1%.
//!
//! Expected shape: RHHH starts with a high error ratio and decays toward 0
//! as N approaches ψ; 10-RHHH decays ~10× slower; the deterministic
//! baselines (MST, Full/Partial Ancestry) sit at ~0 throughout.
//!
//! Scale note (DESIGN.md): the paper runs ε_a = ε_s = 0.001 out to 10⁹
//! packets (ψ ≈ 10⁸). The laptop-scale default uses ε = 0.005 so that
//! ψ ≈ 3.3·10⁶ falls inside the default 4M-packet budget, preserving the
//! convergence shape. Run with `--epsilon 0.001 --packets 250000000` for
//! the paper's operating point.

use hhh_eval::{quality_sweep, AlgoKind, Args, Report};
use hhh_hierarchy::Lattice;
use hhh_traces::{Packet, TraceConfig};

fn main() {
    let mut args = Args::parse(4_000_000, 1);
    if args.epsilon == 0.001 && std::env::args().all(|a| a != "--epsilon") {
        args.epsilon = 0.005; // laptop-scale default, see module docs
    }
    let mut report = Report::new(
        "fig2_accuracy",
        &["trace", "n", "algorithm", "run", "accuracy_error_ratio"],
    );
    report.comment(&format!(
        "fig2: 2D bytes, theta={}, eps_a=eps_s={}, packets<={}, runs={}",
        args.theta, args.epsilon, args.packets, args.runs
    ));

    let lattice = Lattice::ipv4_src_dst_bytes();
    for trace in TraceConfig::presets() {
        for run in 0..args.runs {
            let points = quality_sweep(
                &lattice,
                &trace,
                &AlgoKind::roster(),
                &args,
                Packet::key2,
                0xF162 + u64::from(run),
            );
            for p in points {
                report.row(&[
                    p.trace,
                    p.n.to_string(),
                    p.algo,
                    run.to_string(),
                    format!("{:.6}", p.accuracy_error),
                ]);
            }
        }
    }
}
