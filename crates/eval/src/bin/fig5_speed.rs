//! Figure 5 — Update speed (million packets per second) vs ε.
//!
//! Paper: six panels, {SanJose14, Chicago16} × {1D bytes H=5, 1D bits
//! H=33, 2D bytes H=25}; algorithms MST, Full/Partial Ancestry, RHHH,
//! 10-RHHH; each point on 250M-packet traces.
//!
//! Expected shape (Section 4.3): RHHH/10-RHHH flat in ε and fastest; MST
//! flat but ~H× slower; the Ancestry algorithms speed up as ε shrinks; the
//! gap widens with H (speedups up to ×3.5/×10 for 1D bytes, ×21/×62 for 1D
//! bits, ×20/×60 for 2D bytes). The final columns print RHHH's and
//! 10-RHHH's speedup over the slowest baseline at each ε, the paper's
//! headline numbers.

use hhh_core::HhhAlgorithm;
use hhh_eval::{measure_mpps, AlgoKind, Args, Report};
use hhh_hierarchy::{KeyBits, Lattice};
use hhh_stats::Summary;
use hhh_traces::{Packet, TraceConfig, TraceGenerator};

const EPSILONS: [f64; 5] = [0.00025, 0.0005, 0.001, 0.002, 0.004];

fn panel<K: KeyBits>(
    report: &mut Report,
    trace: &TraceConfig,
    hierarchy: &str,
    lattice: &Lattice<K>,
    keys: &[K],
    runs: u32,
) {
    for eps in EPSILONS {
        let mut speeds: Vec<(String, f64)> = Vec::new();
        for kind in AlgoKind::roster() {
            let mut summary = Summary::new();
            for run in 0..runs {
                let mut algo: Box<dyn HhhAlgorithm<K>> =
                    kind.build(lattice.clone(), eps, 0xF165 + u64::from(run));
                summary.add(measure_mpps(algo.as_mut(), keys));
            }
            let ci = summary.confidence_interval(0.95);
            report.row(&[
                trace.name.clone(),
                hierarchy.into(),
                format!("{eps}"),
                kind.label(),
                format!("{:.3}", summary.mean()),
                format!("{:.3}", ci.half_width()),
            ]);
            speeds.push((kind.label(), summary.mean()));
        }
        // Speedup headline: RHHH and 10-RHHH vs the slowest baseline.
        let slowest = speeds
            .iter()
            .filter(|(l, _)| l == "MST" || l.ends_with("Ancestry"))
            .map(|(_, s)| *s)
            .fold(f64::INFINITY, f64::min);
        for target in ["RHHH", "10-RHHH"] {
            if let Some((_, s)) = speeds.iter().find(|(l, _)| l == target) {
                report.comment(&format!(
                    "{} {} eps={eps}: {target} speedup x{:.1}",
                    trace.name,
                    hierarchy,
                    s / slowest
                ));
            }
        }
    }
}

fn main() {
    let args = Args::parse(1_000_000, 1);
    let mut report = Report::new(
        "fig5_speed",
        &[
            "trace",
            "hierarchy",
            "epsilon",
            "algorithm",
            "mpps",
            "ci95_half",
        ],
    );
    report.comment(&format!(
        "fig5: packets/point={}, runs={}",
        args.packets, args.runs
    ));

    for trace in [TraceConfig::sanjose14(), TraceConfig::chicago16()] {
        let packets: Vec<Packet> = TraceGenerator::new(&trace).take_packets(args.packets as usize);
        let keys1: Vec<u32> = packets.iter().map(Packet::key1).collect();
        let keys2: Vec<u64> = packets.iter().map(Packet::key2).collect();

        panel(
            &mut report,
            &trace,
            "1d-bytes",
            &Lattice::ipv4_src_bytes(),
            &keys1,
            args.runs,
        );
        panel(
            &mut report,
            &trace,
            "1d-bits",
            &Lattice::ipv4_src_bits(),
            &keys1,
            args.runs,
        );
        panel(
            &mut report,
            &trace,
            "2d-bytes",
            &Lattice::ipv4_src_dst_bytes(),
            &keys2,
            args.runs,
        );
    }
}
