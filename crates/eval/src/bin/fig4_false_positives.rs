//! Figure 4 — False positive rate vs stream length.
//!
//! Paper: six panels, {SanJose14, Chicago16} × {1D bytes, 1D bits,
//! 2D bytes}, ε = 0.1%, θ = 1%: the fraction of reported prefixes that are
//! not exact HHHs.
//!
//! Expected shape: RHHH/10-RHHH start near 1 (the sampling slack admits
//! everything pre-convergence) and decay toward parity with — sometimes
//! below — the deterministic baselines once N passes ψ.

use hhh_eval::{quality_sweep, AlgoKind, Args, Report};
use hhh_hierarchy::Lattice;
use hhh_traces::{Packet, TraceConfig};

fn main() {
    let mut args = Args::parse(4_000_000, 1);
    if args.epsilon == 0.001 && std::env::args().all(|a| a != "--epsilon") {
        args.epsilon = 0.005; // laptop-scale default, see fig2 docs
    }
    let mut report = Report::new(
        "fig4_false_positives",
        &[
            "trace",
            "hierarchy",
            "n",
            "algorithm",
            "run",
            "false_positive_rate",
        ],
    );
    report.comment(&format!(
        "fig4: theta={}, eps_a=eps_s={}, packets<={}, runs={}",
        args.theta, args.epsilon, args.packets, args.runs
    ));

    let traces = [TraceConfig::sanjose14(), TraceConfig::chicago16()];
    for trace in &traces {
        for run in 0..args.runs {
            let seed = 0xF164 + u64::from(run);

            // Panel column 1: 1D bytes (H = 5).
            let lat = Lattice::ipv4_src_bytes();
            for p in quality_sweep(&lat, trace, &AlgoKind::roster(), &args, Packet::key1, seed) {
                report.row(&[
                    p.trace,
                    "1d-bytes".into(),
                    p.n.to_string(),
                    p.algo,
                    run.to_string(),
                    format!("{:.6}", p.false_positive),
                ]);
            }

            // Panel column 2: 1D bits (H = 33).
            let lat = Lattice::ipv4_src_bits();
            for p in quality_sweep(&lat, trace, &AlgoKind::roster(), &args, Packet::key1, seed) {
                report.row(&[
                    p.trace,
                    "1d-bits".into(),
                    p.n.to_string(),
                    p.algo,
                    run.to_string(),
                    format!("{:.6}", p.false_positive),
                ]);
            }

            // Panel column 3: 2D bytes (H = 25).
            let lat = Lattice::ipv4_src_dst_bytes();
            for p in quality_sweep(&lat, trace, &AlgoKind::roster(), &args, Packet::key2, seed) {
                report.row(&[
                    p.trace,
                    "2d-bytes".into(),
                    p.n.to_string(),
                    p.algo,
                    run.to_string(),
                    format!("{:.6}", p.false_positive),
                ]);
            }
        }
    }
}
