//! Figure 3 — Coverage error ratio (false negatives) vs stream length.
//!
//! Paper: "The percentage of Coverage errors – elements q such that q ∉ P
//! and C_{q|P} ≥ Nθ (false negatives)", panels (a–d), 2D bytes.
//!
//! Expected shape: RHHH's coverage errors vanish once the sampling slack
//! term `2·Z·√(N·V)` becomes honest (N past ψ); the deterministic baselines
//! are at 0 by construction (their conditioned estimates are conservative
//! with δ = 0).

use hhh_eval::{quality_sweep, AlgoKind, Args, Report};
use hhh_hierarchy::Lattice;
use hhh_traces::{Packet, TraceConfig};

fn main() {
    let mut args = Args::parse(4_000_000, 1);
    if args.epsilon == 0.001 && std::env::args().all(|a| a != "--epsilon") {
        args.epsilon = 0.005; // laptop-scale default, see fig2 docs
    }
    let mut report = Report::new(
        "fig3_coverage",
        &["trace", "n", "algorithm", "run", "coverage_error_ratio"],
    );
    report.comment(&format!(
        "fig3: 2D bytes, theta={}, eps_a=eps_s={}, packets<={}, runs={}",
        args.theta, args.epsilon, args.packets, args.runs
    ));

    let lattice = Lattice::ipv4_src_dst_bytes();
    for trace in TraceConfig::presets() {
        for run in 0..args.runs {
            let points = quality_sweep(
                &lattice,
                &trace,
                &AlgoKind::roster(),
                &args,
                Packet::key2,
                0xF163 + u64::from(run),
            );
            for p in points {
                report.row(&[
                    p.trace,
                    p.n.to_string(),
                    p.algo,
                    run.to_string(),
                    format!("{:.6}", p.coverage_error),
                ]);
            }
        }
    }
}
