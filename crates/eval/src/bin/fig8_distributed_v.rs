//! Figure 8 — Distributed-implementation throughput vs V.
//!
//! Paper: the switch forwards only sampled packets to a measurement VM;
//! throughput again improves with V (fewer samples cross the link), and
//! sits slightly below the dataplane integration while freeing the switch
//! from counter maintenance. Here the VM is a measurement thread and the
//! link a bounded channel with blocking backpressure, so the number is the
//! end-to-end sustainable rate.

use std::time::Instant;

use hhh_core::RhhhConfig;
use hhh_eval::{Args, Report};
use hhh_hierarchy::Lattice;
use hhh_stats::Summary;
use hhh_traces::{Packet, TraceConfig, TraceGenerator};
use hhh_vswitch::{Backpressure, Datapath, DistributedRhhh};

fn main() {
    let args = Args::parse(4_000_000, 3);
    let mut report = Report::new(
        "fig8_distributed_v",
        &["v", "v_scale", "mpps", "ci95_half", "forwarded_fraction"],
    );
    report.comment(&format!(
        "fig8: 2D bytes (H=25), chicago16, eps=delta=0.001, queue=8192, packets={}, runs={}",
        args.packets, args.runs
    ));

    let packets: Vec<Packet> =
        TraceGenerator::new(&TraceConfig::chicago16()).take_packets(args.packets as usize);
    let lattice = Lattice::ipv4_src_dst_bytes();

    // Warm-up pass: touch every packet once outside the timed region.
    let warm: u64 = packets
        .iter()
        .map(|p| u64::from(p.src) ^ u64::from(p.dst))
        .sum();
    std::hint::black_box(warm);

    for v_scale in 1..=10u64 {
        let mut summary = Summary::new();
        let mut forwarded_fraction = 0.0;
        for run in 0..args.runs {
            let dist = DistributedRhhh::spawn(
                lattice.clone(),
                RhhhConfig {
                    epsilon_a: 0.001,
                    epsilon_s: 0.001,
                    delta_s: 0.0005,
                    v_scale,
                    updates_per_packet: 1,
                    seed: 0xF168 + u64::from(run),
                },
                8192,
                Backpressure::Block,
            );
            let mut dp = Datapath::new(dist);
            let start = Instant::now();
            for p in &packets {
                dp.process_packet(p);
            }
            let elapsed = start.elapsed().as_secs_f64();
            let (_, stats) = dp.into_monitor().finish();
            summary.add(packets.len() as f64 / elapsed / 1e6);
            forwarded_fraction = stats.forwarded as f64 / stats.packets as f64;
        }
        let ci = summary.confidence_interval(0.95);
        report.row(&[
            (v_scale * 25).to_string(),
            v_scale.to_string(),
            format!("{:.3}", summary.mean()),
            format!("{:.3}", ci.half_width()),
            format!("{:.4}", forwarded_fraction),
        ]);
    }
}
