//! Figure 7 — Dataplane throughput vs the performance parameter V.
//!
//! Paper: V swept from H = 25 (RHHH) to 10·H = 250 (10-RHHH) with the
//! measurement inline in the datapath; throughput improves monotonically
//! with V because a larger V means fewer counter updates per packet
//! (`Pr(update) = H/V`).

use std::time::Instant;

use hhh_core::{Rhhh, RhhhConfig};
use hhh_eval::{Args, Report};
use hhh_hierarchy::Lattice;
use hhh_stats::Summary;
use hhh_traces::{Packet, TraceConfig, TraceGenerator};
use hhh_vswitch::{AlgoMonitor, Datapath};

fn main() {
    let args = Args::parse(4_000_000, 3);
    let mut report = Report::new("fig7_dataplane_v", &["v", "v_scale", "mpps", "ci95_half"]);
    report.comment(&format!(
        "fig7: 2D bytes (H=25), chicago16, eps=delta=0.001, packets={}, runs={}",
        args.packets, args.runs
    ));

    let packets: Vec<Packet> =
        TraceGenerator::new(&TraceConfig::chicago16()).take_packets(args.packets as usize);
    let lattice = Lattice::ipv4_src_dst_bytes();

    // Warm-up pass: touch every packet once outside the timed region.
    let warm: u64 = packets
        .iter()
        .map(|p| u64::from(p.src) ^ u64::from(p.dst))
        .sum();
    std::hint::black_box(warm);

    for v_scale in 1..=10u64 {
        let mut summary = Summary::new();
        for run in 0..args.runs {
            let algo = Rhhh::<u64>::new(
                lattice.clone(),
                RhhhConfig {
                    epsilon_a: 0.001,
                    epsilon_s: 0.001,
                    delta_s: 0.0005,
                    v_scale,
                    updates_per_packet: 1,
                    seed: 0xF167 + u64::from(run),
                },
            );
            let mut dp = Datapath::new(AlgoMonitor::new(algo));
            let start = Instant::now();
            for p in &packets {
                dp.process_packet(p);
            }
            summary.add(packets.len() as f64 / start.elapsed().as_secs_f64() / 1e6);
        }
        let ci = summary.confidence_interval(0.95);
        report.row(&[
            (v_scale * 25).to_string(),
            v_scale.to_string(),
            format!("{:.3}", summary.mean()),
            format!("{:.3}", ci.half_width()),
        ]);
    }
}
