//! Merged-vs-single accuracy: what does shard-parallelism cost?
//!
//! A K-shard pipeline partitions the stream by key hash, counts each
//! sub-stream on its own RHHH instance and merges at query time. The merge
//! analysis says the per-node counter errors add (`Σᵢ nᵢ/m = n/m` — the
//! same class as one instance) while the independent sampling errors add in
//! variance, so accuracy should be *flat in K*. This experiment measures
//! that claim with the paper's three quality metrics against exact ground
//! truth, for K ∈ {1, 2, 4, 8} and **every counter in
//! [`CounterKind::roster`]**, plus the wall-clock cost of the merge
//! itself. (For the decay family the merged per-key bands widen by the
//! summed shard deficits — its documented merge bound — so its accuracy
//! column is expected to drift with K rather than stay flat.)
//!
//! Two combine strategies are compared at every K > 1:
//!
//! * `pairwise` — the shards are held as `Box<dyn HhhAlgorithm>` and folded
//!   through the driver trait's `merge`, the exact code path a
//!   runtime-configured pipeline ran before PR 4; each fold step pads
//!   one-sided keys with the growing intermediate merged min-counts.
//! * `kway` — one `Rhhh::merge_many` combine over all K candidate lists at
//!   once (the `ShardedMonitor::harvest` path), padding with the per-shard
//!   minima only. The K-way estimates are pointwise no looser than the
//!   fold's, so its accuracy column must be ≤ the pairwise row's.

use std::time::Instant;

use hhh_core::{CounterKind, ExactHhh, HeavyHitter, HhhAlgorithm, Rhhh, RhhhConfig};
use hhh_counters::{
    CompactSpaceSaving, CuckooHeavyKeeper, DispatchedEstimator, FrequencyEstimator,
    HeapSpaceSaving, LossyCounting, MisraGries, SpaceSaving,
};
use hhh_eval::{accuracy_error_ratio, coverage_error_ratio, false_positive_ratio, Args, Report};
use hhh_hierarchy::Lattice;
use hhh_traces::{Packet, TraceConfig, TraceGenerator};
use hhh_vswitch::shard_of;

fn shard_config(epsilon: f64, i: usize) -> RhhhConfig {
    RhhhConfig {
        epsilon_a: epsilon,
        epsilon_s: epsilon,
        delta_s: 0.001,
        v_scale: 1,
        updates_per_packet: 1,
        seed: 0x3E6 + i as u64 * 0x9E37,
    }
}

/// K-way combine on concrete instances: partition, feed, one
/// `merge_many` over all shards. Returns the output and the merge cost.
fn run_kway<E: FrequencyEstimator<u64>>(
    lattice: &Lattice<u64>,
    keys: &[u64],
    epsilon: f64,
    shards: usize,
    theta: f64,
) -> (Vec<HeavyHitter<u64>>, f64) {
    let mut parts: Vec<Rhhh<u64, E>> = (0..shards)
        .map(|i| Rhhh::new(lattice.clone(), shard_config(epsilon, i)))
        .collect();
    let mut buckets: Vec<Vec<u64>> = vec![Vec::new(); shards];
    for &k in keys {
        buckets[shard_of(k, shards)].push(k);
    }
    for (part, bucket) in parts.iter_mut().zip(&buckets) {
        part.update_batch(bucket);
    }
    let mut merged = parts.remove(0);
    let t0 = Instant::now();
    merged.merge_many(parts);
    let merge_ms = t0.elapsed().as_secs_f64() * 1e3;
    (merged.output(theta), merge_ms)
}

/// Monomorphizes `$body` over the roster: `$est` aliases the concrete
/// `u64`-keyed estimator for `$kind`.
macro_rules! with_counter_type {
    ($kind:expr, $est:ident, $body:expr) => {
        match $kind {
            CounterKind::StreamSummary => {
                type $est = SpaceSaving<u64>;
                $body
            }
            CounterKind::Compact => {
                type $est = CompactSpaceSaving<u64>;
                $body
            }
            CounterKind::Dispatch => {
                type $est = DispatchedEstimator<u64>;
                $body
            }
            CounterKind::Heap => {
                type $est = HeapSpaceSaving<u64>;
                $body
            }
            CounterKind::MisraGries => {
                type $est = MisraGries<u64>;
                $body
            }
            CounterKind::LossyCounting => {
                type $est = LossyCounting<u64>;
                $body
            }
            CounterKind::CuckooHeavyKeeper => {
                type $est = CuckooHeavyKeeper<u64>;
                $body
            }
        }
    };
}

fn main() {
    let args = Args::parse(1_000_000, 1);
    let mut report = Report::new(
        "merge_accuracy",
        &[
            "trace",
            "counter",
            "shards",
            "combine",
            "accuracy_error",
            "coverage_error",
            "false_positive",
            "merge_ms",
        ],
    );
    report.comment(&format!(
        "merged-vs-single: 2D bytes (H=25), theta={}, eps_a=eps_s={}, packets={}",
        args.theta, args.epsilon, args.packets
    ));

    let lattice = Lattice::ipv4_src_dst_bytes();
    for trace in [TraceConfig::chicago16(), TraceConfig::sanjose14()] {
        let keys: Vec<u64> = TraceGenerator::new(&trace)
            .take_packets(args.packets as usize)
            .iter()
            .map(Packet::key2)
            .collect();
        let mut exact = ExactHhh::new(lattice.clone());
        for &k in &keys {
            exact.insert(k);
        }
        let epsilon_total = 2.0 * args.epsilon; // ε = ε_a + ε_s
        let metrics = |out: &[HeavyHitter<u64>]| {
            (
                accuracy_error_ratio(out, &exact, epsilon_total),
                coverage_error_ratio(out, &exact, args.theta),
                false_positive_ratio(out, &exact, args.theta),
            )
        };

        for counter in CounterKind::roster() {
            for shards in [1usize, 2, 4, 8] {
                // Pairwise fold through the dyn driver trait.
                let mut parts: Vec<Box<dyn HhhAlgorithm<u64>>> = (0..shards)
                    .map(|i| counter.build_rhhh(lattice.clone(), shard_config(args.epsilon, i)))
                    .collect();
                if shards == 1 {
                    parts[0].insert_batch(&keys);
                } else {
                    let mut buckets: Vec<Vec<u64>> = vec![Vec::new(); shards];
                    for &k in &keys {
                        buckets[shard_of(k, shards)].push(k);
                    }
                    for (part, bucket) in parts.iter_mut().zip(&buckets) {
                        part.insert_batch(bucket);
                    }
                }
                let mut merged = parts.remove(0);
                let t0 = Instant::now();
                for part in parts {
                    merged.merge(part).expect("same kind and config");
                }
                let merge_ms = t0.elapsed().as_secs_f64() * 1e3;
                let out = merged.query(args.theta);
                let (acc, cov, fpr) = metrics(&out);
                report.row(&[
                    trace.name.clone(),
                    counter.label().to_string(),
                    shards.to_string(),
                    "pairwise".to_string(),
                    format!("{acc:.4}"),
                    format!("{cov:.4}"),
                    format!("{fpr:.4}"),
                    format!("{merge_ms:.2}"),
                ]);

                // Single K-way combine (the harvest path).
                if shards > 1 {
                    let (out, merge_ms) = with_counter_type!(counter, Est, {
                        run_kway::<Est>(&lattice, &keys, args.epsilon, shards, args.theta)
                    });
                    let (acc, cov, fpr) = metrics(&out);
                    report.row(&[
                        trace.name.clone(),
                        counter.label().to_string(),
                        shards.to_string(),
                        "kway".to_string(),
                        format!("{acc:.4}"),
                        format!("{cov:.4}"),
                        format!("{fpr:.4}"),
                        format!("{merge_ms:.2}"),
                    ]);
                }
            }
        }
    }
}
