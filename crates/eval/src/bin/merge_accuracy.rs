//! Merged-vs-single accuracy: what does shard-parallelism cost?
//!
//! A K-shard pipeline partitions the stream by key hash, counts each
//! sub-stream on its own RHHH instance and merges at query time. The merge
//! analysis says the per-node counter errors add (`Σᵢ nᵢ/m = n/m` — the
//! same class as one instance) while the independent sampling errors add in
//! variance, so accuracy should be *flat in K*. This experiment measures
//! that claim with the paper's three quality metrics against exact ground
//! truth, for K ∈ {1, 2, 4, 8} and both Space Saving layouts, plus the
//! wall-clock cost of the merge fold itself.
//!
//! The shards are held as `Box<dyn HhhAlgorithm>` and merged through the
//! driver trait — the exact code path a runtime-configured pipeline runs.

use std::time::Instant;

use hhh_core::{CounterKind, ExactHhh, HhhAlgorithm, RhhhConfig};
use hhh_eval::{accuracy_error_ratio, coverage_error_ratio, false_positive_ratio, Args, Report};
use hhh_hierarchy::Lattice;
use hhh_traces::{Packet, TraceConfig, TraceGenerator};
use hhh_vswitch::shard_of;

fn main() {
    let args = Args::parse(1_000_000, 1);
    let mut report = Report::new(
        "merge_accuracy",
        &[
            "trace",
            "counter",
            "shards",
            "accuracy_error",
            "coverage_error",
            "false_positive",
            "merge_ms",
        ],
    );
    report.comment(&format!(
        "merged-vs-single: 2D bytes (H=25), theta={}, eps_a=eps_s={}, packets={}",
        args.theta, args.epsilon, args.packets
    ));

    let lattice = Lattice::ipv4_src_dst_bytes();
    for trace in [TraceConfig::chicago16(), TraceConfig::sanjose14()] {
        let keys: Vec<u64> = TraceGenerator::new(&trace)
            .take_packets(args.packets as usize)
            .iter()
            .map(Packet::key2)
            .collect();
        let mut exact = ExactHhh::new(lattice.clone());
        for &k in &keys {
            exact.insert(k);
        }
        let epsilon_total = 2.0 * args.epsilon; // ε = ε_a + ε_s

        for counter in [CounterKind::StreamSummary, CounterKind::Compact] {
            for shards in [1usize, 2, 4, 8] {
                let mut parts: Vec<Box<dyn HhhAlgorithm<u64>>> = (0..shards)
                    .map(|i| {
                        counter.build_rhhh(
                            lattice.clone(),
                            RhhhConfig {
                                epsilon_a: args.epsilon,
                                epsilon_s: args.epsilon,
                                delta_s: 0.001,
                                v_scale: 1,
                                updates_per_packet: 1,
                                seed: 0x3E6 + i as u64 * 0x9E37,
                            },
                        )
                    })
                    .collect();
                if shards == 1 {
                    parts[0].insert_batch(&keys);
                } else {
                    let mut buckets: Vec<Vec<u64>> = vec![Vec::new(); shards];
                    for &k in &keys {
                        buckets[shard_of(k, shards)].push(k);
                    }
                    for (part, bucket) in parts.iter_mut().zip(&buckets) {
                        part.insert_batch(bucket);
                    }
                }
                let mut merged = parts.remove(0);
                let t0 = Instant::now();
                for part in parts {
                    merged.merge(part).expect("same kind and config");
                }
                let merge_ms = t0.elapsed().as_secs_f64() * 1e3;

                let out = merged.query(args.theta);
                report.row(&[
                    trace.name.clone(),
                    counter.label().to_string(),
                    shards.to_string(),
                    format!("{:.4}", accuracy_error_ratio(&out, &exact, epsilon_total)),
                    format!("{:.4}", coverage_error_ratio(&out, &exact, args.theta)),
                    format!("{:.4}", false_positive_ratio(&out, &exact, args.theta)),
                    format!("{merge_ms:.2}"),
                ]);
            }
        }
    }
}
