//! Figure 6 — Dataplane throughput per monitor.
//!
//! Paper: OVS-DPDK forwarding throughput with measurement inline
//! (ε = δ = 0.001, 2D bytes, Chicago16): unmodified OVS 14.88 Mpps,
//! 10-RHHH 13.8 (−4%), RHHH 10.6, Partial Ancestry 5.6 (fastest previous
//! work), MST slowest — a ×2.5 advantage for RHHH over the baselines.
//!
//! Expected shape here: NoOp ≥ 10-RHHH (few percent gap) > RHHH >
//! PartialAncestry ≥ FullAncestry > MST. Absolute Mpps depend on the host;
//! the ordering and relative gaps are the reproduction target.

use std::time::Instant;

use hhh_core::{Rhhh, RhhhConfig};
use hhh_eval::{AlgoKind, Args, Report};
use hhh_hierarchy::Lattice;
use hhh_stats::Summary;
use hhh_traces::{Packet, TraceConfig, TraceGenerator};
use hhh_vswitch::{AlgoMonitor, Datapath, DataplaneMonitor, NoOpMonitor};

fn run_pipeline<M: DataplaneMonitor>(monitor: M, packets: &[Packet]) -> f64 {
    let mut dp = Datapath::new(monitor);
    let start = Instant::now();
    for p in packets {
        dp.process_packet(p);
    }
    let secs = start.elapsed().as_secs_f64();
    assert_eq!(dp.stats().forwarded, packets.len() as u64);
    packets.len() as f64 / secs / 1e6
}

fn main() {
    let args = Args::parse(4_000_000, 3);
    let mut report = Report::new(
        "fig6_ovs_throughput",
        &["monitor", "mpps", "ci95_half", "relative_to_noop"],
    );
    report.comment(&format!(
        "fig6: 2D bytes, chicago16, eps=delta=0.001, packets={}, runs={}",
        args.packets, args.runs
    ));

    let packets: Vec<Packet> =
        TraceGenerator::new(&TraceConfig::chicago16()).take_packets(args.packets as usize);
    let lattice = Lattice::ipv4_src_dst_bytes();

    let mut rows: Vec<(String, Summary)> = Vec::new();

    // Warm the page cache and branch predictors before any timed run.
    let _ = run_pipeline(NoOpMonitor, &packets);

    // Unmodified switch.
    let mut noop = Summary::new();
    for _ in 0..args.runs {
        noop.add(run_pipeline(NoOpMonitor, &packets));
    }
    rows.push(("OVS (NoOp)".into(), noop));

    // 10-RHHH and RHHH, matching the paper's ε = δ = 0.001.
    for (label, v_scale) in [("10-RHHH", 10u64), ("RHHH", 1u64)] {
        let mut s = Summary::new();
        for run in 0..args.runs {
            let algo = Rhhh::<u64>::new(
                lattice.clone(),
                RhhhConfig {
                    epsilon_a: 0.001,
                    epsilon_s: 0.001,
                    delta_s: 0.0005,
                    v_scale,
                    updates_per_packet: 1,
                    seed: 0xF166 + u64::from(run),
                },
            );
            s.add(run_pipeline(AlgoMonitor::new(algo), &packets));
        }
        rows.push((label.into(), s));
    }

    // Deterministic baselines at the same ε.
    for kind in [
        AlgoKind::Mst,
        AlgoKind::PartialAncestry,
        AlgoKind::FullAncestry,
    ] {
        let mut s = Summary::new();
        for run in 0..args.runs {
            let algo = kind.build(lattice.clone(), 0.001, 0xF166 + u64::from(run));
            s.add(run_pipeline(AlgoMonitor::new(algo), &packets));
        }
        rows.push((kind.label(), s));
    }

    let base = rows[0].1.mean();
    for (label, summary) in rows {
        let ci = summary.confidence_interval(0.95);
        report.row(&[
            label,
            format!("{:.3}", summary.mean()),
            format!("{:.3}", ci.half_width()),
            format!("{:.3}", summary.mean() / base),
        ]);
    }
}
