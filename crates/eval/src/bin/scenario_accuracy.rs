//! Scenario-trace accuracy: the five seeded scenario streams through the
//! zero-copy wire plane end to end, judged against the exact HHH oracle.
//!
//! Each scenario's packets are emitted as raw canonical frames, resolved
//! through `WireBlockView` into `update_batch_wire` — the full PR 9 ingest
//! path, no `Packet` structs on the measured plane — while the oracle
//! consumes the same stream's exact keys. The wire plane is bit-identical
//! to the struct-fed batch path (pinned by the differential suite), so
//! these rows double as an accuracy regression net for the scenario
//! library itself: a generator whose mix drifts shows up as a moved error
//! ratio under the fixed per-scenario seed.
//!
//! Expected shape: at the default 1M-packet budget RHHH (`V = H`) sits
//! near the deterministic error floor on every scenario; 10-RHHH trades
//! ~10× update speed for a slower-decaying error, most visible on the
//! scan-sweep scenario whose uniform dst walk starves per-node counters.

use hhh_core::{HhhAlgorithm, Rhhh, RhhhConfig};
use hhh_eval::{accuracy_error_ratio, coverage_error_ratio, false_positive_ratio, Args, Report};
use hhh_hierarchy::Lattice;
use hhh_traces::{blocks_from_packets, ScenarioConfig, ScenarioGenerator, ScenarioKind};
use hhh_vswitch::WireBlockView;

/// Frames per block on the measured plane (rx-burst grain).
const BLOCK_FRAMES: usize = 65_536;

fn main() {
    let args = Args::parse(1_000_000, 1);
    let mut report = Report::new(
        "scenario_accuracy",
        &[
            "scenario",
            "algorithm",
            "n",
            "hhh_count",
            "accuracy_error_ratio",
            "coverage_error_ratio",
            "false_positive_ratio",
        ],
    );
    report.comment(&format!(
        "scenario_accuracy: wire plane end to end, 2D bytes, theta={}, eps={}, packets={}",
        args.theta, args.epsilon, args.packets
    ));

    let lattice = Lattice::ipv4_src_dst_bytes();
    for kind in ScenarioKind::all() {
        let mut gen = ScenarioGenerator::new(&ScenarioConfig::new(kind));
        let packets = gen.take_packets(args.packets as usize);
        let blocks = blocks_from_packets(&packets, BLOCK_FRAMES);

        let mut exact = hhh_core::ExactHhh::new(lattice.clone());
        for p in &packets {
            exact.insert(p.key2());
        }

        for (label, v_scale) in [("rhhh", 1u64), ("10-rhhh", 10)] {
            let config = RhhhConfig {
                epsilon_a: args.epsilon,
                epsilon_s: args.epsilon,
                delta_s: 0.001,
                v_scale,
                updates_per_packet: 1,
                seed: 0x5CE0 + v_scale,
            };
            let mut algo = Rhhh::<u64>::new(lattice.clone(), config);
            for block in &blocks {
                WireBlockView::new(block).ingest(&mut algo);
            }
            assert_eq!(
                algo.packets(),
                exact.packets(),
                "{}: the wire plane must sketch every generated frame",
                kind.name()
            );
            let output = algo.output(args.theta);
            report.row(&[
                kind.name().to_string(),
                label.to_string(),
                args.packets.to_string(),
                output.len().to_string(),
                format!("{:.6}", accuracy_error_ratio(&output, &exact, args.epsilon)),
                format!("{:.6}", coverage_error_ratio(&output, &exact, args.theta)),
                format!("{:.6}", false_positive_ratio(&output, &exact, args.theta)),
            ]);
        }
    }
}
