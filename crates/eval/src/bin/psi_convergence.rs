//! Theorem 6.3 / Corollary 6.4 — empirical convergence against the ψ bound.
//!
//! For each stream-length checkpoint this prints (a) the worst per-node
//! sampling error of RHHH's level selection, `max_i |X_i·V − N| / N`
//! (every node's total update count estimates `N/V`), and (b) the
//! theoretical envelope `ε_s(N) = √(Z_{1-δ_s/2}·V/N)`. The empirical error
//! must hug or undercut the envelope, and cross below `ε_s` exactly when
//! `N` passes `ψ = Z·V·ε_s⁻²` — the paper's "about 100 million packets"
//! claim, scaled to the configured ε_s.

use hhh_core::{Rhhh, RhhhConfig};
use hhh_eval::{checkpoints, Args, Report};
use hhh_hierarchy::Lattice;
use hhh_stats::epsilon_s_at;
use hhh_traces::{TraceConfig, TraceGenerator};

fn main() {
    let args = Args::parse(16_000_000, 1);
    let epsilon_s = 0.005;
    let delta_s = 0.001;
    let mut report = Report::new(
        "psi_convergence",
        &[
            "variant",
            "n",
            "max_node_error",
            "envelope",
            "psi",
            "converged",
        ],
    );
    report.comment(&format!(
        "psi: 2D bytes, eps_s={epsilon_s}, delta_s={delta_s}, packets<={}",
        args.packets
    ));

    for (variant, v_scale) in [("RHHH", 1u64), ("10-RHHH", 10u64)] {
        let lattice = Lattice::ipv4_src_dst_bytes();
        let mut algo = Rhhh::<u64>::new(
            lattice.clone(),
            RhhhConfig {
                epsilon_a: 0.001,
                epsilon_s,
                delta_s,
                v_scale,
                updates_per_packet: 1,
                seed: 0x5150,
            },
        );
        let mut gen = TraceGenerator::new(&TraceConfig::chicago16());
        let cps = checkpoints((args.packets / 64).max(1), args.packets);
        let mut streamed = 0u64;
        for &cp in &cps {
            while streamed < cp {
                algo.update(gen.generate().key2());
                streamed += 1;
            }
            let v = algo.v() as f64;
            let worst = lattice
                .node_ids()
                .map(|n| {
                    let x = algo.node_updates(n) as f64;
                    ((x * v) - cp as f64).abs() / cp as f64
                })
                .fold(0.0f64, f64::max);
            let envelope = epsilon_s_at(cp, algo.v(), delta_s);
            report.row(&[
                variant.into(),
                cp.to_string(),
                format!("{:.6}", worst),
                format!("{:.6}", envelope),
                format!("{:.0}", algo.psi()),
                algo.converged().to_string(),
            ]);
        }
    }
}
