//! Sliding-window accuracy: what does the G-pane ring approximation cost?
//!
//! A `WindowedRhhh` answers "HHHs over the last W packets" from the last G
//! completed panes — an interval that always covers `[W, W + W/G)` packets
//! back from now. The pane-ring analysis says the per-query error is
//! bounded by the *summed per-pane bounds*: counter errors add across
//! panes to `ε·W` (the same class as one instance over the window) and
//! the G independent per-pane sampling slacks sum to `√G ×` the merged
//! slack. This experiment measures that claim against an **exact oracle
//! computed over precisely the covered packet range**, for G ∈ {1, 2, 4,
//! 8}, **every counter in [`CounterKind::roster`]** and two trace shapes,
//! and prices the two query paths (fresh K-way merge per query vs the
//! cached in-flight snapshot).
//!
//! The bound check is two-sided (`|upper − truth| ≤ allow`) for the
//! ε·N-error family and one-sided (`truth ≤ upper + allow`) for the decay
//! family (`chk`), whose upper bound embeds the data-dependent deficit —
//! a sound overestimate with no ε·N-sized cap.
//!
//! Columns: the three standard quality metrics vs the covered-range
//! oracle, `bound_violations` (reported HHHs straying beyond the summed
//! per-pane bound — must be 0), and the per-query costs `merge_ms`
//! (`query_fresh`: one G-way combine + output) vs `cached_ms` (snapshot
//! hit: output only).

use std::time::Instant;

use hhh_core::{CounterKind, ExactHhh, HhhAlgorithm, RhhhConfig, WindowedRhhh};
use hhh_counters::{
    CompactSpaceSaving, CuckooHeavyKeeper, DispatchedEstimator, FrequencyEstimator,
    HeapSpaceSaving, LossyCounting, MisraGries, SpaceSaving,
};
use hhh_eval::{accuracy_error_ratio, coverage_error_ratio, false_positive_ratio, Args, Report};
use hhh_hierarchy::Lattice;
use hhh_traces::{Packet, TraceConfig, TraceGenerator};

struct Row {
    covered: u64,
    accuracy: f64,
    coverage: f64,
    false_pos: f64,
    bound_violations: usize,
    merge_ms: f64,
    cached_ms: f64,
}

/// Runs one (trace, counter, G) cell: feed the whole stream through the
/// batch path, build the oracle over the covered range, measure.
fn run_one<E: FrequencyEstimator<u64> + Clone>(
    lattice: &Lattice<u64>,
    keys: &[u64],
    window: u64,
    panes: usize,
    epsilon: f64,
    theta: f64,
    two_sided: bool,
) -> Row {
    // ε_s is sized so that ψ = Z·V/ε_s² lands at 80% of the window — the
    // windows this binary constructs are honestly convergent at every
    // `--packets`/`--quick` operating point (at the 400k default this
    // gives ε_s ≈ 0.02). ε_a is the CLI-selectable counter error.
    let delta_s = 0.05;
    let v = 25.0;
    let epsilon_s = (hhh_stats::z_quantile(1.0 - delta_s / 2.0) * v / (0.8 * window as f64)).sqrt();
    let config = RhhhConfig {
        epsilon_a: epsilon,
        epsilon_s,
        delta_s,
        v_scale: 1,
        updates_per_packet: 1,
        seed: 0x3E6,
    };
    let mut mon = WindowedRhhh::<u64, E>::new(lattice.clone(), config, window, panes);
    for chunk in keys.chunks(65_536) {
        mon.update_batch(chunk);
    }
    let (start, end) = mon.covered_range();
    let mut oracle = ExactHhh::new(lattice.clone());
    for &k in &keys[start as usize..end as usize] {
        oracle.insert(k);
    }

    // Fresh-merge query cost (the per-query path without the cache)…
    let t0 = Instant::now();
    let out = mon.query_fresh(theta).expect("window complete");
    let merge_ms = t0.elapsed().as_secs_f64() * 1e3;
    // …vs the steady-state cached path: the first call rebuilds the
    // snapshot (that cost is paid once per pane), the timed call is what
    // every query at a steady cadence pays.
    let _ = mon.query(theta);
    let t1 = Instant::now();
    let out_cached = mon.query(theta).expect("window complete");
    let cached_ms = t1.elapsed().as_secs_f64() * 1e3;
    assert_eq!(out.len(), out_cached.len(), "cache must not change answers");

    let merged = mon.merged_window().expect("window complete");
    let covered = merged.packets();
    let eps_total = config.epsilon_a + config.epsilon_s;
    let allow = eps_total * covered as f64 + (panes as f64).sqrt() * merged.slack();
    let bound_violations = out
        .iter()
        .filter(|h| {
            let truth = oracle.frequency(&h.prefix) as f64;
            if two_sided {
                (h.freq_upper - truth).abs() > allow
            } else {
                truth - h.freq_upper > allow
            }
        })
        .count();

    Row {
        covered,
        accuracy: accuracy_error_ratio(&out, &oracle, eps_total),
        coverage: coverage_error_ratio(&out, &oracle, theta),
        false_pos: false_positive_ratio(&out, &oracle, theta),
        bound_violations,
        merge_ms,
        cached_ms,
    }
}

/// Monomorphizes `$body` over the roster: `$est` aliases the concrete
/// `u64`-keyed estimator for `$kind`.
macro_rules! with_counter_type {
    ($kind:expr, $est:ident, $body:expr) => {
        match $kind {
            CounterKind::StreamSummary => {
                type $est = SpaceSaving<u64>;
                $body
            }
            CounterKind::Compact => {
                type $est = CompactSpaceSaving<u64>;
                $body
            }
            CounterKind::Dispatch => {
                type $est = DispatchedEstimator<u64>;
                $body
            }
            CounterKind::Heap => {
                type $est = HeapSpaceSaving<u64>;
                $body
            }
            CounterKind::MisraGries => {
                type $est = MisraGries<u64>;
                $body
            }
            CounterKind::LossyCounting => {
                type $est = LossyCounting<u64>;
                $body
            }
            CounterKind::CuckooHeavyKeeper => {
                type $est = CuckooHeavyKeeper<u64>;
                $body
            }
        }
    };
}

fn main() {
    let mut args = Args::parse(400_000, 1);
    // θ defaults to 0.1 here (not the harness's 0.01): the covered window
    // is only 2/5 of the stream, and θ·W must clear the sampling slack
    // for `Output(θ)`'s threshold to bind — below the crossover every
    // monitored candidate is (correctly, conservatively) reported and
    // the false-positive and query-cost columns measure nothing. An
    // explicit `--theta` still wins.
    if !std::env::args().any(|a| a == "--theta") {
        args.theta = 0.1;
    }
    // The window is 2/5 of the stream: long enough that every G has
    // completed a full ring with panes left over to age out.
    let window = args.packets * 2 / 5;
    let mut report = Report::new(
        "window_accuracy",
        &[
            "trace",
            "counter",
            "panes",
            "covered",
            "accuracy_error",
            "coverage_error",
            "false_positive",
            "bound_violations",
            "merge_ms",
            "cached_ms",
        ],
    );
    report.comment(&format!(
        "G-pane ring vs exact sliding-window oracle: 2D bytes (H=25), W={window}, theta={}, \
         eps_a={}, packets={}",
        args.theta, args.epsilon, args.packets
    ));

    let lattice = Lattice::ipv4_src_dst_bytes();
    for trace in [TraceConfig::chicago16(), TraceConfig::sanjose14()] {
        let keys: Vec<u64> = TraceGenerator::new(&trace)
            .take_packets(args.packets as usize)
            .iter()
            .map(Packet::key2)
            .collect();
        for counter in CounterKind::roster() {
            // The decay family's upper embeds the data-dependent deficit;
            // only the lower side of the sandwich carries an ε·N-class cap.
            let two_sided = counter != CounterKind::CuckooHeavyKeeper;
            for panes in [1usize, 2, 4, 8] {
                let row = with_counter_type!(counter, Est, {
                    run_one::<Est>(
                        &lattice,
                        &keys,
                        window,
                        panes,
                        args.epsilon,
                        args.theta,
                        two_sided,
                    )
                });
                report.row(&[
                    trace.name.clone(),
                    counter.label().to_string(),
                    panes.to_string(),
                    row.covered.to_string(),
                    format!("{:.4}", row.accuracy),
                    format!("{:.4}", row.coverage),
                    format!("{:.4}", row.false_pos),
                    row.bound_violations.to_string(),
                    format!("{:.2}", row.merge_ms),
                    format!("{:.2}", row.cached_ms),
                ]);
            }
        }
    }
}
