//! CSV reporting: rows go to stdout and are mirrored into
//! `results/<name>.csv` so EXPERIMENTS.md can cite stable artifacts.

use std::fs::{self, File};
use std::io::{self, Write};
use std::path::PathBuf;

/// A CSV report tee.
pub struct Report {
    file: Option<File>,
    columns: usize,
}

impl Report {
    /// Creates `results/<name>.csv` (directory created on demand) and
    /// writes the header. Falls back to stdout-only when the filesystem is
    /// read-only.
    #[must_use]
    pub fn new(name: &str, header: &[&str]) -> Self {
        let file = Self::open(name).ok();
        let mut report = Self {
            file,
            columns: header.len(),
        };
        report.row_str(header);
        report
    }

    fn open(name: &str) -> io::Result<File> {
        let dir = PathBuf::from("results");
        fs::create_dir_all(&dir)?;
        File::create(dir.join(format!("{name}.csv")))
    }

    fn emit(&mut self, line: &str) {
        println!("{line}");
        if let Some(f) = &mut self.file {
            let _ = writeln!(f, "{line}");
        }
    }

    /// Writes a row of preformatted cells.
    ///
    /// # Panics
    ///
    /// Panics when the arity differs from the header's.
    pub fn row_str(&mut self, cells: &[&str]) {
        assert_eq!(cells.len(), self.columns, "column arity mismatch");
        self.emit(&cells.join(","));
    }

    /// Writes a row of displayable cells.
    ///
    /// # Panics
    ///
    /// Panics when the arity differs from the header's.
    pub fn row(&mut self, cells: &[String]) {
        let refs: Vec<&str> = cells.iter().map(String::as_str).collect();
        self.row_str(&refs);
    }

    /// Writes a free-form comment line (prefixed `#`, ignored by CSV
    /// consumers).
    pub fn comment(&mut self, text: &str) {
        self.emit(&format!("# {text}"));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_csv_file() {
        let name = format!("report-test-{}", std::process::id());
        {
            let mut r = Report::new(&name, &["a", "b"]);
            r.row(&["1".into(), "2".into()]);
            r.comment("note");
        }
        let content = std::fs::read_to_string(format!("results/{name}.csv")).expect("file written");
        assert!(content.contains("a,b"));
        assert!(content.contains("1,2"));
        assert!(content.contains("# note"));
        std::fs::remove_file(format!("results/{name}.csv")).ok();
    }

    #[test]
    #[should_panic(expected = "column arity mismatch")]
    fn arity_checked() {
        let mut r = Report::new(&format!("arity-test-{}", std::process::id()), &["a", "b"]);
        r.row(&["only-one".into()]);
    }
}
