//! Quality metrics against exact ground truth — the y-axes of Figures 2–4.

use std::collections::HashSet;

use hhh_core::{ExactHhh, HeavyHitter};
use hhh_hierarchy::{KeyBits, Prefix};

/// Figure 2's metric: the fraction of reported HHH candidates whose
/// frequency-estimation error exceeds `ε·N`.
///
/// The point estimate is the reported upper bound `f̂⁺` (Space Saving's
/// count, scaled), matching the paper's implementation.
#[must_use]
pub fn accuracy_error_ratio<K: KeyBits>(
    output: &[HeavyHitter<K>],
    exact: &ExactHhh<K>,
    epsilon: f64,
) -> f64 {
    if output.is_empty() {
        return 0.0;
    }
    let n = exact.packets() as f64;
    let bad = output
        .iter()
        .filter(|h| {
            let truth = exact.frequency(&h.prefix) as f64;
            (h.freq_upper - truth).abs() > epsilon * n
        })
        .count();
    bad as f64 / output.len() as f64
}

/// Figure 3's metric: coverage errors (false negatives) — prefixes `q ∉ P`
/// whose exact conditioned frequency w.r.t. the reported set still reaches
/// `θ·N`, as a fraction of the exact HHH count.
///
/// Candidates are every prefix with exact frequency ≥ `θ·N` (a superset of
/// possible violations, since `C_{q|P} ≤ f_q`).
#[must_use]
pub fn coverage_error_ratio<K: KeyBits>(
    output: &[HeavyHitter<K>],
    exact: &ExactHhh<K>,
    theta: f64,
) -> f64 {
    let n = exact.packets();
    if n == 0 {
        return 0.0;
    }
    let threshold = theta * n as f64;
    let reported: Vec<Prefix<K>> = output.iter().map(|h| h.prefix).collect();
    let reported_set: HashSet<Prefix<K>> = reported.iter().copied().collect();

    let lattice = exact.lattice();
    let mut violations = 0usize;
    for level in 0..=lattice.depth() {
        for &node in lattice.nodes_at_level(level) {
            // Candidates: heavy prefixes at this node.
            for p in exact_heavy_at(exact, node, threshold) {
                if reported_set.contains(&p) {
                    continue;
                }
                if exact.conditioned(&p, &reported) as f64 >= threshold {
                    violations += 1;
                }
            }
        }
    }
    let denom = exact.hhh(theta).len().max(1);
    violations as f64 / denom as f64
}

/// Figure 4's metric: the fraction of reported prefixes that are not in
/// the exact HHH set.
#[must_use]
pub fn false_positive_ratio<K: KeyBits>(
    output: &[HeavyHitter<K>],
    exact: &ExactHhh<K>,
    theta: f64,
) -> f64 {
    if output.is_empty() {
        return 0.0;
    }
    let truth: HashSet<Prefix<K>> = exact.hhh(theta).into_iter().collect();
    let fp = output.iter().filter(|h| !truth.contains(&h.prefix)).count();
    fp as f64 / output.len() as f64
}

/// All prefixes at `node` whose exact frequency reaches `threshold`.
fn exact_heavy_at<K: KeyBits>(
    exact: &ExactHhh<K>,
    node: hhh_hierarchy::NodeId,
    threshold: f64,
) -> Vec<Prefix<K>> {
    exact.heavy_prefixes_at(node, threshold)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hhh_core::{HhhAlgorithm, Rhhh, RhhhConfig};
    use hhh_hierarchy::{pack2, Lattice};

    struct Lcg(u64);
    impl Lcg {
        fn next(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0 >> 16
        }
    }

    fn planted_stream(n: u64) -> Vec<u64> {
        let mut rng = Lcg(5);
        (0..n)
            .map(|i| {
                if i % 5 == 0 {
                    pack2(
                        0x0A14_0000 | (rng.next() as u32 & 0xFFFF),
                        u32::from_be_bytes([8, 8, 8, 8]),
                    )
                } else {
                    pack2(rng.next() as u32, rng.next() as u32)
                }
            })
            .collect()
    }

    #[test]
    fn perfect_output_scores_zero_errors() {
        let lat = Lattice::ipv4_src_dst_bytes();
        let mut exact = ExactHhh::new(lat);
        for k in planted_stream(50_000) {
            exact.insert(k);
        }
        let theta = 0.1;
        let perfect = exact.hhh_records(theta);
        assert!(!perfect.is_empty());
        assert_eq!(accuracy_error_ratio(&perfect, &exact, 0.001), 0.0);
        assert_eq!(coverage_error_ratio(&perfect, &exact, theta), 0.0);
        assert_eq!(false_positive_ratio(&perfect, &exact, theta), 0.0);
    }

    #[test]
    fn empty_output_has_full_coverage_error() {
        let lat = Lattice::ipv4_src_dst_bytes();
        let mut exact = ExactHhh::new(lat);
        for k in planted_stream(50_000) {
            exact.insert(k);
        }
        let cov = coverage_error_ratio(&[], &exact, 0.1);
        // With nothing reported, at least every exact HHH is uncovered...
        assert!(cov >= 1.0, "coverage error = {cov}");
        // ...while accuracy/FP over an empty set are vacuously zero.
        assert_eq!(accuracy_error_ratio(&[], &exact, 0.001), 0.0);
        assert_eq!(false_positive_ratio(&[], &exact, 0.1), 0.0);
    }

    #[test]
    fn converged_rhhh_scores_low_errors() {
        let lat = Lattice::ipv4_src_dst_bytes();
        let config = RhhhConfig {
            epsilon_a: 0.01,
            epsilon_s: 0.04,
            delta_s: 0.05,
            ..RhhhConfig::default()
        };
        let mut algo = Rhhh::<u64>::new(lat.clone(), config);
        let mut exact = ExactHhh::new(lat);
        let stream = planted_stream(300_000);
        for &k in &stream {
            algo.insert(k);
            exact.insert(k);
        }
        assert!(algo.converged());
        let theta = 0.1;
        let out = algo.query(theta);
        assert_eq!(
            coverage_error_ratio(&out, &exact, theta),
            0.0,
            "converged RHHH must cover the exact set"
        );
        assert!(accuracy_error_ratio(&out, &exact, config.epsilon()) < 0.35);
    }

    #[test]
    fn false_positive_detects_spurious_prefix() {
        let lat = Lattice::ipv4_src_dst_bytes();
        let mut exact = ExactHhh::new(lat);
        for k in planted_stream(50_000) {
            exact.insert(k);
        }
        let mut out = exact.hhh_records(0.1);
        let clean = out.len();
        // Inject a prefix that is certainly not an exact HHH.
        out.push(HeavyHitter {
            prefix: Prefix {
                key: pack2(0xDEAD_0000, 0),
                node: exact.lattice().node_by_spec(&[2, 0]),
            },
            freq_lower: 1.0,
            freq_upper: 1.0,
            conditioned: 1.0,
        });
        let fp = false_positive_ratio(&out, &exact, 0.1);
        assert!((fp - 1.0 / (clean + 1) as f64).abs() < 1e-12);
    }
}
