//! Shared experiment plumbing: CLI arguments, algorithm factories, the
//! quality sweep behind Figures 2–4, and timing helpers.

use std::time::Instant;

use hhh_baselines::{Ancestry, AncestryMode, Mst};
use hhh_core::{CounterKind, ExactHhh, HhhAlgorithm, RhhhConfig};
use hhh_hierarchy::{KeyBits, Lattice};
use hhh_traces::{Packet, TraceConfig, TraceGenerator};

use crate::metrics::{accuracy_error_ratio, coverage_error_ratio, false_positive_ratio};

/// Minimal CLI argument set shared by the figure binaries.
///
/// Flags: `--packets N`, `--runs R`, `--theta T`, `--epsilon E`, `--quick`.
/// `--quick` divides the packet budget by 8 (used by the smoke tests).
#[derive(Debug, Clone, Copy)]
pub struct Args {
    /// Packet budget for the largest stream-length point.
    pub packets: u64,
    /// Repetitions per point (the paper uses 5 for its t-test CIs).
    pub runs: u32,
    /// HHH threshold θ.
    pub theta: f64,
    /// Counter error ε_a (and the baselines' ε).
    pub epsilon: f64,
}

impl Args {
    /// Parses `std::env::args`, starting from the given defaults.
    ///
    /// # Panics
    ///
    /// Panics with a usage message on malformed flags.
    #[must_use]
    pub fn parse(default_packets: u64, default_runs: u32) -> Self {
        let mut args = Self {
            packets: default_packets,
            runs: default_runs,
            theta: 0.01,
            epsilon: 0.001,
        };
        let mut it = std::env::args().skip(1);
        while let Some(flag) = it.next() {
            let mut grab = |name: &str| -> f64 {
                it.next()
                    .and_then(|v| v.parse::<f64>().ok())
                    .unwrap_or_else(|| panic!("{name} expects a numeric value"))
            };
            match flag.as_str() {
                "--packets" => args.packets = grab("--packets") as u64,
                "--runs" => args.runs = grab("--runs") as u32,
                "--theta" => args.theta = grab("--theta"),
                "--epsilon" => args.epsilon = grab("--epsilon"),
                "--quick" => args.packets = (args.packets / 8).max(1),
                "--help" | "-h" => {
                    eprintln!("flags: --packets N --runs R --theta T --epsilon E --quick");
                    std::process::exit(0);
                }
                other => panic!("unknown flag {other}"),
            }
        }
        args
    }
}

/// The algorithm roster of the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlgoKind {
    /// RHHH with `V = v_scale · H` over a selectable per-node counter.
    Rhhh {
        /// V as a multiple of H (1 = RHHH, 10 = 10-RHHH).
        v_scale: u64,
        /// Per-node counter layout/algorithm.
        counter: CounterKind,
    },
    /// Mitzenmacher–Steinke–Thaler update-all baseline.
    Mst,
    /// TKDD'08 Full Ancestry.
    FullAncestry,
    /// TKDD'08 Partial Ancestry.
    PartialAncestry,
}

impl AlgoKind {
    /// RHHH with the default (stream-summary) counter, as the paper runs it.
    #[must_use]
    pub fn rhhh(v_scale: u64) -> AlgoKind {
        AlgoKind::Rhhh {
            v_scale,
            counter: CounterKind::default(),
        }
    }

    /// The roster in the order the paper's figures list it.
    #[must_use]
    pub fn roster() -> Vec<AlgoKind> {
        vec![
            AlgoKind::Mst,
            AlgoKind::FullAncestry,
            AlgoKind::PartialAncestry,
            AlgoKind::rhhh(1),
            AlgoKind::rhhh(10),
        ]
    }

    /// Display name matching the paper's legends; non-default counters are
    /// tagged in brackets ("10-RHHH[compact]").
    #[must_use]
    pub fn label(&self) -> String {
        match self {
            AlgoKind::Rhhh { v_scale, counter } => {
                let base = if *v_scale == 1 {
                    "RHHH".to_string()
                } else {
                    format!("{v_scale}-RHHH")
                };
                if *counter == CounterKind::default() {
                    base
                } else {
                    format!("{base}[{}]", counter.label())
                }
            }
            AlgoKind::Mst => "MST".into(),
            AlgoKind::FullAncestry => "FullAncestry".into(),
            AlgoKind::PartialAncestry => "PartialAncestry".into(),
        }
    }

    /// Builds an instance over `lattice`. `epsilon` is the counter error
    /// (ε_a); RHHH splits the budget evenly between ε_a and ε_s, mirroring
    /// the paper's configuration where both are 0.001.
    #[must_use]
    pub fn build<K: KeyBits>(
        &self,
        lattice: Lattice<K>,
        epsilon: f64,
        seed: u64,
    ) -> Box<dyn HhhAlgorithm<K>> {
        match self {
            AlgoKind::Rhhh { v_scale, counter } => counter.build_rhhh(
                lattice,
                RhhhConfig {
                    epsilon_a: epsilon,
                    epsilon_s: epsilon,
                    delta_s: 0.001,
                    v_scale: *v_scale,
                    updates_per_packet: 1,
                    seed,
                },
            ),
            AlgoKind::Mst => Box::new(Mst::<K>::new(lattice, epsilon)),
            AlgoKind::FullAncestry => Box::new(Ancestry::new(lattice, AncestryMode::Full, epsilon)),
            AlgoKind::PartialAncestry => {
                Box::new(Ancestry::new(lattice, AncestryMode::Partial, epsilon))
            }
        }
    }
}

/// Feeds `keys` through the algorithm, returning sustained update speed in
/// million packets per second — Figure 5's y-axis.
pub fn measure_mpps<K: KeyBits>(algo: &mut dyn HhhAlgorithm<K>, keys: &[K]) -> f64 {
    let start = Instant::now();
    for &k in keys {
        algo.insert(k);
    }
    let secs = start.elapsed().as_secs_f64();
    keys.len() as f64 / secs / 1e6
}

/// Like [`measure_mpps`] but through the slice-at-a-time path
/// ([`HhhAlgorithm::insert_batch`]) in rx-burst-sized chunks — the batch
/// counterpart for speed comparisons.
pub fn measure_mpps_batch<K: KeyBits>(
    algo: &mut dyn HhhAlgorithm<K>,
    keys: &[K],
    chunk: usize,
) -> f64 {
    assert!(chunk > 0, "chunk size must be positive");
    let start = Instant::now();
    for part in keys.chunks(chunk) {
        algo.insert_batch(part);
    }
    let secs = start.elapsed().as_secs_f64();
    keys.len() as f64 / secs / 1e6
}

/// Geometric checkpoints `start, 2·start, 4·start, … , end` used by the
/// stream-length sweeps of Figures 2–4.
#[must_use]
pub fn checkpoints(start: u64, end: u64) -> Vec<u64> {
    let mut points = Vec::new();
    let mut at = start;
    while at < end {
        points.push(at);
        at *= 2;
    }
    points.push(end);
    points
}

/// One measured point of the quality sweep.
#[derive(Debug, Clone)]
pub struct QualityPoint {
    /// Trace name.
    pub trace: String,
    /// Stream length at the checkpoint.
    pub n: u64,
    /// Algorithm label.
    pub algo: String,
    /// Figure 2 metric.
    pub accuracy_error: f64,
    /// Figure 3 metric.
    pub coverage_error: f64,
    /// Figure 4 metric.
    pub false_positive: f64,
}

/// Streams one trace through every algorithm (and the exact ground truth)
/// in a single pass, evaluating all three quality metrics at geometric
/// stream-length checkpoints — the engine behind Figures 2–4.
///
/// `key_of` extracts the lattice key from a packet (`Packet::key1` /
/// `Packet::key2`), so the same sweep serves the 1D and 2D hierarchies.
pub fn quality_sweep<K: KeyBits>(
    lattice: &Lattice<K>,
    trace: &TraceConfig,
    kinds: &[AlgoKind],
    args: &Args,
    key_of: impl Fn(&Packet) -> K,
    run_seed: u64,
) -> Vec<QualityPoint> {
    let mut algos: Vec<(String, Box<dyn HhhAlgorithm<K>>)> = kinds
        .iter()
        .map(|k| (k.label(), k.build(lattice.clone(), args.epsilon, run_seed)))
        .collect();
    let mut exact = ExactHhh::new(lattice.clone());
    let mut gen = TraceGenerator::new(trace);
    let cps = checkpoints((args.packets / 16).max(1), args.packets);

    let mut points = Vec::new();
    let mut streamed = 0u64;
    for &cp in &cps {
        while streamed < cp {
            let key = key_of(&gen.generate());
            for (_, algo) in &mut algos {
                algo.insert(key);
            }
            exact.insert(key);
            streamed += 1;
        }
        let epsilon_total = 2.0 * args.epsilon; // ε = ε_a + ε_s
        for (label, algo) in &algos {
            let out = algo.query(args.theta);
            points.push(QualityPoint {
                trace: trace.name.clone(),
                n: cp,
                algo: label.clone(),
                accuracy_error: accuracy_error_ratio(&out, &exact, epsilon_total),
                coverage_error: coverage_error_ratio(&out, &exact, args.theta),
                false_positive: false_positive_ratio(&out, &exact, args.theta),
            });
        }
    }
    points
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roster_has_five_algorithms() {
        let roster = AlgoKind::roster();
        assert_eq!(roster.len(), 5);
        let labels: Vec<String> = roster.iter().map(AlgoKind::label).collect();
        assert_eq!(
            labels,
            vec!["MST", "FullAncestry", "PartialAncestry", "RHHH", "10-RHHH"]
        );
    }

    #[test]
    fn factories_build_working_instances() {
        for kind in AlgoKind::roster() {
            let lat = Lattice::ipv4_src_dst_bytes();
            let mut algo = kind.build(lat, 0.01, 7);
            for i in 0..10_000u64 {
                algo.insert(i % 64);
            }
            assert_eq!(algo.packets(), 10_000, "{}", kind.label());
            let _ = algo.query(0.05);
        }
    }

    #[test]
    fn one_dimensional_factories_work_too() {
        for kind in AlgoKind::roster() {
            let lat = Lattice::ipv4_src_bits();
            let mut algo = kind.build(lat, 0.01, 9);
            for i in 0..5_000u32 {
                algo.insert(i % 32);
            }
            assert_eq!(algo.packets(), 5_000);
        }
    }

    #[test]
    fn checkpoints_double_until_end() {
        assert_eq!(
            checkpoints(250_000, 2_000_000),
            vec![250_000, 500_000, 1_000_000, 2_000_000]
        );
        assert_eq!(checkpoints(100, 100), vec![100]);
        assert_eq!(checkpoints(100, 150), vec![100, 150]);
    }

    #[test]
    fn measure_mpps_is_positive() {
        let lat = Lattice::ipv4_src_bytes();
        let mut algo = AlgoKind::rhhh(1).build(lat, 0.01, 3);
        let keys: Vec<u32> = (0..100_000u32).collect();
        let mpps = measure_mpps(algo.as_mut(), &keys);
        assert!(mpps > 0.0);
    }

    #[test]
    fn counter_kind_threads_through_build_and_label() {
        for counter in CounterKind::roster() {
            let kind = AlgoKind::Rhhh {
                v_scale: 10,
                counter,
            };
            if counter == CounterKind::default() {
                assert_eq!(kind.label(), "10-RHHH");
            } else {
                assert_eq!(kind.label(), format!("10-RHHH[{}]", counter.label()));
            }
            let lat = Lattice::ipv4_src_bytes();
            let mut algo = kind.build(lat, 0.01, 5);
            let keys: Vec<u32> = (0..50_000u32).map(|i| i % 128).collect();
            let mpps = measure_mpps_batch(algo.as_mut(), &keys, 4_096);
            assert!(mpps > 0.0);
            assert_eq!(algo.packets(), 50_000, "{}", kind.label());
        }
    }

    #[test]
    fn quality_sweep_produces_point_grid() {
        let lat = Lattice::ipv4_src_dst_bytes();
        let args = Args {
            packets: 40_000,
            runs: 1,
            theta: 0.05,
            epsilon: 0.02,
        };
        let kinds = [AlgoKind::Mst, AlgoKind::rhhh(1)];
        let points = quality_sweep(
            &lat,
            &hhh_traces::TraceConfig::sanjose14(),
            &kinds,
            &args,
            Packet::key2,
            1,
        );
        // checkpoints(2500, 40000) = 2500,5000,...,40000 -> 5 points × 2.
        assert_eq!(points.len(), 10);
        for p in &points {
            assert!(p.accuracy_error >= 0.0 && p.accuracy_error <= 1.0);
            assert!(p.false_positive >= 0.0 && p.false_positive <= 1.0);
            assert!(p.coverage_error >= 0.0);
        }
        // MST is deterministic: zero accuracy and coverage error.
        for p in points.iter().filter(|p| p.algo == "MST") {
            assert_eq!(p.accuracy_error, 0.0, "MST accuracy at n={}", p.n);
            assert_eq!(p.coverage_error, 0.0, "MST coverage at n={}", p.n);
        }
    }
}
