//! Property tests for weighted updates: `add(key, w)` must preserve every
//! Definition 4 invariant and agree with `w` repeated increments where the
//! semantics are deterministic.

use hhh_counters::{
    CompactSpaceSaving, FrequencyEstimator, HeapSpaceSaving, LossyCounting, MisraGries, SpaceSaving,
};
use proptest::collection::vec;
use proptest::prelude::*;
use std::collections::HashMap;

fn arb_weighted_stream() -> impl Strategy<Value = Vec<(u64, u64)>> {
    vec((0u64..32, 1u64..50), 1..400)
}

fn exact(stream: &[(u64, u64)]) -> HashMap<u64, u64> {
    let mut m = HashMap::new();
    for &(k, w) in stream {
        *m.entry(k).or_insert(0u64) += w;
    }
    m
}

fn check_weighted<E: FrequencyEstimator<u64>>(
    stream: &[(u64, u64)],
    cap: usize,
    overestimating: bool,
) -> Result<(), TestCaseError> {
    let mut est = E::with_capacity(cap);
    for &(k, w) in stream {
        est.add(k, w);
    }
    let truth = exact(stream);
    let n: u64 = truth.values().sum();
    prop_assert_eq!(est.updates(), n);
    // Weighted error bound: one item of weight w can displace up to w mass,
    // so the additive error scales as (total weight)/capacity plus the
    // largest single weight.
    let w_max = stream.iter().map(|&(_, w)| w).max().unwrap_or(0);
    let eps_n = n / cap as u64 + w_max + 1;
    for (key, &f) in &truth {
        prop_assert!(est.upper(key) >= f, "upper < f for {key}");
        prop_assert!(est.lower(key) <= f, "lower > f for {key}");
        if overestimating {
            prop_assert!(
                est.upper(key) <= f + eps_n,
                "upper {} > f {} + {}",
                est.upper(key),
                f,
                eps_n
            );
        } else {
            prop_assert!(
                f - est.lower(key) <= eps_n,
                "lower {} < f {} - {}",
                est.lower(key),
                f,
                eps_n
            );
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn space_saving_weighted_contract(stream in arb_weighted_stream(), cap in 1usize..16) {
        check_weighted::<SpaceSaving<u64>>(&stream, cap, true)?;
    }

    #[test]
    fn heap_space_saving_weighted_contract(stream in arb_weighted_stream(), cap in 1usize..16) {
        check_weighted::<HeapSpaceSaving<u64>>(&stream, cap, true)?;
    }

    #[test]
    fn compact_space_saving_weighted_contract(stream in arb_weighted_stream(), cap in 1usize..16) {
        check_weighted::<CompactSpaceSaving<u64>>(&stream, cap, true)?;
    }

    /// Weighted updates drive the two Space Saving layouts to identical
    /// count multisets, exactly like unit updates do.
    #[test]
    fn compact_weighted_matches_stream_summary(
        stream in arb_weighted_stream(), cap in 1usize..16,
    ) {
        let mut flat: CompactSpaceSaving<u64> = CompactSpaceSaving::with_capacity(cap);
        let mut list: SpaceSaving<u64> = SpaceSaving::with_capacity(cap);
        for &(k, w) in &stream {
            flat.add(k, w);
            list.add(k, w);
        }
        prop_assert_eq!(flat.updates(), list.updates());
        prop_assert_eq!(flat.min_count(), list.min_count());
        let mass_flat: u64 = flat.candidates().iter().map(|c| c.upper).sum();
        let mass_list: u64 = list.candidates().iter().map(|c| c.upper).sum();
        prop_assert_eq!(mass_flat, mass_list, "count multisets diverged");
        flat.debug_validate();
    }

    /// The flat-arena structure stays internally consistent under weighted
    /// updates (probe chains, lazy minimum, error ≤ count).
    #[test]
    fn compact_weighted_structure(stream in arb_weighted_stream(), cap in 1usize..12) {
        let mut ss: CompactSpaceSaving<u64> = CompactSpaceSaving::with_capacity(cap);
        for &(k, w) in &stream {
            ss.add(k, w);
        }
        ss.debug_validate();
    }

    #[test]
    fn misra_gries_weighted_contract(stream in arb_weighted_stream(), cap in 1usize..16) {
        check_weighted::<MisraGries<u64>>(&stream, cap, false)?;
    }

    #[test]
    fn lossy_counting_weighted_contract(stream in arb_weighted_stream(), cap in 2usize..16) {
        check_weighted::<LossyCounting<u64>>(&stream, cap, false)?;
    }

    /// The stream-summary structure must stay internally consistent under
    /// weighted updates (bucket order, index coherence, error ≤ count).
    #[test]
    fn space_saving_weighted_structure(stream in arb_weighted_stream(), cap in 1usize..12) {
        let mut ss: SpaceSaving<u64> = SpaceSaving::with_capacity(cap);
        for &(k, w) in &stream {
            ss.add(k, w);
        }
        ss.debug_validate();
    }

    /// `add(k, w)` must equal `w × increment(k)` exactly for Space Saving —
    /// the count multiset evolution is deterministic given identical
    /// arrival orders.
    #[test]
    fn space_saving_add_equals_repeated_increment(
        stream in vec((0u64..8, 1u64..6), 1..100),
        cap in 1usize..8,
    ) {
        let mut weighted: SpaceSaving<u64> = SpaceSaving::with_capacity(cap);
        let mut unit: SpaceSaving<u64> = SpaceSaving::with_capacity(cap);
        for &(k, w) in &stream {
            weighted.add(k, w);
            for _ in 0..w {
                unit.increment(k);
            }
        }
        prop_assert_eq!(weighted.updates(), unit.updates());
        // Identical count multisets (victim tie-breaks may differ, totals
        // cannot).
        let mass = |s: &SpaceSaving<u64>| -> u64 {
            s.candidates().iter().map(|c| c.upper).sum()
        };
        prop_assert!(mass(&weighted) <= mass(&unit),
            "weighted mass {} vs unit {}", mass(&weighted), mass(&unit));
    }

    /// Zero weights are no-ops everywhere.
    #[test]
    fn zero_weight_is_noop(key in any::<u64>()) {
        let mut ss: SpaceSaving<u64> = SpaceSaving::with_capacity(4);
        ss.add(key, 0);
        prop_assert_eq!(ss.updates(), 0);
        prop_assert_eq!(ss.upper(&key), 0);
        let mut lc: LossyCounting<u64> = LossyCounting::with_capacity(4);
        lc.add(key, 0);
        prop_assert_eq!(lc.updates(), 0);
    }
}
