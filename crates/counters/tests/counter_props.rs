//! Property-based tests: every counter algorithm must honour the
//! (ε, δ)-Frequency Estimation contract of Definition 4 against an exact
//! reference count, on arbitrary streams — plus differential tests pinning
//! the flat-arena [`CompactSpaceSaving`] against the stream-summary
//! [`SpaceSaving`] on random and adversarial streams.

use hhh_counters::{
    CompactSpaceSaving, FrequencyEstimator, HeapSpaceSaving, LossyCounting, MisraGries, SpaceSaving,
};
use proptest::collection::vec;
use proptest::prelude::*;
use std::collections::HashMap;

/// Streams drawn from a small key universe so that collisions and evictions
/// actually happen.
fn arb_stream() -> impl Strategy<Value = Vec<u64>> {
    vec(0u64..64, 1..2_000)
}

fn exact_counts(stream: &[u64]) -> HashMap<u64, u64> {
    let mut m = HashMap::new();
    for &k in stream {
        *m.entry(k).or_insert(0u64) += 1;
    }
    m
}

/// Checks the deterministic sandwich `lower ≤ f ≤ upper` and the
/// `upper − f ≤ εN` / `f − lower ≤ εN` error bounds (with `slack` extra
/// allowance for algorithms whose bound constant differs).
fn check_bounds<E: FrequencyEstimator<u64>>(
    stream: &[u64],
    capacity: usize,
    overestimating: bool,
) -> Result<(), TestCaseError> {
    let mut est = E::with_capacity(capacity);
    for &k in stream {
        est.increment(k);
    }
    let exact = exact_counts(stream);
    let n = stream.len() as u64;
    let eps_n = n / capacity as u64 + 1;
    for (key, &f) in &exact {
        prop_assert!(est.upper(key) >= f, "upper < f for {key}");
        prop_assert!(est.lower(key) <= f, "lower > f for {key}");
        if overestimating {
            prop_assert!(
                est.upper(key) <= f + eps_n,
                "over-estimate beyond eps*N for {key}: upper={} f={f} epsN={eps_n}",
                est.upper(key)
            );
        } else {
            prop_assert!(
                f - est.lower(key) <= eps_n,
                "under-estimate beyond eps*N for {key}: lower={} f={f} epsN={eps_n}",
                est.lower(key)
            );
        }
    }
    // A key that never appeared still gets sound bounds.
    prop_assert!(est.lower(&u64::MAX) == 0);
    prop_assert!(est.updates() == n);
    Ok(())
}

/// Differential check of the two Space Saving layouts on one stream: both
/// must process the same number of updates, both must sandwich the truth
/// within the `N/capacity` error bound, and — because each eviction removes
/// a true minimum in either layout — their count multisets and min-counts
/// must match exactly.
fn check_compact_vs_stream_summary(stream: &[u64], cap: usize) {
    let mut flat: CompactSpaceSaving<u64> = CompactSpaceSaving::with_capacity(cap);
    let mut list: SpaceSaving<u64> = SpaceSaving::with_capacity(cap);
    for &k in stream {
        flat.increment(k);
        list.increment(k);
    }
    assert_eq!(flat.updates(), list.updates(), "update counts diverged");
    assert_eq!(flat.min_count(), list.min_count(), "min-counts diverged");
    let mass = |c: &[hhh_counters::Candidate<u64>]| -> u64 { c.iter().map(|e| e.upper).sum() };
    assert_eq!(
        mass(&flat.candidates()),
        mass(&list.candidates()),
        "count multisets diverged"
    );

    let exact = exact_counts(stream);
    let n = stream.len() as u64;
    let eps_n = n / cap as u64;
    for (key, &f) in &exact {
        for (label, upper, lower) in [
            ("compact", flat.upper(key), flat.lower(key)),
            ("stream-summary", list.upper(key), list.lower(key)),
        ] {
            assert!(lower <= f, "{label}: lower({key}) > truth");
            assert!(upper >= f, "{label}: upper({key}) < truth");
            assert!(
                upper - lower <= eps_n.max(1),
                "{label}: interval wider than N/capacity for {key}: [{lower}, {upper}]"
            );
        }
    }
    flat.debug_validate();
    list.debug_validate();
}

/// Differential check of the bulk-evicting flush against the stream
/// summary fed the same groups *in the same order*: the adaptive flush
/// sorts miss-heavy groups (bulk min-level eviction sweeps) and takes
/// hit-heavy groups in arrival order, and either way it must leave the
/// count multiset — and with it min-count, updates and total mass —
/// exactly where per-key processing of that order leaves it. The
/// reference mirrors the (deterministic, exposed) order decision.
fn check_bulk_flush_vs_stream_summary(stream: &[u64], cap: usize, group: usize) {
    let mut flat: CompactSpaceSaving<u64> = CompactSpaceSaving::with_capacity(cap);
    let mut list: SpaceSaving<u64> = SpaceSaving::with_capacity(cap);
    for chunk in stream.chunks(group.max(1)) {
        let mut g = chunk.to_vec();
        flat.flush_group_evicting(&mut g);
        let mut reference = chunk.to_vec();
        if flat.last_flush_sorted() {
            reference.sort_unstable();
        }
        list.increment_batch(&reference);
    }
    assert_eq!(flat.updates(), list.updates(), "update counts diverged");
    assert_eq!(flat.min_count(), list.min_count(), "min-counts diverged");
    let multiset = |c: Vec<hhh_counters::Candidate<u64>>| -> Vec<u64> {
        let mut v: Vec<u64> = c.iter().map(|e| e.upper).collect();
        v.sort_unstable();
        v
    };
    assert_eq!(
        multiset(flat.candidates()),
        multiset(list.candidates()),
        "count multisets diverged"
    );
    let exact = exact_counts(stream);
    for (key, &f) in &exact {
        assert!(flat.lower(key) <= f, "bulk flush: lower({key}) > truth");
        assert!(flat.upper(key) >= f, "bulk flush: upper({key}) < truth");
    }
    flat.debug_validate();
    list.debug_validate();
}

/// The bulk-evicting flush on adversarial group shapes: all-distinct
/// groups (every post-fill key is a deferred eviction — the miss-heavy
/// regime the tag array targets), single-key groups (pure bumps), and
/// phase changes that interleave hit runs with miss runs.
#[test]
fn bulk_flush_differential_adversarial_streams() {
    for cap in [1usize, 7, 32, 100] {
        for group in [16usize, 256, 4_096] {
            let distinct: Vec<u64> = (0..4_000u64).collect();
            check_bulk_flush_vs_stream_summary(&distinct, cap, group);

            let single = vec![42u64; 3_000];
            check_bulk_flush_vs_stream_summary(&single, cap, group);

            let mut phases: Vec<u64> = (0..1_000u64).collect();
            phases.extend(std::iter::repeat_n(7u64, 1_000));
            phases.extend(1_000..2_000u64);
            check_bulk_flush_vs_stream_summary(&phases, cap, group);
        }
    }
}

/// The adaptive flush-order threshold on a second trace shape (ROADMAP
/// open item (b)): the miss-ratio EWMA was tuned on chicago16's heavy
/// tail, so pin its behaviour on sanjose14-shaped streams. The contract
/// is regime-tracking, not a particular constant: sanjose14's *tail*
/// (distinct never-seen flows — the regime the tag array and bulk sweep
/// target) must hold the sorted sweep, while the *raw* sanjose14 mix —
/// whose top flows absorb most packets of a 512-packet group even at 64
/// counters, making groups hit-heavy by the flush's metric — must settle
/// on arrival order within a few groups; and the count multisets must
/// keep matching a stream summary fed the mirrored order throughout,
/// exactly the assertions the chicago16-shaped adversarial streams above
/// pin (`bulk_flush_all_distinct_group` et al).
#[test]
fn adaptive_flush_order_tracks_regime_on_sanjose14_stream() {
    let mut gen = hhh_traces::TraceGenerator::new(&hhh_traces::TraceConfig::sanjose14());
    let cap = 64usize;
    let mut flat: CompactSpaceSaving<u64> = CompactSpaceSaving::with_capacity(cap);
    let mut list: SpaceSaving<u64> = SpaceSaving::with_capacity(cap);
    let mirror =
        |flat: &mut CompactSpaceSaving<u64>, list: &mut SpaceSaving<u64>, group: &[u64]| {
            let mut g = group.to_vec();
            flat.flush_group_evicting(&mut g);
            let mut reference = group.to_vec();
            if flat.last_flush_sorted() {
                reference.sort_unstable();
            }
            list.increment_batch(&reference);
        };
    // First-occurrence-only view of the same generator: the trace's tail.
    let mut seen = std::collections::HashSet::new();
    let distinct_group = |gen: &mut hhh_traces::TraceGenerator,
                          seen: &mut std::collections::HashSet<u64>| {
        let mut g = Vec::with_capacity(512);
        while g.len() < 512 {
            let k = gen.generate().key2();
            if seen.insert(k) {
                g.push(k);
            }
        }
        g
    };

    // Phase 1 — miss-heavy: sanjose14 tail flows (all first occurrences).
    // Every run in the group probes Absent, so the EWMA must hold every
    // group on the sorted bulk-eviction sweep.
    for round in 0..12 {
        let group = distinct_group(&mut gen, &mut seen);
        mirror(&mut flat, &mut list, &group);
        assert!(
            flat.last_flush_sorted(),
            "round {round}: sanjose14 tail groups must take the sorted sweep"
        );
    }

    // Phase 2 — hit-heavy: the raw sanjose14 mix. Its top flows dominate
    // a 512-packet group (most packets bump monitored keys), so after the
    // adaptation lag the EWMA must flip to arrival order and stay there.
    for round in 0..12 {
        let group: Vec<u64> = (0..512).map(|_| gen.generate().key2()).collect();
        mirror(&mut flat, &mut list, &group);
        if round >= 3 {
            assert!(
                !flat.last_flush_sorted(),
                "round {round}: raw sanjose14 groups must settle on arrival order"
            );
        }
    }

    // Phase 3 — back to the tail: the EWMA re-learns the miss regime.
    for round in 0..12 {
        let group = distinct_group(&mut gen, &mut seen);
        mirror(&mut flat, &mut list, &group);
        if round >= 3 {
            assert!(
                flat.last_flush_sorted(),
                "round {round}: the sweep must return with the tail regime"
            );
        }
    }

    // Throughout all three regimes the adaptive order must be
    // guarantee-preserving: same updates, same min-count, same count
    // multiset as per-key processing of the mirrored order.
    assert_eq!(flat.updates(), list.updates(), "update counts diverged");
    assert_eq!(flat.min_count(), list.min_count(), "min-counts diverged");
    let multiset = |c: Vec<hhh_counters::Candidate<u64>>| -> Vec<u64> {
        let mut v: Vec<u64> = c.iter().map(|e| e.upper).collect();
        v.sort_unstable();
        v
    };
    assert_eq!(
        multiset(flat.candidates()),
        multiset(list.candidates()),
        "count multisets diverged"
    );
    flat.debug_validate();
    list.debug_validate();
}

/// Zipf groups: heavy keys hit, the long tail defers — both paths in one
/// group, across group sizes that straddle the capacity.
#[test]
fn bulk_flush_differential_zipf_stream() {
    let zipf = hhh_traces::Zipf::new(10_000, 1.2);
    let mut x = 0xF00Du64;
    let mut uniform = move || {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (x >> 11) as f64 / (1u64 << 53) as f64
    };
    let stream: Vec<u64> = (0..30_000).map(|_| zipf.sample(&mut uniform)).collect();
    for cap in [10usize, 100, 1_000] {
        check_bulk_flush_vs_stream_summary(&stream, cap, 512);
    }
}

/// Adversarial streams the random generator is unlikely to produce.
#[test]
fn compact_differential_adversarial_streams() {
    for cap in [1usize, 7, 32, 100] {
        // All-distinct: every post-fill update is an eviction.
        let distinct: Vec<u64> = (0..4_000u64).collect();
        check_compact_vs_stream_summary(&distinct, cap);

        // Single key: pure bump path, no eviction ever.
        let single = vec![42u64; 3_000];
        check_compact_vs_stream_summary(&single, cap);

        // Distinct-then-single and alternating phases: exercises the
        // min-support bookkeeping across fill, churn and bump regimes.
        let mut phases: Vec<u64> = (0..1_000u64).collect();
        phases.extend(std::iter::repeat_n(7u64, 1_000));
        phases.extend(1_000..2_000u64);
        check_compact_vs_stream_summary(&phases, cap);
    }
}

/// Zipf-distributed stream (the empirical shape of the paper's traces):
/// heavy keys bump, the long tail churns the minimum.
#[test]
fn compact_differential_zipf_stream() {
    let zipf = hhh_traces::Zipf::new(10_000, 1.2);
    let mut x = 0x5EEDu64;
    let mut uniform = move || {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (x >> 11) as f64 / (1u64 << 53) as f64
    };
    let stream: Vec<u64> = (0..30_000).map(|_| zipf.sample(&mut uniform)).collect();
    for cap in [10usize, 100, 1_000] {
        check_compact_vs_stream_summary(&stream, cap);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn space_saving_contract(stream in arb_stream(), cap in 1usize..32) {
        check_bounds::<SpaceSaving<u64>>(&stream, cap, true)?;
    }

    #[test]
    fn compact_space_saving_contract(stream in arb_stream(), cap in 1usize..32) {
        check_bounds::<CompactSpaceSaving<u64>>(&stream, cap, true)?;
    }

    /// Random-stream differential: flat arena vs stream summary.
    #[test]
    fn compact_differential_random(stream in arb_stream(), cap in 1usize..32) {
        check_compact_vs_stream_summary(&stream, cap);
    }

    /// Random-stream differential for the bulk-evicting flush, across
    /// group sizes.
    #[test]
    fn bulk_flush_differential_random(
        stream in arb_stream(),
        cap in 1usize..32,
        group in 1usize..200,
    ) {
        check_bulk_flush_vs_stream_summary(&stream, cap, group);
    }

    /// The flat-arena internals (probe chains, lazy minimum, support
    /// counts) stay consistent under arbitrary streams.
    #[test]
    fn compact_structure_invariants(stream in arb_stream(), cap in 1usize..16) {
        let mut ss: CompactSpaceSaving<u64> = CompactSpaceSaving::with_capacity(cap);
        for &k in &stream {
            ss.increment(k);
        }
        ss.debug_validate();
    }

    #[test]
    fn heap_space_saving_contract(stream in arb_stream(), cap in 1usize..32) {
        check_bounds::<HeapSpaceSaving<u64>>(&stream, cap, true)?;
    }

    #[test]
    fn misra_gries_contract(stream in arb_stream(), cap in 1usize..32) {
        check_bounds::<MisraGries<u64>>(&stream, cap, false)?;
    }

    #[test]
    fn lossy_counting_contract(stream in arb_stream(), cap in 2usize..32) {
        check_bounds::<LossyCounting<u64>>(&stream, cap, false)?;
    }

    /// The stream-summary internals stay consistent under arbitrary streams.
    #[test]
    fn space_saving_structure_invariants(stream in arb_stream(), cap in 1usize..16) {
        let mut ss: SpaceSaving<u64> = SpaceSaving::with_capacity(cap);
        for &k in &stream {
            ss.increment(k);
        }
        ss.debug_validate();
    }

    /// Heap internals stay consistent too.
    #[test]
    fn heap_structure_invariants(stream in arb_stream(), cap in 1usize..16) {
        let mut ss: HeapSpaceSaving<u64> = HeapSpaceSaving::with_capacity(cap);
        for &k in &stream {
            ss.increment(k);
        }
        ss.debug_validate();
    }

    /// Both Space Saving variants report identical upper bounds for keys
    /// they both monitor with the same count structure — and identical
    /// min-counts, since the count multiset evolution is deterministic.
    #[test]
    fn space_saving_variants_equivalent_total_mass(
        stream in arb_stream(), cap in 1usize..16,
    ) {
        let mut a: SpaceSaving<u64> = SpaceSaving::with_capacity(cap);
        let mut b: HeapSpaceSaving<u64> = HeapSpaceSaving::with_capacity(cap);
        for &k in &stream {
            a.increment(k);
            b.increment(k);
        }
        let mass_a: u64 = a.candidates().iter().map(|c| c.upper).sum();
        let mass_b: u64 = b.candidates().iter().map(|c| c.upper).sum();
        prop_assert_eq!(mass_a, mass_b, "count multisets diverged");
    }

    /// Space Saving's heavy-hitter property (Definition 5): every key with
    /// f > N/capacity is among the candidates.
    #[test]
    fn space_saving_keeps_heavy_hitters(stream in arb_stream(), cap in 1usize..32) {
        let mut ss: SpaceSaving<u64> = SpaceSaving::with_capacity(cap);
        for &k in &stream {
            ss.increment(k);
        }
        let exact = exact_counts(&stream);
        let n = stream.len() as u64;
        let monitored: std::collections::HashSet<u64> =
            ss.candidates().iter().map(|c| c.key).collect();
        for (key, &f) in &exact {
            if f > n / cap as u64 {
                prop_assert!(monitored.contains(key), "heavy key {key} evicted");
            }
        }
    }
}
