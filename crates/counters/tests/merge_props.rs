//! Differential merge tests: a stream split across K shard summaries and
//! merged back must still satisfy the (ε, δ)-Frequency Estimation sandwich
//! against exact counts of the *whole* stream, with the additive error of
//! the per-shard bounds summed — for every counter algorithm, on random,
//! Zipf, phase-change and adversarial streams.

use hhh_counters::{
    CompactSpaceSaving, CountMin, FrequencyEstimator, HeapSpaceSaving, LossyCounting, MisraGries,
    SpaceSaving,
};
use hhh_hierarchy::shard_of;
use proptest::collection::vec;
use proptest::prelude::*;
use std::collections::HashMap;

fn exact_counts(stream: &[u64]) -> HashMap<u64, u64> {
    let mut m = HashMap::new();
    for &k in stream {
        *m.entry(k).or_insert(0u64) += 1;
    }
    m
}

/// Feeds `stream` into `shards` instances partitioned by key hash, merges
/// them all into one, and returns it together with the summed per-shard
/// deterministic error bounds.
fn shard_and_merge<E: FrequencyEstimator<u64>>(
    stream: &[u64],
    shards: usize,
    capacity: usize,
) -> (E, u64) {
    let mut parts: Vec<E> = (0..shards).map(|_| E::with_capacity(capacity)).collect();
    for &k in stream {
        parts[shard_of(k, shards)].increment(k);
    }
    let summed_bound: u64 = parts.iter().map(|p| p.error_bound()).sum();
    let mut merged = parts.remove(0);
    for part in parts {
        merged.merge(part);
    }
    (merged, summed_bound)
}

/// The sandwich bound of the merge contract: `lower ≤ f ≤ upper` for every
/// key of the stream, and for monitored keys the overestimate (or, for the
/// underestimating structures, the deficit) stays within the summed
/// per-shard error bounds plus one floor-rounding unit per shard.
fn check_merged_sandwich<E: FrequencyEstimator<u64>>(
    stream: &[u64],
    shards: usize,
    capacity: usize,
    overestimating: bool,
) -> (E, Result<(), TestCaseError>) {
    let (merged, summed_bound) = shard_and_merge::<E>(stream, shards, capacity);
    let exact = exact_counts(stream);
    let n = stream.len() as u64;
    let allow = summed_bound + shards as u64;
    let check = (|| {
        prop_assert_eq!(merged.updates(), n, "merged update count must sum");
        let monitored: HashMap<u64, (u64, u64)> = merged
            .candidates()
            .iter()
            .map(|c| (c.key, (c.lower, c.upper)))
            .collect();
        for (key, &f) in &exact {
            prop_assert!(
                merged.upper(key) >= f,
                "merged upper({key}) = {} < truth {f}",
                merged.upper(key)
            );
            prop_assert!(
                merged.lower(key) <= f,
                "merged lower({key}) = {} > truth {f}",
                merged.lower(key)
            );
            if let Some(&(lower, upper)) = monitored.get(key) {
                if overestimating {
                    prop_assert!(
                        upper <= f + allow,
                        "merged overestimate beyond summed bounds for {key}: \
                         upper={upper} f={f} allow={allow}"
                    );
                } else {
                    prop_assert!(
                        f - lower <= allow,
                        "merged deficit beyond summed bounds for {key}: \
                         lower={lower} f={f} allow={allow}"
                    );
                }
            }
        }
        // The heavy-hitter property over the merged stream: any key heavier
        // than the summed bounds must have survived re-eviction.
        let heavy_floor = allow;
        for (key, &f) in &exact {
            if f > heavy_floor {
                prop_assert!(
                    monitored.contains_key(key),
                    "heavy key {key} (f={f} > {heavy_floor}) lost in merge"
                );
            }
        }
        Ok(())
    })();
    (merged, check)
}

fn check_all_counters(stream: &[u64], shards: usize, capacity: usize) {
    let (merged, r) = check_merged_sandwich::<SpaceSaving<u64>>(stream, shards, capacity, true);
    r.unwrap_or_else(|e| panic!("stream-summary: {e}"));
    merged.debug_validate();
    let (merged, r) =
        check_merged_sandwich::<CompactSpaceSaving<u64>>(stream, shards, capacity, true);
    r.unwrap_or_else(|e| panic!("compact: {e}"));
    merged.debug_validate();
    let (merged, r) = check_merged_sandwich::<HeapSpaceSaving<u64>>(stream, shards, capacity, true);
    r.unwrap_or_else(|e| panic!("heap: {e}"));
    merged.debug_validate();
    let (_, r) = check_merged_sandwich::<MisraGries<u64>>(stream, shards, capacity, false);
    r.unwrap_or_else(|e| panic!("misra-gries: {e}"));
    let (_, r) = check_merged_sandwich::<LossyCounting<u64>>(stream, shards, capacity, false);
    r.unwrap_or_else(|e| panic!("lossy-counting: {e}"));
}

#[test]
fn merged_shards_keep_sandwich_on_adversarial_streams() {
    for shards in [2usize, 3, 5] {
        for cap in [4usize, 16, 64] {
            // All-distinct: maximal re-eviction pressure at merge time.
            let distinct: Vec<u64> = (0..3_000u64).collect();
            check_all_counters(&distinct, shards, cap);

            // Single key: the merge must pair the counts exactly.
            let single = vec![42u64; 2_000];
            check_all_counters(&single, shards, cap);

            // Phase change: fill, churn, then a late heavy phase.
            let mut phases: Vec<u64> = (0..800u64).collect();
            phases.extend(std::iter::repeat_n(7u64, 900));
            phases.extend(800..1_600u64);
            phases.extend(std::iter::repeat_n(13u64, 700));
            check_all_counters(&phases, shards, cap);
        }
    }
}

#[test]
fn merged_shards_keep_sandwich_on_zipf_stream() {
    let zipf = hhh_traces::Zipf::new(10_000, 1.2);
    let mut x = 0x5EEDu64;
    let mut uniform = move || {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (x >> 11) as f64 / (1u64 << 53) as f64
    };
    let stream: Vec<u64> = (0..30_000).map(|_| zipf.sample(&mut uniform)).collect();
    for shards in [2usize, 4, 8] {
        for cap in [16usize, 100, 1_000] {
            check_all_counters(&stream, shards, cap);
        }
    }
}

/// Builds K shard summaries and combines them two ways: the pairwise
/// `merge` fold and the single `merge_many` pass. The K-way combine must
/// keep the sandwich and be pointwise *no looser* than the fold (its
/// padding uses the per-shard minima; the fold pads with the growing
/// intermediate merged minima).
fn check_kway_vs_pairwise<E: FrequencyEstimator<u64>>(stream: &[u64], shards: usize, cap: usize) {
    let build = || {
        let mut parts: Vec<E> = (0..shards).map(|_| E::with_capacity(cap)).collect();
        for &k in stream {
            parts[shard_of(k, shards)].increment(k);
        }
        parts
    };
    let pairwise = {
        let mut parts = build();
        let mut merged = parts.remove(0);
        for part in parts {
            merged.merge(part);
        }
        merged
    };
    let kway = {
        let mut parts = build();
        let mut merged = parts.remove(0);
        merged.merge_many(parts);
        merged
    };
    assert_eq!(kway.updates(), pairwise.updates(), "update counts diverged");
    let exact = exact_counts(stream);
    for (key, &f) in &exact {
        assert!(kway.upper(key) >= f, "kway upper({key}) < truth {f}");
        assert!(kway.lower(key) <= f, "kway lower({key}) > truth {f}");
        assert!(
            kway.upper(key) <= pairwise.upper(key),
            "K-way estimate looser than the pairwise fold for {key}: \
             {} > {}",
            kway.upper(key),
            pairwise.upper(key)
        );
    }
    // `upper` of a never-seen key is the min-count: the unmonitored-key
    // bound must also be no looser than the fold's.
    assert!(
        kway.upper(&u64::MAX) <= pairwise.upper(&u64::MAX),
        "K-way min-count exceeds the fold's"
    );
}

#[test]
fn kway_merge_tighter_than_pairwise_fold() {
    let mut x = 0xACE5u64;
    let stream: Vec<u64> = (0..20_000)
        .map(|i| {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(9);
            if i % 5 == 0 {
                i % 7 // recurring heavy keys
            } else {
                x % 4_096 // churning tail
            }
        })
        .collect();
    for shards in [2usize, 3, 4, 8] {
        for cap in [8usize, 64, 256] {
            check_kway_vs_pairwise::<SpaceSaving<u64>>(&stream, shards, cap);
            check_kway_vs_pairwise::<CompactSpaceSaving<u64>>(&stream, shards, cap);
        }
    }
}

#[test]
fn merge_many_handles_empty_and_single() {
    let mut a: SpaceSaving<u64> = SpaceSaving::with_capacity(8);
    for i in 0..30u64 {
        a.increment(i % 6);
    }
    let snapshot: Vec<_> = {
        let mut c = a.candidates();
        c.sort_unstable_by_key(|e| e.key);
        c
    };
    // Zero others: a no-op rebuild.
    a.merge_many(Vec::new());
    let mut after = a.candidates();
    after.sort_unstable_by_key(|e| e.key);
    assert_eq!(after, snapshot);
    a.debug_validate();
    // One other: identical to merge().
    let mut b1: SpaceSaving<u64> = SpaceSaving::with_capacity(8);
    let mut b2: SpaceSaving<u64> = SpaceSaving::with_capacity(8);
    for i in 0..40u64 {
        b1.increment(i % 9);
        b2.increment(i % 9);
    }
    let mut via_merge = a.clone();
    via_merge.merge(b1);
    a.merge_many(vec![b2]);
    assert_eq!(a.updates(), via_merge.updates());
    assert_eq!(a.min_count(), via_merge.min_count());
    a.debug_validate();
}

#[test]
#[should_panic(expected = "merge requires equal capacities")]
fn merge_many_rejects_capacity_mismatch() {
    let mut a: CompactSpaceSaving<u64> = CompactSpaceSaving::with_capacity(8);
    let b: CompactSpaceSaving<u64> = CompactSpaceSaving::with_capacity(8);
    let c: CompactSpaceSaving<u64> = CompactSpaceSaving::with_capacity(16);
    a.merge_many(vec![b, c]);
}

#[test]
fn merge_below_capacity_is_exact_union() {
    // Disjoint key sets that fit: the merged summary is the exact union,
    // with zero error.
    let mut a: SpaceSaving<u64> = SpaceSaving::with_capacity(16);
    let mut b: SpaceSaving<u64> = SpaceSaving::with_capacity(16);
    for _ in 0..5 {
        a.increment(1);
    }
    for _ in 0..3 {
        a.increment(2);
    }
    for _ in 0..7 {
        b.increment(10);
    }
    b.increment(11);
    a.merge(b);
    assert_eq!(a.updates(), 16);
    for (key, f) in [(1u64, 5u64), (2, 3), (10, 7), (11, 1)] {
        assert_eq!(a.upper(&key), f, "key {key}");
        assert_eq!(a.lower(&key), f, "key {key}");
    }
    assert_eq!(a.len(), 4);
    a.debug_validate();
}

#[test]
fn merge_with_empty_preserves_counts() {
    let mut a: CompactSpaceSaving<u64> = CompactSpaceSaving::with_capacity(8);
    for i in 0..20u64 {
        a.increment(i % 5);
    }
    let before: Vec<_> = {
        let mut c = a.candidates();
        c.sort_unstable_by_key(|e| e.key);
        c
    };
    a.merge(CompactSpaceSaving::with_capacity(8));
    let mut after = a.candidates();
    after.sort_unstable_by_key(|e| e.key);
    assert_eq!(before, after);
    assert_eq!(a.updates(), 20);
    a.debug_validate();

    // And merging *into* an empty instance adopts the other's contents.
    let mut empty: CompactSpaceSaving<u64> = CompactSpaceSaving::with_capacity(8);
    empty.merge(a);
    let mut adopted = empty.candidates();
    adopted.sort_unstable_by_key(|e| e.key);
    assert_eq!(adopted, after);
    empty.debug_validate();
}

#[test]
fn merge_overflow_re_evicts_to_capacity() {
    // Two full summaries with disjoint keys: the union re-evicts back to
    // capacity, keeping the largest counters, and the merged min-count
    // still bounds every dropped key.
    let cap = 4;
    let mut a: SpaceSaving<u64> = SpaceSaving::with_capacity(cap);
    let mut b: SpaceSaving<u64> = SpaceSaving::with_capacity(cap);
    for (key, w) in [(1u64, 10u64), (2, 8), (3, 2), (4, 1)] {
        a.add(key, w);
    }
    for (key, w) in [(11u64, 9u64), (12, 7), (13, 2), (14, 1)] {
        b.add(key, w);
    }
    a.merge(b);
    assert_eq!(a.len(), cap);
    assert_eq!(a.updates(), 40);
    // Min-padding: min_a = 1, min_b = 1, so each side's keys carry +1.
    assert_eq!(a.upper(&1), 11);
    assert_eq!(a.lower(&1), 10);
    assert!(a.upper(&3) >= 2, "dropped key still bounded by min-count");
    let min = a.min_count();
    assert!(min >= 3, "kept counters dominate dropped ones (min={min})");
    a.debug_validate();
}

#[test]
fn count_min_merge_is_element_wise_exact() {
    let mut whole: CountMin<u64> = CountMin::with_capacity(32);
    let mut a: CountMin<u64> = CountMin::with_capacity(32);
    let mut b: CountMin<u64> = CountMin::with_capacity(32);
    let mut x = 9u64;
    for i in 0..20_000u64 {
        x = x.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(5);
        let key = x % 500;
        whole.increment(key);
        if i % 2 == 0 {
            a.increment(key);
        } else {
            b.increment(key);
        }
    }
    a.merge(b);
    assert_eq!(a.updates(), whole.updates());
    // Identical seeds + element-wise sum ⇒ identical point estimates.
    for key in 0..500u64 {
        assert_eq!(a.upper(&key), whole.upper(&key), "key {key}");
    }
}

#[test]
#[should_panic(expected = "merge requires equal capacities")]
fn merge_rejects_capacity_mismatch() {
    let mut a: SpaceSaving<u64> = SpaceSaving::with_capacity(8);
    let b: SpaceSaving<u64> = SpaceSaving::with_capacity(16);
    a.merge(b);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random streams, random shard counts: the merged Space Saving
    /// summaries keep the sandwich and their internal invariants.
    #[test]
    fn merged_space_saving_random(
        stream in vec(0u64..64, 1..2_000),
        shards in 2usize..6,
        cap in 1usize..32,
    ) {
        let (merged, r) =
            check_merged_sandwich::<SpaceSaving<u64>>(&stream, shards, cap, true);
        r?;
        merged.debug_validate();
    }

    #[test]
    fn merged_compact_random(
        stream in vec(0u64..64, 1..2_000),
        shards in 2usize..6,
        cap in 1usize..32,
    ) {
        let (merged, r) =
            check_merged_sandwich::<CompactSpaceSaving<u64>>(&stream, shards, cap, true);
        r?;
        merged.debug_validate();
    }

    /// Merging is associative enough for pipelines: left-fold and
    /// right-leaning fold of the same shards give summaries with the same
    /// update count and total guaranteed mass.
    #[test]
    fn merge_fold_order_preserves_ledger(
        stream in vec(0u64..48, 1..1_500),
        cap in 2usize..24,
    ) {
        let build = |part: &[u64]| {
            let mut e: SpaceSaving<u64> = SpaceSaving::with_capacity(cap);
            for &k in part {
                e.increment(k);
            }
            e
        };
        let third = (stream.len() / 3).max(1).min(stream.len());
        let (p1, rest) = stream.split_at(third);
        let (p2, p3) = rest.split_at((rest.len() / 2).min(rest.len()));
        // ((1 ⊕ 2) ⊕ 3)
        let mut left = build(p1);
        left.merge(build(p2));
        left.merge(build(p3));
        // (1 ⊕ (2 ⊕ 3))
        let mut tail = build(p2);
        tail.merge(build(p3));
        let mut right = build(p1);
        right.merge(tail);
        prop_assert_eq!(left.updates(), right.updates());
        left.debug_validate();
        right.debug_validate();
    }
}
