//! Property suites for the PR 7 additions: the [`CuckooHeavyKeeper`]
//! decay counter and the regime-adaptive [`DispatchedEstimator`].
//!
//! CHK is *not* count-multiset exact — decay deliberately forgets tail
//! mass — so the differential pin is its **deterministic deficit
//! sandwich** against an exact oracle: `lower(x) ≤ f(x) ≤ upper(x)` for
//! every key (monitored or absent), with `upper − lower` exactly the
//! unattributed deficit `updates − Σ counts`.
//!
//! The dispatch suite pins the two facts the wrapper's module docs
//! promise: a node that never crosses the hysteresis band is
//! **bit-identical** to the fixed layout fed the same updates, and a
//! migration (same-family or cross-family, forced or organic) preserves
//! the per-key estimate sandwich.

use hhh_counters::{
    CuckooHeavyKeeper, DispatchLayout, DispatchedEstimator, FrequencyEstimator, SpaceSaving,
};
use proptest::collection::vec;
use proptest::prelude::*;
use std::collections::HashMap;

fn exact_counts(stream: &[u64]) -> HashMap<u64, u64> {
    let mut m = HashMap::new();
    for &k in stream {
        *m.entry(k).or_insert(0u64) += 1;
    }
    m
}

/// Feeds `stream` through the batch flush path in `group`-sized chunks,
/// the way the RHHH lattice drives its node counters.
fn feed_groups<E: FrequencyEstimator<u64>>(est: &mut E, stream: &[u64], group: usize) {
    for chunk in stream.chunks(group.max(1)) {
        let mut g = chunk.to_vec();
        est.flush_group_evicting_with(&mut g, &mut |keys| keys.sort_unstable());
    }
}

/// The CHK contract: deterministic sandwich for every key, deficit ledger
/// closed, absent keys covered by the deficit alone.
fn check_chk_sandwich(stream: &[u64], cap: usize) -> Result<(), TestCaseError> {
    let mut chk = CuckooHeavyKeeper::<u64>::with_capacity(cap);
    for &k in stream {
        chk.increment(k);
    }
    let exact = exact_counts(stream);
    for (key, &f) in &exact {
        prop_assert!(chk.lower(key) <= f, "lower({key}) > {f}");
        prop_assert!(chk.upper(key) >= f, "upper({key}) < {f}");
        prop_assert_eq!(chk.upper(key) - chk.lower(key), chk.error_bound());
    }
    // Absent key: zero guaranteed mass, deficit-wide band.
    let absent = u64::MAX;
    prop_assert_eq!(chk.lower(&absent), 0);
    prop_assert_eq!(chk.upper(&absent), chk.error_bound());
    // Ledger: deficit is exactly the mass the counts don't carry.
    let stored: u64 = chk.candidates().iter().map(|c| c.lower).sum();
    prop_assert_eq!(chk.error_bound(), chk.updates() - stored);
    Ok(())
}

/// A dispatched estimator and its fixed twin fed identical updates must
/// have identical inner state whenever no switch happened — the wrapper's
/// probes are read-only and it owns no RNG, so `Debug` output (which
/// renders every field, RNG cursors included) must match exactly.
fn check_never_switch_bit_identity(
    stream: &[u64],
    cap: usize,
    group: usize,
) -> Result<(), TestCaseError> {
    let mut dispatched = DispatchedEstimator::<u64>::with_capacity(cap);
    let mut fixed = SpaceSaving::<u64>::with_capacity(cap);
    feed_groups(&mut dispatched, stream, group);
    feed_groups(&mut fixed, stream, group);
    if dispatched.switch_count() == 0 {
        prop_assert_eq!(dispatched.inner_repr(), format!("{fixed:?}"));
    } else {
        // A switch happened (miss-heavy stream): the compact twin check
        // lives in `migration_keeps_sandwich`; here just require the
        // sandwich still holds.
        for (key, &f) in &exact_counts(stream) {
            prop_assert!(dispatched.lower(key) <= f);
            prop_assert!(dispatched.upper(key) >= f);
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn chk_sandwich_random(stream in vec(0u64..64, 1..2_000), cap in 2usize..32) {
        check_chk_sandwich(&stream, cap)?;
    }

    #[test]
    fn chk_sandwich_wide_universe(stream in vec(any::<u64>(), 1..2_000), cap in 2usize..32) {
        check_chk_sandwich(&stream, cap)?;
    }

    #[test]
    fn chk_batch_flush_matches_scalar(stream in vec(0u64..256, 1..1_500), cap in 2usize..32) {
        // The batch front end must be observationally identical to the
        // scalar loop on the same *sorted* update order.
        let mut sorted = stream.clone();
        sorted.sort_unstable();
        let mut scalar = CuckooHeavyKeeper::<u64>::with_capacity(cap);
        for &k in &sorted {
            scalar.increment(k);
        }
        let mut batch = CuckooHeavyKeeper::<u64>::with_capacity(cap);
        batch.increment_batch(&sorted);
        prop_assert_eq!(format!("{scalar:?}"), format!("{batch:?}"));
    }

    #[test]
    fn dispatch_never_switch_is_bit_identical(
        stream in vec(0u64..48, 1..2_000),
        cap in 4usize..32,
        group in 16usize..256,
    ) {
        // Small key universe relative to capacity → hit-heavy → no switch.
        check_never_switch_bit_identity(&stream, cap, group)?;
    }

    #[test]
    fn dispatch_any_stream_keeps_sandwich(
        stream in vec(0u64..1_024, 1..2_000),
        cap in 4usize..32,
        group in 16usize..256,
    ) {
        // Wide universe: switches may or may not fire — either way the
        // estimates must stay a sound sandwich.
        check_never_switch_bit_identity(&stream, cap, group)?;
    }

    #[test]
    fn migration_keeps_sandwich(
        stream in vec(0u64..512, 1..2_000),
        cap in 4usize..32,
        target_ix in 0usize..3,
    ) {
        let target = [
            DispatchLayout::StreamSummary,
            DispatchLayout::Compact,
            DispatchLayout::Chk,
        ][target_ix];
        let mut d = DispatchedEstimator::<u64>::with_capacity(cap);
        feed_groups(&mut d, &stream, 64);
        let updates_before = d.updates();
        d.force_migrate(target);
        prop_assert_eq!(d.active_layout(), target);
        prop_assert_eq!(d.updates(), updates_before, "migration must not lose mass");
        for (key, &f) in &exact_counts(&stream) {
            prop_assert!(d.lower(key) <= f, "lower({key}) > {f} after migration");
            prop_assert!(d.upper(key) >= f, "upper({key}) < {f} after migration");
        }
    }

    #[test]
    fn ss_to_ss_migration_is_exact(stream in vec(0u64..512, 1..2_000), cap in 4usize..32) {
        let mut d = DispatchedEstimator::<u64>::with_capacity(cap);
        let mut fixed = SpaceSaving::<u64>::with_capacity(cap);
        feed_groups(&mut d, &stream, 64);
        feed_groups(&mut fixed, &stream, 64);
        // Only streams that kept the node on the boot layout compare
        // against the fixed twin (a switched node diverged legitimately).
        if d.switch_count() == 0 {
            d.force_migrate(DispatchLayout::Compact);
            d.force_migrate(DispatchLayout::StreamSummary);
            let sort = |mut v: Vec<hhh_counters::Candidate<u64>>| {
                v.sort_unstable_by_key(|a| a.key);
                v
            };
            prop_assert_eq!(sort(d.candidates()), sort(fixed.candidates()));
            prop_assert_eq!(d.updates(), fixed.updates());
        }
    }

    #[test]
    fn merge_across_active_layouts_keeps_sandwich(
        sa in vec(0u64..256, 1..1_000),
        sb in vec(0u64..256, 1..1_000),
        cap in 4usize..32,
        layout_ix in 0usize..3,
    ) {
        let mut a = DispatchedEstimator::<u64>::with_capacity(cap);
        let mut b = DispatchedEstimator::<u64>::with_capacity(cap);
        feed_groups(&mut a, &sa, 64);
        feed_groups(&mut b, &sb, 64);
        b.force_migrate([
            DispatchLayout::StreamSummary,
            DispatchLayout::Compact,
            DispatchLayout::Chk,
        ][layout_ix]);
        let total = a.updates() + b.updates();
        let active = a.active_layout();
        a.merge(b);
        prop_assert_eq!(a.updates(), total);
        prop_assert_eq!(a.active_layout(), active, "merge must not flip the survivor");
        let mut truth = exact_counts(&sa);
        for (k, f) in exact_counts(&sb) {
            *truth.entry(k).or_insert(0) += f;
        }
        for (key, &f) in &truth {
            prop_assert!(a.lower(key) <= f, "merged lower({key}) > {f}");
            prop_assert!(a.upper(key) >= f, "merged upper({key}) < {f}");
        }
    }

    #[test]
    fn chk_merge_bound_holds(
        sa in vec(0u64..128, 1..1_000),
        sb in vec(0u64..128, 1..1_000),
        cap in 4usize..32,
    ) {
        let mut a = CuckooHeavyKeeper::<u64>::with_capacity(cap);
        let mut b = CuckooHeavyKeeper::<u64>::with_capacity(cap);
        for &k in &sa { a.increment(k); }
        for &k in &sb { b.increment(k); }
        let deficit_sum = a.error_bound() + b.error_bound();
        a.merge(b);
        // Documented merge bound: re-insertion only ever *returns* mass to
        // the deficit, so the merged deficit is at least the shard sum
        // (drops add to it) and the sandwich holds over the concatenation.
        prop_assert!(a.error_bound() >= deficit_sum, "merged deficit below shard sum");
        let mut truth = exact_counts(&sa);
        for (k, f) in exact_counts(&sb) {
            *truth.entry(k).or_insert(0) += f;
        }
        for (key, &f) in &truth {
            prop_assert!(a.lower(key) <= f, "merged chk lower({key}) > {f}");
            prop_assert!(a.upper(key) >= f, "merged chk upper({key}) < {f}");
        }
    }
}

/// Deterministic four-shape differential sweep (random / zipf / distinct /
/// phase-change), mirroring the per-module test but through the public
/// batch flush path and at a larger scale than proptest cases reach.
#[test]
fn chk_sandwich_on_shaped_streams() {
    type Shaper = Box<dyn Fn(u64) -> u64>;
    let shapes: [(&str, Shaper); 4] = [
        (
            "random",
            Box::new(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 52),
        ),
        ("zipf", Box::new(|i| u64::from((i % 4_096 + 1).ilog2()))),
        ("distinct", Box::new(|i| i)),
        ("phase", Box::new(|i| if i < 6_000 { i } else { i % 24 })),
    ];
    for (name, shape) in shapes {
        let stream: Vec<u64> = (0..12_000).map(&shape).collect();
        let mut chk = CuckooHeavyKeeper::<u64>::with_capacity(64);
        feed_groups(&mut chk, &stream, 128);
        let exact = exact_counts(&stream);
        for (key, &f) in &exact {
            assert!(chk.lower(key) <= f, "{name}: lower({key}) > {f}");
            assert!(chk.upper(key) >= f, "{name}: upper({key}) < {f}");
        }
        let stored: u64 = chk.candidates().iter().map(|c| c.lower).sum();
        assert_eq!(chk.error_bound(), chk.updates() - stored, "{name}: ledger");
    }
}

/// A miss-heavy stream must organically drive the default pair to the
/// compact side exactly once, and the estimates stay sound across the
/// organic (non-forced) migration.
#[test]
fn organic_switch_is_single_and_sound() {
    let stream: Vec<u64> = (0..40_000u64).collect();
    let mut d = DispatchedEstimator::<u64>::with_capacity(32);
    feed_groups(&mut d, &stream, 256);
    assert_eq!(d.active_layout(), DispatchLayout::Compact);
    assert_eq!(d.switch_count(), 1, "hysteresis must not thrash");
    // Distinct stream: every count is 1; sandwich for a late arrival.
    let probe = stream[stream.len() - 1];
    assert!(d.lower(&probe) <= 1);
    assert!(d.upper(&probe) >= 1 || d.lower(&probe) == 0);
}
