//! Lossy Counting (Manku & Motwani — VLDB 2002).
//!
//! The stream is split into buckets of width `w = capacity`; entries carry
//! `(count, Δ)` where `Δ` bounds how many occurrences may have been missed
//! before the entry was (re-)created. At each bucket boundary, entries with
//! `count + Δ ≤ current bucket` are pruned. Deterministic guarantee
//! (δ = 0): `count ≤ f ≤ count + Δ ≤ count + εN`.
//!
//! Listed in Section 3.1 of the RHHH paper ([33]) among the counter
//! algorithms that satisfy Definition 4 and can replace Space Saving.

use crate::fast_hash::FastMap;
use crate::{Candidate, CounterKey, FrequencyEstimator};

#[derive(Debug, Clone, Copy)]
struct Entry {
    count: u64,
    delta: u64,
}

/// Lossy Counting summary.
///
/// Space is O(ε⁻¹·log εN) in the worst case (more than Space Saving's strict
/// `capacity` counters), which is the classical trade-off between the two.
#[derive(Debug, Clone)]
pub struct LossyCounting<K> {
    entries: FastMap<K, Entry>,
    /// Bucket width (= capacity, so ε = 1/capacity).
    width: u64,
    /// Current bucket id `b = ⌈N/w⌉`.
    bucket: u64,
    updates: u64,
    capacity: usize,
}

impl<K: CounterKey> LossyCounting<K> {
    /// Number of entries currently stored (can exceed `capacity`,
    /// see the type-level docs).
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the summary is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    fn prune(&mut self) {
        let b = self.bucket;
        self.entries.retain(|_, e| e.count + e.delta > b);
    }
}

impl<K: CounterKey> FrequencyEstimator<K> for LossyCounting<K> {
    fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        Self {
            entries: FastMap::default(),
            width: capacity as u64,
            bucket: 1,
            updates: 0,
            capacity,
        }
    }

    fn increment(&mut self, key: K) {
        self.updates += 1;
        match self.entries.get_mut(&key) {
            Some(e) => e.count += 1,
            None => {
                let delta = self.bucket - 1;
                self.entries.insert(key, Entry { count: 1, delta });
            }
        }
        if self.updates.is_multiple_of(self.width) {
            self.prune();
            self.bucket += 1;
        }
    }

    fn add(&mut self, key: K, weight: u64) {
        if weight == 0 {
            return;
        }
        self.updates += weight;
        match self.entries.get_mut(&key) {
            Some(e) => e.count += weight,
            None => {
                let delta = self.bucket - 1;
                self.entries.insert(
                    key,
                    Entry {
                        count: weight,
                        delta,
                    },
                );
            }
        }
        // A heavy weight can cross several bucket boundaries at once.
        while self.updates >= self.bucket * self.width {
            self.prune();
            self.bucket += 1;
        }
    }

    fn increment_batch(&mut self, keys: &[K]) {
        // One table lookup per run of equal consecutive keys. `add` is the
        // native weighted path (O(1) plus any bucket boundaries actually
        // crossed), so a merged run costs the same as a single arrival.
        crate::for_each_run(keys, |key, run| self.add(key, run));
    }

    /// Documented-bound Lossy Counting merge: counts and deltas add for
    /// keys tracked on both sides; a key tracked on only one side takes the
    /// other side's `bucket − 1` as extra delta (the most occurrences that
    /// side could have missed). The merged bucket is `b₁ + b₂ − 1`, so the
    /// deterministic guarantee becomes `count ≤ f ≤ count + ε·(N₁+N₂)` —
    /// the two inputs' bounds summed — and a final prune restores the
    /// steady-state invariant `count + Δ > bucket − 1`.
    fn merge(&mut self, other: Self) {
        assert_eq!(
            self.capacity, other.capacity,
            "merge requires equal capacities"
        );
        self.updates += other.updates;
        let (b1, b2) = (self.bucket, other.bucket);
        for e in self.entries.values_mut() {
            e.delta += b2 - 1;
        }
        for (key, e2) in other.entries {
            match self.entries.get_mut(&key) {
                Some(e1) => {
                    // Tracked on both sides: replace the padding with the
                    // other side's actual delta.
                    e1.count += e2.count;
                    e1.delta = e1.delta - (b2 - 1) + e2.delta;
                }
                None => {
                    self.entries.insert(
                        key,
                        Entry {
                            count: e2.count,
                            delta: e2.delta + (b1 - 1),
                        },
                    );
                }
            }
        }
        self.bucket = b1 + b2 - 1;
        let floor = self.bucket - 1;
        self.entries.retain(|_, e| e.count + e.delta > floor);
    }

    fn updates(&self) -> u64 {
        self.updates
    }

    fn upper(&self, key: &K) -> u64 {
        match self.entries.get(key) {
            Some(e) => e.count + e.delta,
            // An absent key may have been pruned with count+Δ ≤ b−1 … but
            // conservatively it could have up to b−1 missed occurrences.
            None => self.bucket.saturating_sub(1),
        }
    }

    fn lower(&self, key: &K) -> u64 {
        self.entries.get(key).map_or(0, |e| e.count)
    }

    fn candidates(&self) -> Vec<Candidate<K>> {
        self.entries
            .iter()
            .map(|(&key, e)| Candidate {
                key,
                upper: e.count + e.delta,
                lower: e.count,
            })
            .collect()
    }

    fn capacity(&self) -> usize {
        self.capacity
    }

    fn layout_label(&self) -> &'static str {
        "lossy-counting"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn exact_within_first_bucket() {
        let mut lc: LossyCounting<u32> = LossyCounting::with_capacity(100);
        for _ in 0..50 {
            lc.increment(1);
        }
        assert_eq!(lc.lower(&1), 50);
        assert_eq!(lc.upper(&1), 50); // delta = 0 in the first bucket
    }

    #[test]
    fn bounds_bracket_truth() {
        let cap = 20;
        let mut lc: LossyCounting<u64> = LossyCounting::with_capacity(cap);
        let mut exact: HashMap<u64, u64> = HashMap::new();
        let mut x = 5u64;
        for i in 0..50_000u64 {
            let key = if i % 3 == 0 { i % 4 } else { x % 2_000 + 10 };
            x = x.wrapping_mul(6364136223846793005).wrapping_add(11);
            lc.increment(key);
            *exact.entry(key).or_default() += 1;
        }
        let n = lc.updates();
        for (key, &f) in &exact {
            assert!(lc.lower(key) <= f, "lower({key}) > truth");
            assert!(
                lc.upper(key) >= f,
                "upper({key}) < truth {f} vs {}",
                lc.upper(key)
            );
            // ε-guarantee: underestimation ≤ εN = N/cap.
            assert!(f - lc.lower(key) <= n / cap as u64 + 1);
        }
    }

    #[test]
    fn pruning_drops_stale_singletons() {
        let mut lc: LossyCounting<u64> = LossyCounting::with_capacity(10);
        // First bucket: ten distinct singletons, all with delta 0, count 1:
        // at the boundary count+delta = 1 ≤ b = 1 → all pruned.
        for k in 0..10u64 {
            lc.increment(k);
        }
        assert!(lc.is_empty(), "{} entries survived", lc.len());
    }

    #[test]
    fn persistent_heavy_key_survives_pruning() {
        let mut lc: LossyCounting<u64> = LossyCounting::with_capacity(10);
        let mut x = 17u64;
        for i in 0..1_000u64 {
            if i % 2 == 0 {
                lc.increment(42);
            } else {
                x = x.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
                lc.increment(100 + x % 500);
            }
        }
        assert!(lc.lower(&42) > 400, "heavy key nearly exact");
        assert!(lc.candidates().iter().any(|c| c.key == 42));
    }

    #[test]
    fn unseen_key_upper_is_bucket_bound() {
        let mut lc: LossyCounting<u32> = LossyCounting::with_capacity(10);
        for i in 0..100u32 {
            lc.increment(i % 3);
        }
        // b = ceil(100/10) -> after 100 updates bucket advanced to 11.
        assert_eq!(lc.upper(&999), lc.bucket - 1);
        assert_eq!(lc.lower(&999), 0);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _: LossyCounting<u32> = LossyCounting::with_capacity(0);
    }
}
