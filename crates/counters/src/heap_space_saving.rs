//! Space Saving on a binary min-heap — the ablation counterpart of the
//! stream-summary implementation.
//!
//! Same estimates and guarantees as [`crate::SpaceSaving`], but `increment`
//! costs O(log 1/ε) sift operations instead of O(1) pointer moves. The
//! `counter_ablation` bench quantifies the gap, substantiating the design
//! note in DESIGN.md that the paper's worst-case O(1) claim (Theorem 6.18)
//! needs the stream-summary structure.

use crate::fast_hash::FastMap;
use crate::{Candidate, CounterKey, FrequencyEstimator};

#[derive(Debug, Clone)]
struct Entry<K> {
    key: K,
    count: u64,
    error: u64,
}

/// Heap-based Space Saving. Prefer [`crate::SpaceSaving`] in production; this
/// type exists for benchmarking the data-structure choice.
#[derive(Debug, Clone)]
pub struct HeapSpaceSaving<K> {
    /// Min-heap on `count`; `heap[0]` is the eviction victim.
    heap: Vec<Entry<K>>,
    /// Key → heap position.
    pos: FastMap<K, usize>,
    updates: u64,
    capacity: usize,
}

impl<K: CounterKey> HeapSpaceSaving<K> {
    fn sift_down(&mut self, mut i: usize) {
        loop {
            let (l, r) = (2 * i + 1, 2 * i + 2);
            let mut smallest = i;
            if l < self.heap.len() && self.heap[l].count < self.heap[smallest].count {
                smallest = l;
            }
            if r < self.heap.len() && self.heap[r].count < self.heap[smallest].count {
                smallest = r;
            }
            if smallest == i {
                return;
            }
            self.swap(i, smallest);
            i = smallest;
        }
    }

    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if self.heap[parent].count <= self.heap[i].count {
                return;
            }
            self.swap(i, parent);
            i = parent;
        }
    }

    fn swap(&mut self, a: usize, b: usize) {
        self.heap.swap(a, b);
        self.pos.insert(self.heap[a].key, a);
        self.pos.insert(self.heap[b].key, b);
    }

    /// Validates heap order and index consistency (test helper).
    ///
    /// # Panics
    ///
    /// Panics on any inconsistency.
    #[doc(hidden)]
    pub fn debug_validate(&self) {
        for i in 1..self.heap.len() {
            let parent = (i - 1) / 2;
            assert!(
                self.heap[parent].count <= self.heap[i].count,
                "heap order violated at {i}"
            );
        }
        for (i, e) in self.heap.iter().enumerate() {
            assert_eq!(self.pos.get(&e.key), Some(&i), "position index skew");
            assert!(e.error <= e.count);
        }
        assert_eq!(self.pos.len(), self.heap.len());
    }
}

impl<K: CounterKey> FrequencyEstimator<K> for HeapSpaceSaving<K> {
    fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        Self {
            heap: Vec::with_capacity(capacity),
            pos: FastMap::default(),
            updates: 0,
            capacity,
        }
    }

    /// Same combine rule as the stream-summary merge (additive count+error
    /// pairing with min-count padding, re-eviction to capacity), so the
    /// merged bound is the documented sum of the two inputs' bounds. The
    /// count-ascending entry list is already a valid min-heap (every parent
    /// index precedes — hence bounds — its children), so the rebuild is one
    /// pass with no sifting.
    fn merge(&mut self, other: Self) {
        assert_eq!(
            self.capacity, other.capacity,
            "merge requires equal capacities"
        );
        let min_self = match self.pos.len() < self.capacity {
            true => 0,
            false => self.heap.first().map_or(0, |e| e.count),
        };
        let min_other = match other.pos.len() < other.capacity {
            true => 0,
            false => other.heap.first().map_or(0, |e| e.count),
        };
        let (entries, _) = crate::merge_entries_many(
            &[
                (self.candidates(), min_self),
                (other.candidates(), min_other),
            ],
            self.capacity,
        );
        self.updates += other.updates;
        self.heap = entries
            .iter()
            .map(|&(key, count, error)| Entry { key, count, error })
            .collect();
        self.pos.clear();
        for (i, &(key, _, _)) in entries.iter().enumerate() {
            self.pos.insert(key, i);
        }
    }

    fn increment(&mut self, key: K) {
        self.updates += 1;
        if let Some(&i) = self.pos.get(&key) {
            self.heap[i].count += 1;
            self.sift_down(i);
            return;
        }
        if self.heap.len() < self.capacity {
            self.heap.push(Entry {
                key,
                count: 1,
                error: 0,
            });
            let i = self.heap.len() - 1;
            self.pos.insert(key, i);
            self.sift_up(i);
            return;
        }
        // Evict the root (minimum).
        let victim = self.heap[0].key;
        self.pos.remove(&victim);
        let root = &mut self.heap[0];
        root.error = root.count;
        root.count += 1;
        root.key = key;
        self.pos.insert(key, 0);
        self.sift_down(0);
    }

    fn add(&mut self, key: K, weight: u64) {
        if weight == 0 {
            return;
        }
        self.updates += weight;
        if let Some(&i) = self.pos.get(&key) {
            self.heap[i].count += weight;
            self.sift_down(i);
            return;
        }
        if self.heap.len() < self.capacity {
            self.heap.push(Entry {
                key,
                count: weight,
                error: 0,
            });
            let i = self.heap.len() - 1;
            self.pos.insert(key, i);
            self.sift_up(i);
            return;
        }
        let victim = self.heap[0].key;
        self.pos.remove(&victim);
        let root = &mut self.heap[0];
        root.error = root.count;
        root.count += weight;
        root.key = key;
        self.pos.insert(key, 0);
        self.sift_down(0);
    }

    fn increment_batch(&mut self, keys: &[K]) {
        // Run-length merge, mirroring the stream-summary override: one
        // index lookup and one sift per run of equal consecutive keys, so
        // the ablation benches compare batch against batch rather than
        // batch against the default per-element loop.
        crate::for_each_run(keys, |key, run| self.add(key, run));
    }

    fn updates(&self) -> u64 {
        self.updates
    }

    fn upper(&self, key: &K) -> u64 {
        match self.pos.get(key) {
            Some(&i) => self.heap[i].count,
            None if self.heap.len() < self.capacity => 0,
            None => self.heap.first().map_or(0, |e| e.count),
        }
    }

    fn lower(&self, key: &K) -> u64 {
        match self.pos.get(key) {
            Some(&i) => self.heap[i].count - self.heap[i].error,
            None => 0,
        }
    }

    fn candidates(&self) -> Vec<Candidate<K>> {
        self.heap
            .iter()
            .map(|e| Candidate {
                key: e.key,
                upper: e.count,
                lower: e.count - e.error,
            })
            .collect()
    }

    fn capacity(&self) -> usize {
        self.capacity
    }

    fn layout_label(&self) -> &'static str {
        "heap"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SpaceSaving;
    use std::collections::HashMap;

    /// Drives both Space Saving variants with the same stream and checks
    /// they produce identical counts for every monitored key (the
    /// structures are semantically equivalent; only tie-breaking among
    /// equal-count victims may differ, so we compare bounds not victims).
    #[test]
    fn agrees_with_stream_summary_on_bounds() {
        let cap = 8;
        let mut heap: HeapSpaceSaving<u64> = HeapSpaceSaving::with_capacity(cap);
        let mut list: SpaceSaving<u64> = SpaceSaving::with_capacity(cap);
        let mut exact: HashMap<u64, u64> = HashMap::new();
        let mut x = 99u64;
        for _ in 0..5_000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let key = x % 40;
            heap.increment(key);
            list.increment(key);
            *exact.entry(key).or_default() += 1;
        }
        let n = heap.updates();
        assert_eq!(n, list.updates());
        for (key, &f) in &exact {
            for (upper, lower) in [
                (heap.upper(key), heap.lower(key)),
                (list.upper(key), list.lower(key)),
            ] {
                assert!(upper >= f);
                assert!(lower <= f);
                assert!(upper <= f + n / cap as u64);
            }
        }
        heap.debug_validate();
        list.debug_validate();
    }

    #[test]
    fn exact_below_capacity() {
        let mut h: HeapSpaceSaving<u32> = HeapSpaceSaving::with_capacity(4);
        for _ in 0..7 {
            h.increment(1);
        }
        h.increment(2);
        assert_eq!(h.upper(&1), 7);
        assert_eq!(h.lower(&1), 7);
        assert_eq!(h.upper(&3), 0);
        h.debug_validate();
    }

    #[test]
    fn eviction_takes_minimum() {
        let mut h: HeapSpaceSaving<u32> = HeapSpaceSaving::with_capacity(2);
        h.increment(1);
        h.increment(1);
        h.increment(2);
        h.increment(3); // evicts 2 (count 1)
        assert_eq!(h.upper(&3), 2);
        assert_eq!(h.lower(&3), 1);
        assert!(!h.pos.contains_key(&2));
        h.debug_validate();
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _: HeapSpaceSaving<u32> = HeapSpaceSaving::with_capacity(0);
    }
}
