//! Cuckoo Heavy Keeper: a bucketized two-choice cuckoo table whose slots
//! carry HeavyKeeper-style exponential-decay counts.
//!
//! The Space Saving layouts in this crate guard their guarantees with
//! strict minimum evictions: every miss on a full summary steals the
//! global-minimum slot and inherits its count as error. That is exactly
//! the wrong trade in hit-light, eviction-heavy regimes (the tail nodes of
//! an RHHH lattice under churny traffic), where the minimum machinery
//! churns on keys that will never matter. Cuckoo Heavy Keeper (arXiv
//! 2412.12873) takes the opposite bet: keys live in a cuckoo hash table
//! for O(1) two-bucket lookup, and a miss on a full neighbourhood does
//! *not* evict — it plays a biased coin against the locally minimal
//! count, decaying it with probability `b^-count` (b = 1.08). Tail keys
//! rarely win the coin flip against an established heavy, so heavies sit
//! undisturbed while the tail churns against itself.
//!
//! # Layout
//!
//! The table is a power-of-two array of 8-slot buckets, split SoA like
//! [`crate::CompactSpaceSaving`]'s arena: one 7-bit tag byte per slot
//! (high bit = empty, so the SWAR probes of `tagged_table` apply
//! unchanged) and a hot `(key, count)` lane. A key hashes to bucket
//! `b₁ = h & mask` with tag `h >> 57`; its alternate bucket is
//! `b₂ = b₁ ^ spread(tag)`, the standard partial-key cuckoo involution.
//! A probe reads both buckets' tag words (two aligned `u64` loads) and
//! confirms tag matches against the key lane. Inserts fill an empty slot
//! in either bucket, then try a single cuckoo relocation (move one
//! resident to *its* alternate bucket), and only then fall back to decay.
//! The number of occupied slots is capped at `capacity`, so a
//! `CuckooHeavyKeeper` never holds more counters than the Space Saving
//! layouts it is benchmarked against, even though the table itself is
//! sized at twice that for low-collision probing.
//!
//! # Estimate semantics — underestimates plus a mass-deficit bound
//!
//! Counts only ever grow by *genuine, currently-attributed* occurrences:
//! a hit adds its full weight, a takeover starts from the new key's own
//! remaining weight, and decay only shrinks counts. Hence for every key
//! `count(x) ≤ X_x` — the opposite one-sided error of Space Saving — and
//! the structure keeps an exact ledger of everything it failed to
//! attribute: `deficit = updates − Σ counts`. Since
//! `Σ_y (X_y − count(y)) = deficit` with every term non-negative,
//!
//! * `lower(x) = count(x)` and
//! * `upper(x) = count(x) + deficit`
//!
//! sandwich the true count *deterministically*, for monitored and absent
//! keys alike — the same shape as [`crate::MisraGries`]'s deficit bound,
//! without the `1/(k+1)` sharpening (decay removes mass one counter at a
//! time, so the deficit cannot be split). The deficit is data-dependent:
//! near zero on concentrated streams, up to `ε·N`-class on the adversarial
//! tail-heavy ones the HeavyKeeper analysis covers, and the differential
//! suite pins the sandwich (plus heavy-hitter retention) against an exact
//! oracle on four stream shapes.
//!
//! # Merging
//!
//! Merge is supported with a *documented* (not Space-Saving-exact) bound:
//! counts for the same key sum across shards (sums of underestimates
//! underestimate the concatenated stream), the union is re-inserted in
//! descending count order, and any entry that finds no slot — capacity or
//! an unresolvable bucket conflict — returns its mass to the deficit. The
//! merged deficit is therefore at most the sum of the shard deficits plus
//! the dropped mass, and the sandwich above holds for the concatenated
//! stream by the same ledger argument.
//!
//! # Determinism
//!
//! Decay coin flips come from an instance-local wyrand stream with a fixed
//! seed, so identical update sequences produce identical tables —
//! `increment_batch` is bit-equivalent to per-key `increment` for runs up
//! to [`MAX_DECAY_TRIALS`] (a weighted miss caps its coin flips there and
//! drops the untried remainder into the deficit, keeping worst-case
//! per-update work O(1)).

use std::hash::BuildHasher;

use crate::fast_hash::IntHashBuilder;
use crate::mix::{hash_u64, wyrand_mix, WY_ADD};
use crate::tagged_table::{zero_bytes, HotSlot, EMPTY};
use crate::{for_each_run, Candidate, CounterKey, FrequencyEstimator};

/// Slots per bucket: one aligned tag word per bucket.
const BUCKET: usize = 8;

/// `0x80` in every lane — the per-byte empty marker, SWAR-broadcast.
const LANES_EMPTY: u64 = 0x8080_8080_8080_8080;

/// `0x01` in every lane, for broadcasting a tag byte.
const LANES_LO: u64 = 0x0101_0101_0101_0101;

/// Decay coin flips a single miss may spend, however heavy its weight.
/// Beyond this the remaining weight is dropped into the deficit: the
/// sandwich is unaffected (unattributed mass is exactly what the deficit
/// covers) and per-update work stays O(1). Scalar feeds never reach the
/// cap, so batch/scalar bit-equivalence holds for runs up to it.
pub const MAX_DECAY_TRIALS: u64 = 64;

/// HeavyKeeper's decay base: a count-`c` slot decays with probability
/// `DECAY_BASE^-c`.
const DECAY_BASE: f64 = 1.08;

/// Counts at or above this never decay (`1.08^-220 < 5e-9`; the threshold
/// table rounds to zero there, which is sound — less decay only moves
/// mass from the deficit back into attributed counts).
const DECAY_TABLE: usize = 256;

/// `threshold[c] = ⌊DECAY_BASE^-c · 2⁶⁴⌋`: a wyrand draw below it is a
/// successful decay. Shared by every instance (it depends only on the
/// base), built once.
fn decay_threshold(count: u64) -> u64 {
    static TABLE: std::sync::OnceLock<[u64; DECAY_TABLE]> = std::sync::OnceLock::new();
    let table = TABLE.get_or_init(|| {
        std::array::from_fn(|c| {
            let p = DECAY_BASE.powi(-(c as i32));
            // `p == 1.0` (c = 0) must saturate, not wrap.
            if p >= 1.0 {
                u64::MAX
            } else {
                (p * u64::MAX as f64) as u64
            }
        })
    });
    table.get(count as usize).copied().unwrap_or(0)
}

/// See the [module docs](self).
#[derive(Debug, Clone)]
pub struct CuckooHeavyKeeper<K> {
    /// One tag byte per slot, bucket-aligned (8 per bucket, no mirror
    /// bytes — bucket windows never straddle).
    tags: Vec<u8>,
    /// The `(key, count)` lane; `count == 0` marks a free slot, in
    /// lockstep with the tag.
    slots: Vec<HotSlot<K>>,
    /// `bucket count − 1` (bucket count is a power of two).
    bucket_mask: usize,
    /// Maximum occupied slots — the advertised counter budget.
    capacity: usize,
    /// Occupied slots.
    len: usize,
    /// Total weight processed.
    updates: u64,
    /// `Σ counts` — maintained incrementally so `deficit()` is O(1).
    stored: u64,
    /// wyrand state for decay coin flips; fixed seed for determinism.
    rng: u64,
    hasher: IntHashBuilder,
}

impl<K: CounterKey> CuckooHeavyKeeper<K> {
    /// Unattributed mass: `updates − Σ counts`. The deterministic additive
    /// error of every estimate this instance reports (see module docs).
    #[must_use]
    pub fn deficit(&self) -> u64 {
        self.updates - self.stored
    }

    /// Number of monitored keys.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether nothing is monitored yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether `key` currently occupies a slot. Read-only (no decay, no
    /// RNG advance) — the dispatch wrapper's regime sampling relies on
    /// probes being free of side effects.
    #[doc(hidden)]
    #[must_use]
    pub fn monitored(&self, key: &K) -> bool {
        if self.slots.is_empty() {
            return false;
        }
        let (b1, b2, tag) = self.route(key);
        self.find_in_bucket(b1, tag, key)
            .or_else(|| self.find_in_bucket(b2, tag, key))
            .is_some()
    }

    /// `(key, count)` for every occupied slot, slot order. Raw counts —
    /// the migration and merge paths want them without the deficit folded
    /// in.
    pub(crate) fn raw_entries(&self) -> Vec<(K, u64)> {
        self.slots
            .iter()
            .filter(|s| s.count > 0)
            .map(|s| (s.key, s.count))
            .collect()
    }

    /// Builds an instance holding `entries` (distinct keys, descending
    /// insertion works best) with the update ledger forced to `updates`.
    /// Entries that find no slot are dropped — their mass lands in the
    /// deficit, which is exactly the documented migration/merge bound.
    pub(crate) fn from_entries(capacity: usize, updates: u64, entries: &[(K, u64)]) -> Self {
        let mut fresh = Self::with_capacity(capacity);
        fresh.updates = updates;
        for &(key, count) in entries {
            if count > 0 {
                fresh.insert_entry(key, count);
            }
        }
        fresh
    }

    /// `(b₁, b₂, tag)` for a key.
    #[inline]
    fn route(&self, key: &K) -> (usize, usize, u8) {
        let h = self.hasher.hash_one(key);
        let b1 = (h as usize) & self.bucket_mask;
        let tag = (h >> 57) as u8;
        (b1, self.alt_bucket(b1, tag), tag)
    }

    /// The partial-key cuckoo involution: either bucket of a tag maps to
    /// the other. `spread` re-hashes the 7-bit tag so alternates scatter
    /// across the table instead of clustering at small xor offsets.
    #[inline]
    fn alt_bucket(&self, bucket: usize, tag: u8) -> usize {
        bucket ^ (hash_u64(u64::from(tag) | 0x80) as usize & self.bucket_mask)
    }

    /// The bucket's 8 tag bytes as one little-endian word.
    #[inline]
    fn tag_word(&self, bucket: usize) -> u64 {
        let base = bucket * BUCKET;
        u64::from_le_bytes(self.tags[base..base + BUCKET].try_into().unwrap())
    }

    /// Slot index of `key` within `bucket`, if present: SWAR tag match,
    /// then key-lane confirm (tags are 7-bit, so false positives cost one
    /// compare).
    #[inline]
    fn find_in_bucket(&self, bucket: usize, tag: u8, key: &K) -> Option<usize> {
        let mut m = zero_bytes(self.tag_word(bucket) ^ (u64::from(tag) * LANES_LO));
        while m != 0 {
            let i = bucket * BUCKET + (m.trailing_zeros() as usize >> 3);
            if self.slots[i].key == *key && self.slots[i].count > 0 {
                return Some(i);
            }
            m &= m - 1;
        }
        None
    }

    /// First free slot in `bucket`, if any.
    #[inline]
    fn empty_in_bucket(&self, bucket: usize) -> Option<usize> {
        let m = self.tag_word(bucket) & LANES_EMPTY;
        if m == 0 {
            None
        } else {
            Some(bucket * BUCKET + (m.trailing_zeros() as usize >> 3))
        }
    }

    /// Lazily allocates the table on the first key (`HotSlot` needs a
    /// filler key value, as in `TaggedTable::init`).
    fn ensure_init(&mut self, filler: K) {
        if self.slots.is_empty() {
            let slots = (self.capacity * 2).next_power_of_two().max(2 * BUCKET);
            self.tags = vec![EMPTY; slots];
            self.slots = vec![
                HotSlot {
                    key: filler,
                    count: 0,
                };
                slots
            ];
            self.bucket_mask = slots / BUCKET - 1;
        }
    }

    /// Writes `key` into free slot `i`.
    #[inline]
    fn install(&mut self, i: usize, tag: u8, key: K, count: u64) {
        debug_assert_eq!(self.slots[i].count, 0);
        self.tags[i] = tag;
        self.slots[i] = HotSlot { key, count };
        self.stored += count;
        self.len += 1;
    }

    /// One cuckoo kick: move some resident of `b1`/`b2` to its own
    /// alternate bucket if that has space, freeing a slot here. A single
    /// relocation level (no kick chains) keeps the miss path O(1); deeper
    /// conflicts fall through to decay, which the deficit covers.
    fn relocate(&mut self, b1: usize, b2: usize) -> Option<usize> {
        for bucket in [b1, b2] {
            for lane in 0..BUCKET {
                let i = bucket * BUCKET + lane;
                let tag = self.tags[i];
                if tag == EMPTY {
                    continue;
                }
                let alt = self.alt_bucket(bucket, tag);
                if alt == bucket {
                    continue;
                }
                if let Some(j) = self.empty_in_bucket(alt) {
                    self.tags[j] = tag;
                    self.slots[j] = self.slots[i];
                    self.tags[i] = EMPTY;
                    self.slots[i].count = 0;
                    return Some(i);
                }
            }
        }
        None
    }

    /// Index of the minimal occupied slot among both buckets (ties break
    /// to the lowest index, for determinism). `None` only if both buckets
    /// are entirely free, which the caller excludes.
    fn min_slot(&self, b1: usize, b2: usize) -> Option<usize> {
        let mut best: Option<usize> = None;
        for bucket in [b1, b2] {
            for lane in 0..BUCKET {
                let i = bucket * BUCKET + lane;
                let c = self.slots[i].count;
                if c > 0 && best.is_none_or(|b| c < self.slots[b].count) {
                    best = Some(i);
                }
            }
        }
        best
    }

    /// The HeavyKeeper miss path: spend up to `min(weight,
    /// MAX_DECAY_TRIALS)` coin flips decaying the locally minimal count;
    /// if it reaches zero, the new key takes the slot with all remaining
    /// weight. Unspent weight is left unattributed (deficit).
    fn decay_insert(&mut self, b1: usize, b2: usize, tag: u8, key: K, weight: u64) {
        let mut remaining = weight;
        let mut trials = MAX_DECAY_TRIALS;
        while remaining > 0 && trials > 0 {
            // Re-selected per flip: a decay can change which slot is
            // minimal, and the scalar path re-selects per increment —
            // keeping them identical is what the differential suite pins.
            let Some(i) = self.min_slot(b1, b2) else {
                // Both buckets entirely free yet the counter budget is
                // spent elsewhere: no local victim to decay. Leave the
                // mass unattributed — the deficit covers it.
                return;
            };
            let count = self.slots[i].count;
            self.rng = self.rng.wrapping_add(WY_ADD);
            if wyrand_mix(self.rng) < decay_threshold(count) {
                self.slots[i].count -= 1;
                self.stored -= 1;
                if self.slots[i].count == 0 {
                    // Takeover: the dying key's slot, the new key's mass.
                    self.tags[i] = tag;
                    self.slots[i] = HotSlot {
                        key,
                        count: remaining,
                    };
                    self.stored += remaining;
                    return;
                }
            }
            remaining -= 1;
            trials -= 1;
        }
    }

    /// The single update path: hit → bump; miss → empty slot, one cuckoo
    /// kick, or decay, in that order.
    fn apply(&mut self, key: K, weight: u64) {
        self.ensure_init(key);
        self.updates += weight;
        let (b1, b2, tag) = self.route(&key);
        if let Some(i) = self
            .find_in_bucket(b1, tag, &key)
            .or_else(|| self.find_in_bucket(b2, tag, &key))
        {
            self.slots[i].count += weight;
            self.stored += weight;
            return;
        }
        if self.len < self.capacity {
            if let Some(i) = self
                .empty_in_bucket(b1)
                .or_else(|| self.empty_in_bucket(b2))
            {
                self.install(i, tag, key, weight);
                return;
            }
            if let Some(i) = self.relocate(b1, b2) {
                self.install(i, tag, key, weight);
                return;
            }
        }
        self.decay_insert(b1, b2, tag, key, weight);
    }

    /// Slot index of a monitored key (None when absent).
    fn lookup(&self, key: &K) -> Option<usize> {
        if self.slots.is_empty() {
            return None;
        }
        let (b1, b2, tag) = self.route(key);
        self.find_in_bucket(b1, tag, key)
            .or_else(|| self.find_in_bucket(b2, tag, key))
    }

    /// Checks every structural invariant; test-only.
    #[doc(hidden)]
    pub fn debug_validate(&self) {
        let mut stored = 0;
        let mut len = 0;
        for (i, slot) in self.slots.iter().enumerate() {
            let occupied = self.tags[i] != EMPTY;
            assert_eq!(occupied, slot.count > 0, "tag/count lockstep at {i}");
            if !occupied {
                continue;
            }
            stored += slot.count;
            len += 1;
            let (b1, b2, tag) = self.route(&slot.key);
            let bucket = i / BUCKET;
            assert!(
                bucket == b1 || bucket == b2,
                "slot {i} outside its key's buckets"
            );
            assert_eq!(self.tags[i], tag, "stored tag mismatch at {i}");
        }
        assert_eq!(stored, self.stored, "stored ledger");
        assert_eq!(len, self.len, "len ledger");
        assert!(self.len <= self.capacity, "over capacity");
        assert!(self.stored <= self.updates, "counts exceed updates");
    }

    /// Inserts a distinct `(key, count)` during merge/migration rebuild;
    /// returns whether a slot was found (drops are the caller's deficit).
    fn insert_entry(&mut self, key: K, count: u64) -> bool {
        debug_assert!(count > 0);
        self.ensure_init(key);
        if self.len >= self.capacity {
            return false;
        }
        let (b1, b2, tag) = self.route(&key);
        debug_assert!(self.find_in_bucket(b1, tag, &key).is_none());
        if let Some(i) = self
            .empty_in_bucket(b1)
            .or_else(|| self.empty_in_bucket(b2))
        {
            self.install(i, tag, key, count);
            return true;
        }
        if let Some(i) = self.relocate(b1, b2) {
            self.install(i, tag, key, count);
            return true;
        }
        false
    }
}

impl<K: CounterKey> FrequencyEstimator<K> for CuckooHeavyKeeper<K> {
    fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        Self {
            tags: Vec::new(),
            slots: Vec::new(),
            bucket_mask: 0,
            capacity,
            len: 0,
            updates: 0,
            stored: 0,
            rng: 0x5EED_C4CC_0000_0001,
            hasher: IntHashBuilder,
        }
    }

    #[inline]
    fn increment(&mut self, key: K) {
        self.apply(key, 1);
    }

    #[inline]
    fn add(&mut self, key: K, weight: u64) {
        if weight == 0 {
            return;
        }
        self.apply(key, weight);
    }

    fn increment_batch(&mut self, keys: &[K]) {
        // One probe per run of equal consecutive keys; bit-identical to
        // the scalar loop for runs up to MAX_DECAY_TRIALS (module docs).
        for_each_run(keys, |key, run| self.apply(key, run));
    }

    fn flush_group_evicting_with(&mut self, keys: &mut [K], sort: &mut dyn FnMut(&mut [K])) {
        // The caller's radix sort groups duplicates into runs; any
        // ascending order leaves the same state as `flush_group`.
        sort(keys);
        self.increment_batch(keys);
    }

    fn merge(&mut self, other: Self) {
        self.merge_many(vec![other]);
    }

    fn merge_many(&mut self, others: Vec<Self>) {
        if others.is_empty() {
            return;
        }
        // Documented-bound merge (module docs): per-key count sums stay
        // underestimates of the concatenated stream; re-inserted largest
        // first so capacity/conflict drops hit the smallest counts; every
        // drop returns to the deficit, which prices the merge.
        let mut updates = self.updates;
        let mut entries = self.raw_entries();
        for other in &others {
            assert_eq!(
                self.capacity, other.capacity,
                "merge requires equal capacities"
            );
            updates += other.updates;
            entries.extend(other.raw_entries());
        }
        entries.sort_unstable_by_key(|a| a.0);
        let mut summed: Vec<(K, u64)> = Vec::with_capacity(entries.len());
        for &(key, count) in &entries {
            match summed.last_mut() {
                Some(last) if last.0 == key => last.1 += count,
                _ => summed.push((key, count)),
            }
        }
        // Descending count, key tie-break: deterministic drop order.
        summed.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        let mut fresh = Self::from_entries(self.capacity, updates, &summed);
        // Continue self's decay stream rather than restarting the seed.
        fresh.rng = self.rng;
        *self = fresh;
    }

    fn updates(&self) -> u64 {
        self.updates
    }

    fn upper(&self, key: &K) -> u64 {
        let count = self.lookup(key).map_or(0, |i| self.slots[i].count);
        count + self.deficit()
    }

    fn lower(&self, key: &K) -> u64 {
        self.lookup(key).map_or(0, |i| self.slots[i].count)
    }

    fn candidates(&self) -> Vec<Candidate<K>> {
        let deficit = self.deficit();
        self.slots
            .iter()
            .filter(|s| s.count > 0)
            .map(|s| Candidate {
                key: s.key,
                upper: s.count + deficit,
                lower: s.count,
            })
            .collect()
    }

    fn capacity(&self) -> usize {
        self.capacity
    }

    fn error_bound(&self) -> u64 {
        // Data-dependent deterministic bound: the whole unattributed mass
        // (see module docs); `updates/capacity` does not hold for decay
        // counters.
        self.deficit()
    }

    fn layout_label(&self) -> &'static str {
        "chk"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn oracle(keys: &[u64]) -> HashMap<u64, u64> {
        let mut m = HashMap::new();
        for &k in keys {
            *m.entry(k).or_insert(0) += 1;
        }
        m
    }

    fn assert_sandwich(chk: &CuckooHeavyKeeper<u64>, truth: &HashMap<u64, u64>) {
        for (&k, &t) in truth {
            assert!(chk.lower(&k) <= t, "lower({k}) = {} > {t}", chk.lower(&k));
            assert!(chk.upper(&k) >= t, "upper({k}) = {} < {t}", chk.upper(&k));
        }
        // Absent key: lower 0, upper is exactly the unattributed deficit.
        assert_eq!(chk.lower(&u64::MAX), 0);
        assert_eq!(chk.upper(&u64::MAX), chk.error_bound());
    }

    #[test]
    fn exact_until_capacity() {
        let mut chk = CuckooHeavyKeeper::<u64>::with_capacity(64);
        let keys: Vec<u64> = (0..64).flat_map(|k| std::iter::repeat_n(k, 3)).collect();
        for &k in &keys {
            chk.increment(k);
        }
        chk.debug_validate();
        assert_eq!(chk.deficit(), 0, "no decay below capacity");
        for k in 0..64 {
            assert_eq!(chk.lower(&k), 3);
            assert_eq!(chk.upper(&k), 3);
        }
    }

    #[test]
    fn heavy_keys_survive_tail_churn() {
        let mut chk = CuckooHeavyKeeper::<u64>::with_capacity(32);
        // Establish 8 heavies, then churn 50k distinct tail keys past them.
        for k in 0..8u64 {
            chk.add(k, 1_000);
        }
        for i in 0..50_000u64 {
            chk.increment(0x1_0000 + i);
        }
        chk.debug_validate();
        for k in 0..8u64 {
            let c = chk.lower(&k);
            assert!(c > 900, "heavy {k} decayed to {c}");
        }
    }

    #[test]
    fn sandwich_holds_on_all_stream_shapes() {
        type Shaper = Box<dyn Fn(u64) -> u64>;
        let shapes: [(&str, Shaper); 4] = [
            ("random", Box::new(|i| hash_u64(i) % 512)),
            // Power-law-ish: key j with weight ~ 1/(j+1).
            (
                "zipf",
                Box::new(|i| u64::from((hash_u64(i) % 4096 + 1).ilog2())),
            ),
            ("distinct", Box::new(|i| i)),
            // Phase change: distinct churn, then a concentrated phase.
            ("phase", Box::new(|i| if i < 4_000 { i } else { i % 16 })),
        ];
        for (name, shape) in shapes {
            let keys: Vec<u64> = (0..8_000).map(&shape).collect();
            let mut chk = CuckooHeavyKeeper::<u64>::with_capacity(64);
            for &k in &keys {
                chk.increment(k);
            }
            chk.debug_validate();
            let truth = oracle(&keys);
            assert_sandwich(&chk, &truth);
            assert_eq!(
                chk.error_bound(),
                chk.updates() - chk.candidates().iter().map(|c| c.lower).sum::<u64>(),
                "{name}: deficit ledger"
            );
        }
    }

    #[test]
    fn batch_matches_scalar_bitwise() {
        let keys: Vec<u64> = (0..6_000u64).map(|i| hash_u64(i) % 300).collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        let mut scalar = CuckooHeavyKeeper::<u64>::with_capacity(48);
        for &k in &sorted {
            scalar.increment(k);
        }
        let mut batch = CuckooHeavyKeeper::<u64>::with_capacity(48);
        batch.increment_batch(&sorted);
        assert_eq!(format!("{scalar:?}"), format!("{batch:?}"));
    }

    #[test]
    fn weighted_add_is_sound_and_bounded() {
        let mut chk = CuckooHeavyKeeper::<u64>::with_capacity(16);
        // Fill, then a huge weighted miss: must not loop O(w), must stay
        // inside the ledger.
        for k in 0..16u64 {
            chk.add(k, 100);
        }
        chk.add(999, 1 << 40);
        chk.debug_validate();
        assert_eq!(chk.updates(), 1_600 + (1 << 40));
        assert!(chk.upper(&999) >= 1 << 40);
    }

    #[test]
    fn merge_keeps_sandwich_over_concatenation() {
        let a_keys: Vec<u64> = (0..5_000u64).map(|i| hash_u64(i) % 200).collect();
        let b_keys: Vec<u64> = (0..5_000u64).map(|i| hash_u64(i ^ 0xABCD) % 350).collect();
        let mut a = CuckooHeavyKeeper::<u64>::with_capacity(64);
        let mut b = CuckooHeavyKeeper::<u64>::with_capacity(64);
        for &k in &a_keys {
            a.increment(k);
        }
        for &k in &b_keys {
            b.increment(k);
        }
        let before: u64 = a.updates() + b.updates();
        a.merge(b);
        a.debug_validate();
        assert_eq!(a.updates(), before);
        let mut all = a_keys;
        all.extend(b_keys);
        assert_sandwich(&a, &oracle(&all));
    }

    #[test]
    fn top_key_estimate_is_tight_on_skewed_streams() {
        // The documented HeavyKeeper behaviour this repo relies on: on a
        // concentrated stream the heavy key's count converges near-exact.
        let keys: Vec<u64> = (0..20_000u64)
            .map(|i| if i % 3 == 0 { 7 } else { hash_u64(i) % 2_000 })
            .collect();
        let mut chk = CuckooHeavyKeeper::<u64>::with_capacity(64);
        chk.increment_batch(&{
            let mut s = keys.clone();
            s.sort_unstable();
            s
        });
        let truth = oracle(&keys)[&7];
        let est = chk.lower(&7);
        assert!(
            est as f64 >= truth as f64 * 0.9,
            "top key underestimated: {est} vs {truth}"
        );
        assert!(est <= truth);
    }

    #[test]
    fn monitored_probe_has_no_side_effects() {
        let mut chk = CuckooHeavyKeeper::<u64>::with_capacity(8);
        for k in 0..8u64 {
            chk.add(k, 5);
        }
        for i in 0..100u64 {
            chk.increment(1_000 + i);
        }
        let before = format!("{chk:?}");
        for i in 0..2_000u64 {
            let _ = chk.monitored(&i);
        }
        assert_eq!(before, format!("{chk:?}"));
    }
}
