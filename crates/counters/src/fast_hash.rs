//! A small, fast hasher for integer keys.
//!
//! The per-packet path hashes one packed integer key per update; SipHash
//! (std's default) costs more than the rest of the update combined. This is
//! an FxHash-style multiply-fold hasher: not DoS-resistant, which is an
//! explicit non-goal — the keys are IP prefixes already attacker-visible,
//! and the counter algorithms' guarantees do not depend on hash quality
//! (only the Count-Min sketch does, and it uses its own seeded row hashes).
//!
//! The mixing arithmetic itself lives in [`crate::mix`], shared with the
//! batch front end's block hashing; this module is the `Hasher` adapter
//! over it. `hash_u64(v)` through this hasher and [`crate::mix::hash_u64`]
//! are the same function.

use crate::mix;
use std::hash::{BuildHasher, Hasher};

/// Multiply-fold hasher over the written words.
#[derive(Debug, Default, Clone)]
pub struct FastHasher {
    state: u64,
}

impl FastHasher {
    #[inline(always)]
    fn fold(&mut self, word: u64) {
        self.state = mix::fx_fold(self.state, word);
    }
}

impl Hasher for FastHasher {
    #[inline(always)]
    fn finish(&self) -> u64 {
        mix::fmix64(self.state)
    }

    #[inline(always)]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.fold(u64::from_le_bytes(buf));
        }
    }

    #[inline(always)]
    fn write_u32(&mut self, v: u32) {
        self.fold(u64::from(v));
    }

    #[inline(always)]
    fn write_u64(&mut self, v: u64) {
        self.fold(v);
    }

    #[inline(always)]
    fn write_u128(&mut self, v: u128) {
        self.fold(v as u64);
        self.fold((v >> 64) as u64);
    }

    #[inline(always)]
    fn write_usize(&mut self, v: usize) {
        self.fold(v as u64);
    }

    #[inline(always)]
    fn write_u8(&mut self, v: u8) {
        self.fold(u64::from(v));
    }

    #[inline(always)]
    fn write_u16(&mut self, v: u16) {
        self.fold(u64::from(v));
    }
}

/// `BuildHasher` for [`FastHasher`]; use as the `S` parameter of `HashMap`.
#[derive(Debug, Default, Clone, Copy)]
pub struct IntHashBuilder;

impl BuildHasher for IntHashBuilder {
    type Hasher = FastHasher;

    #[inline(always)]
    fn build_hasher(&self) -> FastHasher {
        FastHasher::default()
    }
}

/// Convenience alias used by the counter implementations.
pub(crate) type FastMap<K, V> = std::collections::HashMap<K, V, IntHashBuilder>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn hash_u64(v: u64) -> u64 {
        let mut h = FastHasher::default();
        h.write_u64(v);
        h.finish()
    }

    #[test]
    fn deterministic() {
        assert_eq!(hash_u64(42), hash_u64(42));
        assert_ne!(hash_u64(42), hash_u64(43));
    }

    #[test]
    fn low_entropy_prefix_keys_spread() {
        // Masked prefix keys share their low bits (all zero); make sure the
        // hashes still differ in the low-order bits HashMap uses.
        let mut low_bits = HashSet::new();
        for i in 0u64..4096 {
            let key = i << 40; // only high bits vary, like /24 prefixes
            low_bits.insert(hash_u64(key) & 0xFFF);
        }
        // With 4096 samples into 4096 buckets a decent hash fills most
        // buckets; a catastrophic one collapses to a handful.
        assert!(low_bits.len() > 2000, "only {} distinct", low_bits.len());
    }

    #[test]
    fn u128_uses_both_halves() {
        let mut a = FastHasher::default();
        a.write_u128(1);
        let mut b = FastHasher::default();
        b.write_u128(1u128 << 64);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn byte_slices_hash_consistently() {
        let mut a = FastHasher::default();
        a.write(b"hello world");
        let mut b = FastHasher::default();
        b.write(b"hello world");
        assert_eq!(a.finish(), b.finish());
        let mut c = FastHasher::default();
        c.write(b"hello worle");
        assert_ne!(a.finish(), c.finish());
    }

    #[test]
    fn works_in_hashmap() {
        let mut m: FastMap<u64, u32> = FastMap::default();
        for i in 0..1000 {
            m.insert(i, i as u32);
        }
        assert_eq!(m.len(), 1000);
        assert_eq!(m[&500], 500);
    }
}
