//! Heavy-hitter counter algorithms — the per-lattice-node substrate of RHHH.
//!
//! The paper plugs one instance of a counter algorithm into every lattice
//! node (Section 3.2, following the structure of Mitzenmacher et al.). Any
//! algorithm that solves the **(ε, δ)-Frequency Estimation** problem of
//! Definition 4 works:
//!
//! > an algorithm solves (ε, δ)-Frequency Estimation if for any prefix `x`
//! > it provides `f̂_x` such that `Pr(|f_x − f̂_x| ≤ εN) ≥ 1 − δ`.
//!
//! The paper uses **Space Saving** "because it is believed to have an
//! empirical edge over other algorithms" and because its unit update is
//! O(1) worst-case — which is what makes RHHH's whole update O(1)
//! (Theorem 6.18). This crate provides:
//!
//! * [`SpaceSaving`] — the classic stream-summary implementation with true
//!   O(1) worst-case updates (doubly linked count buckets, Metwally et al.
//!   2005).
//! * [`CompactSpaceSaving`] — the same semantics on a tagged SoA arena:
//!   a SwissTable-style 1-byte fingerprint array probed ahead of
//!   temperature-split slot lanes, so misses resolve from the
//!   (L1-resident) tag bytes alone, with a lazily-maintained exact
//!   minimum over a multi-level window of the dense hot lane replacing
//!   the bucket lists (amortized O(1), see the
//!   [module docs](compact_space_saving)).
//! * [`HeapSpaceSaving`] — the same semantics on a binary heap
//!   (O(log 1/ε) updates); kept as an ablation target.
//! * [`MisraGries`] — the Frequent algorithm (deterministic underestimates,
//!   amortized O(1)).
//! * [`LossyCounting`] — Manku–Motwani buckets (deterministic, δ = 0).
//! * [`CountMin`] — a Count-Min sketch with a candidate list, the
//!   "sketches can also be applicable here" remark of Section 3.1
//!   (Definition 5 requires maintaining a heavy-hitter list alongside).
//! * [`CuckooHeavyKeeper`] — a bucketized cuckoo table whose slots carry
//!   HeavyKeeper exponential-decay counts (arXiv 2412.12873):
//!   underestimate-only counts sandwiched by an exact unattributed-mass
//!   deficit, strongest in hit-light, eviction-heavy regimes (see the
//!   [module docs](cuckoo_heavy_keeper)).
//! * [`DispatchedEstimator`] — not a counter but a regime-adaptive
//!   wrapper: each instance watches its own flush miss ratio and switches
//!   between a hit-side and a miss-side layout with hysteresis, migrating
//!   its state once per switch (see the [module docs](dispatch)).
//!
//! All of them implement [`FrequencyEstimator`], the crate's rendering of
//! Definition 4 plus the candidate enumeration RHHH's `Output` needs.
//!
//! # Choosing between the Space Saving layouts
//!
//! Both Space Saving implementations evict a true minimum, so their
//! guarantees — and even their count multisets — are identical; they
//! differ only in memory behaviour:
//!
//! * **Stream summary** ([`SpaceSaving`]): strict O(1) *worst case* per
//!   unit update. Pays for it with a separate hash index plus counter and
//!   bucket pointer walks (~100 KB working set at ε = 0.001, several
//!   dependent loads per update). Choose it for scalar (one-packet-at-a-
//!   time) deployments and when tail latency of a single update matters.
//! * **Tagged SoA arena** ([`CompactSpaceSaving`]): O(1) *amortized* (the
//!   rare minimum rescan costs one pass over a dense count array but total
//!   rescan work is bounded by the stream length). A 1-byte fingerprint
//!   array is probed ahead of the slot lanes, so misses — the dominant
//!   case on eviction-heavy tail nodes — resolve without loading any slot
//!   data, and the sorted batch flush amortizes replace-min work across
//!   each group via [`FrequencyEstimator::flush_group_evicting`]. Choose
//!   it for the batch flush (`increment_batch` / RHHH's `update_batch`),
//!   where it sets the workspace's best throughput (ROADMAP
//!   "Performance"); RHHH's accuracy is insensitive to the swap (the
//!   counter's internals never leak into the analysis, only Definition 4
//!   does — and the differential suite pins the two layouts to identical
//!   count multisets).
//!
//! # Example
//!
//! ```
//! use hhh_counters::{FrequencyEstimator, SpaceSaving};
//!
//! let mut ss: SpaceSaving<u32> = SpaceSaving::with_capacity(100); // ε_a = 1%
//! for _ in 0..900 { ss.increment(7); }
//! for i in 0..100 { ss.increment(i + 1000); }
//!
//! assert!(ss.upper(&7) >= 900);              // never underestimates
//! assert!(ss.lower(&7) <= 900);              // never overestimates
//! assert!(ss.upper(&7) - ss.lower(&7) <= 10); // error ≤ N/capacity
//! ```

mod compact_space_saving;
mod count_min;
mod cuckoo_heavy_keeper;
mod dispatch;
mod fast_hash;
mod heap_space_saving;
mod lossy_counting;
mod misra_gries;
pub mod mix;
mod space_saving;
mod tagged_table;

pub use compact_space_saving::CompactSpaceSaving;

pub use count_min::CountMin;
pub use cuckoo_heavy_keeper::CuckooHeavyKeeper;
pub use dispatch::{DispatchLayout, DispatchedEstimator};
pub use fast_hash::{FastHasher, IntHashBuilder};
pub use heap_space_saving::HeapSpaceSaving;
pub use lossy_counting::LossyCounting;
pub use misra_gries::MisraGries;
pub use space_saving::SpaceSaving;

use std::fmt::Debug;
use std::hash::Hash;

/// Key types accepted by the counter algorithms: cheap to copy, hash,
/// compare and order (ordering lets batch flushes group duplicates).
/// Blanket-implemented for anything suitable (the packed integer keys of
/// `hhh-hierarchy` in particular).
pub trait CounterKey: Copy + Ord + Hash + Debug + Send + 'static {}
impl<T: Copy + Ord + Hash + Debug + Send + 'static> CounterKey for T {}

/// One monitored candidate reported by a counter algorithm.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Candidate<K> {
    /// The monitored key.
    pub key: K,
    /// Upper bound on the number of updates for this key (`X̂⁺`).
    pub upper: u64,
    /// Lower bound on the number of updates for this key (`X̂⁻`).
    pub lower: u64,
}

/// The (ε, δ)-Frequency Estimation interface of Definition 4, extended with
/// the candidate enumeration that `Output` (Algorithm 1) requires and the
/// summary merge that shard-parallel deployments need.
///
/// Implementations count *updates* (the paper's `X_p`); RHHH scales them by
/// `V` to estimate frequencies (Definition 11).
pub trait FrequencyEstimator<K: CounterKey>: Send + 'static {
    /// Creates an instance with `capacity` counters, i.e. `ε_a ≈ 1/capacity`
    /// for the deterministic algorithms.
    ///
    /// # Panics
    ///
    /// Implementations panic when `capacity == 0`.
    fn with_capacity(capacity: usize) -> Self
    where
        Self: Sized;

    /// Processes one occurrence of `key` — the `INCREMENT` of Algorithm 1
    /// line 5.
    fn increment(&mut self, key: K);

    /// Processes `weight` occurrences of `key` at once — the paper's
    /// weighted-input setting (Section 2 notes MST costs `O(H·log 1/ε)`
    /// per weighted update; the stream-summary implementation here walks
    /// at most the number of distinct counts crossed).
    ///
    /// The default implementation loops [`Self::increment`]; structures
    /// with a cheaper native path override it.
    fn add(&mut self, key: K, weight: u64) {
        for _ in 0..weight {
            self.increment(key);
        }
    }

    /// Processes a slice of occurrences in one call — the sink of RHHH's
    /// batch update path, which delivers each lattice node its selected
    /// packets grouped together.
    ///
    /// Equivalent to calling [`Self::increment`] once per element, in
    /// order. The default implementation does exactly that; structures with
    /// a per-key index override it to reuse the index lookup across runs of
    /// equal consecutive keys (after node masking, runs are common: every
    /// key collapses to zero at the root node, and coarse prefixes collapse
    /// whole subnets).
    fn increment_batch(&mut self, keys: &[K]) {
        for &k in keys {
            self.increment(k);
        }
    }

    /// Processes one *unordered* group of occurrences — the shape RHHH's
    /// batch path produces per lattice node after masking. The estimator
    /// owns the ordering decision; the default — used by every current
    /// implementation — sorts by key so duplicates become runs for
    /// [`Self::increment_batch`]. An estimator whose layout favours a
    /// different traversal can override it (a table-position order was
    /// prototyped for the flat arena and measured slower, so none does
    /// today). Any processing order is a tie-break the counter guarantees
    /// never observe; the slice is reordered in place.
    fn flush_group(&mut self, keys: &mut [K]) {
        keys.sort_unstable();
        self.increment_batch(keys);
    }

    /// [`Self::flush_group`] with an explicit license to batch the
    /// *evictions* too, and to pick the group's processing order — the
    /// entry point RHHH's batch flush calls. The default simply delegates
    /// to [`Self::flush_group`]; an estimator whose replace-min machinery
    /// can amortize across a whole group overrides it
    /// ([`CompactSpaceSaving`] chooses sorted or arrival order from a
    /// learned miss-ratio estimate, collects every key of a sorted group
    /// that must steal a slot and serves each run of misses as one
    /// minimum-level sweep instead of re-establishing the minimum per
    /// key). Overrides must evict true minima in the order they process —
    /// any order is a tie-break Definition 4 never observes — so the
    /// count multiset matches per-key processing of that same order
    /// exactly; only the tie-break among equal minima may differ.
    fn flush_group_evicting(&mut self, keys: &mut [K]) {
        self.flush_group(keys);
    }

    /// [`Self::flush_group_evicting`] with a caller-supplied ascending
    /// sorter — the entry point of RHHH's *block* batch pipeline, which
    /// sorts masked key groups with a radix pass an order-comparison sort
    /// can't match on prefix-masked keys (most digit positions are
    /// constant within a group). `sort` must produce exactly
    /// `sort_unstable`'s ascending order; since equal keys are
    /// indistinguishable, any ascending sort leaves the estimator in a
    /// state bit-identical to [`Self::flush_group_evicting`]'s.
    ///
    /// The default ignores the sorter and delegates, so estimators that
    /// never opted in keep their exact `flush_group_evicting` behaviour;
    /// the Space Saving layouts override it to route their *sorted* paths
    /// (and only those) through `sort`.
    fn flush_group_evicting_with(&mut self, keys: &mut [K], sort: &mut dyn FnMut(&mut [K])) {
        let _ = sort;
        self.flush_group_evicting(keys);
    }

    /// Merges `other` — a summary of a *different portion* of the same
    /// logical stream, built with the same capacity — into `self`, so the
    /// result summarizes the concatenated stream. This is what lets
    /// shard-parallel pipelines (one instance per RSS queue or per
    /// measurement VM) answer queries over their union.
    ///
    /// The contract every implementation keeps (following Mitzenmacher,
    /// Steinke & Thaler's merge analysis for Space-Saving-style summaries):
    ///
    /// * `updates()` becomes the sum of both inputs' update counts;
    /// * the sandwich survives: for every key, `lower(x) ≤ X ≤ upper(x)`
    ///   where `X` is the key's count in the concatenated stream;
    /// * the additive error is at most the *sum* of the two inputs'
    ///   per-summary error bounds (`n₁/m + n₂/m = n/m`), so merging `k`
    ///   shards of one stream costs no accuracy versus one instance of the
    ///   same capacity — only the constant hidden in the per-shard bound.
    ///
    /// The Space Saving implementations merge *exactly*: counts and errors
    /// pair up additively (an absent key contributes the other summary's
    /// `min_count` to both), then the union is re-evicted to capacity by
    /// dropping minimal counters. The sketch and deterministic structures
    /// document their own (weaker or equal) merged bounds inline.
    ///
    /// # Panics
    ///
    /// Implementations panic when the two capacities differ.
    fn merge(&mut self, other: Self)
    where
        Self: Sized;

    /// Merges `K` summaries at once. The default folds [`Self::merge`]
    /// pairwise; the Space Saving implementations override it with a
    /// single K-way combine, which is *tighter* than the fold: a key
    /// absent from some shards is padded with those shards' own
    /// min-counts, whereas the pairwise fold pads with the intermediate
    /// *merged* min-counts, which only grow as the fold proceeds. The
    /// merged `updates()` and the summed-error contract of [`Self::merge`]
    /// are identical either way.
    ///
    /// # Panics
    ///
    /// Implementations panic when any capacity differs from `self`'s.
    fn merge_many(&mut self, others: Vec<Self>)
    where
        Self: Sized,
    {
        for other in others {
            self.merge(other);
        }
    }

    /// Total number of updates processed (the per-instance `X_i`).
    fn updates(&self) -> u64;

    /// Upper bound `X̂⁺_x` on the number of updates of `key`; must satisfy
    /// `X_x ≤ upper(x)` (deterministically, or with the algorithm's δ).
    fn upper(&self, key: &K) -> u64;

    /// Lower bound `X̂⁻_x`; must satisfy `lower(x) ≤ X_x`.
    fn lower(&self, key: &K) -> u64;

    /// All currently monitored candidates with their bounds. Every key whose
    /// update count exceeds `updates()/capacity` is guaranteed to appear
    /// (the heavy-hitter property of Definition 5).
    fn candidates(&self) -> Vec<Candidate<K>>;

    /// Number of counters the instance was built with.
    fn capacity(&self) -> usize;

    /// The deterministic additive error guarantee after `n` updates:
    /// `n / capacity` for the counter algorithms in this crate.
    fn error_bound(&self) -> u64 {
        self.updates() / self.capacity() as u64
    }

    /// Short display label for profile/report rows. For a fixed layout
    /// this is a constant; [`DispatchedEstimator`] reports whichever
    /// layout is currently active, which is what lets the hot-profile
    /// flush split attribute dispatched nodes to the layout that actually
    /// ran.
    fn layout_label(&self) -> &'static str {
        "counter"
    }
}

/// Number of counters needed for error `epsilon_a`, adjusted for RHHH's
/// over-sampling per Corollary 6.5: a node may receive up to
/// `(1 + ε_s)·N/V` updates instead of `N/V`, so the instance is sized for
/// `ε'_a = ε_a / (1 + ε_s)`.
///
/// The paper's example: "Space Saving requires 1,000 counters for
/// ε_a = 0.001. If we set ε_s = 0.001, we now require 1001 counters."
///
/// # Panics
///
/// Panics when `epsilon_a` is not in `(0, 1]` or `epsilon_s` is negative.
#[must_use]
pub fn counters_for(epsilon_a: f64, epsilon_s: f64) -> usize {
    assert!(
        epsilon_a > 0.0 && epsilon_a <= 1.0,
        "epsilon_a must lie in (0, 1], got {epsilon_a}"
    );
    assert!(epsilon_s >= 0.0, "epsilon_s must be non-negative");
    ((1.0 + epsilon_s) / epsilon_a).ceil() as usize
}

/// Combines any number of Space-Saving-style summaries in one pass — the
/// shared engine of [`FrequencyEstimator::merge`] (two sides) and
/// [`FrequencyEstimator::merge_many`] (K sides): counts and errors pair up
/// additively — a key absent from a side contributes that side's min-count
/// to *both* its count and its error (the absent side may have seen it up
/// to `min` times, all of which must stay deniable) — then the union is
/// re-evicted back to `capacity` by dropping minimal counters. Every
/// dropped entry's merged count is bounded by every survivor's, so the
/// merged structure's min-count still bounds any unmonitored key. Because
/// the padding uses each *input's* min-count, a K-way combine is pointwise
/// tighter than folding pairwise merges, whose padding grows with the
/// intermediate merged minima.
///
/// `sides` pairs each input's candidate list with its min-count. Returns
/// the kept `(key, count, error)` entries sorted ascending by count (the
/// order both rebuild paths want: the stream summary appends buckets
/// tail-ward, and a count-sorted array is already a valid min-heap), plus
/// the guaranteed mass (`count − error`) that re-eviction discarded — the
/// mass ledger the debug validators audit needs it, because discarded
/// guaranteed units leave the summary without becoming error.
pub(crate) fn merge_entries_many<K: CounterKey>(
    sides: &[(Vec<Candidate<K>>, u64)],
    capacity: usize,
) -> (Vec<(K, u64, u64)>, u64) {
    let total_min: u64 = sides.iter().map(|(_, min)| min).sum();
    // Per key: summed counts and errors over the sides that monitor it,
    // plus the summed min-counts of those sides — the complement against
    // `total_min` is the padding the absent sides owe.
    let mut combined: std::collections::HashMap<K, (u64, u64, u64), fast_hash::IntHashBuilder> =
        std::collections::HashMap::with_capacity_and_hasher(
            sides.iter().map(|(c, _)| c.len()).sum(),
            fast_hash::IntHashBuilder,
        );
    for (cands, min) in sides {
        for c in cands {
            let e = combined.entry(c.key).or_insert((0, 0, 0));
            e.0 += c.upper;
            e.1 += c.upper - c.lower;
            e.2 += min;
        }
    }
    let mut entries: Vec<(K, u64, u64)> = combined
        .into_iter()
        .map(|(key, (count, error, present_min))| {
            let pad = total_min - present_min;
            (key, count + pad, error + pad)
        })
        .collect();
    // Deterministic re-eviction: order by (count, key) so ties among equal
    // minimal counters break the same way on every run.
    entries.sort_unstable_by_key(|&(key, count, _)| (count, key));
    let keep_from = entries.len().saturating_sub(capacity);
    let discarded = entries[..keep_from].iter().map(|e| e.1 - e.2).sum();
    entries.drain(..keep_from);
    (entries, discarded)
}

/// Run-length encodes a key slice: invokes `f(key, run_length)` once per
/// maximal run of equal consecutive keys. The `increment_batch` overrides
/// share this so a sorted node group costs one index probe per *distinct*
/// key instead of one per element.
#[inline]
pub(crate) fn for_each_run<K: CounterKey>(keys: &[K], mut f: impl FnMut(K, u64)) {
    let mut i = 0;
    while i < keys.len() {
        let key = keys[i];
        let mut j = i + 1;
        while j < keys.len() && keys[j] == key {
            j += 1;
        }
        f(key, (j - i) as u64);
        i = j;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_for_matches_paper_example() {
        assert_eq!(counters_for(0.001, 0.001), 1001);
        assert_eq!(counters_for(0.001, 0.0), 1000);
        assert_eq!(counters_for(0.01, 0.0), 100);
    }

    #[test]
    #[should_panic(expected = "epsilon_a must lie in (0, 1]")]
    fn counters_for_rejects_zero() {
        let _ = counters_for(0.0, 0.0);
    }

    #[test]
    fn for_each_run_merges_maximal_runs() {
        let mut seen: Vec<(u32, u64)> = Vec::new();
        for_each_run(&[7u32, 7, 7, 1, 2, 2, 7], |k, w| seen.push((k, w)));
        assert_eq!(seen, vec![(7, 3), (1, 1), (2, 2), (7, 1)]);
        seen.clear();
        for_each_run(&[], |k: u32, w| seen.push((k, w)));
        assert!(seen.is_empty());
    }
}
