//! Regime-adaptive per-instance layout dispatch.
//!
//! The performance tables since PR 2 agree on one thing: no fixed counter
//! layout wins everywhere. The tagged-SoA arena ([`CompactSpaceSaving`])
//! wins miss-heavy batched flushes (bulk min-level eviction, tag-only miss
//! rejection); the stream summary ([`SpaceSaving`]) wins hit-heavy flushes
//! and every scalar path. An RHHH lattice contains *both* regimes at once
//! — tail nodes see full-granularity churn (miss-heavy) while aggregated
//! nodes collapse whole subnets onto a handful of hot keys (hit-heavy) —
//! so any fixed choice leaves one class of nodes on its slower layout.
//!
//! [`DispatchedEstimator`] lets every instance choose for itself, from
//! two per-instance signals observed at flush boundaries:
//!
//! * **Flush group size** (an EWMA of `keys.len()`, exact and free).
//!   Groups below `capacity / `[`SMALL_GROUP_DIVISOR`] never amortize the
//!   stream summary's per-flush merge, so the dispatcher targets the
//!   miss-side arena outright — this is what moves every node to the
//!   arena at `V = 10H`, where per-node groups are a tenth the size they
//!   are at `V = H`.
//! * **Flush miss ratio**, the same regime signal the PR 4 adaptive
//!   flush introduced, consulted once groups are big enough to amortize.
//!   While the **compact** layout is active the wrapper bootstraps from
//!   the arena's own EWMA (`CompactSpaceSaving::miss_ratio_estimate`) —
//!   exact and free. While a layout without a native estimate is active,
//!   the wrapper probes [`SAMPLE_PROBES`](self) strided keys per sampled
//!   group (read-only membership checks, so the inner state is
//!   untouched) and maintains the identical EWMA recurrence
//!   `e ← (e + 3·observed) / 4` on the same `0 ..= 255` scale, throttled
//!   to every 16th flush once the instance has been stable for a while.
//!
//! The miss-ratio rule is a **hysteresis band**: the EWMA must sit
//! beyond [`MISS_HEAVY_ABOVE`] (switch to the miss-side layout) or below
//! [`HIT_HEAVY_BELOW`] (switch to the hit-side layout) for
//! [`SWITCH_DWELL`] consecutive *observations* — flushes whose sample
//! was throttled away don't advance the dwell, so one noisy sample can't
//! ride a stale EWMA into a switch. A switch performs a **one-shot
//! migration**: the target layout is rebuilt from the source's entries,
//! then the source is dropped.
//!
//! # Migration bounds
//!
//! * **Space Saving → Space Saving** (the default pair) is *exact*: both
//!   layouts share identical semantics, so the `(count, error)` entries,
//!   the update total and the discarded-mass ledger transfer verbatim —
//!   the migrated instance is observationally identical to the source,
//!   and every Space Saving guarantee continues unbroken.
//! * **Space Saving → [`CuckooHeavyKeeper`]** keeps each entry's
//!   *guaranteed* mass (`count − error`) as the decay count; the error
//!   and discarded mass land in CHK's deficit. The sandwich
//!   `lower ≤ X ≤ upper` survives for every key (the deficit covers
//!   exactly the unattributed remainder).
//! * **[`CuckooHeavyKeeper`] → Space Saving** inflates each count by the
//!   source's deficit and records the deficit as the entry error
//!   (`count' = count + D`, `error' = D`): counts become sound
//!   overestimates, lower bounds are unchanged, and the mass ledger
//!   closes exactly (`Σ(count' − error') + discarded' = updates`). The
//!   cost is a looser per-key band — `upper − lower` grows by `D` — paid
//!   once at the switch.
//!
//! A dispatched node that never crosses the band never migrates, and its
//! inner state stays **bit-identical** to the fixed layout fed the same
//! updates (the wrapper's probes are read-only and it owns no RNG); the
//! dispatch property suite pins both facts.
//!
//! Scalar updates (`increment`/`add`) delegate without bookkeeping — the
//! regime signal only exists at flush boundaries, so a scalar-only
//! deployment simply stays on the boot layout (the stream summary, which
//! is the measured scalar winner).

use crate::{
    Candidate, CompactSpaceSaving, CounterKey, CuckooHeavyKeeper, FrequencyEstimator, SpaceSaving,
};

/// Flush groups whose running average is below `capacity /
/// SMALL_GROUP_DIVISOR` don't amortize the stream summary's per-flush
/// merge cost, so the dispatcher prefers the miss-side arena regardless
/// of the hit ratio (see the module docs).
pub const SMALL_GROUP_DIVISOR: usize = 2;

/// Switch to the miss-side layout when the EWMA sits at or above this.
pub const MISS_HEAVY_ABOVE: u8 = 192;

/// Switch to the hit-side layout when the EWMA sits at or below this.
pub const HIT_HEAVY_BELOW: u8 = 64;

/// Consecutive out-of-band flushes required before a switch.
pub const SWITCH_DWELL: u8 = 4;

/// Membership probes per sampled flush group. Sixteen probes quantize
/// the observation to ~6% steps — coarse enough to stay cheap, fine
/// enough that crossing [`MISS_HEAVY_ABOVE`] takes a genuinely
/// miss-saturated group rather than one unlucky all-miss handful.
const SAMPLE_PROBES: usize = 16;

/// After this many consecutive in-band flushes the instance counts as
/// settled and sampling throttles to every [`SETTLED_SAMPLE_EVERY`]th
/// flush (the probes then cost ~nothing at steady state).
const SETTLED_AFTER: u32 = 64;

/// Sampling cadence once settled.
const SETTLED_SAMPLE_EVERY: u64 = 16;

/// The concrete layouts the dispatcher can run. The default pair is
/// `StreamSummary` (hit side) / `Compact` (miss side) — both exact Space
/// Saving, so the dispatched monitor keeps full Space Saving accuracy.
/// `Chk` is selectable via [`DispatchedEstimator::with_sides`] for
/// deployments that accept its documented deficit bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DispatchLayout {
    /// [`SpaceSaving`] — the stream summary.
    StreamSummary,
    /// [`CompactSpaceSaving`] — the tagged-SoA arena.
    Compact,
    /// [`CuckooHeavyKeeper`] — decay counting.
    Chk,
}

impl DispatchLayout {
    /// The report/profile label (matches the fixed layouts' labels).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            DispatchLayout::StreamSummary => "stream-summary",
            DispatchLayout::Compact => "compact",
            DispatchLayout::Chk => "chk",
        }
    }
}

// The arena variant is ~3x the list's size; boxing it would buy back a
// few hundred bytes per node at the price of a pointer chase on every
// flush delegation, so the variants stay inline.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
enum Inner<K> {
    List(SpaceSaving<K>),
    Compact(CompactSpaceSaving<K>),
    Chk(CuckooHeavyKeeper<K>),
}

/// Expands `$body` once per variant with `$e` bound to the concrete
/// estimator — the delegation workhorse.
macro_rules! each_inner {
    ($inner:expr, $e:ident => $body:expr) => {
        match $inner {
            Inner::List($e) => $body,
            Inner::Compact($e) => $body,
            Inner::Chk($e) => $body,
        }
    };
}

/// See the [module docs](self).
#[derive(Debug, Clone)]
pub struct DispatchedEstimator<K> {
    inner: Inner<K>,
    /// Layout adopted when the regime reads hit-heavy.
    hit_side: DispatchLayout,
    /// Layout adopted when the regime reads miss-heavy.
    miss_side: DispatchLayout,
    /// Flush miss-ratio EWMA, `0 ..= 255`; boots pessimistic like the
    /// compact arena's own estimate.
    ewma: u8,
    /// Consecutive flushes whose EWMA asked for a layout other than the
    /// active one.
    dwell: u8,
    /// Consecutive flushes without a pending switch (sampling throttle).
    settled: u32,
    /// Total flushes seen (sampling cadence).
    flushes: u64,
    /// Flush group size EWMA (amortization signal; seeded by the first
    /// flush).
    group_ewma: u32,
    /// Completed migrations.
    switches: u32,
}

/// `(key, count, error)` triples from Space Saving candidates, ascending
/// by count then key — the shape both Space Saving rebuilds accept.
fn ss_entries<K: CounterKey>(mut cands: Vec<Candidate<K>>) -> Vec<(K, u64, u64)> {
    cands.sort_unstable_by(|a, b| a.upper.cmp(&b.upper).then(a.key.cmp(&b.key)));
    cands
        .into_iter()
        .map(|c| (c.key, c.upper, c.upper - c.lower))
        .collect()
}

impl<K: CounterKey> DispatchedEstimator<K> {
    /// A dispatcher over an explicit layout pair, booted on `hit_side`.
    /// The default ([`FrequencyEstimator::with_capacity`]) pair is
    /// stream-summary / compact.
    #[must_use]
    pub fn with_sides(
        capacity: usize,
        hit_side: DispatchLayout,
        miss_side: DispatchLayout,
    ) -> Self {
        let inner = match hit_side {
            DispatchLayout::StreamSummary => Inner::List(SpaceSaving::with_capacity(capacity)),
            DispatchLayout::Compact => Inner::Compact(CompactSpaceSaving::with_capacity(capacity)),
            DispatchLayout::Chk => Inner::Chk(CuckooHeavyKeeper::with_capacity(capacity)),
        };
        Self {
            inner,
            hit_side,
            miss_side,
            ewma: u8::MAX,
            dwell: 0,
            settled: 0,
            flushes: 0,
            group_ewma: 0,
            switches: 0,
        }
    }

    /// The currently active layout.
    #[must_use]
    pub fn active_layout(&self) -> DispatchLayout {
        match self.inner {
            Inner::List(_) => DispatchLayout::StreamSummary,
            Inner::Compact(_) => DispatchLayout::Compact,
            Inner::Chk(_) => DispatchLayout::Chk,
        }
    }

    /// Completed migrations since construction.
    #[must_use]
    pub fn switch_count(&self) -> u32 {
        self.switches
    }

    /// The current miss-ratio EWMA (`0 ..= 255`).
    #[doc(hidden)]
    #[must_use]
    pub fn miss_ewma(&self) -> u8 {
        self.ewma
    }

    /// Debug rendering of the inner estimator only (no wrapper fields) —
    /// what the never-switch bit-identity property compares against a
    /// fixed instance.
    #[doc(hidden)]
    #[must_use]
    pub fn inner_repr(&self) -> String {
        each_inner!(&self.inner, e => format!("{e:?}"))
    }

    /// Immediately migrates to `target` (test/bench hook; the production
    /// path migrates through the hysteresis rule).
    #[doc(hidden)]
    pub fn force_migrate(&mut self, target: DispatchLayout) {
        self.migrate_to(target);
    }

    /// One-shot migration: rebuild `target` from the active source's
    /// entries (bounds in the module docs), drop the source.
    fn migrate_to(&mut self, target: DispatchLayout) {
        if target == self.active_layout() {
            return;
        }
        let capacity = self.capacity();
        // Placeholder is swapped right back; one tiny allocation per switch.
        let source = std::mem::replace(&mut self.inner, Inner::List(SpaceSaving::with_capacity(1)));
        self.inner = match source {
            Inner::List(e) => {
                let (updates, discarded) = (e.updates(), e.discarded());
                Self::from_ss(
                    capacity,
                    updates,
                    discarded,
                    ss_entries(e.candidates()),
                    target,
                )
            }
            Inner::Compact(e) => {
                let (updates, discarded) = (e.updates(), e.discarded());
                Self::from_ss(
                    capacity,
                    updates,
                    discarded,
                    ss_entries(e.candidates()),
                    target,
                )
            }
            Inner::Chk(e) => {
                let (updates, deficit) = (e.updates(), e.deficit());
                let mut entries: Vec<(K, u64, u64)> = e
                    .raw_entries()
                    .into_iter()
                    .map(|(key, count)| (key, count + deficit, deficit))
                    .collect();
                entries.sort_unstable_by(|a, b| a.1.cmp(&b.1).then(a.0.cmp(&b.0)));
                match target {
                    DispatchLayout::StreamSummary => {
                        Inner::List(SpaceSaving::rebuild(capacity, updates, deficit, &entries))
                    }
                    DispatchLayout::Compact => {
                        Inner::Compact(CompactSpaceSaving::rebuild_from_entries(
                            capacity, updates, deficit, &entries,
                        ))
                    }
                    DispatchLayout::Chk => unreachable!("same layout handled above"),
                }
            }
        };
        self.switches += 1;
    }

    /// Builds the target layout from Space Saving `(count, error)` entries.
    fn from_ss(
        capacity: usize,
        updates: u64,
        discarded: u64,
        entries: Vec<(K, u64, u64)>,
        target: DispatchLayout,
    ) -> Inner<K> {
        match target {
            DispatchLayout::StreamSummary => {
                Inner::List(SpaceSaving::rebuild(capacity, updates, discarded, &entries))
            }
            DispatchLayout::Compact => Inner::Compact(CompactSpaceSaving::rebuild_from_entries(
                capacity, updates, discarded, &entries,
            )),
            DispatchLayout::Chk => {
                // Keep guaranteed mass only; errors + discarded become
                // CHK's deficit (module docs).
                let mut guaranteed: Vec<(K, u64)> = entries
                    .into_iter()
                    .filter_map(|(key, count, error)| {
                        (count > error).then_some((key, count - error))
                    })
                    .collect();
                guaranteed.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
                Inner::Chk(CuckooHeavyKeeper::from_entries(
                    capacity,
                    updates,
                    &guaranteed,
                ))
            }
        }
    }

    /// Pre-flush regime sample: a few strided read-only membership probes
    /// (None when the active layout has a native estimate, the group is
    /// empty, or the settled throttle says skip).
    fn sample_misses(&self, keys: &[K]) -> Option<u8> {
        if keys.is_empty() || matches!(self.inner, Inner::Compact(_)) {
            return None;
        }
        if self.settled >= SETTLED_AFTER && !self.flushes.is_multiple_of(SETTLED_SAMPLE_EVERY) {
            return None;
        }
        let probes = SAMPLE_PROBES.min(keys.len());
        let stride = keys.len() / probes;
        let mut misses = 0u32;
        for p in 0..probes {
            let key = &keys[p * stride];
            let hit = match &self.inner {
                Inner::List(e) => e.monitored(key),
                Inner::Chk(e) => e.monitored(key),
                Inner::Compact(_) => unreachable!(),
            };
            misses += u32::from(!hit);
        }
        Some(((misses * 255) / probes as u32) as u8)
    }

    /// Post-flush bookkeeping: fold the observation into the EWMA (or
    /// adopt the compact arena's native estimate), then apply the
    /// hysteresis rule.
    fn after_flush(&mut self, group_len: usize, sampled: Option<u8>) {
        if group_len > 0 {
            let len = group_len.min(u32::MAX as usize) as u32;
            self.group_ewma = if self.flushes == 0 {
                len
            } else {
                (3 * self.group_ewma + len) / 4
            };
        }
        self.flushes += 1;
        let fresh = match (&self.inner, sampled) {
            (Inner::Compact(e), _) => {
                self.ewma = e.miss_ratio_estimate();
                true
            }
            (_, Some(observed)) => {
                self.ewma = ((u32::from(self.ewma) + 3 * u32::from(observed)) / 4) as u8;
                true
            }
            (_, None) => false,
        };
        let active = self.active_layout();
        let amortized = self.group_ewma as usize >= self.capacity() / SMALL_GROUP_DIVISOR;
        let target = if !amortized {
            // Groups too small to amortize the stream summary's per-flush
            // merge: the arena's in-place updates win outright, whatever
            // the hit ratio says. Group length is exact and arrives every
            // flush, so this arm doesn't wait for a sample.
            self.miss_side
        } else if !fresh {
            // No fresh miss-ratio evidence this flush (sampling throttled):
            // hold position. Dwell advances only on observations, so a
            // single noisy sample can't ride a stale EWMA into a switch.
            self.settled = self.settled.saturating_add(1);
            return;
        } else if self.ewma >= MISS_HEAVY_ABOVE {
            self.miss_side
        } else if self.ewma <= HIT_HEAVY_BELOW {
            self.hit_side
        } else {
            active
        };
        if target == active {
            self.dwell = 0;
            self.settled = self.settled.saturating_add(1);
        } else {
            self.dwell += 1;
            if self.dwell >= SWITCH_DWELL {
                self.migrate_to(target);
                self.dwell = 0;
                self.settled = 0;
            }
        }
    }
}

impl<K: CounterKey> FrequencyEstimator<K> for DispatchedEstimator<K> {
    fn with_capacity(capacity: usize) -> Self {
        Self::with_sides(
            capacity,
            DispatchLayout::StreamSummary,
            DispatchLayout::Compact,
        )
    }

    #[inline]
    fn increment(&mut self, key: K) {
        each_inner!(&mut self.inner, e => e.increment(key));
    }

    #[inline]
    fn add(&mut self, key: K, weight: u64) {
        each_inner!(&mut self.inner, e => e.add(key, weight));
    }

    fn increment_batch(&mut self, keys: &[K]) {
        each_inner!(&mut self.inner, e => e.increment_batch(keys));
    }

    fn flush_group(&mut self, keys: &mut [K]) {
        let sampled = self.sample_misses(keys);
        each_inner!(&mut self.inner, e => e.flush_group(keys));
        self.after_flush(keys.len(), sampled);
    }

    fn flush_group_evicting(&mut self, keys: &mut [K]) {
        let sampled = self.sample_misses(keys);
        each_inner!(&mut self.inner, e => e.flush_group_evicting(keys));
        self.after_flush(keys.len(), sampled);
    }

    fn flush_group_evicting_with(&mut self, keys: &mut [K], sort: &mut dyn FnMut(&mut [K])) {
        let sampled = self.sample_misses(keys);
        each_inner!(&mut self.inner, e => e.flush_group_evicting_with(keys, sort));
        self.after_flush(keys.len(), sampled);
    }

    fn merge(&mut self, other: Self) {
        self.merge_many(vec![other]);
    }

    fn merge_many(&mut self, others: Vec<Self>) {
        if others.is_empty() {
            return;
        }
        // Align every input on the active layout (exact for the default
        // Space Saving pair; cross-family costs the documented migration
        // bound once), then run the concrete K-way merge.
        let target = self.active_layout();
        let inners: Vec<Inner<K>> = others
            .into_iter()
            .map(|mut o| {
                o.migrate_to(target);
                o.inner
            })
            .collect();
        match &mut self.inner {
            Inner::List(e) => e.merge_many(
                inners
                    .into_iter()
                    .map(|i| match i {
                        Inner::List(x) => x,
                        _ => unreachable!("aligned above"),
                    })
                    .collect(),
            ),
            Inner::Compact(e) => e.merge_many(
                inners
                    .into_iter()
                    .map(|i| match i {
                        Inner::Compact(x) => x,
                        _ => unreachable!("aligned above"),
                    })
                    .collect(),
            ),
            Inner::Chk(e) => e.merge_many(
                inners
                    .into_iter()
                    .map(|i| match i {
                        Inner::Chk(x) => x,
                        _ => unreachable!("aligned above"),
                    })
                    .collect(),
            ),
        }
    }

    fn updates(&self) -> u64 {
        each_inner!(&self.inner, e => e.updates())
    }

    fn upper(&self, key: &K) -> u64 {
        each_inner!(&self.inner, e => e.upper(key))
    }

    fn lower(&self, key: &K) -> u64 {
        each_inner!(&self.inner, e => e.lower(key))
    }

    fn candidates(&self) -> Vec<Candidate<K>> {
        each_inner!(&self.inner, e => e.candidates())
    }

    fn capacity(&self) -> usize {
        each_inner!(&self.inner, e => e.capacity())
    }

    fn error_bound(&self) -> u64 {
        each_inner!(&self.inner, e => e.error_bound())
    }

    fn layout_label(&self) -> &'static str {
        self.active_layout().label()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mix::hash_u64;

    fn flush<E: FrequencyEstimator<u64>>(e: &mut E, keys: &[u64]) {
        let mut group = keys.to_vec();
        e.flush_group_evicting_with(&mut group, &mut |g| g.sort_unstable());
    }

    #[test]
    fn boots_on_hit_side_and_stays_there_on_hot_traffic() {
        let mut d = DispatchedEstimator::<u64>::with_capacity(64);
        assert_eq!(d.active_layout(), DispatchLayout::StreamSummary);
        for round in 0..50u64 {
            let keys: Vec<u64> = (0..256).map(|i| i % 16).collect();
            let _ = round;
            flush(&mut d, &keys);
        }
        assert_eq!(d.active_layout(), DispatchLayout::StreamSummary);
        assert_eq!(d.switch_count(), 0);
        assert!(d.miss_ewma() <= HIT_HEAVY_BELOW);
    }

    #[test]
    fn miss_heavy_traffic_switches_to_compact_once() {
        let mut d = DispatchedEstimator::<u64>::with_capacity(64);
        for round in 0..40u64 {
            let keys: Vec<u64> = (0..256u64).map(|i| round * 1_000 + i).collect();
            flush(&mut d, &keys);
        }
        assert_eq!(d.active_layout(), DispatchLayout::Compact);
        assert_eq!(d.switch_count(), 1, "hysteresis must not thrash");
    }

    #[test]
    fn never_switching_node_is_bit_identical_to_fixed_layout() {
        let mut d = DispatchedEstimator::<u64>::with_capacity(48);
        let mut fixed = SpaceSaving::<u64>::with_capacity(48);
        for round in 0..30u64 {
            // Hit-heavy with a sprinkle of churn: stays mid/low band.
            let keys: Vec<u64> = (0..200u64)
                .map(|i| if i % 8 == 0 { round * 100 + i } else { i % 24 })
                .collect();
            flush(&mut d, &keys);
            flush(&mut fixed, &keys);
        }
        assert_eq!(d.switch_count(), 0);
        assert_eq!(d.inner_repr(), format!("{fixed:?}"));
    }

    #[test]
    fn ss_migration_is_exact() {
        let keys: Vec<u64> = (0..20_000u64).map(|i| hash_u64(i) % 500).collect();
        let mut d = DispatchedEstimator::<u64>::with_capacity(64);
        let mut fixed = SpaceSaving::<u64>::with_capacity(64);
        flush(&mut d, &keys);
        flush(&mut fixed, &keys);
        d.force_migrate(DispatchLayout::Compact);
        let mut a = d.candidates();
        let mut b = fixed.candidates();
        let by_key = |x: &Candidate<u64>, y: &Candidate<u64>| x.key.cmp(&y.key);
        a.sort_unstable_by(by_key);
        b.sort_unstable_by(by_key);
        assert_eq!(a, b, "SS→SS migration must preserve every (count, error)");
        assert_eq!(d.updates(), fixed.updates());
        // And back again.
        d.force_migrate(DispatchLayout::StreamSummary);
        let mut c = d.candidates();
        c.sort_unstable_by(by_key);
        assert_eq!(c, b);
    }

    #[test]
    fn cross_family_migration_preserves_the_sandwich() {
        let keys: Vec<u64> = (0..30_000u64).map(|i| hash_u64(i) % 700).collect();
        let mut truth = std::collections::HashMap::new();
        for &k in &keys {
            *truth.entry(k).or_insert(0u64) += 1;
        }
        // SS → CHK.
        let mut d = DispatchedEstimator::<u64>::with_capacity(64);
        flush(&mut d, &keys);
        d.force_migrate(DispatchLayout::Chk);
        for (&k, &t) in &truth {
            assert!(d.lower(&k) <= t, "chk lower({k})");
            assert!(d.upper(&k) >= t, "chk upper({k})");
        }
        // CHK → SS.
        let mut c = DispatchedEstimator::<u64>::with_sides(
            64,
            DispatchLayout::Chk,
            DispatchLayout::Compact,
        );
        flush(&mut c, &keys);
        c.force_migrate(DispatchLayout::Compact);
        for (&k, &t) in &truth {
            assert!(c.lower(&k) <= t, "ss lower({k})");
            assert!(c.upper(&k) >= t, "ss upper({k})");
        }
    }

    #[test]
    fn merge_aligns_layouts() {
        let mut a = DispatchedEstimator::<u64>::with_capacity(32);
        let mut b = DispatchedEstimator::<u64>::with_capacity(32);
        let ka: Vec<u64> = (0..5_000u64).map(|i| hash_u64(i) % 100).collect();
        let kb: Vec<u64> = (0..5_000u64).map(|i| hash_u64(i ^ 0xF00) % 150).collect();
        flush(&mut a, &ka);
        flush(&mut b, &kb);
        b.force_migrate(DispatchLayout::Compact);
        let total = a.updates() + b.updates();
        a.merge(b);
        assert_eq!(a.updates(), total);
        assert_eq!(a.active_layout(), DispatchLayout::StreamSummary);
        let mut truth = std::collections::HashMap::new();
        for &k in ka.iter().chain(&kb) {
            *truth.entry(k).or_insert(0u64) += 1;
        }
        for (&k, &t) in &truth {
            assert!(a.lower(&k) <= t);
            assert!(a.upper(&k) >= t);
        }
    }
}
