//! Count-Min sketch (Cormode & Muthukrishnan — J. Algorithms 2005) with a
//! heavy-hitter candidate list.
//!
//! Section 3.1 of the RHHH paper: "Sketches [9, 15, 19] can also be
//! applicable here, but to use them, each sketch should also maintain a list
//! of heavy hitter items (Definition 5)." This implementation pairs the
//! sketch with a small Space-Saving-style candidate list keyed by the sketch
//! estimate, so it exposes the same [`FrequencyEstimator`] interface as the
//! counter algorithms.
//!
//! Guarantees: `f ≤ upper(f)` always, and `upper(f) ≤ f + εN` with
//! probability `1 − δ` where `ε = e/width` and `δ = e^−depth` — the (ε, δ)
//! of Definition 4 with a genuinely non-zero δ.

use crate::fast_hash::FastMap;
use crate::{Candidate, CounterKey, FrequencyEstimator};
use std::hash::{Hash, Hasher};

/// Rows in the sketch; δ = e^-4 ≈ 1.8%.
const DEPTH: usize = 4;

/// Count-Min sketch plus candidate list.
#[derive(Debug, Clone)]
pub struct CountMin<K> {
    /// `DEPTH` rows of `width` counters, flattened row-major.
    table: Vec<u64>,
    width: usize,
    /// Per-row 64-bit hash seeds (fixed, derived by splitmix64 so instances
    /// are deterministic and reproducible).
    seeds: [u64; DEPTH],
    /// Candidate heavy hitters: key → last sketch estimate at insert time.
    candidates: FastMap<K, u64>,
    /// Maximum number of tracked candidates (= capacity).
    capacity: usize,
    updates: u64,
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl<K: CounterKey> CountMin<K> {
    fn row_index(&self, row: usize, key: &K) -> usize {
        let mut hasher = crate::fast_hash::FastHasher::default();
        self.seeds[row].hash(&mut hasher);
        key.hash(&mut hasher);
        (hasher.finish() % self.width as u64) as usize
    }

    /// Point query: the minimum across rows (never underestimates).
    #[must_use]
    pub fn estimate(&self, key: &K) -> u64 {
        (0..DEPTH)
            .map(|r| self.table[r * self.width + self.row_index(r, key)])
            .min()
            .unwrap_or(0)
    }

    /// Evicts the weakest candidate if the list is over capacity.
    fn trim_candidates(&mut self) {
        if self.candidates.len() <= self.capacity {
            return;
        }
        if let Some((&weakest, _)) = self.candidates.iter().min_by_key(|(_, &est)| est) {
            self.candidates.remove(&weakest);
        }
    }
}

impl<K: CounterKey> FrequencyEstimator<K> for CountMin<K> {
    fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        // ε = e/width → width = e·capacity for ε = 1/capacity.
        let width = (std::f64::consts::E * capacity as f64).ceil() as usize;
        let mut state = 0x5EED_CAFE_F00D_D00Du64;
        let mut seeds = [0u64; DEPTH];
        for s in &mut seeds {
            *s = splitmix64(&mut state);
        }
        Self {
            table: vec![0; DEPTH * width],
            width,
            seeds,
            candidates: FastMap::default(),
            capacity,
            updates: 0,
        }
    }

    fn increment(&mut self, key: K) {
        self.updates += 1;
        for r in 0..DEPTH {
            let idx = r * self.width + self.row_index(r, &key);
            self.table[idx] += 1;
        }
        let est = self.estimate(&key);
        // Track as candidate if it would rank among the top `capacity`.
        let threshold = self.updates / self.capacity as u64;
        if est > threshold || self.candidates.len() < self.capacity {
            self.candidates.insert(key, est);
            self.trim_candidates();
        } else if let Some(e) = self.candidates.get_mut(&key) {
            *e = est;
        }
    }

    fn add(&mut self, key: K, weight: u64) {
        if weight == 0 {
            return;
        }
        self.updates += weight;
        for r in 0..DEPTH {
            let idx = r * self.width + self.row_index(r, &key);
            self.table[idx] += weight;
        }
        let est = self.estimate(&key);
        let threshold = self.updates / self.capacity as u64;
        if est > threshold || self.candidates.len() < self.capacity {
            self.candidates.insert(key, est);
            self.trim_candidates();
        } else if let Some(e) = self.candidates.get_mut(&key) {
            *e = est;
        }
    }

    fn increment_batch(&mut self, keys: &[K]) {
        // One set of row hashes and one candidate-list touch per run of
        // equal consecutive keys.
        crate::for_each_run(keys, |key, run| self.add(key, run));
    }

    /// Element-wise sketch merge: equal capacities imply equal widths and
    /// (deterministically derived) equal row seeds, so summing the tables
    /// cell by cell yields *exactly* the sketch of the concatenated stream
    /// — estimates never underestimate, and each query overestimates by at
    /// most `ε·(N₁+N₂)` with probability `1 − δ`, the same bound a single
    /// sketch over the whole stream carries. The candidate lists union and
    /// re-trim to capacity on the merged estimates.
    fn merge(&mut self, other: Self) {
        assert_eq!(
            self.capacity, other.capacity,
            "merge requires equal capacities"
        );
        debug_assert_eq!(self.width, other.width);
        debug_assert_eq!(self.seeds, other.seeds);
        for (cell, &o) in self.table.iter_mut().zip(&other.table) {
            *cell += o;
        }
        self.updates += other.updates;
        let mut keys: Vec<K> = self.candidates.keys().copied().collect();
        keys.extend(other.candidates.keys().copied());
        let mut merged: Vec<(K, u64)> = keys
            .into_iter()
            .map(|key| (key, self.estimate(&key)))
            .collect();
        merged.sort_unstable_by_key(|&(key, est)| (std::cmp::Reverse(est), std::cmp::Reverse(key)));
        merged.dedup_by_key(|e| e.0);
        merged.truncate(self.capacity);
        self.candidates.clear();
        for (key, est) in merged {
            self.candidates.insert(key, est);
        }
    }

    fn updates(&self) -> u64 {
        self.updates
    }

    fn upper(&self, key: &K) -> u64 {
        self.estimate(key)
    }

    /// Count-Min provides no deterministic lower bound; report 0 so the
    /// consumer stays conservative (RHHH subtracts lower bounds in
    /// `calcPred`).
    fn lower(&self, _key: &K) -> u64 {
        0
    }

    fn candidates(&self) -> Vec<Candidate<K>> {
        self.candidates
            .keys()
            .map(|&key| Candidate {
                key,
                upper: self.estimate(&key),
                lower: 0,
            })
            .collect()
    }

    fn capacity(&self) -> usize {
        self.capacity
    }

    fn layout_label(&self) -> &'static str {
        "count-min"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn never_underestimates() {
        let mut cm: CountMin<u64> = CountMin::with_capacity(50);
        let mut exact: HashMap<u64, u64> = HashMap::new();
        let mut x = 1u64;
        for _ in 0..30_000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let key = x % 3_000;
            cm.increment(key);
            *exact.entry(key).or_default() += 1;
        }
        for (key, &f) in &exact {
            assert!(cm.upper(key) >= f, "CM underestimated {key}");
        }
    }

    #[test]
    fn error_mostly_within_epsilon() {
        let cap = 100;
        let mut cm: CountMin<u64> = CountMin::with_capacity(cap);
        let mut exact: HashMap<u64, u64> = HashMap::new();
        let mut x = 9u64;
        for _ in 0..50_000 {
            x = x.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(5);
            let key = x % 5_000;
            cm.increment(key);
            *exact.entry(key).or_default() += 1;
        }
        let n = cm.updates();
        let eps_n = n / cap as u64; // ε = 1/capacity by construction
        let violations = exact
            .iter()
            .filter(|(key, &f)| cm.upper(key) > f + eps_n)
            .count();
        // δ = e^-4 ≈ 1.8% per query; allow generous slack.
        assert!(
            violations as f64 <= 0.05 * exact.len() as f64,
            "{violations}/{} beyond εN",
            exact.len()
        );
    }

    #[test]
    fn heavy_key_in_candidates() {
        let mut cm: CountMin<u32> = CountMin::with_capacity(10);
        let mut x = 3u64;
        for i in 0..10_000u64 {
            if i % 3 == 0 {
                cm.increment(7);
            } else {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                cm.increment((x % 2_000) as u32 + 100);
            }
        }
        assert!(cm.candidates().iter().any(|c| c.key == 7));
        assert!(cm.candidates.len() <= 11); // capacity + transient slot
    }

    #[test]
    fn deterministic_across_instances() {
        let mut a: CountMin<u64> = CountMin::with_capacity(20);
        let mut b: CountMin<u64> = CountMin::with_capacity(20);
        for i in 0..1_000u64 {
            a.increment(i % 37);
            b.increment(i % 37);
        }
        for k in 0..37u64 {
            assert_eq!(a.upper(&k), b.upper(&k));
        }
    }

    #[test]
    fn lower_bound_is_conservative_zero() {
        let mut cm: CountMin<u32> = CountMin::with_capacity(10);
        for _ in 0..100 {
            cm.increment(1);
        }
        assert_eq!(cm.lower(&1), 0);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _: CountMin<u32> = CountMin::with_capacity(0);
    }
}
