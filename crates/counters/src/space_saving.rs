//! Space Saving (Metwally, Agrawal, El Abbadi — ICDT 2005) on the
//! *stream-summary* structure: a doubly linked list of count buckets, each
//! holding a doubly linked list of counters with that exact count.
//!
//! Every operation — lookup, bump, replace-minimum — touches O(1) pointers,
//! which is the property Theorem 6.18 of the RHHH paper relies on ("if the
//! number is smaller than H, we also update a Space Saving instance, which
//! can be done in O(1) as well [34]").
//!
//! Semantics: the structure keeps `m` counters. A monitored key's counter
//! `count` never underestimates its true update count `X`, and
//! `count − error ≤ X ≤ count`; any unmonitored key satisfies
//! `X ≤ min-count ≤ N/m`.

use crate::fast_hash::FastMap;
use crate::{Candidate, CounterKey, FrequencyEstimator};

const NIL: u32 = u32::MAX;

#[derive(Debug, Clone)]
struct CounterSlot<K> {
    key: K,
    count: u64,
    /// Overestimation recorded when this slot was stolen from a victim.
    error: u64,
    bucket: u32,
    prev: u32,
    next: u32,
}

#[derive(Debug, Clone)]
struct BucketSlot {
    count: u64,
    head: u32,
    prev: u32,
    next: u32,
}

/// Space Saving over the O(1) stream-summary structure.
///
/// See the [crate docs](crate) for the role this plays in RHHH and
/// [`FrequencyEstimator`] for the exported bounds.
#[derive(Debug, Clone)]
pub struct SpaceSaving<K> {
    counters: Vec<CounterSlot<K>>,
    buckets: Vec<BucketSlot>,
    free_buckets: Vec<u32>,
    /// Bucket with the smallest count (head of the bucket list).
    min_bucket: u32,
    index: FastMap<K, u32>,
    updates: u64,
    /// Guaranteed mass (`count − error`) dropped by merge re-eviction;
    /// zero until the first [`FrequencyEstimator::merge`]. Keeps the mass
    /// ledger `Σ(count − error) + discarded ≤ updates` exact so
    /// [`SpaceSaving::debug_validate`] can audit merged instances too.
    discarded: u64,
    capacity: usize,
}

impl<K: CounterKey> SpaceSaving<K> {
    /// Count of the minimum bucket — the upper bound for any unmonitored
    /// key once the structure is full; 0 while it still has free slots.
    #[must_use]
    pub fn min_count(&self) -> u64 {
        if self.counters.len() < self.capacity || self.min_bucket == NIL {
            0
        } else {
            self.buckets[self.min_bucket as usize].count
        }
    }

    /// Number of monitored keys.
    #[must_use]
    pub fn len(&self) -> usize {
        self.counters.len()
    }

    /// Whether no key is monitored yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
    }

    /// Whether `key` is currently monitored. Read-only — the dispatch
    /// wrapper's regime sampling relies on probes having no side effects.
    #[doc(hidden)]
    #[must_use]
    pub fn monitored(&self, key: &K) -> bool {
        self.index.contains_key(key)
    }

    /// Guaranteed mass dropped by merge re-evictions (the `discarded`
    /// ledger); migration carries it across layout switches.
    pub(crate) fn discarded(&self) -> u64 {
        self.discarded
    }

    fn alloc_bucket(&mut self, count: u64) -> u32 {
        if let Some(b) = self.free_buckets.pop() {
            let slot = &mut self.buckets[b as usize];
            slot.count = count;
            slot.head = NIL;
            slot.prev = NIL;
            slot.next = NIL;
            b
        } else {
            self.buckets.push(BucketSlot {
                count,
                head: NIL,
                prev: NIL,
                next: NIL,
            });
            (self.buckets.len() - 1) as u32
        }
    }

    /// Unlinks bucket `b` from the bucket list and returns it to the free
    /// pool. The bucket must be empty.
    fn remove_bucket(&mut self, b: u32) {
        debug_assert_eq!(self.buckets[b as usize].head, NIL);
        let (prev, next) = {
            let slot = &self.buckets[b as usize];
            (slot.prev, slot.next)
        };
        if prev != NIL {
            self.buckets[prev as usize].next = next;
        } else {
            self.min_bucket = next;
        }
        if next != NIL {
            self.buckets[next as usize].prev = prev;
        }
        self.free_buckets.push(b);
    }

    /// Detaches counter `ci` from its bucket's member list (does not free
    /// the bucket even if it becomes empty — callers handle that).
    fn detach(&mut self, ci: u32) {
        let (b, prev, next) = {
            let c = &self.counters[ci as usize];
            (c.bucket, c.prev, c.next)
        };
        if prev != NIL {
            self.counters[prev as usize].next = next;
        } else {
            self.buckets[b as usize].head = next;
        }
        if next != NIL {
            self.counters[next as usize].prev = prev;
        }
    }

    /// Attaches counter `ci` at the head of bucket `b`.
    fn attach(&mut self, ci: u32, b: u32) {
        let old_head = self.buckets[b as usize].head;
        {
            let c = &mut self.counters[ci as usize];
            c.bucket = b;
            c.prev = NIL;
            c.next = old_head;
        }
        if old_head != NIL {
            self.counters[old_head as usize].prev = ci;
        }
        self.buckets[b as usize].head = ci;
        self.counters[ci as usize].count = self.buckets[b as usize].count;
    }

    /// Moves counter `ci` up by `w` counts: detaches it and walks forward
    /// along the (sorted) bucket list to the target count. Cost is the
    /// number of distinct counts crossed — O(1) for `w = 1`, and in the
    /// worst case `O(min(w, capacity))` for weighted updates.
    fn bump_by(&mut self, ci: u32, w: u64) {
        debug_assert!(w >= 1);
        let b = self.counters[ci as usize].bucket;
        let c = self.buckets[b as usize].count;
        let target_count = c + w;

        let only_member =
            self.buckets[b as usize].head == ci && self.counters[ci as usize].next == NIL;
        let next = self.buckets[b as usize].next;
        if only_member && (next == NIL || self.buckets[next as usize].count > target_count) {
            self.buckets[b as usize].count = target_count;
            self.counters[ci as usize].count = target_count;
            return;
        }

        self.detach(ci);
        // Walk to the last bucket with count < target.
        let mut prev = b;
        let mut cur = self.buckets[b as usize].next;
        while cur != NIL && self.buckets[cur as usize].count < target_count {
            prev = cur;
            cur = self.buckets[cur as usize].next;
        }
        let target = if cur != NIL && self.buckets[cur as usize].count == target_count {
            cur
        } else {
            // Insert a fresh bucket between prev and cur.
            let nb = self.alloc_bucket(target_count);
            self.buckets[nb as usize].prev = prev;
            self.buckets[nb as usize].next = cur;
            if cur != NIL {
                self.buckets[cur as usize].prev = nb;
            }
            self.buckets[prev as usize].next = nb;
            nb
        };
        self.attach(ci, target);
        if self.buckets[b as usize].head == NIL {
            self.remove_bucket(b);
        }
    }

    /// Moves counter `ci` from its current bucket to count+1 in O(1).
    fn bump(&mut self, ci: u32) {
        let b = self.counters[ci as usize].bucket;
        let c = self.buckets[b as usize].count;
        let next = self.buckets[b as usize].next;

        let only_member =
            self.buckets[b as usize].head == ci && self.counters[ci as usize].next == NIL;
        if only_member && (next == NIL || self.buckets[next as usize].count > c + 1) {
            // Sole occupant and no neighbouring bucket at c+1: raise the
            // bucket's count in place (keeps the list sorted, zero churn).
            self.buckets[b as usize].count = c + 1;
            self.counters[ci as usize].count = c + 1;
            return;
        }

        self.detach(ci);
        let target = if next != NIL && self.buckets[next as usize].count == c + 1 {
            next
        } else {
            // Insert a fresh bucket with count c+1 right after b.
            let nb = self.alloc_bucket(c + 1);
            self.buckets[nb as usize].prev = b;
            self.buckets[nb as usize].next = next;
            if next != NIL {
                self.buckets[next as usize].prev = nb;
            }
            self.buckets[b as usize].next = nb;
            nb
        };
        self.attach(ci, target);
        if self.buckets[b as usize].head == NIL {
            self.remove_bucket(b);
        }
    }

    /// Validates every structural invariant; used by tests and proptests.
    ///
    /// # Panics
    ///
    /// Panics on any inconsistency.
    #[doc(hidden)]
    pub fn debug_validate(&self) {
        // Bucket list is sorted ascending and doubly linked.
        let mut b = self.min_bucket;
        let mut last_count = 0u64;
        let mut seen_counters = 0usize;
        let mut prev_b = NIL;
        while b != NIL {
            let bucket = &self.buckets[b as usize];
            assert!(bucket.count > last_count || prev_b == NIL);
            assert_eq!(bucket.prev, prev_b, "bucket back-link broken");
            assert_ne!(bucket.head, NIL, "live bucket must not be empty");
            last_count = bucket.count;

            let mut ci = bucket.head;
            let mut prev_c = NIL;
            while ci != NIL {
                let c = &self.counters[ci as usize];
                assert_eq!(c.bucket, b, "counter points at wrong bucket");
                assert_eq!(c.count, bucket.count, "counter/bucket count skew");
                assert_eq!(c.prev, prev_c, "counter back-link broken");
                assert!(c.error <= c.count, "error exceeds count");
                assert_eq!(
                    self.index.get(&c.key),
                    Some(&ci),
                    "index out of sync for monitored key"
                );
                seen_counters += 1;
                prev_c = ci;
                ci = c.next;
            }
            prev_b = b;
            b = bucket.next;
        }
        assert_eq!(seen_counters, self.counters.len(), "orphaned counters");
        assert_eq!(self.index.len(), self.counters.len(), "index size skew");
        // Every increment raised exactly one guaranteed (count − error) unit;
        // replace-min evictions convert guaranteed mass into error mass, and
        // merge re-eviction drops guaranteed mass into `discarded` — so the
        // live guaranteed mass plus the discarded mass never exceeds the
        // number of updates, and when nothing was ever converted (all errors
        // zero) the ledger balances exactly.
        let guaranteed: u64 = self.counters.iter().map(|c| c.count - c.error).sum();
        assert!(
            guaranteed + self.discarded <= self.updates,
            "counted mass exceeds updates"
        );
        if self.counters.iter().all(|c| c.error == 0) {
            assert_eq!(
                guaranteed + self.discarded,
                self.updates,
                "mass lost without evictions"
            );
        }
    }

    /// Builds a structure directly from merged `(key, count, error)` entries
    /// sorted ascending by count: buckets are appended tail-ward in one
    /// pass, so rebuild costs O(entries) with no per-entry bucket walks.
    pub(crate) fn rebuild(
        capacity: usize,
        updates: u64,
        discarded: u64,
        entries: &[(K, u64, u64)],
    ) -> Self {
        let mut s = Self::with_capacity(capacity);
        s.updates = updates;
        s.discarded = discarded;
        let mut tail = NIL;
        for &(key, count, error) in entries {
            debug_assert!(count >= 1 && error <= count);
            let ci = s.counters.len() as u32;
            s.counters.push(CounterSlot {
                key,
                count: 0, // set by attach
                error,
                bucket: NIL,
                prev: NIL,
                next: NIL,
            });
            s.index.insert(key, ci);
            let b = if tail != NIL && s.buckets[tail as usize].count == count {
                tail
            } else {
                let nb = s.alloc_bucket(count);
                s.buckets[nb as usize].prev = tail;
                if tail == NIL {
                    s.min_bucket = nb;
                } else {
                    s.buckets[tail as usize].next = nb;
                }
                tail = nb;
                nb
            };
            s.attach(ci, b);
        }
        s
    }
}

impl<K: CounterKey> FrequencyEstimator<K> for SpaceSaving<K> {
    fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        Self {
            counters: Vec::with_capacity(capacity),
            buckets: Vec::with_capacity(capacity + 1),
            free_buckets: Vec::new(),
            min_bucket: NIL,
            // Pre-sized to its lifetime maximum: the index holds at most
            // `capacity` keys, so growth rehashes on the hot path are
            // avoided entirely.
            index: FastMap::with_capacity_and_hasher(capacity, Default::default()),
            updates: 0,
            discarded: 0,
            capacity,
        }
    }

    fn merge(&mut self, other: Self) {
        self.merge_many(vec![other]);
    }

    fn merge_many(&mut self, others: Vec<Self>) {
        if others.is_empty() {
            // Nothing to absorb: skip the no-op rebuild (a single-shard
            // harvest lands here for every node instance).
            return;
        }
        // Exact Space Saving merge over all K inputs at once: pair counts
        // and errors additively (with per-input min-count padding for
        // one-sided keys), then re-evict the union to capacity by dropping
        // minimal counters; see `merge_entries_many`. The single combine
        // pads tighter than a pairwise fold, whose padding grows with the
        // intermediate merged minima.
        let mut updates = self.updates;
        let mut discarded = self.discarded;
        let mut sides = Vec::with_capacity(others.len() + 1);
        sides.push((self.candidates(), self.min_count()));
        for other in &others {
            assert_eq!(
                self.capacity, other.capacity,
                "merge requires equal capacities"
            );
            updates += other.updates;
            discarded += other.discarded;
            sides.push((other.candidates(), other.min_count()));
        }
        let (entries, dropped) = crate::merge_entries_many(&sides, self.capacity);
        *self = Self::rebuild(self.capacity, updates, discarded + dropped, &entries);
    }

    #[inline]
    fn increment(&mut self, key: K) {
        self.updates += 1;

        if let Some(&ci) = self.index.get(&key) {
            self.bump(ci);
            return;
        }

        if self.counters.len() < self.capacity {
            // Free slot: start monitoring exactly.
            let ci = self.counters.len() as u32;
            self.counters.push(CounterSlot {
                key,
                count: 0, // set by attach
                error: 0,
                bucket: NIL,
                prev: NIL,
                next: NIL,
            });
            self.index.insert(key, ci);
            let b = if self.min_bucket != NIL && self.buckets[self.min_bucket as usize].count == 1 {
                self.min_bucket
            } else {
                let nb = self.alloc_bucket(1);
                self.buckets[nb as usize].next = self.min_bucket;
                if self.min_bucket != NIL {
                    self.buckets[self.min_bucket as usize].prev = nb;
                }
                self.min_bucket = nb;
                nb
            };
            self.attach(ci, b);
            return;
        }

        // Replace the minimum: steal any counter from the min bucket.
        let ci = self.buckets[self.min_bucket as usize].head;
        let victim_count = self.counters[ci as usize].count;
        let old_key = self.counters[ci as usize].key;
        self.index.remove(&old_key);
        {
            let c = &mut self.counters[ci as usize];
            c.key = key;
            c.error = victim_count;
        }
        self.index.insert(key, ci);
        self.bump(ci);
    }

    fn add(&mut self, key: K, weight: u64) {
        if weight == 0 {
            return;
        }
        self.updates += weight;

        if let Some(&ci) = self.index.get(&key) {
            self.bump_by(ci, weight);
            return;
        }

        if self.counters.len() < self.capacity {
            // Free slot: start monitoring exactly. Reuse the unit-insert
            // path for the bucket plumbing, then raise by the remainder.
            self.updates -= weight; // increment() re-adds one
            self.increment(key);
            self.updates += weight - 1;
            if weight > 1 {
                let ci = self.index[&key];
                self.bump_by(ci, weight - 1);
            }
            return;
        }

        // Replace the minimum with count = victim + weight.
        let ci = self.buckets[self.min_bucket as usize].head;
        let victim_count = self.counters[ci as usize].count;
        let old_key = self.counters[ci as usize].key;
        self.index.remove(&old_key);
        {
            let c = &mut self.counters[ci as usize];
            c.key = key;
            c.error = victim_count;
        }
        self.index.insert(key, ci);
        self.bump_by(ci, weight);
    }

    fn increment_batch(&mut self, keys: &[K]) {
        // Run-length encode consecutive equal keys: one index lookup and
        // one bucket walk per run instead of one per element. `add(k, w)`
        // leaves the structure in exactly the state of `w` increments of
        // `k` (bump_by is the w-fold composition of bump, and the eviction
        // path records the same victim error either way).
        crate::for_each_run(keys, |key, run| {
            if run == 1 {
                self.increment(key);
            } else {
                self.add(key, run);
            }
        });
    }

    fn flush_group_evicting_with(&mut self, keys: &mut [K], sort: &mut dyn FnMut(&mut [K])) {
        // This layout's flush is the default sorted flush; swapping the
        // comparison sort for the caller's ascending sorter changes the
        // permutation only among equal keys, which `increment_batch`'s
        // run-length view cannot observe.
        sort(keys);
        self.increment_batch(keys);
    }

    fn updates(&self) -> u64 {
        self.updates
    }

    fn upper(&self, key: &K) -> u64 {
        match self.index.get(key) {
            Some(&ci) => self.counters[ci as usize].count,
            None => self.min_count(),
        }
    }

    fn lower(&self, key: &K) -> u64 {
        match self.index.get(key) {
            Some(&ci) => {
                let c = &self.counters[ci as usize];
                c.count - c.error
            }
            None => 0,
        }
    }

    fn candidates(&self) -> Vec<Candidate<K>> {
        self.counters
            .iter()
            .map(|c| Candidate {
                key: c.key,
                upper: c.count,
                lower: c.count - c.error,
            })
            .collect()
    }

    fn capacity(&self) -> usize {
        self.capacity
    }

    fn layout_label(&self) -> &'static str {
        "stream-summary"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn exact_below_capacity() {
        let mut ss: SpaceSaving<u32> = SpaceSaving::with_capacity(10);
        for (key, n) in [(1u32, 5u64), (2, 3), (3, 9)] {
            for _ in 0..n {
                ss.increment(key);
            }
        }
        for (key, n) in [(1u32, 5u64), (2, 3), (3, 9)] {
            assert_eq!(ss.upper(&key), n);
            assert_eq!(ss.lower(&key), n);
        }
        assert_eq!(ss.upper(&999), 0, "unseen key while not full");
        assert_eq!(ss.updates(), 17);
        ss.debug_validate();
    }

    #[test]
    fn replacement_sets_error_and_bounds_hold() {
        let mut ss: SpaceSaving<u32> = SpaceSaving::with_capacity(2);
        ss.increment(1);
        ss.increment(1);
        ss.increment(2);
        // Structure full; key 3 evicts key 2 (count 1).
        ss.increment(3);
        assert_eq!(ss.upper(&3), 2); // victim count + 1
        assert_eq!(ss.lower(&3), 1); // could all be error
        assert_eq!(ss.lower(&2), 0); // evicted
        assert!(ss.upper(&2) >= 1); // min-count bound
        ss.debug_validate();
    }

    #[test]
    fn never_underestimates_and_error_bounded() {
        let cap = 8;
        let mut ss: SpaceSaving<u64> = SpaceSaving::with_capacity(cap);
        let mut exact: HashMap<u64, u64> = HashMap::new();
        // Deterministic skewed stream.
        let mut x = 0x12345678u64;
        for i in 0..10_000u64 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let key = if i % 3 == 0 { i % 5 } else { x % 64 };
            ss.increment(key);
            *exact.entry(key).or_default() += 1;
        }
        let n = ss.updates();
        for key in exact.keys().chain([&999_999u64]) {
            let f = exact.get(key).copied().unwrap_or(0);
            assert!(ss.upper(key) >= f, "upper({key}) < f");
            assert!(ss.lower(key) <= f, "lower({key}) > f");
            assert!(
                ss.upper(key) <= f + n / cap as u64,
                "error bound violated for {key}: upper {} f {} bound {}",
                ss.upper(key),
                f,
                f + n / cap as u64
            );
        }
        ss.debug_validate();
    }

    #[test]
    fn heavy_hitters_always_monitored() {
        // The Space Saving guarantee: any key with f > N/m is monitored.
        let cap = 10;
        let mut ss: SpaceSaving<u32> = SpaceSaving::with_capacity(cap);
        let mut x = 7u64;
        for i in 0..5_000u64 {
            if i % 4 == 0 {
                ss.increment(42); // 25% of traffic
            } else {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                ss.increment((x % 1000) as u32 + 100);
            }
        }
        let cands = ss.candidates();
        assert!(cands.iter().any(|c| c.key == 42), "HH lost from summary");
        assert_eq!(cands.len(), cap);
        ss.debug_validate();
    }

    #[test]
    fn min_count_tracks_minimum() {
        let mut ss: SpaceSaving<u32> = SpaceSaving::with_capacity(3);
        assert_eq!(ss.min_count(), 0);
        for k in 0..3 {
            ss.increment(k);
        }
        assert_eq!(ss.min_count(), 1);
        ss.increment(0);
        ss.increment(1);
        ss.increment(2);
        assert_eq!(ss.min_count(), 2);
        ss.debug_validate();
    }

    #[test]
    fn single_counter_capacity() {
        let mut ss: SpaceSaving<u32> = SpaceSaving::with_capacity(1);
        for k in 0..100u32 {
            ss.increment(k);
        }
        // The single counter absorbed every update.
        assert_eq!(ss.upper(&99), 100);
        assert_eq!(ss.len(), 1);
        ss.debug_validate();
    }

    #[test]
    fn total_upper_mass_bounded() {
        // Σ counts ≤ N + m·(N/m): each counter's error ≤ min ≤ N/m.
        let cap = 16usize;
        let mut ss: SpaceSaving<u64> = SpaceSaving::with_capacity(cap);
        let mut x = 1u64;
        for _ in 0..20_000 {
            x = x.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(3);
            ss.increment(x % 512);
        }
        let n = ss.updates();
        let total: u64 = ss.candidates().iter().map(|c| c.upper).sum();
        assert!(total <= n + (cap as u64) * (n / cap as u64));
        ss.debug_validate();
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _: SpaceSaving<u32> = SpaceSaving::with_capacity(0);
    }

    #[test]
    fn increment_batch_matches_scalar_increments() {
        // Streams with long same-key runs (the shape the RHHH batch path
        // produces after masking) and with no runs at all.
        let mut x = 0xFEED_u64;
        let mut runs: Vec<u64> = Vec::new();
        for _ in 0..2_000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let key = x % 17;
            let len = 1 + (x >> 32) % 9;
            for _ in 0..len {
                runs.push(key);
            }
        }
        for cap in [1usize, 4, 16, 64] {
            let mut batched: SpaceSaving<u64> = SpaceSaving::with_capacity(cap);
            let mut scalar: SpaceSaving<u64> = SpaceSaving::with_capacity(cap);
            batched.increment_batch(&runs);
            for &k in &runs {
                scalar.increment(k);
            }
            assert_eq!(batched.updates(), scalar.updates());
            for key in 0..17u64 {
                assert_eq!(
                    batched.upper(&key),
                    scalar.upper(&key),
                    "cap {cap} key {key}"
                );
                assert_eq!(
                    batched.lower(&key),
                    scalar.lower(&key),
                    "cap {cap} key {key}"
                );
            }
            batched.debug_validate();
        }
    }
}
