//! Shared integer mixing primitives — the one home of the workspace's two
//! wyrand-style mixers, with block-capable variants for the batch hot path.
//!
//! Until PR 6 the RNG output mix (`hhh-core::sampling`'s wyrand step) and
//! the key hash mix ([`crate::FastHasher`]'s multiply-fold + fmix64
//! finalizer) were two independent copies of the same idea: one 64×64
//! multiply whose halves are folded together. Both sit on the per-packet
//! hot path — one mixing *draws*, one mixing *keys* — and the batch front
//! end wants to evaluate either over a whole block of lanes at once, so
//! they live here as free functions the compiler can pipeline: each block
//! loop's iterations are dependency-free, which turns the ~5-cycle
//! multiply latency chains of the serial callers into back-to-back issues.
//!
//! Exact-output compatibility is part of the contract: the serial
//! functions reproduce their pre-PR 6 call sites bit for bit (pinned by
//! hardcoded-vector tests below), and every `*_block` variant is defined
//! as "the serial function per element" — nothing about blocking may leak
//! into the values, only into the schedule.

/// The wyrand state increment (also the seed splash constant).
pub const WY_ADD: u64 = 0xA076_1D64_78BD_642F;

/// The wyrand mix xor constant.
pub const WY_XOR: u64 = 0xE703_7ED1_A0B4_28DB;

/// 64-bit multiplicative constant (golden-ratio based, as in FxHash) used
/// by the key-hash fold.
pub const FX_SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The wyrand output mix for a given state value: one 64×64→128 multiply
/// of the state against its xor-perturbed self, halves folded together.
/// Shared by the serial RNG step and the block fill so the two can never
/// drift apart.
#[inline(always)]
#[must_use]
pub fn wyrand_mix(state: u64) -> u64 {
    let t = u128::from(state).wrapping_mul(u128::from(state ^ WY_XOR));
    ((t >> 64) ^ t) as u64
}

/// One FxHash-style fold step: rotate the running state, xor the word in,
/// multiply by [`FX_SEED`]. The word-ingestion half of [`crate::FastHasher`].
#[inline(always)]
#[must_use]
pub fn fx_fold(state: u64, word: u64) -> u64 {
    (state.rotate_left(5) ^ word).wrapping_mul(FX_SEED)
}

/// MurmurHash3's fmix64 finalizer: full avalanche, so the low-entropy top
/// bits of packed prefix keys spread into the bucket-index bits. The
/// finish half of [`crate::FastHasher`].
#[inline(always)]
#[must_use]
pub fn fmix64(mut x: u64) -> u64 {
    x ^= x >> 33;
    x = x.wrapping_mul(0xff51_afd7_ed55_8ccd);
    x ^= x >> 33;
    x = x.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    x ^= x >> 33;
    x
}

/// The full one-word key hash: fold `v` into an empty state, then
/// finalize. Bit-identical to hashing `v` through [`crate::FastHasher`]
/// via `write_u64` + `finish` (pinned below), so table layouts derived
/// from either agree.
#[inline(always)]
#[must_use]
pub fn hash_u64(v: u64) -> u64 {
    fmix64(fx_fold(0, v))
}

/// Fills `out` with consecutive wyrand draws starting *after* `state`,
/// returning the advanced state. Equivalent to `state += WY_ADD;
/// out[i] = wyrand_mix(state)` per element — the states are an affine
/// sequence, so the expensive mixes have no cross-iteration dependencies
/// and pipeline instead of serializing (~10 cycles of latency per draw on
/// the serial path).
#[must_use]
pub fn wyrand_fill(state: u64, out: &mut [u64]) -> u64 {
    let mut s = state;
    for o in out.iter_mut() {
        s = s.wrapping_add(WY_ADD);
        *o = wyrand_mix(s);
    }
    s
}

/// [`hash_u64`] over a block of keys: `out[i] = hash_u64(keys[i])`. The
/// lanes are independent, so the three multiplies per key issue
/// back-to-back across lanes.
///
/// # Panics
///
/// Panics when the slices' lengths differ.
pub fn hash_u64_block(keys: &[u64], out: &mut [u64]) {
    assert_eq!(keys.len(), out.len(), "hash block length mismatch");
    for (o, &k) in out.iter_mut().zip(keys) {
        *o = hash_u64(k);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::BuildHasher;

    /// Pinned output vectors: these are the exact values the pre-PR 6
    /// `sampling.rs::wyrand_mix` produced. Any change here silently
    /// reshuffles every seeded experiment in the workspace.
    #[test]
    fn wyrand_mix_pinned_vectors() {
        for (input, expect) in [
            (0u64, 0u64),
            (1, 0xe703_7ed1_a0b4_28da),
            (42, 0xe692_ce64_5d8e_b7af),
            (0xDEAD_BEEF, 0xa34f_48b7_9870_032e),
            (u64::MAX, u64::MAX),
        ] {
            assert_eq!(wyrand_mix(input), expect, "wyrand_mix({input:#x})");
        }
    }

    /// Pinned output vectors: the exact values the pre-PR 6
    /// `FastHasher::write_u64` + `finish` pair produced. Any change here
    /// silently re-homes every entry of every tagged table.
    #[test]
    fn hash_u64_pinned_vectors() {
        for (input, expect) in [
            (0u64, 0u64),
            (1, 0x37e8_d294_6949_7cd2),
            (42, 0x2558_5839_4b61_ab76),
            (0xDEAD_BEEF, 0x106a_a50d_b78f_d850),
            (u64::MAX, 0x92f9_6f6a_0392_ef8d),
        ] {
            assert_eq!(hash_u64(input), expect, "hash_u64({input:#x})");
        }
    }

    #[test]
    fn hash_u64_matches_fast_hasher_call_site() {
        for v in [0u64, 1, 42, 0xDEAD_BEEF, u64::MAX, 0x0A14_0000_0808_0808] {
            assert_eq!(
                hash_u64(v),
                crate::IntHashBuilder.hash_one(v),
                "free-function hash diverged from the Hasher path at {v:#x}"
            );
        }
    }

    #[test]
    fn wyrand_fill_matches_serial_definition() {
        let mut state = 0x5EEDu64;
        let mut block = [0u64; 97];
        let advanced = wyrand_fill(state, &mut block);
        for (i, &b) in block.iter().enumerate() {
            state = state.wrapping_add(WY_ADD);
            assert_eq!(b, wyrand_mix(state), "draw {i} diverged");
        }
        assert_eq!(advanced, state, "state must advance past the block");
    }

    #[test]
    fn hash_block_matches_serial() {
        let keys: Vec<u64> = (0..64u64)
            .map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .collect();
        let mut out = vec![0u64; keys.len()];
        hash_u64_block(&keys, &mut out);
        for (i, (&k, &h)) in keys.iter().zip(&out).enumerate() {
            assert_eq!(h, hash_u64(k), "lane {i} diverged");
        }
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn hash_block_rejects_length_mismatch() {
        let mut out = [0u64; 2];
        hash_u64_block(&[1, 2, 3], &mut out);
    }
}
