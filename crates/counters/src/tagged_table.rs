//! The flat storage layer of [`crate::CompactSpaceSaving`]: a SwissTable
//! style open-addressing arena with a 1-byte fingerprint ("tag") array
//! probed ahead of the slot data, and the slot data itself split by
//! access temperature.
//!
//! # Why tags
//!
//! The PR 2 layout fused the hash index into 32 B AoS slots, so even a
//! *miss* — the dominant case on the eviction-heavy tail of an RHHH bottom
//! node — had to load full slots just to discover emptiness. Here every
//! slot contributes one byte to a dense tag array:
//!
//! * `EMPTY` (`0x80`) marks a free slot, terminating probe chains;
//! * an occupied slot stores a 7-bit fingerprint of its key's hash
//!   (bits 57..64 — disjoint from the index bits the home position uses).
//!
//! A probe scans the tag array 8 slots at a time with plain `u64` SWAR
//! word compares (no stdlib SIMD, no `unsafe`): one unaligned 8-byte load
//! answers "which of these 8 slots could hold the key, and is the chain
//! over?". Absence therefore resolves *without ever touching the slot
//! arrays* — for the 4096-slot table of the paper's 1001-counter
//! configuration the whole tag array is 4 KB, effectively L1-resident
//! across every probe of a batch flush. A tag hit is confirmed against
//! the hot lane (false-positive rate ≤ 2⁻⁷ per scanned slot).
//!
//! # Why temperature-split SoA
//!
//! Behind the tags, slot data is split into exactly two lanes by how the
//! update path touches it:
//!
//! * **Hot lane** — dense `(key, count)` pairs (16 B for `u64` keys). One
//!   cache line serves the whole bump path (tag-hit confirm + count
//!   write), the minimum rescans (`count` at a fixed 16 B stride over
//!   contiguous memory — half the traffic of the 32 B AoS slots), victim
//!   revalidation, and an eviction's chain scan and install.
//! * **Cold lane** — per-slot eviction `error`, touched only when a slot
//!   is stolen or queried, never by bumps or rescans.
//!
//! The PR 2 slot also cached `home = hash(key) & mask`; that lane is gone
//! — backward-shift deletion recomputes the hash of the (rare) entries it
//! actually moves, whose keys its shift scan has already loaded anyway.
//!
//! # Probe mechanics
//!
//! The table length is a power of two ≥ 8; windows start at the key's home
//! index and advance 8 slots per step (index arithmetic is masked, and the
//! first `GROUP − 1` tags are mirrored past the end of the array so an
//! unaligned window never wraps mid-load). Deletion is backward-shift (as
//! in the PR 2 layout — no tombstones, probes never degrade).

use crate::CounterKey;

/// Tag value of a free slot. Occupied tags are 7-bit (`0x00..=0x7F`), so
/// the byte's high bit alone distinguishes empty from occupied — which is
/// what lets one SWAR AND find empties in a window.
pub(crate) const EMPTY: u8 = 0x80;

/// Slots examined per SWAR window.
const GROUP: usize = 8;

/// `0x01` in every byte lane.
const LANES_LO: u64 = 0x0101_0101_0101_0101;

/// `0x80` in every byte lane.
const LANES_HI: u64 = 0x8080_8080_8080_8080;

/// Per-byte zero test: the high bit of each byte of the result is set if
/// that byte of `x` is zero. The classic SWAR formula admits false
/// positives in bytes *above* a borrow (e.g. `0x01` following a zero
/// byte), never false negatives — callers confirm candidates against the
/// key lane, so a rare false positive costs one extra compare.
#[inline(always)]
pub(crate) fn zero_bytes(x: u64) -> u64 {
    x.wrapping_sub(LANES_LO) & !x & LANES_HI
}

/// Outcome of a membership probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Probe {
    /// The key occupies this slot.
    Found(usize),
    /// The key is absent; the payload is the first empty slot on its probe
    /// chain (where an insert of this key would land).
    Absent(usize),
}

/// The hot lane of one slot: everything the bump path and the minimum
/// machinery read, packed so they share a cache line per slot.
#[derive(Debug, Clone, Copy)]
pub(crate) struct HotSlot<K> {
    /// The monitored key (valid where the tag is occupied).
    pub(crate) key: K,
    /// Update count; `0` marks an empty slot (kept in lockstep with the
    /// tag) so minimum rescans need only this lane.
    pub(crate) count: u64,
}

/// The tag + temperature-split arena. Pure storage and probing; the Space
/// Saving semantics (minimum tracking, eviction policy, update ledger)
/// live in [`crate::CompactSpaceSaving`].
#[derive(Debug, Clone)]
pub(crate) struct TaggedTable<K> {
    /// One byte per slot plus `GROUP − 1` mirror bytes of the array's
    /// start, so unaligned 8-byte windows never wrap mid-load.
    tags: Vec<u8>,
    /// The hot `(key, count)` lane.
    pub(crate) hot: Vec<HotSlot<K>>,
    /// Cold lane: overestimation recorded when the slot was stolen from a
    /// victim. Touched only by evictions, shifts and queries.
    pub(crate) errors: Vec<u64>,
    /// Table length − 1 (the length is a power of two).
    pub(crate) mask: usize,
}

impl<K: CounterKey> TaggedTable<K> {
    /// An unallocated table; [`TaggedTable::init`] sizes it on first use.
    pub(crate) fn new() -> Self {
        Self {
            tags: Vec::new(),
            hot: Vec::new(),
            errors: Vec::new(),
            mask: 0,
        }
    }

    /// Whether the arena has been allocated.
    #[inline(always)]
    pub(crate) fn is_init(&self) -> bool {
        !self.hot.is_empty()
    }

    /// Allocates the arena: first power of two ≥ 4·capacity (load factor
    /// ≤ ¼ — measured faster than ½ even with tag-probing, because
    /// backward shifts move almost nothing and eviction chains stay
    /// short), with a floor of one SWAR group. `filler` populates the key
    /// lanes of empty slots (inert — emptiness is the tag/count, not the
    /// key — but it spares a `K: Default` bound).
    pub(crate) fn init(&mut self, capacity: usize, filler: K) {
        let table = (capacity * 4).next_power_of_two().max(GROUP);
        self.tags = vec![EMPTY; table + (GROUP - 1)];
        self.hot = vec![
            HotSlot {
                key: filler,
                count: 0,
            };
            table
        ];
        self.errors = vec![0; table];
        self.mask = table - 1;
    }

    /// Number of slots.
    #[inline(always)]
    pub(crate) fn len(&self) -> usize {
        self.hot.len()
    }

    /// Splits one hash into the probe start (index bits) and the 7-bit
    /// fingerprint (top bits — disjoint, so tag collisions within a chain
    /// are independent of placement).
    #[inline(always)]
    pub(crate) fn home_and_tag(&self, hash: u64) -> (usize, u8) {
        (hash as usize & self.mask, (hash >> 57) as u8)
    }

    /// Whether slot `i` is occupied.
    #[inline(always)]
    pub(crate) fn occupied(&self, i: usize) -> bool {
        self.tags[i] != EMPTY
    }

    /// Writes slot `i`'s tag, maintaining the wrap-around mirror bytes.
    #[inline(always)]
    fn set_tag(&mut self, i: usize, tag: u8) {
        self.tags[i] = tag;
        if i < GROUP - 1 {
            self.tags[self.mask + 1 + i] = tag;
        }
    }

    /// One unaligned 8-tag window starting at slot `pos` (< table length;
    /// the mirror bytes cover the wrap).
    #[inline(always)]
    fn window(&self, pos: usize) -> u64 {
        u64::from_le_bytes(
            self.tags[pos..pos + GROUP]
                .try_into()
                .expect("8-byte window"),
        )
    }

    /// Membership probe: scans tag windows from the key's home; slot data
    /// is only loaded to confirm a matching fingerprint, so a miss touches
    /// nothing but the tag array. Requires at least one empty slot (the
    /// load factor invariant guarantees it).
    #[inline]
    pub(crate) fn probe(&self, home: usize, tag: u8, key: &K) -> Probe {
        let needle = u64::from(tag) * LANES_LO;
        let mut pos = home;
        loop {
            let w = self.window(pos);
            let empties = w & LANES_HI;
            let mut cand = zero_bytes(w ^ needle);
            if empties != 0 {
                // Slots past the chain's first empty are other chains'
                // territory; drop their candidate bits.
                cand &= (1u64 << empties.trailing_zeros()) - 1;
            }
            while cand != 0 {
                let i = (pos + (cand.trailing_zeros() >> 3) as usize) & self.mask;
                if self.hot[i].key == *key {
                    return Probe::Found(i);
                }
                cand &= cand - 1;
            }
            if empties != 0 {
                let i = (pos + (empties.trailing_zeros() >> 3) as usize) & self.mask;
                return Probe::Absent(i);
            }
            pos = (pos + GROUP) & self.mask;
        }
    }

    /// First empty slot on the probe chain starting at `home` — where an
    /// insert of a key homed there lands. Tag-array scan only.
    #[inline]
    pub(crate) fn first_empty_from(&self, home: usize) -> usize {
        let mut pos = home;
        loop {
            let empties = self.window(pos) & LANES_HI;
            if empties != 0 {
                return (pos + (empties.trailing_zeros() >> 3) as usize) & self.mask;
            }
            pos = (pos + GROUP) & self.mask;
        }
    }

    /// Fills the (empty) slot `i` with a new entry.
    #[inline]
    pub(crate) fn install(&mut self, i: usize, tag: u8, key: K, count: u64, error: u64) {
        debug_assert!(!self.occupied(i) && count > 0);
        self.hot[i] = HotSlot { key, count };
        self.errors[i] = error;
        self.set_tag(i, tag);
    }

    /// Overwrites the (occupied) slot `i` with a new entry in place — the
    /// eviction fast path when a minimum lives on the new key's own probe
    /// chain: no slot empties, so every chain stays intact with zero
    /// shifts or extra scans.
    #[inline]
    pub(crate) fn overwrite(&mut self, i: usize, tag: u8, key: K, count: u64, error: u64) {
        debug_assert!(self.occupied(i) && count > 0);
        self.hot[i] = HotSlot { key, count };
        self.errors[i] = error;
        self.set_tag(i, tag);
    }

    /// Backward-shift deletion: empties `v` and re-compacts the probe
    /// chains that ran through it, so probes never need tombstones.
    /// Chain-end detection is a tag read; the home distance of a scanned
    /// entry is recomputed from its key via `home_of` (the key's hot line
    /// is already loaded — cheaper than keeping a per-slot home lane the
    /// install path would have to write). `on_move(new_index, count)`
    /// reports each relocation so the caller can repair any index hints
    /// it keeps (the counter above re-points its minimum-level victim
    /// hints, which would otherwise starve and force full rescans under
    /// shift churn). Returns the final hole position.
    pub(crate) fn remove_at(
        &mut self,
        v: usize,
        home_of: impl Fn(&K) -> usize,
        mut on_move: impl FnMut(usize, u64),
    ) -> usize {
        let mask = self.mask;
        let mut hole = v;
        let mut j = v;
        loop {
            j = (j + 1) & mask;
            if self.tags[j] == EMPTY {
                break;
            }
            // `j` may fill the hole iff its probe distance reaches back at
            // least to the hole; otherwise moving it would place it before
            // its home and break its own chain.
            let dist_home = j.wrapping_sub(home_of(&self.hot[j].key)) & mask;
            let dist_hole = j.wrapping_sub(hole) & mask;
            if dist_home >= dist_hole {
                self.hot[hole] = self.hot[j];
                self.errors[hole] = self.errors[j];
                let tag = self.tags[j];
                self.set_tag(hole, tag);
                on_move(hole, self.hot[hole].count);
                hole = j;
            }
        }
        self.set_tag(hole, EMPTY);
        self.hot[hole].count = 0;
        hole
    }

    /// Tag-layer invariants, called by the counter's `debug_validate`:
    /// tag/count emptiness in lockstep, fingerprints consistent with a
    /// recomputed hash, mirror bytes fresh.
    ///
    /// # Panics
    ///
    /// Panics on any inconsistency.
    pub(crate) fn debug_validate_tags(&self, tag_of: impl Fn(&K) -> (usize, u8)) {
        assert_eq!(self.tags.len(), self.hot.len() + GROUP - 1);
        for i in 0..self.hot.len() {
            let occupied = self.tags[i] != EMPTY;
            assert_eq!(
                occupied,
                self.hot[i].count > 0,
                "tag/count emptiness skew at {i}"
            );
            if occupied {
                let (_, tag) = tag_of(&self.hot[i].key);
                assert_eq!(self.tags[i], tag, "stale fingerprint at {i}");
                assert!(tag < EMPTY, "occupied tag collides with EMPTY at {i}");
            }
        }
        for m in 0..GROUP - 1 {
            assert_eq!(
                self.tags[self.mask + 1 + m],
                self.tags[m],
                "mirror byte {m} out of date"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hash_of(key: u64) -> u64 {
        use std::hash::BuildHasher;
        crate::fast_hash::IntHashBuilder.hash_one(key)
    }

    fn table_with(capacity: usize, keys: &[u64]) -> TaggedTable<u64> {
        let mut t: TaggedTable<u64> = TaggedTable::new();
        t.init(capacity, 0);
        for &k in keys {
            let (home, tag) = t.home_and_tag(hash_of(k));
            match t.probe(home, tag, &k) {
                Probe::Absent(i) => t.install(i, tag, k, 1, 0),
                Probe::Found(_) => panic!("duplicate insert"),
            }
        }
        t
    }

    #[test]
    fn zero_bytes_finds_each_lane() {
        for lane in 0..8 {
            let x = !(0xFFu64 << (8 * lane));
            let m = zero_bytes(x);
            assert_eq!(m.trailing_zeros() as usize / 8, lane);
        }
        assert_eq!(zero_bytes(u64::MAX), 0);
    }

    #[test]
    fn probe_finds_inserted_keys_and_rejects_others() {
        let keys: Vec<u64> = (0..200).map(|i| i * 977 + 13).collect();
        let t = table_with(512, &keys);
        for &k in &keys {
            let (home, tag) = t.home_and_tag(hash_of(k));
            assert!(matches!(t.probe(home, tag, &k), Probe::Found(_)), "{k}");
        }
        for k in 10_000..10_200u64 {
            let (home, tag) = t.home_and_tag(hash_of(k));
            assert!(matches!(t.probe(home, tag, &k), Probe::Absent(_)), "{k}");
        }
        t.debug_validate_tags(|k| t.home_and_tag(hash_of(*k)));
    }

    #[test]
    fn tiny_table_gets_group_floor() {
        let t = table_with(1, &[7]);
        assert_eq!(t.len(), GROUP, "capacity 1 still gets one SWAR group");
        let (home, tag) = t.home_and_tag(hash_of(7));
        assert!(matches!(t.probe(home, tag, &7), Probe::Found(_)));
    }

    #[test]
    fn removal_keeps_chains_probeable() {
        // Insert, remove every third key, re-probe everything.
        let keys: Vec<u64> = (0..96).collect();
        let mut t = table_with(128, &keys);
        let mask = t.mask;
        for &k in keys.iter().step_by(3) {
            let (home, tag) = t.home_and_tag(hash_of(k));
            let Probe::Found(i) = t.probe(home, tag, &k) else {
                panic!("{k} vanished before removal");
            };
            t.remove_at(i, |key| hash_of(*key) as usize & mask, |_, _| {});
        }
        for &k in &keys {
            let (home, tag) = t.home_and_tag(hash_of(k));
            let hit = matches!(t.probe(home, tag, &k), Probe::Found(_));
            assert_eq!(hit, k % 3 != 0, "key {k}");
        }
        t.debug_validate_tags(|k| t.home_and_tag(hash_of(*k)));
    }

    #[test]
    fn wraparound_windows_read_mirror_bytes() {
        // Force a chain that wraps the table end: home the keys manually
        // near the top of a small table by picking keys whose hash lands
        // there (search for them).
        let mut t: TaggedTable<u64> = TaggedTable::new();
        t.init(2, 0); // 8 slots
        let near_end: Vec<u64> = (0..50_000u64)
            .filter(|&k| {
                let (home, _) = t.home_and_tag(hash_of(k));
                home >= 6
            })
            .take(2)
            .collect();
        for &k in &near_end {
            let (home, tag) = t.home_and_tag(hash_of(k));
            if let Probe::Absent(i) = t.probe(home, tag, &k) {
                t.install(i, tag, k, 1, 0);
            }
        }
        for &k in &near_end {
            let (home, tag) = t.home_and_tag(hash_of(k));
            assert!(matches!(t.probe(home, tag, &k), Probe::Found(_)), "{k}");
        }
        t.debug_validate_tags(|k| t.home_and_tag(hash_of(*k)));
    }

    #[test]
    fn first_empty_matches_probe_absent() {
        let keys: Vec<u64> = (0..40).map(|i| i * 31 + 5).collect();
        let t = table_with(64, &keys);
        for k in 5_000..5_100u64 {
            let (home, tag) = t.home_and_tag(hash_of(k));
            let Probe::Absent(i) = t.probe(home, tag, &k) else {
                panic!("unexpected hit");
            };
            assert_eq!(i, t.first_empty_from(home), "key {k}");
        }
    }
}
