//! Misra–Gries / "Frequent" (Demaine, López-Ortiz, Munro — ESA 2002;
//! Karp, Shenker, Papadimitriou — TODS 2003).
//!
//! Keeps `k` counters; a key not monitored when the table is full causes a
//! global decrement, which charges one unit against `k+1` distinct keys at
//! once. Counts therefore *underestimate*: `f − N/(k+1) ≤ count ≤ f`, and
//! the tighter data-dependent deficit `(N − Σcounts)/(k+1)` bounds the
//! underestimation.
//!
//! Referenced in Section 3.1 of the RHHH paper as one of the counter
//! algorithms ([17, 30]) that can replace Space Saving.

use crate::fast_hash::FastMap;
use crate::{Candidate, CounterKey, FrequencyEstimator};

/// Misra–Gries summary with deterministic underestimates.
///
/// The global decrement makes `increment` O(k) in the worst case but O(1)
/// amortized (every decrement is paid for by an earlier increment).
#[derive(Debug, Clone)]
pub struct MisraGries<K> {
    counts: FastMap<K, u64>,
    capacity: usize,
    updates: u64,
    /// Total mass currently stored in `counts` (kept incrementally so the
    /// deficit bound is O(1) to compute).
    stored: u64,
}

impl<K: CounterKey> MisraGries<K> {
    /// Data-dependent upper bound on how much any key's count may
    /// underestimate its true frequency: `(N − Σcounts)/(k+1)`.
    #[must_use]
    pub fn deficit_bound(&self) -> u64 {
        (self.updates - self.stored) / (self.capacity as u64 + 1)
    }
}

impl<K: CounterKey> FrequencyEstimator<K> for MisraGries<K> {
    fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        Self {
            counts: FastMap::default(),
            capacity,
            updates: 0,
            stored: 0,
        }
    }

    fn increment(&mut self, key: K) {
        self.updates += 1;
        if let Some(c) = self.counts.get_mut(&key) {
            *c += 1;
            self.stored += 1;
            return;
        }
        if self.counts.len() < self.capacity {
            self.counts.insert(key, 1);
            self.stored += 1;
            return;
        }
        // Decrement-all: the arriving key and the k stored keys each give
        // up one unit.
        self.counts.retain(|_, c| {
            *c -= 1;
            *c > 0
        });
        self.stored -= self.capacity as u64;
    }

    fn add(&mut self, key: K, weight: u64) {
        if weight == 0 {
            return;
        }
        self.updates += weight;
        if let Some(c) = self.counts.get_mut(&key) {
            *c += weight;
            self.stored += weight;
            return;
        }
        self.counts.insert(key, weight);
        self.stored += weight;
        // Weighted decrement-all: repeatedly subtract the minimum count
        // from everyone until the table fits again (each round charges the
        // subtracted mass against capacity+1 distinct keys, preserving the
        // deficit bound).
        while self.counts.len() > self.capacity {
            let m = *self.counts.values().min().expect("non-empty over capacity");
            let before = self.counts.len() as u64;
            self.counts.retain(|_, c| {
                *c -= m;
                *c > 0
            });
            self.stored -= m * before;
        }
    }

    fn increment_batch(&mut self, keys: &[K]) {
        // One table lookup (and at most one weighted decrement round) per
        // run of equal consecutive keys, via the native `add` above — the
        // trait default would pay one lookup per element.
        crate::for_each_run(keys, |key, run| self.add(key, run));
    }

    /// The Misra–Gries merge of Agarwal et al. (*Mergeable Summaries*,
    /// PODS 2012): sum counts key-wise, then subtract the `(k+1)`-st
    /// largest combined count from every entry and drop the non-positive
    /// ones. Each key loses at most that subtrahend while at least `k+1`
    /// entries lose it in full, so the data-dependent deficit invariant
    /// `underestimate ≤ (N − Σcounts)/(k+1)` — and with it the documented
    /// `N/(k+1)` bound over the concatenated stream — survives merging.
    fn merge(&mut self, other: Self) {
        assert_eq!(
            self.capacity, other.capacity,
            "merge requires equal capacities"
        );
        self.updates += other.updates;
        self.stored += other.stored;
        for (key, c) in other.counts {
            *self.counts.entry(key).or_insert(0) += c;
        }
        if self.counts.len() > self.capacity {
            let mut counts: Vec<u64> = self.counts.values().copied().collect();
            counts.sort_unstable_by(|a, b| b.cmp(a));
            let sub = counts[self.capacity];
            let mut removed = 0u64;
            self.counts.retain(|_, c| {
                let cut = (*c).min(sub);
                removed += cut;
                *c -= cut;
                *c > 0
            });
            self.stored -= removed;
        }
    }

    fn updates(&self) -> u64 {
        self.updates
    }

    fn upper(&self, key: &K) -> u64 {
        self.counts.get(key).copied().unwrap_or(0) + self.deficit_bound()
    }

    fn lower(&self, key: &K) -> u64 {
        self.counts.get(key).copied().unwrap_or(0)
    }

    fn candidates(&self) -> Vec<Candidate<K>> {
        let deficit = self.deficit_bound();
        self.counts
            .iter()
            .map(|(&key, &c)| Candidate {
                key,
                upper: c + deficit,
                lower: c,
            })
            .collect()
    }

    fn capacity(&self) -> usize {
        self.capacity
    }

    fn error_bound(&self) -> u64 {
        self.updates / (self.capacity as u64 + 1)
    }

    fn layout_label(&self) -> &'static str {
        "misra-gries"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn exact_when_distinct_keys_fit() {
        let mut mg: MisraGries<u32> = MisraGries::with_capacity(8);
        for _ in 0..5 {
            mg.increment(1);
        }
        for _ in 0..3 {
            mg.increment(2);
        }
        assert_eq!(mg.lower(&1), 5);
        assert_eq!(mg.upper(&1), 5);
        assert_eq!(mg.deficit_bound(), 0);
    }

    #[test]
    fn bounds_bracket_truth_on_adversarial_stream() {
        let k = 9;
        let mut mg: MisraGries<u64> = MisraGries::with_capacity(k);
        let mut exact: HashMap<u64, u64> = HashMap::new();
        let mut x = 3u64;
        for i in 0..20_000u64 {
            // Heavy key 0 mixed with a churning tail.
            let key = if i % 2 == 0 { 0 } else { x % 5_000 + 10 };
            x = x.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
            mg.increment(key);
            *exact.entry(key).or_default() += 1;
        }
        let n = mg.updates();
        for (key, &f) in &exact {
            assert!(mg.lower(key) <= f, "lower({key}) > truth");
            assert!(mg.upper(key) >= f, "upper({key}) < truth");
            assert!(
                f - mg.lower(key) <= n / (k as u64 + 1),
                "MG deficit bound violated"
            );
        }
    }

    #[test]
    fn majority_element_survives() {
        // With k = 1 this is the Boyer–Moore majority vote.
        let mut mg: MisraGries<u32> = MisraGries::with_capacity(1);
        let stream = [1, 2, 1, 3, 1, 4, 1, 1];
        for k in stream {
            mg.increment(k);
        }
        let cands = mg.candidates();
        assert_eq!(cands.len(), 1);
        assert_eq!(cands[0].key, 1);
    }

    #[test]
    fn decrement_all_clears_singletons() {
        let mut mg: MisraGries<u32> = MisraGries::with_capacity(2);
        mg.increment(1);
        mg.increment(2);
        mg.increment(3); // decrements 1 and 2 to zero, drops them
        assert_eq!(mg.lower(&1), 0);
        assert_eq!(mg.lower(&2), 0);
        assert_eq!(mg.lower(&3), 0); // 3 itself was never inserted
        assert_eq!(mg.deficit_bound(), 1);
    }

    #[test]
    fn stored_mass_accounting() {
        let mut mg: MisraGries<u64> = MisraGries::with_capacity(4);
        let mut x = 11u64;
        for _ in 0..10_000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(7);
            mg.increment(x % 100);
        }
        let stored: u64 = mg.counts.values().sum();
        assert_eq!(stored, mg.stored);
        assert!(mg.counts.len() <= 4);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _: MisraGries<u32> = MisraGries::with_capacity(0);
    }
}
