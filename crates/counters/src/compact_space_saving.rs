//! Space Saving on a cache-packed flat arena: the hash index is fused into
//! the counter storage itself.
//!
//! The stream-summary implementation ([`crate::SpaceSaving`]) is O(1)
//! worst-case but pays for it in memory traffic: every update probes a
//! separate `HashMap` index, then walks counter and bucket pointers across
//! a ~100 KB arena. At RHHH's steady state that caps the batch path's
//! speedup (see ROADMAP "Performance").
//!
//! This layout removes the indirection. The structure is a single open
//! addressing table whose slots hold `(key, count, error, home)` *in-line*:
//! the linear probe that finds the key is also the load that fetches its
//! counter, so the common bump path touches exactly one cache line. There
//! are no buckets, no linked lists, and no separate index to keep in sync.
//!
//! # Replace-min without the bucket list
//!
//! The stream summary exists to answer "which counter is minimal?" in O(1).
//! Here the minimum is maintained *lazily but exactly* with a count-grouped
//! freelist:
//!
//! * `min_val` — the exact minimum count over occupied slots, and
//!   `min_support` — how many slots currently hold it.
//! * `min_stack` — slot indices that held `min_val` when the level was
//!   last scanned. Evictions pop it; a popped index is revalidated with a
//!   single count compare (any slot holding `min_val` is a valid victim,
//!   no matter which key moved into it), so stale hints cost one probe.
//! * A bump that raises the last slot away from `min_val` exhausts the
//!   support and triggers a full-arena rescan that re-establishes the next
//!   minimum and refills the stack. Each rescan raises `min_val` by at
//!   least 1 and the minimum never exceeds `N/capacity`, so total rescan
//!   work is `O(table · N/capacity) = O(N)` — amortized O(1) per update.
//!
//! Because a victim is only ever taken at `count == min_val` while every
//! slot holds `count ≥ min_val`, each eviction removes a *true* minimum —
//! the structure is a faithful Space Saving (with its own tie-break among
//! equal minima) and inherits every Metwally et al. guarantee verbatim:
//! `count − error ≤ X ≤ count` for monitored keys and `X ≤ min_val ≤ N/m`
//! for unmonitored ones. The `counter_props` differential suite pins the
//! count multisets of the two layouts against each other exactly.
//!
//! # Eviction without tombstones
//!
//! Replacing the minimum removes one key and inserts another. Deletion is
//! backward-shift (no tombstones, so probes never degrade); each slot
//! caches its `home` index so the shift decides "can this entry fill the
//! hole?" from one load instead of re-hashing. The insert then reuses what
//! the failed lookup already learned: the new key lands in the probe's
//! empty slot — or in the shift's final hole when that hole opened earlier
//! on the same probe chain — so an eviction never probes the table twice.
//!
//! # Table geometry
//!
//! The table is sized to the first power of two ≥ 4·capacity (load factor
//! ≤ ¼), which measured fastest for the batch flush this layout targets:
//! probe clusters collapse to ~1.2 slots, so misses — the dominant case on
//! an eviction-heavy tail — resolve in one line, and backward shifts move
//! almost nothing. For the paper's 1001-counter configuration over `u64`
//! keys that is 4096 slots × 32 B = 128 KB of flat memory per instance
//! with no pointer chasing (the stream summary spreads ~100 KB across
//! three linked structures). The trade-off is deliberate: with all `H`
//! instances live, the larger aggregate footprint makes *scalar*
//! (one-packet-at-a-time) updates more cache-hostile than the stream
//! summary's — the flat layout is the batch-path counter; keep
//! [`crate::SpaceSaving`] for scalar deployments (measured numbers in
//! ROADMAP "Performance").

use std::hash::BuildHasher;

use crate::fast_hash::IntHashBuilder;
use crate::{for_each_run, Candidate, CounterKey, FrequencyEstimator};

#[derive(Debug, Clone, Copy)]
struct Slot<K> {
    /// `0` marks an empty slot — a monitored key always has `count ≥ 1`.
    count: u64,
    /// Overestimation recorded when this slot was stolen from a victim.
    error: u64,
    /// Cached `hash(key) & mask`, so backward-shift deletion never
    /// re-hashes surviving entries.
    home: u32,
    key: K,
}

/// Space Saving over a flat open-addressing arena with an in-line index.
///
/// Same estimates and guarantees as [`crate::SpaceSaving`]; see the
/// [module docs](self) for the layout and the lazy-minimum machinery.
#[derive(Debug, Clone)]
pub struct CompactSpaceSaving<K> {
    /// The arena. Empty until the first update (lazy init supplies the
    /// filler key without requiring `K: Default`).
    slots: Vec<Slot<K>>,
    /// `slots.len() − 1`; the table length is a power of two.
    mask: usize,
    /// Number of occupied slots (≤ `capacity` < table length).
    len: usize,
    capacity: usize,
    updates: u64,
    /// Guaranteed mass (`count − error`) dropped by merge re-eviction;
    /// zero until the first [`FrequencyEstimator::merge`]. Keeps the mass
    /// ledger `Σ(count − error) + discarded ≤ updates` exact so
    /// [`CompactSpaceSaving::debug_validate`] can audit merged instances.
    discarded: u64,
    /// Exact minimum count over occupied slots (meaningful when `len > 0`).
    min_val: u64,
    /// Number of occupied slots with `count == min_val`.
    min_support: usize,
    /// Victim hints: slot indices that held `min_val` when last scanned.
    /// May contain stale entries (bumped or shifted since); consumers
    /// revalidate with one count compare.
    min_stack: Vec<u32>,
    hasher: IntHashBuilder,
}

impl<K: CounterKey> CompactSpaceSaving<K> {
    /// Count of the minimal slot — the upper bound for any unmonitored key
    /// once the structure is full; 0 while it still has free slots.
    #[must_use]
    pub fn min_count(&self) -> u64 {
        if self.len < self.capacity {
            0
        } else {
            self.min_val
        }
    }

    /// Number of monitored keys.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no key is monitored yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[inline(always)]
    fn home_of(&self, key: &K) -> usize {
        self.hasher.hash_one(key) as usize & self.mask
    }

    /// Allocates the arena on first use, filling empty slots with the first
    /// key ever seen (inert: `count == 0` is the emptiness marker).
    #[cold]
    fn init_table(&mut self, filler: K) {
        let table = (self.capacity * 4).next_power_of_two();
        self.slots = vec![
            Slot {
                count: 0,
                error: 0,
                home: 0,
                key: filler,
            };
            table
        ];
        self.mask = table - 1;
        self.min_stack.reserve(table);
    }

    /// Slot index of a monitored key, if any (safe on the pre-init table).
    fn lookup(&self, key: &K) -> Option<usize> {
        if self.slots.is_empty() {
            return None;
        }
        let mut i = self.home_of(key);
        loop {
            let slot = &self.slots[i];
            if slot.count == 0 {
                return None;
            }
            if slot.key == *key {
                return Some(i);
            }
            i = (i + 1) & self.mask;
        }
    }

    /// Recomputes `min_val`/`min_support` and refills the victim stack in
    /// one arena pass (finding a smaller count discards the hints gathered
    /// so far). Called only when the support of the current minimum is
    /// exhausted; see the module docs for why this amortizes to O(1) per
    /// update.
    #[cold]
    fn rescan_min(&mut self) {
        debug_assert!(self.len > 0);
        let mut min = u64::MAX;
        self.min_stack.clear();
        for (i, slot) in self.slots.iter().enumerate() {
            if slot.count == 0 {
                continue;
            }
            if slot.count < min {
                min = slot.count;
                self.min_stack.clear();
                self.min_stack.push(i as u32);
            } else if slot.count == min {
                self.min_stack.push(i as u32);
            }
        }
        self.min_val = min;
        self.min_support = self.min_stack.len();
        debug_assert!(self.min_support > 0);
    }

    /// Refills `min_stack` with every slot currently at `min_val` and
    /// resets `min_support` accordingly (used when backward shifts starved
    /// the stack while the level still has support).
    #[cold]
    fn fill_stack(&mut self) {
        self.min_stack.clear();
        for (i, slot) in self.slots.iter().enumerate() {
            if slot.count == self.min_val {
                self.min_stack.push(i as u32);
            }
        }
        self.min_support = self.min_stack.len();
        debug_assert!(self.min_support > 0);
    }

    /// A slot's count left the minimum level; repair the support count.
    #[inline(always)]
    fn on_leave_min(&mut self) {
        self.min_support -= 1;
        if self.min_support == 0 {
            self.rescan_min();
        }
    }

    /// Pops a victim slot with `count == min_val`. Stale hints (slots that
    /// were bumped, or whose entry a backward shift replaced) are skipped
    /// after one count compare; if shifts starved the stack while support
    /// remains, one arena pass refills it.
    fn pop_victim(&mut self) -> usize {
        debug_assert!(self.min_support > 0 && self.min_val > 0);
        loop {
            while let Some(i) = self.min_stack.pop() {
                if self.slots[i as usize].count == self.min_val {
                    return i as usize;
                }
            }
            self.fill_stack();
        }
    }

    /// Backward-shift deletion: empties `v` and re-compacts the probe
    /// chains that ran through it, so lookups never need tombstones.
    /// Returns the final hole position.
    fn remove_at(&mut self, v: usize) -> usize {
        let mask = self.mask;
        let mut hole = v;
        let mut j = v;
        loop {
            j = (j + 1) & mask;
            let slot = self.slots[j];
            if slot.count == 0 {
                break;
            }
            // `j` may fill the hole iff its probe distance reaches back at
            // least to the hole; otherwise moving it would place it before
            // its home and break its own chain.
            let dist_home = j.wrapping_sub(slot.home as usize) & mask;
            let dist_hole = j.wrapping_sub(hole) & mask;
            if dist_home >= dist_hole {
                self.slots[hole] = slot;
                hole = j;
            }
        }
        self.slots[hole].count = 0;
        self.len -= 1;
        hole
    }

    /// The shared hot path: monitored bump, free-slot insert, or
    /// replace-min, all resolved by a single probe.
    #[inline]
    fn apply(&mut self, key: K, w: u64) {
        debug_assert!(w >= 1);
        self.updates += w;
        if self.slots.is_empty() {
            self.init_table(key);
        }
        let home = self.home_of(&key);
        let mask = self.mask;

        if self.len < self.capacity {
            // Filling phase: plain probe, then claim the empty slot.
            let mut i = home;
            loop {
                let slot = &mut self.slots[i];
                if slot.count == 0 {
                    break;
                }
                if slot.key == key {
                    let old = slot.count;
                    slot.count = old + w;
                    if old == self.min_val {
                        self.on_leave_min();
                    }
                    return;
                }
                i = (i + 1) & mask;
            }
            self.slots[i] = Slot {
                count: w,
                error: 0,
                home: home as u32,
                key,
            };
            self.len += 1;
            if self.len == 1 || w < self.min_val {
                self.min_val = w;
                self.min_support = 1;
                self.min_stack.clear();
                self.min_stack.push(i as u32);
            } else if w == self.min_val {
                self.min_support += 1;
                self.min_stack.push(i as u32);
            }
            return;
        }

        // Full structure: the probe additionally remembers the first
        // minimum-count slot it passes — the counts are being loaded for
        // the emptiness check anyway, and a miss can then often evict
        // *in place* on its own chain.
        let min_val = self.min_val;
        let mut chain_victim = usize::MAX;
        let mut i = home;
        loop {
            let slot = &mut self.slots[i];
            if slot.count == 0 {
                break;
            }
            if slot.key == key {
                let old = slot.count;
                slot.count = old + w;
                if old == min_val {
                    self.on_leave_min();
                }
                return;
            }
            if slot.count == min_val && chain_victim == usize::MAX {
                chain_victim = i;
            }
            i = (i + 1) & mask;
        }

        // Replace the minimum: either victim is a true minimum (all counts
        // ≥ min_val), so Space Saving semantics hold exactly; the layouts
        // differ only in their tie-break among equal minima.
        if chain_victim != usize::MAX {
            // A minimum lives on the new key's own probe chain: overwrite
            // it in place. No slot empties, so every other probe chain —
            // and the new key's own — stays intact, with zero extra loads.
            let victim_count = self.slots[chain_victim].count;
            self.slots[chain_victim] = Slot {
                count: victim_count + w,
                error: victim_count,
                home: home as u32,
                key,
            };
            self.on_leave_min();
            return;
        }
        let v = self.pop_victim();
        let victim_count = self.slots[v].count;
        let hole = self.remove_at(v);
        // The probe already found the first empty slot `i` on the new
        // key's chain. The shift cannot have emptied anything on that
        // chain except its final hole — reuse it when it opened earlier
        // on the chain, else `i` is still the right spot. Either way the
        // eviction never re-probes.
        let target = if (hole.wrapping_sub(home) & mask) < (i.wrapping_sub(home) & mask) {
            hole
        } else {
            i
        };
        self.slots[target] = Slot {
            count: victim_count + w,
            error: victim_count,
            home: home as u32,
            key,
        };
        self.len += 1;
        self.on_leave_min();
    }

    /// Validates every structural invariant; used by tests and proptests.
    ///
    /// # Panics
    ///
    /// Panics on any inconsistency.
    #[doc(hidden)]
    pub fn debug_validate(&self) {
        let occupied: Vec<usize> = (0..self.slots.len())
            .filter(|&i| self.slots[i].count > 0)
            .collect();
        assert_eq!(occupied.len(), self.len, "len out of sync");
        assert!(self.len <= self.capacity, "over capacity");
        let mut min = u64::MAX;
        let mut support = 0usize;
        for &i in &occupied {
            let slot = &self.slots[i];
            assert!(slot.error <= slot.count, "error exceeds count");
            assert_eq!(
                slot.home as usize,
                self.home_of(&slot.key),
                "cached home is stale"
            );
            // The probe chain for this key must terminate at this slot —
            // backward-shift deletion left no unreachable entries.
            assert_eq!(
                self.lookup(&slot.key),
                Some(i),
                "monitored key unreachable by probing"
            );
            if slot.count < min {
                min = slot.count;
                support = 1;
            } else if slot.count == min {
                support += 1;
            }
        }
        if self.len > 0 {
            assert_eq!(self.min_val, min, "cached minimum is stale");
            assert_eq!(self.min_support, support, "minimum support is stale");
            // Every stack hint is in bounds; staleness is allowed, loss is
            // not: the live min slots must be recoverable (fill_stack
            // rebuilds from the arena, so this is implied by support).
            for &i in &self.min_stack {
                assert!((i as usize) < self.slots.len(), "stack hint out of bounds");
            }
        }
        let guaranteed: u64 = occupied
            .iter()
            .map(|&i| self.slots[i].count - self.slots[i].error)
            .sum();
        assert!(
            guaranteed + self.discarded <= self.updates,
            "counted mass exceeds updates"
        );
        if occupied.iter().all(|&i| self.slots[i].error == 0) {
            assert_eq!(
                guaranteed + self.discarded,
                self.updates,
                "mass lost without evictions"
            );
        }
    }

    /// Inserts a merged entry into a rebuilt (not yet full) table: plain
    /// probe to the first empty slot. The caller re-establishes the lazy
    /// minimum with one `rescan_min` after the last insert.
    fn insert_entry(&mut self, key: K, count: u64, error: u64) {
        debug_assert!(count >= 1 && error <= count && self.len < self.capacity);
        if self.slots.is_empty() {
            self.init_table(key);
        }
        let home = self.home_of(&key);
        let mut i = home;
        while self.slots[i].count != 0 {
            i = (i + 1) & self.mask;
        }
        self.slots[i] = Slot {
            count,
            error,
            home: home as u32,
            key,
        };
        self.len += 1;
    }
}

impl<K: CounterKey> FrequencyEstimator<K> for CompactSpaceSaving<K> {
    fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        Self {
            slots: Vec::new(),
            mask: 0,
            len: 0,
            capacity,
            updates: 0,
            discarded: 0,
            min_val: 0,
            min_support: 0,
            min_stack: Vec::new(),
            hasher: IntHashBuilder,
        }
    }

    fn merge(&mut self, other: Self) {
        assert_eq!(
            self.capacity, other.capacity,
            "merge requires equal capacities"
        );
        // Same exact merge as the stream summary (the two layouts stay
        // differentially pinned): additive count+error pairing with
        // min-count padding, then re-eviction to capacity. The arena is
        // rebuilt from scratch — merge runs at harvest time, off the
        // per-packet path, so one O(table) pass is irrelevant.
        let (entries, dropped) = crate::merge_entries(
            &self.candidates(),
            self.min_count(),
            &other.candidates(),
            other.min_count(),
            self.capacity,
        );
        let mut merged = Self::with_capacity(self.capacity);
        merged.updates = self.updates + other.updates;
        merged.discarded = self.discarded + other.discarded + dropped;
        for &(key, count, error) in &entries {
            merged.insert_entry(key, count, error);
        }
        if merged.len > 0 {
            merged.rescan_min();
        }
        *self = merged;
    }

    #[inline]
    fn increment(&mut self, key: K) {
        self.apply(key, 1);
    }

    #[inline]
    fn add(&mut self, key: K, weight: u64) {
        if weight == 0 {
            return;
        }
        self.apply(key, weight);
    }

    fn increment_batch(&mut self, keys: &[K]) {
        // One probe per run of equal consecutive keys: the slot found by
        // the probe absorbs the whole run while its cache line is hot.
        // (A table-position-ordered flush was tried here and measured
        // slower: materializing and sorting (home, key) pairs costs more
        // than the sequential sweep saves on an L2-resident arena, so
        // `flush_group` keeps its key-ordered default.)
        for_each_run(keys, |key, run| self.apply(key, run));
    }

    fn updates(&self) -> u64 {
        self.updates
    }

    fn upper(&self, key: &K) -> u64 {
        match self.lookup(key) {
            Some(i) => self.slots[i].count,
            None => self.min_count(),
        }
    }

    fn lower(&self, key: &K) -> u64 {
        match self.lookup(key) {
            Some(i) => self.slots[i].count - self.slots[i].error,
            None => 0,
        }
    }

    fn candidates(&self) -> Vec<Candidate<K>> {
        self.slots
            .iter()
            .filter(|s| s.count > 0)
            .map(|s| Candidate {
                key: s.key,
                upper: s.count,
                lower: s.count - s.error,
            })
            .collect()
    }

    fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SpaceSaving;
    use std::collections::HashMap;

    #[test]
    fn exact_below_capacity() {
        let mut ss: CompactSpaceSaving<u32> = CompactSpaceSaving::with_capacity(10);
        for (key, n) in [(1u32, 5u64), (2, 3), (3, 9)] {
            for _ in 0..n {
                ss.increment(key);
            }
        }
        for (key, n) in [(1u32, 5u64), (2, 3), (3, 9)] {
            assert_eq!(ss.upper(&key), n);
            assert_eq!(ss.lower(&key), n);
        }
        assert_eq!(ss.upper(&999), 0, "unseen key while not full");
        assert_eq!(ss.updates(), 17);
        ss.debug_validate();
    }

    #[test]
    fn replacement_sets_error_and_bounds_hold() {
        let mut ss: CompactSpaceSaving<u32> = CompactSpaceSaving::with_capacity(2);
        ss.increment(1);
        ss.increment(1);
        ss.increment(2);
        // Structure full; key 3 evicts key 2 (count 1).
        ss.increment(3);
        assert_eq!(ss.upper(&3), 2); // victim count + 1
        assert_eq!(ss.lower(&3), 1); // could all be error
        assert_eq!(ss.lower(&2), 0); // evicted
        assert!(ss.upper(&2) >= 1); // min-count bound
        ss.debug_validate();
    }

    #[test]
    fn never_underestimates_and_error_bounded() {
        let cap = 8;
        let mut ss: CompactSpaceSaving<u64> = CompactSpaceSaving::with_capacity(cap);
        let mut exact: HashMap<u64, u64> = HashMap::new();
        let mut x = 0x12345678u64;
        for i in 0..10_000u64 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let key = if i % 3 == 0 { i % 5 } else { x % 64 };
            ss.increment(key);
            *exact.entry(key).or_default() += 1;
        }
        let n = ss.updates();
        for key in exact.keys().chain([&999_999u64]) {
            let f = exact.get(key).copied().unwrap_or(0);
            assert!(ss.upper(key) >= f, "upper({key}) < f");
            assert!(ss.lower(key) <= f, "lower({key}) > f");
            assert!(
                ss.upper(key) <= f + n / cap as u64,
                "error bound violated for {key}: upper {} f {f} bound {}",
                ss.upper(key),
                f + n / cap as u64
            );
        }
        ss.debug_validate();
    }

    #[test]
    fn matches_stream_summary_on_deterministic_stream() {
        // Both variants evict a true minimum, so the count multiset — and
        // with it min_count, updates and total mass — evolve identically.
        let cap = 16;
        let mut flat: CompactSpaceSaving<u64> = CompactSpaceSaving::with_capacity(cap);
        let mut list: SpaceSaving<u64> = SpaceSaving::with_capacity(cap);
        let mut x = 7u64;
        for _ in 0..30_000 {
            x = x.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(0xB5);
            let key = x % 300;
            flat.increment(key);
            list.increment(key);
        }
        assert_eq!(flat.updates(), list.updates());
        assert_eq!(flat.min_count(), list.min_count());
        let mass = |c: Vec<Candidate<u64>>| -> u64 { c.iter().map(|e| e.upper).sum() };
        assert_eq!(mass(flat.candidates()), mass(list.candidates()));
        flat.debug_validate();
    }

    #[test]
    fn heavy_hitters_always_monitored() {
        let cap = 10;
        let mut ss: CompactSpaceSaving<u32> = CompactSpaceSaving::with_capacity(cap);
        let mut x = 7u64;
        for i in 0..5_000u64 {
            if i % 4 == 0 {
                ss.increment(42); // 25% of traffic
            } else {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                ss.increment((x % 1000) as u32 + 100);
            }
        }
        let cands = ss.candidates();
        assert!(cands.iter().any(|c| c.key == 42), "HH lost from summary");
        assert_eq!(cands.len(), cap);
        ss.debug_validate();
    }

    #[test]
    fn min_count_tracks_minimum() {
        let mut ss: CompactSpaceSaving<u32> = CompactSpaceSaving::with_capacity(3);
        assert_eq!(ss.min_count(), 0);
        for k in 0..3 {
            ss.increment(k);
        }
        assert_eq!(ss.min_count(), 1);
        ss.increment(0);
        ss.increment(1);
        ss.increment(2);
        assert_eq!(ss.min_count(), 2);
        ss.debug_validate();
    }

    #[test]
    fn single_counter_capacity() {
        let mut ss: CompactSpaceSaving<u32> = CompactSpaceSaving::with_capacity(1);
        for k in 0..100u32 {
            ss.increment(k);
        }
        assert_eq!(ss.upper(&99), 100);
        assert_eq!(ss.len(), 1);
        ss.debug_validate();
    }

    #[test]
    fn eviction_churn_keeps_probe_chains_sound() {
        // All-distinct stream at capacity: every update past the fill
        // phase evicts, exercising backward-shift deletion continuously.
        let cap = 32;
        let mut ss: CompactSpaceSaving<u64> = CompactSpaceSaving::with_capacity(cap);
        for i in 0..10_000u64 {
            ss.increment(i);
            if i % 1_000 == 999 {
                ss.debug_validate();
            }
        }
        assert_eq!(ss.len(), cap);
        assert_eq!(ss.updates(), 10_000);
        ss.debug_validate();
    }

    #[test]
    fn weighted_add_matches_repeated_increment_mass() {
        let cap = 8;
        let mut weighted: CompactSpaceSaving<u64> = CompactSpaceSaving::with_capacity(cap);
        let mut unit: CompactSpaceSaving<u64> = CompactSpaceSaving::with_capacity(cap);
        let mut x = 3u64;
        for _ in 0..2_000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(11);
            let key = x % 40;
            let w = 1 + (x >> 32) % 5;
            weighted.add(key, w);
            for _ in 0..w {
                unit.increment(key);
            }
        }
        assert_eq!(weighted.updates(), unit.updates());
        weighted.debug_validate();
        unit.debug_validate();
    }

    #[test]
    fn increment_batch_matches_scalar_increments() {
        let mut x = 0xFEED_u64;
        let mut runs: Vec<u64> = Vec::new();
        for _ in 0..2_000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let key = x % 17;
            let len = 1 + (x >> 32) % 9;
            for _ in 0..len {
                runs.push(key);
            }
        }
        for cap in [1usize, 4, 16, 64] {
            let mut batched: CompactSpaceSaving<u64> = CompactSpaceSaving::with_capacity(cap);
            let mut scalar: CompactSpaceSaving<u64> = CompactSpaceSaving::with_capacity(cap);
            batched.increment_batch(&runs);
            for &k in &runs {
                scalar.increment(k);
            }
            assert_eq!(batched.updates(), scalar.updates());
            for key in 0..17u64 {
                assert_eq!(
                    batched.upper(&key),
                    scalar.upper(&key),
                    "cap {cap} key {key}"
                );
                assert_eq!(
                    batched.lower(&key),
                    scalar.lower(&key),
                    "cap {cap} key {key}"
                );
            }
            batched.debug_validate();
        }
    }

    #[test]
    fn zero_weight_is_noop() {
        let mut ss: CompactSpaceSaving<u32> = CompactSpaceSaving::with_capacity(4);
        ss.add(5, 0);
        assert_eq!(ss.updates(), 0);
        assert_eq!(ss.upper(&5), 0);
        assert!(ss.is_empty());
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _: CompactSpaceSaving<u32> = CompactSpaceSaving::with_capacity(0);
    }
}
