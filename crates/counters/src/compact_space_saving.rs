//! Space Saving on a tagged, temperature-split SoA arena: SwissTable-style
//! fingerprints in front, hot `(key, count)` pairs and cold error lanes
//! behind, a windowed lazy minimum, and a bulk-evicting batch flush.
//!
//! The stream-summary implementation ([`crate::SpaceSaving`]) is O(1)
//! worst-case but pays in memory traffic: a separate `HashMap` index plus
//! counter and bucket pointer walks per update. The PR 2 predecessor of
//! this module removed the indirection by fusing the hash index into 32 B
//! AoS slots — and measurement put the remaining ceiling on exactly the
//! operations that layout still made touch those slots: misses (which had
//! to load slots to find emptiness), minimum rescans (which strode the
//! whole 128 KB arena), and eviction-heavy sorted flushes. This rewrite
//! attacks all three (measured tables in ROADMAP "Performance"):
//!
//! * **Fingerprint tags** ([`crate::tagged_table`]): every slot contributes
//!   one byte — `EMPTY`, or a 7-bit hash tag — to a dense array probed
//!   *ahead of* the slot data with 8-at-a-time `u64` SWAR word compares.
//!   A miss resolves by scanning tag bytes only; it never loads a slot.
//!   At ε = 0.001 the whole tag array is 4 KB and effectively L1-resident
//!   across a batch flush.
//! * **Temperature-split SoA**: the hot lane packs `(key, count)` pairs so
//!   one cache line serves tag-hit confirmation, the count bump, victim
//!   revalidation and an eviction's install — while minimum rescans walk
//!   the same dense lane at a fixed 16 B stride, half the traffic of the
//!   32 B AoS slots. Eviction `error`s live in a cold lane nothing on the
//!   bump path touches, and the PR 2 `home` cache is gone entirely
//!   (backward shifts rehash the few entries they actually move).
//! * **Windowed lazy minimum**: instead of one victim stack for the
//!   current minimum level, the structure tracks [`LEVELS`] consecutive
//!   count levels with *exact* per-level occupancy counts and per-level
//!   victim-hint stacks, all refilled by a single arena pass. The minimum
//!   then advances level-to-level in O(1) and full rescans happen once per
//!   `LEVELS` exhausted levels — on eviction-heavy nodes this removes most
//!   of the rescan traffic that capped the PR 2 layout.
//! * **Bulk min-level eviction with adaptive ordering**
//!   ([`FrequencyEstimator::flush_group_evicting`]): the estimator owns
//!   each RHHH node group's processing order and picks it from a learned
//!   miss-ratio estimate. Hit-heavy groups skip sorting entirely (arrival
//!   order; duplicates re-hit hot lines — and the sort itself is ~30% of
//!   a steady-state batch). Miss-heavy groups sort, classify each distinct
//!   key with one tag probe, defer the slot-stealing keys, and serve each
//!   run of misses as one eviction sweep in which keys installed by the
//!   sweep stay *virtual* (a count-bucketed scratch ladder): a later miss
//!   whose victim is such an entry replaces it in O(1) scratch work
//!   without touching the table, so only true table minima are physically
//!   evicted and only the sweep's survivors are installed. The default
//!   trait hook keeps the classic sort-and-flush for every other
//!   estimator.
//!
//! # Replace-min without the bucket list
//!
//! The stream summary exists to answer "which counter is minimal?" in
//! O(1). Here the minimum is maintained *lazily but exactly* over the
//! level window:
//!
//! * `min_val` — the exact minimum count over occupied slots; always
//!   within `[level_base, level_base + LEVELS)`.
//! * `level_support` — exact occupancy per window level, maintained by
//!   every count transition that touches the window. Exactness is what
//!   lets the minimum advance to the next live level — or prove that a
//!   rescan is due — without scanning.
//! * `level_stacks` — per-level victim hints. Evictions pop the minimum
//!   level's stack; a popped index is revalidated with a single count
//!   compare (any slot holding `min_val` is a valid victim, no matter
//!   which key moved into it), so stale or duplicate hints cost one
//!   probe. Backward shifts re-point the hints of entries they move.
//! * When the minimum leaves the window, one arena pass re-anchors it and
//!   refills every level. Each pass covers `LEVELS` level exhaustions and
//!   the minimum never exceeds `N/capacity`, so total rescan work is
//!   `O(table · N/(capacity · LEVELS)) = O(N)` — amortized O(1) per
//!   update, with a constant `LEVELS`× smaller than the PR 2 layout's.
//!
//! Because a victim is only ever taken at `count == min_val` while every
//! slot holds `count ≥ min_val`, each eviction removes a *true* minimum —
//! the structure is a faithful Space Saving (with its own tie-break among
//! equal minima) and inherits every Metwally et al. guarantee verbatim:
//! `count − error ≤ X ≤ count` for monitored keys and `X ≤ min_val ≤ N/m`
//! for unmonitored ones. The same holds for the bulk sweep: virtual
//! entries are conceptually in the table, and every eviction — real or
//! virtual — takes a minimum of the union, in group order. Which key is
//! evicted among equal minima is a tie-break the count multiset never
//! observes, so the `counter_props` differential suite pins the multisets
//! of this layout, the stream summary, and both flush orders against
//! per-key processing exactly.
//!
//! # Eviction without tombstones
//!
//! Replacing the minimum removes one key and inserts another. When a
//! minimum lives on the new key's own probe chain it is overwritten in
//! place (no slot empties, no chain changes). Otherwise deletion is
//! backward-shift (no tombstones, so probes never degrade); chain-end
//! detection during the shift is a tag read, and the insert lands in the
//! probe's empty slot — or in the shift's final hole when that hole
//! opened earlier on the same chain — so an eviction never scans the
//! table twice.
//!
//! # Table geometry
//!
//! The table is the first power of two ≥ 4·capacity (load factor ≤ ¼ —
//! measured faster than ½ even with tag probing: backward shifts move
//! almost nothing and eviction chains stay short). For the paper's
//! 1001-counter configuration over `u64` keys that is 4096 slots split as
//! 4 KB tags + 64 KB hot pairs + 32 KB cold errors. The trade-off of the
//! PR 2 layout stands: with all `H` instances live the aggregate
//! footprint makes *scalar* (one-packet-at-a-time) updates more
//! cache-hostile than the stream summary's — this is the batch-path
//! counter; keep [`crate::SpaceSaving`] for scalar deployments (measured
//! numbers in ROADMAP "Performance").

use std::hash::BuildHasher;

use crate::fast_hash::IntHashBuilder;

/// Count levels tracked ahead of the minimum. One full rescan anchors the
/// window and fills all of its per-level supports and victim stacks, so
/// the next `LEVELS − 1` minimum-level exhaustions advance in O(1) —
/// rescan traffic drops by the same factor.
const LEVELS: usize = 8;
use crate::tagged_table::{Probe, TaggedTable};
use crate::{for_each_run, merge_entries_many, Candidate, CounterKey, FrequencyEstimator};

/// Space Saving over a tagged SoA arena.
///
/// Same estimates and guarantees as [`crate::SpaceSaving`]; see the
/// [module docs](self) for the layout and the lazy-minimum machinery.
#[derive(Debug, Clone)]
pub struct CompactSpaceSaving<K> {
    /// Tag array + SoA slot lanes. Unallocated until the first update
    /// (lazy init supplies the filler key without requiring `K: Default`).
    table: TaggedTable<K>,
    /// Number of occupied slots (≤ `capacity` < table length).
    len: usize,
    capacity: usize,
    updates: u64,
    /// Guaranteed mass (`count − error`) dropped by merge re-eviction;
    /// zero until the first [`FrequencyEstimator::merge`]. Keeps the mass
    /// ledger `Σ(count − error) + discarded ≤ updates` exact so
    /// [`CompactSpaceSaving::debug_validate`] can audit merged instances.
    discarded: u64,
    /// Exact minimum count over occupied slots (meaningful when `len > 0`;
    /// always inside the level window).
    min_val: u64,
    /// First count level of the tracked window: levels
    /// `[level_base, level_base + LEVELS)` have exact per-level occupancy
    /// counts and victim-hint stacks, so the minimum can advance `LEVELS`
    /// times between full rescans instead of once.
    level_base: u64,
    /// Exact number of occupied slots per window level. Maintained
    /// incrementally by every count transition that touches the window —
    /// exactness is what lets `advance_min` move to the next level (or
    /// decide a rescan is due) without scanning.
    level_support: [u32; LEVELS],
    /// Victim hints per window level: slot indices that held the level's
    /// count when last observed. May contain stale or duplicate entries
    /// (bumped or shifted since); consumers revalidate with one count
    /// compare, so only `level_support` needs exactness.
    level_stacks: [Vec<u32>; LEVELS],
    /// Deferred slot-stealing keys of the current bulk flush (key, weight,
    /// home, tag, and the chain's first empty slot as found by the
    /// classification probe); drained at each miss-run boundary. Kept on
    /// the instance so steady-state flushes allocate nothing.
    pending: Vec<(K, u64, u32, u8, u32)>,
    /// Drain scratch: entries of the current eviction sweep whose install
    /// is deferred (key, count, error, home, tag). See `drain_pending`.
    virt: Vec<(K, u64, u64, u32, u8)>,
    /// Drain scratch: count-bucketed ladder over `virt` (level `l` holds
    /// the indices whose count is `base + l`). Virtual counts cluster in a
    /// handful of adjacent levels, so this is the stream summary's count
    /// bucket idea in O(1)-amortized scratch form.
    virt_ladder: Vec<Vec<u32>>,
    /// EWMA of the flush-path miss fraction (0 = all hits, 255 = all
    /// misses), learned from each flushed group; drives the adaptive
    /// ordering decision of `flush_group_evicting`. Starts pessimistic
    /// (miss-heavy ⇒ sorted) so fresh instances keep the classic
    /// behaviour until they have observed real traffic.
    miss_ratio: u8,
    /// Whether the last `flush_group_evicting` took the sorted path —
    /// exposed (doc-hidden) so differential tests can mirror the adaptive
    /// order decision onto their reference instance.
    last_flush_sorted: bool,
    hasher: IntHashBuilder,
}

impl<K: CounterKey> CompactSpaceSaving<K> {
    /// Count of the minimal slot — the upper bound for any unmonitored key
    /// once the structure is full; 0 while it still has free slots.
    #[must_use]
    pub fn min_count(&self) -> u64 {
        if self.len < self.capacity {
            0
        } else {
            self.min_val
        }
    }

    /// Number of monitored keys.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no key is monitored yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether `key` is currently monitored. Read-only — the dispatch
    /// wrapper's regime sampling relies on probes having no side effects.
    #[doc(hidden)]
    #[must_use]
    pub fn monitored(&self, key: &K) -> bool {
        self.lookup(key).is_some()
    }

    /// The learned flush miss-ratio EWMA on the `0 ..= 255` scale
    /// (255 = every recent flushed key missed; boots pessimistic at 255).
    /// This is the per-instance regime signal the PR 4 adaptive flush
    /// maintains; the dispatch wrapper bootstraps its layout decision from
    /// it whenever this layout is the active one.
    #[doc(hidden)]
    #[must_use]
    pub fn miss_ratio_estimate(&self) -> u8 {
        self.miss_ratio
    }

    /// Guaranteed mass dropped by merge re-evictions (the `discarded`
    /// ledger); migration carries it across layout switches.
    pub(crate) fn discarded(&self) -> u64 {
        self.discarded
    }

    /// Builds an arena directly from `(key, count, error)` entries
    /// (distinct keys, `count ≥ 1`, `error ≤ count`) with the ledgers
    /// forced — the merge rebuild path, exposed for layout migration.
    pub(crate) fn rebuild_from_entries(
        capacity: usize,
        updates: u64,
        discarded: u64,
        entries: &[(K, u64, u64)],
    ) -> Self {
        assert!(entries.len() <= capacity, "more entries than counters");
        let mut fresh = Self::with_capacity(capacity);
        fresh.updates = updates;
        fresh.discarded = discarded;
        for &(key, count, error) in entries {
            fresh.insert_entry(key, count, error);
        }
        if fresh.len > 0 {
            fresh.rescan_window();
        }
        fresh
    }

    /// The key's probe start and 7-bit fingerprint.
    #[inline(always)]
    fn home_and_tag(&self, key: &K) -> (usize, u8) {
        self.table.home_and_tag(self.hasher.hash_one(key))
    }

    /// Slot index of a monitored key, if any (safe on the pre-init table).
    fn lookup(&self, key: &K) -> Option<usize> {
        if !self.table.is_init() {
            return None;
        }
        let (home, tag) = self.home_and_tag(key);
        match self.table.probe(home, tag, key) {
            Probe::Found(i) => Some(i),
            Probe::Absent(_) => None,
        }
    }

    /// Anchors the level window at the true minimum with one full pass:
    /// find the minimum, then fill every window level's exact support and
    /// victim stack. Called when the minimum would advance past the window
    /// end — i.e. once per `LEVELS` exhausted levels; see the module docs
    /// for why total rescan work amortizes to O(1) per update.
    #[cold]
    fn rescan_window(&mut self) {
        debug_assert!(self.len > 0);
        let mut min = u64::MAX;
        for slot in &self.table.hot {
            if slot.count != 0 && slot.count < min {
                min = slot.count;
            }
        }
        self.level_base = min;
        self.min_val = min;
        self.level_support = [0; LEVELS];
        for stack in &mut self.level_stacks {
            stack.clear();
        }
        for (i, slot) in self.table.hot.iter().enumerate() {
            let off = slot.count.wrapping_sub(min);
            if slot.count != 0 && off < LEVELS as u64 {
                self.level_support[off as usize] += 1;
                self.level_stacks[off as usize].push(i as u32);
            }
        }
    }

    /// Refills the minimum level's stack from the table (used when stale
    /// hints starved the stack while its exact support shows survivors).
    #[cold]
    fn fill_min_level(&mut self) {
        let off = (self.min_val - self.level_base) as usize;
        let stack = &mut self.level_stacks[off];
        stack.clear();
        for (i, slot) in self.table.hot.iter().enumerate() {
            if slot.count == self.min_val {
                stack.push(i as u32);
            }
        }
        debug_assert_eq!(stack.len(), self.level_support[off] as usize);
    }

    /// Moves the minimum to the next level with live occupants, rescanning
    /// only when it would leave the window. Counts only ever increase, and
    /// every transition into a window level is support-counted, so an
    /// all-zero window tail proves the next minimum lies at or beyond
    /// `level_base + LEVELS`.
    fn advance_min(&mut self) {
        debug_assert!(self.len > 0);
        let mut off = (self.min_val - self.level_base) as usize;
        loop {
            off += 1;
            if off >= LEVELS {
                self.rescan_window();
                return;
            }
            if self.level_support[off] > 0 {
                self.min_val = self.level_base + off as u64;
                return;
            }
        }
    }

    /// A slot's count left level `c` (bumped away, overwritten or
    /// removed); repair the window bookkeeping. Tolerates the table
    /// emptying mid-sweep (the drain's deferred installs).
    #[inline(always)]
    fn on_leave_level(&mut self, c: u64) {
        let off = c.wrapping_sub(self.level_base);
        if off < LEVELS as u64 {
            let off = off as usize;
            self.level_support[off] -= 1;
            if self.level_support[off] == 0 && c == self.min_val {
                if self.len > 0 {
                    self.advance_min();
                } else {
                    self.min_val = 0;
                }
            }
        }
    }

    /// A slot entered count level `c`; track it if the window covers `c`.
    #[inline(always)]
    fn note_enter(&mut self, i: usize, c: u64) {
        let off = c.wrapping_sub(self.level_base);
        if off < LEVELS as u64 {
            self.level_support[off as usize] += 1;
            self.level_stacks[off as usize].push(i as u32);
        }
    }

    /// Re-anchors the window at a smaller base (fill-phase inserts below
    /// the current window): surviving levels shift up, levels pushed past
    /// the window end become untracked — which is always legal, the next
    /// rescan re-covers them.
    #[cold]
    fn slide_down(&mut self, new_base: u64) {
        let shift = self.level_base - new_base;
        if shift >= LEVELS as u64 {
            self.level_support = [0; LEVELS];
            for stack in &mut self.level_stacks {
                stack.clear();
            }
        } else {
            let shift = shift as usize;
            self.level_stacks.rotate_right(shift);
            self.level_support.rotate_right(shift);
            for k in 0..shift {
                self.level_stacks[k].clear();
                self.level_support[k] = 0;
            }
        }
        self.level_base = new_base;
    }

    /// Window bookkeeping for a newly installed entry at count `c`
    /// (`self.len` already incremented).
    fn note_install(&mut self, i: usize, c: u64) {
        if self.len == 1 {
            self.level_base = c;
            self.min_val = c;
            self.level_support = [0; LEVELS];
            for stack in &mut self.level_stacks {
                stack.clear();
            }
            self.level_support[0] = 1;
            self.level_stacks[0].push(i as u32);
            return;
        }
        if c < self.level_base {
            self.slide_down(c);
        }
        if c < self.min_val {
            self.min_val = c;
        }
        self.note_enter(i, c);
    }

    /// Pops a victim slot with `count == min_val`. Stale hints (slots that
    /// were bumped, or whose entry a backward shift replaced) are skipped
    /// after one count compare; if they starved the stack while the exact
    /// support shows survivors, one count-lane pass refills it. This stack
    /// is what makes the bulk flush's eviction sweeps cheap: one window
    /// fill serves every victim of `LEVELS` consecutive levels.
    fn pop_victim(&mut self) -> usize {
        debug_assert!(self.min_val > 0 && self.len > 0);
        loop {
            let off = (self.min_val - self.level_base) as usize;
            while let Some(i) = self.level_stacks[off].pop() {
                if self.table.hot[i as usize].count == self.min_val {
                    return i as usize;
                }
            }
            self.fill_min_level();
        }
    }

    /// Raises slot `i` by `w`, repairing the window bookkeeping. Counts
    /// above the window — every established heavy hitter — pay a single
    /// compare.
    #[inline(always)]
    fn bump_at(&mut self, i: usize, w: u64) {
        let old = self.table.hot[i].count;
        let new = old + w;
        self.table.hot[i].count = new;
        if old.wrapping_sub(self.level_base) < LEVELS as u64 {
            self.note_enter(i, new);
            self.on_leave_level(old);
        }
    }

    /// Claims the (empty) slot `i` for a fresh key during the filling
    /// phase, folding the new count into the window bookkeeping.
    fn insert_fresh(&mut self, i: usize, tag: u8, key: K, w: u64) {
        debug_assert!(self.len < self.capacity);
        self.table.install(i, tag, key, w, 0);
        self.len += 1;
        self.note_install(i, w);
    }

    /// Replace-min for a key already known absent. `probe_empty` is the
    /// empty slot ending the key's probe chain (the membership probe or a
    /// tag rescan already found it).
    ///
    /// Fast path: every slot from `home` to `probe_empty` is occupied and
    /// on the new key's own chain, so if any of them holds the minimum it
    /// is overwritten *in place* — no slot empties, every probe chain
    /// stays intact, zero shifts and zero extra scans. On tail-heavy
    /// nodes, where most counts sit at the minimum level, this is the
    /// dominant eviction. Otherwise: pop a true-minimum victim from the
    /// count-grouped stack, backward-shift it out, and install the new key
    /// at `probe_empty` — or at the shift's final hole when that hole
    /// opened earlier on the same chain — so the slow path never re-scans
    /// either.
    fn evict_install(&mut self, home: usize, tag: u8, key: K, w: u64, probe_empty: usize) {
        let chain_mask = self.table.mask;
        let mut i = home;
        while i != probe_empty {
            if self.table.hot[i].count == self.min_val {
                let victim_count = self.min_val;
                self.table
                    .overwrite(i, tag, key, victim_count + w, victim_count);
                self.note_enter(i, victim_count + w);
                self.on_leave_level(victim_count);
                return;
            }
            i = (i + 1) & chain_mask;
        }
        let v = self.pop_victim();
        let victim_count = self.table.hot[v].count;
        let hole = self.remove_slot(v);
        let mask = self.table.mask;
        // The shift cannot have emptied anything on the new key's chain
        // except its final hole — use it when it opened earlier on the
        // chain, else the probe's empty slot is still the right spot.
        let target = if (hole.wrapping_sub(home) & mask) < (probe_empty.wrapping_sub(home) & mask) {
            hole
        } else {
            probe_empty
        };
        self.table
            .install(target, tag, key, victim_count + w, victim_count);
        self.note_enter(target, victim_count + w);
        self.on_leave_level(victim_count);
    }

    /// Backward-shift removal of slot `v`, re-pointing the victim-hint
    /// stacks of any window-level entries the shift relocates — without
    /// the repair, eviction churn starves the stacks and forces refill
    /// passes while support remains. Home positions of shifted entries
    /// are recomputed from their keys. Returns the final hole.
    fn remove_slot(&mut self, v: usize) -> usize {
        let (table, level_stacks) = (&mut self.table, &mut self.level_stacks);
        let level_base = self.level_base;
        let table_mask = table.mask;
        let hasher = self.hasher;
        table.remove_at(
            v,
            |key| hasher.hash_one(key) as usize & table_mask,
            |moved, count| {
                let off = count.wrapping_sub(level_base);
                if off < LEVELS as u64 {
                    level_stacks[off as usize].push(moved as u32);
                }
            },
        )
    }

    /// The shared scalar path: monitored bump, free-slot insert, or
    /// replace-min, all resolved by a single tag-array probe.
    #[inline]
    fn apply(&mut self, key: K, w: u64) {
        debug_assert!(w >= 1);
        self.updates += w;
        if !self.table.is_init() {
            self.table.init(self.capacity, key);
        }
        let (home, tag) = self.home_and_tag(&key);
        match self.table.probe(home, tag, &key) {
            Probe::Found(i) => self.bump_at(i, w),
            Probe::Absent(i) => {
                if self.len < self.capacity {
                    self.insert_fresh(i, tag, key, w);
                } else {
                    self.evict_install(home, tag, key, w, i);
                }
            }
        }
    }

    /// Serves every deferred miss of the current run as one **bulk
    /// min-level eviction sweep**. The per-key semantics it must reproduce
    /// (pinned by the differential and equivalence suites): each pending
    /// evicts a *current true minimum* and installs at `minimum + w` — so
    /// an entry installed earlier in the sweep can itself become a later
    /// pending's victim once the minimum level rises to its count.
    ///
    /// The sweep exploits exactly that: keys the streak installs stay
    /// **virtual** — `(key, count, error)` triples in a scratch min-heap —
    /// until the sweep ends. A pending whose victim is a virtual entry
    /// (heap minimum ≤ table minimum; ties prefer the heap, a free
    /// tie-break) replaces it in O(log k) register/L1 work and never
    /// touches the table. Only true table minima are physically evicted
    /// (in place when one lies on the pending's own probe chain, else via
    /// the count-grouped victim stack — one `rescan_min` refills victims
    /// for the whole level), and only the sweep's *survivors* are
    /// installed, each with one tag scan — its absence was established at
    /// classification and all streak keys are distinct, so no membership
    /// re-probe is ever needed. On an all-distinct group at capacity this
    /// collapses most of the eviction churn into heap operations.
    fn drain_pending(&mut self) {
        if self.pending.is_empty() {
            return;
        }
        if self.pending.len() == 1 {
            // Single-miss streak — the common case on mixed hit/miss
            // groups. Nothing touched the table since the classification
            // probe, so its first-empty slot is still exact: take the
            // direct eviction path and skip the sweep scaffolding.
            let (key, w, home32, tag, e) = self.pending[0];
            self.pending.clear();
            self.evict_install(home32 as usize, tag, key, w, e as usize);
            return;
        }
        let pending = std::mem::take(&mut self.pending);
        debug_assert!(self.virt.is_empty());
        // Ladder state: virtual counts live in `virt_ladder[count - base]`.
        // `base` is fixed at the first deferral (every later virtual count
        // is ≥ the then-minimum + 1, so offsets never go negative), `vmin`
        // is the least live virtual count (`u64::MAX` when none), and
        // `max_off` bounds the levels to clear afterwards.
        let mut base = 0u64;
        let mut vmin = u64::MAX;
        let mut max_off = 0usize;
        for &(key, w, home32, tag, _) in &pending {
            let table_min = if self.len > 0 { self.min_val } else { u64::MAX };
            if vmin <= table_min {
                // The minimum is (also) a streak-installed entry: replace
                // it without touching the table.
                let off = (vmin - base) as usize;
                let idx = self.virt_ladder[off].pop().expect("vmin level live") as usize;
                let c = vmin;
                self.virt[idx] = (key, c + w, c, home32, tag);
                let noff = (c + w - base) as usize;
                if noff >= self.virt_ladder.len() {
                    self.virt_ladder.resize_with(noff + 1, Vec::new);
                }
                self.virt_ladder[noff].push(idx as u32);
                max_off = max_off.max(noff + 1);
                if self.virt_ladder[off].is_empty() {
                    // Advance to the next live level (the one just pushed
                    // guarantees termination).
                    let mut o = off;
                    while self.virt_ladder[o].is_empty() {
                        o += 1;
                    }
                    vmin = base + o as u64;
                }
                continue;
            }
            let home = home32 as usize;
            let e = self.table.first_empty_from(home);
            // In-place fast path: a minimum on the key's own chain (all
            // slots home..e are occupied) is overwritten directly — the
            // new entry is immediately real, and later sweep steps treat
            // it like any other table entry.
            let mut i = home;
            let mut inplace = usize::MAX;
            while i != e {
                if self.table.hot[i].count == self.min_val {
                    inplace = i;
                    break;
                }
                i = (i + 1) & self.table.mask;
            }
            if inplace != usize::MAX {
                let c = self.min_val;
                self.table.overwrite(inplace, tag, key, c + w, c);
                self.note_enter(inplace, c + w);
                self.on_leave_level(c);
                continue;
            }
            // Physical eviction with deferred install: the victim leaves
            // the table now; the new key joins the virtual set.
            let v = self.pop_victim();
            let c = self.table.hot[v].count;
            self.remove_slot(v);
            self.len -= 1;
            self.on_leave_level(c);
            if vmin == u64::MAX && self.virt.is_empty() {
                base = c + 1;
            }
            let idx = self.virt.len() as u32;
            self.virt.push((key, c + w, c, home32, tag));
            let noff = (c + w - base) as usize;
            if noff >= self.virt_ladder.len() {
                self.virt_ladder.resize_with(noff + 1, Vec::new);
            }
            self.virt_ladder[noff].push(idx);
            max_off = max_off.max(noff + 1);
            vmin = vmin.min(c + w);
        }
        // Install the survivors and fold them into the window bookkeeping.
        while let Some((key, count, error, home32, tag)) = self.virt.pop() {
            let i = self.table.first_empty_from(home32 as usize);
            self.table.install(i, tag, key, count, error);
            self.len += 1;
            self.note_install(i, count);
        }
        for level in &mut self.virt_ladder[..max_off] {
            level.clear();
        }
        self.pending = pending;
        self.pending.clear();
    }

    /// Folds one flushed group's observed miss fraction into the adaptive
    /// ordering estimate (recent groups weighted 3:1).
    fn note_miss_ratio(&mut self, misses: usize, group_len: usize) {
        if group_len == 0 {
            return;
        }
        let observed = (misses * 256 / group_len).min(255) as u32;
        self.miss_ratio = ((u32::from(self.miss_ratio) + 3 * observed) / 4) as u8;
    }

    /// The hit-heavy flush order: arrival order, no sort. Duplicate keys
    /// simply re-probe lines that are already hot (a monitored key's
    /// second occurrence is an L1 bump), and any slot-stealing key is
    /// evicted immediately through the scalar replace-min path — arrival
    /// order is exactly the per-key scalar semantics, so no deferral
    /// bookkeeping is needed.
    fn flush_arrival(&mut self, keys: &[K]) {
        let mut misses = 0usize;
        for_each_run(keys, |key, w| {
            self.updates += w;
            if !self.table.is_init() {
                self.table.init(self.capacity, key);
            }
            let (home, tag) = self.home_and_tag(&key);
            match self.table.probe(home, tag, &key) {
                Probe::Found(i) => self.bump_at(i, w),
                Probe::Absent(e) => {
                    misses += 1;
                    if self.len < self.capacity {
                        self.insert_fresh(e, tag, key, w);
                    } else {
                        self.evict_install(home, tag, key, w, e);
                    }
                }
            }
        });
        self.note_miss_ratio(misses, keys.len());
    }

    /// The miss-heavy flush order behind
    /// [`FrequencyEstimator::flush_group_evicting`]: one classification
    /// probe per distinct key of the (sorted) group, with slot-stealing
    /// keys deferred and evicted in per-run sweeps.
    fn flush_sorted_bulk(&mut self, keys: &[K]) {
        debug_assert!(self.pending.is_empty());
        let mut misses = 0usize;
        let mut i = 0;
        while i < keys.len() {
            let key = keys[i];
            let mut j = i + 1;
            while j < keys.len() && keys[j] == key {
                j += 1;
            }
            let w = (j - i) as u64;
            i = j;

            self.updates += w;
            if !self.table.is_init() {
                self.table.init(self.capacity, key);
            }
            let (home, tag) = self.home_and_tag(&key);
            match self.table.probe(home, tag, &key) {
                Probe::Found(s) => {
                    if self.pending.is_empty() {
                        self.bump_at(s, w);
                    } else {
                        // The deferred misses precede this key in the
                        // group's order; apply them first — one of them
                        // may evict this very key, so re-probe after.
                        self.drain_pending();
                        match self.table.probe(home, tag, &key) {
                            Probe::Found(s) => self.bump_at(s, w),
                            Probe::Absent(e) => self.evict_install(home, tag, key, w, e),
                        }
                    }
                }
                Probe::Absent(e) => {
                    misses += 1;
                    if self.len < self.capacity {
                        // Pendings only accumulate once the table is full,
                        // and `len` never drops below capacity again.
                        debug_assert!(self.pending.is_empty());
                        self.insert_fresh(e, tag, key, w);
                    } else {
                        self.pending.push((key, w, home as u32, tag, e as u32));
                    }
                }
            }
        }
        self.drain_pending();
        self.note_miss_ratio(misses, keys.len());
    }

    /// Whether the last [`FrequencyEstimator::flush_group_evicting`] call
    /// took the sorted bulk path (`true`) or the arrival-order path
    /// (`false`). Diagnostic for the differential suites, which mirror
    /// the adaptive order decision onto their reference instance.
    #[doc(hidden)]
    #[must_use]
    pub fn last_flush_sorted(&self) -> bool {
        self.last_flush_sorted
    }

    /// Validates every structural invariant; used by tests and proptests.
    ///
    /// # Panics
    ///
    /// Panics on any inconsistency.
    #[doc(hidden)]
    pub fn debug_validate(&self) {
        assert!(self.pending.is_empty(), "pending evictions outside a flush");
        if !self.table.is_init() {
            assert_eq!(self.len, 0, "len without an arena");
            assert_eq!(self.updates, self.discarded, "mass without an arena");
            return;
        }
        self.table.debug_validate_tags(|key| self.home_and_tag(key));
        let occupied: Vec<usize> = (0..self.table.len())
            .filter(|&i| self.table.occupied(i))
            .collect();
        assert_eq!(occupied.len(), self.len, "len out of sync");
        assert!(self.len <= self.capacity, "over capacity");
        let mut min = u64::MAX;
        let mut support = 0usize;
        for &i in &occupied {
            let count = self.table.hot[i].count;
            assert!(self.table.errors[i] <= count, "error exceeds count");
            // The probe chain for this key must terminate at this slot —
            // backward-shift deletion left no unreachable entries.
            assert_eq!(
                self.lookup(&self.table.hot[i].key),
                Some(i),
                "monitored key unreachable by probing"
            );
            if count < min {
                min = count;
                support = 1;
            } else if count == min {
                support += 1;
            }
        }
        if self.len > 0 {
            assert_eq!(self.min_val, min, "cached minimum is stale");
            assert!(
                self.level_base <= self.min_val && self.min_val < self.level_base + LEVELS as u64,
                "minimum outside the level window"
            );
            // Per-level supports must be exact: they are what authorizes
            // `advance_min` to move the minimum without scanning. The
            // minimum-level support in particular equals `support`.
            let mut window_support = [0u32; LEVELS];
            for &i in &occupied {
                let off = self.table.hot[i].count.wrapping_sub(self.level_base);
                if off < LEVELS as u64 {
                    window_support[off as usize] += 1;
                }
            }
            assert_eq!(
                self.level_support, window_support,
                "window level supports are stale"
            );
            assert_eq!(
                self.level_support[(self.min_val - self.level_base) as usize] as usize,
                support,
                "minimum support is stale"
            );
            // Every stack hint is in bounds; staleness and duplicates are
            // allowed, loss is not: the live level slots must be
            // recoverable (fill_min_level rebuilds from the hot lane, so
            // this is implied by the exact supports).
            for stack in &self.level_stacks {
                for &i in stack {
                    assert!((i as usize) < self.table.len(), "stack hint out of bounds");
                }
            }
        }
        let guaranteed: u64 = occupied
            .iter()
            .map(|&i| self.table.hot[i].count - self.table.errors[i])
            .sum();
        assert!(
            guaranteed + self.discarded <= self.updates,
            "counted mass exceeds updates"
        );
        if occupied.iter().all(|&i| self.table.errors[i] == 0) {
            assert_eq!(
                guaranteed + self.discarded,
                self.updates,
                "mass lost without evictions"
            );
        }
    }

    /// Inserts a merged entry into a rebuilt (not yet full) table: plain
    /// tag scan to the first empty slot. The caller re-establishes the
    /// lazy minimum with one `rescan_min` after the last insert.
    fn insert_entry(&mut self, key: K, count: u64, error: u64) {
        debug_assert!(count >= 1 && error <= count && self.len < self.capacity);
        if !self.table.is_init() {
            self.table.init(self.capacity, key);
        }
        let (home, tag) = self.home_and_tag(&key);
        let i = self.table.first_empty_from(home);
        self.table.install(i, tag, key, count, error);
        self.len += 1;
    }
}

impl<K: CounterKey> FrequencyEstimator<K> for CompactSpaceSaving<K> {
    fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        Self {
            table: TaggedTable::new(),
            len: 0,
            capacity,
            updates: 0,
            discarded: 0,
            min_val: 0,
            level_base: 0,
            level_support: [0; LEVELS],
            level_stacks: std::array::from_fn(|_| Vec::new()),
            pending: Vec::new(),
            virt: Vec::new(),
            virt_ladder: Vec::new(),
            miss_ratio: u8::MAX,
            last_flush_sorted: true,
            hasher: IntHashBuilder,
        }
    }

    fn merge(&mut self, other: Self) {
        self.merge_many(vec![other]);
    }

    fn merge_many(&mut self, others: Vec<Self>) {
        if others.is_empty() {
            // Nothing to absorb: skip the no-op rebuild (a single-shard
            // harvest lands here for every node instance).
            return;
        }
        // Same exact combine as the stream summary (the two layouts stay
        // differentially pinned): additive count+error pairing with
        // per-side min-count padding over all K inputs at once, then
        // re-eviction to capacity. The arena is rebuilt from scratch —
        // merge runs at harvest time, off the per-packet path.
        let mut updates = self.updates;
        let mut discarded = self.discarded;
        let mut sides = Vec::with_capacity(others.len() + 1);
        sides.push((self.candidates(), self.min_count()));
        for other in &others {
            assert_eq!(
                self.capacity, other.capacity,
                "merge requires equal capacities"
            );
            updates += other.updates;
            discarded += other.discarded;
            sides.push((other.candidates(), other.min_count()));
        }
        let (entries, dropped) = merge_entries_many(&sides, self.capacity);
        let mut merged = Self::with_capacity(self.capacity);
        merged.updates = updates;
        merged.discarded = discarded + dropped;
        for &(key, count, error) in &entries {
            merged.insert_entry(key, count, error);
        }
        if merged.len > 0 {
            merged.rescan_window();
        }
        *self = merged;
    }

    #[inline]
    fn increment(&mut self, key: K) {
        self.apply(key, 1);
    }

    #[inline]
    fn add(&mut self, key: K, weight: u64) {
        if weight == 0 {
            return;
        }
        self.apply(key, weight);
    }

    fn increment_batch(&mut self, keys: &[K]) {
        // One probe per run of equal consecutive keys: the slot found by
        // the probe absorbs the whole run while its lanes are hot.
        for_each_run(keys, |key, run| self.apply(key, run));
    }

    fn flush_group_evicting(&mut self, keys: &mut [K]) {
        // Adaptive ordering: the estimator owns the group's processing
        // order, and the best order depends on the node's regime, which
        // the previous flushes of the *same instance* predict well.
        //
        // * **Miss-heavy** (tail nodes): sort so distinct keys become
        //   runs, defer the slot-stealing keys, and serve each run of
        //   misses as one bulk min-level eviction sweep (most of the
        //   churn collapses into the virtual ladder).
        // * **Hit-heavy** (aggregated nodes): skip the sort entirely —
        //   duplicate keys re-hit cache-hot lines, and the sort itself
        //   (~30% of a steady-state batch across all nodes) is pure
        //   overhead when there is nothing to evict in bulk.
        //
        // Either order processes the same multiset per-key through true
        // minimum evictions, so every Space Saving guarantee holds
        // identically; which one ran is exposed for the differential
        // suites via `last_flush_sorted`.
        if self.miss_ratio >= 230 {
            self.last_flush_sorted = true;
            keys.sort_unstable();
            self.flush_sorted_bulk(keys);
        } else {
            self.last_flush_sorted = false;
            self.flush_arrival(keys);
        }
    }

    fn flush_group_evicting_with(&mut self, keys: &mut [K], sort: &mut dyn FnMut(&mut [K])) {
        // Same adaptive-order flush as `flush_group_evicting`, with the
        // caller's ascending sorter in place of the comparison sort when
        // the miss-ratio estimate asks for the sorted sweep. The arrival
        // path stays untouched — it is the hit-heavy regime, whose probes
        // are already cache-hot; staging or prefetching it measured as a
        // double-digit regression. The order decision and every per-run
        // state transition are unchanged, so state evolution is
        // bit-identical.
        if self.miss_ratio >= 230 {
            self.last_flush_sorted = true;
            sort(keys);
            self.flush_sorted_bulk(keys);
        } else {
            self.last_flush_sorted = false;
            self.flush_arrival(keys);
        }
    }

    fn updates(&self) -> u64 {
        self.updates
    }

    fn upper(&self, key: &K) -> u64 {
        match self.lookup(key) {
            Some(i) => self.table.hot[i].count,
            None => self.min_count(),
        }
    }

    fn lower(&self, key: &K) -> u64 {
        match self.lookup(key) {
            Some(i) => self.table.hot[i].count - self.table.errors[i],
            None => 0,
        }
    }

    fn candidates(&self) -> Vec<Candidate<K>> {
        (0..self.table.len())
            .filter(|&i| self.table.occupied(i))
            .map(|i| Candidate {
                key: self.table.hot[i].key,
                upper: self.table.hot[i].count,
                lower: self.table.hot[i].count - self.table.errors[i],
            })
            .collect()
    }

    fn capacity(&self) -> usize {
        self.capacity
    }

    fn layout_label(&self) -> &'static str {
        "compact"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SpaceSaving;
    use std::collections::HashMap;

    #[test]
    fn exact_below_capacity() {
        let mut ss: CompactSpaceSaving<u32> = CompactSpaceSaving::with_capacity(10);
        for (key, n) in [(1u32, 5u64), (2, 3), (3, 9)] {
            for _ in 0..n {
                ss.increment(key);
            }
        }
        for (key, n) in [(1u32, 5u64), (2, 3), (3, 9)] {
            assert_eq!(ss.upper(&key), n);
            assert_eq!(ss.lower(&key), n);
        }
        assert_eq!(ss.upper(&999), 0, "unseen key while not full");
        assert_eq!(ss.updates(), 17);
        ss.debug_validate();
    }

    #[test]
    fn replacement_sets_error_and_bounds_hold() {
        let mut ss: CompactSpaceSaving<u32> = CompactSpaceSaving::with_capacity(2);
        ss.increment(1);
        ss.increment(1);
        ss.increment(2);
        // Structure full; key 3 evicts key 2 (count 1).
        ss.increment(3);
        assert_eq!(ss.upper(&3), 2); // victim count + 1
        assert_eq!(ss.lower(&3), 1); // could all be error
        assert_eq!(ss.lower(&2), 0); // evicted
        assert!(ss.upper(&2) >= 1); // min-count bound
        ss.debug_validate();
    }

    #[test]
    fn never_underestimates_and_error_bounded() {
        let cap = 8;
        let mut ss: CompactSpaceSaving<u64> = CompactSpaceSaving::with_capacity(cap);
        let mut exact: HashMap<u64, u64> = HashMap::new();
        let mut x = 0x12345678u64;
        for i in 0..10_000u64 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let key = if i % 3 == 0 { i % 5 } else { x % 64 };
            ss.increment(key);
            *exact.entry(key).or_default() += 1;
        }
        let n = ss.updates();
        for key in exact.keys().chain([&999_999u64]) {
            let f = exact.get(key).copied().unwrap_or(0);
            assert!(ss.upper(key) >= f, "upper({key}) < f");
            assert!(ss.lower(key) <= f, "lower({key}) > f");
            assert!(
                ss.upper(key) <= f + n / cap as u64,
                "error bound violated for {key}: upper {} f {f} bound {}",
                ss.upper(key),
                f + n / cap as u64
            );
        }
        ss.debug_validate();
    }

    #[test]
    fn matches_stream_summary_on_deterministic_stream() {
        // Both variants evict a true minimum, so the count multiset — and
        // with it min_count, updates and total mass — evolve identically.
        let cap = 16;
        let mut flat: CompactSpaceSaving<u64> = CompactSpaceSaving::with_capacity(cap);
        let mut list: SpaceSaving<u64> = SpaceSaving::with_capacity(cap);
        let mut x = 7u64;
        for _ in 0..30_000 {
            x = x.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(0xB5);
            let key = x % 300;
            flat.increment(key);
            list.increment(key);
        }
        assert_eq!(flat.updates(), list.updates());
        assert_eq!(flat.min_count(), list.min_count());
        let mass = |c: Vec<Candidate<u64>>| -> u64 { c.iter().map(|e| e.upper).sum() };
        assert_eq!(mass(flat.candidates()), mass(list.candidates()));
        flat.debug_validate();
    }

    #[test]
    fn heavy_hitters_always_monitored() {
        let cap = 10;
        let mut ss: CompactSpaceSaving<u32> = CompactSpaceSaving::with_capacity(cap);
        let mut x = 7u64;
        for i in 0..5_000u64 {
            if i % 4 == 0 {
                ss.increment(42); // 25% of traffic
            } else {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                ss.increment((x % 1000) as u32 + 100);
            }
        }
        let cands = ss.candidates();
        assert!(cands.iter().any(|c| c.key == 42), "HH lost from summary");
        assert_eq!(cands.len(), cap);
        ss.debug_validate();
    }

    #[test]
    fn min_count_tracks_minimum() {
        let mut ss: CompactSpaceSaving<u32> = CompactSpaceSaving::with_capacity(3);
        assert_eq!(ss.min_count(), 0);
        for k in 0..3 {
            ss.increment(k);
        }
        assert_eq!(ss.min_count(), 1);
        ss.increment(0);
        ss.increment(1);
        ss.increment(2);
        assert_eq!(ss.min_count(), 2);
        ss.debug_validate();
    }

    #[test]
    fn single_counter_capacity() {
        let mut ss: CompactSpaceSaving<u32> = CompactSpaceSaving::with_capacity(1);
        for k in 0..100u32 {
            ss.increment(k);
        }
        assert_eq!(ss.upper(&99), 100);
        assert_eq!(ss.len(), 1);
        ss.debug_validate();
    }

    #[test]
    fn eviction_churn_keeps_probe_chains_sound() {
        // All-distinct stream at capacity: every update past the fill
        // phase evicts, exercising backward-shift deletion continuously.
        let cap = 32;
        let mut ss: CompactSpaceSaving<u64> = CompactSpaceSaving::with_capacity(cap);
        for i in 0..10_000u64 {
            ss.increment(i);
            if i % 1_000 == 999 {
                ss.debug_validate();
            }
        }
        assert_eq!(ss.len(), cap);
        assert_eq!(ss.updates(), 10_000);
        ss.debug_validate();
    }

    #[test]
    fn weighted_add_matches_repeated_increment_mass() {
        let cap = 8;
        let mut weighted: CompactSpaceSaving<u64> = CompactSpaceSaving::with_capacity(cap);
        let mut unit: CompactSpaceSaving<u64> = CompactSpaceSaving::with_capacity(cap);
        let mut x = 3u64;
        for _ in 0..2_000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(11);
            let key = x % 40;
            let w = 1 + (x >> 32) % 5;
            weighted.add(key, w);
            for _ in 0..w {
                unit.increment(key);
            }
        }
        assert_eq!(weighted.updates(), unit.updates());
        weighted.debug_validate();
        unit.debug_validate();
    }

    #[test]
    fn increment_batch_matches_scalar_increments() {
        let mut x = 0xFEED_u64;
        let mut runs: Vec<u64> = Vec::new();
        for _ in 0..2_000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let key = x % 17;
            let len = 1 + (x >> 32) % 9;
            for _ in 0..len {
                runs.push(key);
            }
        }
        for cap in [1usize, 4, 16, 64] {
            let mut batched: CompactSpaceSaving<u64> = CompactSpaceSaving::with_capacity(cap);
            let mut scalar: CompactSpaceSaving<u64> = CompactSpaceSaving::with_capacity(cap);
            batched.increment_batch(&runs);
            for &k in &runs {
                scalar.increment(k);
            }
            assert_eq!(batched.updates(), scalar.updates());
            for key in 0..17u64 {
                assert_eq!(
                    batched.upper(&key),
                    scalar.upper(&key),
                    "cap {cap} key {key}"
                );
                assert_eq!(
                    batched.lower(&key),
                    scalar.lower(&key),
                    "cap {cap} key {key}"
                );
            }
            batched.debug_validate();
        }
    }

    #[test]
    fn bulk_flush_matches_default_flush_multiset() {
        // flush_group_evicting (bulk min-level eviction) and flush_group
        // (per-run apply) must produce identical count multisets, updates
        // and min-counts on the same groups — tie-breaks may differ.
        let mut x = 0xBEEF_u64;
        for cap in [1usize, 3, 8, 32] {
            let mut bulk: CompactSpaceSaving<u64> = CompactSpaceSaving::with_capacity(cap);
            let mut default: CompactSpaceSaving<u64> = CompactSpaceSaving::with_capacity(cap);
            for _ in 0..40 {
                let mut group: Vec<u64> = (0..150)
                    .map(|_| {
                        x = x.wrapping_mul(6364136223846793005).wrapping_add(7);
                        x % 96
                    })
                    .collect();
                let mut group2 = group.clone();
                bulk.flush_group_evicting(&mut group);
                // Mirror the adaptive order decision onto the per-key
                // reference (sorted runs = flush_group; arrival order =
                // plain increment_batch).
                if bulk.last_flush_sorted() {
                    default.flush_group(&mut group2);
                } else {
                    default.increment_batch(&group2);
                }
            }
            assert_eq!(bulk.updates(), default.updates(), "cap {cap}");
            assert_eq!(bulk.min_count(), default.min_count(), "cap {cap}");
            let multiset = |c: Vec<Candidate<u64>>| -> Vec<u64> {
                let mut v: Vec<u64> = c.iter().map(|e| e.upper).collect();
                v.sort_unstable();
                v
            };
            assert_eq!(
                multiset(bulk.candidates()),
                multiset(default.candidates()),
                "cap {cap}: count multisets diverged"
            );
            bulk.debug_validate();
            default.debug_validate();
        }
    }

    #[test]
    fn bulk_flush_all_distinct_group() {
        // The miss-heavy regime the tag array targets: a full table and a
        // group of entirely new keys — every distinct key is one deferred
        // eviction served from the shared victim stack.
        let cap = 16;
        let mut bulk: CompactSpaceSaving<u64> = CompactSpaceSaving::with_capacity(cap);
        let mut scalar: SpaceSaving<u64> = SpaceSaving::with_capacity(cap);
        let mut next = 0u64;
        for _ in 0..20 {
            let mut group: Vec<u64> = (0..256)
                .map(|_| {
                    next += 1;
                    next
                })
                .collect();
            let mut sorted = group.clone();
            sorted.sort_unstable();
            scalar.increment_batch(&sorted);
            bulk.flush_group_evicting(&mut group);
            assert!(
                bulk.last_flush_sorted(),
                "all-miss groups must stay on the sorted bulk path"
            );
        }
        assert_eq!(bulk.updates(), scalar.updates());
        assert_eq!(bulk.min_count(), scalar.min_count());
        let mass = |c: Vec<Candidate<u64>>| -> u64 { c.iter().map(|e| e.upper).sum() };
        assert_eq!(mass(bulk.candidates()), mass(scalar.candidates()));
        bulk.debug_validate();
    }

    #[test]
    fn zero_weight_is_noop() {
        let mut ss: CompactSpaceSaving<u32> = CompactSpaceSaving::with_capacity(4);
        ss.add(5, 0);
        assert_eq!(ss.updates(), 0);
        assert_eq!(ss.upper(&5), 0);
        assert!(ss.is_empty());
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _: CompactSpaceSaving<u32> = CompactSpaceSaving::with_capacity(0);
    }
}
