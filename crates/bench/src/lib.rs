//! Shared helpers for the Criterion benchmark suite.
//!
//! The benches mirror the paper's performance experiments:
//!
//! * `update_speed` — Figure 5: per-packet update cost of every algorithm
//!   on each hierarchy.
//! * `vswitch_throughput` — Figures 6/7: dataplane pipeline throughput per
//!   monitor and per V.
//! * `counter_ablation` — the DESIGN.md ablation: O(1) stream-summary
//!   Space Saving vs the heap variant vs the other counter algorithms.
//! * `output_latency` — `Output(θ)` query cost (off the per-packet path,
//!   but relevant for monitoring cadence).

use hhh_traces::{Packet, TraceConfig, TraceGenerator};

/// Pre-materialized benchmark workload (generation stays outside the timed
/// region, matching the paper's methodology of replaying trace files).
pub struct Workload {
    /// 1D keys (source address).
    pub keys1: Vec<u32>,
    /// 2D packed keys (source × destination).
    pub keys2: Vec<u64>,
    /// Full packet records for the vswitch pipeline.
    pub packets: Vec<Packet>,
}

impl Workload {
    /// Generates `n` packets of the chicago16 preset.
    #[must_use]
    pub fn chicago16(n: usize) -> Self {
        let packets = TraceGenerator::new(&TraceConfig::chicago16()).take_packets(n);
        Self {
            keys1: packets.iter().map(Packet::key1).collect(),
            keys2: packets.iter().map(Packet::key2).collect(),
            packets,
        }
    }
}

/// Shared steady-state pre-warm: streams `packets` *fresh* packets from
/// `gen` to `sink` in `chunk`-sized key slices, reusing one buffer.
///
/// Benchmarks that measure the full/evicting steady state (the regime a
/// long-running monitor lives in) warm their instances with the *next*
/// packets of the same generator that produced the measured workload — a
/// non-repeating trace, so the warmed state carries the trace's true
/// key-churn statistics (replaying the workload K× would over-represent
/// its tail keys as recurring flows). `key_of` selects the key dimension
/// (`Packet::key1` for 1D, `Packet::key2` for 2D), so the `update_speed`
/// and `counter_ablation` warm-ups share this one implementation.
///
/// Generic over the packet source: any infinite `Iterator<Item = Packet>`
/// works — `TraceGenerator` and `ScenarioGenerator` alike.
pub fn warm_stream<K>(
    gen: &mut impl Iterator<Item = Packet>,
    packets: usize,
    chunk: usize,
    key_of: impl Fn(&Packet) -> K,
    mut sink: impl FnMut(&[K]),
) {
    assert!(chunk > 0, "warm-up chunk must be positive");
    let mut buf: Vec<K> = Vec::with_capacity(chunk);
    let mut warmed = 0usize;
    while warmed < packets {
        buf.clear();
        let take = chunk.min(packets - warmed);
        for _ in 0..take {
            buf.push(key_of(&gen.next().expect("packet generators are infinite")));
        }
        sink(&buf);
        warmed += take;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_materializes_consistently() {
        let w = Workload::chicago16(1_000);
        assert_eq!(w.keys1.len(), 1_000);
        assert_eq!(w.keys2.len(), 1_000);
        assert_eq!(w.packets.len(), 1_000);
        assert_eq!(w.keys1[0], w.packets[0].src);
        assert_eq!(w.keys2[0] >> 32, u64::from(w.packets[0].src));
    }

    #[test]
    fn warm_stream_delivers_exactly_n_fresh_keys() {
        let mut gen = TraceGenerator::new(&TraceConfig::chicago16());
        let mut total = 0usize;
        let mut chunks = 0usize;
        warm_stream(&mut gen, 1_000, 256, Packet::key2, |chunk| {
            assert!(chunk.len() <= 256);
            total += chunk.len();
            chunks += 1;
        });
        assert_eq!(total, 1_000);
        assert_eq!(chunks, 4, "3 full chunks + the 232-key tail");
        // The generator advanced past the warm packets: the next draw
        // continues the trace rather than restarting it.
        let continued = gen.generate();
        let mut fresh = TraceGenerator::new(&TraceConfig::chicago16());
        let first = fresh.generate();
        assert!(
            continued.key2() != first.key2() || continued.wire_len != first.wire_len,
            "warm-up must consume the generator"
        );
    }
}
