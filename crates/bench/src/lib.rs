//! Shared helpers for the Criterion benchmark suite.
//!
//! The benches mirror the paper's performance experiments:
//!
//! * `update_speed` — Figure 5: per-packet update cost of every algorithm
//!   on each hierarchy.
//! * `vswitch_throughput` — Figures 6/7: dataplane pipeline throughput per
//!   monitor and per V.
//! * `counter_ablation` — the DESIGN.md ablation: O(1) stream-summary
//!   Space Saving vs the heap variant vs the other counter algorithms.
//! * `output_latency` — `Output(θ)` query cost (off the per-packet path,
//!   but relevant for monitoring cadence).

use hhh_traces::{Packet, TraceConfig, TraceGenerator};

/// Pre-materialized benchmark workload (generation stays outside the timed
/// region, matching the paper's methodology of replaying trace files).
pub struct Workload {
    /// 1D keys (source address).
    pub keys1: Vec<u32>,
    /// 2D packed keys (source × destination).
    pub keys2: Vec<u64>,
    /// Full packet records for the vswitch pipeline.
    pub packets: Vec<Packet>,
}

impl Workload {
    /// Generates `n` packets of the chicago16 preset.
    #[must_use]
    pub fn chicago16(n: usize) -> Self {
        let packets = TraceGenerator::new(&TraceConfig::chicago16()).take_packets(n);
        Self {
            keys1: packets.iter().map(Packet::key1).collect(),
            keys2: packets.iter().map(Packet::key2).collect(),
            packets,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_materializes_consistently() {
        let w = Workload::chicago16(1_000);
        assert_eq!(w.keys1.len(), 1_000);
        assert_eq!(w.keys2.len(), 1_000);
        assert_eq!(w.packets.len(), 1_000);
        assert_eq!(w.keys1[0], w.packets[0].src);
        assert_eq!(w.keys2[0] >> 32, u64::from(w.packets[0].src));
    }
}
