//! DESIGN.md ablation: the per-increment cost of the counter algorithms.
//!
//! The paper's O(1) worst-case update (Theorem 6.18) requires the
//! stream-summary Space Saving; the heap variant pays O(log 1/ε) sifts.
//! This bench quantifies the gap at the paper's ε = 0.001 (1001 counters)
//! and a coarser ε = 0.01, plus the alternative algorithms for context.
//!
//! The `compact-vs-stream-summary` groups isolate the tentpole layout
//! question — hash index fused into a flat arena vs the pointer-based
//! stream summary — on the scalar `increment` path and on the sorted
//! `increment_batch` path RHHH's batch flush actually drives (every
//! counter now has a run-length-merged batch override, so the comparison
//! is batch-vs-batch rather than batch-vs-default-loop).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hhh_bench::Workload;
use hhh_counters::{
    CompactSpaceSaving, FrequencyEstimator, HeapSpaceSaving, LossyCounting, MisraGries, SpaceSaving,
};
use hhh_traces::{Packet, TraceConfig, TraceGenerator};

const PACKETS: usize = 200_000;

fn bench_counter<E: FrequencyEstimator<u32>>(
    c: &mut Criterion,
    group_name: &str,
    label: &str,
    capacity: usize,
    keys: &[u32],
) {
    let mut group = c.benchmark_group(group_name);
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1))
        .throughput(Throughput::Elements(keys.len() as u64));
    group.bench_function(BenchmarkId::from_parameter(label), |b| {
        b.iter_batched(
            || E::with_capacity(capacity),
            |mut est| {
                for &k in keys {
                    est.increment(k);
                }
                est
            },
            criterion::BatchSize::LargeInput,
        );
    });
    group.finish();
}

/// Feeds the keys through `increment_batch` in sorted 4Ki chunks — the
/// shape of one RHHH node group after masking and sorting, where duplicate
/// keys form runs the overrides merge into weighted updates.
fn bench_counter_batch<E: FrequencyEstimator<u32>>(
    c: &mut Criterion,
    group_name: &str,
    label: &str,
    capacity: usize,
    chunks: &[Vec<u32>],
    total: u64,
) {
    let mut group = c.benchmark_group(group_name);
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1))
        .throughput(Throughput::Elements(total));
    group.bench_function(BenchmarkId::from_parameter(label), |b| {
        b.iter_batched(
            || E::with_capacity(capacity),
            |mut est| {
                for chunk in chunks {
                    est.increment_batch(chunk);
                }
                est
            },
            criterion::BatchSize::LargeInput,
        );
    });
    group.finish();
}

fn benches(c: &mut Criterion) {
    let w = Workload::chicago16(PACKETS);
    for (eps_label, capacity) in [("eps-0.001", 1000usize), ("eps-0.01", 100usize)] {
        let group = format!("counter-ablation/{eps_label}");
        bench_counter::<SpaceSaving<u32>>(c, &group, "SpaceSaving(list)", capacity, &w.keys1);
        bench_counter::<CompactSpaceSaving<u32>>(
            c,
            &group,
            "SpaceSaving(compact)",
            capacity,
            &w.keys1,
        );
        bench_counter::<HeapSpaceSaving<u32>>(c, &group, "SpaceSaving(heap)", capacity, &w.keys1);
        bench_counter::<MisraGries<u32>>(c, &group, "MisraGries", capacity, &w.keys1);
        bench_counter::<LossyCounting<u32>>(c, &group, "LossyCounting", capacity, &w.keys1);
    }
}

fn compact_vs_stream_summary(c: &mut Criterion) {
    let w = Workload::chicago16(PACKETS);
    // Sorted 4Ki chunks: what `Rhhh::update_batch` hands one node instance.
    let chunks: Vec<Vec<u32>> = w
        .keys1
        .chunks(4_096)
        .map(|chunk| {
            let mut sorted = chunk.to_vec();
            sorted.sort_unstable();
            sorted
        })
        .collect();
    let total = w.keys1.len() as u64;
    for (eps_label, capacity) in [("eps-0.001", 1000usize), ("eps-0.01", 100usize)] {
        let group = format!("compact-vs-stream-summary/{eps_label}");
        bench_counter::<SpaceSaving<u32>>(c, &group, "scalar/list", capacity, &w.keys1);
        bench_counter::<CompactSpaceSaving<u32>>(c, &group, "scalar/compact", capacity, &w.keys1);
        bench_counter_batch::<SpaceSaving<u32>>(
            c,
            &group,
            "sorted-batch/list",
            capacity,
            &chunks,
            total,
        );
        bench_counter_batch::<CompactSpaceSaving<u32>>(
            c,
            &group,
            "sorted-batch/compact",
            capacity,
            &chunks,
            total,
        );
        bench_counter_batch::<HeapSpaceSaving<u32>>(
            c,
            &group,
            "sorted-batch/heap",
            capacity,
            &chunks,
            total,
        );
    }
}

/// The regime the fingerprint/tag array targets: instances pre-warmed to
/// their full/evicting steady state, then fed streams of entirely new
/// distinct keys — every key is a miss, and at capacity every miss evicts.
/// The scalar rows drive `increment`; the `flush` rows drive
/// `flush_group_evicting` on sorted 4Ki groups, the exact entry point the
/// RHHH batch flush calls (bulk min-level eviction on the compact layout,
/// the per-key default elsewhere).
///
/// Warm-up streams fresh chicago16 1D keys through the shared
/// [`hhh_bench::warm_stream`] helper (the same pre-warm protocol as
/// `update_speed`'s steady-state group), so the warmed tables carry real
/// trace churn; the measured keys are sequential values disjoint from the
/// address space, making the all-miss property exact.
fn miss_heavy(c: &mut Criterion) {
    const WARM_PACKETS: usize = 2_000_000;
    const GROUP_KEYS: usize = 4_096;
    const CAPACITY: usize = 1000; // ε = 0.001, the paper's operating point
    let mut gen = TraceGenerator::new(&TraceConfig::chicago16());
    let mut warm_list: SpaceSaving<u32> = SpaceSaving::with_capacity(CAPACITY);
    let mut warm_compact: CompactSpaceSaving<u32> = CompactSpaceSaving::with_capacity(CAPACITY);
    let mut warm_heap: HeapSpaceSaving<u32> = HeapSpaceSaving::with_capacity(CAPACITY);
    hhh_bench::warm_stream(&mut gen, WARM_PACKETS, GROUP_KEYS, Packet::key1, |chunk| {
        warm_list.increment_batch(chunk);
        warm_compact.increment_batch(chunk);
        warm_heap.increment_batch(chunk);
    });

    // All-distinct measured keys in a region real traces never visit
    // (class E space), pre-grouped into sorted 4Ki chunks.
    let keys: Vec<u32> = (0..PACKETS as u32).map(|i| 0xF000_0000 | i).collect();
    let chunks: Vec<Vec<u32>> = keys.chunks(GROUP_KEYS).map(<[u32]>::to_vec).collect();
    let total = keys.len() as u64;

    let group_name = "counter-ablation/miss-heavy";
    let mut g = c.benchmark_group(group_name);
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1))
        .throughput(Throughput::Elements(total));
    g.bench_function(BenchmarkId::from_parameter("scalar/list"), |b| {
        b.iter_batched(
            || warm_list.clone(),
            |mut est| {
                for &k in &keys {
                    est.increment(k);
                }
                est
            },
            criterion::BatchSize::LargeInput,
        );
    });
    g.bench_function(BenchmarkId::from_parameter("scalar/compact"), |b| {
        b.iter_batched(
            || warm_compact.clone(),
            |mut est| {
                for &k in &keys {
                    est.increment(k);
                }
                est
            },
            criterion::BatchSize::LargeInput,
        );
    });
    g.bench_function(BenchmarkId::from_parameter("flush/list"), |b| {
        b.iter_batched(
            || (warm_list.clone(), chunks.clone()),
            |(mut est, mut chunks)| {
                for chunk in &mut chunks {
                    est.flush_group_evicting(chunk);
                }
                est
            },
            criterion::BatchSize::LargeInput,
        );
    });
    g.bench_function(BenchmarkId::from_parameter("flush/compact"), |b| {
        b.iter_batched(
            || (warm_compact.clone(), chunks.clone()),
            |(mut est, mut chunks)| {
                for chunk in &mut chunks {
                    est.flush_group_evicting(chunk);
                }
                est
            },
            criterion::BatchSize::LargeInput,
        );
    });
    g.bench_function(BenchmarkId::from_parameter("flush/heap"), |b| {
        b.iter_batched(
            || (warm_heap.clone(), chunks.clone()),
            |(mut est, mut chunks)| {
                for chunk in &mut chunks {
                    est.flush_group_evicting(chunk);
                }
                est
            },
            criterion::BatchSize::LargeInput,
        );
    });
    g.finish();
}

criterion_group!(ablation, benches, compact_vs_stream_summary, miss_heavy);
criterion_main!(ablation);
