//! DESIGN.md ablation: the per-increment cost of the counter algorithms.
//!
//! The paper's O(1) worst-case update (Theorem 6.18) requires the
//! stream-summary Space Saving; the heap variant pays O(log 1/ε) sifts.
//! This bench quantifies the gap at the paper's ε = 0.001 (1001 counters)
//! and a coarser ε = 0.01, plus the alternative algorithms for context.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hhh_bench::Workload;
use hhh_counters::{FrequencyEstimator, HeapSpaceSaving, LossyCounting, MisraGries, SpaceSaving};

const PACKETS: usize = 200_000;

fn bench_counter<E: FrequencyEstimator<u32>>(
    c: &mut Criterion,
    group_name: &str,
    label: &str,
    capacity: usize,
    keys: &[u32],
) {
    let mut group = c.benchmark_group(group_name);
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1))
        .throughput(Throughput::Elements(keys.len() as u64));
    group.bench_function(BenchmarkId::from_parameter(label), |b| {
        b.iter_batched(
            || E::with_capacity(capacity),
            |mut est| {
                for &k in keys {
                    est.increment(k);
                }
                est
            },
            criterion::BatchSize::LargeInput,
        );
    });
    group.finish();
}

fn benches(c: &mut Criterion) {
    let w = Workload::chicago16(PACKETS);
    for (eps_label, capacity) in [("eps-0.001", 1000usize), ("eps-0.01", 100usize)] {
        let group = format!("counter-ablation/{eps_label}");
        bench_counter::<SpaceSaving<u32>>(c, &group, "SpaceSaving(list)", capacity, &w.keys1);
        bench_counter::<HeapSpaceSaving<u32>>(c, &group, "SpaceSaving(heap)", capacity, &w.keys1);
        bench_counter::<MisraGries<u32>>(c, &group, "MisraGries", capacity, &w.keys1);
        bench_counter::<LossyCounting<u32>>(c, &group, "LossyCounting", capacity, &w.keys1);
    }
}

criterion_group!(ablation, benches);
criterion_main!(ablation);
