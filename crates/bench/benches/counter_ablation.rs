//! DESIGN.md ablation: the per-increment cost of the counter algorithms.
//!
//! The paper's O(1) worst-case update (Theorem 6.18) requires the
//! stream-summary Space Saving; the heap variant pays O(log 1/ε) sifts.
//! This bench quantifies the gap at the paper's ε = 0.001 (1001 counters)
//! and a coarser ε = 0.01, plus the alternative algorithms for context.
//!
//! The `compact-vs-stream-summary` groups isolate the tentpole layout
//! question — hash index fused into a flat arena vs the pointer-based
//! stream summary — on the scalar `increment` path and on the sorted
//! `increment_batch` path RHHH's batch flush actually drives (every
//! counter now has a run-length-merged batch override, so the comparison
//! is batch-vs-batch rather than batch-vs-default-loop).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hhh_bench::Workload;
use hhh_counters::{
    CompactSpaceSaving, FrequencyEstimator, HeapSpaceSaving, LossyCounting, MisraGries, SpaceSaving,
};

const PACKETS: usize = 200_000;

fn bench_counter<E: FrequencyEstimator<u32>>(
    c: &mut Criterion,
    group_name: &str,
    label: &str,
    capacity: usize,
    keys: &[u32],
) {
    let mut group = c.benchmark_group(group_name);
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1))
        .throughput(Throughput::Elements(keys.len() as u64));
    group.bench_function(BenchmarkId::from_parameter(label), |b| {
        b.iter_batched(
            || E::with_capacity(capacity),
            |mut est| {
                for &k in keys {
                    est.increment(k);
                }
                est
            },
            criterion::BatchSize::LargeInput,
        );
    });
    group.finish();
}

/// Feeds the keys through `increment_batch` in sorted 4Ki chunks — the
/// shape of one RHHH node group after masking and sorting, where duplicate
/// keys form runs the overrides merge into weighted updates.
fn bench_counter_batch<E: FrequencyEstimator<u32>>(
    c: &mut Criterion,
    group_name: &str,
    label: &str,
    capacity: usize,
    chunks: &[Vec<u32>],
    total: u64,
) {
    let mut group = c.benchmark_group(group_name);
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1))
        .throughput(Throughput::Elements(total));
    group.bench_function(BenchmarkId::from_parameter(label), |b| {
        b.iter_batched(
            || E::with_capacity(capacity),
            |mut est| {
                for chunk in chunks {
                    est.increment_batch(chunk);
                }
                est
            },
            criterion::BatchSize::LargeInput,
        );
    });
    group.finish();
}

fn benches(c: &mut Criterion) {
    let w = Workload::chicago16(PACKETS);
    for (eps_label, capacity) in [("eps-0.001", 1000usize), ("eps-0.01", 100usize)] {
        let group = format!("counter-ablation/{eps_label}");
        bench_counter::<SpaceSaving<u32>>(c, &group, "SpaceSaving(list)", capacity, &w.keys1);
        bench_counter::<CompactSpaceSaving<u32>>(
            c,
            &group,
            "SpaceSaving(compact)",
            capacity,
            &w.keys1,
        );
        bench_counter::<HeapSpaceSaving<u32>>(c, &group, "SpaceSaving(heap)", capacity, &w.keys1);
        bench_counter::<MisraGries<u32>>(c, &group, "MisraGries", capacity, &w.keys1);
        bench_counter::<LossyCounting<u32>>(c, &group, "LossyCounting", capacity, &w.keys1);
    }
}

fn compact_vs_stream_summary(c: &mut Criterion) {
    let w = Workload::chicago16(PACKETS);
    // Sorted 4Ki chunks: what `Rhhh::update_batch` hands one node instance.
    let chunks: Vec<Vec<u32>> = w
        .keys1
        .chunks(4_096)
        .map(|chunk| {
            let mut sorted = chunk.to_vec();
            sorted.sort_unstable();
            sorted
        })
        .collect();
    let total = w.keys1.len() as u64;
    for (eps_label, capacity) in [("eps-0.001", 1000usize), ("eps-0.01", 100usize)] {
        let group = format!("compact-vs-stream-summary/{eps_label}");
        bench_counter::<SpaceSaving<u32>>(c, &group, "scalar/list", capacity, &w.keys1);
        bench_counter::<CompactSpaceSaving<u32>>(c, &group, "scalar/compact", capacity, &w.keys1);
        bench_counter_batch::<SpaceSaving<u32>>(
            c,
            &group,
            "sorted-batch/list",
            capacity,
            &chunks,
            total,
        );
        bench_counter_batch::<CompactSpaceSaving<u32>>(
            c,
            &group,
            "sorted-batch/compact",
            capacity,
            &chunks,
            total,
        );
        bench_counter_batch::<HeapSpaceSaving<u32>>(
            c,
            &group,
            "sorted-batch/heap",
            capacity,
            &chunks,
            total,
        );
    }
}

criterion_group!(ablation, benches, compact_vs_stream_summary);
criterion_main!(ablation);
