//! DESIGN.md ablation: the per-increment cost of the counter algorithms.
//!
//! The paper's O(1) worst-case update (Theorem 6.18) requires the
//! stream-summary Space Saving; the heap variant pays O(log 1/ε) sifts.
//! This bench quantifies the gap at the paper's ε = 0.001 (1001 counters)
//! and a coarser ε = 0.01, plus the alternative algorithms for context.
//!
//! The `compact-vs-stream-summary` groups isolate the tentpole layout
//! question — hash index fused into a flat arena vs the pointer-based
//! stream summary — on the scalar `increment` path and on the sorted
//! `increment_batch` path RHHH's batch flush actually drives (every
//! counter now has a run-length-merged batch override, so the comparison
//! is batch-vs-batch rather than batch-vs-default-loop).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hhh_bench::Workload;
use hhh_core::{Rhhh, RhhhConfig};
use hhh_counters::{
    CompactSpaceSaving, CuckooHeavyKeeper, DispatchedEstimator, FrequencyEstimator,
    HeapSpaceSaving, LossyCounting, MisraGries, SpaceSaving,
};
use hhh_hierarchy::Lattice;
use hhh_traces::{Packet, TraceConfig, TraceGenerator};

const PACKETS: usize = 200_000;

fn bench_counter<E: FrequencyEstimator<u32>>(
    c: &mut Criterion,
    group_name: &str,
    label: &str,
    capacity: usize,
    keys: &[u32],
) {
    let mut group = c.benchmark_group(group_name);
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1))
        .throughput(Throughput::Elements(keys.len() as u64));
    group.bench_function(BenchmarkId::from_parameter(label), |b| {
        b.iter_batched(
            || E::with_capacity(capacity),
            |mut est| {
                for &k in keys {
                    est.increment(k);
                }
                est
            },
            criterion::BatchSize::LargeInput,
        );
    });
    group.finish();
}

/// Feeds the keys through `increment_batch` in sorted 4Ki chunks — the
/// shape of one RHHH node group after masking and sorting, where duplicate
/// keys form runs the overrides merge into weighted updates.
fn bench_counter_batch<E: FrequencyEstimator<u32>>(
    c: &mut Criterion,
    group_name: &str,
    label: &str,
    capacity: usize,
    chunks: &[Vec<u32>],
    total: u64,
) {
    let mut group = c.benchmark_group(group_name);
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1))
        .throughput(Throughput::Elements(total));
    group.bench_function(BenchmarkId::from_parameter(label), |b| {
        b.iter_batched(
            || E::with_capacity(capacity),
            |mut est| {
                for chunk in chunks {
                    est.increment_batch(chunk);
                }
                est
            },
            criterion::BatchSize::LargeInput,
        );
    });
    group.finish();
}

fn benches(c: &mut Criterion) {
    let w = Workload::chicago16(PACKETS);
    for (eps_label, capacity) in [("eps-0.001", 1000usize), ("eps-0.01", 100usize)] {
        let group = format!("counter-ablation/{eps_label}");
        bench_counter::<SpaceSaving<u32>>(c, &group, "SpaceSaving(list)", capacity, &w.keys1);
        bench_counter::<CompactSpaceSaving<u32>>(
            c,
            &group,
            "SpaceSaving(compact)",
            capacity,
            &w.keys1,
        );
        bench_counter::<HeapSpaceSaving<u32>>(c, &group, "SpaceSaving(heap)", capacity, &w.keys1);
        bench_counter::<MisraGries<u32>>(c, &group, "MisraGries", capacity, &w.keys1);
        bench_counter::<LossyCounting<u32>>(c, &group, "LossyCounting", capacity, &w.keys1);
        bench_counter::<CuckooHeavyKeeper<u32>>(c, &group, "CuckooHeavyKeeper", capacity, &w.keys1);
    }
}

fn compact_vs_stream_summary(c: &mut Criterion) {
    let w = Workload::chicago16(PACKETS);
    // Sorted 4Ki chunks: what `Rhhh::update_batch` hands one node instance.
    let chunks: Vec<Vec<u32>> = w
        .keys1
        .chunks(4_096)
        .map(|chunk| {
            let mut sorted = chunk.to_vec();
            sorted.sort_unstable();
            sorted
        })
        .collect();
    let total = w.keys1.len() as u64;
    for (eps_label, capacity) in [("eps-0.001", 1000usize), ("eps-0.01", 100usize)] {
        let group = format!("compact-vs-stream-summary/{eps_label}");
        bench_counter::<SpaceSaving<u32>>(c, &group, "scalar/list", capacity, &w.keys1);
        bench_counter::<CompactSpaceSaving<u32>>(c, &group, "scalar/compact", capacity, &w.keys1);
        bench_counter_batch::<SpaceSaving<u32>>(
            c,
            &group,
            "sorted-batch/list",
            capacity,
            &chunks,
            total,
        );
        bench_counter_batch::<CompactSpaceSaving<u32>>(
            c,
            &group,
            "sorted-batch/compact",
            capacity,
            &chunks,
            total,
        );
        bench_counter_batch::<HeapSpaceSaving<u32>>(
            c,
            &group,
            "sorted-batch/heap",
            capacity,
            &chunks,
            total,
        );
        bench_counter_batch::<CuckooHeavyKeeper<u32>>(
            c,
            &group,
            "sorted-batch/chk",
            capacity,
            &chunks,
            total,
        );
    }
}

/// The regime the fingerprint/tag array targets: instances pre-warmed to
/// their full/evicting steady state, then fed streams of entirely new
/// distinct keys — every key is a miss, and at capacity every miss evicts.
/// The scalar rows drive `increment`; the `flush` rows drive
/// `flush_group_evicting` on sorted 4Ki groups, the exact entry point the
/// RHHH batch flush calls (bulk min-level eviction on the compact layout,
/// the per-key default elsewhere).
///
/// Warm-up streams fresh chicago16 1D keys through the shared
/// [`hhh_bench::warm_stream`] helper (the same pre-warm protocol as
/// `update_speed`'s steady-state group), so the warmed tables carry real
/// trace churn; the measured keys are sequential values disjoint from the
/// address space, making the all-miss property exact.
fn miss_heavy(c: &mut Criterion) {
    const WARM_PACKETS: usize = 2_000_000;
    const GROUP_KEYS: usize = 4_096;
    const CAPACITY: usize = 1000; // ε = 0.001, the paper's operating point
    let mut gen = TraceGenerator::new(&TraceConfig::chicago16());
    let mut warm_list: SpaceSaving<u32> = SpaceSaving::with_capacity(CAPACITY);
    let mut warm_compact: CompactSpaceSaving<u32> = CompactSpaceSaving::with_capacity(CAPACITY);
    let mut warm_heap: HeapSpaceSaving<u32> = HeapSpaceSaving::with_capacity(CAPACITY);
    let mut warm_chk: CuckooHeavyKeeper<u32> = CuckooHeavyKeeper::with_capacity(CAPACITY);
    hhh_bench::warm_stream(&mut gen, WARM_PACKETS, GROUP_KEYS, Packet::key1, |chunk| {
        warm_list.increment_batch(chunk);
        warm_compact.increment_batch(chunk);
        warm_heap.increment_batch(chunk);
        warm_chk.increment_batch(chunk);
    });

    // All-distinct measured keys in a region real traces never visit
    // (class E space), pre-grouped into sorted 4Ki chunks.
    let keys: Vec<u32> = (0..PACKETS as u32).map(|i| 0xF000_0000 | i).collect();
    let chunks: Vec<Vec<u32>> = keys.chunks(GROUP_KEYS).map(<[u32]>::to_vec).collect();
    let total = keys.len() as u64;

    let group_name = "counter-ablation/miss-heavy";
    let mut g = c.benchmark_group(group_name);
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1))
        .throughput(Throughput::Elements(total));
    g.bench_function(BenchmarkId::from_parameter("scalar/list"), |b| {
        b.iter_batched(
            || warm_list.clone(),
            |mut est| {
                for &k in &keys {
                    est.increment(k);
                }
                est
            },
            criterion::BatchSize::LargeInput,
        );
    });
    g.bench_function(BenchmarkId::from_parameter("scalar/compact"), |b| {
        b.iter_batched(
            || warm_compact.clone(),
            |mut est| {
                for &k in &keys {
                    est.increment(k);
                }
                est
            },
            criterion::BatchSize::LargeInput,
        );
    });
    g.bench_function(BenchmarkId::from_parameter("scalar/chk"), |b| {
        b.iter_batched(
            || warm_chk.clone(),
            |mut est| {
                for &k in &keys {
                    est.increment(k);
                }
                est
            },
            criterion::BatchSize::LargeInput,
        );
    });
    g.bench_function(BenchmarkId::from_parameter("flush/list"), |b| {
        b.iter_batched(
            || (warm_list.clone(), chunks.clone()),
            |(mut est, mut chunks)| {
                for chunk in &mut chunks {
                    est.flush_group_evicting(chunk);
                }
                est
            },
            criterion::BatchSize::LargeInput,
        );
    });
    g.bench_function(BenchmarkId::from_parameter("flush/compact"), |b| {
        b.iter_batched(
            || (warm_compact.clone(), chunks.clone()),
            |(mut est, mut chunks)| {
                for chunk in &mut chunks {
                    est.flush_group_evicting(chunk);
                }
                est
            },
            criterion::BatchSize::LargeInput,
        );
    });
    g.bench_function(BenchmarkId::from_parameter("flush/heap"), |b| {
        b.iter_batched(
            || (warm_heap.clone(), chunks.clone()),
            |(mut est, mut chunks)| {
                for chunk in &mut chunks {
                    est.flush_group_evicting(chunk);
                }
                est
            },
            criterion::BatchSize::LargeInput,
        );
    });
    g.bench_function(BenchmarkId::from_parameter("flush/chk"), |b| {
        b.iter_batched(
            || (warm_chk.clone(), chunks.clone()),
            |(mut est, mut chunks)| {
                for chunk in &mut chunks {
                    est.flush_group_evicting(chunk);
                }
                est
            },
            criterion::BatchSize::LargeInput,
        );
    });
    g.finish();
}

/// The PR 7 acceptance pair at the monitor level: one warmed dispatched
/// RHHH against the best *fixed* layout for the same config, measured
/// with the interleaved-pair protocol so the within-run ratio is immune
/// to clock drift. The fixed side is the measured PR 6 winner per
/// regime: `compact` at V = 10H (miss-heavy batch flush), the
/// stream-summary list at V = H (hit-heavy). During warm-up the
/// dispatched lattice settles its per-node census, so the measured
/// window prices steady state, not migrations.
fn dispatch_vs_fixed(c: &mut Criterion) {
    const STEADY_PACKETS: usize = 1_000_000;
    const WARM_CHUNK: usize = 65_536;
    let quick = std::env::var("CRITERION_QUICK").is_ok_and(|v| v != "0");
    let warm_packets = if quick { 2_000_000 } else { 12_000_000 };
    let lat = Lattice::ipv4_src_dst_bytes();
    for v_scale in [1u64, 10] {
        let group = format!("dispatch-vs-fixed/v{v_scale}");
        let config = RhhhConfig {
            epsilon_a: 0.001,
            epsilon_s: 0.001,
            delta_s: 0.001,
            v_scale,
            updates_per_packet: 1,
            seed: 0xBE7C,
        };
        let mut gen = TraceGenerator::new(&TraceConfig::chicago16());
        let keys2: Vec<u64> = (0..STEADY_PACKETS).map(|_| gen.generate().key2()).collect();
        let mut warm_dispatch = Rhhh::<u64, DispatchedEstimator<u64>>::new(lat.clone(), config);
        let mut warm_list = Rhhh::<u64, SpaceSaving<u64>>::new(lat.clone(), config);
        let mut warm_compact = Rhhh::<u64, CompactSpaceSaving<u64>>::new(lat.clone(), config);
        hhh_bench::warm_stream(&mut gen, warm_packets, WARM_CHUNK, Packet::key2, |chunk| {
            warm_dispatch.update_batch(chunk);
            warm_list.update_batch(chunk);
            warm_compact.update_batch(chunk);
        });

        // Per-node chosen-layout census after warm-up (ROADMAP table).
        let census: Vec<&'static str> = warm_dispatch
            .node_instances()
            .iter()
            .map(FrequencyEstimator::layout_label)
            .collect();
        let compact_nodes = census.iter().filter(|l| **l == "compact").count();
        eprintln!(
            "dispatch-vs-fixed/v{v_scale} census: {compact_nodes}/{} compact, nodes: {census:?}",
            census.len()
        );

        let mut g = c.benchmark_group(&group);
        g.sample_size(10)
            .warm_up_time(Duration::from_millis(300))
            .measurement_time(Duration::from_secs(2))
            .throughput(Throughput::Elements(keys2.len() as u64));
        let fixed_label = if v_scale == 10 {
            "fixed/compact"
        } else {
            "fixed/stream-summary"
        };
        g.bench_pair_interleaved(
            "dispatch",
            |b| {
                b.iter_batched(
                    || warm_dispatch.clone(),
                    |mut algo| {
                        algo.update_batch(&keys2);
                        algo
                    },
                    criterion::BatchSize::LargeInput,
                );
            },
            fixed_label,
            |b| {
                if v_scale == 10 {
                    b.iter_batched(
                        || warm_compact.clone(),
                        |mut algo| {
                            algo.update_batch(&keys2);
                            algo
                        },
                        criterion::BatchSize::LargeInput,
                    );
                } else {
                    b.iter_batched(
                        || warm_list.clone(),
                        |mut algo| {
                            algo.update_batch(&keys2);
                            algo
                        },
                        criterion::BatchSize::LargeInput,
                    );
                }
            },
        );
        g.finish();
    }
}

criterion_group!(
    ablation,
    benches,
    compact_vs_stream_summary,
    miss_heavy,
    dispatch_vs_fixed
);
criterion_main!(ablation);
