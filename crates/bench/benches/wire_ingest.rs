//! The PR 9 acceptance rows: zero-copy wire ingest (raw frame bytes →
//! `WireBlockView` → `update_batch_wire`) against the sketch-only baseline
//! (`update_batch` over pre-extracted keys) on identical pre-warmed
//! instances.
//!
//! The two paths consume the same RNG draws and produce bit-identical state
//! (pinned by the `wire_ingest` differential test suite), so each pair
//! isolates exactly what the raw-bytes front end costs: on the trusted
//! plane that is one 8-byte big-endian key load per *selected* packet —
//! parsing rides inside the gather, so at `V = 10H` roughly one frame in
//! ten is ever touched.
//!
//! Compare `raw` vs `struct` only *within one run* — this box drifts ±8%
//! between runs. The CI gate computes the ratio from one run's
//! `BENCH_wire_ingest.json` and requires raw ≥ 0.85× struct at `V = 10H`.
//!
//! Groups:
//! * `wire_ingest/v{1,10}` — interleaved `raw`/`struct` pair, unit counts.
//! * `wire_ingest/weighted-v10` — the byte-volume twin.
//! * `wire_ingest/plane-v10` — interleaved `trusted`/`validated` pair: the
//!   same frames once as a clean generator block (stride plan, no
//!   validation) and once re-pushed as untrusted bytes (classify prepass +
//!   compacted offset lanes, the pcap plan).
//! * `wire_ingest/scenarios` — raw-plane throughput of each of the five
//!   seeded scenario traces at `V = 10H`.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hhh_core::{Rhhh, RhhhConfig};
use hhh_hierarchy::Lattice;
use hhh_traces::{
    blocks_from_packets, FrameBlock, Packet, ScenarioConfig, ScenarioGenerator, ScenarioKind,
};
use hhh_vswitch::WireBlockView;

const PACKETS: usize = 262_144;
/// One rx-ring-sized block per 64Ki frames: 4 blocks over the workload.
const BLOCK_FRAMES: usize = 65_536;
const WARM_PACKETS: usize = 12_000_000;
/// Shorter warm for the five per-scenario rows (no gated ratio there; the
/// full 12M × 5 would dominate CI bench time).
const SCENARIO_WARM: usize = 2_000_000;
const WARM_CHUNK: usize = 65_536;
const EPSILON: f64 = 0.001;

fn rhhh_config(v_scale: u64) -> RhhhConfig {
    RhhhConfig {
        epsilon_a: EPSILON,
        epsilon_s: EPSILON,
        delta_s: 0.001,
        v_scale,
        updates_per_packet: 1,
        seed: 0xBE7C,
    }
}

/// Materializes one scenario's measured workload — the same `PACKETS`
/// packets as clean frame blocks *and* as structs — and returns the
/// generator positioned right after them, ready to stream fresh warm-up
/// traffic.
fn workload(kind: ScenarioKind) -> (Vec<FrameBlock>, Vec<Packet>, ScenarioGenerator) {
    let mut gen = ScenarioGenerator::new(&ScenarioConfig::new(kind));
    let packets = gen.take_packets(PACKETS);
    let blocks = blocks_from_packets(&packets, BLOCK_FRAMES);
    (blocks, packets, gen)
}

/// The headline pair at `V ∈ {H, 10H}`: full parse + sketch from raw bytes
/// vs sketch-only over pre-extracted keys, interleaved so the acceptance
/// ratio shares one wall-clock span.
fn wire_vs_struct(c: &mut Criterion) {
    let (blocks, packets, mut gen) = workload(ScenarioKind::MultiTenant);
    let keys2: Vec<u64> = packets.iter().map(Packet::key2).collect();
    let lat = Lattice::ipv4_src_dst_bytes();
    for v_scale in [1u64, 10] {
        let mut warm = Rhhh::<u64>::new(lat.clone(), rhhh_config(v_scale));
        hhh_bench::warm_stream(&mut gen, WARM_PACKETS, WARM_CHUNK, Packet::key2, |chunk| {
            warm.update_batch(chunk);
        });

        let mut g = c.benchmark_group(format!("wire_ingest/v{v_scale}"));
        g.sample_size(10)
            .warm_up_time(Duration::from_millis(300))
            .measurement_time(Duration::from_secs(2))
            .throughput(Throughput::Elements(keys2.len() as u64));
        g.bench_pair_interleaved(
            "raw",
            |b| {
                b.iter_batched(
                    || warm.clone(),
                    |mut algo| {
                        for block in &blocks {
                            WireBlockView::new(block).ingest(&mut algo);
                        }
                        algo
                    },
                    criterion::BatchSize::LargeInput,
                );
            },
            "struct",
            |b| {
                b.iter_batched(
                    || warm.clone(),
                    |mut algo| {
                        for part in keys2.chunks(BLOCK_FRAMES) {
                            algo.update_batch(part);
                        }
                        algo
                    },
                    criterion::BatchSize::LargeInput,
                );
            },
        );
        g.finish();
    }
}

/// The byte-volume twin at `V = 10H`: `ingest_weighted` reads every frame's
/// wire-length lane (the weight total is unconditional) but still loads
/// keys only for selected packets.
fn wire_vs_struct_weighted(c: &mut Criterion) {
    let (blocks, packets, mut gen) = workload(ScenarioKind::FlashCrowd);
    let pair_of = |p: &Packet| (p.key2(), u64::from(p.wire_len).max(64));
    let pairs: Vec<(u64, u64)> = packets.iter().map(pair_of).collect();
    let lat = Lattice::ipv4_src_dst_bytes();
    let mut warm = Rhhh::<u64>::new(lat.clone(), rhhh_config(10));
    hhh_bench::warm_stream(&mut gen, WARM_PACKETS, WARM_CHUNK, pair_of, |chunk| {
        warm.update_batch_weighted(chunk);
    });

    let mut g = c.benchmark_group("wire_ingest/weighted-v10");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2))
        .throughput(Throughput::Elements(pairs.len() as u64));
    g.bench_pair_interleaved(
        "raw-weighted",
        |b| {
            b.iter_batched(
                || warm.clone(),
                |mut algo| {
                    for block in &blocks {
                        WireBlockView::new(block).ingest_weighted(&mut algo);
                    }
                    algo
                },
                criterion::BatchSize::LargeInput,
            );
        },
        "struct-weighted",
        |b| {
            b.iter_batched(
                || warm.clone(),
                |mut algo| {
                    for part in pairs.chunks(BLOCK_FRAMES) {
                        algo.update_batch_weighted(part);
                    }
                    algo
                },
                criterion::BatchSize::LargeInput,
            );
        },
    );
    g.finish();
}

/// Trusted vs validated plane on identical frames at `V = 10H`: re-pushing
/// a clean block's frames as external bytes forces the classify prepass
/// and compacted offset lanes the pcap path pays.
fn trusted_vs_validated(c: &mut Criterion) {
    let (blocks, packets, mut gen) = workload(ScenarioKind::MultiTenant);
    let dirty: Vec<FrameBlock> = blocks
        .iter()
        .map(|b| {
            let mut d = FrameBlock::new();
            for (frame, orig) in b.frames() {
                d.push_frame(frame, orig);
            }
            assert!(
                !d.is_clean(),
                "re-pushed bytes must take the validated plan"
            );
            d
        })
        .collect();
    let lat = Lattice::ipv4_src_dst_bytes();
    let mut warm = Rhhh::<u64>::new(lat.clone(), rhhh_config(10));
    hhh_bench::warm_stream(&mut gen, WARM_PACKETS, WARM_CHUNK, Packet::key2, |chunk| {
        warm.update_batch(chunk);
    });

    let mut g = c.benchmark_group("wire_ingest/plane-v10");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2))
        .throughput(Throughput::Elements(packets.len() as u64));
    g.bench_pair_interleaved(
        "trusted",
        |b| {
            b.iter_batched(
                || warm.clone(),
                |mut algo| {
                    for block in &blocks {
                        WireBlockView::new(block).ingest(&mut algo);
                    }
                    algo
                },
                criterion::BatchSize::LargeInput,
            );
        },
        "validated",
        |b| {
            b.iter_batched(
                || warm.clone(),
                |mut algo| {
                    for block in &dirty {
                        WireBlockView::new(block).ingest(&mut algo);
                    }
                    algo
                },
                criterion::BatchSize::LargeInput,
            );
        },
    );
    g.finish();
}

/// Raw-plane throughput of each seeded scenario at `V = 10H` — one row per
/// scenario so regressions in a single generator's mix show up by name.
fn scenario_rows(c: &mut Criterion) {
    let lat = Lattice::ipv4_src_dst_bytes();
    let mut g = c.benchmark_group("wire_ingest/scenarios");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1))
        .throughput(Throughput::Elements(PACKETS as u64));
    for kind in ScenarioKind::all() {
        let (blocks, _, mut gen) = workload(kind);
        let mut warm = Rhhh::<u64>::new(lat.clone(), rhhh_config(10));
        hhh_bench::warm_stream(&mut gen, SCENARIO_WARM, WARM_CHUNK, Packet::key2, |chunk| {
            warm.update_batch(chunk);
        });
        g.bench_function(BenchmarkId::from_parameter(kind.name()), |b| {
            b.iter_batched(
                || warm.clone(),
                |mut algo| {
                    for block in &blocks {
                        WireBlockView::new(block).ingest(&mut algo);
                    }
                    algo
                },
                criterion::BatchSize::LargeInput,
            );
        });
    }
    g.finish();
}

criterion_group!(
    wire,
    wire_vs_struct,
    wire_vs_struct_weighted,
    trusted_vs_validated,
    scenario_rows
);
criterion_main!(wire);
