//! Figures 6 and 7 counterpart: datapath pipeline throughput with each
//! measurement monitor inline, and the RHHH V sweep.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hhh_baselines::{Ancestry, AncestryMode, Mst};
use hhh_bench::Workload;
use hhh_core::{Rhhh, RhhhConfig};
use hhh_counters::CompactSpaceSaving;
use hhh_hierarchy::Lattice;
use hhh_traces::Packet;
use hhh_vswitch::{AlgoMonitor, BatchingMonitor, Datapath, DataplaneMonitor, NoOpMonitor};

const PACKETS: usize = 200_000;

fn rhhh_config(v_scale: u64) -> RhhhConfig {
    RhhhConfig {
        epsilon_a: 0.001,
        epsilon_s: 0.001,
        delta_s: 0.0005,
        v_scale,
        updates_per_packet: 1,
        seed: 0x0F56,
    }
}

fn bench_pipeline<M: DataplaneMonitor>(
    c: &mut Criterion,
    group_name: &str,
    label: &str,
    packets: &[Packet],
    mut make: impl FnMut() -> M,
) {
    let mut group = c.benchmark_group(group_name);
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1))
        .throughput(Throughput::Elements(packets.len() as u64));
    group.bench_function(BenchmarkId::from_parameter(label), |b| {
        b.iter_batched(
            || Datapath::new(make()),
            |mut dp| {
                for p in packets {
                    dp.process_packet(p);
                }
                dp
            },
            criterion::BatchSize::LargeInput,
        );
    });
    group.finish();
}

fn fig6_monitors(c: &mut Criterion) {
    let w = Workload::chicago16(PACKETS);
    let lat = Lattice::ipv4_src_dst_bytes();

    bench_pipeline(c, "fig6/monitors", "NoOp", &w.packets, || NoOpMonitor);
    bench_pipeline(c, "fig6/monitors", "10-RHHH", &w.packets, || {
        AlgoMonitor::new(Rhhh::<u64>::new(lat.clone(), rhhh_config(10)))
    });
    bench_pipeline(c, "fig6/monitors", "10-RHHH(batch)", &w.packets, || {
        BatchingMonitor::new(Rhhh::<u64>::new(lat.clone(), rhhh_config(10)), 256)
    });
    bench_pipeline(
        c,
        "fig6/monitors",
        "10-RHHH(batch,compact)",
        &w.packets,
        || {
            BatchingMonitor::new(
                Rhhh::<u64, CompactSpaceSaving<u64>>::new(lat.clone(), rhhh_config(10)),
                256,
            )
        },
    );
    bench_pipeline(c, "fig6/monitors", "RHHH", &w.packets, || {
        AlgoMonitor::new(Rhhh::<u64>::new(lat.clone(), rhhh_config(1)))
    });
    bench_pipeline(c, "fig6/monitors", "MST", &w.packets, || {
        AlgoMonitor::new(Mst::<u64>::new(lat.clone(), 0.001))
    });
    bench_pipeline(c, "fig6/monitors", "PartialAncestry", &w.packets, || {
        AlgoMonitor::new(Ancestry::new(lat.clone(), AncestryMode::Partial, 0.001))
    });
}

fn fig7_v_sweep(c: &mut Criterion) {
    let w = Workload::chicago16(PACKETS);
    let lat = Lattice::ipv4_src_dst_bytes();
    for v_scale in [1u64, 2, 5, 10] {
        bench_pipeline(
            c,
            "fig7/v-sweep",
            &format!("V={}", v_scale * 25),
            &w.packets,
            || AlgoMonitor::new(Rhhh::<u64>::new(lat.clone(), rhhh_config(v_scale))),
        );
    }
}

criterion_group!(vswitch, fig6_monitors, fig7_v_sweep);
criterion_main!(vswitch);
