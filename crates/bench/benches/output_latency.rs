//! `Output(θ)` query latency. The paper's contribution is the O(1) update;
//! the query runs off the per-packet path (operators poll it), but its cost
//! bounds how frequently the HHH set can be refreshed.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hhh_baselines::Mst;
use hhh_bench::Workload;
use hhh_core::{HhhAlgorithm, Rhhh, RhhhConfig};
use hhh_hierarchy::Lattice;

const PACKETS: usize = 500_000;

fn benches(c: &mut Criterion) {
    let w = Workload::chicago16(PACKETS);
    let lat = Lattice::ipv4_src_dst_bytes();

    let mut rhhh = Rhhh::<u64>::new(
        lat.clone(),
        RhhhConfig {
            epsilon_a: 0.001,
            epsilon_s: 0.001,
            delta_s: 0.001,
            v_scale: 1,
            updates_per_packet: 1,
            seed: 0x0A7E,
        },
    );
    let mut mst = Mst::<u64>::new(lat, 0.001);
    for &k in &w.keys2 {
        rhhh.insert(k);
        mst.insert(k);
    }

    let mut group = c.benchmark_group("output-latency");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    for theta in [0.01f64, 0.001] {
        group.bench_function(BenchmarkId::new("RHHH", theta), |b| {
            b.iter(|| rhhh.query(theta));
        });
        group.bench_function(BenchmarkId::new("MST", theta), |b| {
            b.iter(|| mst.query(theta));
        });
    }
    group.finish();
}

criterion_group!(output, benches);
criterion_main!(output);
