//! Figure 5 counterpart: per-packet update cost for every algorithm on the
//! three evaluated hierarchies. Criterion reports element throughput
//! (elements/second ≈ packets/second), so the Mpps numbers of the paper's
//! figure read directly off the output.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hhh_baselines::{Ancestry, AncestryMode, Mst};
use hhh_bench::Workload;
use hhh_core::{HhhAlgorithm, Rhhh, RhhhConfig, WindowedRhhh};
use hhh_counters::{CompactSpaceSaving, DispatchedEstimator, FrequencyEstimator};
use hhh_hierarchy::{KeyBits, Lattice};

const PACKETS: usize = 200_000;
const EPSILON: f64 = 0.001;

fn rhhh_config(v_scale: u64) -> RhhhConfig {
    RhhhConfig {
        epsilon_a: EPSILON,
        epsilon_s: EPSILON,
        delta_s: 0.001,
        v_scale,
        updates_per_packet: 1,
        seed: 0xBE7C,
    }
}

fn bench_algo<K: KeyBits, A: HhhAlgorithm<K>>(
    c: &mut Criterion,
    group_name: &str,
    algo_name: &str,
    keys: &[K],
    mut make: impl FnMut() -> A,
) {
    let mut group = c.benchmark_group(group_name);
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1))
        .throughput(Throughput::Elements(keys.len() as u64));
    group.bench_function(BenchmarkId::from_parameter(algo_name), |b| {
        b.iter_batched(
            &mut make,
            |mut algo| {
                for &k in keys {
                    algo.insert(k);
                }
                algo
            },
            criterion::BatchSize::LargeInput,
        );
    });
    group.finish();
}

fn hierarchy_panel<K: KeyBits>(c: &mut Criterion, name: &str, lattice: &Lattice<K>, keys: &[K]) {
    let group = format!("fig5/{name}");
    bench_algo(c, &group, "RHHH", keys, || {
        Rhhh::<K>::new(lattice.clone(), rhhh_config(1))
    });
    bench_algo(c, &group, "10-RHHH", keys, || {
        Rhhh::<K>::new(lattice.clone(), rhhh_config(10))
    });
    bench_algo(c, &group, "MST", keys, || {
        Mst::<K>::new(lattice.clone(), EPSILON)
    });
    bench_algo(c, &group, "FullAncestry", keys, || {
        Ancestry::new(lattice.clone(), AncestryMode::Full, EPSILON)
    });
    bench_algo(c, &group, "PartialAncestry", keys, || {
        Ancestry::new(lattice.clone(), AncestryMode::Partial, EPSILON)
    });
}

fn benches(c: &mut Criterion) {
    let w = Workload::chicago16(PACKETS);
    hierarchy_panel(c, "1d-bytes", &Lattice::ipv4_src_bytes(), &w.keys1);
    hierarchy_panel(c, "1d-bits", &Lattice::ipv4_src_bits(), &w.keys1);
    hierarchy_panel(c, "2d-bytes", &Lattice::ipv4_src_dst_bytes(), &w.keys2);
}

/// The tentpole measurement: geometric-skip batch path vs the per-packet
/// loop, at `V = H` and `V = 10H`. The batch path strides over ignored
/// packets with one geometric gap draw, scatters the selected updates into
/// per-node groups, and flushes each group sorted so duplicate masked keys
/// merge into single weighted updates.
///
/// Uses a 1M-packet workload (larger than the fig5 panels) so the counter
/// instances reach their full/evicting steady state — the regime a
/// long-running monitor lives in — and offers the batch path both rows:
/// whole-slice (trace replay) and 64Ki chunks (rx-burst style streaming).
fn batch_vs_scalar(c: &mut Criterion) {
    const STEADY_PACKETS: usize = 1_000_000;
    const CHUNK: usize = 65_536;
    let w = Workload::chicago16(STEADY_PACKETS);
    let lat = Lattice::ipv4_src_dst_bytes();
    for v_scale in [1u64, 10] {
        let group = format!("batch-vs-scalar/v{v_scale}");
        bench_algo(c, &group, "scalar", &w.keys2, || {
            Rhhh::<u64>::new(lat.clone(), rhhh_config(v_scale))
        });
        bench_algo(c, &group, "scalar-compact", &w.keys2, || {
            Rhhh::<u64, CompactSpaceSaving<u64>>::new(lat.clone(), rhhh_config(v_scale))
        });

        let mut g = c.benchmark_group(&group);
        g.sample_size(10)
            .warm_up_time(Duration::from_millis(300))
            .measurement_time(Duration::from_secs(1))
            .throughput(Throughput::Elements(w.keys2.len() as u64));
        for (label, chunk) in [("batch", w.keys2.len()), ("batch-64k", CHUNK)] {
            g.bench_function(BenchmarkId::from_parameter(label), |b| {
                b.iter_batched(
                    || Rhhh::<u64>::new(lat.clone(), rhhh_config(v_scale)),
                    |mut algo| {
                        for part in w.keys2.chunks(chunk) {
                            algo.update_batch(part);
                        }
                        algo
                    },
                    criterion::BatchSize::LargeInput,
                );
            });
        }
        for (label, chunk) in [
            ("batch-compact", w.keys2.len()),
            ("batch-64k-compact", CHUNK),
        ] {
            g.bench_function(BenchmarkId::from_parameter(label), |b| {
                b.iter_batched(
                    || Rhhh::<u64, CompactSpaceSaving<u64>>::new(lat.clone(), rhhh_config(v_scale)),
                    |mut algo| {
                        for part in w.keys2.chunks(chunk) {
                            algo.update_batch(part);
                        }
                        algo
                    },
                    criterion::BatchSize::LargeInput,
                );
            });
        }
        g.finish();
    }
}

/// The counter-side redesign head-to-head at the RHHH level, in the regime
/// a long-running monitor actually lives in: every instance pre-warmed to
/// its full/evicting steady state before the clock starts. (The
/// `batch-vs-scalar` group above keeps the PR 1 protocol — fresh instances
/// each iteration — for baseline comparability, but with `V = 10H` on 1M
/// packets each node only sees ~4k updates there, so that group mostly
/// measures the cold fill transient.)
///
/// Warming streams the *next* 12M packets of the same chicago16 generator
/// through the batch path — a non-repeating trace, so the warmed state
/// carries the trace's true key-churn statistics (an earlier protocol
/// replayed the 1M-packet workload 12×, which over-represents its tail
/// keys as recurring flows). ~48k updates per node at `V = 10H`, 48×
/// capacity at ε = 0.001; each timed iteration then runs on a clone of the
/// warmed instance, so the flush hits monitored-bump and replace-min paths
/// in their sustained proportions.
fn compact_vs_stream_summary(c: &mut Criterion) {
    const STEADY_PACKETS: usize = 1_000_000;
    const WARM_PACKETS: usize = 12_000_000;
    const WARM_CHUNK: usize = 65_536;
    let lat = Lattice::ipv4_src_dst_bytes();
    for v_scale in [1u64, 10] {
        let group = format!("compact-vs-stream-summary/v{v_scale}");

        // One generator supplies the measured workload (its first 1M
        // packets) and then keeps producing the fresh warm trace through
        // the shared `warm_stream` helper, so no key sequence is ever
        // replayed during warm-up.
        let mut gen = hhh_traces::TraceGenerator::new(&hhh_traces::TraceConfig::chicago16());
        let keys2: Vec<u64> = (0..STEADY_PACKETS).map(|_| gen.generate().key2()).collect();
        let mut warm_list = Rhhh::<u64>::new(lat.clone(), rhhh_config(v_scale));
        let mut warm_compact =
            Rhhh::<u64, CompactSpaceSaving<u64>>::new(lat.clone(), rhhh_config(v_scale));
        let mut warm_dispatch =
            Rhhh::<u64, DispatchedEstimator<u64>>::new(lat.clone(), rhhh_config(v_scale));
        hhh_bench::warm_stream(
            &mut gen,
            WARM_PACKETS,
            WARM_CHUNK,
            hhh_traces::Packet::key2,
            |chunk| {
                warm_list.update_batch(chunk);
                warm_compact.update_batch(chunk);
                warm_dispatch.update_batch(chunk);
            },
        );

        // Per-node chosen-layout census after warm-up: which layout each
        // of the H lattice nodes settled on (the ROADMAP table).
        let census: Vec<&'static str> = warm_dispatch
            .node_instances()
            .iter()
            .map(FrequencyEstimator::layout_label)
            .collect();
        let compact_nodes = census.iter().filter(|l| **l == "compact").count();
        eprintln!(
            "{group} dispatch census: {compact_nodes}/{} nodes on compact: {census:?}",
            census.len()
        );

        bench_algo(c, &group, "scalar/stream-summary", &keys2, || {
            warm_list.clone()
        });
        bench_algo(c, &group, "scalar/compact", &keys2, || warm_compact.clone());

        let mut g = c.benchmark_group(&group);
        g.sample_size(10)
            .warm_up_time(Duration::from_millis(300))
            .measurement_time(Duration::from_secs(1))
            .throughput(Throughput::Elements(keys2.len() as u64));
        g.bench_function(BenchmarkId::from_parameter("batch/stream-summary"), |b| {
            b.iter_batched(
                || warm_list.clone(),
                |mut algo| {
                    algo.update_batch(&keys2);
                    algo
                },
                criterion::BatchSize::LargeInput,
            );
        });
        g.bench_function(BenchmarkId::from_parameter("batch/compact"), |b| {
            b.iter_batched(
                || warm_compact.clone(),
                |mut algo| {
                    algo.update_batch(&keys2);
                    algo
                },
                criterion::BatchSize::LargeInput,
            );
        });
        g.finish();

        // PR 7 acceptance pair: the dispatched monitor against the
        // measured best fixed layout for this V (compact at V = 10H,
        // the stream-summary list at V = H), interleaved so the ratio is
        // within-run. A longer window than the plain rows, matching the
        // block-vs-pr5 interleave settings.
        let mut g = c.benchmark_group(&group);
        g.sample_size(10)
            .warm_up_time(Duration::from_millis(300))
            .measurement_time(Duration::from_secs(2))
            .throughput(Throughput::Elements(keys2.len() as u64));
        let fixed_label = if v_scale == 10 {
            "paired/compact"
        } else {
            "paired/stream-summary"
        };
        g.bench_pair_interleaved(
            "paired/dispatch",
            |b| {
                b.iter_batched(
                    || warm_dispatch.clone(),
                    |mut algo| {
                        algo.update_batch(&keys2);
                        algo
                    },
                    criterion::BatchSize::LargeInput,
                );
            },
            fixed_label,
            |b| {
                if v_scale == 10 {
                    b.iter_batched(
                        || warm_compact.clone(),
                        |mut algo| {
                            algo.update_batch(&keys2);
                            algo
                        },
                        criterion::BatchSize::LargeInput,
                    );
                } else {
                    b.iter_batched(
                        || warm_list.clone(),
                        |mut algo| {
                            algo.update_batch(&keys2);
                            algo
                        },
                        criterion::BatchSize::LargeInput,
                    );
                }
            },
        );
        g.finish();
    }
}

/// The PR 6 acceptance rows: the block-staged batch front end
/// (`update_batch`) against the frozen PR 5-shape reference path
/// (`update_batch_reference`) on identical pre-warmed instances, both
/// counter layouts, `V ∈ {H, 10H}`. The two paths consume the same RNG
/// draws and produce bit-identical state (pinned by `batch_props`), so the
/// rows isolate the front-end restructuring: fused mask-at-gather instead
/// of a per-group mask pass, split int/float draw loops, dense staging.
///
/// Compare `block/*` vs `pr5/*` only *within one run* — this box drifts
/// ±8% between runs, so cross-run ratios are noise. The CI gate computes
/// the ratio from one run's `BENCH_update_speed.json`.
fn block_vs_pr5(c: &mut Criterion) {
    const STEADY_PACKETS: usize = 1_000_000;
    const WARM_PACKETS: usize = 12_000_000;
    const WARM_CHUNK: usize = 65_536;
    let lat = Lattice::ipv4_src_dst_bytes();
    for v_scale in [1u64, 10] {
        let group = format!("block-vs-pr5/v{v_scale}");

        // Same warm protocol as `compact-vs-stream-summary`: the measured
        // 1M packets come first, then 12M fresh packets of the same
        // generator warm both layouts to eviction steady state.
        let mut gen = hhh_traces::TraceGenerator::new(&hhh_traces::TraceConfig::chicago16());
        let keys2: Vec<u64> = (0..STEADY_PACKETS).map(|_| gen.generate().key2()).collect();
        let mut warm_list = Rhhh::<u64>::new(lat.clone(), rhhh_config(v_scale));
        let mut warm_compact =
            Rhhh::<u64, CompactSpaceSaving<u64>>::new(lat.clone(), rhhh_config(v_scale));
        hhh_bench::warm_stream(
            &mut gen,
            WARM_PACKETS,
            WARM_CHUNK,
            hhh_traces::Packet::key2,
            |chunk| {
                warm_list.update_batch(chunk);
                warm_compact.update_batch(chunk);
            },
        );

        let mut g = c.benchmark_group(&group);
        // A longer window than the plain-throughput groups: the interleave
        // needs each of its slices to hold several iterations even for the
        // ~30 ms V=H rows.
        g.sample_size(10)
            .warm_up_time(Duration::from_millis(300))
            .measurement_time(Duration::from_secs(2))
            .throughput(Throughput::Elements(keys2.len() as u64));
        // Interleaved pairs (a shim extension): the pr5-vs-block ratio is
        // the acceptance number, so each pair's samples must share one
        // wall-clock span — sequential windows hand the ratio to clock
        // drift.
        g.bench_pair_interleaved(
            "pr5/stream-summary",
            |b| {
                b.iter_batched(
                    || warm_list.clone(),
                    |mut algo| {
                        algo.update_batch_reference(&keys2);
                        algo
                    },
                    criterion::BatchSize::LargeInput,
                );
            },
            "block/stream-summary",
            |b| {
                b.iter_batched(
                    || warm_list.clone(),
                    |mut algo| {
                        algo.update_batch(&keys2);
                        algo
                    },
                    criterion::BatchSize::LargeInput,
                );
            },
        );
        g.bench_pair_interleaved(
            "pr5/compact",
            |b| {
                b.iter_batched(
                    || warm_compact.clone(),
                    |mut algo| {
                        algo.update_batch_reference(&keys2);
                        algo
                    },
                    criterion::BatchSize::LargeInput,
                );
            },
            "block/compact",
            |b| {
                b.iter_batched(
                    || warm_compact.clone(),
                    |mut algo| {
                        algo.update_batch(&keys2);
                        algo
                    },
                    criterion::BatchSize::LargeInput,
                );
            },
        );
        g.finish();
    }
}

/// The pane-ring sliding window: what the windowed layer costs on the
/// update path, and what the cached in-flight merge saves on the query
/// path.
///
/// * `feed/*` — throughput of the windowed update paths (scalar, batch in
///   64Ki chunks) on a G = 4 ring at `V = 10H`, against the plain
///   unwindowed `update_batch` as the no-ring reference. The ring's only
///   per-packet overhead is the boundary check plus one fresh-pane
///   allocation per W/G packets, so `feed/batch` should track
///   `feed/batch-unwindowed` closely.
/// * `query/cached` vs `query/per-merge` — the acceptance measurement for
///   the cached in-flight merge: a steady query cadence against a
///   pre-filled ring. `per-merge` pays the full G-pane K-way combine on
///   every call (`query_fresh`); `cached` serves every call from the
///   snapshot the ring refreshed after its last rotation, so it pays only
///   `Output(θ)`. The ratio is the per-query saving at any cadence of at
///   least one query per pane (the combine amortizes to once per pane).
fn windowed_throughput(c: &mut Criterion) {
    const PACKETS: usize = 1_000_000;
    const WINDOW: u64 = 400_000;
    const PANES: usize = 4;
    const CHUNK: usize = 65_536;
    const THETA: f64 = 0.1;
    let w = Workload::chicago16(PACKETS);
    let lat = Lattice::ipv4_src_dst_bytes();
    let config = rhhh_config(10);

    let feed = "windowed_throughput/feed";
    {
        let mut g = c.benchmark_group(feed);
        g.sample_size(10)
            .warm_up_time(Duration::from_millis(300))
            .measurement_time(Duration::from_secs(1))
            .throughput(Throughput::Elements(w.keys2.len() as u64));
        g.bench_function(BenchmarkId::from_parameter("batch-unwindowed"), |b| {
            b.iter_batched(
                || Rhhh::<u64>::new(lat.clone(), config),
                |mut algo| {
                    for part in w.keys2.chunks(CHUNK) {
                        algo.update_batch(part);
                    }
                    algo
                },
                criterion::BatchSize::LargeInput,
            );
        });
        g.bench_function(BenchmarkId::from_parameter("scalar"), |b| {
            b.iter_batched(
                || WindowedRhhh::<u64>::new(lat.clone(), config, WINDOW, PANES),
                |mut mon| {
                    for &k in &w.keys2 {
                        mon.update(k);
                    }
                    mon
                },
                criterion::BatchSize::LargeInput,
            );
        });
        g.bench_function(BenchmarkId::from_parameter("batch"), |b| {
            b.iter_batched(
                || WindowedRhhh::<u64>::new(lat.clone(), config, WINDOW, PANES),
                |mut mon| {
                    for part in w.keys2.chunks(CHUNK) {
                        mon.update_batch(part);
                    }
                    mon
                },
                criterion::BatchSize::LargeInput,
            );
        });
        g.bench_function(BenchmarkId::from_parameter("batch-compact"), |b| {
            b.iter_batched(
                || {
                    WindowedRhhh::<u64, CompactSpaceSaving<u64>>::new(
                        lat.clone(),
                        config,
                        WINDOW,
                        PANES,
                    )
                },
                |mut mon| {
                    for part in w.keys2.chunks(CHUNK) {
                        mon.update_batch(part);
                    }
                    mon
                },
                criterion::BatchSize::LargeInput,
            );
        });
        g.finish();
    }

    // Query-path comparison on a ring pre-filled past G panes (the state a
    // steady monitor queries from). `V = H` and θ = 0.1 keep the covered
    // window past the slack/θN crossover, so `Output(θ)` prunes normally
    // and the rows isolate what the merge costs per query — at `V = 10H`
    // on this window every candidate survives the threshold pre-filter
    // and the output walk drowns both rows identically.
    let mut filled = WindowedRhhh::<u64>::new(lat.clone(), rhhh_config(1), WINDOW, PANES);
    for part in w.keys2.chunks(CHUNK) {
        filled.update_batch(part);
    }
    assert!(filled.covered_packets() >= WINDOW);
    let mut g = c.benchmark_group("windowed_throughput/query");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1))
        .throughput(Throughput::Elements(1));
    g.bench_function(BenchmarkId::from_parameter("per-merge"), |b| {
        b.iter(|| filled.query_fresh(THETA));
    });
    let mut cached = filled.clone();
    g.bench_function(BenchmarkId::from_parameter("cached"), |b| {
        b.iter(|| cached.query(THETA));
    });
    g.finish();
}

/// Corollary 6.8 ablation: `r` independent update draws per packet converge
/// `r×` faster at `r×` the update cost — measure the cost side.
fn multi_update_sweep(c: &mut Criterion) {
    let w = Workload::chicago16(PACKETS);
    let lat = Lattice::ipv4_src_dst_bytes();
    for r in [1u32, 2, 4, 8] {
        bench_algo(c, "cor6.8/r-sweep", &format!("r={r}"), &w.keys2, || {
            Rhhh::<u64>::new(
                lat.clone(),
                RhhhConfig {
                    updates_per_packet: r,
                    ..rhhh_config(1)
                },
            )
        });
    }
}

/// The introduction's IPv6 motivation: update cost vs hierarchy size for
/// the O(1) algorithm and the O(H) baseline on 128-bit keys.
fn ipv6_h_scaling(c: &mut Criterion) {
    let w = Workload::chicago16(PACKETS);
    // Widen the 1D keys to synthetic IPv6 (documented prefix + entropy).
    let keys: Vec<u128> = w
        .keys2
        .iter()
        .map(|&k| (0x2001_0db8u128 << 96) | u128::from(k))
        .collect();
    for (label, lat) in [
        ("H=17-bytes", Lattice::ipv6_src_bytes()),
        ("H=33-nibbles", Lattice::ipv6_src_nibbles()),
        ("H=129-bits", Lattice::ipv6_src_bits()),
    ] {
        bench_algo(c, "ipv6-scaling/RHHH", label, &keys, || {
            Rhhh::<u128>::new(lat.clone(), rhhh_config(1))
        });
        bench_algo(c, "ipv6-scaling/MST", label, &keys, || {
            Mst::<u128>::new(lat.clone(), EPSILON)
        });
    }
}

criterion_group!(
    fig5,
    benches,
    batch_vs_scalar,
    compact_vs_stream_summary,
    block_vs_pr5,
    windowed_throughput,
    multi_update_sweep,
    ipv6_h_scaling
);
criterion_main!(fig5);
