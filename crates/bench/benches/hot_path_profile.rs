//! Cycle accounting for the batch hot path: where `update_batch`'s time
//! actually goes, per pipeline stage.
//!
//! Runs the steady-state 10-RHHH workload (and the `V = H` everything-
//! selected extreme) through pre-warmed instances of both fixed counter
//! layouts plus the regime-adaptive dispatched wrapper, with
//! `hhh_core::hot_profile`'s stage brackets active, and reports each
//! stage's share of the whole batch call:
//!
//! * `draw` — RNG block fill + geometric gap conversion + selection walk
//! * `mask-hash` — node derivation + masked-key gather
//! * `scatter` — distribution into per-node groups
//! * `flush` — per-node counter flush (sort + increment/evict)
//!
//! **Requires `--features hot-profile`** — without it the accounting layer
//! compiles to nothing and this bench exits with a note (so a plain
//! `cargo bench` workspace sweep still passes). CI runs it with the
//! feature and gates on the JSON: every run must attribute ≥ 95% of the
//! `total` bracket to the four named stages.
//!
//! The JSON goes to `$CRITERION_OUTPUT_JSON` (or
//! `target/criterion/hot_path_profile.json`), one record per
//! (counter layout × V) run:
//!
//! ```json
//! {"runs": [{"counter": "stream-summary", "v_scale": 10, "packets": 1000000,
//!            "iters": 10, "total_ns": 123, "accounted_share": 0.97,
//!            "stages": [{"stage": "draw", "ns": 1, "share": 0.2, "calls": 3}, …],
//!            "flush_layouts": [{"layout": "compact", "ns": 1, "calls": 2}, …]}]}
//! ```
//!
//! `flush_layouts` splits the `flush` stage by the flushed node's counter
//! layout label — one row for a fixed lattice, the per-layout census
//! breakdown for a dispatched one.
//!
//! Honours `CRITERION_QUICK=1` (smaller warm stream, fewer iterations).
//! Stage shares are *within-run* fractions and stable across the box's
//! ±8% run-to-run drift; absolute ns are not — never compare them across
//! runs.

fn main() {
    #[cfg(not(feature = "hot-profile"))]
    println!(
        "hot_path_profile: the cycle-accounting layer is compiled out; \
         rerun with `cargo bench -p hhh-bench --bench hot_path_profile \
         --features hot-profile` to measure stage shares."
    );
    #[cfg(feature = "hot-profile")]
    enabled::run();
}

#[cfg(feature = "hot-profile")]
mod enabled {
    use std::fmt::Write as _;

    use hhh_core::hot_profile::{self, Stage, StageTotals, STAGE_NAMES};
    use hhh_core::{Rhhh, RhhhConfig};
    use hhh_counters::{CompactSpaceSaving, DispatchedEstimator, FrequencyEstimator, SpaceSaving};
    use hhh_hierarchy::Lattice;
    use hhh_traces::{Packet, TraceConfig, TraceGenerator};

    const STEADY_PACKETS: usize = 1_000_000;
    const WARM_CHUNK: usize = 65_536;

    fn rhhh_config(v_scale: u64) -> RhhhConfig {
        RhhhConfig {
            epsilon_a: 0.001,
            epsilon_s: 0.001,
            delta_s: 0.001,
            v_scale,
            updates_per_packet: 1,
            seed: 0xBE7C,
        }
    }

    struct Run {
        counter: &'static str,
        v_scale: u64,
        iters: usize,
        totals: StageTotals,
        flush_layouts: Vec<(&'static str, u64, u64)>,
    }

    /// Clones the warmed instance per iteration (clone cost stays outside
    /// the brackets — only `update_batch`'s own stages accumulate) and
    /// returns the accumulated stage totals.
    fn profile<E>(
        warmed: &Rhhh<u64, E>,
        keys: &[u64],
        iters: usize,
    ) -> (StageTotals, Vec<(&'static str, u64, u64)>)
    where
        E: FrequencyEstimator<u64> + Clone,
    {
        // One untimed pass to fault in clones/caches before accounting.
        let mut algo = warmed.clone();
        algo.update_batch(keys);
        hot_profile::reset();
        for _ in 0..iters {
            let mut algo = warmed.clone();
            algo.update_batch(keys);
            std::hint::black_box(algo.total_updates());
        }
        (
            hot_profile::snapshot(),
            hot_profile::flush_layout_snapshot(),
        )
    }

    pub fn run() {
        let quick = std::env::var("CRITERION_QUICK").is_ok_and(|v| v != "0");
        let warm_packets = if quick { 2_000_000 } else { 12_000_000 };
        let iters = if quick { 3 } else { 10 };
        let lat = Lattice::ipv4_src_dst_bytes();
        let mut runs = Vec::new();

        for v_scale in [1u64, 10] {
            let mut gen = TraceGenerator::new(&TraceConfig::chicago16());
            let keys2: Vec<u64> = (0..STEADY_PACKETS).map(|_| gen.generate().key2()).collect();
            let mut warm_list =
                Rhhh::<u64, SpaceSaving<u64>>::new(lat.clone(), rhhh_config(v_scale));
            let mut warm_compact =
                Rhhh::<u64, CompactSpaceSaving<u64>>::new(lat.clone(), rhhh_config(v_scale));
            let mut warm_dispatch =
                Rhhh::<u64, DispatchedEstimator<u64>>::new(lat.clone(), rhhh_config(v_scale));
            hhh_bench::warm_stream(&mut gen, warm_packets, WARM_CHUNK, Packet::key2, |chunk| {
                warm_list.update_batch(chunk);
                warm_compact.update_batch(chunk);
                warm_dispatch.update_batch(chunk);
            });

            let (totals, flush_layouts) = profile(&warm_list, &keys2, iters);
            runs.push(Run {
                counter: "stream-summary",
                v_scale,
                iters,
                totals,
                flush_layouts,
            });
            let (totals, flush_layouts) = profile(&warm_compact, &keys2, iters);
            runs.push(Run {
                counter: "compact",
                v_scale,
                iters,
                totals,
                flush_layouts,
            });
            let (totals, flush_layouts) = profile(&warm_dispatch, &keys2, iters);
            runs.push(Run {
                counter: "dispatch",
                v_scale,
                iters,
                totals,
                flush_layouts,
            });
        }

        report(&runs);
    }

    fn report(runs: &[Run]) {
        let mut json = String::from("{\"runs\": [\n");
        for (i, run) in runs.iter().enumerate() {
            let total = run.totals.ns(Stage::Total).max(1);
            let per_packet =
                run.totals.ns(Stage::Total) as f64 / (run.iters * STEADY_PACKETS) as f64;
            println!(
                "hot_path_profile/v{}/{:<16} total {:>7.2} ns/pkt  accounted {:>5.1}%",
                run.v_scale,
                run.counter,
                per_packet,
                run.totals.accounted_share() * 100.0
            );
            let mut stages = String::new();
            for stage in [Stage::Draw, Stage::MaskHash, Stage::Scatter, Stage::Flush] {
                let ns = run.totals.ns(stage);
                let share = ns as f64 / total as f64;
                println!(
                    "    {:<10} {:>5.1}%  ({:.2} ns/pkt)",
                    STAGE_NAMES[stage as usize],
                    share * 100.0,
                    per_packet * share
                );
                let sep = if stage == Stage::Flush { "" } else { ", " };
                let _ = write!(
                    stages,
                    "{{\"stage\": \"{}\", \"ns\": {}, \"share\": {:.4}, \"calls\": {}}}{}",
                    STAGE_NAMES[stage as usize], ns, share, run.totals.calls[stage as usize], sep
                );
            }
            let mut layouts = String::new();
            for (j, (label, ns, calls)) in run.flush_layouts.iter().enumerate() {
                let share = *ns as f64 / total as f64;
                println!(
                    "      flush[{label}] {:>5.1}%  ({calls} groups)",
                    share * 100.0
                );
                let sep = if j + 1 == run.flush_layouts.len() {
                    ""
                } else {
                    ", "
                };
                let _ = write!(
                    layouts,
                    "{{\"layout\": \"{label}\", \"ns\": {ns}, \"calls\": {calls}}}{sep}"
                );
            }
            let sep = if i + 1 == runs.len() { "" } else { "," };
            let _ = writeln!(
                json,
                "  {{\"counter\": \"{}\", \"v_scale\": {}, \"packets\": {}, \"iters\": {}, \
                 \"total_ns\": {}, \"accounted_share\": {:.4}, \"stages\": [{}], \
                 \"flush_layouts\": [{}]}}{}",
                run.counter,
                run.v_scale,
                STEADY_PACKETS,
                run.iters,
                run.totals.ns(Stage::Total),
                run.totals.accounted_share(),
                stages,
                layouts,
                sep
            );
        }
        json.push_str("]}\n");

        let path = std::env::var("CRITERION_OUTPUT_JSON")
            .unwrap_or_else(|_| "target/criterion/hot_path_profile.json".to_string());
        if let Some(dir) = std::path::Path::new(&path).parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        match std::fs::write(&path, &json) {
            Ok(()) => println!("hot_path_profile: wrote {path}"),
            Err(e) => eprintln!("hot_path_profile: cannot write {path}: {e}"),
        }
    }
}
