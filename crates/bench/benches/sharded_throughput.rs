//! Shard-parallel pipeline cost model: what merge-on-query buys and costs.
//!
//! Three groups:
//!
//! * `sharded_throughput/pipeline` — end-to-end packets/s of the
//!   [`ShardedMonitor`] (hash-route → per-shard batch workers → harvest
//!   merge) for 1, 2 and 4 shards, both Space Saving layouts. On a
//!   single-vCPU box the extra shards measure the *coordination overhead*
//!   (hash, buffer, channel, merge) rather than a speedup — the number a
//!   deployment needs to know before reaching for threads.
//! * `sharded_throughput/merge` — the harvest-time cost of one
//!   [`Rhhh::merge`] of two steady-state instances (25 nodes × 1001
//!   counters each); this is the per-query price of shard parallelism and
//!   of multi-VM aggregation.
//! * `sharded_throughput/multi-vm` — switch-side throughput of the
//!   [`MultiVmDistributedRhhh`] fan-out (10-RHHH, blocking link) for 1, 2
//!   and 4 measurement VMs.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hhh_bench::Workload;
use hhh_core::{Rhhh, RhhhConfig};
use hhh_counters::{CompactSpaceSaving, SpaceSaving};
use hhh_hierarchy::Lattice;
use hhh_vswitch::{Backpressure, MultiVmDistributedRhhh, ShardedMonitor};

const PACKETS: usize = 1_000_000;
const SHARD_BATCH: usize = 4_096;

fn config(v_scale: u64) -> RhhhConfig {
    RhhhConfig {
        epsilon_a: 0.001,
        epsilon_s: 0.001,
        delta_s: 0.001,
        v_scale,
        updates_per_packet: 1,
        seed: 0x5AAD,
    }
}

fn pipeline(c: &mut Criterion) {
    let w = Workload::chicago16(PACKETS);
    let lat = Lattice::ipv4_src_dst_bytes();
    let mut g = c.benchmark_group("sharded_throughput/pipeline");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2))
        .throughput(Throughput::Elements(w.keys2.len() as u64));
    for shards in [1usize, 2, 4] {
        g.bench_function(BenchmarkId::from_parameter(format!("x{shards}")), |b| {
            b.iter(|| {
                let mut mon = ShardedMonitor::<u64, SpaceSaving<u64>>::spawn(
                    lat.clone(),
                    config(10),
                    shards,
                    SHARD_BATCH,
                );
                for &k in &w.keys2 {
                    mon.update(k);
                }
                mon.harvest().expect("healthy pipeline")
            });
        });
        g.bench_function(
            BenchmarkId::from_parameter(format!("x{shards}-compact")),
            |b| {
                b.iter(|| {
                    let mut mon = ShardedMonitor::<u64, CompactSpaceSaving<u64>>::spawn(
                        lat.clone(),
                        config(10),
                        shards,
                        SHARD_BATCH,
                    );
                    for &k in &w.keys2 {
                        mon.update(k);
                    }
                    mon.harvest().expect("healthy pipeline")
                });
            },
        );
    }
    g.finish();
}

fn merge_cost(c: &mut Criterion) {
    let w = Workload::chicago16(PACKETS);
    let lat = Lattice::ipv4_src_dst_bytes();

    // Two steady-state halves: each instance absorbed half the workload.
    let half = w.keys2.len() / 2;
    let mut left_list = Rhhh::<u64, SpaceSaving<u64>>::new(lat.clone(), config(1));
    let mut right_list = Rhhh::<u64, SpaceSaving<u64>>::new(lat.clone(), config(1));
    left_list.update_batch(&w.keys2[..half]);
    right_list.update_batch(&w.keys2[half..]);
    let mut left_flat = Rhhh::<u64, CompactSpaceSaving<u64>>::new(lat.clone(), config(1));
    let mut right_flat = Rhhh::<u64, CompactSpaceSaving<u64>>::new(lat, config(1));
    left_flat.update_batch(&w.keys2[..half]);
    right_flat.update_batch(&w.keys2[half..]);

    let mut g = c.benchmark_group("sharded_throughput/merge");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    g.bench_function(BenchmarkId::from_parameter("stream-summary"), |b| {
        b.iter_batched(
            || (left_list.clone(), right_list.clone()),
            |(mut a, b)| {
                a.merge(b);
                a
            },
            criterion::BatchSize::LargeInput,
        );
    });
    g.bench_function(BenchmarkId::from_parameter("compact"), |b| {
        b.iter_batched(
            || (left_flat.clone(), right_flat.clone()),
            |(mut a, b)| {
                a.merge(b);
                a
            },
            criterion::BatchSize::LargeInput,
        );
    });
    g.finish();
}

fn multi_vm(c: &mut Criterion) {
    let w = Workload::chicago16(PACKETS);
    let lat = Lattice::ipv4_src_dst_bytes();
    let mut g = c.benchmark_group("sharded_throughput/multi-vm");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2))
        .throughput(Throughput::Elements(w.keys2.len() as u64));
    for vms in [1usize, 2, 4] {
        g.bench_function(BenchmarkId::from_parameter(format!("x{vms}")), |b| {
            b.iter(|| {
                let mut dist = MultiVmDistributedRhhh::spawn(
                    lat.clone(),
                    config(10),
                    vms,
                    8_192,
                    Backpressure::Block,
                );
                for &k in &w.keys2 {
                    dist.update(k);
                }
                dist.finish()
            });
        });
    }
    g.finish();
}

criterion_group!(sharded, pipeline, merge_cost, multi_vm);
criterion_main!(sharded);
