//! Shard-parallel pipeline cost model: what merge-on-query buys and costs.
//!
//! Five groups:
//!
//! * `sharded_throughput/pipeline` — end-to-end packets/s of the
//!   [`ShardedMonitor`] (hash-route → per-shard batch workers → harvest
//!   merge) for 1, 2 and 4 shards, both Space Saving layouts. On a
//!   single-vCPU box the extra shards measure the *coordination overhead*
//!   (hash, buffer, hand-off, merge) rather than a speedup — the number a
//!   deployment needs to know before reaching for threads.
//! * `sharded_throughput/ring-vs-channel` — interleaved A/B pairs of the
//!   two hand-off planes at a deliberately small batch grain (512 keys),
//!   so the per-send cost — SPSC ring push+unpark vs mutex/condvar
//!   channel send — dominates the comparison. Scheduler drift hits both
//!   sides of a pair equally (same protocol as the PR 6/7 layout pairs).
//!   After the pairs, one instrumented ring run per shard count prints
//!   the per-shard occupancy/park/drop counters.
//! * `sharded_throughput/query` — the non-blocking query plane on a live
//!   4-shard ring monitor: `cached` re-serves the epoch-keyed merge,
//!   `per-merge` K-way-merges the latest snapshots from scratch. Row ids
//!   mirror `windowed_throughput/query` in `update_speed` so CI can
//!   compare the two caches directly.
//! * `sharded_throughput/merge` — the harvest-time cost of one
//!   [`Rhhh::merge`] of two steady-state instances (25 nodes × 1001
//!   counters each); this is the per-query price of shard parallelism and
//!   of multi-VM aggregation.
//! * `sharded_throughput/multi-vm` — switch-side throughput of the
//!   [`MultiVmDistributedRhhh`] fan-out (10-RHHH, blocking link) for 1, 2
//!   and 4 measurement VMs.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hhh_bench::Workload;
use hhh_core::{Rhhh, RhhhConfig};
use hhh_counters::{CompactSpaceSaving, SpaceSaving};
use hhh_hierarchy::Lattice;
use hhh_vswitch::{Backpressure, Handoff, MultiVmDistributedRhhh, ShardedMonitor, SpawnOptions};

const PACKETS: usize = 1_000_000;
const SHARD_BATCH: usize = 4_096;
/// Small grain for the hand-off A/B: ~8× more sends per packet than the
/// pipeline group, so the ring-vs-channel term is what the pair measures.
const HANDOFF_BATCH: usize = 512;

fn config(v_scale: u64) -> RhhhConfig {
    RhhhConfig {
        epsilon_a: 0.001,
        epsilon_s: 0.001,
        delta_s: 0.001,
        v_scale,
        updates_per_packet: 1,
        seed: 0x5AAD,
    }
}

fn pipeline(c: &mut Criterion) {
    let w = Workload::chicago16(PACKETS);
    let lat = Lattice::ipv4_src_dst_bytes();
    let mut g = c.benchmark_group("sharded_throughput/pipeline");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2))
        .throughput(Throughput::Elements(w.keys2.len() as u64));
    for shards in [1usize, 2, 4] {
        g.bench_function(BenchmarkId::from_parameter(format!("x{shards}")), |b| {
            b.iter(|| {
                let mut mon = ShardedMonitor::<u64, SpaceSaving<u64>>::spawn(
                    lat.clone(),
                    config(10),
                    shards,
                    SHARD_BATCH,
                )
                .expect("spawn workers");
                for &k in &w.keys2 {
                    mon.update(k);
                }
                mon.harvest().expect("healthy pipeline")
            });
        });
        g.bench_function(
            BenchmarkId::from_parameter(format!("x{shards}-compact")),
            |b| {
                b.iter(|| {
                    let mut mon = ShardedMonitor::<u64, CompactSpaceSaving<u64>>::spawn(
                        lat.clone(),
                        config(10),
                        shards,
                        SHARD_BATCH,
                    )
                    .expect("spawn workers");
                    for &k in &w.keys2 {
                        mon.update(k);
                    }
                    mon.harvest().expect("healthy pipeline")
                });
            },
        );
    }
    g.finish();
}

/// One feed+harvest pass at the small hand-off grain with the given plane.
fn handoff_pass(
    lat: &Lattice<u64>,
    keys: &[u64],
    shards: usize,
    handoff: Handoff,
) -> Rhhh<u64, SpaceSaving<u64>> {
    let mut mon = ShardedMonitor::<u64, SpaceSaving<u64>>::spawn_with(
        lat.clone(),
        config(10),
        shards,
        HANDOFF_BATCH,
        SpawnOptions {
            handoff,
            ..SpawnOptions::default()
        },
    )
    .expect("spawn workers");
    for &k in keys {
        mon.update(k);
    }
    mon.harvest().expect("healthy pipeline")
}

fn ring_vs_channel(c: &mut Criterion) {
    let w = Workload::chicago16(PACKETS);
    let lat = Lattice::ipv4_src_dst_bytes();
    let mut g = c.benchmark_group("sharded_throughput/ring-vs-channel");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2))
        .throughput(Throughput::Elements(w.keys2.len() as u64));
    for shards in [1usize, 2, 4] {
        g.bench_pair_interleaved(
            format!("x{shards}-ring"),
            |b| b.iter(|| handoff_pass(&lat, &w.keys2, shards, Handoff::Ring)),
            format!("x{shards}-channel"),
            |b| b.iter(|| handoff_pass(&lat, &w.keys2, shards, Handoff::Channel)),
        );
    }
    g.finish();

    // One instrumented ring feed per shard count: the backpressure story
    // behind the pair numbers (how full the rings ran, how often either
    // side had to park, whether anything was dropped).
    for shards in [1usize, 2, 4] {
        let mut mon = ShardedMonitor::<u64, SpaceSaving<u64>>::spawn_with(
            lat.clone(),
            config(10),
            shards,
            HANDOFF_BATCH,
            SpawnOptions::default(),
        )
        .expect("spawn workers");
        for &k in &w.keys2 {
            mon.update(k);
        }
        mon.flush();
        for (i, s) in mon.handoff_stats().iter().enumerate() {
            println!(
                "# ring x{shards} shard {i}: sends={} occ-mean={:.2} occ-max={} \
                 full={} parks={} dropped={}",
                s.sends,
                s.mean_occupancy(),
                s.occupancy_max,
                s.full_events,
                s.park_events,
                s.dropped,
            );
        }
        mon.harvest().expect("healthy pipeline");
    }
}

fn query_plane(c: &mut Criterion) {
    let w = Workload::chicago16(PACKETS);
    let lat = Lattice::ipv4_src_dst_bytes();

    // A live 4-shard ring monitor: feed the full trace, publish, and keep
    // the workers alive (parked) while the query plane is measured.
    let mut mon = ShardedMonitor::<u64, SpaceSaving<u64>>::spawn_with(
        lat,
        config(1),
        4,
        SHARD_BATCH,
        SpawnOptions::default(),
    )
    .expect("spawn workers");
    for &k in &w.keys2 {
        mon.update(k);
    }
    mon.publish_now();
    let fed = w.keys2.len() as u64;
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while mon.query_coverage() < fed && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(1));
    }
    assert_eq!(mon.query_coverage(), fed, "snapshots cover the full feed");

    let mut g = c.benchmark_group("sharded_throughput/query");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    g.bench_function(BenchmarkId::from_parameter("cached"), |b| {
        b.iter(|| mon.query(0.1));
    });
    g.bench_function(BenchmarkId::from_parameter("per-merge"), |b| {
        b.iter(|| mon.query_fresh(0.1));
    });
    g.finish();
    mon.harvest().expect("healthy pipeline");
}

fn merge_cost(c: &mut Criterion) {
    let w = Workload::chicago16(PACKETS);
    let lat = Lattice::ipv4_src_dst_bytes();

    // Two steady-state halves: each instance absorbed half the workload.
    let half = w.keys2.len() / 2;
    let mut left_list = Rhhh::<u64, SpaceSaving<u64>>::new(lat.clone(), config(1));
    let mut right_list = Rhhh::<u64, SpaceSaving<u64>>::new(lat.clone(), config(1));
    left_list.update_batch(&w.keys2[..half]);
    right_list.update_batch(&w.keys2[half..]);
    let mut left_flat = Rhhh::<u64, CompactSpaceSaving<u64>>::new(lat.clone(), config(1));
    let mut right_flat = Rhhh::<u64, CompactSpaceSaving<u64>>::new(lat, config(1));
    left_flat.update_batch(&w.keys2[..half]);
    right_flat.update_batch(&w.keys2[half..]);

    let mut g = c.benchmark_group("sharded_throughput/merge");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    g.bench_function(BenchmarkId::from_parameter("stream-summary"), |b| {
        b.iter_batched(
            || (left_list.clone(), right_list.clone()),
            |(mut a, b)| {
                a.merge(b);
                a
            },
            criterion::BatchSize::LargeInput,
        );
    });
    g.bench_function(BenchmarkId::from_parameter("compact"), |b| {
        b.iter_batched(
            || (left_flat.clone(), right_flat.clone()),
            |(mut a, b)| {
                a.merge(b);
                a
            },
            criterion::BatchSize::LargeInput,
        );
    });
    g.finish();
}

fn multi_vm(c: &mut Criterion) {
    let w = Workload::chicago16(PACKETS);
    let lat = Lattice::ipv4_src_dst_bytes();
    let mut g = c.benchmark_group("sharded_throughput/multi-vm");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2))
        .throughput(Throughput::Elements(w.keys2.len() as u64));
    for vms in [1usize, 2, 4] {
        g.bench_function(BenchmarkId::from_parameter(format!("x{vms}")), |b| {
            b.iter(|| {
                let mut dist = MultiVmDistributedRhhh::spawn(
                    lat.clone(),
                    config(10),
                    vms,
                    8_192,
                    Backpressure::Block,
                );
                for &k in &w.keys2 {
                    dist.update(k);
                }
                dist.finish()
            });
        });
    }
    g.finish();
}

criterion_group!(
    sharded,
    pipeline,
    ring_vs_channel,
    query_plane,
    merge_cost,
    multi_vm
);
criterion_main!(sharded);
