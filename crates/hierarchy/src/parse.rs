//! Textual prefix parsing — the inverse of [`Lattice::format`].
//!
//! Accepted syntax per dimension (comma-separated for multi-dimensional
//! lattices): `*` for fully general, or `a.b.c.d/len` for 32-bit IPv4
//! fields. The prefix length must be a multiple of the dimension's
//! generalization step (e.g. /8, /16, /24, /32 on a byte lattice).

use crate::key::KeyBits;
use crate::lattice::Lattice;
use crate::prefix::Prefix;

/// Errors from [`Lattice::parse_prefix`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PrefixParseError {
    /// Wrong number of comma-separated dimensions.
    DimensionCount {
        /// Dimensions the lattice has.
        expected: usize,
        /// Dimensions found in the input.
        found: usize,
    },
    /// A dimension failed to parse.
    BadDimension(String),
    /// Prefix length not representable on this lattice.
    BadLength(String),
    /// Parsing is only implemented for 32-bit dotted-quad fields.
    UnsupportedField,
}

impl std::fmt::Display for PrefixParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PrefixParseError::DimensionCount { expected, found } => {
                write!(
                    f,
                    "expected {expected} comma-separated dimensions, found {found}"
                )
            }
            PrefixParseError::BadDimension(s) => write!(f, "cannot parse dimension `{s}`"),
            PrefixParseError::BadLength(s) => write!(f, "bad prefix length in `{s}`"),
            PrefixParseError::UnsupportedField => {
                f.write_str("textual parsing supports 32-bit IPv4 fields only")
            }
        }
    }
}

impl std::error::Error for PrefixParseError {}

impl<K: KeyBits> Lattice<K> {
    /// Parses a prefix like `"181.7.0.0/16"` (1D) or
    /// `"10.0.0.0/8,*"` (2D) into a [`Prefix`] on this lattice.
    ///
    /// # Errors
    ///
    /// [`PrefixParseError`] for arity/syntax/length problems.
    pub fn parse_prefix(&self, text: &str) -> Result<Prefix<K>, PrefixParseError> {
        let parts: Vec<&str> = text.split(',').collect();
        if parts.len() != self.dims() {
            return Err(PrefixParseError::DimensionCount {
                expected: self.dims(),
                found: parts.len(),
            });
        }

        let mut spec = Vec::with_capacity(self.dims());
        let mut key = K::zero();
        let mut lo_from_msb = 0u32;
        for (d, raw) in parts.iter().enumerate() {
            let field = self.field(d);
            if field.width != 32 {
                return Err(PrefixParseError::UnsupportedField);
            }
            let part = raw.trim();
            if part == "*" {
                spec.push(0);
            } else {
                let (addr, len) = part
                    .split_once('/')
                    .ok_or_else(|| PrefixParseError::BadDimension(part.to_string()))?;
                let ip: std::net::Ipv4Addr = addr
                    .parse()
                    .map_err(|_| PrefixParseError::BadDimension(part.to_string()))?;
                let bits: u32 = len
                    .parse()
                    .map_err(|_| PrefixParseError::BadLength(part.to_string()))?;
                if bits == 0 || bits > 32 || !bits.is_multiple_of(field.step) {
                    return Err(PrefixParseError::BadLength(part.to_string()));
                }
                spec.push(bits / field.step);
                // Place the address into the key at this dimension's
                // position (MSB-first packing).
                let shift = K::BITS - lo_from_msb - field.width;
                key = key.or(K::from_u64(u64::from(u32::from(ip))).shl(shift));
            }
            lo_from_msb += field.width;
        }
        let node = self.node_by_spec(&spec);
        Ok(Prefix::of(self, node, key))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::key::pack2;

    #[test]
    fn parse_one_dimensional() {
        let lat = Lattice::ipv4_src_bytes();
        let p = lat.parse_prefix("181.7.0.0/16").expect("parse");
        assert_eq!(p.node, lat.node_by_spec(&[2]));
        assert_eq!(p.key, u32::from_be_bytes([181, 7, 0, 0]));
        assert_eq!(p.display(&lat), "181.7.0.0/16");
    }

    #[test]
    fn parse_star() {
        let lat = Lattice::ipv4_src_bytes();
        let p = lat.parse_prefix("*").expect("parse");
        assert_eq!(p.node, lat.root());
        assert_eq!(p.key, 0);
    }

    #[test]
    fn parse_two_dimensional_roundtrips_format() {
        let lat = Lattice::ipv4_src_dst_bytes();
        for text in [
            "10.0.0.0/8,*",
            "*,8.8.8.8/32",
            "181.7.0.0/16,208.67.222.0/24",
            "*,*",
        ] {
            let p = lat.parse_prefix(text).expect(text);
            assert_eq!(p.display(&lat), text, "roundtrip of {text}");
        }
    }

    #[test]
    fn parse_masks_host_bits() {
        // Host bits beyond the prefix length are masked away.
        let lat = Lattice::ipv4_src_bytes();
        let p = lat.parse_prefix("10.20.30.40/16").expect("parse");
        assert_eq!(p.key, u32::from_be_bytes([10, 20, 0, 0]));
    }

    #[test]
    fn parse_respects_bit_granularity() {
        let lat = Lattice::ipv4_src_bits();
        let p = lat.parse_prefix("192.168.0.0/13").expect("parse");
        assert_eq!(p.node, lat.node_by_spec(&[13]));
        // On the byte lattice /13 is invalid.
        let byte_lat = Lattice::ipv4_src_bytes();
        assert!(matches!(
            byte_lat.parse_prefix("192.168.0.0/13"),
            Err(PrefixParseError::BadLength(_))
        ));
    }

    #[test]
    fn parse_errors() {
        let lat = Lattice::ipv4_src_dst_bytes();
        assert!(matches!(
            lat.parse_prefix("10.0.0.0/8"),
            Err(PrefixParseError::DimensionCount {
                expected: 2,
                found: 1
            })
        ));
        assert!(matches!(
            lat.parse_prefix("banana,*"),
            Err(PrefixParseError::BadDimension(_))
        ));
        assert!(matches!(
            lat.parse_prefix("10.0.0.0/0,*"),
            Err(PrefixParseError::BadLength(_))
        ));
        assert!(matches!(
            lat.parse_prefix("10.0.0.0/40,*"),
            Err(PrefixParseError::BadLength(_))
        ));
    }

    #[test]
    fn parsed_prefix_generalizes_matching_traffic() {
        let lat = Lattice::ipv4_src_dst_bytes();
        let filter = lat.parse_prefix("10.0.0.0/8,*").expect("parse");
        let inside = crate::prefix::Prefix::of(
            &lat,
            lat.bottom(),
            pack2(u32::from_be_bytes([10, 1, 2, 3]), 42),
        );
        let outside = crate::prefix::Prefix::of(
            &lat,
            lat.bottom(),
            pack2(u32::from_be_bytes([11, 1, 2, 3]), 42),
        );
        assert!(filter.generalizes(&inside, &lat));
        assert!(!filter.generalizes(&outside, &lat));
    }
}
